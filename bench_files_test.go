package repro

// Guard rails for the standing benchmark trajectory files: BENCH_search.json
// (cmd/benchsearch), BENCH_annotate.json (cmd/benchannotate),
// BENCH_geo.json (cmd/benchgeo), BENCH_boot.json (cmd/benchboot) and
// BENCH_cluster.json (cmd/benchcluster) must always parse, keep at least their
// seeded history, and append chronologically — a rebase or hand-edit that
// reorders or truncates the history should fail CI, not silently rewrite
// the project's performance record.

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// trajectoryFile is the shared shape of both BENCH_*.json files: a
// description plus labelled runs with optional RFC 3339 timestamps.
type trajectoryFile struct {
	Description string `json:"description"`
	Runs        []struct {
		Label      string `json:"label"`
		RecordedAt string `json:"recorded_at"`
	} `json:"runs"`
}

func checkTrajectory(t *testing.T, path string, minRuns int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	var traj trajectoryFile
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("%s does not parse as a trajectory file: %v", path, err)
	}
	if traj.Description == "" {
		t.Errorf("%s: empty description", path)
	}
	if len(traj.Runs) < minRuns {
		t.Fatalf("%s: %d runs, want at least %d (history truncated?)", path, len(traj.Runs), minRuns)
	}
	var last time.Time
	for i, r := range traj.Runs {
		if r.Label == "" {
			t.Errorf("%s: run %d has no label", path, i)
		}
		if r.RecordedAt == "" {
			continue // runs recorded before the timestamp field existed
		}
		at, err := time.Parse(time.RFC3339, r.RecordedAt)
		if err != nil {
			t.Errorf("%s: run %d recorded_at %q: %v", path, i, r.RecordedAt, err)
			continue
		}
		if at.Before(last) {
			t.Errorf("%s: run %d (%s) recorded before run above it (%s); runs must append chronologically",
				path, i, at.Format(time.RFC3339), last.Format(time.RFC3339))
		}
		last = at
	}
}

func TestBenchTrajectoryFiles(t *testing.T) {
	checkTrajectory(t, "BENCH_search.json", 2)
	checkTrajectory(t, "BENCH_annotate.json", 1)
	// The geo trajectory must keep both seeded runs: the all-pairs
	// baseline and the sparse rewrite it is compared against.
	checkTrajectory(t, "BENCH_geo.json", 2)
	// The boot trajectory must keep the replay-on-load baseline and the
	// direct-image load run recorded against it.
	checkTrajectory(t, "BENCH_boot.json", 2)
	checkTrajectory(t, "BENCH_cluster.json", 1)
}

// TestBenchGeoRecord holds the component-parallel resolver to its
// acceptance bar: the recorded huge-table address-workload pair (whole-table
// engine vs component engine at workers=4, same geometry, >= 5000 rows)
// must show at least 2x resolve throughput, a genuine decomposition, and a
// recorded peak-scratch bound well under the whole graph's CSR footprint.
func TestBenchGeoRecord(t *testing.T) {
	data, err := os.ReadFile("BENCH_geo.json")
	if err != nil {
		t.Fatal(err)
	}
	var traj struct {
		Runs []struct {
			Label  string `json:"label"`
			Points []struct {
				Rows               int     `json:"rows"`
				Edges              int     `json:"edges"`
				ResolveCellsPerSec float64 `json:"resolve_cells_per_sec"`
				Workload           string  `json:"workload"`
				Engine             string  `json:"engine"`
				Workers            int     `json:"workers"`
				Components         int     `json:"components"`
				LargestComponent   int     `json:"largest_component"`
				PeakScratchBytes   int64   `json:"peak_scratch_bytes"`
			} `json:"points"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	single := map[int]float64{} // rows -> best recorded single-engine resolve throughput
	ok := false
	for _, r := range traj.Runs {
		for _, p := range r.Points {
			if p.Workload != "address" || p.Rows < 5000 {
				continue
			}
			if p.Engine == "single" {
				if p.ResolveCellsPerSec > single[p.Rows] {
					single[p.Rows] = p.ResolveCellsPerSec
				}
				continue
			}
			base := single[p.Rows]
			if p.Engine != "components" || p.Workers != 4 || base == 0 {
				continue
			}
			// Not every recorded pair has to clear the bar (smaller tables
			// amortize the workers less) — but at least one must.
			if p.ResolveCellsPerSec < 2*base {
				continue
			}
			if p.Components < 2 || p.LargestComponent == 0 {
				t.Errorf("run %q rows=%d: no decomposition recorded: %+v", r.Label, p.Rows, p)
				continue
			}
			// The pooled scratch must stay well under the whole graph's
			// edge arrays alone (8 bytes per directed edge across the two
			// CSR index arrays is already an undercount of the full-graph
			// footprint the old engine held).
			if full := int64(p.Edges) * 8; p.PeakScratchBytes <= 0 || p.PeakScratchBytes >= full {
				t.Errorf("run %q rows=%d: peak scratch %d bytes not bounded below whole-graph %d",
					r.Label, p.Rows, p.PeakScratchBytes, full)
				continue
			}
			ok = true
		}
	}
	if !ok {
		t.Error("BENCH_geo.json records no qualifying huge-table pair (address workload, >= 5000 rows, single vs components at workers=4)")
	}
}

// TestBenchClusterRecord holds the distributed tier to its acceptance bar:
// the recorded 4-replica saturation run must show at least a 3× aggregate
// goodput over one process, and hedging must not make the tail worse than
// running the same router unhedged over the same stalled workers.
func TestBenchClusterRecord(t *testing.T) {
	data, err := os.ReadFile("BENCH_cluster.json")
	if err != nil {
		t.Fatal(err)
	}
	var traj struct {
		Runs []struct {
			Label    string  `json:"label"`
			Replicas int     `json:"replicas"`
			Speedup  float64 `json:"speedup_cluster_over_single"`
			Tail     struct {
				UnhedgedP999Ms float64 `json:"unhedged_p999_ms"`
				HedgedP999Ms   float64 `json:"hedged_p999_ms"`
				HedgesFired    int64   `json:"hedges_fired"`
			} `json:"tail"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) == 0 {
		t.Fatal("BENCH_cluster.json records no runs")
	}
	r := traj.Runs[len(traj.Runs)-1]
	if r.Replicas < 4 {
		t.Errorf("latest run measured %d replicas, want the 4-replica point", r.Replicas)
	}
	if r.Speedup < 3 {
		t.Errorf("latest run %q: cluster speedup %.2fx, want >= 3x over a single process", r.Label, r.Speedup)
	}
	if r.Tail.HedgedP999Ms <= 0 || r.Tail.UnhedgedP999Ms <= 0 {
		t.Fatalf("latest run %q: tail phase not recorded: %+v", r.Label, r.Tail)
	}
	if r.Tail.HedgedP999Ms > r.Tail.UnhedgedP999Ms {
		t.Errorf("latest run %q: hedged p999 %.0fms worse than unhedged %.0fms at the same offered rate",
			r.Label, r.Tail.HedgedP999Ms, r.Tail.UnhedgedP999Ms)
	}
	if r.Tail.HedgesFired == 0 {
		t.Errorf("latest run %q: hedging never fired during the stall phase", r.Label)
	}
}
