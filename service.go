package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/annotate"
	"repro/internal/classify"
	"repro/internal/eval"
	"repro/internal/gazetteer"
	"repro/internal/kb"
	"repro/internal/search"
	"repro/internal/snapshot"
	"repro/internal/table"
	"repro/internal/world"
)

// APIVersion identifies the request/response schema of this package (and of
// the HTTP wire format cmd/serve exposes under /v1/).
const APIVersion = "v1"

// Scale values accepted by WithScale.
const (
	// ScaleSmall is the fast, demo-quality corpus (the default).
	ScaleSmall = "small"
	// ScaleFull is the paper-scale corpus cmd/experiments uses.
	ScaleFull = "full"
)

// Classifier names accepted by WithClassifier.
const (
	// ClassifierSVM selects the linear SVM snippet classifier (default).
	ClassifierSVM = "svm"
	// ClassifierBayes selects the Naive Bayes snippet classifier.
	ClassifierBayes = "bayes"
)

// settings accumulates the functional options of New. The *Set flags record
// which identity options were given explicitly, so a snapshot boot can
// distinguish "caller pinned this value" (refuse on manifest mismatch) from
// "caller took the default" (inherit the manifest's value).
type settings struct {
	seed            int64
	scale           string
	classifier      string
	parallelism     int
	shareCache      bool
	cacheMaxEntries int
	cacheTTL        time.Duration
	searchShards    int
	snapshotPath    string
	geoWorkers      int

	seedSet       bool
	scaleSet      bool
	classifierSet bool
	shardsSet     bool
}

// Option configures New. Options validate eagerly: an invalid value makes
// New return an *OptionError instead of silently falling back the way the
// legacy NewSystem does.
type Option func(*settings) error

// WithSeed sets the seed that drives every random choice; equal seeds give
// equal services. The default is 0.
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.seed = seed
		s.seedSet = true
		return nil
	}
}

// WithScale selects the corpus size: ScaleSmall (default) or ScaleFull.
func WithScale(scale string) Option {
	return func(s *settings) error {
		switch scale {
		case ScaleSmall, ScaleFull:
			s.scale = scale
			s.scaleSet = true
			return nil
		}
		return &OptionError{Option: "WithScale", Value: scale, Allowed: []string{ScaleSmall, ScaleFull}}
	}
}

// WithClassifier selects the snippet classifier: ClassifierSVM (default) or
// ClassifierBayes. Both are trained during New; the option picks which one
// annotates.
func WithClassifier(name string) Option {
	return func(s *settings) error {
		switch name {
		case ClassifierSVM, ClassifierBayes:
			s.classifier = name
			s.classifierSet = true
			return nil
		}
		return &OptionError{Option: "WithClassifier", Value: name, Allowed: []string{ClassifierSVM, ClassifierBayes}}
	}
}

// WithParallelism bounds the annotation worker pools: cell queries within a
// table, and tables within AnnotateBatch/AnnotateStream. Values <= 1 run
// sequentially (the default); negative values are rejected. Results are
// identical at any setting — only the wall-clock changes.
func WithParallelism(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return &OptionError{Option: "WithParallelism", Value: fmt.Sprint(n)}
		}
		s.parallelism = n
		return nil
	}
}

// WithGeoWorkers bounds the worker pool that resolves disambiguation
// components in parallel inside the geocode stage. Components are
// independent, so results are bit-identical at any setting — only latency
// and peak scratch memory (O(largest component × workers)) change. 0 (the
// default) selects min(GOMAXPROCS, 8); negative values are rejected.
func WithGeoWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return &OptionError{Option: "WithGeoWorkers", Value: fmt.Sprint(n)}
		}
		s.geoWorkers = n
		return nil
	}
}

// WithSearchShards sets the shard count of the service's search index: each
// query's BM25 scoring fans out across the shards in parallel, with results
// byte-identical to a monolithic index at any count. 0 (the default)
// selects one shard per available CPU, capped at 8; 1 disables sharding;
// negative values are rejected.
func WithSearchShards(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return &OptionError{Option: "WithSearchShards", Value: fmt.Sprint(n)}
		}
		s.searchShards = n
		s.shardsSet = n != 0
		return nil
	}
}

// WithSnapshot boots the service from a prebuilt TSNP bundle (written by
// Service.WriteSnapshot or cmd/snapshot) instead of rebuilding the world:
// the search index, gazetteer and both trained classifiers stream in
// sequentially, so startup is IO-bound rather than compute-bound. The
// service inherits the bundle manifest's seed, scale and shard count; if any
// of those are ALSO set explicitly (WithSeed, WithScale, WithSearchShards)
// and disagree with the manifest, New refuses with a *SnapshotMismatchError
// rather than serving results the flags did not ask for. WithClassifier
// still selects freely — both classifiers travel in every bundle. A
// snapshot-booted service has no synthetic universe attached: World, KB and
// Lab dataset fields are nil, and only the serving surface (Annotate,
// Geocode, Explain and friends) is available.
func WithSnapshot(path string) Option {
	return func(s *settings) error {
		if path == "" {
			return &OptionError{Option: "WithSnapshot", Value: path}
		}
		s.snapshotPath = path
		return nil
	}
}

// WithSharedCache shares query verdicts across every table the service
// annotates, so repeated cell values stop costing search round-trips — the
// cross-table cache motivated by the paper's §6.4 latency analysis. The
// cache is keyed by classifier, k, type set and decision rule, so requests
// with different knobs never exchange verdicts.
func WithSharedCache() Option {
	return func(s *settings) error {
		s.shareCache = true
		return nil
	}
}

// WithCacheLimits bounds the shared cache WithSharedCache enables:
// maxEntries caps the number of cached verdicts (0 = unbounded; oldest
// insertions are evicted first) and ttl expires a verdict that long after it
// was cached (0 = never). Negative values are rejected. The limits have no
// effect without WithSharedCache; eviction and expiration counts surface on
// the serving layer's /statz cache section.
func WithCacheLimits(maxEntries int, ttl time.Duration) Option {
	return func(s *settings) error {
		if maxEntries < 0 {
			return &OptionError{Option: "WithCacheLimits", Value: fmt.Sprint(maxEntries)}
		}
		if ttl < 0 {
			return &OptionError{Option: "WithCacheLimits", Value: ttl.String()}
		}
		s.cacheMaxEntries = maxEntries
		s.cacheTTL = ttl
		return nil
	}
}

// Service is the annotation pipeline as a request/response service: one
// expensive construction (corpus generation, indexing, classifier training)
// via New, then any number of concurrent Annotate/AnnotateBatch/
// AnnotateStream calls. A Service is immutable after New; per-request knobs
// travel in the AnnotateRequest and are applied to a copied pipeline
// configuration, never to shared state.
type Service struct {
	lab         *eval.Lab
	clf         string
	scale       string
	parallelism int
	// buildDur is the wall-clock cost of New: the full world build, or the
	// snapshot load. Surfaced on /statz and recorded into manifests this
	// service writes.
	buildDur time.Duration
	// snap describes the bundle the service was booted from; nil when the
	// world was built from scratch.
	snap *SnapshotInfo
	// base is the immutable pipeline configuration every request derives
	// from; the expensive components (classifier, engine, gazetteer) are
	// shared by reference and never rebuilt per request.
	base annotate.Config
}

// SnapshotInfo describes the bundle a snapshot-booted service loaded,
// flattened from the bundle manifest plus the observed load cost.
type SnapshotInfo struct {
	// Path is the bundle file the service booted from.
	Path string
	// Seed, Scale, Classifier, SearchShards, Docs and Locations mirror the
	// bundle manifest (Classifier is the kind the writing service served
	// with, not necessarily this one — see WithClassifier).
	Seed         int64
	Scale        string
	Classifier   string
	SearchShards int
	Docs         int
	Locations    int
	// CreatedAtUnix, BuildMillis and Tool are the manifest's build
	// metadata: when the bundle was written, how long the build that
	// produced it took, and by which tool.
	CreatedAtUnix int64
	BuildMillis   int64
	Tool          string
	// LoadDuration is how long this service took to load the bundle.
	LoadDuration time.Duration
}

// New builds the service. Construction is the expensive step (it generates
// the synthetic universe, indexes its web corpus and trains the snippet
// classifiers); reuse the Service for every request. If ctx is cancelled
// before the build finishes, New returns ctx.Err() — the abandoned build
// completes in a background goroutine and is discarded.
func New(ctx context.Context, opts ...Option) (*Service, error) {
	st := settings{scale: ScaleSmall, classifier: ClassifierSVM}
	for _, opt := range opts {
		if err := opt(&st); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if st.snapshotPath != "" {
		return newFromSnapshot(ctx, st)
	}

	cfg := eval.LabConfig{
		Seed:            st.seed,
		Parallelism:     st.parallelism,
		ShareCache:      st.shareCache,
		CacheMaxEntries: st.cacheMaxEntries,
		CacheTTL:        st.cacheTTL,
		SearchShards:    st.searchShards,
	}
	if st.scale != ScaleFull {
		cfg.KBPerType = 60
		cfg.SnippetsPerEntity = 5
		cfg.MaxTrainEntities = 60
	}

	start := time.Now()
	built := make(chan *eval.Lab, 1)
	go func() { built <- eval.NewLab(cfg) }()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case lab := <-built:
		s := &Service{lab: lab, clf: st.classifier, scale: st.scale, parallelism: st.parallelism, buildDur: time.Since(start)}
		s.finish(st)
		return s, nil
	}
}

// finish derives the shared base config once the lab is in place.
func (s *Service) finish(st settings) {
	s.base = annotate.Config{
		Searcher:     s.lab.Engine,
		Classifier:   s.Classifier(s.clf),
		Types:        eval.TypeStrings(),
		Postprocess:  true,
		Disambiguate: true,
		Gazetteer:    s.lab.Geo,
		Parallelism:  st.parallelism,
		Cache:        s.lab.Cache,
		CacheSalt:    s.clf,
		GeoWorkers:   st.geoWorkers,
	}
}

// newFromSnapshot assembles the service from a TSNP bundle: sequential
// section reads off one file, no corpus generation, no training. The load
// runs in a background goroutine so ctx cancellation returns promptly (the
// abandoned load completes and is discarded, mirroring New's build path).
func newFromSnapshot(ctx context.Context, st settings) (*Service, error) {
	type loaded struct {
		bundle *snapshot.Bundle
		dur    time.Duration
		err    error
	}
	ch := make(chan loaded, 1)
	go func() {
		start := time.Now()
		b, err := snapshot.ReadFile(st.snapshotPath)
		ch <- loaded{b, time.Since(start), err}
	}()
	var l loaded
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case l = <-ch:
	}
	if l.err != nil {
		return nil, fmt.Errorf("repro: loading snapshot %s: %w", st.snapshotPath, l.err)
	}
	m := l.bundle.Manifest

	// Identity options that were set explicitly must agree with the
	// manifest; unset ones inherit its values.
	if st.seedSet && st.seed != m.Seed {
		return nil, &SnapshotMismatchError{Option: "WithSeed", Want: fmt.Sprint(st.seed), Have: fmt.Sprint(m.Seed)}
	}
	if st.scaleSet && st.scale != m.Scale {
		return nil, &SnapshotMismatchError{Option: "WithScale", Want: st.scale, Have: m.Scale}
	}
	if st.shardsSet && st.searchShards != m.SearchShards {
		return nil, &SnapshotMismatchError{Option: "WithSearchShards", Want: fmt.Sprint(st.searchShards), Have: fmt.Sprint(m.SearchShards)}
	}

	cfg := eval.LabConfig{
		Seed:            m.Seed,
		Parallelism:     st.parallelism,
		ShareCache:      st.shareCache,
		CacheMaxEntries: st.cacheMaxEntries,
		CacheTTL:        st.cacheTTL,
		SearchShards:    m.SearchShards,
	}
	clf := st.classifier
	if !st.classifierSet && (m.Classifier == ClassifierSVM || m.Classifier == ClassifierBayes) {
		clf = m.Classifier
	}
	lab := eval.NewServedLab(cfg, search.NewShardedEngine(l.bundle.Index), l.bundle.Gazetteer, l.bundle.SVM, l.bundle.Bayes)
	s := &Service{
		lab:         lab,
		clf:         clf,
		scale:       m.Scale,
		parallelism: st.parallelism,
		buildDur:    l.dur,
		snap: &SnapshotInfo{
			Path:          st.snapshotPath,
			Seed:          m.Seed,
			Scale:         m.Scale,
			Classifier:    m.Classifier,
			SearchShards:  m.SearchShards,
			Docs:          m.Docs,
			Locations:     m.Locations,
			CreatedAtUnix: m.CreatedAtUnix,
			BuildMillis:   m.BuildMillis,
			Tool:          m.Tool,
			LoadDuration:  l.dur,
		},
	}
	s.finish(st)
	return s, nil
}

// WriteSnapshot serialises the service's serving artifacts — search index,
// gazetteer, both classifiers — as a TSNP v1 bundle that WithSnapshot (and
// cmd/serve -snapshot-file) can boot from. tool names the writer in the
// bundle manifest.
func (s *Service) WriteSnapshot(w io.Writer, tool string) (int64, error) {
	six := s.lab.Engine.ShardedIndex()
	if six == nil {
		return 0, fmt.Errorf("repro: the service's engine wraps a monolithic index; only sharded services snapshot")
	}
	b := &snapshot.Bundle{
		Manifest: snapshot.Manifest{
			Seed:          s.lab.Cfg.Seed,
			Scale:         s.scale,
			Classifier:    s.clf,
			SearchShards:  six.NumShards(),
			Docs:          six.Len(),
			Locations:     s.lab.Geo.Len(),
			CreatedAtUnix: time.Now().Unix(),
			BuildMillis:   s.buildDur.Milliseconds(),
			Tool:          tool,
		},
		Index:     six,
		Gazetteer: s.lab.Geo,
		SVM:       s.lab.SVM,
		Bayes:     s.lab.Bayes,
	}
	return b.WriteTo(w)
}

// Toggle is a three-state request switch for pipeline stages whose service
// default is on: the zero value keeps the default, ToggleOn and ToggleOff
// force the stage.
type Toggle uint8

const (
	// ToggleDefault keeps the service default (the paper's setting: on).
	ToggleDefault Toggle = iota
	// ToggleOn forces the stage on for this request.
	ToggleOn
	// ToggleOff forces the stage off for this request.
	ToggleOff
)

// apply resolves the toggle against the default.
func (t Toggle) apply(def bool) bool {
	switch t {
	case ToggleOn:
		return true
	case ToggleOff:
		return false
	}
	return def
}

// ToggleOf converts an optional boolean (nil = default) to a Toggle; the
// HTTP layer uses it to map absent JSON fields.
func ToggleOf(b *bool) Toggle {
	switch {
	case b == nil:
		return ToggleDefault
	case *b:
		return ToggleOn
	}
	return ToggleOff
}

// AnnotateRequest asks the service to annotate one table. The zero value of
// every knob selects the paper's canonical setting, so
// &AnnotateRequest{Table: tbl} reproduces the full §5 pipeline.
type AnnotateRequest struct {
	// Table is the GFT-style table to annotate. Required.
	Table *Table
	// Types restricts Γ to a subset of the service's types; nil keeps all
	// twelve. Unknown names are rejected with a *RequestError.
	Types []string
	// K is the number of snippets fetched per query; 0 selects 10, the
	// paper's setting.
	K int
	// Postprocess toggles the §5.3 spurious-annotation elimination
	// (default on).
	Postprocess Toggle
	// Disambiguate toggles the §5.2.2 spatial query augmentation
	// (default on).
	Disambiguate Toggle
	// Trace additionally returns the per-cell decision explanations
	// (cmd/annotate's -explain view). The trace pass re-queries the
	// engine, roughly doubling the request's query cost.
	Trace bool
	// Geocode additionally runs the §5.2.2 geocode+disambiguate stage as
	// an output product: every Location-column cell resolved against the
	// gazetteer appears in AnnotateResponse.GeoAnnotations. Off by
	// default; the stage costs gazetteer lookups and graph propagation but
	// no search-engine queries.
	Geocode bool
}

// Stats summarises one annotation run.
type Stats struct {
	// Rows and Cols are the table's dimensions.
	Rows, Cols int
	// Annotated is the number of cell annotations returned.
	Annotated int
	// Queries is the number of search-engine queries issued (after the
	// per-table deduplication and, when configured, the shared cache).
	Queries int
	// Batches is the number of backend batch calls the queries travelled
	// in (the pipeline submits a table's deduped queries in chunks);
	// Queries/Batches is the average batch size. 0 when every query was
	// answered by the shared cache.
	Batches int
	// Skipped counts pre-processing eliminations per reason; nil when
	// nothing was skipped.
	Skipped map[string]int
}

// CacheStats reports the shared cross-table cache's contribution to one
// request; both are zero when the service was built without WithSharedCache.
type CacheStats struct {
	// Hits is the number of unique cell queries answered by the cache.
	Hits int
	// Misses is the number that cost a search-engine round-trip.
	Misses int
}

// Timing is the request's wall-clock breakdown.
type Timing struct {
	// Total is the end-to-end service time of the request, including the
	// trace pass when one was requested.
	Total time.Duration
}

// AnnotateResponse is the result of one AnnotateRequest.
type AnnotateResponse struct {
	// Annotations are the annotated cells with their Eq. 1 scores, in
	// deterministic column-major cell order.
	Annotations []Annotation
	// ColumnTypes maps 1-based column index -> the column's semantic
	// type, derived from the Eq. 2 scores; nil unless post-processing
	// ran.
	ColumnTypes map[int]string
	// Trace holds one human-readable explanation per cell when the
	// request set Trace.
	Trace []string
	// GeoAnnotations holds the resolved Location-column cells when the
	// request set Geocode; nil otherwise (and when nothing geocoded).
	GeoAnnotations []GeoAnnotation
	// Stats, CacheStats and Timing describe the run.
	Stats      Stats
	CacheStats CacheStats
	Timing     Timing
}

// requestConfig validates the request and derives its immutable pipeline
// configuration from the service's base config. No expensive component is
// rebuilt — the derived config shares the classifier, engine and gazetteer
// by reference.
func (s *Service) requestConfig(req *AnnotateRequest) (annotate.Config, error) {
	var zero annotate.Config
	if req == nil || req.Table == nil {
		return zero, &RequestError{Field: "table", Reason: "missing"}
	}
	if req.Table.NumCols() == 0 {
		return zero, &RequestError{Field: "table", Reason: "has no columns"}
	}
	if req.K < 0 {
		return zero, &RequestError{Field: "k", Reason: fmt.Sprintf("must be >= 0, got %d", req.K)}
	}
	cfg := s.base
	if req.Types != nil {
		if len(req.Types) == 0 {
			return zero, &RequestError{Field: "types", Reason: "empty (omit the field to target all types)"}
		}
		known := make(map[string]bool, len(s.base.Types))
		for _, t := range s.base.Types {
			known[t] = true
		}
		for _, t := range req.Types {
			if !known[t] {
				return zero, &RequestError{Field: "types", Reason: fmt.Sprintf("unknown type %q", t)}
			}
		}
		cfg.Types = append([]string(nil), req.Types...)
	}
	if req.K > 0 {
		cfg.K = req.K
	}
	cfg.Postprocess = req.Postprocess.apply(cfg.Postprocess)
	cfg.Disambiguate = req.Disambiguate.apply(cfg.Disambiguate)
	return cfg, nil
}

// Annotate runs one request through the §5 pipeline. It returns a
// *RequestError for invalid requests and ctx.Err() when the context is
// cancelled mid-flight — never a silently-truncated response. Safe for
// concurrent use.
func (s *Service) Annotate(ctx context.Context, req *AnnotateRequest) (*AnnotateResponse, error) {
	cfg, err := s.requestConfig(req)
	if err != nil {
		return nil, err
	}
	return s.run(ctx, cfg, req)
}

// run executes an already-validated request with its derived config.
func (s *Service) run(ctx context.Context, cfg annotate.Config, req *AnnotateRequest) (*AnnotateResponse, error) {
	start := time.Now()
	if req.Geocode {
		// One geocode+vote pass serves both the Disambiguate stage and
		// the GeoAnnotations output.
		var err error
		if cfg, err = cfg.PrepareGeo(ctx, req.Table); err != nil {
			return nil, err
		}
	}
	res, err := cfg.Annotate(ctx, req.Table)
	if err != nil {
		return nil, err
	}
	resp := &AnnotateResponse{
		Annotations: res.Annotations,
		ColumnTypes: res.ColumnTypes(),
		Stats: Stats{
			Rows:      req.Table.NumRows(),
			Cols:      req.Table.NumCols(),
			Annotated: len(res.Annotations),
			Queries:   res.Queries,
			Batches:   res.Batches,
		},
		CacheStats: CacheStats{Hits: res.CacheHits, Misses: res.CacheMisses},
	}
	if len(res.Skipped) > 0 {
		resp.Stats.Skipped = make(map[string]int, len(res.Skipped))
		for reason, n := range res.Skipped {
			resp.Stats.Skipped[string(reason)] = n
		}
	}
	if req.Trace {
		explanations, err := cfg.Explain(ctx, req.Table)
		if err != nil {
			return nil, err
		}
		resp.Trace = make([]string, len(explanations))
		for i, e := range explanations {
			resp.Trace[i] = e.String()
		}
	}
	if req.Geocode {
		gas, err := cfg.GeoAnnotate(ctx, req.Table)
		if err != nil {
			return nil, err
		}
		resp.GeoAnnotations = gas
	}
	resp.Timing = Timing{Total: time.Since(start)}
	return resp, nil
}

// GeocodeRequest asks the service to geocode and disambiguate one table's
// Location columns without running the annotation pipeline.
type GeocodeRequest struct {
	// Table is the GFT-style table to geocode. Required.
	Table *Table
}

// GeoStats summarises one geocode run.
type GeoStats struct {
	// LocationCells is the number of non-empty cells in Location-typed
	// columns.
	LocationCells int
	// Resolved is the number of cells the gazetteer geocoded (each yields
	// one GeoAnnotation).
	Resolved int
	// Ambiguous is the number of resolved cells that had more than one
	// candidate interpretation before disambiguation.
	Ambiguous int
	// Components and LargestComponent describe the voting graph's
	// connected-component decomposition: how many independent units the
	// table split into, and the node count of the biggest one.
	Components       int
	LargestComponent int
	// PeakScratchBytes is the high-water mark of pooled per-component
	// scratch held concurrently while resolving — the stage's bounded
	// working memory, O(largest component × workers).
	PeakScratchBytes int64
}

// GeocodeResponse is the result of one GeocodeRequest.
type GeocodeResponse struct {
	// Annotations are the resolved Location-column cells in deterministic
	// column-major cell order.
	Annotations []GeoAnnotation
	// Stats and Timing describe the run.
	Stats  GeoStats
	Timing Timing
}

// validateGeocode is the shared request validation of Geocode and
// GeocodeBatch, so single and batch requests can never drift apart on what
// they accept.
func validateGeocode(req *GeocodeRequest) error {
	if req == nil || req.Table == nil {
		return &RequestError{Field: "table", Reason: "missing"}
	}
	if req.Table.NumCols() == 0 {
		return &RequestError{Field: "table", Reason: "has no columns"}
	}
	return nil
}

// Geocode resolves one table's Location columns against the gazetteer: the
// §5.2.2 geocode+disambiguate stage as a standalone request, costing no
// search-engine queries. It returns a *RequestError for invalid requests and
// ctx.Err() on cancellation. Safe for concurrent use.
func (s *Service) Geocode(ctx context.Context, req *GeocodeRequest) (*GeocodeResponse, error) {
	if err := validateGeocode(req); err != nil {
		return nil, err
	}
	start := time.Now()
	gas, stage, err := s.base.GeoAnnotateStats(ctx, req.Table)
	if err != nil {
		return nil, err
	}
	resp := &GeocodeResponse{Annotations: gas, Stats: geoStats(req.Table, gas, stage)}
	resp.Timing = Timing{Total: time.Since(start)}
	return resp, nil
}

// geoStats derives the run summary from the table, its annotations and the
// stage's decomposition statistics.
func geoStats(t *Table, gas []GeoAnnotation, stage annotate.GeoStageStats) GeoStats {
	st := GeoStats{
		Resolved:         len(gas),
		Components:       stage.Components,
		LargestComponent: stage.LargestComponent,
		PeakScratchBytes: stage.PeakScratchBytes,
	}
	for _, j := range t.ColumnIndexesOfType(table.Location) {
		for i := 1; i <= t.NumRows(); i++ {
			if strings.TrimSpace(t.Cell(i, j)) != "" {
				st.LocationCells++
			}
		}
	}
	for _, ga := range gas {
		if ga.Candidates > 1 {
			st.Ambiguous++
		}
	}
	return st
}

// GeocodeBatch geocodes the requests over the service's worker pool and
// returns the responses in request order — the batch mirror of Geocode with
// annotate's batch semantics. Every request is validated before any work
// starts; the first invalid request fails the whole batch with its index, and
// the lowest-indexed runtime error (or the context error) fails it
// mid-flight. Safe for concurrent use.
func (s *Service) GeocodeBatch(parent context.Context, reqs []*GeocodeRequest) ([]*GeocodeResponse, error) {
	for i, req := range reqs {
		if err := validateGeocode(req); err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	out := make([]*GeocodeResponse, len(reqs))
	errs := make([]error, len(reqs))
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	workers := s.parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				resp, err := s.Geocode(ctx, reqs[i])
				if err != nil {
					errs[i] = err
					cancel() // abandon the rest of the batch
					continue
				}
				out[i] = resp
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// The cancel() above aborts the batch's other requests once one fails,
	// so their context.Canceled errors are collateral — report the
	// lowest-indexed REAL error, and fall back to the parent's own error
	// when the batch died because the caller cancelled.
	firstIdx, firstErr := -1, error(nil)
	for i, err := range errs {
		if err == nil {
			continue
		}
		if firstIdx == -1 {
			firstIdx, firstErr = i, err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	if firstErr != nil {
		if perr := parent.Err(); perr != nil {
			return nil, perr
		}
		return nil, fmt.Errorf("request %d: %w", firstIdx, firstErr)
	}
	return out, nil
}

// Explain runs the request in tracing mode ONLY: one human-readable
// decision explanation per cell (the view behind cmd/annotate's -explain),
// without the annotation pass an AnnotateRequest with Trace set would also
// pay for. The request's knobs apply; Trace itself is ignored. Cancellation
// is checked between cell queries, like Annotate.
func (s *Service) Explain(ctx context.Context, req *AnnotateRequest) ([]string, error) {
	cfg, err := s.requestConfig(req)
	if err != nil {
		return nil, err
	}
	explanations, err := cfg.Explain(ctx, req.Table)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(explanations))
	for i, e := range explanations {
		out[i] = e.String()
	}
	return out, nil
}

// AnnotateBatch annotates the requests over the service's worker pool and
// returns the responses in request order. Every request is validated before
// any work starts; the first invalid request (or the first context error)
// fails the whole batch.
func (s *Service) AnnotateBatch(parent context.Context, reqs []*AnnotateRequest) ([]*AnnotateResponse, error) {
	cfgs := make([]annotate.Config, len(reqs))
	for i, req := range reqs {
		cfg, err := s.requestConfig(req)
		if err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
		cfgs[i] = cfg
	}
	out := make([]*AnnotateResponse, len(reqs))
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var firstErr error
	for ev := range s.stream(ctx, reqs, cfgs) {
		if ev.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("request %d: %w", ev.Index, ev.Err)
				cancel()
			}
			continue
		}
		out[ev.Index] = ev.Response
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// A cancellation racing the stream's sends can drop a completed
	// event instead of delivering an error for its index; a batch must
	// never surface that as a success with nil responses inside.
	for _, resp := range out {
		if resp == nil {
			if err := parent.Err(); err != nil {
				return nil, err
			}
			return nil, context.Canceled // unreachable: slots only stay empty after cancellation
		}
	}
	return out, nil
}

// StreamEvent is one completed request of an AnnotateStream call: the
// request's index in the input slice plus either its response or its error.
type StreamEvent struct {
	// Index is the position of the originating request in the reqs slice.
	Index int
	// Response is the completed response; nil when Err is set.
	Response *AnnotateResponse
	// Err is the request's failure: a *RequestError for invalid
	// requests, or ctx.Err() for requests overtaken by cancellation.
	Err error
}

// AnnotateStream annotates the requests over the service's worker pool and
// emits one StreamEvent per request as it completes — completion order, not
// request order; the Index field maps events back to requests. Response
// payloads are deterministic: the same request yields the same annotations
// at any parallelism, only the event order varies. The channel closes after
// the last event. The caller must drain the channel or cancel ctx;
// cancellation aborts unstarted requests and drops their events.
func (s *Service) AnnotateStream(ctx context.Context, reqs []*AnnotateRequest) <-chan StreamEvent {
	return s.stream(ctx, reqs, nil)
}

// stream is the shared fan-out behind AnnotateStream and AnnotateBatch.
// When cfgs is non-nil it carries one pre-validated config per request, so
// the batch path validates exactly once; with cfgs nil each request is
// validated as its worker picks it up and failures surface as per-event
// errors.
func (s *Service) stream(ctx context.Context, reqs []*AnnotateRequest, cfgs []annotate.Config) <-chan StreamEvent {
	out := make(chan StreamEvent)
	go func() {
		defer close(out)
		workers := s.parallelism
		if workers < 1 {
			workers = 1
		}
		if workers > len(reqs) {
			workers = len(reqs)
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					var resp *AnnotateResponse
					var err error
					if cfgs != nil {
						resp, err = s.run(ctx, cfgs[i], reqs[i])
					} else {
						resp, err = s.Annotate(ctx, reqs[i])
					}
					select {
					case out <- StreamEvent{Index: i, Response: resp, Err: err}:
					case <-ctx.Done():
						// Receiver cancelled; drop the event.
					}
				}
			}()
		}
	feed:
		for i := range reqs {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}()
	return out
}

// Classifier exposes the trained snippet classifiers: ClassifierSVM or
// ClassifierBayes (any other name returns the SVM).
func (s *Service) Classifier(name string) classify.Classifier {
	if name == ClassifierBayes {
		return s.lab.Bayes
	}
	return s.lab.SVM
}

// Engine exposes the simulated web search engine.
func (s *Service) Engine() *search.Engine { return s.lab.Engine }

// Seed is the seed the service's world was built from (for a snapshot boot,
// the seed recorded in the bundle manifest).
func (s *Service) Seed() int64 { return s.lab.Cfg.Seed }

// Scale is the corpus scale: ScaleSmall or ScaleFull.
func (s *Service) Scale() string { return s.scale }

// ClassifierName is the snippet classifier the service annotates with:
// ClassifierSVM or ClassifierBayes.
func (s *Service) ClassifierName() string { return s.clf }

// BuildDuration is the wall-clock cost of New: the full world build, or the
// snapshot load for a snapshot-booted service.
func (s *Service) BuildDuration() time.Duration { return s.buildDur }

// Snapshot describes the bundle the service booted from; nil when the world
// was built from scratch.
func (s *Service) Snapshot() *SnapshotInfo { return s.snap }

// Gazetteer exposes the mutable geocoding substrate the universe was built
// with; the pipeline itself serves from the frozen form (see Geo). It is nil
// for a snapshot-booted service, which carries only the frozen form.
func (s *Service) Gazetteer() *gazetteer.Gazetteer {
	if s.lab.World == nil {
		return nil
	}
	return s.lab.World.Gaz
}

// Geo exposes the immutable gazetteer the annotation pipeline and the
// geocode endpoint serve from.
func (s *Service) Geo() *gazetteer.Frozen { return s.lab.Geo }

// KB exposes the DBpedia-like knowledge base.
func (s *Service) KB() *kb.KB { return s.lab.KB }

// World exposes the synthetic universe (entities, gold types).
func (s *Service) World() *world.World { return s.lab.World }

// Lab exposes the full experimental apparatus for benchmark harnesses.
func (s *Service) Lab() *eval.Lab { return s.lab }

// System returns the deprecated pre-v1 facade over this service, for code
// mid-migration that still needs a *System (see System's doc).
func (s *Service) System() *System { return &System{svc: s} }
