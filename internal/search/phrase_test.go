package search

import (
	"reflect"
	"testing"
)

func TestSplitPhrases(t *testing.T) {
	cases := []struct {
		in        string
		phrases   []string
		remainder string
	}{
		{`"Chez Martin" restaurant`, []string{"Chez Martin"}, "restaurant"},
		{`melisse`, nil, "melisse"},
		{`"a" "b c" d`, []string{"a", "b c"}, "d"},
		// A dangling quote becomes a space rather than leaking into the
		// remainder; the text around it ranks as plain terms.
		{`"unterminated phrase`, nil, `unterminated phrase`},
		{`melisse "restaurant`, nil, `melisse  restaurant`},
		{`museum"gallery`, nil, `museum gallery`},
		{`""`, nil, ""},
	}
	for _, c := range cases {
		phrases, remainder := splitPhrases(c.in)
		if !reflect.DeepEqual(phrases, c.phrases) || remainder != c.remainder {
			t.Errorf("splitPhrases(%q) = %v, %q; want %v, %q",
				c.in, phrases, remainder, c.phrases, c.remainder)
		}
	}
}

func phraseIndex() *Index {
	ix := NewIndex()
	ix.Add(Document{URL: "p1", Title: "Chez Martin", Body: "chez martin is a dining restaurant with a seasonal menu and chef specials"})
	ix.Add(Document{URL: "p2", Title: "Martin Chez", Body: "martin chez writes about restaurant kitchens and menu design for chefs"})
	ix.Add(Document{URL: "p3", Title: "Chez place", Body: "chez nothing here martin appears far away restaurant menu"})
	return ix
}

func TestSearchPhraseRequiresAdjacency(t *testing.T) {
	ix := phraseIndex()
	res := ix.SearchPhrase(`"chez martin" restaurant`, 10)
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1 (only p1 has the adjacent phrase)", len(res))
	}
	if res[0].URL != "p1" {
		t.Errorf("got %s, want p1", res[0].URL)
	}
}

func TestSearchPhraseFallsBackWithoutQuotes(t *testing.T) {
	ix := phraseIndex()
	plain := ix.Search("chez martin restaurant", 10)
	viaPhrase := ix.SearchPhrase("chez martin restaurant", 10)
	if len(plain) != len(viaPhrase) {
		t.Fatalf("unquoted SearchPhrase diverges from Search: %d vs %d", len(viaPhrase), len(plain))
	}
	for i := range plain {
		if plain[i] != viaPhrase[i] {
			t.Errorf("result %d differs", i)
		}
	}
}

func TestSearchPhraseStemsInsidePhrase(t *testing.T) {
	ix := NewIndex()
	ix.Add(Document{URL: "p1", Title: "x", Body: "national museums collection hosts paintings"})
	res := ix.SearchPhrase(`"national museum"`, 5)
	if len(res) != 1 {
		t.Errorf("stemmed phrase match failed: %d results", len(res))
	}
}

func TestSearchPhraseNoMatch(t *testing.T) {
	ix := phraseIndex()
	if res := ix.SearchPhrase(`"martin restaurant"`, 5); len(res) != 0 {
		t.Errorf("non-adjacent phrase matched: %v", res)
	}
	if res := ix.SearchPhrase(`"zzz yyy"`, 5); len(res) != 0 {
		t.Errorf("unknown phrase matched: %v", res)
	}
}

func TestSearchPhraseRespectsK(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 20; i++ {
		ix.Add(Document{URL: string(rune('a' + i)), Title: "x", Body: "grand hotel lobby with rooms and suites"})
	}
	if res := ix.SearchPhrase(`"grand hotel"`, 3); len(res) != 3 {
		t.Errorf("k ignored: %d results", len(res))
	}
}
