package search

import "slices"

// Columnar scoring kernel. At Freeze time the pointer-heavy postings map is
// compiled into a flat columnar form — a term-id dictionary, CSR posting
// columns, and a precomputed per-posting partial-score column — so the BM25
// hot loop the batched annotate path bottoms out in is a block-at-a-time
// walk over contiguous arrays instead of a map lookup plus per-posting
// floating-point pipeline.
//
// Bit-identity. The scalar loop this kernel replaced computed, per posting,
//
//	acc.scores[p.doc] += idf * tf * (bm25K1 + 1) / (tf + normK[p.doc])
//
// Every operand of that expression is frozen state: idf and normK are derived
// at Freeze time, tf is stored in the posting. The compiler therefore
// evaluates the exact expression — same operand order, same operations — once
// per posting at Freeze time and stores the result in the contribution
// column; the query-time kernel only replays the additions. Because (a) the
// stored contribution is the identical float64 the scalar loop would have
// produced, (b) postings within a term stay in doc order and terms are
// scored in query-term order, every accumulator receives the same additions
// in the same order and final scores are bit-identical, not merely close.
// The reference differential suite, FuzzShardedSearchEquivalence and the
// cmd/experiments goldens all enforce this.
//
// Language pre-filter. Only English documents can ever surface in results
// (the paper's algorithm requests English pages), and the scalar path
// filtered them at heap-push time after paying to score them. The compiled
// form splits each term's postings into an English section (doc + tf +
// contribution — what the kernel scores) and a non-English section (doc +
// tf only — never scored, kept so the columns remain a faithful round-trip
// of the postings map; see mergePostings and the compiler property test).
// Dropping non-English docs from the accumulator is invisible in the output:
// the top-k heap order is a strict total order (score desc, doc asc), so the
// returned hits are a function of the scored candidate set, which loses only
// documents the old path filtered anyway.
type columns struct {
	// termID maps a term to its column id; ids are assigned in sorted term
	// order so compilation is deterministic for a given corpus.
	termID map[string]int32
	// terms is the inverse mapping (column id -> term).
	terms []string

	// English CSR sections, the scoring kernel's only inputs: term id t's
	// postings live at engDoc/engTF/engContrib[engOff[t]:engOff[t+1]],
	// in ascending doc order. engContrib[i] is the posting's full
	// precomputed BM25 contribution.
	engOff     []int32
	engDoc     []int32
	engTF      []int32
	engContrib []float64

	// Non-English CSR sections, never scored: term id t's postings live at
	// othDoc/othTF[othOff[t]:othOff[t+1]], in ascending doc order.
	othOff []int32
	othDoc []int32
	othTF  []int32

	// ordAll shares engOff's offsets: term t's section holds a permutation
	// of its local posting indices sorted by (contribution desc, doc asc) —
	// the top-k total order restricted to docs whose whole score is that one
	// term. Threshold-algorithm selection walks these instead of the doc
	// columns, touching only the postings that can still reach the top-k.
	ordAll []int32
	// contribDense[t], non-nil for big terms (english df >= bigTermDF), is
	// term t's contribution column scattered into a dense per-doc array (0
	// for docs the term does not contain), so exact rescoring costs one load
	// instead of a binary search over the term's postings. Indexed by term
	// id, not a map: the scoring path tests it per query term.
	contribDense [][]float64
	// firstPos[t], non-nil for the same big terms, holds per doc the term's
	// first content position plus one (0: the term has no content position in
	// the doc). Snippet anchoring reads it in one load where a small term
	// costs a binary search over its positional postings — and big terms are
	// exactly the ones whose positional lists make that search long.
	firstPos [][]int32
	// posLists[t] aliases term t's positional posting list, so the snippet
	// path resolves small-term anchors by term id without hashing the term
	// string per hit.
	posLists [][]posPosting
}

// bigTermDF is the english document frequency at or above which a term gets
// a precomputed topOrder permutation. Below it, a dense column walk is cheap
// enough that the extra freeze-time sort and memory buy nothing.
const bigTermDF = 1024

// compileColumns flattens the postings map into the frozen columnar form.
// It must run after the idf table and normK are installed — contributions
// read both — i.e. at the end of Freeze/freezeShared. It is split into
// buildCSR + sortOrd + scatterDense so the persistence fast path can reuse
// the exact contribution arithmetic while installing a stored ordAll
// permutation instead of re-sorting (see persist.go).
func (ix *Index) compileColumns() *columns {
	c := ix.buildCSR()
	c.sortOrd()
	ix.scatterDense(c)
	return c
}

// buildCSR compiles the dictionary, the English/non-English CSR sections and
// the positional aliases — everything except ordAll and the big-term dense
// arrays. Contributions are computed here, and only here, so every caller
// produces bit-identical columns.
func (ix *Index) buildCSR() *columns {
	terms := sortedTerms(ix.postings)
	c := &columns{
		termID: make(map[string]int32, len(terms)),
		terms:  terms,
		engOff: make([]int32, 1, len(terms)+1),
		othOff: make([]int32, 1, len(terms)+1),
	}
	nEng, nOth := 0, 0
	for _, plist := range ix.postings {
		for _, p := range plist {
			if ix.english[p.doc] {
				nEng++
			} else {
				nOth++
			}
		}
	}
	c.engDoc = make([]int32, 0, nEng)
	c.engTF = make([]int32, 0, nEng)
	c.engContrib = make([]float64, 0, nEng)
	c.othDoc = make([]int32, 0, nOth)
	c.othTF = make([]int32, 0, nOth)
	for id, term := range terms {
		c.termID[term] = int32(id)
		idf := ix.idf[term]
		for _, p := range ix.postings[term] {
			if ix.english[p.doc] {
				tf := float64(p.tf)
				c.engDoc = append(c.engDoc, int32(p.doc))
				c.engTF = append(c.engTF, int32(p.tf))
				// The exact expression of the former scalar loop; see the
				// bit-identity note above before changing its shape.
				c.engContrib = append(c.engContrib, idf*tf*(bm25K1+1)/(tf+ix.normK[p.doc]))
			} else {
				c.othDoc = append(c.othDoc, int32(p.doc))
				c.othTF = append(c.othTF, int32(p.tf))
			}
		}
		c.engOff = append(c.engOff, int32(len(c.engDoc)))
		c.othOff = append(c.othOff, int32(len(c.othDoc)))
	}
	c.posLists = make([][]posPosting, len(terms))
	for tid, term := range terms {
		c.posLists[tid] = ix.positions[term]
	}
	return c
}

// sortOrd derives the ordAll permutation from the English sections: per term,
// its local posting indices sorted by (contribution desc, doc asc).
func (c *columns) sortOrd() {
	c.ordAll = make([]int32, len(c.engDoc))
	for tid := range c.terms {
		lo, hi := c.engOff[tid], c.engOff[tid+1]
		docs := c.engDoc[lo:hi]
		contribs := c.engContrib[lo:hi]
		ord := c.ordAll[lo:hi]
		for i := range ord {
			ord[i] = int32(i)
		}
		slices.SortFunc(ord, func(a, b int32) int {
			if contribs[a] != contribs[b] {
				if contribs[a] > contribs[b] {
					return -1
				}
				return 1
			}
			return int(docs[a]) - int(docs[b])
		})
	}
}

// scatterDense materializes the big-term dense contribution and first-position
// arrays. Pure scatter from already-built columns, no ordering dependency.
func (ix *Index) scatterDense(c *columns) {
	c.contribDense = make([][]float64, len(c.terms))
	c.firstPos = make([][]int32, len(c.terms))
	for tid := range c.terms {
		lo, hi := c.engOff[tid], c.engOff[tid+1]
		if int(hi-lo) < bigTermDF {
			continue
		}
		docs := c.engDoc[lo:hi]
		contribs := c.engContrib[lo:hi]
		dense := make([]float64, len(ix.docs))
		for i, d := range docs {
			dense[d] = contribs[i]
		}
		c.contribDense[tid] = dense
		fp := make([]int32, len(ix.docs))
		for _, pp := range ix.positions[c.terms[tid]] {
			fp[pp.doc] = pp.pos[0] + 1
		}
		c.firstPos[tid] = fp
	}
}

// scoreTerm adds term id tid's precomputed posting contributions into the
// dense accumulator, recording each first-touched doc so selection can
// enumerate and reset the sparse partials. Only a query's pre-final terms
// come through here (the final term's pass is merged into selection) — for
// the annotate workload those are usually the rare high-idf name terms with
// short posting lists. The block body is hand-unrolled 4 wide: a term's
// postings are distinct docs, so the four loads never alias the four stores
// and the additions (plus the dependent scores[] bounds checks, the only
// ones the compiler cannot eliminate) overlap instead of serialising.
func (c *columns) scoreTerm(acc *accumulator, tid int32) {
	lo, hi := c.engOff[tid], c.engOff[tid+1]
	docs := c.engDoc[lo:hi]
	if len(docs) == 0 {
		return
	}
	// Reslice to a common length so the contribs indexing below is
	// provably in bounds wherever docs indexing is.
	contribs := c.engContrib[lo:hi][:len(docs)]
	scores := acc.scores
	// First-touch recording writes through the touched window
	// unconditionally and advances n only when the store counted — no
	// append bookkeeping, no conditionally-executed stores (the accumulator
	// preallocates one slot per doc, so the window cannot overflow).
	n := len(acc.touched)
	touched := acc.touched[:cap(acc.touched)]
	i := 0
	for ; i+3 < len(docs); i += 4 {
		d0, d1, d2, d3 := docs[i], docs[i+1], docs[i+2], docs[i+3]
		s0, s1, s2, s3 := scores[d0], scores[d1], scores[d2], scores[d3]
		touched[n] = d0
		if s0 == 0 {
			n++
		}
		touched[n] = d1
		if s1 == 0 {
			n++
		}
		touched[n] = d2
		if s2 == 0 {
			n++
		}
		touched[n] = d3
		if s3 == 0 {
			n++
		}
		scores[d0] = s0 + contribs[i]
		scores[d1] = s1 + contribs[i+1]
		scores[d2] = s2 + contribs[i+2]
		scores[d3] = s3 + contribs[i+3]
	}
	for ; i < len(docs); i++ {
		d := docs[i]
		s := scores[d]
		touched[n] = d
		if s == 0 {
			n++
		}
		scores[d] = s + contribs[i]
	}
	acc.touched = touched[:n]
}

// postingsOf reconstructs term's full posting list from the compiled
// columns, merging the English and non-English sections back into ascending
// doc order. It exists for the compiler's round-trip property test: columns
// must preserve exactly the postings state they were compiled from.
func (c *columns) postingsOf(term string) []posting {
	tid, ok := c.termID[term]
	if !ok {
		return nil
	}
	elo, ehi := c.engOff[tid], c.engOff[tid+1]
	olo, ohi := c.othOff[tid], c.othOff[tid+1]
	out := make([]posting, 0, (ehi-elo)+(ohi-olo))
	e, o := elo, olo
	for e < ehi && o < ohi {
		if c.engDoc[e] < c.othDoc[o] {
			out = append(out, posting{doc: int(c.engDoc[e]), tf: int(c.engTF[e])})
			e++
		} else {
			out = append(out, posting{doc: int(c.othDoc[o]), tf: int(c.othTF[o])})
			o++
		}
	}
	for ; e < ehi; e++ {
		out = append(out, posting{doc: int(c.engDoc[e]), tf: int(c.engTF[e])})
	}
	for ; o < ohi; o++ {
		out = append(out, posting{doc: int(c.othDoc[o]), tf: int(c.othTF[o])})
	}
	return out
}

// termResolver memoizes term -> column-id lookups across one query batch, so
// a term shared by many queries in the batch (the annotate workload's
// "<name> <type>" queries share their type suffixes) resolves against the
// dictionary once per batch instead of once per query.
type termResolver struct {
	col  *columns
	memo map[string]int32 // -1: term not in the index
}

func newTermResolver(col *columns) termResolver {
	return termResolver{col: col, memo: make(map[string]int32, 64)}
}

// resolve maps qterms to column ids (absent terms -1), appending into tids'
// storage so one scratch slice serves the whole batch.
func (r *termResolver) resolve(qterms []string, tids []int32) []int32 {
	tids = tids[:0]
	for _, t := range qterms {
		id, ok := r.memo[t]
		if !ok {
			id, ok = r.col.termID[t]
			if !ok {
				id = -1
			}
			r.memo[t] = id
		}
		tids = append(tids, id)
	}
	return tids
}
