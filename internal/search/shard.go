package search

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/textproc"
)

// ShardedIndex partitions a corpus across N shard Indexes so one query's
// scoring work can run on N cores, while staying byte-identical to the
// monolithic Index: documents are assigned round-robin (global doc id g
// lives in shard g%N at local id g/N — a monotonic mapping, so per-shard
// doc order equals global order restricted to the shard), ranking constants
// (per-term idf, average document length) are derived corpus-wide at freeze
// time and installed into every shard, and per-shard bounded top-k results
// merge under the exact (score desc, global doc asc) total order. Because a
// document's BM25 score accumulates per query term in query order within
// its one owning shard, every float operation matches the monolithic
// engine's and scores are bit-identical, not merely close.
//
// Concurrency mirrors Index: Add is single-goroutine, queries are safe for
// any number of concurrent readers once frozen (NewShardedEngine freezes),
// and an unfrozen query freezes on demand under a mutex.
type ShardedIndex struct {
	shards []*Index
	nDocs  int

	frozen   atomic.Bool
	freezeMu sync.Mutex

	// queries[s] counts queries scored by shard s (every query fans out to
	// all shards, so the counts advance together; they are exposed on
	// /statz to make the fan-out observable).
	queries []atomic.Int64
}

// NewShardedIndex returns an empty index over max(1, shards) shards.
func NewShardedIndex(shards int) *ShardedIndex {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedIndex{
		shards:  make([]*Index, shards),
		queries: make([]atomic.Int64, shards),
	}
	for i := range s.shards {
		s.shards[i] = NewIndex()
	}
	return s
}

// NumShards returns the shard count.
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

// Len returns the number of indexed documents across all shards.
func (s *ShardedIndex) Len() int { return s.nDocs }

// ShardQueryCounts returns a snapshot of per-shard query counts.
func (s *ShardedIndex) ShardQueryCounts() []int64 {
	out := make([]int64, len(s.queries))
	for i := range s.queries {
		out[i] = s.queries[i].Load()
	}
	return out
}

// ResetQueryCounts zeroes the per-shard query counters.
func (s *ShardedIndex) ResetQueryCounts() {
	for i := range s.queries {
		s.queries[i].Store(0)
	}
}

// Add indexes a document into its round-robin shard. Adding un-freezes the
// sharded index; the next query (or Freeze call) re-derives the global
// ranking state.
func (s *ShardedIndex) Add(doc Document) {
	s.shards[s.nDocs%len(s.shards)].Add(doc)
	s.nDocs++
	s.frozen.Store(false)
}

// Freeze derives the corpus-wide ranking state — global per-term document
// frequencies, the global average document length — and installs it into
// every shard, exactly as the monolithic Index.Freeze would derive it over
// the whole corpus. Idempotent; Add un-freezes.
func (s *ShardedIndex) Freeze() {
	s.freezeMu.Lock()
	defer s.freezeMu.Unlock()
	if s.frozen.Load() {
		return
	}
	df := make(map[string]int)
	totalLen := 0
	for _, sh := range s.shards {
		for t, plist := range sh.postings {
			df[t] += len(plist)
		}
		totalLen += sh.totalLen
	}
	n := float64(s.nDocs)
	idf := make(map[string]float64, len(df))
	for t, d := range df {
		dff := float64(d)
		idf[t] = math.Log((n-dff+0.5)/(dff+0.5) + 1)
	}
	avgLen := 0.0
	if n > 0 {
		avgLen = float64(totalLen) / n
	}
	// Shards share the one read-only idf map.
	for _, sh := range s.shards {
		sh.freezeShared(idf, avgLen)
	}
	s.frozen.Store(true)
}

func (s *ShardedIndex) ensureFrozen() {
	if !s.frozen.Load() {
		s.Freeze()
	}
}

// global converts a shard-local hit list to global doc ids in place.
func global(hits []hit, shard, n int) []hit {
	for i := range hits {
		hits[i].doc = hits[i].doc*n + shard
	}
	return hits
}

// topDocs runs the bounded top-k on every shard — in parallel when there is
// more than one — and merges the per-shard lists into the global top-k under
// the exact monolithic order. The returned hits carry global doc ids.
func (s *ShardedIndex) topDocs(qterms []string, k int) []hit {
	s.ensureFrozen()
	n := len(s.shards)
	if n == 1 {
		s.queries[0].Add(1)
		sh := s.shards[0]
		acc := sh.getAccumulator()
		hits := append([]hit(nil), sh.topDocs(acc, qterms, k)...)
		sh.putAccumulator(acc)
		return hits
	}
	lists := make([][]hit, n)
	var wg sync.WaitGroup
	for si, sh := range s.shards {
		wg.Add(1)
		go func(si int, sh *Index) {
			defer wg.Done()
			s.queries[si].Add(1)
			acc := sh.getAccumulator()
			lists[si] = global(append([]hit(nil), sh.topDocs(acc, qterms, k)...), si, n)
			sh.putAccumulator(acc)
		}(si, sh)
	}
	wg.Wait()
	return mergeHits(lists, k)
}

// topDocsBatchLocal scores a whole batch of pre-normalized queries against
// this one index: term ids are resolved once per batch through a shared
// resolver, one pooled accumulator serves every query, and out[i] is nil for
// nil qterms[i]. Unlike topDocs the returned hits are copies, not aliases of
// accumulator storage — a batch needs all of them alive at once.
func (ix *Index) topDocsBatchLocal(qterms [][]string, k int) [][]hit {
	ix.ensureFrozen()
	acc := ix.getAccumulator()
	defer ix.putAccumulator(acc)
	r := newTermResolver(ix.col)
	var tids []int32
	out := make([][]hit, len(qterms))
	for i, terms := range qterms {
		if terms == nil {
			continue
		}
		tids = r.resolve(terms, tids)
		out[i] = append([]hit(nil), ix.topDocsResolved(acc, tids, k)...)
	}
	return out
}

// topDocsBatch is the batch form of topDocs: each shard scores the whole
// query batch in one goroutine through its columnar kernel (normalized query
// terms are shared across shards, term-id resolution is shared across the
// batch within each shard), then the per-shard lists merge per query. out[i]
// is exactly topDocs(qterms[i], k).
func (s *ShardedIndex) topDocsBatch(qterms [][]string, k int) [][]hit {
	s.ensureFrozen()
	n := len(s.shards)
	scored := 0
	for _, terms := range qterms {
		if terms != nil {
			scored++
		}
	}
	if n == 1 {
		s.queries[0].Add(int64(scored))
		// Global ids equal local ids in the one-shard layout.
		return s.shards[0].topDocsBatchLocal(qterms, k)
	}
	lists := make([][][]hit, n) // lists[shard][query]
	var wg sync.WaitGroup
	for si, sh := range s.shards {
		wg.Add(1)
		go func(si int, sh *Index) {
			defer wg.Done()
			s.queries[si].Add(int64(scored))
			perQuery := sh.topDocsBatchLocal(qterms, k)
			for i := range perQuery {
				perQuery[i] = global(perQuery[i], si, n)
			}
			lists[si] = perQuery
		}(si, sh)
	}
	wg.Wait()
	out := make([][]hit, len(qterms))
	scratch := make([][]hit, n)
	for i := range qterms {
		if qterms[i] == nil {
			continue
		}
		for si := range lists {
			scratch[si] = lists[si][i]
		}
		out[i] = mergeHits(scratch, k)
	}
	return out
}

// mergeHits merges per-shard hit lists (each sorted best-first under the
// (score desc, doc asc) order) into the global top-k, preserving that exact
// total order. Shard counts are small, so an O(k·shards) selection is used.
func mergeHits(lists [][]hit, k int) []hit {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total > k {
		total = k
	}
	out := make([]hit, 0, total)
	heads := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for si, l := range lists {
			if heads[si] >= len(l) {
				continue
			}
			if best < 0 || worseHit(lists[best][heads[best]], l[heads[si]]) {
				best = si
			}
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// materialize renders globally-merged hits, generating each snippet in the
// document's owning shard (the stems and body tokens live there).
func (s *ShardedIndex) materialize(hits []hit, qterms []string) []Result {
	out := make([]Result, len(hits))
	if len(hits) == 0 {
		return out
	}
	n := len(s.shards)
	for i, h := range hits {
		sh := s.shards[h.doc%n]
		local := h.doc / n
		d := sh.docs[local]
		out[i] = Result{
			URL:     d.URL,
			Title:   d.Title,
			Snippet: sh.snippet(local, qterms),
			Score:   h.score,
		}
	}
	return out
}

// Search returns the top-k English documents for the query under BM25 —
// byte-identical to the monolithic Index.Search over the same corpus.
func (s *ShardedIndex) Search(query string, k int) []Result {
	if k <= 0 || s.nDocs == 0 {
		return nil
	}
	qterms := textproc.NormalizeTokens(query)
	if len(qterms) == 0 {
		return nil
	}
	return s.materialize(s.topDocs(qterms, k), qterms)
}

// SearchBatch resolves a batch of queries: out[i] is exactly
// Search(queries[i], k). Queries are normalized once, duplicate queries are
// scored and materialized once (later occurrences copy the first's results),
// and every shard scores the deduplicated batch in a single parallel pass
// with batch-shared term-id resolution, so the per-query fan-out and setup
// cost is amortized across the batch. Per-shard query counters count scored
// (unique) queries.
func (s *ShardedIndex) SearchBatch(queries []string, k int) [][]Result {
	out := make([][]Result, len(queries))
	if k <= 0 || s.nDocs == 0 {
		return out
	}
	qterms := make([][]string, len(queries))
	dupOf := make([]int, len(queries))
	seen := make(map[string]int, len(queries))
	for i, q := range queries {
		if j, ok := seen[q]; ok {
			dupOf[i] = j
			continue
		}
		seen[q] = i
		dupOf[i] = -1
		if t := textproc.NormalizeTokens(q); len(t) > 0 {
			qterms[i] = t
		}
	}
	hits := s.topDocsBatch(qterms, k)
	for i := range queries {
		if j := dupOf[i]; j >= 0 {
			out[i] = copyResults(out[j])
			continue
		}
		if qterms[i] == nil {
			continue
		}
		out[i] = s.materialize(hits[i], qterms[i])
	}
	return out
}

// SearchPhrase is Search with phrase semantics for double-quoted segments,
// byte-identical to Index.SearchPhrase: the same 4k-candidate BM25 list
// (merged globally), verified in candidate order against each owning
// shard's positional postings, truncated to the first k survivors.
func (s *ShardedIndex) SearchPhrase(query string, k int) []Result {
	phrases, remainder := splitPhrases(query)
	if len(phrases) == 0 {
		return s.Search(query, k)
	}
	if k <= 0 || s.nDocs == 0 {
		return nil
	}
	qterms := textproc.NormalizeTokens(remainder + " " + strings.Join(phrases, " "))
	if len(qterms) == 0 {
		return nil
	}
	want := make([][]string, len(phrases))
	for i, p := range phrases {
		want[i] = textproc.NormalizeTokens(p)
	}
	candidates := s.topDocs(qterms, k*4)
	n := len(s.shards)
	var keep []hit
	for _, h := range candidates {
		sh, local := s.shards[h.doc%n], h.doc/n
		ok := true
		for _, w := range want {
			if !sh.containsPhrase(local, w) {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, h)
			if len(keep) == k {
				break
			}
		}
	}
	if len(keep) == 0 {
		return nil
	}
	return s.materialize(keep, qterms)
}
