package search

import (
	"bytes"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	ix := smallIndex()
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("loaded %d docs, want %d", loaded.Len(), ix.Len())
	}
	// Identical search behaviour.
	for _, q := range []string{"louvre museum", "melisse", "melisse santa monica", "forecast"} {
		a := ix.Search(q, 5)
		b := loaded.Search(q, 5)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("query %q result %d differs: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadIndexRejectsTruncated(t *testing.T) {
	ix := smallIndex()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, 9, len(data) / 2, len(data) - 3} {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadIndexRejectsWrongVersion(t *testing.T) {
	ix := smallIndex()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("wrong version accepted")
	}
}
