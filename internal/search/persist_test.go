package search

import (
	"bytes"
	"errors"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	ix := smallIndex()
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("loaded %d docs, want %d", loaded.Len(), ix.Len())
	}
	// Identical search behaviour.
	for _, q := range []string{"louvre museum", "melisse", "melisse santa monica", "forecast"} {
		a := ix.Search(q, 5)
		b := loaded.Search(q, 5)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("query %q result %d differs: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadIndexRejectsTruncated(t *testing.T) {
	ix := smallIndex()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, 9, len(data) / 2, len(data) - 3} {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// failAfter is an io.Writer that accepts n bytes then fails, driving every
// write-error return in the persist writers.
type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		k := w.n
		w.n = 0
		return k, errors.New("failAfter: write refused")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriteToPropagatesErrors sweeps the failure point across the whole
// stream for both writers: every short write must surface an error (never a
// silent truncated file).
func TestWriteToPropagatesErrors(t *testing.T) {
	mono := smallIndex()
	var buf bytes.Buffer
	if _, err := mono.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < buf.Len(); cut += 7 {
		if _, err := mono.WriteTo(&failAfter{n: cut}); err == nil {
			t.Fatalf("monolithic WriteTo with write failure at byte %d reported success", cut)
		}
	}

	sharded := legacyCorpus(3)
	buf.Reset()
	if _, err := sharded.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < buf.Len(); cut += 7 {
		if _, err := sharded.WriteTo(&failAfter{n: cut}); err == nil {
			t.Fatalf("sharded WriteTo with write failure at byte %d reported success", cut)
		}
	}
}

// TestReadV4TruncationSweep: every proper prefix of a v4 stream must be
// rejected with an error — no prefix may load and none may panic.
func TestReadV4TruncationSweep(t *testing.T) {
	sharded := legacyCorpus(2)
	var buf bytes.Buffer
	if _, err := sharded.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadShardedIndexBytes(data[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", cut, len(data))
		}
	}
}

func TestReadIndexRejectsWrongVersion(t *testing.T) {
	ix := smallIndex()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("wrong version accepted")
	}
}
