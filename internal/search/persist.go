package search

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Index persistence: a compact binary snapshot so a corpus indexed once can
// be reloaded without re-tokenising (building the synthetic web index is the
// slowest part of system construction). Format (little-endian):
//
//	magic "TIDX" | version u32
//	docCount u32, then per doc: url, title, body, lang (len-prefixed strings)
//	termCount u32, then per term: term string, postings u32,
//	    then per posting: doc u32, tf u32
//	posTermCount u32, then per term: term string, docs u32,
//	    then per doc: doc u32, positions u32, then each position u32
//
// Version 2 added the positional section: the content-word positions phrase
// search matches against round-trip with the index and are verified against
// the rebuilt state on load. Document lengths, body tokens, stems and
// postings are reconstructed on load from the stored bodies, keeping the
// file small at the cost of a cheap re-scan.

const (
	indexMagic   = "TIDX"
	indexVersion = 2
)

// sortedTerms returns m's keys sorted, so snapshots are byte-reproducible.
func sortedTerms[V any](m map[string]V) []string {
	terms := make([]string, 0, len(m))
	for t := range m {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// WriteTo serialises the index. It returns the byte count written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(data any) error {
		return binary.Write(bw, binary.LittleEndian, data)
	}
	writeString := func(s string) error {
		if err := write(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.Write([]byte(s))
		return err
	}

	if _, err := bw.Write([]byte(indexMagic)); err != nil {
		return bw.n, err
	}
	if err := write(uint32(indexVersion)); err != nil {
		return bw.n, err
	}
	if err := write(uint32(len(ix.docs))); err != nil {
		return bw.n, err
	}
	for _, d := range ix.docs {
		for _, s := range []string{d.URL, d.Title, d.Body, d.Lang} {
			if err := writeString(s); err != nil {
				return bw.n, err
			}
		}
	}
	if err := write(uint32(len(ix.postings))); err != nil {
		return bw.n, err
	}
	for _, term := range sortedTerms(ix.postings) {
		plist := ix.postings[term]
		if err := writeString(term); err != nil {
			return bw.n, err
		}
		if err := write(uint32(len(plist))); err != nil {
			return bw.n, err
		}
		for _, p := range plist {
			if err := write(uint32(p.doc)); err != nil {
				return bw.n, err
			}
			if err := write(uint32(p.tf)); err != nil {
				return bw.n, err
			}
		}
	}
	if err := write(uint32(len(ix.positions))); err != nil {
		return bw.n, err
	}
	for _, term := range sortedTerms(ix.positions) {
		plist := ix.positions[term]
		if err := writeString(term); err != nil {
			return bw.n, err
		}
		if err := write(uint32(len(plist))); err != nil {
			return bw.n, err
		}
		for _, p := range plist {
			if err := write(uint32(p.doc)); err != nil {
				return bw.n, err
			}
			if err := write(uint32(len(p.pos))); err != nil {
				return bw.n, err
			}
			for _, pos := range p.pos {
				if err := write(uint32(pos)); err != nil {
					return bw.n, err
				}
			}
		}
	}
	return bw.n, bw.w.(*bufio.Writer).Flush()
}

// ReadIndex loads an index previously written with WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	read := func(data any) error {
		return binary.Read(br, binary.LittleEndian, data)
	}
	readString := func() (string, error) {
		var n uint32
		if err := read(&n); err != nil {
			return "", err
		}
		if n > 1<<26 {
			return "", fmt.Errorf("search: corrupt index (string length %d)", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("search: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("search: bad magic %q", magic)
	}
	var version uint32
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("search: unsupported index version %d", version)
	}

	// Rebuild by re-adding the documents: postings, positions, lengths and
	// body tokens are all derived state, and re-deriving them guarantees
	// the loaded index behaves identically to a freshly built one.
	var docCount uint32
	if err := read(&docCount); err != nil {
		return nil, err
	}
	ix := NewIndex()
	for i := uint32(0); i < docCount; i++ {
		var fields [4]string
		for f := range fields {
			s, err := readString()
			if err != nil {
				return nil, fmt.Errorf("search: doc %d: %w", i, err)
			}
			fields[f] = s
		}
		ix.Add(Document{URL: fields[0], Title: fields[1], Body: fields[2], Lang: fields[3]})
	}

	// Verify the stored postings match the rebuilt ones (an integrity
	// check that also keeps the format honest).
	var termCount uint32
	if err := read(&termCount); err != nil {
		return nil, err
	}
	for i := uint32(0); i < termCount; i++ {
		term, err := readString()
		if err != nil {
			return nil, err
		}
		var n uint32
		if err := read(&n); err != nil {
			return nil, err
		}
		rebuilt := ix.postings[term]
		if uint32(len(rebuilt)) != n {
			return nil, fmt.Errorf("search: postings mismatch for %q: %d stored, %d rebuilt", term, n, len(rebuilt))
		}
		for j := uint32(0); j < n; j++ {
			var doc, tf uint32
			if err := read(&doc); err != nil {
				return nil, err
			}
			if err := read(&tf); err != nil {
				return nil, err
			}
			if rebuilt[j].doc != int(doc) || rebuilt[j].tf != int(tf) {
				return nil, fmt.Errorf("search: posting %d of %q differs", j, term)
			}
		}
	}

	// Same integrity check for the positional section.
	var posTermCount uint32
	if err := read(&posTermCount); err != nil {
		return nil, err
	}
	for i := uint32(0); i < posTermCount; i++ {
		term, err := readString()
		if err != nil {
			return nil, err
		}
		var n uint32
		if err := read(&n); err != nil {
			return nil, err
		}
		rebuilt := ix.positions[term]
		if uint32(len(rebuilt)) != n {
			return nil, fmt.Errorf("search: position lists mismatch for %q: %d stored, %d rebuilt", term, n, len(rebuilt))
		}
		for j := uint32(0); j < n; j++ {
			var doc, np uint32
			if err := read(&doc); err != nil {
				return nil, err
			}
			if err := read(&np); err != nil {
				return nil, err
			}
			if rebuilt[j].doc != int(doc) || uint32(len(rebuilt[j].pos)) != np {
				return nil, fmt.Errorf("search: position list %d of %q differs", j, term)
			}
			for pj := uint32(0); pj < np; pj++ {
				var pos uint32
				if err := read(&pos); err != nil {
					return nil, err
				}
				if rebuilt[j].pos[pj] != int32(pos) {
					return nil, fmt.Errorf("search: position %d of %q in doc %d differs", pj, term, doc)
				}
			}
		}
	}
	ix.Freeze()
	return ix, nil
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
