package search

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Index persistence: a compact binary snapshot so a corpus indexed once can
// be reloaded without re-tokenising (building the synthetic web index is the
// slowest part of system construction). Format (little-endian):
//
//	magic "TIDX" | version u32 | shardCount u32
//	docCount u32, then per doc: url, title, body, lang (len-prefixed
//	    strings), in global Add order
//	then per shard, in shard order:
//	    termCount u32, then per term: term string, postings u32,
//	        then per posting: doc u32, tf u32
//	    posTermCount u32, then per term: term string, docs u32,
//	        then per doc: doc u32, positions u32, then each position u32
//
// Version 2 added the positional section. Version 3 added the shardCount
// header field so a sharded layout round-trips: documents are stored once in
// global order (shard assignment is the deterministic round-robin of
// ShardedIndex.Add), and the postings/positions integrity sections repeat
// per shard with shard-local doc ids. A monolithic Index is the shardCount=1
// case; version-2 files (no shard field) still load. Document lengths, body
// tokens, stems and postings are reconstructed on load from the stored
// bodies, keeping the file small at the cost of a cheap re-scan.

const (
	indexMagic   = "TIDX"
	indexVersion = 3
)

// sortedTerms returns m's keys sorted, so snapshots are byte-reproducible.
func sortedTerms[V any](m map[string]V) []string {
	terms := make([]string, 0, len(m))
	for t := range m {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// persistWriter wraps the encoding helpers shared by both WriteTo variants.
type persistWriter struct {
	bw *bufio.Writer
	n  int64
}

func (pw *persistWriter) Write(p []byte) (int, error) {
	n, err := pw.bw.Write(p)
	pw.n += int64(n)
	return n, err
}

func (pw *persistWriter) u32(v uint32) error {
	return binary.Write(pw, binary.LittleEndian, v)
}

func (pw *persistWriter) str(s string) error {
	if err := pw.u32(uint32(len(s))); err != nil {
		return err
	}
	_, err := pw.Write([]byte(s))
	return err
}

// header writes magic, version and the shard count.
func (pw *persistWriter) header(shards int) error {
	if _, err := pw.Write([]byte(indexMagic)); err != nil {
		return err
	}
	if err := pw.u32(indexVersion); err != nil {
		return err
	}
	return pw.u32(uint32(shards))
}

// docs writes the document section in the given order.
func (pw *persistWriter) doc(d Document) error {
	for _, s := range []string{d.URL, d.Title, d.Body, d.Lang} {
		if err := pw.str(s); err != nil {
			return err
		}
	}
	return nil
}

// sections writes one shard's postings and positions integrity sections.
func (pw *persistWriter) sections(ix *Index) error {
	if err := pw.u32(uint32(len(ix.postings))); err != nil {
		return err
	}
	for _, term := range sortedTerms(ix.postings) {
		plist := ix.postings[term]
		if err := pw.str(term); err != nil {
			return err
		}
		if err := pw.u32(uint32(len(plist))); err != nil {
			return err
		}
		for _, p := range plist {
			if err := pw.u32(uint32(p.doc)); err != nil {
				return err
			}
			if err := pw.u32(uint32(p.tf)); err != nil {
				return err
			}
		}
	}
	if err := pw.u32(uint32(len(ix.positions))); err != nil {
		return err
	}
	for _, term := range sortedTerms(ix.positions) {
		plist := ix.positions[term]
		if err := pw.str(term); err != nil {
			return err
		}
		if err := pw.u32(uint32(len(plist))); err != nil {
			return err
		}
		for _, p := range plist {
			if err := pw.u32(uint32(p.doc)); err != nil {
				return err
			}
			if err := pw.u32(uint32(len(p.pos))); err != nil {
				return err
			}
			for _, pos := range p.pos {
				if err := pw.u32(uint32(pos)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteTo serialises the index as the shardCount=1 case of the v3 format.
// It returns the byte count written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	pw := &persistWriter{bw: bufio.NewWriter(w)}
	err := func() error {
		if err := pw.header(1); err != nil {
			return err
		}
		if err := pw.u32(uint32(len(ix.docs))); err != nil {
			return err
		}
		for _, d := range ix.docs {
			if err := pw.doc(d); err != nil {
				return err
			}
		}
		return pw.sections(ix)
	}()
	if err != nil {
		return pw.n, err
	}
	return pw.n, pw.bw.Flush()
}

// WriteTo serialises the sharded index: documents once in global order, then
// each shard's integrity sections. It returns the byte count written.
func (s *ShardedIndex) WriteTo(w io.Writer) (int64, error) {
	pw := &persistWriter{bw: bufio.NewWriter(w)}
	n := len(s.shards)
	err := func() error {
		if err := pw.header(n); err != nil {
			return err
		}
		if err := pw.u32(uint32(s.nDocs)); err != nil {
			return err
		}
		for g := 0; g < s.nDocs; g++ {
			if err := pw.doc(s.shards[g%n].docs[g/n]); err != nil {
				return err
			}
		}
		for _, sh := range s.shards {
			if err := pw.sections(sh); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil {
		return pw.n, err
	}
	return pw.n, pw.bw.Flush()
}

// persistReader wraps the decoding helpers shared by both readers.
type persistReader struct {
	br *bufio.Reader
}

func (pr *persistReader) u32(v *uint32) error {
	return binary.Read(pr.br, binary.LittleEndian, v)
}

func (pr *persistReader) str() (string, error) {
	var n uint32
	if err := pr.u32(&n); err != nil {
		return "", err
	}
	if n > 1<<26 {
		return "", fmt.Errorf("search: corrupt index (string length %d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(pr.br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// header reads and validates magic + version and returns the shard count
// (1 for version-2 files, which predate the field).
func (pr *persistReader) header() (int, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(pr.br, magic); err != nil {
		return 0, fmt.Errorf("search: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return 0, fmt.Errorf("search: bad magic %q", magic)
	}
	var version uint32
	if err := pr.u32(&version); err != nil {
		return 0, err
	}
	switch version {
	case 2:
		return 1, nil
	case indexVersion:
		var shards uint32
		if err := pr.u32(&shards); err != nil {
			return 0, err
		}
		if shards == 0 || shards > 1<<16 {
			return 0, fmt.Errorf("search: corrupt index (shard count %d)", shards)
		}
		return int(shards), nil
	}
	return 0, fmt.Errorf("search: unsupported index version %d", version)
}

// docs re-adds the stored documents through add, rebuilding all derived
// state (postings, positions, lengths, body tokens) so the loaded index
// behaves identically to a freshly built one.
func (pr *persistReader) docs(add func(Document)) error {
	var docCount uint32
	if err := pr.u32(&docCount); err != nil {
		return err
	}
	for i := uint32(0); i < docCount; i++ {
		var fields [4]string
		for f := range fields {
			s, err := pr.str()
			if err != nil {
				return fmt.Errorf("search: doc %d: %w", i, err)
			}
			fields[f] = s
		}
		add(Document{URL: fields[0], Title: fields[1], Body: fields[2], Lang: fields[3]})
	}
	return nil
}

// sections verifies one shard's stored postings and positions against the
// rebuilt state (an integrity check that also keeps the format honest).
func (pr *persistReader) sections(ix *Index) error {
	var termCount uint32
	if err := pr.u32(&termCount); err != nil {
		return err
	}
	for i := uint32(0); i < termCount; i++ {
		term, err := pr.str()
		if err != nil {
			return err
		}
		var n uint32
		if err := pr.u32(&n); err != nil {
			return err
		}
		rebuilt := ix.postings[term]
		if uint32(len(rebuilt)) != n {
			return fmt.Errorf("search: postings mismatch for %q: %d stored, %d rebuilt", term, n, len(rebuilt))
		}
		for j := uint32(0); j < n; j++ {
			var doc, tf uint32
			if err := pr.u32(&doc); err != nil {
				return err
			}
			if err := pr.u32(&tf); err != nil {
				return err
			}
			if rebuilt[j].doc != int(doc) || rebuilt[j].tf != int(tf) {
				return fmt.Errorf("search: posting %d of %q differs", j, term)
			}
		}
	}
	var posTermCount uint32
	if err := pr.u32(&posTermCount); err != nil {
		return err
	}
	for i := uint32(0); i < posTermCount; i++ {
		term, err := pr.str()
		if err != nil {
			return err
		}
		var n uint32
		if err := pr.u32(&n); err != nil {
			return err
		}
		rebuilt := ix.positions[term]
		if uint32(len(rebuilt)) != n {
			return fmt.Errorf("search: position lists mismatch for %q: %d stored, %d rebuilt", term, n, len(rebuilt))
		}
		for j := uint32(0); j < n; j++ {
			var doc, np uint32
			if err := pr.u32(&doc); err != nil {
				return err
			}
			if err := pr.u32(&np); err != nil {
				return err
			}
			if rebuilt[j].doc != int(doc) || uint32(len(rebuilt[j].pos)) != np {
				return fmt.Errorf("search: position list %d of %q differs", j, term)
			}
			for pj := uint32(0); pj < np; pj++ {
				var pos uint32
				if err := pr.u32(&pos); err != nil {
					return err
				}
				if rebuilt[j].pos[pj] != int32(pos) {
					return fmt.Errorf("search: position %d of %q in doc %d differs", pj, term, doc)
				}
			}
		}
	}
	return nil
}

// ReadIndex loads a monolithic index previously written with Index.WriteTo.
// Files written by ShardedIndex.WriteTo with more than one shard must be
// loaded with ReadShardedIndex (the shard-local doc ids in their integrity
// sections only make sense against the sharded layout).
func ReadIndex(r io.Reader) (*Index, error) {
	pr := &persistReader{br: bufio.NewReader(r)}
	shards, err := pr.header()
	if err != nil {
		return nil, err
	}
	if shards != 1 {
		return nil, fmt.Errorf("search: index has %d shards; use ReadShardedIndex", shards)
	}
	ix := NewIndex()
	if err := pr.docs(ix.Add); err != nil {
		return nil, err
	}
	if err := pr.sections(ix); err != nil {
		return nil, err
	}
	ix.Freeze()
	return ix, nil
}

// ReadShardedIndex loads any index snapshot as a ShardedIndex with the
// stored shard count (1 for monolithic and version-2 files): documents are
// re-added in global order, which reproduces the round-robin shard layout
// exactly, then every shard is verified against its stored sections.
func ReadShardedIndex(r io.Reader) (*ShardedIndex, error) {
	pr := &persistReader{br: bufio.NewReader(r)}
	shards, err := pr.header()
	if err != nil {
		return nil, err
	}
	s := NewShardedIndex(shards)
	if err := pr.docs(s.Add); err != nil {
		return nil, err
	}
	for si, sh := range s.shards {
		if err := pr.sections(sh); err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
	}
	s.Freeze()
	return s, nil
}
