package search

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Index persistence: a compact binary snapshot so a corpus indexed once can
// be reloaded without re-tokenising (building the synthetic web index is the
// slowest part of system construction). Format (little-endian):
//
//	magic "TIDX" | version u32 | shardCount u32
//	docCount u32, then per doc in global Add order:
//	    url, title, body, lang (len-prefixed strings)
//	    flags u8 (bit 0: the body is its own single-space join)
//	    wordCount u32, then ceil(wordCount/8) bitmap bytes — bit i set
//	        means raw word i is a content word (normalizes to one stem)
//	then per shard, in shard order (doc ids shard-local):
//	    termCount u32, then per term in sorted order: term string, n u32,
//	        then a block of n × (doc u32, tf u32)
//	    posTermCount u32, then per term in sorted order: term string,
//	        docCount u32, a block of docCount × (doc u32, posCount u32),
//	        then a block of the term's positions (u32), doc-major
//	    ordLen u32, then a block of ordLen × u32: the freeze-derived ordAll
//	        permutation (per-term English posting indices sorted by
//	        contribution desc, doc asc), concatenated in term order
//
// Version 4 is a direct image of the index: the reader reconstructs the
// postings and positional maps straight from the stored lists and rebuilds
// the remaining derived state (word offsets, content-position mapping, BM25
// constants, the columnar scoring form) from the stored bodies, bitmaps and
// ordAll — no tokenisation, no stemming and no freeze-time sorting, which is
// what makes loading a snapshot several times faster than rebuilding the
// corpus. Every count and id is bounds-checked during decoding, so a corrupt
// or adversarial stream yields an error, never a panic or a huge allocation.
//
// History: version 2 added the positional section, version 3 the shardCount
// header field, both storing postings/positions only as integrity sections
// verified against a full re-tokenisation of the stored bodies. Version
// 2 and 3 files still load through that re-add path; version 4 is what
// writers produce.

const (
	indexMagic   = "TIDX"
	indexVersion = 4

	// maxStr caps any length-prefixed string in the stream.
	maxStr = 1 << 26
	// maxTermHint caps the pre-sized term-map hint taken from the stream.
	maxTermHint = 1 << 22
)

// sortedTerms returns m's keys sorted, so snapshots are byte-reproducible.
func sortedTerms[V any](m map[string]V) []string {
	terms := make([]string, 0, len(m))
	for t := range m {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// persistWriter wraps the encoding helpers shared by both WriteTo variants.
type persistWriter struct {
	bw *bufio.Writer
	n  int64
}

func (pw *persistWriter) Write(p []byte) (int, error) {
	n, err := pw.bw.Write(p)
	pw.n += int64(n)
	return n, err
}

func (pw *persistWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := pw.Write(b[:])
	return err
}

func (pw *persistWriter) u8(v byte) error {
	_, err := pw.Write([]byte{v})
	return err
}

func (pw *persistWriter) str(s string) error {
	if err := pw.u32(uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(pw, s)
	return err
}

// header writes magic, version and the shard count.
func (pw *persistWriter) header(shards int) error {
	if _, err := pw.Write([]byte(indexMagic)); err != nil {
		return err
	}
	if err := pw.u32(indexVersion); err != nil {
		return err
	}
	return pw.u32(uint32(shards))
}

// doc writes one document record: the stored fields plus the derived-state
// hints (canonical-join flag, content-word bitmap) the fast reader needs to
// reconstruct snippets without re-tokenising. ld is the doc's shard-local id.
func (pw *persistWriter) doc(ix *Index, ld int) error {
	d := ix.docs[ld]
	for _, s := range []string{d.URL, d.Title, d.Body, d.Lang} {
		if err := pw.str(s); err != nil {
			return err
		}
	}
	var flags byte
	if ix.bodyJoined[ld] == d.Body {
		flags |= 1
	}
	if err := pw.u8(flags); err != nil {
		return err
	}
	words := ix.bodyToks[ld]
	if err := pw.u32(uint32(len(words))); err != nil {
		return err
	}
	bitmap := make([]byte, (len(words)+7)/8)
	for _, raw := range ix.contentToRaw[ld] {
		bitmap[raw/8] |= 1 << (raw % 8)
	}
	_, err := pw.Write(bitmap)
	return err
}

// sections writes one shard's postings, positions and ordAll sections.
// The index must be frozen (ordAll is freeze-derived state).
func (pw *persistWriter) sections(ix *Index) error {
	if err := pw.u32(uint32(len(ix.postings))); err != nil {
		return err
	}
	for _, term := range ix.col.terms {
		plist := ix.postings[term]
		if err := pw.str(term); err != nil {
			return err
		}
		if err := pw.u32(uint32(len(plist))); err != nil {
			return err
		}
		for _, p := range plist {
			if err := pw.u32(uint32(p.doc)); err != nil {
				return err
			}
			if err := pw.u32(uint32(p.tf)); err != nil {
				return err
			}
		}
	}
	if err := pw.u32(uint32(len(ix.positions))); err != nil {
		return err
	}
	for _, term := range sortedTerms(ix.positions) {
		plist := ix.positions[term]
		if err := pw.str(term); err != nil {
			return err
		}
		if err := pw.u32(uint32(len(plist))); err != nil {
			return err
		}
		for _, p := range plist {
			if err := pw.u32(uint32(p.doc)); err != nil {
				return err
			}
			if err := pw.u32(uint32(len(p.pos))); err != nil {
				return err
			}
		}
		for _, p := range plist {
			for _, pos := range p.pos {
				if err := pw.u32(uint32(pos)); err != nil {
					return err
				}
			}
		}
	}
	if err := pw.u32(uint32(len(ix.col.ordAll))); err != nil {
		return err
	}
	for _, e := range ix.col.ordAll {
		if err := pw.u32(uint32(e)); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo serialises the index as the shardCount=1 case of the v4 format,
// freezing it first (the ordAll section is freeze-derived). It returns the
// byte count written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.ensureFrozen()
	pw := &persistWriter{bw: bufio.NewWriter(w)}
	err := func() error {
		if err := pw.header(1); err != nil {
			return err
		}
		if err := pw.u32(uint32(len(ix.docs))); err != nil {
			return err
		}
		for ld := range ix.docs {
			if err := pw.doc(ix, ld); err != nil {
				return err
			}
		}
		return pw.sections(ix)
	}()
	if err != nil {
		return pw.n, err
	}
	return pw.n, pw.bw.Flush()
}

// WriteTo serialises the sharded index: documents once in global order, then
// each shard's sections, freezing first. It returns the byte count written.
func (s *ShardedIndex) WriteTo(w io.Writer) (int64, error) {
	s.Freeze()
	pw := &persistWriter{bw: bufio.NewWriter(w)}
	n := len(s.shards)
	err := func() error {
		if err := pw.header(n); err != nil {
			return err
		}
		if err := pw.u32(uint32(s.nDocs)); err != nil {
			return err
		}
		for g := 0; g < s.nDocs; g++ {
			if err := pw.doc(s.shards[g%n], g/n); err != nil {
				return err
			}
		}
		for _, sh := range s.shards {
			if err := pw.sections(sh); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil {
		return pw.n, err
	}
	return pw.n, pw.bw.Flush()
}

// byteReader decodes the in-memory stream with explicit bounds checks: every
// helper returns an error instead of slicing past the data, so corrupt
// counts surface as format errors rather than panics.
type byteReader struct {
	data []byte
	off  int
}

func (br *byteReader) remaining() int { return len(br.data) - br.off }

func (br *byteReader) block(n int) ([]byte, error) {
	if n < 0 || n > br.remaining() {
		return nil, fmt.Errorf("search: corrupt index (truncated at byte %d)", br.off)
	}
	b := br.data[br.off : br.off+n]
	br.off += n
	return b, nil
}

func (br *byteReader) u32() (uint32, error) {
	b, err := br.block(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (br *byteReader) u8() (byte, error) {
	b, err := br.block(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (br *byteReader) str() (string, error) {
	n, err := br.u32()
	if err != nil {
		return "", err
	}
	if n > maxStr {
		return "", fmt.Errorf("search: corrupt index (string length %d)", n)
	}
	b, err := br.block(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// splitCanonical splits a body that is its own single-space join into its
// words (substrings of body, like strings.Fields). ok is false when the body
// violates the canonical property (leading/trailing/double spaces).
func splitCanonical(body string) (words []string, ok bool) {
	if body == "" {
		return nil, true
	}
	words = make([]string, 0, strings.Count(body, " ")+1)
	start := 0
	for i := 0; i < len(body); i++ {
		if body[i] != ' ' {
			continue
		}
		if i == start {
			return nil, false
		}
		words = append(words, body[start:i])
		start = i + 1
	}
	if start == len(body) {
		return nil, false
	}
	return append(words, body[start:]), true
}

// readDocV4 decodes one document record into shard ix, deriving the
// snippet-serving state (word offsets, joined body, content-to-raw mapping)
// from the stored body and bitmap. wordStem stays nil: it is only written
// during live tokenisation and never read afterwards.
func (br *byteReader) readDocV4(ix *Index) error {
	var fields [4]string
	for f := range fields {
		s, err := br.str()
		if err != nil {
			return err
		}
		fields[f] = s
	}
	flags, err := br.u8()
	if err != nil {
		return err
	}
	nWords, err := br.u32()
	if err != nil {
		return err
	}
	body := fields[2]
	if int64(nWords) > (int64(len(body))+1+1)/2 {
		return fmt.Errorf("search: corrupt index (doc claims %d words in a %d-byte body)", nWords, len(body))
	}
	bitmap, err := br.block((int(nWords) + 7) / 8)
	if err != nil {
		return err
	}
	var words []string
	if flags&1 != 0 {
		var ok bool
		if words, ok = splitCanonical(body); !ok {
			return fmt.Errorf("search: corrupt index (body is not its own single-space join)")
		}
	} else {
		words = strings.Fields(body)
	}
	if len(words) != int(nWords) {
		return fmt.Errorf("search: corrupt index (doc stores %d words, body has %d)", nWords, len(words))
	}
	joined := body
	if flags&1 == 0 {
		joined = strings.Join(words, " ")
	}
	off := make([]int32, len(words))
	b := int32(0)
	for i, w := range words {
		off[i] = b
		b += int32(len(w)) + 1
	}
	var c2r []int32
	for i := 0; i < int(nWords); i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			c2r = append(c2r, int32(i))
		}
	}
	for i := int(nWords); i < 8*len(bitmap); i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			return fmt.Errorf("search: corrupt index (content bitmap has stray bits)")
		}
	}
	lang := fields[3]
	if lang == "" {
		lang = "en"
	}
	ix.docs = append(ix.docs, Document{
		ID: len(ix.docs), URL: fields[0], Title: fields[1], Body: body, Lang: lang,
	})
	ix.bodyToks = append(ix.bodyToks, words)
	ix.wordStem = append(ix.wordStem, nil)
	ix.english = append(ix.english, lang == "en")
	ix.bodyJoined = append(ix.bodyJoined, joined)
	ix.wordOff = append(ix.wordOff, off)
	ix.contentToRaw = append(ix.contentToRaw, c2r)
	ix.docLen = append(ix.docLen, 0)
	return nil
}

// readShardV4 decodes one shard's postings, positions and ordAll sections
// directly into ix's maps, accumulating document lengths from the stored
// term frequencies (a doc's length is exactly the sum of its tf mass). The
// returned ord permutation is installed during the freeze step.
func (br *byteReader) readShardV4(ix *Index) (ord []int32, err error) {
	nDocs := len(ix.docs)

	termCount, err := br.u32()
	if err != nil {
		return nil, err
	}
	if termCount > maxTermHint {
		return nil, fmt.Errorf("search: corrupt index (term count %d)", termCount)
	}
	ix.postings = make(map[string][]posting, termCount)
	prevTerm := ""
	for t := uint32(0); t < termCount; t++ {
		term, err := br.str()
		if err != nil {
			return nil, err
		}
		if t > 0 && term <= prevTerm {
			return nil, fmt.Errorf("search: corrupt index (postings terms out of order at %q)", term)
		}
		prevTerm = term
		n, err := br.u32()
		if err != nil {
			return nil, err
		}
		if n == 0 || int(n) > nDocs {
			return nil, fmt.Errorf("search: corrupt index (term %q has %d postings in a %d-doc shard)", term, n, nDocs)
		}
		blk, err := br.block(8 * int(n))
		if err != nil {
			return nil, err
		}
		plist := make([]posting, n)
		prevDoc := -1
		for j := range plist {
			doc := int(binary.LittleEndian.Uint32(blk[8*j:]))
			tf := int(binary.LittleEndian.Uint32(blk[8*j+4:]))
			if doc <= prevDoc || doc >= nDocs || tf == 0 {
				return nil, fmt.Errorf("search: corrupt index (posting %d of %q: doc %d, tf %d)", j, term, doc, tf)
			}
			plist[j] = posting{doc: doc, tf: tf}
			ix.docLen[doc] += tf
			prevDoc = doc
		}
		ix.postings[term] = plist
	}
	for _, dl := range ix.docLen {
		ix.totalLen += dl
	}

	posTermCount, err := br.u32()
	if err != nil {
		return nil, err
	}
	if posTermCount > maxTermHint {
		return nil, fmt.Errorf("search: corrupt index (positional term count %d)", posTermCount)
	}
	ix.positions = make(map[string][]posPosting, posTermCount)
	prevTerm = ""
	for t := uint32(0); t < posTermCount; t++ {
		term, err := br.str()
		if err != nil {
			return nil, err
		}
		if t > 0 && term <= prevTerm {
			return nil, fmt.Errorf("search: corrupt index (positional terms out of order at %q)", term)
		}
		prevTerm = term
		nd, err := br.u32()
		if err != nil {
			return nil, err
		}
		if nd == 0 || int(nd) > nDocs {
			return nil, fmt.Errorf("search: corrupt index (term %q has position lists for %d of %d docs)", term, nd, nDocs)
		}
		hdr, err := br.block(8 * int(nd))
		if err != nil {
			return nil, err
		}
		total := 0
		prevDoc := -1
		for j := 0; j < int(nd); j++ {
			doc := int(binary.LittleEndian.Uint32(hdr[8*j:]))
			np := int(binary.LittleEndian.Uint32(hdr[8*j+4:]))
			if doc <= prevDoc || doc >= nDocs {
				return nil, fmt.Errorf("search: corrupt index (position list %d of %q: doc %d)", j, term, doc)
			}
			if np == 0 || np > len(ix.contentToRaw[doc]) {
				return nil, fmt.Errorf("search: corrupt index (doc %d claims %d positions of %d content words)", doc, np, len(ix.contentToRaw[doc]))
			}
			prevDoc = doc
			total += np
		}
		blk, err := br.block(4 * total)
		if err != nil {
			return nil, err
		}
		arena := make([]int32, total)
		plist := make([]posPosting, nd)
		k := 0
		for j := 0; j < int(nd); j++ {
			doc := int(binary.LittleEndian.Uint32(hdr[8*j:]))
			np := int(binary.LittleEndian.Uint32(hdr[8*j+4:]))
			sub := arena[k : k+np : k+np]
			prev := int32(-1)
			limit := int32(len(ix.contentToRaw[doc]))
			for p := 0; p < np; p++ {
				v := int32(binary.LittleEndian.Uint32(blk[4*(k+p):]))
				if v <= prev || v >= limit {
					return nil, fmt.Errorf("search: corrupt index (position %d of %q in doc %d: %d)", p, term, doc, v)
				}
				sub[p] = v
				prev = v
			}
			plist[j] = posPosting{doc: doc, pos: sub}
			k += np
		}
		ix.positions[term] = plist
	}

	ordLen, err := br.u32()
	if err != nil {
		return nil, err
	}
	blk, err := br.block(4 * int(ordLen))
	if err != nil {
		return nil, err
	}
	ord = make([]int32, ordLen)
	for i := range ord {
		ord[i] = int32(binary.LittleEndian.Uint32(blk[4*i:]))
	}
	return ord, nil
}

// freezeFromPersist installs the global ranking state and compiles the
// columnar form with a stored ordAll permutation instead of re-sorting.
// The permutation is validated per term section: entries in bounds and in
// strictly descending (contribution, doc asc) order — which, with the length
// check, also proves it is a permutation.
func (ix *Index) freezeFromPersist(idf map[string]float64, avgLen float64, ord []int32) error {
	ix.freezeMu.Lock()
	defer ix.freezeMu.Unlock()
	ix.idf = idf
	ix.avgLen = avgLen
	ix.freezeNormK()
	c := ix.buildCSR()
	if len(ord) != len(c.engDoc) {
		return fmt.Errorf("search: corrupt index (ordAll has %d entries, English postings %d)", len(ord), len(c.engDoc))
	}
	for tid := range c.terms {
		lo, hi := c.engOff[tid], c.engOff[tid+1]
		sec := ord[lo:hi]
		docs := c.engDoc[lo:hi]
		contribs := c.engContrib[lo:hi]
		for i, e := range sec {
			if e < 0 || int(e) >= len(docs) {
				return fmt.Errorf("search: corrupt index (ordAll entry %d of term %q out of range)", e, c.terms[tid])
			}
			if i > 0 {
				a := sec[i-1]
				if !(contribs[a] > contribs[e] || (contribs[a] == contribs[e] && docs[a] < docs[e])) {
					return fmt.Errorf("search: corrupt index (ordAll of term %q not in contribution order)", c.terms[tid])
				}
			}
		}
	}
	c.ordAll = ord
	ix.scatterDense(c)
	ix.col = c
	ix.frozen.Store(true)
	return nil
}

// readV4 reconstructs a sharded index directly from a v4 stream.
func readV4(br *byteReader, shards int) (*ShardedIndex, error) {
	s := NewShardedIndex(shards)
	docCount, err := br.u32()
	if err != nil {
		return nil, err
	}
	// A doc record is at least 21 bytes (four string lengths, flags, word
	// count), bounding the claimed count by the stream itself.
	if int64(docCount)*21 > int64(br.remaining()) {
		return nil, fmt.Errorf("search: corrupt index (doc count %d)", docCount)
	}
	for g := 0; g < int(docCount); g++ {
		if err := br.readDocV4(s.shards[g%shards]); err != nil {
			return nil, fmt.Errorf("search: doc %d: %w", g, err)
		}
	}
	s.nDocs = int(docCount)
	ords := make([][]int32, shards)
	for si, sh := range s.shards {
		if ords[si], err = br.readShardV4(sh); err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
	}
	if br.remaining() != 0 {
		return nil, fmt.Errorf("search: corrupt index (%d trailing bytes)", br.remaining())
	}

	// Global freeze, mirroring ShardedIndex.Freeze: corpus-wide document
	// frequencies and average length, installed into every shard — but with
	// each shard's stored ordAll instead of a freeze-time sort.
	df := make(map[string]int)
	totalLen := 0
	for _, sh := range s.shards {
		for t, plist := range sh.postings {
			df[t] += len(plist)
		}
		totalLen += sh.totalLen
	}
	n := float64(s.nDocs)
	idf := make(map[string]float64, len(df))
	for t, d := range df {
		dff := float64(d)
		idf[t] = math.Log((n-dff+0.5)/(dff+0.5) + 1)
	}
	avgLen := 0.0
	if n > 0 {
		avgLen = float64(totalLen) / n
	}
	for si, sh := range s.shards {
		if err := sh.freezeFromPersist(idf, avgLen, ords[si]); err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
	}
	s.frozen.Store(true)
	return s, nil
}

// readAny decodes any supported stream version into a sharded index. The
// whole stream is buffered in memory first (callers either hand over
// already-buffered snapshot sections or open bounded files), which lets the
// decoder work over flat blocks instead of per-integer reads.
func readAny(r io.Reader) (*ShardedIndex, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("search: reading index: %w", err)
	}
	return readAnyBytes(data)
}

func readAnyBytes(data []byte) (*ShardedIndex, error) {
	br := &byteReader{data: data}
	magic, err := br.block(4)
	if err != nil {
		return nil, fmt.Errorf("search: reading magic: %w", io.ErrUnexpectedEOF)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("search: bad magic %q", magic)
	}
	version, err := br.u32()
	if err != nil {
		return nil, err
	}
	shards := 1
	if version != 2 {
		v, err := br.u32()
		if err != nil {
			return nil, err
		}
		if v == 0 || v > 1<<16 {
			return nil, fmt.Errorf("search: corrupt index (shard count %d)", v)
		}
		shards = int(v)
	}
	switch version {
	case 2, 3:
		return readLegacy(br, shards)
	case indexVersion:
		return readV4(br, shards)
	}
	return nil, fmt.Errorf("search: unsupported index version %d", version)
}

// ReadIndex loads a monolithic index previously written with Index.WriteTo.
// Files written by ShardedIndex.WriteTo with more than one shard must be
// loaded with ReadShardedIndex (the shard-local doc ids in their sections
// only make sense against the sharded layout).
func ReadIndex(r io.Reader) (*Index, error) {
	s, err := readAny(r)
	if err != nil {
		return nil, err
	}
	if s.NumShards() != 1 {
		return nil, fmt.Errorf("search: index has %d shards; use ReadShardedIndex", s.NumShards())
	}
	return s.shards[0], nil
}

// ReadShardedIndex loads any index snapshot as a ShardedIndex with the
// stored shard count (1 for monolithic and version-2 files). The loaded
// index is returned frozen and ready to serve queries.
func ReadShardedIndex(r io.Reader) (*ShardedIndex, error) {
	return readAny(r)
}

// ReadShardedIndexBytes is ReadShardedIndex over an already-buffered stream.
// Callers that hold the encoded section in memory (the snapshot bundle
// reader, after checksumming) use this to skip a second full-stream copy.
func ReadShardedIndexBytes(data []byte) (*ShardedIndex, error) {
	return readAnyBytes(data)
}

// readLegacy loads a version 2/3 stream: documents are re-added through the
// live tokenisation path (rebuilding all derived state), then each shard's
// stored postings and positions are verified against the rebuilt maps.
func readLegacy(br *byteReader, shards int) (*ShardedIndex, error) {
	s := NewShardedIndex(shards)
	docCount, err := br.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < docCount; i++ {
		var fields [4]string
		for f := range fields {
			s, err := br.str()
			if err != nil {
				return nil, fmt.Errorf("search: doc %d: %w", i, err)
			}
			fields[f] = s
		}
		s.Add(Document{URL: fields[0], Title: fields[1], Body: fields[2], Lang: fields[3]})
	}
	for si, sh := range s.shards {
		if err := verifyLegacySections(br, sh); err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
	}
	s.Freeze()
	return s, nil
}

// verifyLegacySections checks one shard's stored v2/v3 postings and
// positions against the re-tokenised state (the old formats' integrity
// sections).
func verifyLegacySections(br *byteReader, ix *Index) error {
	termCount, err := br.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < termCount; i++ {
		term, err := br.str()
		if err != nil {
			return err
		}
		n, err := br.u32()
		if err != nil {
			return err
		}
		rebuilt := ix.postings[term]
		if uint32(len(rebuilt)) != n {
			return fmt.Errorf("search: postings mismatch for %q: %d stored, %d rebuilt", term, n, len(rebuilt))
		}
		for j := uint32(0); j < n; j++ {
			doc, err := br.u32()
			if err != nil {
				return err
			}
			tf, err := br.u32()
			if err != nil {
				return err
			}
			if rebuilt[j].doc != int(doc) || rebuilt[j].tf != int(tf) {
				return fmt.Errorf("search: posting %d of %q differs", j, term)
			}
		}
	}
	posTermCount, err := br.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < posTermCount; i++ {
		term, err := br.str()
		if err != nil {
			return err
		}
		n, err := br.u32()
		if err != nil {
			return err
		}
		rebuilt := ix.positions[term]
		if uint32(len(rebuilt)) != n {
			return fmt.Errorf("search: position lists mismatch for %q: %d stored, %d rebuilt", term, n, len(rebuilt))
		}
		for j := uint32(0); j < n; j++ {
			doc, err := br.u32()
			if err != nil {
				return err
			}
			np, err := br.u32()
			if err != nil {
				return err
			}
			if rebuilt[j].doc != int(doc) || uint32(len(rebuilt[j].pos)) != np {
				return fmt.Errorf("search: position list %d of %q differs", j, term)
			}
			for pj := uint32(0); pj < np; pj++ {
				pos, err := br.u32()
				if err != nil {
					return err
				}
				if rebuilt[j].pos[pj] != int32(pos) {
					return fmt.Errorf("search: position %d of %q in doc %d differs", pj, term, doc)
				}
			}
		}
	}
	return nil
}
