package search

// Tests of the columnar compiler itself (columnar.go): the flat CSR form must
// be a lossless round-trip of the postings/normK state it was compiled from,
// and the batch kernel built on it must stay bit-identical to the monolithic
// reference at every shard count × batch size the serving layer uses.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// checkColumnsRoundTrip asserts ix.col is an exact compilation of ix's
// postings, idf, normK and positions state.
func checkColumnsRoundTrip(t *testing.T, label string, ix *Index) {
	t.Helper()
	c := ix.col
	if c == nil {
		t.Fatalf("%s: frozen index has no columns", label)
	}

	// Term dictionary: a bijection onto the postings keys, in sorted order.
	if len(c.terms) != len(ix.postings) || len(c.termID) != len(ix.postings) {
		t.Fatalf("%s: %d column terms / %d ids for %d postings terms",
			label, len(c.terms), len(c.termID), len(ix.postings))
	}
	if !sort.StringsAreSorted(c.terms) {
		t.Errorf("%s: column terms are not sorted", label)
	}
	for id, term := range c.terms {
		if got, ok := c.termID[term]; !ok || got != int32(id) {
			t.Errorf("%s: termID[%q] = %d,%v, want %d", label, term, got, ok, id)
		}
	}

	for term, want := range ix.postings {
		tid := c.termID[term]

		// CSR round-trip: merging the English and non-English sections back
		// into doc order must reproduce the exact posting list.
		if got := c.postingsOf(term); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: postingsOf(%q) = %v, want %v", label, term, got, want)
		}

		// The split itself must follow the language flags, and every stored
		// contribution must be the bitwise-identical float the scalar loop
		// would have computed from idf/tf/normK.
		idf := ix.idf[term]
		e, o := c.engOff[tid], c.othOff[tid]
		for _, p := range want {
			if ix.english[p.doc] {
				if int(c.engDoc[e]) != p.doc || int(c.engTF[e]) != p.tf {
					t.Fatalf("%s: %q eng posting %d = (%d,%d), want (%d,%d)",
						label, term, e, c.engDoc[e], c.engTF[e], p.doc, p.tf)
				}
				tf := float64(p.tf)
				if want := idf * tf * (bm25K1 + 1) / (tf + ix.normK[p.doc]); c.engContrib[e] != want {
					t.Fatalf("%s: %q contrib for doc %d = %v, want exactly %v",
						label, term, p.doc, c.engContrib[e], want)
				}
				e++
			} else {
				if int(c.othDoc[o]) != p.doc || int(c.othTF[o]) != p.tf {
					t.Fatalf("%s: %q oth posting %d = (%d,%d), want (%d,%d)",
						label, term, o, c.othDoc[o], c.othTF[o], p.doc, p.tf)
				}
				o++
			}
		}
		if e != c.engOff[tid+1] || o != c.othOff[tid+1] {
			t.Fatalf("%s: %q section lengths eng %d/%d oth %d/%d",
				label, term, e, c.engOff[tid+1], o, c.othOff[tid+1])
		}

		// ordAll: a permutation of the term's English section sorted by the
		// one-term top-k order (contribution desc, doc asc).
		lo, hi := c.engOff[tid], c.engOff[tid+1]
		ord := c.ordAll[lo:hi]
		seen := make([]bool, hi-lo)
		for i, e := range ord {
			if e < 0 || int(e) >= len(seen) || seen[e] {
				t.Fatalf("%s: %q ordAll is not a permutation at %d", label, term, i)
			}
			seen[e] = true
			if i > 0 {
				prev, cur := ord[i-1], e
				if c.engContrib[lo+prev] < c.engContrib[lo+cur] ||
					(c.engContrib[lo+prev] == c.engContrib[lo+cur] && c.engDoc[lo+prev] > c.engDoc[lo+cur]) {
					t.Fatalf("%s: %q ordAll out of order at %d", label, term, i)
				}
			}
		}

		// Dense sidecars exist exactly for big terms and scatter the same
		// contribution / first-position values the sparse forms hold.
		big := int(hi-lo) >= bigTermDF
		if (c.contribDense[tid] != nil) != big || (c.firstPos[tid] != nil) != big {
			t.Fatalf("%s: %q dense sidecars present=%v/%v, want %v (df %d)",
				label, term, c.contribDense[tid] != nil, c.firstPos[tid] != nil, big, hi-lo)
		}
		if big {
			dense := make([]float64, len(ix.docs))
			for i := lo; i < hi; i++ {
				dense[c.engDoc[i]] = c.engContrib[i]
			}
			if !reflect.DeepEqual(c.contribDense[tid], dense) {
				t.Fatalf("%s: %q contribDense does not match scattered contribs", label, term)
			}
			fp := make([]int32, len(ix.docs))
			for _, pp := range ix.positions[term] {
				fp[pp.doc] = pp.pos[0] + 1
			}
			if !reflect.DeepEqual(c.firstPos[tid], fp) {
				t.Fatalf("%s: %q firstPos does not match positional postings", label, term)
			}
		}
		if plist := ix.positions[term]; len(plist) > 0 && &c.posLists[tid][0] != &plist[0] {
			t.Errorf("%s: %q posLists does not alias the positional list", label, term)
		}
	}
}

// TestColumnarRoundTripProperty: on randomized corpora, Freeze compiles
// columns that round-trip to the exact postings/normK state — and adding a
// document un-freezes, after which the next freeze rebuilds the columns for
// the grown state rather than serving stale ones.
func TestColumnarRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			docs := randomCorpus(rng, 20+rng.Intn(150))
			split := len(docs) * 2 / 3
			ix := NewIndex()
			for _, d := range docs[:split] {
				ix.Add(d)
			}
			ix.Freeze()
			checkColumnsRoundTrip(t, "first freeze", ix)

			// Un-freeze by growing the corpus; a query must re-freeze on
			// demand and the rebuilt columns must reflect the new postings.
			old := ix.col
			for _, d := range docs[split:] {
				ix.Add(d)
			}
			if ix.frozen.Load() {
				t.Fatal("Add left the index frozen")
			}
			ix.Search("museum restaurant", 3)
			if !ix.frozen.Load() {
				t.Fatal("query did not re-freeze the index")
			}
			if ix.col == old {
				t.Fatal("re-freeze served the stale columns")
			}
			checkColumnsRoundTrip(t, "re-freeze after re-add", ix)
		})
	}

	// A corpus past the bigTermDF threshold, so the dense contribution and
	// first-position sidecars (nil on the small seeds above) round-trip too.
	t.Run("big-terms", func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		ix := NewIndex()
		for _, d := range randomCorpus(rng, bigTermDF*4) {
			ix.Add(d)
		}
		ix.Freeze()
		big := 0
		for tid := range ix.col.terms {
			if ix.col.contribDense[tid] != nil {
				big++
			}
		}
		if big == 0 {
			t.Fatal("no term crossed bigTermDF; the corpus no longer exercises the dense sidecars")
		}
		checkColumnsRoundTrip(t, "big-term corpus", ix)
	})
}

// TestKernelVsReferenceMatrix is the CI differential matrix: the columnar
// batch kernel at shard counts {1,4,16} × batch sizes {1,32} against both the
// monolithic single-query path (bit-identical) and the slow reference
// implementation (1e-9). CI runs exactly this test by name.
func TestKernelVsReferenceMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	docs := randomCorpus(rng, 160)
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	ix.Freeze()
	queries := randomQueries(rng, 48)
	// Mix in the edge shapes the batch path special-cases: empty and
	// unknown-term queries (nil results) and within-batch duplicates.
	queries = append(queries, "", "zzzzqqqq", queries[0], queries[1])
	const k = 10
	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i] = ix.Search(q, k)
	}
	for _, shards := range []int{1, 4, 16} {
		six := buildSharded(docs, shards)
		for _, batch := range []int{1, 32} {
			got := make([][]Result, 0, len(queries))
			for lo := 0; lo < len(queries); lo += min(batch, len(queries)-lo) {
				got = append(got, six.SearchBatch(queries[lo:min(lo+batch, len(queries))], k)...)
			}
			for i, q := range queries {
				label := fmt.Sprintf("shards=%d batch=%d SearchBatch[%d](%q, %d)", shards, batch, i, q, k)
				checkBitIdentical(t, label, got[i], want[i])
				checkSameResults(t, label+" vs reference", got[i], refSearch(docs, q, k))
			}
		}
	}
}

// TestKernelVsReferenceMatrixBigTerms repeats the matrix over a corpus large
// enough that common terms cross bigTermDF, routing queries through the
// sparse big-final-term selection the small matrix corpus never reaches. The
// full query set is checked bit-identical against the monolithic path at
// every cell; the (slow) reference implementation corroborates a sample.
func TestKernelVsReferenceMatrixBigTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	docs := randomCorpus(rng, bigTermDF*4)
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	ix.Freeze()
	if ix.col.contribDense[ix.col.termID["museum"]] == nil {
		t.Fatal("'museum' did not cross bigTermDF; the corpus no longer exercises sparse selection")
	}
	queries := randomQueries(rng, 32)
	const k = 10
	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i] = ix.Search(q, k)
	}
	for _, shards := range []int{1, 4, 16} {
		six := buildSharded(docs, shards)
		for _, batch := range []int{1, 32} {
			got := make([][]Result, 0, len(queries))
			for lo := 0; lo < len(queries); lo += min(batch, len(queries)-lo) {
				got = append(got, six.SearchBatch(queries[lo:min(lo+batch, len(queries))], k)...)
			}
			for i, q := range queries {
				checkBitIdentical(t, fmt.Sprintf("shards=%d batch=%d SearchBatch[%d](%q, %d)", shards, batch, i, q, k),
					got[i], want[i])
			}
		}
	}
	for _, q := range queries[:6] {
		checkSameResults(t, fmt.Sprintf("big-term Search(%q) vs reference", q),
			ix.Search(q, k), refSearch(docs, q, k))
	}
}
