package search

import (
	"context"
	"sync"
	"time"
)

// Queryable is the index-side query surface the Engine wraps. Both the
// monolithic *Index and the *ShardedIndex implement it with byte-identical
// results over the same corpus.
type Queryable interface {
	Search(query string, k int) []Result
	SearchBatch(queries []string, k int) [][]Result
	SearchPhrase(query string, k int) []Result
	Len() int
}

// Engine wraps a Queryable index behind the query interface the annotator
// uses, and models the dominant cost the paper measures in §6.4: the latency
// of talking to a remote search API. Latency is accounted virtually by
// default (no real sleeping), so experiments can report wall-clock estimates
// without slowing the test suite; RealSleep enables actual sleeping for
// demos.
//
// Concurrency: every query and counter method is safe for concurrent use
// once the underlying index is fully built — accounting is mutex-protected
// and the index is read-only at query time. Latency and RealSleep are
// configuration, not synchronised; set them before sharing the engine
// across goroutines.
type Engine struct {
	index Queryable

	// Latency is the simulated round-trip time per query. The paper
	// observes ~0.5 s per processed row dominated by this cost.
	Latency time.Duration
	// RealSleep makes Search actually block for Latency. A batch of n
	// queries blocks n×Latency: the engine models per-query round-trip
	// cost, and batching amortizes our CPU setup, not the simulated
	// network.
	RealSleep bool

	mu             sync.Mutex
	queries        int
	batches        int
	batchedQueries int
	simulated      time.Duration
}

// Stats is a point-in-time snapshot of the engine's serving counters.
type Stats struct {
	// Queries is the total number of queries issued (batched queries
	// count individually).
	Queries int
	// Batches and BatchedQueries describe SearchBatch usage: the number
	// of batch calls and the queries they carried; their ratio is the
	// average batch size.
	Batches        int
	BatchedQueries int
	// SimulatedTime is the total virtual round-trip latency accrued.
	SimulatedTime time.Duration
	// Shards is the shard count of the underlying index (1 when the
	// engine wraps a monolithic Index).
	Shards int
	// ShardQueries is the per-shard query count; nil for a monolithic
	// index.
	ShardQueries []int64
}

// NewEngine builds an engine over a pre-built monolithic index. The index is
// frozen here — deriving the cached ranking state (per-term idf, average
// document length) up front — so engines are safe to share across goroutines
// without any query ever hitting the lazy freeze path.
func NewEngine(ix *Index) *Engine {
	ix.Freeze()
	return &Engine{index: ix}
}

// NewShardedEngine builds an engine over a sharded index, freezing it (which
// derives the corpus-wide ranking state and installs it into every shard).
// Results are byte-identical to NewEngine over the same corpus; only the
// intra-query parallelism differs.
func NewShardedEngine(six *ShardedIndex) *Engine {
	six.Freeze()
	return &Engine{index: six}
}

// ShardedIndex returns the sharded index behind the engine, or nil when the
// engine wraps a monolithic Index. Snapshot building persists the serving
// index through it.
func (e *Engine) ShardedIndex() *ShardedIndex {
	six, _ := e.index.(*ShardedIndex)
	return six
}

// Search returns the top-k results for query, accruing simulated latency.
func (e *Engine) Search(query string, k int) []Result {
	e.account(1, false)
	e.sleep(1)
	return e.index.Search(query, k)
}

// SearchBatch resolves a batch of queries in one call; out[i] is exactly
// Search(queries[i], k). Accounting matches issuing each query separately —
// the batch amortizes per-query CPU setup and, on a sharded index, fans the
// whole batch out to the shards in one parallel pass.
func (e *Engine) SearchBatch(queries []string, k int) [][]Result {
	e.account(len(queries), true)
	e.sleep(len(queries))
	return e.index.SearchBatch(queries, k)
}

// SearchContext is Search with cancellation: it returns ctx.Err() without
// querying when ctx is already done, and a RealSleep engine abandons the
// simulated round-trip mid-sleep when ctx is cancelled. The query is
// counted once it is issued, even if the caller abandons it.
func (e *Engine) SearchContext(ctx context.Context, query string, k int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.account(1, false)
	if err := e.sleepCtx(ctx, 1); err != nil {
		return nil, err
	}
	return e.index.Search(query, k), nil
}

// SearchBatchContext is SearchBatch with cancellation, checked before the
// batch is issued and (for RealSleep engines) during the simulated
// round-trips, which abort mid-sleep.
func (e *Engine) SearchBatchContext(ctx context.Context, queries []string, k int) ([][]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.account(len(queries), true)
	if err := e.sleepCtx(ctx, len(queries)); err != nil {
		return nil, err
	}
	return e.index.SearchBatch(queries, k), nil
}

// SearchPhrase is Search with phrase semantics for double-quoted segments
// (see Index.SearchPhrase); the paper submits its training queries as
// phrases (§5.2.1).
func (e *Engine) SearchPhrase(query string, k int) []Result {
	e.account(1, false)
	e.sleep(1)
	return e.index.SearchPhrase(query, k)
}

// account records n issued queries (as one batch when batch is set).
func (e *Engine) account(n int, batch bool) {
	e.mu.Lock()
	e.queries += n
	e.simulated += time.Duration(n) * e.Latency
	if batch {
		e.batches++
		e.batchedQueries += n
	}
	e.mu.Unlock()
}

// sleep blocks for n simulated round-trips when RealSleep is enabled.
func (e *Engine) sleep(n int) {
	if e.RealSleep && e.Latency > 0 {
		time.Sleep(time.Duration(n) * e.Latency)
	}
}

// sleepCtx is sleep with cancellation: it returns ctx.Err() as soon as ctx
// is done, abandoning the rest of the simulated round-trip time.
func (e *Engine) sleepCtx(ctx context.Context, n int) error {
	if !e.RealSleep || e.Latency <= 0 {
		return nil
	}
	t := time.NewTimer(time.Duration(n) * e.Latency)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueryCount returns the number of queries issued so far.
func (e *Engine) QueryCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queries
}

// SimulatedTime returns the total latency the queries would have cost
// against a real remote engine.
func (e *Engine) SimulatedTime() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.simulated
}

// Stats snapshots the serving counters, including the shard fan-out when
// the engine wraps a ShardedIndex.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := Stats{
		Queries:        e.queries,
		Batches:        e.batches,
		BatchedQueries: e.batchedQueries,
		SimulatedTime:  e.simulated,
		Shards:         1,
	}
	e.mu.Unlock()
	if six, ok := e.index.(*ShardedIndex); ok {
		st.Shards = six.NumShards()
		st.ShardQueries = six.ShardQueryCounts()
	}
	return st
}

// ResetCounters zeroes the query and latency accounting, including the
// per-shard counters of a sharded index, so serving-time statistics do not
// carry construction-time (classifier training) queries.
func (e *Engine) ResetCounters() {
	e.mu.Lock()
	e.queries = 0
	e.batches = 0
	e.batchedQueries = 0
	e.simulated = 0
	e.mu.Unlock()
	if six, ok := e.index.(*ShardedIndex); ok {
		six.ResetQueryCounts()
	}
}

// IndexSize returns the number of documents behind the engine.
func (e *Engine) IndexSize() int { return e.index.Len() }
