package search

import (
	"sync"
	"time"
)

// Engine wraps an Index behind the query interface the annotator uses, and
// models the dominant cost the paper measures in §6.4: the latency of
// talking to a remote search API. Latency is accounted virtually by default
// (no real sleeping), so experiments can report wall-clock estimates without
// slowing the test suite; RealSleep enables actual sleeping for demos.
//
// Concurrency: Search, SearchPhrase and the counter methods are safe for
// concurrent use once the underlying Index is fully built — accounting is
// mutex-protected and the index is read-only at query time. Latency and
// RealSleep are configuration, not synchronised; set them before sharing
// the engine across goroutines.
type Engine struct {
	index *Index

	// Latency is the simulated round-trip time per query. The paper
	// observes ~0.5 s per processed row dominated by this cost.
	Latency time.Duration
	// RealSleep makes Search actually block for Latency.
	RealSleep bool

	mu        sync.Mutex
	queries   int
	simulated time.Duration
}

// NewEngine builds an engine over a pre-built index. The index is frozen
// here — deriving the cached ranking state (per-term idf, average document
// length) up front — so engines are safe to share across goroutines without
// any query ever hitting the lazy freeze path.
func NewEngine(ix *Index) *Engine {
	ix.Freeze()
	return &Engine{index: ix}
}

// Search returns the top-k results for query, accruing simulated latency.
func (e *Engine) Search(query string, k int) []Result {
	e.account()
	return e.index.Search(query, k)
}

// SearchPhrase is Search with phrase semantics for double-quoted segments
// (see Index.SearchPhrase); the paper submits its training queries as
// phrases (§5.2.1).
func (e *Engine) SearchPhrase(query string, k int) []Result {
	e.account()
	return e.index.SearchPhrase(query, k)
}

func (e *Engine) account() {
	e.mu.Lock()
	e.queries++
	e.simulated += e.Latency
	e.mu.Unlock()
	if e.RealSleep && e.Latency > 0 {
		time.Sleep(e.Latency)
	}
}

// QueryCount returns the number of queries issued so far.
func (e *Engine) QueryCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queries
}

// SimulatedTime returns the total latency the queries would have cost
// against a real remote engine.
func (e *Engine) SimulatedTime() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.simulated
}

// ResetCounters zeroes the query and latency accounting.
func (e *Engine) ResetCounters() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries = 0
	e.simulated = 0
}

// IndexSize returns the number of documents behind the engine.
func (e *Engine) IndexSize() int { return e.index.Len() }
