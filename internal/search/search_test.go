package search

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func smallIndex() *Index {
	ix := NewIndex()
	ix.Add(Document{URL: "u1", Title: "Louvre Museum", Body: "the louvre museum in paris hosts a famous art collection with paintings and sculpture galleries"})
	ix.Add(Document{URL: "u2", Title: "Melisse Restaurant", Body: "melisse is a fine dining restaurant in santa monica with a seasonal tasting menu by the chef"})
	ix.Add(Document{URL: "u3", Title: "Melisse Records", Body: "melisse is a french contemporary jazz label releasing vinyl records with saxophone quartets"})
	ix.Add(Document{URL: "u4", Title: "Weather report", Body: "the forecast predicts rainfall and wind with dropping temperature across the region"})
	ix.Add(Document{URL: "u5", Title: "Ristorante francese", Body: "questo ristorante serve piatti tipici della cucina francese", Lang: "it"})
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := smallIndex()
	res := ix.Search("louvre museum", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].URL != "u1" {
		t.Errorf("top result = %s, want u1", res[0].URL)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Errorf("results not sorted by score")
		}
	}
}

func TestSearchAmbiguousQueryMixesSenses(t *testing.T) {
	ix := smallIndex()
	res := ix.Search("melisse", 5)
	urls := map[string]bool{}
	for _, r := range res {
		urls[r.URL] = true
	}
	if !urls["u2"] || !urls["u3"] {
		t.Errorf("ambiguous query should surface both senses, got %v", urls)
	}
}

func TestSearchSpatialAugmentationNarrows(t *testing.T) {
	ix := smallIndex()
	res := ix.Search("melisse santa monica", 1)
	if len(res) == 0 || res[0].URL != "u2" {
		t.Errorf("city-augmented query should rank the restaurant first, got %v", res)
	}
}

func TestSearchEnglishOnly(t *testing.T) {
	ix := smallIndex()
	for _, r := range ix.Search("ristorante francese cucina", 10) {
		if r.URL == "u5" {
			t.Errorf("non-English document returned")
		}
	}
}

func TestSearchEmptyAndUnknown(t *testing.T) {
	ix := smallIndex()
	if res := ix.Search("", 5); res != nil {
		t.Errorf("empty query should return nil")
	}
	if res := ix.Search("zzzzqqqq", 5); len(res) != 0 {
		t.Errorf("unknown term should return no results, got %v", res)
	}
	if res := ix.Search("museum", 0); res != nil {
		t.Errorf("k=0 should return nil")
	}
}

func TestSnippetContainsQueryContext(t *testing.T) {
	ix := smallIndex()
	res := ix.Search("tasting menu", 1)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if !strings.Contains(res[0].Snippet, "tasting") && !strings.Contains(res[0].Snippet, "menu") {
		t.Errorf("snippet %q lacks query context", res[0].Snippet)
	}
	words := strings.Fields(res[0].Snippet)
	if len(words) > SnippetWords {
		t.Errorf("snippet has %d words, want <= %d", len(words), SnippetWords)
	}
}

// TestSearchTopKBound: the engine never returns more than k results, for any
// k and corpus size.
func TestSearchTopKBound(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 40; i++ {
		ix.Add(Document{URL: fmt.Sprint(i), Title: "museum", Body: "museum gallery art"})
	}
	f := func(k uint8) bool {
		res := ix.Search("museum", int(k%20))
		return len(res) <= int(k%20)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 10; i++ {
		ix.Add(Document{URL: fmt.Sprint(i), Title: "hotel", Body: "hotel rooms suites"})
	}
	r1 := ix.Search("hotel", 5)
	r2 := ix.Search("hotel", 5)
	for i := range r1 {
		if r1[i].URL != r2[i].URL {
			t.Fatalf("tie-break not deterministic at %d", i)
		}
	}
}

func TestEngineCounters(t *testing.T) {
	e := NewEngine(smallIndex())
	e.Latency = 50 * time.Millisecond
	e.Search("museum", 3)
	e.Search("restaurant", 3)
	if e.QueryCount() != 2 {
		t.Errorf("QueryCount = %d, want 2", e.QueryCount())
	}
	if e.SimulatedTime() != 100*time.Millisecond {
		t.Errorf("SimulatedTime = %v, want 100ms", e.SimulatedTime())
	}
	e.ResetCounters()
	if e.QueryCount() != 0 || e.SimulatedTime() != 0 {
		t.Errorf("counters not reset")
	}
}

func TestEngineRealSleep(t *testing.T) {
	e := NewEngine(smallIndex())
	e.Latency = 10 * time.Millisecond
	e.RealSleep = true
	start := time.Now()
	e.Search("museum", 1)
	if took := time.Since(start); took < 10*time.Millisecond {
		t.Errorf("RealSleep search returned in %v, want >= 10ms", took)
	}
}

func TestEngineConcurrentAccess(t *testing.T) {
	e := NewEngine(smallIndex())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				e.Search("museum restaurant", 3)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if e.QueryCount() != 400 {
		t.Errorf("QueryCount = %d, want 400", e.QueryCount())
	}
}
