package search

// A slow, obviously-correct reference implementation of the engine's query
// semantics, property-checked against the optimized Index on randomized
// seeded corpora. The reference recomputes everything per query from the raw
// document texts — whole-text normalization, map accumulators, a full sort,
// per-word body re-stemming for phrase adjacency and snippets — i.e. it is
// the seed implementation this package's query core replaced, kept here as
// the executable specification the fast path must match: identical result
// ordering, identical URL/title/snippet bytes, scores within 1e-9.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/textproc"
)

// refSearch is the reference BM25 top-k: score every document from scratch.
func refSearch(docs []Document, query string, k int) []Result {
	if k <= 0 || len(docs) == 0 {
		return nil
	}
	qterms := textproc.NormalizeTokens(query)
	if len(qterms) == 0 {
		return nil
	}

	// Per-document term frequencies and lengths, recomputed from raw text.
	tfs := make([]map[string]int, len(docs))
	docLen := make([]int, len(docs))
	totalLen := 0
	for i, d := range docs {
		terms := textproc.NormalizeTokens(d.Title)
		terms = append(terms, textproc.NormalizeTokens(d.Title)...)
		terms = append(terms, textproc.NormalizeTokens(d.Body)...)
		tf := map[string]int{}
		for _, t := range terms {
			tf[t]++
		}
		tfs[i] = tf
		docLen[i] = len(terms)
		totalLen += len(terms)
	}
	n := float64(len(docs))
	avgLen := float64(totalLen) / n
	df := map[string]int{}
	for _, tf := range tfs {
		for t := range tf {
			df[t]++
		}
	}

	type hit struct {
		doc   int
		score float64
	}
	var hits []hit
	for i := range docs {
		var score float64
		for _, t := range qterms {
			tf := float64(tfs[i][t])
			if tf == 0 {
				continue
			}
			idf := math.Log((n-float64(df[t])+0.5)/(float64(df[t])+0.5) + 1)
			dl := float64(docLen[i])
			score += idf * tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
		}
		lang := docs[i].Lang
		if score > 0 && (lang == "en" || lang == "") {
			hits = append(hits, hit{i, score})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].score != hits[j].score {
			return hits[i].score > hits[j].score
		}
		return hits[i].doc < hits[j].doc
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	out := make([]Result, len(hits))
	for i, h := range hits {
		out[i] = Result{
			URL:     docs[h.doc].URL,
			Title:   docs[h.doc].Title,
			Snippet: refSnippet(docs[h.doc], qterms),
			Score:   h.score,
		}
	}
	return out
}

// refSnippet is the reference snippet window: re-normalize the body word by
// word and find the first word stemming to a query term.
func refSnippet(d Document, qterms []string) string {
	words := strings.Fields(d.Body)
	if len(words) == 0 {
		return d.Title
	}
	qset := map[string]struct{}{}
	for _, t := range qterms {
		qset[t] = struct{}{}
	}
	at := 0
	for i, w := range words {
		norm := textproc.NormalizeTokens(w)
		if len(norm) == 1 {
			if _, ok := qset[norm[0]]; ok {
				at = i
				break
			}
		}
	}
	start := at - SnippetWords/3
	if start < 0 {
		start = 0
	}
	end := start + SnippetWords
	if end > len(words) {
		end = len(words)
		if start = end - SnippetWords; start < 0 {
			start = 0
		}
	}
	return strings.Join(words[start:end], " ")
}

// refContainsPhrase is the reference adjacency check: re-normalize the body
// word by word, keep single-token words, scan for the contiguous run.
func refContainsPhrase(d Document, phrase string) bool {
	want := textproc.NormalizeTokens(phrase)
	if len(want) == 0 {
		return true
	}
	var body []string
	for _, w := range strings.Fields(d.Body) {
		norm := textproc.NormalizeTokens(w)
		if len(norm) == 1 {
			body = append(body, norm[0])
		}
	}
outer:
	for i := 0; i+len(want) <= len(body); i++ {
		for j, w := range want {
			if body[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}

// refSearchPhrase mirrors SearchPhrase on top of refSearch.
func refSearchPhrase(docs []Document, query string, k int) []Result {
	phrases, remainder := splitPhrases(query)
	if len(phrases) == 0 {
		return refSearch(docs, query, k)
	}
	candidates := refSearch(docs, remainder+" "+strings.Join(phrases, " "), k*4)
	byURL := map[string]Document{}
	for _, d := range docs {
		byURL[d.URL] = d
	}
	var out []Result
	for _, r := range candidates {
		d := byURL[r.URL]
		ok := true
		for _, p := range phrases {
			if !refContainsPhrase(d, p) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// randomCorpus builds a randomized document set stressing the indexer's
// normalization edge cases: stopwords, numerics, hyphenated words (multiple
// tokens per raw word), apostrophes, duplicated documents (score ties) and
// non-English pages.
func randomCorpus(rng *rand.Rand, nDocs int) []Document {
	vocab := []string{
		"museum", "museums", "restaurant", "gallery", "painting", "paintings",
		"the", "of", "and", "a", "in", // stopwords
		"12", "3.5", "2,000", // numerics
		"rock-n-roll", "jazz-club", "state-of-the-art", // multi-token words
		"martin's", "chez", "martin", "melisse", "l'atelier",
		"grand", "hotel", "suites", "national", "collection",
	}
	word := func() string { return vocab[rng.Intn(len(vocab))] }
	docs := make([]Document, 0, nDocs)
	for i := 0; i < nDocs; i++ {
		nw := 3 + rng.Intn(25)
		words := make([]string, nw)
		for j := range words {
			words[j] = word()
		}
		lang := "en"
		if rng.Intn(8) == 0 {
			lang = "fr"
		}
		body := strings.Join(words, " ")
		if rng.Intn(6) == 0 && i > 0 {
			body = docs[i-1].Body // duplicate body: exact score ties
		}
		docs = append(docs, Document{
			URL:   fmt.Sprintf("u%d", i),
			Title: word() + " " + word(),
			Body:  body,
			Lang:  lang,
		})
	}
	return docs
}

func randomQueries(rng *rand.Rand, n int) []string {
	parts := []string{
		"museum", "restaurant", "chez martin", "grand hotel", "paintings",
		"melisse", "national collection", "jazz-club", "the of", "12",
	}
	qs := make([]string, n)
	for i := range qs {
		p := parts[rng.Intn(len(parts))]
		switch rng.Intn(4) {
		case 0:
			qs[i] = p
		case 1:
			qs[i] = p + " " + parts[rng.Intn(len(parts))]
		case 2:
			qs[i] = `"` + p + `"`
		default:
			qs[i] = `"` + p + `" ` + parts[rng.Intn(len(parts))]
		}
	}
	return qs
}

// checkSameResults asserts got matches want: same length and order, same
// URL/Title/Snippet bytes, scores within 1e-9.
func checkSameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, reference has %d\n got: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.URL != w.URL || g.Title != w.Title || g.Snippet != w.Snippet {
			t.Fatalf("%s: result %d differs:\n got: %+v\nwant: %+v", label, i, g, w)
		}
		if math.Abs(g.Score-w.Score) > 1e-9 {
			t.Fatalf("%s: result %d score %v, reference %v", label, i, g.Score, w.Score)
		}
	}
}

// TestSearchMatchesReference differentially tests the optimized query core
// against the reference implementation over randomized seeded corpora.
func TestSearchMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			docs := randomCorpus(rng, 20+rng.Intn(120))
			ix := NewIndex()
			for _, d := range docs {
				ix.Add(d)
			}
			ix.Freeze()
			for _, q := range randomQueries(rng, 60) {
				for _, k := range []int{1, 3, 10, 1000} {
					checkSameResults(t, fmt.Sprintf("Search(%q, %d)", q, k),
						ix.Search(q, k), refSearch(docs, q, k))
					checkSameResults(t, fmt.Sprintf("SearchPhrase(%q, %d)", q, k),
						ix.SearchPhrase(q, k), refSearchPhrase(docs, q, k))
				}
			}
		})
	}
}

// TestSearchMatchesReferenceOnLabCorpusShape runs the differential check on
// documents shaped like the generated web corpus (long bodies, repeated
// subjects) rather than uniform noise.
func TestSearchMatchesReferenceOnLabCorpusShape(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var docs []Document
	subjects := []string{"Chez Martin", "Melisse", "Louvre Museum", "Grand Hotel"}
	for i := 0; i < 60; i++ {
		subj := subjects[rng.Intn(len(subjects))]
		filler := randomCorpus(rng, 1)[0].Body
		docs = append(docs, Document{
			URL:   fmt.Sprintf("s%d", i),
			Title: subj,
			Body:  subj + " " + filler + " " + subj,
		})
	}
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	for _, q := range []string{
		`"Chez Martin" restaurant`, `"Louvre Museum"`, `"Grand Hotel" suites`,
		"melisse restaurant", `"melisse"`, `"chez martin" "grand hotel"`,
	} {
		checkSameResults(t, "Search "+q, ix.Search(q, 10), refSearch(docs, q, 10))
		checkSameResults(t, "SearchPhrase "+q, ix.SearchPhrase(q, 10), refSearchPhrase(docs, q, 10))
	}
}
