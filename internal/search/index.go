// Package search implements the web search engine substrate that replaces
// the Bing API of §5.2: an inverted index with BM25 ranking over a synthetic
// web corpus, returning for each query the top-k results as (URL, title,
// snippet) triples, with per-query latency accounting so the efficiency
// analysis of §6.4 can be reproduced without real network calls.
package search

import (
	"math"
	"sort"
	"strings"

	"repro/internal/textproc"
)

// Document is one synthetic web page.
type Document struct {
	ID    int
	URL   string
	Title string
	Body  string
	// Lang is an ISO language tag; the engine only returns English
	// results, as the paper's algorithm requests (§5, step 2).
	Lang string
}

// Result is one search hit.
type Result struct {
	URL     string
	Title   string
	Snippet string
	Score   float64
}

// posting records one document containing a term.
type posting struct {
	doc int // index into docs
	tf  int
}

// Index is an in-memory inverted index with BM25 ranking.
//
// Concurrency: Add is not safe to call concurrently, but once indexing is
// complete every query method (Search, SearchPhrase, Len) only reads, so an
// Index is safe for any number of concurrent readers. The annotation
// pipeline relies on this when it fans queries out over a worker pool.
type Index struct {
	docs     []Document
	bodyToks [][]string // raw body words per doc, for snippet windows
	postings map[string][]posting
	docLen   []int
	totalLen int
	byURL    map[string]int // maintained by Add; read by SearchPhrase
}

// BM25 parameters (standard values).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// SnippetWords is the window length of generated snippets; the paper notes
// most snippets are under 20 words.
const SnippetWords = 11

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: map[string][]posting{},
		byURL:    map[string]int{},
	}
}

// Add indexes a document. Title terms are indexed alongside body terms (with
// the title counted twice, approximating field weighting).
func (ix *Index) Add(doc Document) {
	if doc.Lang == "" {
		doc.Lang = "en"
	}
	id := len(ix.docs)
	doc.ID = id
	ix.docs = append(ix.docs, doc)
	ix.bodyToks = append(ix.bodyToks, strings.Fields(doc.Body))
	ix.byURL[doc.URL] = id

	terms := textproc.NormalizeTokens(doc.Title)
	terms = append(terms, textproc.NormalizeTokens(doc.Title)...)
	terms = append(terms, textproc.NormalizeTokens(doc.Body)...)
	tf := map[string]int{}
	for _, t := range terms {
		tf[t]++
	}
	for t, n := range tf {
		ix.postings[t] = append(ix.postings[t], posting{doc: id, tf: n})
	}
	ix.docLen = append(ix.docLen, len(terms))
	ix.totalLen += len(terms)
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Search returns the top-k English documents for the query under BM25,
// highest score first. Ties break by document id for determinism.
func (ix *Index) Search(query string, k int) []Result {
	if k <= 0 || len(ix.docs) == 0 {
		return nil
	}
	qterms := textproc.NormalizeTokens(query)
	if len(qterms) == 0 {
		return nil
	}
	n := float64(len(ix.docs))
	avgLen := float64(ix.totalLen) / n
	scores := map[int]float64{}
	for _, t := range qterms {
		plist := ix.postings[t]
		if len(plist) == 0 {
			continue
		}
		df := float64(len(plist))
		idf := math.Log((n-df+0.5)/(df+0.5) + 1)
		for _, p := range plist {
			tf := float64(p.tf)
			dl := float64(ix.docLen[p.doc])
			scores[p.doc] += idf * tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
		}
	}
	type hit struct {
		doc   int
		score float64
	}
	hits := make([]hit, 0, len(scores))
	for d, s := range scores {
		if ix.docs[d].Lang != "en" {
			continue
		}
		hits = append(hits, hit{d, s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].score != hits[j].score {
			return hits[i].score > hits[j].score
		}
		return hits[i].doc < hits[j].doc
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	out := make([]Result, len(hits))
	for i, h := range hits {
		d := ix.docs[h.doc]
		out[i] = Result{
			URL:     d.URL,
			Title:   d.Title,
			Snippet: ix.snippet(h.doc, qterms),
			Score:   h.score,
		}
	}
	return out
}

// snippet extracts a SnippetWords-word window around the first body word
// whose stem matches a query term, or the leading window when no term
// matches (title-only hits).
func (ix *Index) snippet(doc int, qterms []string) string {
	words := ix.bodyToks[doc]
	if len(words) == 0 {
		return ix.docs[doc].Title
	}
	qset := make(map[string]struct{}, len(qterms))
	for _, t := range qterms {
		qset[t] = struct{}{}
	}
	at := 0
	for i, w := range words {
		norm := textproc.NormalizeTokens(w)
		if len(norm) == 1 {
			if _, ok := qset[norm[0]]; ok {
				at = i
				break
			}
		}
	}
	start := at - SnippetWords/3
	if start < 0 {
		start = 0
	}
	end := start + SnippetWords
	if end > len(words) {
		end = len(words)
		if start = end - SnippetWords; start < 0 {
			start = 0
		}
	}
	return strings.Join(words[start:end], " ")
}
