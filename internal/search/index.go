// Package search implements the web search engine substrate that replaces
// the Bing API of §5.2: an inverted index with BM25 ranking over a synthetic
// web corpus, returning for each query the top-k results as (URL, title,
// snippet) triples, with per-query latency accounting so the efficiency
// analysis of §6.4 can be reproduced without real network calls.
package search

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/textproc"
)

// Document is one synthetic web page.
type Document struct {
	ID    int
	URL   string
	Title string
	Body  string
	// Lang is an ISO language tag; the engine only returns English
	// results, as the paper's algorithm requests (§5, step 2).
	Lang string
}

// Result is one search hit.
type Result struct {
	URL     string
	Title   string
	Snippet string
	Score   float64
}

// posting records one document containing a term.
type posting struct {
	doc int // index into docs
	tf  int
}

// posPosting records the body positions of a term within one document. The
// positions count content words only: body words whose normalization yields
// exactly one stem, in body order — the same sequence phrase adjacency is
// defined over (see containsPhrase).
type posPosting struct {
	doc int
	pos []int32
}

// Index is an in-memory inverted index with BM25 ranking, positional body
// postings for phrase verification, and per-term idf cached at freeze time.
//
// Concurrency: Add is not safe to call concurrently. Once indexing is
// complete, call Freeze (NewEngine does it for you); after that every query
// method (Search, SearchPhrase, Len) only reads shared state, so an Index is
// safe for any number of concurrent readers. A query on an unfrozen index
// freezes it on demand under a mutex, so single-goroutine use needs no
// explicit Freeze call. Adding a document un-freezes the index.
type Index struct {
	docs     []Document
	bodyToks [][]string // raw body words per doc, for snippet windows
	// wordStem[doc][i] is the stem of bodyToks[doc][i] when that word
	// normalizes to exactly one content token, "" otherwise. Snippet
	// selection and phrase positions both read this instead of re-running
	// the tokenizer+stemmer per candidate at query time.
	wordStem  [][]string
	postings  map[string][]posting
	positions map[string][]posPosting // sorted by doc (Add order)
	docLen    []int
	totalLen  int
	english   []bool // Lang == "en", checked in the scoring loop

	// Frozen state: derived ranking constants computed once per corpus
	// generation instead of per query. frozen publishes idf/avgLen to
	// concurrent readers (atomic store-release after the maps are built).
	frozen   atomic.Bool
	freezeMu sync.Mutex
	idf      map[string]float64
	avgLen   float64
	// normK[doc] is the document's precomputed BM25 length normalizer,
	// bm25K1*(1-bm25B+bm25B*dl/avgLen) — the per-posting denominator term
	// that depends only on frozen state, hoisted out of the scoring loop.
	normK []float64

	// accPool recycles per-query dense score accumulators across queries
	// and across concurrent readers.
	accPool sync.Pool
}

// BM25 parameters (standard values).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// SnippetWords is the window length of generated snippets; the paper notes
// most snippets are under 20 words.
const SnippetWords = 11

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings:  map[string][]posting{},
		positions: map[string][]posPosting{},
	}
}

// Add indexes a document. Title terms are indexed alongside body terms (with
// the title counted twice, approximating field weighting). Adding to a frozen
// index un-freezes it; the next query (or Freeze call) re-derives the cached
// ranking state.
func (ix *Index) Add(doc Document) {
	if doc.Lang == "" {
		doc.Lang = "en"
	}
	id := len(ix.docs)
	doc.ID = id
	ix.docs = append(ix.docs, doc)
	words := strings.Fields(doc.Body)
	ix.bodyToks = append(ix.bodyToks, words)
	ix.english = append(ix.english, doc.Lang == "en")

	// Normalize the body word by word: the concatenation equals
	// NormalizeTokens(doc.Body) (whitespace always separates tokens), and
	// the per-word view additionally yields the stem-per-raw-word table
	// and the content-word positions that phrase search matches against.
	bodyTerms, stems := textproc.NormalizeWords(words)
	tf := map[string]int{}
	titleTerms := textproc.NormalizeTokens(doc.Title)
	for _, t := range titleTerms {
		tf[t] += 2
	}
	nTerms := 2*len(titleTerms) + len(bodyTerms)
	for _, t := range bodyTerms {
		tf[t]++
	}
	pos := 0
	for _, s := range stems {
		if s != "" {
			ix.addPosition(s, id, int32(pos))
			pos++
		}
	}
	ix.wordStem = append(ix.wordStem, stems)
	for t, n := range tf {
		ix.postings[t] = append(ix.postings[t], posting{doc: id, tf: n})
	}
	ix.docLen = append(ix.docLen, nTerms)
	ix.totalLen += nTerms
	ix.frozen.Store(false)
}

// addPosition appends one content-word position for term in doc. Documents
// are added in increasing id order, so each term's posting list stays sorted
// by doc and the last entry is the only one that can belong to doc.
func (ix *Index) addPosition(term string, doc int, pos int32) {
	plist := ix.positions[term]
	if n := len(plist); n > 0 && plist[n-1].doc == doc {
		plist[n-1].pos = append(plist[n-1].pos, pos)
		return
	}
	ix.positions[term] = append(plist, posPosting{doc: doc, pos: []int32{pos}})
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Freeze derives the per-term idf table and the average document length from
// the current postings. Queries read these instead of recomputing them, and
// concurrent readers require a frozen index (NewEngine freezes for you).
// Freeze is idempotent; Add un-freezes.
func (ix *Index) Freeze() {
	ix.freezeMu.Lock()
	defer ix.freezeMu.Unlock()
	if ix.frozen.Load() {
		return
	}
	n := float64(len(ix.docs))
	ix.idf = make(map[string]float64, len(ix.postings))
	for t, plist := range ix.postings {
		df := float64(len(plist))
		ix.idf[t] = math.Log((n-df+0.5)/(df+0.5) + 1)
	}
	if n > 0 {
		ix.avgLen = float64(ix.totalLen) / n
	}
	ix.freezeNormK()
	ix.frozen.Store(true)
}

// freezeShared installs externally-derived global ranking state — the
// corpus-wide idf table and average document length a ShardedIndex computes
// across its shards — so every shard scores with exactly the constants the
// monolithic index would use. The idf map is shared and read-only.
func (ix *Index) freezeShared(idf map[string]float64, avgLen float64) {
	ix.freezeMu.Lock()
	defer ix.freezeMu.Unlock()
	ix.idf = idf
	ix.avgLen = avgLen
	ix.freezeNormK()
	ix.frozen.Store(true)
}

// freezeNormK derives the per-doc BM25 length normalizers from docLen and
// avgLen. The expression matches the former inline scoring term exactly, so
// cached and inline scores are bit-identical.
func (ix *Index) freezeNormK() {
	if cap(ix.normK) < len(ix.docLen) {
		ix.normK = make([]float64, len(ix.docLen))
	}
	ix.normK = ix.normK[:len(ix.docLen)]
	for d, dl := range ix.docLen {
		ix.normK[d] = bm25K1 * (1 - bm25B + bm25B*float64(dl)/ix.avgLen)
	}
}

// ensureFrozen freezes on first query. The fast path is one atomic load.
func (ix *Index) ensureFrozen() {
	if !ix.frozen.Load() {
		ix.Freeze()
	}
}

// accumulator is the per-query dense scoring state: a score per document plus
// the list of touched documents, so resetting costs O(touched), not O(docs).
// The top-k heap storage rides along so batch queries recycle it too.
type accumulator struct {
	scores  []float64
	touched []int
	heap    []hit
}

func (ix *Index) getAccumulator() *accumulator {
	acc, _ := ix.accPool.Get().(*accumulator)
	if acc == nil {
		acc = &accumulator{}
	}
	if len(acc.scores) < len(ix.docs) {
		acc.scores = make([]float64, len(ix.docs))
	}
	return acc
}

func (ix *Index) putAccumulator(acc *accumulator) {
	for _, d := range acc.touched {
		acc.scores[d] = 0
	}
	acc.touched = acc.touched[:0]
	ix.accPool.Put(acc)
}

// hit is an internal scored document, pre-materialization.
type hit struct {
	doc   int
	score float64
}

// worseHit reports whether a ranks strictly after b in the output order
// (score descending, then doc ascending).
func worseHit(a, b hit) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.doc > b.doc
}

// topK is a bounded min-heap of hits ordered by worseHit: the root is the
// worst hit currently kept, so a full heap admits a candidate only when it
// beats the root. Extracting yields exactly the same hits, in the same
// order, as sorting all candidates by (score desc, doc asc) and truncating.
type topK struct {
	h []hit
	k int
}

func (t *topK) push(c hit) {
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		// Sift up.
		for i := len(t.h) - 1; i > 0; {
			p := (i - 1) / 2
			if !worseHit(t.h[i], t.h[p]) {
				break
			}
			t.h[i], t.h[p] = t.h[p], t.h[i]
			i = p
		}
		return
	}
	if !worseHit(t.h[0], c) {
		return // candidate no better than the current worst
	}
	t.h[0] = c
	t.siftDown(0, len(t.h))
}

func (t *topK) siftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && worseHit(t.h[l], t.h[m]) {
			m = l
		}
		if r < n && worseHit(t.h[r], t.h[m]) {
			m = r
		}
		if m == i {
			return
		}
		t.h[i], t.h[m] = t.h[m], t.h[i]
		i = m
	}
}

// drain empties the heap and returns the hits best-first.
func (t *topK) drain() []hit {
	for n := len(t.h) - 1; n > 0; n-- {
		t.h[0], t.h[n] = t.h[n], t.h[0]
		t.siftDown(0, n)
	}
	// The heap popped worst-first into the tail, so t.h is now best-first.
	return t.h
}

// topDocs scores the query terms over the postings lists into a dense
// accumulator and returns the k best English documents (score desc, doc asc).
// Snippets are not generated here — materialize is called only for the hits a
// caller actually returns. The returned slice aliases the accumulator's heap
// storage and is valid until the accumulator's next use.
func (ix *Index) topDocs(acc *accumulator, qterms []string, k int) []hit {
	ix.ensureFrozen()
	for _, t := range qterms {
		plist := ix.postings[t]
		if len(plist) == 0 {
			continue
		}
		idf := ix.idf[t]
		for _, p := range plist {
			tf := float64(p.tf)
			if acc.scores[p.doc] == 0 {
				acc.touched = append(acc.touched, p.doc)
			}
			acc.scores[p.doc] += idf * tf * (bm25K1 + 1) / (tf + ix.normK[p.doc])
		}
	}
	top := topK{k: k, h: acc.heap[:0]}
	for _, d := range acc.touched {
		if !ix.english[d] {
			continue
		}
		top.push(hit{doc: d, score: acc.scores[d]})
	}
	hits := top.drain()
	acc.heap = hits[:0]
	// Reset the dense scores for the accumulator's next query.
	for _, d := range acc.touched {
		acc.scores[d] = 0
	}
	acc.touched = acc.touched[:0]
	return hits
}

// materialize renders hits as Results, generating snippets only now — for
// the hits actually returned, not for every scored candidate. The query-term
// set is built once per query, not per hit.
func (ix *Index) materialize(hits []hit, qterms []string) []Result {
	out := make([]Result, len(hits))
	if len(hits) == 0 {
		return out
	}
	qset := querySet(qterms)
	for i, h := range hits {
		d := ix.docs[h.doc]
		out[i] = Result{
			URL:     d.URL,
			Title:   d.Title,
			Snippet: ix.snippet(h.doc, qset),
			Score:   h.score,
		}
	}
	return out
}

// querySet returns the query terms as a set for snippet-window selection.
func querySet(qterms []string) map[string]struct{} {
	qset := make(map[string]struct{}, len(qterms))
	for _, t := range qterms {
		qset[t] = struct{}{}
	}
	return qset
}

// Search returns the top-k English documents for the query under BM25,
// highest score first. Ties break by document id for determinism.
func (ix *Index) Search(query string, k int) []Result {
	if k <= 0 || len(ix.docs) == 0 {
		return nil
	}
	qterms := textproc.NormalizeTokens(query)
	if len(qterms) == 0 {
		return nil
	}
	acc := ix.getAccumulator()
	defer ix.putAccumulator(acc)
	return ix.materialize(ix.topDocs(acc, qterms, k), qterms)
}

// SearchBatch resolves a batch of queries in one call, returning the results
// positionally: out[i] is exactly Search(queries[i], k). The batch amortizes
// the per-query setup — one accumulator (and top-k heap) is checked out of
// the pool for the whole batch instead of once per query.
func (ix *Index) SearchBatch(queries []string, k int) [][]Result {
	out := make([][]Result, len(queries))
	if k <= 0 || len(ix.docs) == 0 {
		return out
	}
	acc := ix.getAccumulator()
	defer ix.putAccumulator(acc)
	for i, q := range queries {
		qterms := textproc.NormalizeTokens(q)
		if len(qterms) == 0 {
			continue
		}
		out[i] = ix.materialize(ix.topDocs(acc, qterms, k), qterms)
	}
	return out
}

// snippet extracts a SnippetWords-word window around the first body word
// whose stem matches a query term, or the leading window when no term
// matches (title-only hits). Stems were precomputed at Add time.
func (ix *Index) snippet(doc int, qset map[string]struct{}) string {
	words := ix.bodyToks[doc]
	if len(words) == 0 {
		return ix.docs[doc].Title
	}
	at := 0
	for i, s := range ix.wordStem[doc] {
		if s == "" {
			continue
		}
		if _, ok := qset[s]; ok {
			at = i
			break
		}
	}
	start := at - SnippetWords/3
	if start < 0 {
		start = 0
	}
	end := start + SnippetWords
	if end > len(words) {
		end = len(words)
		if start = end - SnippetWords; start < 0 {
			start = 0
		}
	}
	return strings.Join(words[start:end], " ")
}

// positionsIn returns the content positions of term within doc, or nil.
func (ix *Index) positionsIn(term string, doc int) []int32 {
	plist := ix.positions[term]
	i := sort.Search(len(plist), func(i int) bool { return plist[i].doc >= doc })
	if i == len(plist) || plist[i].doc != doc {
		return nil
	}
	return plist[i].pos
}
