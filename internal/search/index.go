// Package search implements the web search engine substrate that replaces
// the Bing API of §5.2: an inverted index with BM25 ranking over a synthetic
// web corpus, returning for each query the top-k results as (URL, title,
// snippet) triples, with per-query latency accounting so the efficiency
// analysis of §6.4 can be reproduced without real network calls.
package search

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/textproc"
)

// Document is one synthetic web page.
type Document struct {
	ID    int
	URL   string
	Title string
	Body  string
	// Lang is an ISO language tag; the engine only returns English
	// results, as the paper's algorithm requests (§5, step 2).
	Lang string
}

// Result is one search hit.
type Result struct {
	URL     string
	Title   string
	Snippet string
	Score   float64
}

// posting records one document containing a term.
type posting struct {
	doc int // index into docs
	tf  int
}

// posPosting records the body positions of a term within one document. The
// positions count content words only: body words whose normalization yields
// exactly one stem, in body order — the same sequence phrase adjacency is
// defined over (see containsPhrase).
type posPosting struct {
	doc int
	pos []int32
}

// Index is an in-memory inverted index with BM25 ranking, positional body
// postings for phrase verification, and per-term idf cached at freeze time.
//
// Concurrency: Add is not safe to call concurrently. Once indexing is
// complete, call Freeze (NewEngine does it for you); after that every query
// method (Search, SearchPhrase, Len) only reads shared state, so an Index is
// safe for any number of concurrent readers. A query on an unfrozen index
// freezes it on demand under a mutex, so single-goroutine use needs no
// explicit Freeze call. Adding a document un-freezes the index.
type Index struct {
	docs     []Document
	bodyToks [][]string // raw body words per doc, for snippet windows
	// wordStem[doc][i] is the stem of bodyToks[doc][i] when that word
	// normalizes to exactly one content token, "" otherwise. Snippet
	// selection and phrase positions both read this instead of re-running
	// the tokenizer+stemmer per candidate at query time.
	wordStem [][]string
	// bodyJoined[doc] is strings.Join(bodyToks[doc], " ") — the string every
	// snippet of the doc is a substring of — and wordOff[doc][i] is the byte
	// offset of word i within it, so snippet windows are zero-copy slices
	// instead of per-query joins. When the body already is its own
	// single-space join (the common case), bodyJoined shares its memory.
	bodyJoined []string
	wordOff    [][]int32
	// contentToRaw[doc][p] is the raw word index (into bodyToks[doc]) of
	// content position p — the inverse of the stems->positions mapping, so
	// snippet selection can translate a positional-postings hit back to a
	// window anchor without scanning wordStem.
	contentToRaw [][]int32
	postings     map[string][]posting
	positions    map[string][]posPosting // sorted by doc (Add order)
	docLen       []int
	totalLen     int
	english      []bool // Lang == "en", checked in the scoring loop

	// Frozen state: derived ranking constants computed once per corpus
	// generation instead of per query. frozen publishes idf/avgLen to
	// concurrent readers (atomic store-release after the maps are built).
	frozen   atomic.Bool
	freezeMu sync.Mutex
	idf      map[string]float64
	avgLen   float64
	// normK[doc] is the document's precomputed BM25 length normalizer,
	// bm25K1*(1-bm25B+bm25B*dl/avgLen) — the per-posting denominator term
	// that depends only on frozen state, hoisted out of the scoring loop.
	normK []float64
	// col is the columnar compilation of the postings (see columnar.go):
	// term-id dictionary, CSR doc/tf columns and the precomputed
	// per-posting contribution column the scoring kernel reads. Rebuilt by
	// every freeze, so Add + re-freeze can never serve stale columns.
	col *columns

	// accPool recycles per-query dense score accumulators across queries
	// and across concurrent readers.
	accPool sync.Pool
}

// BM25 parameters (standard values).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// SnippetWords is the window length of generated snippets; the paper notes
// most snippets are under 20 words.
const SnippetWords = 11

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings:  map[string][]posting{},
		positions: map[string][]posPosting{},
	}
}

// Add indexes a document. Title terms are indexed alongside body terms (with
// the title counted twice, approximating field weighting). Adding to a frozen
// index un-freezes it; the next query (or Freeze call) re-derives the cached
// ranking state.
func (ix *Index) Add(doc Document) {
	if doc.Lang == "" {
		doc.Lang = "en"
	}
	id := len(ix.docs)
	doc.ID = id
	ix.docs = append(ix.docs, doc)
	words := strings.Fields(doc.Body)
	ix.bodyToks = append(ix.bodyToks, words)
	ix.english = append(ix.english, doc.Lang == "en")

	// Normalize the body word by word: the concatenation equals
	// NormalizeTokens(doc.Body) (whitespace always separates tokens), and
	// the per-word view additionally yields the stem-per-raw-word table
	// and the content-word positions that phrase search matches against.
	bodyTerms, stems := textproc.NormalizeWords(words)
	tf := map[string]int{}
	titleTerms := textproc.NormalizeTokens(doc.Title)
	for _, t := range titleTerms {
		tf[t] += 2
	}
	nTerms := 2*len(titleTerms) + len(bodyTerms)
	for _, t := range bodyTerms {
		tf[t]++
	}
	var c2r []int32
	for i, s := range stems {
		if s != "" {
			ix.addPosition(s, id, int32(len(c2r)))
			c2r = append(c2r, int32(i))
		}
	}
	ix.wordStem = append(ix.wordStem, stems)
	ix.contentToRaw = append(ix.contentToRaw, c2r)
	joined := strings.Join(words, " ")
	if joined == doc.Body {
		joined = doc.Body // drop the duplicate allocation, share the body
	}
	off := make([]int32, len(words))
	b := int32(0)
	for i, w := range words {
		off[i] = b
		b += int32(len(w)) + 1
	}
	ix.bodyJoined = append(ix.bodyJoined, joined)
	ix.wordOff = append(ix.wordOff, off)
	for t, n := range tf {
		ix.postings[t] = append(ix.postings[t], posting{doc: id, tf: n})
	}
	ix.docLen = append(ix.docLen, nTerms)
	ix.totalLen += nTerms
	ix.frozen.Store(false)
}

// addPosition appends one content-word position for term in doc. Documents
// are added in increasing id order, so each term's posting list stays sorted
// by doc and the last entry is the only one that can belong to doc.
func (ix *Index) addPosition(term string, doc int, pos int32) {
	plist := ix.positions[term]
	if n := len(plist); n > 0 && plist[n-1].doc == doc {
		plist[n-1].pos = append(plist[n-1].pos, pos)
		return
	}
	ix.positions[term] = append(plist, posPosting{doc: doc, pos: []int32{pos}})
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Freeze derives the per-term idf table and the average document length from
// the current postings. Queries read these instead of recomputing them, and
// concurrent readers require a frozen index (NewEngine freezes for you).
// Freeze is idempotent; Add un-freezes.
func (ix *Index) Freeze() {
	ix.freezeMu.Lock()
	defer ix.freezeMu.Unlock()
	if ix.frozen.Load() {
		return
	}
	n := float64(len(ix.docs))
	ix.idf = make(map[string]float64, len(ix.postings))
	for t, plist := range ix.postings {
		df := float64(len(plist))
		ix.idf[t] = math.Log((n-df+0.5)/(df+0.5) + 1)
	}
	if n > 0 {
		ix.avgLen = float64(ix.totalLen) / n
	}
	ix.freezeNormK()
	ix.col = ix.compileColumns()
	ix.frozen.Store(true)
}

// freezeShared installs externally-derived global ranking state — the
// corpus-wide idf table and average document length a ShardedIndex computes
// across its shards — so every shard scores with exactly the constants the
// monolithic index would use. The idf map is shared and read-only.
func (ix *Index) freezeShared(idf map[string]float64, avgLen float64) {
	ix.freezeMu.Lock()
	defer ix.freezeMu.Unlock()
	ix.idf = idf
	ix.avgLen = avgLen
	ix.freezeNormK()
	ix.col = ix.compileColumns()
	ix.frozen.Store(true)
}

// freezeNormK derives the per-doc BM25 length normalizers from docLen and
// avgLen. The expression matches the former inline scoring term exactly, so
// cached and inline scores are bit-identical.
func (ix *Index) freezeNormK() {
	if cap(ix.normK) < len(ix.docLen) {
		ix.normK = make([]float64, len(ix.docLen))
	}
	ix.normK = ix.normK[:len(ix.docLen)]
	for d, dl := range ix.docLen {
		ix.normK[d] = bm25K1 * (1 - bm25B + bm25B*float64(dl)/ix.avgLen)
	}
}

// ensureFrozen freezes on first query. The fast path is one atomic load.
func (ix *Index) ensureFrozen() {
	if !ix.frozen.Load() {
		ix.Freeze()
	}
}

// accumulator is the per-query dense scoring state: a score per document,
// plus the list of docs the pre-final terms touched — the sparse partials
// selection combines with the final term's column. The top-k heap storage
// and the term-id scratch ride along so batch queries recycle them too.
type accumulator struct {
	scores []float64
	// touched is a window over storage preallocated to one entry per doc (a
	// doc is recorded only on first touch, so it cannot overflow): scoreTerm
	// writes through it unconditionally and bumps the length conditionally,
	// which keeps slice-growth checks and data-dependent stores out of the
	// kernel loop.
	touched []int32
	heap    []hit
	tids    []int32
}

func (ix *Index) getAccumulator() *accumulator {
	acc, _ := ix.accPool.Get().(*accumulator)
	if acc == nil {
		acc = &accumulator{}
	}
	if len(acc.scores) < len(ix.docs) {
		acc.scores = make([]float64, len(ix.docs))
		// One slot per doc plus a spare: the kernel's unconditional store
		// lands in the spare when every doc is already touched.
		acc.touched = make([]int32, 0, len(ix.docs)+1)
	}
	return acc
}

func (ix *Index) putAccumulator(acc *accumulator) {
	// Scores are already zero: selectTop consumes (and zeroes) every score
	// the kernel wrote, and every scoring path ends in selectTop.
	ix.accPool.Put(acc)
}

// hit is an internal scored document, pre-materialization.
type hit struct {
	doc   int
	score float64
}

// worseHit reports whether a ranks strictly after b in the output order
// (score descending, then doc ascending).
func worseHit(a, b hit) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.doc > b.doc
}

// topK is a bounded min-heap of hits ordered by worseHit: the root is the
// worst hit currently kept, so a full heap admits a candidate only when it
// beats the root. Extracting yields exactly the same hits, in the same
// order, as sorting all candidates by (score desc, doc asc) and truncating.
type topK struct {
	h []hit
	k int
}

func (t *topK) push(c hit) {
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		// Sift up.
		for i := len(t.h) - 1; i > 0; {
			p := (i - 1) / 2
			if !worseHit(t.h[i], t.h[p]) {
				break
			}
			t.h[i], t.h[p] = t.h[p], t.h[i]
			i = p
		}
		return
	}
	if !worseHit(t.h[0], c) {
		return // candidate no better than the current worst
	}
	t.h[0] = c
	t.siftDown(0, len(t.h))
}

func (t *topK) siftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && worseHit(t.h[l], t.h[m]) {
			m = l
		}
		if r < n && worseHit(t.h[r], t.h[m]) {
			m = r
		}
		if m == i {
			return
		}
		t.h[i], t.h[m] = t.h[m], t.h[i]
		i = m
	}
}

// drain empties the heap and returns the hits best-first.
func (t *topK) drain() []hit {
	for n := len(t.h) - 1; n > 0; n-- {
		t.h[0], t.h[n] = t.h[n], t.h[0]
		t.siftDown(0, n)
	}
	// The heap popped worst-first into the tail, so t.h is now best-first.
	return t.h
}

// topDocs scores the query terms through the columnar kernel into a dense
// accumulator and returns the k best English documents (score desc, doc asc).
// Snippets are not generated here — materialize is called only for the hits a
// caller actually returns. The returned slice aliases the accumulator's heap
// storage and is valid until the accumulator's next use.
func (ix *Index) topDocs(acc *accumulator, qterms []string, k int) []hit {
	ix.ensureFrozen()
	col := ix.col
	tids := acc.tids[:0]
	for _, t := range qterms {
		tid, ok := col.termID[t]
		if !ok {
			tid = -1
		}
		tids = append(tids, tid)
	}
	acc.tids = tids
	return ix.topDocsResolved(acc, tids, k)
}

// topDocsResolved is topDocs for pre-resolved term ids (-1 = absent term) —
// the batch path resolves a whole batch's terms once and scores through
// here. The index must already be frozen.
//
// All but the last present term are accumulated through the branch-free
// kernel; the last term's pass is merged with top-k selection, where each of
// its postings reaches its final sum (earlier contributions landed already,
// the final term's lands last). Two selection bodies share that step — a
// sparse one for the workload's dominant query shape, a dense walk otherwise
// — and both leave the accumulator clean (scores all zero, touched empty)
// and produce the identical result: per surviving doc the additions happen
// in query-term order (bit-identical sums), and the heap order is a strict
// total order (score desc, doc asc), so candidate enumeration order cannot
// affect the output. Every accumulated score is strictly positive (idf > 0
// for any present term, tf >= 1), which is what lets "score == 0" mean "not
// scored or already consumed".
//
// Routing: the sparse body applies whenever the final present term is big (has
// contribDense) — the annotate workload's "<name> <type>" queries, whose type
// suffix is always a long column. Pre-final terms of any size are fine: the
// kernel records every doc they touch, so the sparse completion pass sees all
// of them. A small final term means a short final column, where the dense
// walk is already cheap.
func (ix *Index) topDocsResolved(acc *accumulator, tids []int32, k int) []hit {
	col := ix.col
	last := -1
	for i, tid := range tids {
		if tid >= 0 {
			last = i
		}
	}
	if last < 0 {
		return acc.heap[:0]
	}
	for _, tid := range tids[:last] {
		if tid >= 0 {
			col.scoreTerm(acc, tid)
		}
	}
	var hits []hit
	if col.contribDense[tids[last]] != nil {
		hits = ix.selectTopSparse(acc, tids[last], k)
	} else {
		hits = ix.selectTopDense(acc, tids[last], k)
	}
	acc.heap = hits[:0]
	acc.touched = acc.touched[:0]
	return hits
}

// kthContrib returns the final term's k-th best single-posting contribution,
// a free lower bound on the query's k-th best score: that term's k best
// postings alone already give k docs whose final scores are at least this
// value (additions only increase a score — contributions are positive). Any
// candidate strictly below it can never reach the top-k, so both selection
// bodies reject on one float compare before any heap work. Returns -Inf when
// the column is shorter than k (no bound).
func (c *columns) kthContrib(tid int32, k int) float64 {
	lo, hi := c.engOff[tid], c.engOff[tid+1]
	if k < 1 || int(hi-lo) < k {
		return math.Inf(-1)
	}
	// ordAll ranks the term's postings best-first; its entries are local to
	// the section.
	return c.engContrib[lo+c.ordAll[lo+int32(k-1)]]
}

// selectTopSparse finishes a query whose final term is big, without walking
// that term's long column in doc order. The exact top-k candidates split
// into (a) docs no pre-final term touched, whose whole score is one
// final-term contribution — the precomputed ordAll permutation ranks those —
// and (b) the touched docs, each completed with one O(1) load from the final
// term's contribDense array (zero when the term misses the doc, and adding
// 0.0 is bitwise identity on the positive partial). Cost scales with the
// pre-final posting lists plus k, not with the final term's document
// frequency.
func (ix *Index) selectTopSparse(acc *accumulator, tid int32, k int) []hit {
	col := ix.col
	top := topK{k: k, h: acc.heap[:0]}
	scores := acc.scores
	full := k <= 0
	rootScore := math.Inf(1)
	rootDoc := 0
	lo, hi := col.engOff[tid], col.engOff[tid+1]
	docs := col.engDoc[lo:hi]
	contribs := col.engContrib[lo:hi][:len(docs)]
	ord := col.ordAll[lo:hi]
	pre := col.kthContrib(tid, k)
	if k > 0 {
		// Phase (a): the first k untouched ord entries. They arrive already
		// sorted in the list's total order (contrib desc, doc asc), so the
		// rest of the untouched docs are dominated by them — and written in
		// reverse they are sorted worst-first, hence a valid min-heap.
		n := 0
		for _, e := range ord {
			d := int(docs[e])
			if scores[d] != 0 {
				continue // touched: pass (b) below computes its full score
			}
			top.h = append(top.h, hit{doc: d, score: contribs[e]})
			if n++; n == k {
				break
			}
		}
		for i, j := 0, len(top.h)-1; i < j; i, j = i+1, j-1 {
			top.h[i], top.h[j] = top.h[j], top.h[i]
		}
		if len(top.h) == k {
			full = true
			rootScore, rootDoc = top.h[0].score, top.h[0].doc
		}
	}
	dense := col.contribDense[tid]
	consider := func(d int32, s float64) {
		if full && (s < rootScore || (s == rootScore && int(d) > rootDoc)) {
			return
		}
		top.push(hit{doc: int(d), score: s})
		if len(top.h) == k {
			full = true
			rootScore, rootDoc = top.h[0].score, top.h[0].doc
		}
	}
	// Phase (b): complete every touched doc. Touched docs are unique and
	// nothing has consumed them yet, so the 4-wide block's loads and zeroing
	// stores never alias and the (usually missing) cache lines overlap. The
	// s >= pre guard is the kthContrib prefilter: candidates below the final
	// term's own k-th best posting can never place.
	touched := acc.touched
	j := 0
	for ; j+3 < len(touched); j += 4 {
		d0, d1, d2, d3 := touched[j], touched[j+1], touched[j+2], touched[j+3]
		s0 := scores[d0] + dense[d0]
		s1 := scores[d1] + dense[d1]
		s2 := scores[d2] + dense[d2]
		s3 := scores[d3] + dense[d3]
		scores[d0] = 0
		scores[d1] = 0
		scores[d2] = 0
		scores[d3] = 0
		if s0 >= pre {
			consider(d0, s0)
		}
		if s1 >= pre {
			consider(d1, s1)
		}
		if s2 >= pre {
			consider(d2, s2)
		}
		if s3 >= pre {
			consider(d3, s3)
		}
	}
	for ; j < len(touched); j++ {
		d := touched[j]
		s := scores[d] + dense[d]
		scores[d] = 0
		if s >= pre {
			consider(d, s)
		}
	}
	return top.drain()
}

// selectTopDense walks the final term's whole column once: after the earlier
// terms have been accumulated, a doc in the final term's postings reaches its
// final sum the moment that term's contribution lands, so each posting is
// computed, considered and consumed (zeroed) in one step. A cleanup pass over
// the touched list then consumes the docs the final term didn't cover. The
// kthContrib prefilter and a cached copy of a full heap's root reject
// candidates with inline compares; k <= 0 keeps the heap empty but still
// consumes every score (the +Inf root rejects all candidates).
func (ix *Index) selectTopDense(acc *accumulator, tid int32, k int) []hit {
	col := ix.col
	top := topK{k: k, h: acc.heap[:0]}
	scores := acc.scores
	full := k <= 0
	rootScore := math.Inf(1)
	rootDoc := 0
	lo, hi := col.engOff[tid], col.engOff[tid+1]
	docs := col.engDoc[lo:hi]
	contribs := col.engContrib[lo:hi][:len(docs)]
	pre := col.kthContrib(tid, k)
	for i, d32 := range docs {
		d := int(d32)
		s := scores[d] + contribs[i]
		scores[d] = 0
		if s < pre {
			continue // below the final term's own k-th best posting
		}
		if full && (s < rootScore || (s == rootScore && d > rootDoc)) {
			continue
		}
		top.push(hit{doc: d, score: s})
		if len(top.h) == k {
			full = true
			rootScore, rootDoc = top.h[0].score, top.h[0].doc
		}
	}
	for _, d32 := range acc.touched {
		d := int(d32)
		s := scores[d]
		if s == 0 {
			continue // covered (and consumed) by the final term's walk
		}
		scores[d] = 0
		if s < pre {
			continue
		}
		if full && (s < rootScore || (s == rootScore && d > rootDoc)) {
			continue
		}
		top.push(hit{doc: d, score: s})
		if len(top.h) == k {
			full = true
			rootScore, rootDoc = top.h[0].score, top.h[0].doc
		}
	}
	return top.drain()
}

// materialize renders hits as Results, generating snippets only now — for
// the hits actually returned, not for every scored candidate.
func (ix *Index) materialize(hits []hit, qterms []string) []Result {
	out := make([]Result, len(hits))
	if len(hits) == 0 {
		return out
	}
	for i, h := range hits {
		d := ix.docs[h.doc]
		out[i] = Result{
			URL:     d.URL,
			Title:   d.Title,
			Snippet: ix.snippet(h.doc, qterms),
			Score:   h.score,
		}
	}
	return out
}

// Search returns the top-k English documents for the query under BM25,
// highest score first. Ties break by document id for determinism.
func (ix *Index) Search(query string, k int) []Result {
	if k <= 0 || len(ix.docs) == 0 {
		return nil
	}
	qterms := textproc.NormalizeTokens(query)
	if len(qterms) == 0 {
		return nil
	}
	acc := ix.getAccumulator()
	defer ix.putAccumulator(acc)
	hits := ix.topDocs(acc, qterms, k)
	out := make([]Result, len(hits))
	for i, h := range hits {
		d := ix.docs[h.doc]
		out[i] = Result{
			URL:     d.URL,
			Title:   d.Title,
			Snippet: ix.snippetResolved(h.doc, acc.tids),
			Score:   h.score,
		}
	}
	return out
}

// SearchBatch resolves a batch of queries in one call, returning the results
// positionally: out[i] is exactly Search(queries[i], k). The batch amortizes
// per-query work three ways: one accumulator (and top-k heap) is checked out
// of the pool for the whole batch; term-id resolution is shared across the
// batch (a term appearing in many queries hits the dictionary once); and
// duplicate queries — where batch queries fully overlap — are normalized,
// scored and materialized once, later occurrences copying the first's
// results.
func (ix *Index) SearchBatch(queries []string, k int) [][]Result {
	out := make([][]Result, len(queries))
	if k <= 0 || len(ix.docs) == 0 {
		return out
	}
	ix.ensureFrozen()
	acc := ix.getAccumulator()
	defer ix.putAccumulator(acc)
	r := newTermResolver(ix.col)
	var tids []int32
	seen := make(map[string]int, len(queries))
	// One Result arena serves the whole batch: total hits <= len(queries)*k,
	// so the sub-slices below never reallocate, and the batch costs one
	// allocation instead of one per query.
	arena := make([]Result, 0, len(queries)*k)
	for i, q := range queries {
		if j, ok := seen[q]; ok {
			out[i] = copyResults(out[j])
			continue
		}
		seen[q] = i
		qterms := textproc.NormalizeTokens(q)
		if len(qterms) == 0 {
			continue
		}
		tids = r.resolve(qterms, tids)
		hits := ix.topDocsResolved(acc, tids, k)
		lo := len(arena)
		for _, h := range hits {
			d := ix.docs[h.doc]
			arena = append(arena, Result{
				URL:     d.URL,
				Title:   d.Title,
				Snippet: ix.snippetResolved(h.doc, tids),
				Score:   h.score,
			})
		}
		out[i] = arena[lo:len(arena):len(arena)]
	}
	return out
}

// copyResults clones one query's results for a duplicate occurrence in a
// batch, preserving nil-ness so a duplicate's results match byte-for-byte
// what re-running the query would have returned.
func copyResults(src []Result) []Result {
	if src == nil {
		return nil
	}
	dst := make([]Result, len(src))
	copy(dst, src)
	return dst
}

// snippet extracts a SnippetWords-word window around the first body word
// whose stem matches a query term, or the leading window when no term
// matches (title-only hits). The anchor comes from the positional postings
// (the first content position of any query term, translated back to a raw
// word index), which matches what a scan of the precomputed wordStem table
// would find; the window itself is a zero-copy slice of the precomputed
// joined body — byte-identical to joining the window's words with spaces.
func (ix *Index) snippet(doc int, qterms []string) string {
	first := int32(-1)
	for _, t := range qterms {
		if p := ix.firstPosIn(t, doc); p >= 0 && (first < 0 || p < first) {
			first = p
		}
	}
	return ix.snippetAt(doc, first)
}

// snippetResolved is snippet for callers that already hold the query's
// resolved term ids (-1 absent): big terms anchor in one firstPos load, and
// small terms binary-search their tid-indexed positional list — no per-hit
// dictionary hashing either way. A term with positions always has postings,
// so tid < 0 implies no content position.
func (ix *Index) snippetResolved(doc int, tids []int32) string {
	first := int32(-1)
	for _, tid := range tids {
		if tid < 0 {
			continue
		}
		p := int32(-1)
		if fp := ix.col.firstPos[tid]; fp != nil {
			p = fp[doc] - 1
		} else {
			p = firstInPosList(ix.col.posLists[tid], doc)
		}
		if p >= 0 && (first < 0 || p < first) {
			first = p
		}
	}
	return ix.snippetAt(doc, first)
}

// firstInPosList returns doc's first content position within plist (sorted
// by doc), or -1.
func firstInPosList(plist []posPosting, doc int) int32 {
	lo, hi := 0, len(plist)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if plist[mid].doc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(plist) || plist[lo].doc != doc {
		return -1
	}
	return plist[lo].pos[0]
}

// snippetAt renders the snippet window anchored at content position first
// (-1: no query term in the body, use the leading window).
func (ix *Index) snippetAt(doc int, first int32) string {
	words := ix.bodyToks[doc]
	if len(words) == 0 {
		return ix.docs[doc].Title
	}
	at := 0
	if first >= 0 {
		at = int(ix.contentToRaw[doc][first])
	}
	start := at - SnippetWords/3
	if start < 0 {
		start = 0
	}
	end := start + SnippetWords
	if end > len(words) {
		end = len(words)
		if start = end - SnippetWords; start < 0 {
			start = 0
		}
	}
	off := ix.wordOff[doc]
	return ix.bodyJoined[doc][off[start] : off[end-1]+int32(len(words[end-1]))]
}

// firstPosIn returns term's first content position within doc, or -1. Big
// terms resolve in one load from the columnar firstPos array; small terms —
// whose positional lists are short — fall back to the positionsIn binary
// search. Either way the answer equals positionsIn(term, doc)[0].
func (ix *Index) firstPosIn(term string, doc int) int32 {
	if tid, ok := ix.col.termID[term]; ok {
		if fp := ix.col.firstPos[tid]; fp != nil {
			return fp[doc] - 1
		}
	}
	if pos := ix.positionsIn(term, doc); len(pos) > 0 {
		return pos[0]
	}
	return -1
}

// positionsIn returns the content positions of term within doc, or nil. The
// binary search is hand-rolled: sort.Search's per-probe closure call is
// measurable on the snippet path, which probes once per (query term, hit).
func (ix *Index) positionsIn(term string, doc int) []int32 {
	plist := ix.positions[term]
	lo, hi := 0, len(plist)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if plist[mid].doc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(plist) || plist[lo].doc != doc {
		return nil
	}
	return plist[lo].pos
}
