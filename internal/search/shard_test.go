package search

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// buildSharded indexes docs across n shards and freezes.
func buildSharded(docs []Document, n int) *ShardedIndex {
	six := NewShardedIndex(n)
	for _, d := range docs {
		six.Add(d)
	}
	six.Freeze()
	return six
}

// checkBitIdentical asserts got matches want exactly — including score
// bits, which the sharded engine guarantees (same float operations in the
// same order), a stricter bound than the reference harness's 1e-9.
func checkBitIdentical(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, monolithic has %d\n got: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs:\n got: %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

// TestShardedMatchesMonolithic differentially tests the sharded engine
// against the monolithic index over randomized seeded corpora at several
// shard counts: identical ordering and bit-identical scores, and the
// reference implementation agrees within 1e-9.
func TestShardedMatchesMonolithic(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			docs := randomCorpus(rng, 20+rng.Intn(120))
			ix := NewIndex()
			for _, d := range docs {
				ix.Add(d)
			}
			ix.Freeze()
			queries := randomQueries(rng, 40)
			for _, shards := range []int{1, 2, 3, 4, 7, 16} {
				six := buildSharded(docs, shards)
				if six.Len() != ix.Len() {
					t.Fatalf("shards=%d: Len %d, want %d", shards, six.Len(), ix.Len())
				}
				for _, q := range queries {
					for _, k := range []int{1, 3, 10, 1000} {
						label := fmt.Sprintf("shards=%d Search(%q, %d)", shards, q, k)
						checkBitIdentical(t, label, six.Search(q, k), ix.Search(q, k))
						checkSameResults(t, label+" vs reference", six.Search(q, k), refSearch(docs, q, k))
						label = fmt.Sprintf("shards=%d SearchPhrase(%q, %d)", shards, q, k)
						checkBitIdentical(t, label, six.SearchPhrase(q, k), ix.SearchPhrase(q, k))
						checkSameResults(t, label+" vs reference", six.SearchPhrase(q, k), refSearchPhrase(docs, q, k))
					}
				}
				// The batch path must agree with the single-query path.
				for _, k := range []int{1, 10} {
					batched := six.SearchBatch(queries, k)
					for i, q := range queries {
						checkBitIdentical(t, fmt.Sprintf("shards=%d SearchBatch[%d](%q, %d)", shards, i, q, k),
							batched[i], ix.Search(q, k))
					}
				}
			}
		})
	}
}

// TestShardedReFreezeAfterAdd: adding documents to a frozen sharded index
// un-freezes it, and the next query re-derives the global ranking state —
// never shard-local statistics.
func TestShardedReFreezeAfterAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := randomCorpus(rng, 60)
	six := buildSharded(docs[:30], 3)
	ix := NewIndex()
	for _, d := range docs[:30] {
		ix.Add(d)
	}
	checkBitIdentical(t, "before re-add", six.Search("museum restaurant", 10), ix.Search("museum restaurant", 10))
	for _, d := range docs[30:] {
		six.Add(d)
		ix.Add(d)
	}
	// No explicit Freeze: the query path must re-freeze on demand.
	checkBitIdentical(t, "after re-add", six.Search("museum restaurant", 10), ix.Search("museum restaurant", 10))
}

// TestIndexSearchBatchMatchesSearch: the monolithic batch path equals the
// single-query path (including nil/empty edge semantics).
func TestIndexSearchBatchMatchesSearch(t *testing.T) {
	ix := smallIndex()
	queries := []string{"museum", "", "melisse restaurant", "zzzzqqqq", "the of", "tasting menu"}
	batched := ix.SearchBatch(queries, 3)
	for i, q := range queries {
		single := ix.Search(q, 3)
		checkBitIdentical(t, fmt.Sprintf("SearchBatch[%d](%q)", i, q), batched[i], single)
		if (single == nil) != (batched[i] == nil) {
			t.Errorf("SearchBatch[%d](%q): nil-ness differs (single %v, batched %v)", i, q, single == nil, batched[i] == nil)
		}
	}
	if out := ix.SearchBatch(queries, 0); len(out) != len(queries) {
		t.Errorf("SearchBatch k=0 returned %d slots, want %d", len(out), len(queries))
	}
}

// TestShardedPersistRoundTrip: a sharded index round-trips through the v3
// format — same shard count, same results — and the monolithic reader
// refuses multi-shard files instead of mis-reading them.
func TestShardedPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	docs := randomCorpus(rng, 50)
	six := buildSharded(docs, 4)

	var buf bytes.Buffer
	if _, err := six.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// The bytes-based entry is the one the snapshot bundle reader uses;
	// exercise it here so both spellings stay equivalent.
	loaded, err := ReadShardedIndexBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumShards() != 4 || loaded.Len() != six.Len() {
		t.Fatalf("loaded %d shards / %d docs, want 4 / %d", loaded.NumShards(), loaded.Len(), six.Len())
	}
	for _, q := range randomQueries(rng, 30) {
		checkBitIdentical(t, "loaded "+q, loaded.Search(q, 10), six.Search(q, 10))
		checkBitIdentical(t, "loaded phrase "+q, loaded.SearchPhrase(q, 10), six.SearchPhrase(q, 10))
	}

	if _, err := ReadIndex(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "ReadShardedIndex") {
		t.Errorf("ReadIndex accepted a 4-shard file (err=%v), want a redirect to ReadShardedIndex", err)
	}
}

// TestReadShardedIndexAcceptsMonolithic: a file written by Index.WriteTo
// loads as a 1-shard ShardedIndex with identical behaviour.
func TestReadShardedIndexAcceptsMonolithic(t *testing.T) {
	ix := smallIndex()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadShardedIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", loaded.NumShards())
	}
	checkBitIdentical(t, "monolithic-as-sharded", loaded.Search("melisse restaurant", 5), ix.Search("melisse restaurant", 5))
}

// TestShardedEngineCounters: the engine over a sharded index accounts
// queries, batches and the per-shard fan-out.
func TestShardedEngineCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewShardedEngine(buildSharded(randomCorpus(rng, 40), 4))
	e.Search("museum", 3)
	e.SearchBatch([]string{"museum", "restaurant", "hotel"}, 3)
	st := e.Stats()
	if st.Queries != 4 {
		t.Errorf("Queries = %d, want 4", st.Queries)
	}
	if st.Batches != 1 || st.BatchedQueries != 3 {
		t.Errorf("Batches = %d BatchedQueries = %d, want 1 and 3", st.Batches, st.BatchedQueries)
	}
	if st.Shards != 4 || len(st.ShardQueries) != 4 {
		t.Fatalf("Shards = %d ShardQueries = %v, want 4 shards", st.Shards, st.ShardQueries)
	}
	for si, n := range st.ShardQueries {
		if n != 4 {
			t.Errorf("shard %d served %d queries, want 4 (every query fans out to every shard)", si, n)
		}
	}
	if e.QueryCount() != 4 {
		t.Errorf("QueryCount = %d, want 4", e.QueryCount())
	}
	e.ResetCounters()
	if st := e.Stats(); st.Queries != 0 || st.Batches != 0 || st.BatchedQueries != 0 {
		t.Errorf("counters not reset: %+v", st)
	}
}

// TestEngineSearchContext: the context-aware engine calls refuse an
// already-done context, and a RealSleep engine abandons the simulated
// round-trip mid-sleep on cancellation instead of sleeping it out.
func TestEngineSearchContext(t *testing.T) {
	e := NewEngine(smallIndex())
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SearchContext(done, "museum", 3); err == nil {
		t.Error("SearchContext accepted a cancelled context")
	}
	if _, err := e.SearchBatchContext(done, []string{"museum"}, 3); err == nil {
		t.Error("SearchBatchContext accepted a cancelled context")
	}

	// A live context resolves normally and matches Search.
	res, err := e.SearchContext(context.Background(), "museum", 3)
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, "SearchContext", res, e.index.Search("museum", 3))

	// 10 queries x 50ms simulated latency would sleep half a second; the
	// cancellation must cut that short.
	e.Latency = 50 * time.Millisecond
	e.RealSleep = true
	ctx, cancelSoon := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelSoon()
	start := time.Now()
	queries := make([]string, 10)
	for i := range queries {
		queries[i] = "museum"
	}
	if _, err := e.SearchBatchContext(ctx, queries, 3); err == nil {
		t.Error("cancelled mid-sleep batch returned no error")
	}
	if took := time.Since(start); took > 300*time.Millisecond {
		t.Errorf("cancellation took %v, want well under the 500ms sleep", took)
	}
}
