package search

// The version-4 direct-image writer replaced the v2/v3 replay-on-load
// formats, and nothing in the tree writes those streams anymore. Old files
// must stay loadable, so these tests synthesise v2 and v3 byte streams from
// a live index (documents in global order, then each shard's postings and
// positions integrity sections) and check the legacy reader rebuilds an
// equivalent index, verifies the stored sections, and rejects tampering.

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// writeLegacyStream encodes s in the v2 (single shard, no shard-count field)
// or v3 (sharded) layout. The integrity sections are emitted from the live
// maps, so a correct reader must accept them verbatim.
func writeLegacyStream(t *testing.T, version uint32, s *ShardedIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	str := func(x string) { u32(uint32(len(x))); buf.WriteString(x) }

	buf.WriteString(indexMagic)
	u32(version)
	n := len(s.shards)
	if version != 2 {
		u32(uint32(n))
	} else if n != 1 {
		t.Fatalf("v2 streams are single-shard, index has %d shards", n)
	}
	u32(uint32(s.Len()))
	for g := 0; g < s.Len(); g++ {
		d := s.shards[g%n].docs[g/n]
		str(d.URL)
		str(d.Title)
		str(d.Body)
		str(d.Lang)
	}
	for _, sh := range s.shards {
		u32(uint32(len(sh.postings)))
		for _, term := range sortedTerms(sh.postings) {
			str(term)
			pl := sh.postings[term]
			u32(uint32(len(pl)))
			for _, p := range pl {
				u32(uint32(p.doc))
				u32(uint32(p.tf))
			}
		}
		u32(uint32(len(sh.positions)))
		for _, term := range sortedTerms(sh.positions) {
			str(term)
			pls := sh.positions[term]
			u32(uint32(len(pls)))
			for _, pl := range pls {
				u32(uint32(pl.doc))
				u32(uint32(len(pl.pos)))
				for _, p := range pl.pos {
					u32(uint32(p))
				}
			}
		}
	}
	return buf.Bytes()
}

func legacyCorpus(shards int) *ShardedIndex {
	s := NewShardedIndex(shards)
	src := smallIndex()
	for _, d := range src.docs {
		s.Add(Document{URL: d.URL, Title: d.Title, Body: d.Body, Lang: d.Lang})
	}
	return s
}

func TestReadLegacyVersions(t *testing.T) {
	for _, tc := range []struct {
		version uint32
		shards  int
	}{
		{2, 1},
		{3, 1},
		{3, 3},
	} {
		src := legacyCorpus(tc.shards)
		data := writeLegacyStream(t, tc.version, src)
		loaded, err := ReadShardedIndex(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("v%d/%d shards: %v", tc.version, tc.shards, err)
		}
		if loaded.NumShards() != tc.shards || loaded.Len() != src.Len() {
			t.Fatalf("v%d: loaded %d shards/%d docs, want %d/%d",
				tc.version, loaded.NumShards(), loaded.Len(), tc.shards, src.Len())
		}
		for _, q := range []string{"louvre museum", "melisse", "rainfall wind"} {
			got, want := loaded.Search(q, 5), src.Search(q, 5)
			if len(got) != len(want) {
				t.Fatalf("v%d %q: %d results, want %d", tc.version, q, len(got), len(want))
			}
			for i := range got {
				if got[i].URL != want[i].URL || got[i].Score != want[i].Score {
					t.Errorf("v%d %q result %d: %+v, want %+v", tc.version, q, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReadLegacyDetectsTamperedSections flips stored integrity bytes and
// checks the replay verifier reports a mismatch instead of loading silently.
func TestReadLegacyDetectsTamperedSections(t *testing.T) {
	src := legacyCorpus(1)
	good := writeLegacyStream(t, 3, src)

	// Find the postings entry for the first stored term and corrupt its tf.
	term := sortedTerms(src.shards[0].postings)[0]
	marker := make([]byte, 4, 4+len(term))
	binary.LittleEndian.PutUint32(marker, uint32(len(term)))
	marker = append(marker, term...)
	at := bytes.Index(good, marker)
	if at < 0 {
		t.Fatalf("postings entry for %q not found in stream", term)
	}
	bad := bytes.Clone(good)
	bad[at+len(marker)+8]++ // first posting's tf
	if _, err := ReadShardedIndex(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "differs") {
		t.Errorf("tampered postings: err = %v, want posting mismatch", err)
	}

	// Truncating inside the integrity sections must also fail cleanly.
	if _, err := ReadShardedIndex(bytes.NewReader(good[:at+len(marker)+2])); err == nil {
		t.Error("truncated legacy stream loaded without error")
	}
}
