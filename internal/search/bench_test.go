package search

// Micro-benchmarks for the query core, run over a synthetic corpus large
// enough that accumulator, heap and positional-intersection costs dominate.
// cmd/benchsearch measures the same operations over the full canonical
// corpus and records the trajectory in BENCH_search.json.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func benchCorpus(n int) []Document {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{
		"museum", "restaurant", "gallery", "painting", "collection", "chef",
		"seasonal", "menu", "hotel", "suites", "lobby", "grand", "national",
		"the", "of", "and", "in", "with", "jazz-club", "martin", "chez",
	}
	docs := make([]Document, n)
	for i := range docs {
		words := make([]string, 60)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[i] = Document{
			URL:   fmt.Sprintf("u%d", i),
			Title: vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))],
			Body:  strings.Join(words, " "),
		}
	}
	return docs
}

func benchIndex(b *testing.B, n int) *Index {
	b.Helper()
	ix := NewIndex()
	for _, d := range benchCorpus(n) {
		ix.Add(d)
	}
	ix.Freeze()
	return ix
}

// BenchmarkIndexAdd measures indexing throughput including positional
// posting construction and the freeze.
func BenchmarkIndexAdd(b *testing.B) {
	docs := benchCorpus(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewIndex()
		for _, d := range docs {
			ix.Add(d)
		}
		ix.Freeze()
	}
}

// BenchmarkSearchTerm measures plain BM25 top-k over the dense accumulator
// and bounded heap.
func BenchmarkSearchTerm(b *testing.B) {
	ix := benchIndex(b, 5000)
	queries := []string{"museum gallery", "grand hotel suites", "chef seasonal menu", "martin"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(queries[i%len(queries)], 10)
	}
}

// BenchmarkSearchPhrase measures phrase queries — candidate scoring plus
// positional verification.
func BenchmarkSearchPhrase(b *testing.B) {
	ix := benchIndex(b, 5000)
	queries := []string{
		`"grand hotel" suites`,
		`"chez martin" restaurant`,
		`"national collection"`,
		`"seasonal menu" chef`,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchPhrase(queries[i%len(queries)], 10)
	}
}

// BenchmarkSnippet isolates snippet generation from precomputed stems.
func BenchmarkSnippet(b *testing.B) {
	ix := benchIndex(b, 100)
	qterms := []string{"museum", "galleri"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.snippet(i%ix.Len(), qterms)
	}
}
