package search

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzSplitPhrases checks the quoted-segment splitter on arbitrary input:
// it must never panic, never leak a '"' into the phrases or the remainder
// (a dangling unbalanced quote is dropped), never produce empty phrases,
// and be deterministic.
func FuzzSplitPhrases(f *testing.F) {
	for _, seed := range []string{
		`"Chez Martin" restaurant`,
		`melisse`,
		`"a" "b c" d`,
		`"unterminated phrase`,
		`""`,
		`"""`,
		`""""`,
		`a"b"c"d`,
		` " spaced " phrase " `,
		`"nested ""quotes"" here"`,
		"\"\x00\" weird",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, query string) {
		phrases, remainder := splitPhrases(query)
		if strings.ContainsRune(remainder, '"') {
			t.Fatalf("remainder %q leaks a quote (query %q)", remainder, query)
		}
		for _, p := range phrases {
			if p == "" {
				t.Fatalf("empty phrase extracted from %q", query)
			}
			if strings.ContainsRune(p, '"') {
				t.Fatalf("phrase %q contains a quote (query %q)", p, query)
			}
			if p != strings.TrimSpace(p) {
				t.Fatalf("phrase %q not trimmed (query %q)", p, query)
			}
		}
		p2, r2 := splitPhrases(query)
		if !reflect.DeepEqual(phrases, p2) || remainder != r2 {
			t.Fatalf("splitPhrases(%q) not deterministic", query)
		}
	})
}

// FuzzSearchPhrase drives the full phrase-query path with arbitrary query
// strings over a fixed small index: no input may panic it or return more
// than k results.
func FuzzSearchPhrase(f *testing.F) {
	for _, seed := range []string{
		`"chez martin" restaurant`,
		`"melisse"`,
		`"the of and"`,
		`"`,
		`"" "" ""`,
		"plain terms only",
		`"a b`,
	} {
		f.Add(seed)
	}
	ix := NewIndex()
	ix.Add(Document{URL: "p1", Title: "Chez Martin", Body: "chez martin is a dining restaurant with a seasonal menu"})
	ix.Add(Document{URL: "p2", Title: "Melisse", Body: "melisse is a fine dining restaurant in santa monica"})
	ix.Add(Document{URL: "p3", Title: "Ailleurs", Body: "un restaurant qui ne parle pas anglais", Lang: "fr"})
	ix.Freeze()
	f.Fuzz(func(t *testing.T, query string) {
		const k = 3
		if res := ix.SearchPhrase(query, k); len(res) > k {
			t.Fatalf("SearchPhrase(%q, %d) returned %d results", query, k, len(res))
		}
	})
}

// FuzzShardedSearchEquivalence drives the sharded and monolithic engines
// with arbitrary query strings over one corpus: every query — term or
// phrase — must produce identical results (order, bytes and score bits) at
// every shard count.
func FuzzShardedSearchEquivalence(f *testing.F) {
	for _, seed := range []string{
		`melisse restaurant`,
		`"chez martin" restaurant`,
		`"the of and"`,
		`"`,
		"",
		"santa monica museum gallery",
	} {
		f.Add(seed)
	}
	docs := []Document{
		{URL: "s1", Title: "Chez Martin", Body: "chez martin is a dining restaurant with a seasonal menu"},
		{URL: "s2", Title: "Melisse", Body: "melisse is a fine dining restaurant in santa monica"},
		{URL: "s3", Title: "Louvre Museum", Body: "the louvre museum in paris hosts a famous art collection"},
		{URL: "s4", Title: "Harbor Gallery", Body: "the harbor gallery shows paintings sculpture and a museum shop"},
		{URL: "s5", Title: "Ailleurs", Body: "un restaurant qui ne parle pas anglais", Lang: "fr"},
		{URL: "s6", Title: "Melisse", Body: "melisse is a fine dining restaurant in santa monica"}, // duplicate: ties
	}
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	ix.Freeze()
	sharded := []*ShardedIndex{buildSharded(docs, 2), buildSharded(docs, 3), buildSharded(docs, 5)}
	f.Fuzz(func(t *testing.T, query string) {
		const k = 4
		wantTerm := ix.Search(query, k)
		wantPhrase := ix.SearchPhrase(query, k)
		for _, six := range sharded {
			got := six.Search(query, k)
			if len(got) != len(wantTerm) {
				t.Fatalf("shards=%d Search(%q): %d results, monolithic %d", six.NumShards(), query, len(got), len(wantTerm))
			}
			for i := range got {
				if got[i] != wantTerm[i] {
					t.Fatalf("shards=%d Search(%q) result %d: %+v vs %+v", six.NumShards(), query, i, got[i], wantTerm[i])
				}
			}
			gotP := six.SearchPhrase(query, k)
			if len(gotP) != len(wantPhrase) {
				t.Fatalf("shards=%d SearchPhrase(%q): %d results, monolithic %d", six.NumShards(), query, len(gotP), len(wantPhrase))
			}
			for i := range gotP {
				if gotP[i] != wantPhrase[i] {
					t.Fatalf("shards=%d SearchPhrase(%q) result %d: %+v vs %+v", six.NumShards(), query, i, gotP[i], wantPhrase[i])
				}
			}
		}
	})
}
