package search

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzSplitPhrases checks the quoted-segment splitter on arbitrary input:
// it must never panic, never leak a '"' into the phrases or the remainder
// (a dangling unbalanced quote is dropped), never produce empty phrases,
// and be deterministic.
func FuzzSplitPhrases(f *testing.F) {
	for _, seed := range []string{
		`"Chez Martin" restaurant`,
		`melisse`,
		`"a" "b c" d`,
		`"unterminated phrase`,
		`""`,
		`"""`,
		`""""`,
		`a"b"c"d`,
		` " spaced " phrase " `,
		`"nested ""quotes"" here"`,
		"\"\x00\" weird",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, query string) {
		phrases, remainder := splitPhrases(query)
		if strings.ContainsRune(remainder, '"') {
			t.Fatalf("remainder %q leaks a quote (query %q)", remainder, query)
		}
		for _, p := range phrases {
			if p == "" {
				t.Fatalf("empty phrase extracted from %q", query)
			}
			if strings.ContainsRune(p, '"') {
				t.Fatalf("phrase %q contains a quote (query %q)", p, query)
			}
			if p != strings.TrimSpace(p) {
				t.Fatalf("phrase %q not trimmed (query %q)", p, query)
			}
		}
		p2, r2 := splitPhrases(query)
		if !reflect.DeepEqual(phrases, p2) || remainder != r2 {
			t.Fatalf("splitPhrases(%q) not deterministic", query)
		}
	})
}

// FuzzSearchPhrase drives the full phrase-query path with arbitrary query
// strings over a fixed small index: no input may panic it or return more
// than k results.
func FuzzSearchPhrase(f *testing.F) {
	for _, seed := range []string{
		`"chez martin" restaurant`,
		`"melisse"`,
		`"the of and"`,
		`"`,
		`"" "" ""`,
		"plain terms only",
		`"a b`,
	} {
		f.Add(seed)
	}
	ix := NewIndex()
	ix.Add(Document{URL: "p1", Title: "Chez Martin", Body: "chez martin is a dining restaurant with a seasonal menu"})
	ix.Add(Document{URL: "p2", Title: "Melisse", Body: "melisse is a fine dining restaurant in santa monica"})
	ix.Add(Document{URL: "p3", Title: "Ailleurs", Body: "un restaurant qui ne parle pas anglais", Lang: "fr"})
	ix.Freeze()
	f.Fuzz(func(t *testing.T, query string) {
		const k = 3
		if res := ix.SearchPhrase(query, k); len(res) > k {
			t.Fatalf("SearchPhrase(%q, %d) returned %d results", query, k, len(res))
		}
	})
}
