package search

import (
	"strings"

	"repro/internal/textproc"
)

// Phrase queries. The paper submits training queries as phrases ("Melisse
// restaurant", §5.2.1); SearchPhrase supports that semantics: segments
// wrapped in double quotes must occur as adjacent stemmed tokens in the
// document body, the rest of the query ranks as usual. Verification happens
// on the BM25 candidate list via the positional postings built at Add time,
// so each candidate costs a position-list intersection rather than a
// re-tokenization of its whole body.
//
//	SearchPhrase(`"Chez Martin" restaurant`, 10)
func (ix *Index) SearchPhrase(query string, k int) []Result {
	phrases, remainder := splitPhrases(query)
	if len(phrases) == 0 {
		return ix.Search(query, k)
	}
	if k <= 0 || len(ix.docs) == 0 {
		return nil
	}
	qterms := textproc.NormalizeTokens(remainder + " " + strings.Join(phrases, " "))
	if len(qterms) == 0 {
		return nil
	}
	want := make([][]string, len(phrases))
	for i, p := range phrases {
		want[i] = textproc.NormalizeTokens(p)
	}
	// Over-fetch candidates: phrase verification will discard some.
	acc := ix.getAccumulator()
	defer ix.putAccumulator(acc)
	candidates := ix.topDocs(acc, qterms, k*4)
	var keep []hit
	for _, h := range candidates {
		ok := true
		for _, w := range want {
			if !ix.containsPhrase(h.doc, w) {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, h)
			if len(keep) == k {
				break
			}
		}
	}
	if len(keep) == 0 {
		return nil
	}
	// Snippets are generated only for the hits that survived verification.
	return ix.materialize(keep, qterms)
}

// splitPhrases extracts the quoted segments of a query and returns them
// together with the unquoted remainder. A dangling unbalanced quote is
// dropped (it would otherwise leak a '"' into the remainder); the text after
// it ranks as plain terms.
func splitPhrases(query string) (phrases []string, remainder string) {
	var rest []string
	for {
		start := strings.IndexByte(query, '"')
		if start < 0 {
			rest = append(rest, query)
			break
		}
		end := strings.IndexByte(query[start+1:], '"')
		if end < 0 {
			// Replace the quote with a space rather than deleting it:
			// the quote separated tokens (`museum"gallery` is two
			// words), and plain concatenation would merge them.
			rest = append(rest, query[:start]+" "+query[start+1:])
			break
		}
		rest = append(rest, query[:start])
		phrase := strings.TrimSpace(query[start+1 : start+1+end])
		if phrase != "" {
			phrases = append(phrases, phrase)
		}
		query = query[start+end+2:]
	}
	return phrases, strings.TrimSpace(strings.Join(rest, " "))
}

// containsPhrase reports whether the document body contains the phrase's
// stemmed tokens adjacently, in order. Adjacency is defined over the body's
// content words (words whose normalization yields exactly one stem —
// stopwords inside the phrase are not supported; the name phrases this is
// used for contain none) and verified against the positional postings: the
// phrase occurs iff some position p has want[j] at p+j for every j.
func (ix *Index) containsPhrase(doc int, want []string) bool {
	if len(want) == 0 {
		return true
	}
	lists := make([][]int32, len(want))
	for j, w := range want {
		lists[j] = ix.positionsIn(w, doc)
		if len(lists[j]) == 0 {
			return false
		}
	}
	for _, p := range lists[0] {
		ok := true
		for j := 1; j < len(want); j++ {
			if !containsPos(lists[j], p+int32(j)) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// containsPos reports whether sorted position list l contains v.
func containsPos(l []int32, v int32) bool {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(l) && l[lo] == v
}
