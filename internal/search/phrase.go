package search

import (
	"strings"

	"repro/internal/textproc"
)

// Phrase queries. The paper submits training queries as phrases ("Melisse
// restaurant", §5.2.1); SearchPhrase supports that semantics: segments
// wrapped in double quotes must occur as adjacent stemmed tokens in the
// document body, the rest of the query ranks as usual. Verification happens
// on the BM25 candidate list, so the cost is a re-scan of the top candidates
// rather than a positional index.
//
//	SearchPhrase(`"Chez Martin" restaurant`, 10)
func (ix *Index) SearchPhrase(query string, k int) []Result {
	phrases, remainder := splitPhrases(query)
	if len(phrases) == 0 {
		return ix.Search(query, k)
	}
	// Over-fetch candidates: phrase verification will discard some.
	candidates := ix.Search(remainder+" "+strings.Join(phrases, " "), k*4)
	var out []Result
	for _, r := range candidates {
		doc := ix.docByURL(r.URL)
		if doc < 0 {
			continue
		}
		ok := true
		for _, p := range phrases {
			if !ix.containsPhrase(doc, p) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// splitPhrases extracts the quoted segments of a query and returns them
// together with the unquoted remainder.
func splitPhrases(query string) (phrases []string, remainder string) {
	var rest []string
	for {
		start := strings.IndexByte(query, '"')
		if start < 0 {
			rest = append(rest, query)
			break
		}
		end := strings.IndexByte(query[start+1:], '"')
		if end < 0 {
			rest = append(rest, query)
			break
		}
		rest = append(rest, query[:start])
		phrase := strings.TrimSpace(query[start+1 : start+1+end])
		if phrase != "" {
			phrases = append(phrases, phrase)
		}
		query = query[start+end+2:]
	}
	return phrases, strings.TrimSpace(strings.Join(rest, " "))
}

// containsPhrase reports whether the document body contains the phrase's
// stemmed tokens adjacently, in order.
func (ix *Index) containsPhrase(doc int, phrase string) bool {
	want := textproc.NormalizeTokens(phrase)
	if len(want) == 0 {
		return true
	}
	// Normalise the body word by word so adjacency in raw words maps to
	// adjacency in content tokens (stopwords inside the phrase are not
	// supported — the name phrases this is used for contain none).
	var body []string
	for _, w := range ix.bodyToks[doc] {
		norm := textproc.NormalizeTokens(w)
		if len(norm) == 1 {
			body = append(body, norm[0])
		}
	}
	if len(body) < len(want) {
		return false
	}
outer:
	for i := 0; i+len(want) <= len(body); i++ {
		for j, w := range want {
			if body[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}

// docByURL finds the internal doc index for a result URL; URLs are unique in
// generated corpora. Returns -1 when unknown. The map is maintained eagerly
// by Add (a lazily built map here would be a data race between concurrent
// readers).
func (ix *Index) docByURL(url string) int {
	if i, ok := ix.byURL[url]; ok {
		return i
	}
	return -1
}
