package load

// Driver tests against stub HTTP servers: endpoint mix, round-robin target
// spread, open-loop pacing, and the deterministic workload plan.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

func stubTarget(t *testing.T, annotate, geocode *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/annotate":
			annotate.Add(1)
			_ = json.NewEncoder(w).Encode(server.AnnotateResponseJSON{
				Stats: server.StatsJSON{Annotated: 2, Queries: 3},
			})
		case "/v1/geocode":
			geocode.Add(1)
			_ = json.NewEncoder(w).Encode(server.GeocodeResponseJSON{
				Stats: server.GeoStatsJSON{Resolved: 4},
			})
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
}

func TestRunClosedLoopMix(t *testing.T) {
	var ann, geo atomic.Int64
	ts := stubTarget(t, &ann, &geo)
	defer ts.Close()
	res, err := Run(Config{
		Targets: []string{ts.URL}, N: 40, Concurrency: 4,
		GeocodeFrac: 0.5, Rows: 2, Seed: 42, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Annotate.Sent != int(ann.Load()) || res.Geocode.Sent != int(geo.Load()) {
		t.Fatalf("sent (%d, %d) disagrees with server hits (%d, %d)",
			res.Annotate.Sent, res.Geocode.Sent, ann.Load(), geo.Load())
	}
	if res.Annotate.Sent+res.Geocode.Sent != 40 {
		t.Fatalf("total sent = %d, want 40", res.Annotate.Sent+res.Geocode.Sent)
	}
	// A 0.5 mix over 40 seeded draws lands well inside 8..32 per endpoint.
	if res.Geocode.Sent < 8 || res.Geocode.Sent > 32 {
		t.Errorf("geocode mix = %d/40, not plausibly a fair 0.5 split", res.Geocode.Sent)
	}
	if res.Annotate.Annotated != 2*res.Annotate.OK() || res.Annotate.Queries != 3*res.Annotate.OK() {
		t.Errorf("annotate accounting off: %+v", res.Annotate)
	}
	if res.Geocode.Resolved != 4*res.Geocode.OK() {
		t.Errorf("geocode accounting off: %+v", res.Geocode)
	}
	if len(res.Latencies()) != 40 {
		t.Errorf("merged latencies = %d, want 40", len(res.Latencies()))
	}
}

func TestRunRoundRobin(t *testing.T) {
	var a1, a2, g atomic.Int64
	t1 := stubTarget(t, &a1, &g)
	t2 := stubTarget(t, &a2, &g)
	defer t1.Close()
	defer t2.Close()
	if _, err := Run(Config{
		Targets: []string{t1.URL, t2.URL}, N: 10, Concurrency: 2,
		Rows: 1, Seed: 42, Timeout: 5 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if a1.Load() != 5 || a2.Load() != 5 {
		t.Errorf("round robin split = (%d, %d), want (5, 5)", a1.Load(), a2.Load())
	}
}

// TestRunOpenLoop: the Poisson schedule paces the run — N arrivals at a rate
// well below the server's speed take about N/rate seconds, not zero.
func TestRunOpenLoop(t *testing.T) {
	var ann, geo atomic.Int64
	ts := stubTarget(t, &ann, &geo)
	defer ts.Close()
	res, err := Run(Config{
		Targets: []string{ts.URL}, N: 30, Rate: 200,
		Rows: 1, Seed: 42, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Annotate.Sent != 30 {
		t.Fatalf("sent = %d, want 30", res.Annotate.Sent)
	}
	// E[wall] = 30/200s = 150ms; the seeded schedule is fixed, so just
	// bound it loosely against "no pacing at all".
	if res.Wall < 50*time.Millisecond {
		t.Errorf("open-loop run finished in %v: arrivals were not paced", res.Wall)
	}
}

// TestPlanDeterministic: same config, same workload — bodies, mix and
// arrival schedule.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{N: 20, Rate: 100, GeocodeFrac: 0.3, Rows: 2, Seed: 7}
	p1, err := plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("two plans from the same config differ")
	}
	geos := 0
	for _, r := range p1 {
		if r.geocode {
			geos++
		}
	}
	if geos == 0 || geos == len(p1) {
		t.Errorf("geocode mix = %d/%d, want a real split", geos, len(p1))
	}
	for i := 1; i < len(p1); i++ {
		if p1[i].arrival < p1[i-1].arrival {
			t.Fatal("arrival schedule is not monotone")
		}
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		permille int
		want     time.Duration
	}{{500, 6}, {900, 10}, {999, 10}, {0, 1}} {
		if got := Percentile(ds, tc.permille); got != tc.want {
			t.Errorf("Percentile(%d) = %d, want %d", tc.permille, got, tc.want)
		}
	}
	if got := Percentile(nil, 500); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{N: 0, Rows: 1, Targets: []string{"http://x"}, Concurrency: 1}); err == nil {
		t.Error("N=0 must fail")
	}
	if _, err := Run(Config{N: 1, Rows: 1, Concurrency: 1}); err == nil {
		t.Error("no targets must fail")
	}
	if _, err := Run(Config{N: 1, Rows: 1, Targets: []string{"http://x"}}); err == nil {
		t.Error("closed loop without concurrency must fail")
	}
}
