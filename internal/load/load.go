// Package load is the cluster load driver shared by cmd/loadgen and
// cmd/benchcluster: it builds annotate/geocode workloads from the seeded
// synthetic universe and drives them at one or more serving targets, either
// closed-loop (a fixed pool of clients, each firing its next request as soon
// as the last returns) or open-loop (Poisson arrivals at a fixed offered
// rate, independent of how fast the server answers — the arrival process
// does not slow down when the server saturates, which is what makes
// saturation visible instead of silently throttling the measurement).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/world"
)

// Config drives one Run.
type Config struct {
	// Targets are the base URLs load is spread over round-robin — one
	// worker, or several replicas, or a router.
	Targets []string
	// N is the total request count.
	N int
	// Concurrency is the closed-loop client pool size; ignored when Rate
	// is set.
	Concurrency int
	// Rate, when > 0, switches to open-loop mode: requests arrive as a
	// Poisson process at this many requests/second, each served by its own
	// goroutine regardless of how many are already waiting.
	Rate float64
	// GeocodeFrac is the fraction of requests sent to /v1/geocode instead
	// of /v1/annotate (0 = pure annotate traffic).
	GeocodeFrac float64
	// Rows is the table height per request.
	Rows int
	// GeocodeRows, when > 0, overrides Rows for geocode bodies only — the
	// knob for driving large tables through the streaming geo stage while
	// the annotate traffic keeps its usual shape.
	GeocodeRows int
	// Seed selects the synthetic universe; it must match the servers'.
	Seed int64
	// Distinct suffixes every cell with the request index, defeating any
	// shared verdict cache and forcing the full search path per request.
	Distinct bool
	// Timeout bounds one request.
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Endpoint accumulates one endpoint's outcomes.
type Endpoint struct {
	Sent      int
	Statuses  map[int]int
	Latencies []time.Duration // 2xx only, sorted
	Queries   int             // server-side search queries (annotate)
	Annotated int             // cells annotated (annotate)
	Resolved  int             // cells resolved (geocode)
	Errs      int
	FirstErr  error
}

// OK is the endpoint's 200 count.
func (e *Endpoint) OK() int { return e.Statuses[http.StatusOK] }

// Result is one Run's outcome, split per endpoint.
type Result struct {
	Wall     time.Duration
	Annotate Endpoint
	Geocode  Endpoint
}

// OK is the total 200 count across endpoints.
func (r *Result) OK() int { return r.Annotate.OK() + r.Geocode.OK() }

// Latencies merges both endpoints' latencies, sorted.
func (r *Result) Latencies() []time.Duration {
	all := make([]time.Duration, 0, len(r.Annotate.Latencies)+len(r.Geocode.Latencies))
	all = append(all, r.Annotate.Latencies...)
	all = append(all, r.Geocode.Latencies...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// request is one planned request: its body, endpoint and (open-loop mode)
// arrival offset from the run's start.
type request struct {
	body    []byte
	geocode bool
	arrival time.Duration
}

// plan builds the whole workload deterministically from the seed: bodies,
// endpoint mix and Poisson arrival schedule all come from one seeded rng, so
// two runs at the same config offer byte-identical load.
func plan(cfg Config) ([]request, error) {
	w := world.Generate(world.Config{Seed: cfg.Seed, KBPerType: 60})
	ents := w.TableEntities(world.Restaurant)
	if len(ents) == 0 {
		return nil, fmt.Errorf("universe seed %d has no restaurant entities", cfg.Seed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([]request, cfg.N)
	var clock time.Duration
	for i := range reqs {
		geo := cfg.GeocodeFrac > 0 && rng.Float64() < cfg.GeocodeFrac
		if cfg.Rate > 0 {
			clock += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		}
		rows := cfg.Rows
		if geo && cfg.GeocodeRows > 0 {
			rows = cfg.GeocodeRows
		}
		body, err := Body(w, ents, i, rows, cfg.Distinct, geo)
		if err != nil {
			return nil, err
		}
		reqs[i] = request{body: body, geocode: geo, arrival: clock}
	}
	return reqs, nil
}

// Body builds one request body over the universe's entities: a Name/Phone
// restaurant table for annotate, a Name/Address one (the geocodable shape)
// for geocode.
func Body(w *world.World, ents []*world.Entity, reqIndex, rows int, distinct, geocode bool) ([]byte, error) {
	var tbl *table.Table
	if geocode {
		tbl = table.New(fmt.Sprintf("load-geo-%d", reqIndex),
			table.Column{Header: "Name", Type: table.Text},
			table.Column{Header: "Address", Type: table.Location},
		)
	} else {
		tbl = table.New(fmt.Sprintf("load-%d", reqIndex),
			table.Column{Header: "Name", Type: table.Text},
			table.Column{Header: "Phone", Type: table.Text},
		)
	}
	for r := 0; r < rows; r++ {
		e := ents[(reqIndex*rows+r)%len(ents)]
		name := e.Name
		if distinct {
			name = fmt.Sprintf("%s %d-%d", name, reqIndex, r)
		}
		var err error
		if geocode {
			err = tbl.AppendRow(name, e.Address(w.Gaz).Format())
		} else {
			err = tbl.AppendRow(name, e.Phone)
		}
		if err != nil {
			return nil, err
		}
	}
	var tblJSON bytes.Buffer
	if err := table.WriteJSON(&tblJSON, tbl); err != nil {
		return nil, err
	}
	if geocode {
		return json.Marshal(server.GeocodeRequestJSON{Table: tblJSON.Bytes()})
	}
	return json.Marshal(server.AnnotateRequestJSON{Table: tblJSON.Bytes()})
}

// Run executes the configured load test.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 || cfg.Rows <= 0 || len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("load: N, Rows and Targets must be set")
	}
	if cfg.Rate <= 0 && cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("load: closed-loop mode needs Concurrency")
	}
	reqs, err := plan(cfg)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		// Open-loop bursts park many requests at once; without headroom the
		// transport serialises them onto too few connections and the
		// measured latency is the client's own queueing, not the server's.
		tr.MaxIdleConnsPerHost = 256
		client = &http.Client{Timeout: cfg.Timeout, Transport: tr}
	}

	res := &Result{
		Annotate: Endpoint{Statuses: map[int]int{}},
		Geocode:  Endpoint{Statuses: map[int]int{}},
	}
	var mu sync.Mutex
	fire := func(i int) {
		target := cfg.Targets[i%len(cfg.Targets)]
		path := "/v1/annotate"
		if reqs[i].geocode {
			path = "/v1/geocode"
		}
		start := time.Now()
		status, body, err := post(client, target+path, reqs[i].body)
		lat := time.Since(start)

		mu.Lock()
		defer mu.Unlock()
		ep := &res.Annotate
		if reqs[i].geocode {
			ep = &res.Geocode
		}
		ep.Sent++
		if err != nil {
			ep.Errs++
			if ep.FirstErr == nil {
				ep.FirstErr = err
			}
			return
		}
		ep.Statuses[status]++
		if status != http.StatusOK {
			return
		}
		ep.Latencies = append(ep.Latencies, lat)
		if reqs[i].geocode {
			var wire server.GeocodeResponseJSON
			if json.Unmarshal(body, &wire) == nil {
				ep.Resolved += wire.Stats.Resolved
			}
		} else {
			var wire server.AnnotateResponseJSON
			if json.Unmarshal(body, &wire) == nil {
				ep.Queries += wire.Stats.Queries
				ep.Annotated += wire.Stats.Annotated
			}
		}
	}

	startAll := time.Now()
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: requests launch on the planned Poisson schedule no
		// matter how many predecessors are still waiting.
		for i := range reqs {
			if d := reqs[i].arrival - time.Since(startAll); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int) { defer wg.Done(); fire(i) }(i)
		}
	} else {
		next := make(chan int)
		for c := 0; c < cfg.Concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					fire(i)
				}
			}()
		}
		for i := range reqs {
			next <- i
		}
		close(next)
	}
	wg.Wait()
	res.Wall = time.Since(startAll)
	for _, ep := range []*Endpoint{&res.Annotate, &res.Geocode} {
		sort.Slice(ep.Latencies, func(i, j int) bool { return ep.Latencies[i] < ep.Latencies[j] })
	}
	return res, nil
}

func post(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// Percentile reads the p-th permille (p50 = 500, p999 = 999) of a sorted
// latency slice.
func Percentile(sorted []time.Duration, permille int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * permille / 1000
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
