package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// workerState is one worker's health state machine, driven from two sides:
// the background prober's periodic /healthz polls, and the router's own
// transport errors (a connection refused mid-proxy is better evidence than
// waiting for the next poll). Transitions:
//
//	healthy --(FailThreshold consecutive failures)--> ejected
//	ejected --(one successful probe)--> healthy
//
// While ejected the worker takes no traffic and is probed with exponential
// backoff (doubling from the probe interval up to BackoffMax), so a dead
// worker costs a bounded trickle of probes; the first success readmits it
// immediately and resets the backoff.
type workerState struct {
	url string

	mu          sync.Mutex
	healthy     bool
	consecFails int
	backoff     time.Duration
	nextProbe   time.Time
	lastErr     string

	ejections int64 // completed healthy->ejected transitions

	inflight atomic.Int64 // router-side attempts currently proxied to this worker
}

// healthConfig configures the prober; the zero value of every field selects
// a sensible default.
type healthConfig struct {
	// Interval between /healthz polls of a healthy worker. Default 1s.
	Interval time.Duration
	// Timeout of one probe request. Default: Interval, at least 100ms.
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that ejects a
	// worker. Default 3.
	FailThreshold int
	// BackoffMax caps the exponential probe backoff of an ejected
	// worker. Default 30s.
	BackoffMax time.Duration
}

func (c *healthConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
		if c.Timeout < 100*time.Millisecond {
			c.Timeout = 100 * time.Millisecond
		}
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
}

// prober owns the health state of every worker and polls them in one
// background goroutine (started by start, stopped by stop). Workers begin
// healthy — a router must be able to serve before its first poll completes —
// and the first failed probe window ejects them soon after boot if they were
// never really there.
type prober struct {
	cfg     healthConfig
	client  *http.Client
	workers []*workerState

	stop chan struct{}
	done chan struct{}
}

func newProber(urls []string, cfg healthConfig, client *http.Client) *prober {
	cfg.defaults()
	p := &prober{
		cfg:     cfg,
		client:  client,
		workers: make([]*workerState, len(urls)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i, url := range urls {
		p.workers[i] = &workerState{url: url, healthy: true, backoff: cfg.Interval}
	}
	return p
}

func (p *prober) start() {
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(p.cfg.Interval)
		defer ticker.Stop()
		p.pollAll() // immediate first pass so a dead worker ejects quickly
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				p.pollAll()
			}
		}
	}()
}

func (p *prober) stopProbing() {
	close(p.stop)
	<-p.done
}

// pollAll probes every worker that is due: healthy workers every tick,
// ejected workers only when their backoff window has elapsed.
func (p *prober) pollAll() {
	now := time.Now()
	for _, w := range p.workers {
		w.mu.Lock()
		due := w.healthy || !now.Before(w.nextProbe)
		w.mu.Unlock()
		if due {
			p.probe(w)
		}
	}
}

// probe performs one /healthz poll and feeds the result into the state
// machine. Any 2xx is healthy; a transport error, timeout or non-2xx
// (including the 503 a worker reports mid-reload) counts as a failure.
func (p *prober) probe(w *workerState) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		p.observeFailure(w, err.Error())
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.observeFailure(w, err.Error())
		return
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		p.observeFailure(w, resp.Status)
		return
	}
	w.readmit()
}

// observeFailure records one failed probe (or one router-side transport
// error) and ejects the worker once the consecutive-failure threshold is
// reached. For an already-ejected worker it doubles the probe backoff.
func (p *prober) observeFailure(w *workerState, reason string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.consecFails++
	w.lastErr = reason
	if w.healthy {
		if w.consecFails >= p.cfg.FailThreshold {
			w.healthy = false
			w.ejections++
			w.backoff = p.cfg.Interval
			w.nextProbe = time.Now().Add(w.backoff)
		}
		return
	}
	w.backoff *= 2
	if w.backoff > p.cfg.BackoffMax {
		w.backoff = p.cfg.BackoffMax
	}
	w.nextProbe = time.Now().Add(w.backoff)
}

// readmit resets the state machine after a successful probe.
func (w *workerState) readmit() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.healthy = true
	w.consecFails = 0
	w.lastErr = ""
}

// isHealthy reports whether the worker currently takes traffic.
func (w *workerState) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// snapshotStats reads the counters the router's /statz reports.
func (w *workerState) snapshotStats() (healthy bool, ejections int64, lastErr string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy, w.ejections, w.lastErr
}

// healthyCount is the number of workers currently taking traffic.
func (p *prober) healthyCount() int {
	n := 0
	for _, w := range p.workers {
		if w.isHealthy() {
			n++
		}
	}
	return n
}
