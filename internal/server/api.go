package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro"
	"repro/internal/table"
)

// Wire format of the v1 HTTP API. The JSON schema is versioned with the
// route prefix (/v1/) and regression-locked by the service_annotate.golden
// fixture: changing a field name or adding a field to a response is a wire
// format change and must update the golden file deliberately.

// AnnotateRequestJSON is the body of POST /v1/annotate.
type AnnotateRequestJSON struct {
	// Table is the table to annotate, in the internal/table JSON
	// interchange format: {"name", "columns": [{"header", "type"}],
	// "rows": [[...]]}.
	Table json.RawMessage `json:"table"`
	// Types restricts Γ; omit to target all twelve types.
	Types []string `json:"types,omitempty"`
	// K is the snippets-per-query count; omit for the paper's 10.
	K int `json:"k,omitempty"`
	// Postprocess and Disambiguate override the service defaults (both
	// on); omit to keep the default.
	Postprocess  *bool `json:"postprocess,omitempty"`
	Disambiguate *bool `json:"disambiguate,omitempty"`
	// Trace additionally returns per-cell decision explanations.
	Trace bool `json:"trace,omitempty"`
	// Geocode additionally resolves Location-column cells against the
	// gazetteer into geo_annotations.
	Geocode bool `json:"geocode,omitempty"`
}

// BatchRequestJSON is the body of POST /v1/annotate:batch.
type BatchRequestJSON struct {
	Requests []AnnotateRequestJSON `json:"requests"`
}

// AnnotationJSON is one annotated cell.
type AnnotationJSON struct {
	Row   int     `json:"row"`
	Col   int     `json:"col"`
	Type  string  `json:"type"`
	Score float64 `json:"score"`
}

// StatsJSON mirrors repro.Stats.
type StatsJSON struct {
	Rows      int            `json:"rows"`
	Cols      int            `json:"cols"`
	Annotated int            `json:"annotated"`
	Queries   int            `json:"queries"`
	Batches   int            `json:"batches"`
	Skipped   map[string]int `json:"skipped,omitempty"`
}

// CacheJSON mirrors repro.CacheStats.
type CacheJSON struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// TimingJSON reports the request's wall-clock cost in milliseconds.
type TimingJSON struct {
	TotalMs float64 `json:"total_ms"`
}

// GeoAnnotationJSON is one Location-column cell resolved against the
// gazetteer.
type GeoAnnotationJSON struct {
	Row        int     `json:"row"`
	Col        int     `json:"col"`
	Location   string  `json:"location"`
	Kind       string  `json:"kind"`
	City       string  `json:"city,omitempty"`
	Candidates int     `json:"candidates"`
	Score      float64 `json:"score"`
}

// AnnotateResponseJSON is the body of a successful POST /v1/annotate.
type AnnotateResponseJSON struct {
	Annotations    []AnnotationJSON    `json:"annotations"`
	ColumnTypes    map[string]string   `json:"column_types,omitempty"`
	Trace          []string            `json:"trace,omitempty"`
	GeoAnnotations []GeoAnnotationJSON `json:"geo_annotations,omitempty"`
	Stats          StatsJSON           `json:"stats"`
	Cache          CacheJSON           `json:"cache"`
	Timing         TimingJSON          `json:"timing"`
}

// GeocodeRequestJSON is the body of POST /v1/geocode.
type GeocodeRequestJSON struct {
	// Table is the table to geocode, in the internal/table JSON
	// interchange format.
	Table json.RawMessage `json:"table"`
}

// GeoStatsJSON mirrors repro.GeoStats.
type GeoStatsJSON struct {
	LocationCells int `json:"location_cells"`
	Resolved      int `json:"resolved"`
	Ambiguous     int `json:"ambiguous"`
}

// GeocodeResponseJSON is the body of a successful POST /v1/geocode.
type GeocodeResponseJSON struct {
	Annotations []GeoAnnotationJSON `json:"annotations"`
	Stats       GeoStatsJSON        `json:"stats"`
	Timing      TimingJSON          `json:"timing"`
}

// BatchResponseJSON is the body of a successful POST /v1/annotate:batch.
type BatchResponseJSON struct {
	Responses []AnnotateResponseJSON `json:"responses"`
}

// GeocodeBatchRequestJSON is the body of POST /v1/geocode:batch.
type GeocodeBatchRequestJSON struct {
	Requests []GeocodeRequestJSON `json:"requests"`
}

// GeocodeBatchResponseJSON is the body of a successful POST
// /v1/geocode:batch; Responses is in request order.
type GeocodeBatchResponseJSON struct {
	Responses []GeocodeResponseJSON `json:"responses"`
}

// ErrorJSON is the body of every non-2xx response.
type ErrorJSON struct {
	Error ErrorBodyJSON `json:"error"`
}

// ErrorBodyJSON carries the typed error: Code is machine-matchable
// ("invalid_json", "invalid_request", "table_too_large", "over_capacity",
// "cancelled"), Message is human-readable.
type ErrorBodyJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// StatzJSON is the body of GET /statz.
type StatzJSON struct {
	UptimeMs    float64       `json:"uptime_ms"`
	InFlight    int           `json:"in_flight"`
	MaxInFlight int           `json:"max_in_flight"`
	Served      int64         `json:"served"`
	Rejected    int64         `json:"rejected"`
	Failed      int64         `json:"failed"`
	Snapshot    *SnapshotFull `json:"snapshot,omitempty"`
	Search      *SearchFull   `json:"search,omitempty"`
	Cache       *CacheFull    `json:"cache,omitempty"`
	Geo         *GeoFull      `json:"geo,omitempty"`
	Router      *RouterFull   `json:"router,omitempty"`
}

// RouterFull is the router tier's own /statz section, absent from a worker's
// statz. The surrounding StatzJSON counters are the fleet-wide sums of every
// reachable worker's counters (rejected additionally includes edge sheds);
// Workers carries the per-worker breakdown.
type RouterFull struct {
	WorkersTotal   int                `json:"workers_total"`
	WorkersHealthy int                `json:"workers_healthy"`
	Replication    int                `json:"replication"`
	HedgeDelayMs   float64            `json:"hedge_delay_ms"`
	HedgesFired    int64              `json:"hedges_fired"`
	HedgesWon      int64              `json:"hedges_won"`
	Retries        int64              `json:"retries"`
	Routed         int64              `json:"routed"`
	RejectedAtEdge int64              `json:"rejected_at_edge"`
	NoWorkerErrors int64              `json:"no_worker_errors"`
	UpstreamErrors int64              `json:"upstream_errors"`
	Workers        []RouterWorkerJSON `json:"workers"`
}

// RouterWorkerJSON is one worker's router-side view: health-state counters
// plus the worker's own served count when its /statz was reachable.
type RouterWorkerJSON struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	InFlight  int64  `json:"in_flight"`
	Ejections int64  `json:"ejections"`
	Reachable bool   `json:"reachable"`
	Served    int64  `json:"served"`
	LastError string `json:"last_error,omitempty"`
}

// SnapshotFull says where the serving world came from: "built" (full
// in-process world build) or "snapshot" (booted from a TSNP bundle), with
// the world's identity, the bundle load cost (snapshot boots only) and the
// number of completed hot-reload swaps since the server started.
type SnapshotFull struct {
	Source      string  `json:"source"`
	Seed        int64   `json:"seed"`
	Scale       string  `json:"scale"`
	Classifier  string  `json:"classifier"`
	LoadMs      float64 `json:"load_ms,omitempty"`
	ReloadEpoch int64   `json:"reload_epoch"`
}

// GeoFull is the geo subsystem's point-in-time serving state: the frozen
// gazetteer's size, the number of POST /v1/geocode requests served, the
// cells resolved across both that endpoint and annotate requests that
// carried the geocode flag, and the component-parallel resolver's
// decomposition counters — components resolved cumulatively, the largest
// component seen, and the high-water mark of pooled per-component scratch
// bytes held at once (the stage's bounded working memory).
type GeoFull struct {
	GazetteerLocations int   `json:"gazetteer_locations"`
	Requests           int64 `json:"requests"`
	CellsResolved      int64 `json:"cells_resolved"`
	Components         int64 `json:"components"`
	LargestComponent   int64 `json:"largest_component"`
	PeakScratchBytes   int64 `json:"peak_scratch_bytes"`
}

// SearchFull is the search engine's point-in-time serving state: total and
// batched query counts, and the per-shard fan-out when the index is sharded.
type SearchFull struct {
	IndexDocs      int     `json:"index_docs"`
	Queries        int     `json:"queries"`
	Batches        int     `json:"batches"`
	BatchedQueries int     `json:"batched_queries"`
	AvgBatchSize   float64 `json:"avg_batch_size"`
	Shards         int     `json:"shards"`
	ShardQueries   []int64 `json:"shard_queries,omitempty"`
}

// CacheFull is the shared verdict cache's point-in-time state; absent when
// the service was built without a shared cache. Evictions counts entries
// dropped by the entry cap, Expirations entries dropped past their TTL; both
// stay 0 on an unbounded cache (the default).
type CacheFull struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Entries     int     `json:"entries"`
	HitRate     float64 `json:"hit_rate"`
	Evictions   int64   `json:"evictions"`
	Expirations int64   `json:"expirations"`
}

// HealthJSON is the body of GET /healthz.
type HealthJSON struct {
	Status string `json:"status"`
}

// toRequest parses and validates the wire request into the service request.
// Table parsing reuses the internal/table JSON reader, so column-type and
// row-width validation match the rest of the system.
func (w *AnnotateRequestJSON) toRequest() (*repro.AnnotateRequest, error) {
	if len(w.Table) == 0 {
		return nil, &repro.RequestError{Field: "table", Reason: "missing"}
	}
	tbl, err := table.ReadJSON(bytes.NewReader(w.Table))
	if err != nil {
		return nil, &repro.RequestError{Field: "table", Reason: err.Error()}
	}
	return &repro.AnnotateRequest{
		Table:        tbl,
		Types:        w.Types,
		K:            w.K,
		Postprocess:  repro.ToggleOf(w.Postprocess),
		Disambiguate: repro.ToggleOf(w.Disambiguate),
		Trace:        w.Trace,
		Geocode:      w.Geocode,
	}, nil
}

// toGeocodeRequest parses the wire request into the service request.
func (w *GeocodeRequestJSON) toRequest() (*repro.GeocodeRequest, error) {
	if len(w.Table) == 0 {
		return nil, &repro.RequestError{Field: "table", Reason: "missing"}
	}
	tbl, err := table.ReadJSON(bytes.NewReader(w.Table))
	if err != nil {
		return nil, &repro.RequestError{Field: "table", Reason: err.Error()}
	}
	return &repro.GeocodeRequest{Table: tbl}, nil
}

// geoToWire converts the service geo annotations to their wire form.
func geoToWire(gas []repro.GeoAnnotation) []GeoAnnotationJSON {
	if len(gas) == 0 {
		return nil
	}
	out := make([]GeoAnnotationJSON, len(gas))
	for i, ga := range gas {
		out[i] = GeoAnnotationJSON{
			Row:        ga.Row,
			Col:        ga.Col,
			Location:   ga.Location,
			Kind:       ga.Kind,
			City:       ga.City,
			Candidates: ga.Candidates,
			Score:      ga.Score,
		}
	}
	return out
}

// geocodeToWire converts a service geocode response to its wire form.
func geocodeToWire(resp *repro.GeocodeResponse) GeocodeResponseJSON {
	out := GeocodeResponseJSON{
		// Annotations is always present in the wire format, even when
		// empty, so clients can range over it without a nil check.
		Annotations: geoToWire(resp.Annotations),
		Stats: GeoStatsJSON{
			LocationCells: resp.Stats.LocationCells,
			Resolved:      resp.Stats.Resolved,
			Ambiguous:     resp.Stats.Ambiguous,
		},
		Timing: TimingJSON{TotalMs: float64(resp.Timing.Total) / float64(time.Millisecond)},
	}
	if out.Annotations == nil {
		out.Annotations = []GeoAnnotationJSON{}
	}
	return out
}

// toWire converts a service response to its wire form.
func toWire(resp *repro.AnnotateResponse) AnnotateResponseJSON {
	out := AnnotateResponseJSON{
		// Annotations is always present in the wire format, even when
		// empty, so clients can range over it without a nil check.
		Annotations:    make([]AnnotationJSON, len(resp.Annotations)),
		Trace:          resp.Trace,
		GeoAnnotations: geoToWire(resp.GeoAnnotations),
		Stats: StatsJSON{
			Rows:      resp.Stats.Rows,
			Cols:      resp.Stats.Cols,
			Annotated: resp.Stats.Annotated,
			Queries:   resp.Stats.Queries,
			Batches:   resp.Stats.Batches,
			Skipped:   resp.Stats.Skipped,
		},
		Cache:  CacheJSON{Hits: resp.CacheStats.Hits, Misses: resp.CacheStats.Misses},
		Timing: TimingJSON{TotalMs: float64(resp.Timing.Total) / float64(time.Millisecond)},
	}
	for i, ann := range resp.Annotations {
		out.Annotations[i] = AnnotationJSON{Row: ann.Row, Col: ann.Col, Type: ann.Type, Score: ann.Score}
	}
	if len(resp.ColumnTypes) > 0 {
		out.ColumnTypes = make(map[string]string, len(resp.ColumnTypes))
		for col, typ := range resp.ColumnTypes {
			out.ColumnTypes[fmt.Sprint(col)] = typ
		}
	}
	return out
}
