package server

// Handler-level tests of the v1 HTTP API: request validation with typed
// error responses, admission control under concurrency, and the
// service_annotate.golden fixture that regression-locks the wire format
// byte-for-byte (timing masked — it measures the host, not the system).
// Regenerate the fixture with:
//
//	go test ./internal/server -run TestGoldenWire -update

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/table"
	"repro/internal/world"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files with current output")

// One service for the whole package: construction is the expensive step and
// the handlers treat it as read-only. Built without the shared cache so
// query counts in responses are per-request deterministic regardless of test
// order.
var (
	svcOnce sync.Once
	svcVal  *repro.Service
)

func testService(t *testing.T) *repro.Service {
	t.Helper()
	if testing.Short() {
		t.Skip("service construction skipped in -short mode")
	}
	svcOnce.Do(func() {
		svc, err := repro.New(context.Background(), repro.WithSeed(42), repro.WithParallelism(4))
		if err != nil {
			panic(err)
		}
		svcVal = svc
	})
	return svcVal
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Service = testService(t)
	return New(cfg)
}

// tableJSON renders the canonical quickstart-shaped table (two museums and a
// restaurant from the seeded universe) in the wire format.
func tableJSON(t *testing.T) []byte {
	t.Helper()
	svc := testService(t)
	w := svc.World()
	tbl := table.New("city-guide",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Address", Type: table.Location},
		table.Column{Header: "Phone", Type: table.Text},
	)
	for _, e := range []*world.Entity{
		w.OfType(world.Museum)[0],
		w.OfType(world.Restaurant)[0],
		w.OfType(world.Museum)[1],
	} {
		if err := tbl.AppendRow(e.Name, e.Address(w.Gaz).Format(), e.Phone); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func post(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) ErrorBodyJSON {
	t.Helper()
	var e ErrorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not ErrorJSON: %v\n%s", err, rec.Body.String())
	}
	return e.Error
}

func TestAnnotateHandlerValidation(t *testing.T) {
	h := testServer(t, Config{}).Handler()
	// hSmall rejects the 9-cell test table on size; the size check runs
	// after table parsing but the table must otherwise be valid.
	hSmall := testServer(t, Config{MaxCells: 8}).Handler()
	tblJSON := tableJSON(t)
	req := func(mutate func(m map[string]any)) []byte {
		m := map[string]any{"table": json.RawMessage(tblJSON)}
		if mutate != nil {
			mutate(m)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cases := []struct {
		name       string
		body       []byte
		handler    http.Handler
		wantStatus int
		wantCode   string
		wantInMsg  string
	}{
		{"invalid json", []byte("{"), nil, http.StatusBadRequest, "invalid_json", ""},
		{"unknown field", []byte(`{"tabel": {}}`), nil, http.StatusBadRequest, "invalid_json", "tabel"},
		{"missing table", []byte(`{}`), nil, http.StatusBadRequest, "invalid_request", "table"},
		{"bad column type", []byte(`{"table": {"name":"x","columns":[{"header":"A","type":"Blob"}],"rows":[]}}`),
			nil, http.StatusBadRequest, "invalid_request", "Blob"},
		{"ragged row", []byte(`{"table": {"name":"x","columns":[{"header":"A","type":"Text"}],"rows":[["a","b"]]}}`),
			nil, http.StatusBadRequest, "invalid_request", "row"},
		{"unknown type name", req(func(m map[string]any) { m["types"] = []string{"museum", "starship"} }),
			nil, http.StatusBadRequest, "invalid_request", "starship"},
		{"negative k", req(func(m map[string]any) { m["k"] = -2 }),
			nil, http.StatusBadRequest, "invalid_request", "k"},
		{"oversized table", req(nil), hSmall, http.StatusRequestEntityTooLarge, "table_too_large", "cells"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target := tc.handler
			if target == nil {
				target = h
			}
			rec := post(target, "/v1/annotate", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d\n%s", rec.Code, tc.wantStatus, rec.Body.String())
			}
			e := decodeError(t, rec)
			if e.Code != tc.wantCode {
				t.Errorf("error code = %q, want %q", e.Code, tc.wantCode)
			}
			if tc.wantInMsg != "" && !strings.Contains(e.Message, tc.wantInMsg) {
				t.Errorf("error message %q does not mention %q", e.Message, tc.wantInMsg)
			}
		})
	}
}

func TestRouting(t *testing.T) {
	h := testServer(t, Config{}).Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/annotate", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/annotate status = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v2/annotate", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("POST /v2/annotate status = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("GET /healthz status = %d, want 200", rec.Code)
	}
	var health HealthJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil || health.Status != "ok" {
		t.Errorf("healthz body = %q, want status ok", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("GET /statz status = %d, want 200", rec.Code)
	}
	var statz StatzJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &statz); err != nil {
		t.Fatalf("statz body: %v", err)
	}
	if statz.MaxInFlight != 64 {
		t.Errorf("statz max_in_flight = %d, want the default 64", statz.MaxInFlight)
	}
	if statz.Search == nil {
		t.Fatal("statz missing the search section")
	}
	if statz.Search.Shards < 1 || len(statz.Search.ShardQueries) != statz.Search.Shards {
		t.Errorf("statz search shards = %d with %d shard counters, want matching >= 1",
			statz.Search.Shards, len(statz.Search.ShardQueries))
	}
	if statz.Search.IndexDocs == 0 {
		t.Error("statz search index_docs = 0, want the corpus size")
	}
}

func TestCancelledMidFlight(t *testing.T) {
	h := testServer(t, Config{}).Handler()
	body, err := json.Marshal(map[string]any{"table": json.RawMessage(tableJSON(t))})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/annotate", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d\n%s", rec.Code, statusClientClosedRequest, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != "cancelled" {
		t.Errorf("error code = %q, want cancelled", e.Code)
	}
}

// TestRoundTripMatchesInProcess locks the serving layer to the in-process
// API: the annotations coming back over HTTP must be byte-identical to the
// wire rendering of a direct Service.Annotate call.
func TestRoundTripMatchesInProcess(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(testServer(t, Config{}).Handler())
	defer srv.Close()

	tblJSON := tableJSON(t)
	body, err := json.Marshal(AnnotateRequestJSON{Table: tblJSON})
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(srv.URL+"/v1/annotate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", httpResp.StatusCode)
	}
	var overHTTP AnnotateResponseJSON
	if err := json.NewDecoder(httpResp.Body).Decode(&overHTTP); err != nil {
		t.Fatal(err)
	}

	tbl, err := table.ReadJSON(bytes.NewReader(tblJSON))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := svc.Annotate(context.Background(), &repro.AnnotateRequest{Table: tbl})
	if err != nil {
		t.Fatal(err)
	}
	if len(overHTTP.Annotations) == 0 {
		t.Fatal("HTTP path produced no annotations; the comparison would be vacuous")
	}

	gotBytes, err := json.Marshal(overHTTP.Annotations)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := json.Marshal(toWire(direct).Annotations)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("annotations over HTTP diverge from in-process:\n http = %s\n proc = %s", gotBytes, wantBytes)
	}
	if !reflect.DeepEqual(overHTTP.Stats, toWire(direct).Stats) {
		t.Errorf("stats over HTTP diverge from in-process: %+v vs %+v", overHTTP.Stats, toWire(direct).Stats)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 2})
	h := s.Handler()
	tblJSON := tableJSON(t)

	rec := post(h, "/v1/annotate:batch", []byte(`{"requests": []}`))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", rec.Code)
	}

	three, err := json.Marshal(BatchRequestJSON{Requests: []AnnotateRequestJSON{
		{Table: tblJSON}, {Table: tblJSON}, {Table: tblJSON},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec = post(h, "/v1/annotate:batch", three)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", rec.Code)
	}

	// A bad request inside the batch is rejected with its index.
	bad, err := json.Marshal(BatchRequestJSON{Requests: []AnnotateRequestJSON{
		{Table: tblJSON}, {Table: nil},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec = post(h, "/v1/annotate:batch", bad)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad batch status = %d, want 400", rec.Code)
	}
	if e := decodeError(t, rec); !strings.Contains(e.Message, "request 1") {
		t.Errorf("batch error message %q does not name the failing index", e.Message)
	}

	two, err := json.Marshal(BatchRequestJSON{Requests: []AnnotateRequestJSON{
		{Table: tblJSON}, {Table: tblJSON, Types: []string{"museum"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec = post(h, "/v1/annotate:batch", two)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d\n%s", rec.Code, rec.Body.String())
	}
	var batch BatchResponseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Responses) != 2 {
		t.Fatalf("batch returned %d responses, want 2", len(batch.Responses))
	}
	single := post(h, "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tblJSON}))
	var singleResp AnnotateResponseJSON
	if err := json.Unmarshal(single.Body.Bytes(), &singleResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch.Responses[0].Annotations, singleResp.Annotations) {
		t.Error("batch response 0 diverges from the single-request response")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAdmissionControl fills the in-flight semaphore and checks the 429
// shed path, then releases it and checks recovery.
func TestAdmissionControl(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 1})
	h := s.Handler()
	body := mustMarshal(t, AnnotateRequestJSON{Table: tableJSON(t)})

	s.sem <- struct{}{} // occupy the only slot
	rec := post(h, "/v1/annotate", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status with full semaphore = %d, want 429", rec.Code)
	}
	if e := decodeError(t, rec); e.Code != "over_capacity" {
		t.Errorf("error code = %q, want over_capacity", e.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	<-s.sem

	rec = post(h, "/v1/annotate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status after release = %d, want 200\n%s", rec.Code, rec.Body.String())
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

// TestBatchAdmissionWeighted: a batch call is charged one slot per request,
// so MaxInFlight bounds table annotations, not HTTP calls.
func TestBatchAdmissionWeighted(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 2, MaxBatch: 2})
	h := s.Handler()
	batch := mustMarshal(t, BatchRequestJSON{Requests: []AnnotateRequestJSON{
		{Table: tableJSON(t)}, {Table: tableJSON(t)},
	}})

	s.sem <- struct{}{} // occupy one of the two slots
	rec := post(h, "/v1/annotate:batch", batch)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch of 2 with 1 free slot: status = %d, want 429\n%s", rec.Code, rec.Body.String())
	}
	if got := len(s.sem); got != 1 {
		t.Errorf("failed admission leaked slots: in-flight = %d, want 1", got)
	}
	<-s.sem

	rec = post(h, "/v1/annotate:batch", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch of 2 with 2 free slots: status = %d\n%s", rec.Code, rec.Body.String())
	}
	if got := len(s.sem); got != 0 {
		t.Errorf("slots not released after batch: in-flight = %d, want 0", got)
	}
}

// TestMaxBatchClampedToMaxInFlight: a batch larger than MaxInFlight could
// never be admitted, so New clamps the limit.
func TestMaxBatchClampedToMaxInFlight(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 4, MaxBatch: 32})
	if s.cfg.MaxBatch != 4 {
		t.Errorf("MaxBatch = %d, want clamped to MaxInFlight (4)", s.cfg.MaxBatch)
	}
}

// TestConcurrentRequests storms the server with more concurrent requests
// than MaxInFlight allows; under -race this doubles as the data-race check
// of the acceptance criteria. Every request must end in 200 or 429.
func TestConcurrentRequests(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := mustMarshal(t, AnnotateRequestJSON{Table: tableJSON(t)})

	const clients = 8
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/annotate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	ok := 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, st)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under concurrency")
	}
	if got := s.served.Load(); got != int64(ok) {
		t.Errorf("served counter = %d, want %d", got, ok)
	}
}

// timingRe masks the wall-clock field of the wire format: it measures the
// host machine, not the system under test.
var timingRe = regexp.MustCompile(`"total_ms": [0-9eE.+-]+`)

// TestGoldenWire locks the /v1/annotate JSON response byte-for-byte
// (timing masked) so the wire format cannot drift unreviewed.
func TestGoldenWire(t *testing.T) {
	h := testServer(t, Config{}).Handler()
	rec := post(h, "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tableJSON(t)}))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", rec.Code, rec.Body.String())
	}
	got := timingRe.ReplaceAll(rec.Body.Bytes(), []byte(`"total_ms": <wall-clock>`))

	path := filepath.Join("testdata", "golden", "service_annotate.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, regenerate with -update and review the diff.", got, want)
	}
}

// TestDefaultsApplied sanity-checks the config defaulting in New.
func TestDefaultsApplied(t *testing.T) {
	s := testServer(t, Config{})
	if s.cfg.MaxInFlight != 64 || s.cfg.MaxCells != 100000 || s.cfg.MaxBatch != 32 || s.cfg.MaxBodyBytes != 8<<20 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
	defer func() {
		if recover() == nil {
			t.Error("New with nil Service did not panic")
		}
	}()
	New(Config{})
}

// statzService is a second package-wide service, this one WITH the shared
// cache (tightly capped so eviction counters move): the statz golden locks
// the cache section's wire shape, which the cache-less testService never
// emits. Built once; only the statz golden uses it.
var (
	statzSvcOnce sync.Once
	statzSvcVal  *repro.Service
)

func statzService(t *testing.T) *repro.Service {
	t.Helper()
	if testing.Short() {
		t.Skip("service construction skipped in -short mode")
	}
	statzSvcOnce.Do(func() {
		// Sequential (default) parallelism and one shard keep every /statz
		// counter — including the FIFO eviction count — deterministic.
		svc, err := repro.New(context.Background(), repro.WithSeed(42),
			repro.WithSearchShards(1), repro.WithSharedCache(),
			repro.WithCacheLimits(32, 0))
		if err != nil {
			panic(err)
		}
		statzSvcVal = svc
	})
	return statzSvcVal
}

// TestStatzGoldenWire locks the GET /statz JSON body byte-for-byte (uptime
// masked — it measures the host) after one canonical annotate request, so the
// statz wire format, including the cache section's eviction and expiration
// counters, cannot drift unreviewed.
func TestStatzGoldenWire(t *testing.T) {
	srv := New(Config{Service: statzService(t)})
	h := srv.Handler()
	rec := post(h, "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tableJSON(t)}))
	if rec.Code != http.StatusOK {
		t.Fatalf("annotate status = %d\n%s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statz status = %d\n%s", rec.Code, rec.Body.String())
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("statz body: %v", err)
	}
	m["uptime_ms"] = "<wall-clock>"
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden", "service_statz.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("statz wire format diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, regenerate with -update and review the diff.", got, want)
	}
}
