package server

// Router tests: ring placement determinism, masked byte-identity between
// routed and direct responses on every proxied route, the hedging edge cases
// (primary wins after a hedge fires, worker dies mid-body, whole fleet
// ejected), and the merged /statz view. The parity tests run two real worker
// Servers over the one package-wide service — the handler-level equivalent
// of two replicas serving the same snapshot.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestRouter builds a router over the given worker URLs with fast probe
// cadence, registering cleanup.
func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// startWorkers boots n real worker Servers over the shared test service and
// returns their base URLs. All workers share one service — the same
// effective world two snapshot-booted replicas would hold.
func startWorkers(t *testing.T, n int, cfg Config) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := httptest.NewServer(testServer(t, cfg).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

func TestRingPlacement(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r1 := newRing(workers, 64)
	r2 := newRing(workers, 64)
	counts := make([]int, len(workers))
	for i := 0; i < 4000; i++ {
		key := hashBytes([]byte(fmt.Sprintf("key-%d", i)))
		o1 := r1.owners(key, 2)
		o2 := r2.owners(key, 2)
		if len(o1) != 2 || o1[0] == o1[1] {
			t.Fatalf("owners(%d) = %v, want 2 distinct workers", key, o1)
		}
		if o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatalf("rings over the same worker list disagree: %v vs %v", o1, o2)
		}
		counts[o1[0]]++
	}
	for w, c := range counts {
		// 4000 primaries over 4 workers: virtual nodes should keep every
		// worker within a loose band of the 1000 ideal.
		if c < 400 || c > 1800 {
			t.Errorf("worker %d owns %d/4000 primaries: ring badly unbalanced", w, c)
		}
	}
	if got := r1.owners(42, 10); len(got) != len(workers) {
		t.Errorf("replication above the worker count should clamp: got %d owners", len(got))
	}
}

func TestTableKeyCanonical(t *testing.T) {
	tbl := tableJSON(t)
	k1, err := tableKey(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Re-marshal through a generic map: same table, different formatting
	// (indentation collapsed, key order per Go's sorted map marshaling).
	var m map[string]any
	if err := json.Unmarshal(tbl, &m); err != nil {
		t.Fatal(err)
	}
	alt, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(alt, tbl) {
		t.Fatal("test needs a distinct formatting of the same table")
	}
	k2, err := tableKey(alt)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("same table, different formatting hashed to different keys: %x vs %x", k1, k2)
	}
	if _, err := tableKey([]byte(`{"name": 3}`)); err == nil {
		t.Error("unparseable table should not produce a key")
	}
}

// TestRouterParity locks the tentpole's core promise: a response served
// through the router is byte-identical (timing masked) to the same request
// against a single worker, on every proxied route.
func TestRouterParity(t *testing.T) {
	urls := startWorkers(t, 2, Config{})
	direct := testServer(t, Config{}).Handler()
	router := newTestRouter(t, RouterConfig{Workers: urls})
	rh := router.Handler()
	tbl := tableJSON(t)

	singleAnnotate := mustMarshal(t, AnnotateRequestJSON{Table: tbl, Trace: true, Geocode: true})
	singleGeocode := mustMarshal(t, GeocodeRequestJSON{Table: tbl})
	batchAnnotate := mustMarshal(t, BatchRequestJSON{Requests: []AnnotateRequestJSON{
		{Table: tbl}, {Table: tbl, Geocode: true}, {Table: tbl, Types: []string{"Museum"}},
	}})
	batchGeocode := mustMarshal(t, GeocodeBatchRequestJSON{Requests: []GeocodeRequestJSON{
		{Table: tbl}, {Table: tbl},
	}})

	for _, tc := range []struct {
		path string
		body []byte
	}{
		{"/v1/annotate", singleAnnotate},
		{"/v1/geocode", singleGeocode},
		{"/v1/annotate:batch", batchAnnotate},
		{"/v1/geocode:batch", batchGeocode},
	} {
		t.Run(tc.path, func(t *testing.T) {
			want := post(direct, tc.path, tc.body)
			got := post(rh, tc.path, tc.body)
			if got.Code != want.Code {
				t.Fatalf("status = %d, want %d\n%s", got.Code, want.Code, got.Body.String())
			}
			if gc, wc := got.Header().Get("Content-Type"), want.Header().Get("Content-Type"); gc != wc {
				t.Errorf("content type = %q, want %q", gc, wc)
			}
			gotBody := timingRe.ReplaceAll(got.Body.Bytes(), []byte(`"total_ms": <wall-clock>`))
			wantBody := timingRe.ReplaceAll(want.Body.Bytes(), []byte(`"total_ms": <wall-clock>`))
			if !bytes.Equal(gotBody, wantBody) {
				t.Errorf("routed response diverged from direct response.\n--- routed ---\n%s\n--- direct ---\n%s", gotBody, wantBody)
			}
		})
	}
}

// TestRouterValidation covers the errors the router must produce itself —
// everything it needs to reject before it can pick an owner.
func TestRouterValidation(t *testing.T) {
	urls := startWorkers(t, 1, Config{})
	rh := newTestRouter(t, RouterConfig{Workers: urls, MaxBatch: 2}).Handler()
	tbl := tableJSON(t)

	for _, tc := range []struct {
		name, path string
		body       []byte
		status     int
		code       string
	}{
		{"bad json", "/v1/annotate", []byte(`{"table": `), http.StatusBadRequest, "invalid_json"},
		{"missing table", "/v1/annotate", []byte(`{}`), http.StatusBadRequest, "invalid_request"},
		{"unparseable table", "/v1/geocode", []byte(`{"table": {"name": 3}}`), http.StatusBadRequest, "invalid_request"},
		{"empty batch", "/v1/annotate:batch", []byte(`{"requests": []}`), http.StatusBadRequest, "invalid_request"},
		{"oversized batch", "/v1/geocode:batch",
			mustMarshal(t, GeocodeBatchRequestJSON{Requests: []GeocodeRequestJSON{{Table: tbl}, {Table: tbl}, {Table: tbl}}}),
			http.StatusBadRequest, "invalid_request"},
		{"bad batch item", "/v1/annotate:batch", []byte(`{"requests": [{"table": {"name": 3}}]}`), http.StatusBadRequest, "invalid_request"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(rh, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d\n%s", rec.Code, tc.status, rec.Body.String())
			}
			if e := decodeError(t, rec); e.Code != tc.code {
				t.Errorf("code = %q, want %q (message %q)", e.Code, tc.code, e.Message)
			}
		})
	}

	t.Run("bad batch item is indexed", func(t *testing.T) {
		body := mustMarshal(t, map[string]any{"requests": []any{
			map[string]any{"table": json.RawMessage(tbl)},
			map[string]any{},
		}})
		rec := post(rh, "/v1/annotate:batch", body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", rec.Code)
		}
		if e := decodeError(t, rec); !bytes.Contains([]byte(e.Message), []byte("request 1:")) {
			t.Errorf("message %q does not name the failing request", e.Message)
		}
	})
}

// TestHedgePrimaryWins drives hedgedDo through the race the ISSUE singles
// out: the hedge fires, then the PRIMARY answers first. The hedge must be
// cancelled and the outcome counted once.
func TestHedgePrimaryWins(t *testing.T) {
	primaryDone := make(chan struct{})
	hedgeCancelled := make(chan struct{})
	var outcomes atomic.Int64
	want := &upstreamResponse{status: 200, body: []byte("primary")}
	res, hedgeFired, hedgeWon, retries, err := hedgedDo(context.Background(), []int{0, 1}, 5*time.Millisecond, true,
		func(ctx context.Context, owner int) (*upstreamResponse, error) {
			if owner == 0 {
				// Slow enough for the hedge to fire, then win anyway.
				time.Sleep(30 * time.Millisecond)
				close(primaryDone)
				return want, nil
			}
			// The hedge parks until the winner's cleanup cancels it.
			<-ctx.Done()
			close(hedgeCancelled)
			return nil, ctx.Err()
		},
		func(owner int, d time.Duration, err error) { outcomes.Add(1) })
	if err != nil || res != want {
		t.Fatalf("hedgedDo = (%v, %v), want the primary's response", res, err)
	}
	if !hedgeFired || hedgeWon || retries != 0 {
		t.Errorf("hedgeFired=%v hedgeWon=%v retries=%d, want fired, not won, no retries", hedgeFired, hedgeWon, retries)
	}
	<-primaryDone
	select {
	case <-hedgeCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing hedge attempt was never cancelled")
	}
	// Both attempts complete and report exactly one outcome each — the
	// winner is not double-counted and the loser is observed as cancelled.
	deadline := time.Now().Add(2 * time.Second)
	for outcomes.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := outcomes.Load(); n != 2 {
		t.Errorf("onOutcome ran %d times, want 2", n)
	}
}

// TestHedgeWins is the complementary race: the primary is stuck, the hedge
// answers, the stuck primary is cancelled.
func TestHedgeWins(t *testing.T) {
	want := &upstreamResponse{status: 200, body: []byte("hedge")}
	res, hedgeFired, hedgeWon, _, err := hedgedDo(context.Background(), []int{0, 1}, time.Millisecond, true,
		func(ctx context.Context, owner int) (*upstreamResponse, error) {
			if owner == 0 {
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return want, nil
		}, func(int, time.Duration, error) {})
	if err != nil || res != want {
		t.Fatalf("hedgedDo = (%v, %v), want the hedge's response", res, err)
	}
	if !hedgeFired || !hedgeWon {
		t.Errorf("hedgeFired=%v hedgeWon=%v, want both", hedgeFired, hedgeWon)
	}
}

// TestWorkerDiesMidBody kills the primary worker partway through writing its
// response body; the router must retry the next ring owner exactly once and
// still serve the request.
func TestWorkerDiesMidBody(t *testing.T) {
	var dyingHits, healthyHits atomic.Int64
	wantBody := `{"ok": true}`
	// Ring ownership hashes worker URLs, so which of the two random-port
	// servers is the key's primary is not known until both exist. Both run
	// the same handler; dyingHost (assigned before any traffic) selects
	// which one plays the dying primary — the retry path, not the hedge
	// path, is under test (hedging is parked far beyond the test's
	// horizon).
	var dyingHost string
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if r.Host == dyingHost {
			dyingHits.Add(1)
			// Promise more bytes than we send, then abort: the client
			// sees a transport error mid-body, after the status line
			// already arrived.
			w.Header().Set("Content-Length", "4096")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"par`))
			panic(http.ErrAbortHandler)
		}
		healthyHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(wantBody))
	})
	srvA := httptest.NewServer(handler)
	defer srvA.Close()
	srvB := httptest.NewServer(handler)
	defer srvB.Close()

	body := mustMarshal(t, AnnotateRequestJSON{Table: tableJSON(t)})
	key, status, code, msg := routeKey(body)
	if code != "" {
		t.Fatalf("routeKey: %d %s %s", status, code, msg)
	}
	workers := []string{srvA.URL, srvB.URL}
	primary := newRing(workers, 64).owners(key, 2)[0]
	dyingHost = strings.TrimPrefix(workers[primary], "http://")
	router := newTestRouter(t, RouterConfig{
		Workers:       workers,
		HedgeInitial:  30 * time.Second,
		ProbeInterval: time.Hour, // health never interferes; transport errors alone drive this test
	})
	rec := post(router.Handler(), "/v1/annotate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 after retry\n%s", rec.Code, rec.Body.String())
	}
	if rec.Body.String() != wantBody {
		t.Errorf("body = %q, want the healthy worker's response", rec.Body.String())
	}
	if got := dyingHits.Load(); got != 1 {
		t.Errorf("dying worker served %d attempts, want exactly 1 (no retry storm)", got)
	}
	if got := healthyHits.Load(); got != 1 {
		t.Errorf("healthy worker served %d attempts, want exactly 1 retry", got)
	}
	if got := router.retries.Load(); got != 1 {
		t.Errorf("router counted %d retries, want 1", got)
	}
}

// TestAllWorkersEjected starves the router of workers: every replica fails
// its health probes, traffic gets the typed 503, and a recovered worker is
// readmitted by the backoff prober.
func TestAllWorkersEjected(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path == "/healthz" {
			writeJSON(w, http.StatusOK, HealthJSON{Status: "ok"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok": true}`))
	}))
	defer worker.Close()

	router := newTestRouter(t, RouterConfig{
		Workers:            []string{worker.URL},
		ProbeInterval:      10 * time.Millisecond,
		ProbeFailThreshold: 2,
		ProbeBackoffMax:    40 * time.Millisecond,
	})
	rh := router.Handler()
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal("timed out waiting for " + what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return router.prober.healthyCount() == 0 }, "ejection of the only worker")

	body := mustMarshal(t, AnnotateRequestJSON{Table: tableJSON(t)})
	rec := post(rh, "/v1/annotate", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503\n%s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != "no_workers" {
		t.Errorf("code = %q, want no_workers", e.Code)
	}
	hrec := httptest.NewRecorder()
	rh.ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hrec.Code != http.StatusServiceUnavailable {
		t.Errorf("router /healthz = %d while fleet is down, want 503", hrec.Code)
	}
	if n := router.noWorkerErrors.Load(); n == 0 {
		t.Error("no_worker_errors counter did not advance")
	}

	// Batch requests hit the same wall with the same typed error.
	brec := post(rh, "/v1/annotate:batch", mustMarshal(t, map[string]any{"requests": []any{
		map[string]any{"table": json.RawMessage(tableJSON(t))},
	}}))
	if brec.Code != http.StatusServiceUnavailable {
		t.Fatalf("batch status = %d, want 503\n%s", brec.Code, brec.Body.String())
	}
	if e := decodeError(t, brec); e.Code != "no_workers" {
		t.Errorf("batch code = %q, want no_workers", e.Code)
	}

	// Recovery: the backoff prober readmits the worker once it answers.
	down.Store(false)
	waitFor(func() bool { return router.prober.healthyCount() == 1 }, "readmission after recovery")
	rec = post(rh, "/v1/annotate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status after readmission = %d, want 200\n%s", rec.Code, rec.Body.String())
	}
}

// TestRouterStatz checks the merged fleet view: summed counters, per-worker
// detail, and the router's own section.
func TestRouterStatz(t *testing.T) {
	urls := startWorkers(t, 2, Config{})
	router := newTestRouter(t, RouterConfig{Workers: urls})
	rh := router.Handler()
	tbl := tableJSON(t)

	for i := 0; i < 3; i++ {
		if rec := post(rh, "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tbl})); rec.Code != http.StatusOK {
			t.Fatalf("annotate %d: status %d\n%s", i, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	rh.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statz status = %d\n%s", rec.Code, rec.Body.String())
	}
	var st StatzJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Router == nil {
		t.Fatal("router statz is missing the router section")
	}
	if st.Router.WorkersTotal != 2 || st.Router.WorkersHealthy != 2 {
		t.Errorf("workers_total=%d workers_healthy=%d, want 2/2", st.Router.WorkersTotal, st.Router.WorkersHealthy)
	}
	if st.Router.Replication != 2 {
		t.Errorf("replication = %d, want 2", st.Router.Replication)
	}
	if st.Served != 3 {
		t.Errorf("merged served = %d, want the fleet sum 3", st.Served)
	}
	if st.Router.Routed != 3 {
		t.Errorf("routed = %d, want 3", st.Router.Routed)
	}
	if len(st.Router.Workers) != 2 {
		t.Fatalf("per-worker detail has %d entries, want 2", len(st.Router.Workers))
	}
	var workerServed int64
	for _, wj := range st.Router.Workers {
		if !wj.Reachable || !wj.Healthy {
			t.Errorf("worker %s: reachable=%v healthy=%v, want both", wj.URL, wj.Reachable, wj.Healthy)
		}
		workerServed += wj.Served
	}
	if workerServed != 3 {
		t.Errorf("per-worker served sums to %d, want 3", workerServed)
	}
	if st.Search == nil || st.Search.Queries == 0 {
		t.Error("merged search stats missing")
	}
}

// TestRouterAdmission fills the edge semaphore and checks the jittered
// Retry-After 429, without any worker involvement.
func TestRouterAdmission(t *testing.T) {
	urls := startWorkers(t, 1, Config{})
	router := newTestRouter(t, RouterConfig{Workers: urls, MaxInFlight: 2})
	rh := router.Handler()
	body := mustMarshal(t, AnnotateRequestJSON{Table: tableJSON(t)})

	router.sem <- struct{}{}
	router.sem <- struct{}{}
	rec := post(rh, "/v1/annotate", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != "over_capacity" {
		t.Errorf("code = %q, want over_capacity", e.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if ra != "1" && ra != "2" && ra != "3" {
		t.Errorf("Retry-After = %q, want a 1..3s hint", ra)
	}
	if rec2 := post(rh, "/v1/annotate", body); rec2.Header().Get("Retry-After") != ra {
		t.Error("Retry-After jitter is not deterministic for the same request")
	}
	// With one of the two slots still held, a 2-table batch cannot admit:
	// admission is weighted by table count, all-or-nothing.
	<-router.sem
	brec := post(rh, "/v1/annotate:batch", mustMarshal(t, BatchRequestJSON{Requests: []AnnotateRequestJSON{
		{Table: tableJSON(t)}, {Table: tableJSON(t)},
	}}))
	if brec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch status = %d, want 429 (weighted admission)\n%s", brec.Code, brec.Body.String())
	}
	<-router.sem
	if got := router.sem.inFlight(); got != 0 {
		t.Fatalf("in flight = %d after draining, want 0 (failed admissions must not leak slots)", got)
	}
}

// TestLatencyTracker pins the hedge-delay policy: Initial until the window
// has enough samples, then the window's p95 floored at Min.
func TestLatencyTracker(t *testing.T) {
	tr := newLatencyTracker(100, 250*time.Millisecond, 5*time.Millisecond)
	if got := tr.delay(); got != 250*time.Millisecond {
		t.Fatalf("empty tracker delay = %v, want Initial", got)
	}
	for i := 0; i < minSamples-1; i++ {
		tr.observe(time.Millisecond)
	}
	if got := tr.delay(); got != 250*time.Millisecond {
		t.Fatalf("delay below minSamples = %v, want Initial", got)
	}
	tr.observe(time.Millisecond)
	if got := tr.delay(); got != 5*time.Millisecond {
		t.Fatalf("delay over all-fast window = %v, want the Min floor", got)
	}
	// 100 samples 1..100ms: p95 lands in the mid-90s.
	tr2 := newLatencyTracker(100, 250*time.Millisecond, time.Millisecond)
	for i := 1; i <= 100; i++ {
		tr2.observe(time.Duration(i) * time.Millisecond)
	}
	if got := tr2.delay(); got < 90*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p95 of 1..100ms = %v, want ~95ms", got)
	}
	// The window slides: 100 fresh 2ms samples push the old tail out.
	for i := 0; i < 100; i++ {
		tr2.observe(2 * time.Millisecond)
	}
	if got := tr2.delay(); got != 2*time.Millisecond {
		t.Fatalf("delay after window turnover = %v, want 2ms", got)
	}
	if got := tr2.samples(); got != 100 {
		t.Fatalf("samples = %d, want the window size", got)
	}
}

// TestProberBackoff pins the ejected-worker probe schedule: exponential
// doubling capped at BackoffMax, reset on readmission.
func TestProberBackoff(t *testing.T) {
	p := newProber([]string{"http://x:1"}, healthConfig{
		Interval:      10 * time.Millisecond,
		FailThreshold: 2,
		BackoffMax:    40 * time.Millisecond,
	}, http.DefaultClient)
	w := p.workers[0]
	p.observeFailure(w, "boom")
	if !w.isHealthy() {
		t.Fatal("one failure below the threshold must not eject")
	}
	p.observeFailure(w, "boom")
	if w.isHealthy() {
		t.Fatal("threshold failures must eject")
	}
	if _, ej, lastErr := w.snapshotStats(); ej != 1 || lastErr != "boom" {
		t.Fatalf("ejections=%d lastErr=%q, want 1, boom", ej, lastErr)
	}
	for _, want := range []time.Duration{20, 40, 40} {
		p.observeFailure(w, "still down")
		if w.backoff != want*time.Millisecond {
			t.Fatalf("backoff = %v, want %v", w.backoff, want*time.Millisecond)
		}
	}
	w.readmit()
	if !w.isHealthy() || w.consecFails != 0 {
		t.Fatal("readmission must reset the state machine")
	}
	// The next ejection starts the backoff ladder over.
	p.observeFailure(w, "down again")
	p.observeFailure(w, "down again")
	if w.backoff != 10*time.Millisecond {
		t.Fatalf("backoff after re-ejection = %v, want the base interval", w.backoff)
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("NewRouter with no workers must fail")
	}
	r, err := NewRouter(RouterConfig{Workers: []string{"http://a:1"}, Replication: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.cfg.Replication != 1 {
		t.Errorf("replication = %d, want clamped to the worker count", r.cfg.Replication)
	}
	if r.cfg.MaxInFlight != 256 || r.cfg.MaxBatch != 32 {
		t.Errorf("defaults = (%d, %d), want (256, 32)", r.cfg.MaxInFlight, r.cfg.MaxBatch)
	}
}

// TestHedgeShedDemotion: a hedge that lands on a busy replica gets an
// instant 429; it must not beat a slow-but-succeeding primary, but it is
// still the answer when every attempt sheds.
func TestHedgeShedDemotion(t *testing.T) {
	want := &upstreamResponse{status: http.StatusOK, body: []byte("slow but fine")}
	shed := &upstreamResponse{status: http.StatusTooManyRequests}
	res, _, hedgeWon, _, err := hedgedDo(context.Background(), []int{0, 1}, time.Millisecond, true,
		func(ctx context.Context, owner int) (*upstreamResponse, error) {
			if owner == 0 {
				time.Sleep(30 * time.Millisecond)
				return want, nil
			}
			return shed, nil
		}, func(int, time.Duration, error) {})
	if err != nil || res != want {
		t.Fatalf("hedgedDo = (%v, %v), want the primary's 200 over the hedge's 429", res, err)
	}
	if hedgeWon {
		t.Error("a shed hedge response must not count as a hedge win")
	}

	res, _, _, _, err = hedgedDo(context.Background(), []int{0, 1}, time.Millisecond, true,
		func(ctx context.Context, owner int) (*upstreamResponse, error) {
			if owner == 1 {
				time.Sleep(10 * time.Millisecond)
			}
			return shed, nil
		}, func(int, time.Duration, error) {})
	if err != nil || res != shed {
		t.Fatalf("hedgedDo with every attempt shed = (%v, %v), want the 429 relayed", res, err)
	}
}

// TestHedgedDoErrors covers the exhausted paths: no owners at all, and every
// attempt failing transport.
func TestHedgedDoErrors(t *testing.T) {
	if _, _, _, _, err := hedgedDo(context.Background(), nil, time.Millisecond, true, nil, nil); !errors.Is(err, errNoOwners) {
		t.Fatalf("err = %v, want errNoOwners", err)
	}
	boom := errors.New("connection refused")
	_, _, _, retries, err := hedgedDo(context.Background(), []int{0, 1}, time.Hour, false,
		func(ctx context.Context, owner int) (*upstreamResponse, error) {
			return nil, fmt.Errorf("worker %d: %w", owner, boom)
		}, func(int, time.Duration, error) {})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the transport error", err)
	}
	if retries != 1 {
		t.Fatalf("retries = %d, want exactly 1", retries)
	}
}
