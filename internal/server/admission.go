package server

import (
	"hash/fnv"
	"strconv"
)

// semaphore is the bounded in-flight admission primitive shared by the
// single-process Server and the Router: a buffered channel whose capacity is
// the in-flight limit. Acquisition is all-or-nothing and never blocks — a
// full instance sheds the request with 429 instead of queueing into timeout
// territory.
type semaphore chan struct{}

func newSemaphore(n int) semaphore { return make(semaphore, n) }

// tryAcquire reserves n slots without blocking. It either reserves all n and
// returns true, or reserves none and returns false — a partially-admitted
// batch can never leak slots.
func (s semaphore) tryAcquire(n int) bool {
	for i := 0; i < n; i++ {
		select {
		case s <- struct{}{}:
		default:
			s.release(i)
			return false
		}
	}
	return true
}

func (s semaphore) release(n int) {
	for i := 0; i < n; i++ {
		<-s
	}
}

// inFlight is the number of slots currently held.
func (s semaphore) inFlight() int { return len(s) }

// retryAfterSeconds derives the Retry-After hint of a 429 from the request's
// hash: 1 + (key mod 3) seconds. The jitter is deterministic per request —
// the same request always gets the same hint — but spreads distinct requests
// over a 3-second window, so a synchronized fleet of clients that all got
// shed in the same instant does not retry in lockstep and re-stampede the
// admission gate.
func retryAfterSeconds(key uint64) string {
	return strconv.Itoa(1 + int(key%3))
}

// hashBytes folds one byte slice into an FNV-1a request key. Handlers hash
// the raw wire table bytes (batches fold every table in order), so the key —
// and with it the Retry-After jitter and the router's ring placement — is a
// pure function of the request payload.
func hashBytes(chunks ...[]byte) uint64 {
	h := fnv.New64a()
	for _, c := range chunks {
		_, _ = h.Write(c)
	}
	return h.Sum64()
}
