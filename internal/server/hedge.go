package server

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyTracker maintains a sliding window of recent proxied-request
// latencies and serves the hedge delay: the window's p95, floored at Min.
// Firing the hedge at ~p95 means roughly 5% of requests cost a duplicate
// attempt — the standard tail-vs-load trade (The Tail at Scale) — while the
// slowest requests stop waiting on a stuck replica. Until the window has
// enough samples to estimate a tail at all, Initial is served instead.
type latencyTracker struct {
	mu      sync.Mutex
	window  []time.Duration // ring buffer of the last cap(window) samples
	next    int             // next write position
	filled  bool            // the buffer has wrapped at least once
	scratch []time.Duration // reused sort buffer

	// Initial is the delay served before minSamples observations exist.
	Initial time.Duration
	// Min floors the computed delay so a burst of fast responses cannot
	// drive the hedge rate toward 100%.
	Min time.Duration
}

// minSamples is the observation count below which the tracker does not trust
// its p95 and keeps serving Initial.
const minSamples = 20

func newLatencyTracker(window int, initial, min time.Duration) *latencyTracker {
	if window <= 0 {
		window = 512
	}
	return &latencyTracker{
		window:  make([]time.Duration, window),
		scratch: make([]time.Duration, 0, window),
		Initial: initial,
		Min:     min,
	}
}

// observe records one successful attempt's latency.
func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.window[t.next] = d
	t.next++
	if t.next == len(t.window) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// delay returns the current hedge delay: p95 of the window (floored at Min),
// or Initial while the window is still too empty to rank.
func (t *latencyTracker) delay() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.filled {
		n = len(t.window)
	}
	if n < minSamples {
		return t.Initial
	}
	t.scratch = append(t.scratch[:0], t.window[:n]...)
	sort.Slice(t.scratch, func(i, j int) bool { return t.scratch[i] < t.scratch[j] })
	d := t.scratch[n*95/100]
	if d < t.Min {
		d = t.Min
	}
	return d
}

// samples is the number of observations currently in the window.
func (t *latencyTracker) samples() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		return len(t.window)
	}
	return t.next
}

// attemptResult is one worker attempt's outcome: a fully-buffered upstream
// response (any HTTP status counts — a worker's 400 is the answer, not a
// reason to try another worker), or a transport error.
type attemptResult struct {
	res *upstreamResponse
	err error
	// worker indexes r.owners for the attempt that produced this result.
	worker int
}

// hedgedDo runs attempt against owners with tail-latency hedging and
// dead-worker retry:
//
//   - The primary attempt goes to owners[0]. If it has not answered within
//     delay and a second owner exists, a hedge attempt fires at owners[1];
//     the first response wins and the loser's context is cancelled.
//   - A transport error (worker died mid-body, connection refused) falls to
//     the next owner EXACTLY once per failed attempt — and only while no
//     other attempt is still in flight, so a hedge already racing doubles as
//     the retry.
//   - A sheddable response (429/503) does not win the race while another
//     attempt is still in flight: at saturation a busy replica answers 429
//     in microseconds, and letting that beat a slow-but-succeeding primary
//     would turn every hedge into a rejection. The shed response is held as
//     the fallback and returned only if every other attempt also fails.
//
// onOutcome is invoked once per completed attempt (hedge or primary) with
// its owner index and transport error, letting the router feed health state
// and latency observations without hedgedDo knowing about either. The
// returned counters say whether a hedge fired and whether it won.
func hedgedDo(
	ctx context.Context,
	owners []int,
	delay time.Duration,
	hedge bool,
	attempt func(ctx context.Context, owner int) (*upstreamResponse, error),
	onOutcome func(owner int, d time.Duration, err error),
) (res *upstreamResponse, hedgeFired, hedgeWon bool, retries int, err error) {
	if len(owners) == 0 {
		return nil, false, false, 0, errNoOwners
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan attemptResult, len(owners))
	inflight := 0
	nextOwner := 0
	launch := func() {
		owner := nextOwner
		nextOwner++
		inflight++
		go func() {
			start := time.Now()
			r, aerr := attempt(ctx, owner)
			onOutcome(owner, time.Since(start), aerr)
			select {
			case results <- attemptResult{res: r, err: aerr, worker: owner}:
			case <-ctx.Done():
			}
		}()
	}
	launch() // primary

	var timer *time.Timer
	var timerC <-chan time.Time
	if hedge && len(owners) > 1 {
		timer = time.NewTimer(delay)
		defer timer.Stop()
		timerC = timer.C
	}

	var lastErr error
	var held *attemptResult // sheddable response parked while others race
	for {
		select {
		case <-ctx.Done():
			return nil, hedgeFired, false, retries, ctx.Err()
		case <-timerC:
			timerC = nil // fire at most one hedge
			if nextOwner < len(owners) {
				hedgeFired = true
				launch()
			}
		case r := <-results:
			inflight--
			if r.err == nil {
				if sheddable(r.res) && inflight > 0 {
					if held == nil {
						held = &r
					}
					continue
				}
				if sheddable(r.res) && held != nil {
					r = *held // every attempt shed; relay the first rejection
				}
				// First winning response; cancelAll (deferred) aborts the
				// loser mid-flight.
				return r.res, hedgeFired, hedgeFired && r.worker > 0, retries, nil
			}
			lastErr = r.err
			if inflight > 0 {
				// The other attempt is still racing; it IS the retry.
				continue
			}
			if held != nil {
				// The racing attempt died transport; the parked shed
				// response is still a real answer.
				return held.res, hedgeFired, hedgeFired && held.worker > 0, retries, nil
			}
			if retries == 0 && nextOwner < len(owners) {
				// Dead worker: one retry on the next ring owner. A hedge
				// that already fired consumed the budget above.
				retries++
				launch()
				continue
			}
			return nil, hedgeFired, false, retries, lastErr
		}
	}
}

// sheddable reports a load-shed response — one a racing duplicate should
// outrank.
func sheddable(res *upstreamResponse) bool {
	return res != nil && (res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable)
}
