package server

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/table"
)

// ring is the consistent-hash layout the Router places tables with: each
// worker owns VirtualNodes points on a 64-bit circle, and a request key —
// the FNV-1a hash of the table's CANONICAL bytes, so two clients sending the
// same table with different JSON formatting land on the same replica — is
// served by the first distinct workers clockwise from it. Virtual nodes keep
// the load split even with a handful of workers, and consistent hashing
// keeps most placements stable when a worker joins or leaves: only the keys
// in the departed worker's arcs move.
type ring struct {
	points  []ringPoint
	workers int
}

type ringPoint struct {
	hash   uint64
	worker int
}

// newRing hashes every worker onto the circle vnodes times. The worker list
// order is the identity: point i of worker w hashes "w#i" of the worker's
// URL, so rings built from the same worker list agree across processes.
func newRing(workers []string, vnodes int) *ring {
	r := &ring{
		points:  make([]ringPoint, 0, len(workers)*vnodes),
		workers: len(workers),
	}
	for w, url := range workers {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hashBytes([]byte(fmt.Sprintf("%s#%d", url, i))),
				worker: w,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between two workers' points is vanishingly
		// rare but must still order deterministically.
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// owners returns the first n distinct workers clockwise from key — the key's
// replica set, primary first. n is clamped to the worker count.
func (r *ring) owners(key uint64, n int) []int {
	if n > r.workers {
		n = r.workers
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// tableKey parses the wire table and hashes its canonical rendering — the
// bytes table.WriteJSON emits — so ring placement is a pure function of the
// table's content, not of the client's JSON formatting. A table that does
// not parse cannot be routed; the caller turns the error into the same 400
// a worker would have produced.
func tableKey(raw []byte) (uint64, error) {
	tbl, err := table.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf, tbl); err != nil {
		return 0, err
	}
	return hashBytes(buf.Bytes()), nil
}
