package server

// Hot-reload and snapshot-boot coverage: the differential tests prove a
// server booted from a TSNP bundle speaks the exact wire bytes of the
// built-world goldens, and the load test proves a SIGHUP-style swap drops
// zero requests while responses stay byte-identical across the swap.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// One snapshot-booted twin of testService for the whole package: the bundle
// is written once from the built service and loaded once, with the same
// parallelism so per-request stats match exactly.
var (
	snapSvcOnce sync.Once
	snapSvcVal  *repro.Service
)

func snapshotService(t *testing.T) *repro.Service {
	t.Helper()
	built := testService(t)
	snapSvcOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tsnp-server-test")
		if err != nil {
			panic(err)
		}
		path := filepath.Join(dir, "world.tsnp")
		f, err := os.Create(path)
		if err != nil {
			panic(err)
		}
		if _, err := built.WriteSnapshot(f, "server_test"); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		svc, err := repro.New(context.Background(), repro.WithSnapshot(path), repro.WithParallelism(4))
		os.RemoveAll(dir)
		if err != nil {
			panic(err)
		}
		snapSvcVal = svc
	})
	return snapSvcVal
}

// maskTiming hides the only legitimately run-dependent bytes of a response.
func maskTiming(body []byte) []byte {
	return timingRe.ReplaceAll(body, []byte(`"total_ms": <wall-clock>`))
}

// TestSnapshotDifferentialWire: a server whose service was booted from a
// snapshot serves byte-identical /v1/annotate, /v1/annotate:batch and
// /v1/geocode responses to the built-world server — checked both directly
// against a built-service server in-process and against the checked-in wire
// goldens.
func TestSnapshotDifferentialWire(t *testing.T) {
	builtH := testServer(t, Config{}).Handler()
	snapH := New(Config{Service: snapshotService(t)}).Handler()
	tbl := tableJSON(t)

	cases := []struct {
		name, path string
		body       []byte
		golden     string
	}{
		{"annotate", "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tbl}), "service_annotate.golden"},
		{"annotate_geocode", "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tbl, Geocode: true}), "service_annotate_geocode.golden"},
		{"geocode", "/v1/geocode", mustMarshal(t, GeocodeRequestJSON{Table: tbl}), "service_geocode.golden"},
		{"batch", "/v1/annotate:batch", mustMarshal(t, BatchRequestJSON{Requests: []AnnotateRequestJSON{
			{Table: tbl}, {Table: tbl, Trace: true},
		}}), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bRec := post(builtH, tc.path, tc.body)
			sRec := post(snapH, tc.path, tc.body)
			if bRec.Code != http.StatusOK || sRec.Code != http.StatusOK {
				t.Fatalf("status built=%d snapshot=%d\n%s", bRec.Code, sRec.Code, sRec.Body.String())
			}
			got, want := maskTiming(sRec.Body.Bytes()), maskTiming(bRec.Body.Bytes())
			if string(got) != string(want) {
				t.Errorf("snapshot-booted response diverged from built-world response.\n--- snapshot ---\n%s\n--- built ---\n%s", got, want)
			}
			if tc.golden == "" || *update {
				return // goldens are written by their own tests
			}
			golden, err := os.ReadFile(filepath.Join("testdata", "golden", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(golden) {
				t.Errorf("snapshot-booted response diverged from %s.\n--- got ---\n%s", tc.golden, got)
			}
		})
	}

	// The snapshot-booted statz block reports its provenance.
	rec := httptest.NewRecorder()
	snapH.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statz", nil))
	var statz StatzJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if statz.Snapshot == nil || statz.Snapshot.Source != "snapshot" ||
		statz.Snapshot.Seed != 42 || statz.Snapshot.LoadMs <= 0 {
		t.Errorf("snapshot statz block = %+v", statz.Snapshot)
	}
}

// TestReloadZeroDropUnderLoad: clients hammer the v1 endpoints while the
// server hot-swaps between the built world and its snapshot twin. Every
// request must succeed and every annotate response must stay byte-identical
// to the pre-swap reference — zero drops, zero torn reads. Run under -race
// in CI, this is also the data-race proof for the swap.
func TestReloadZeroDropUnderLoad(t *testing.T) {
	built := testService(t)
	snap := snapshotService(t)
	s := testServer(t, Config{MaxInFlight: 1024})
	h := s.Handler()
	tbl := tableJSON(t)
	annBody := mustMarshal(t, AnnotateRequestJSON{Table: tbl})
	geoBody := mustMarshal(t, GeocodeRequestJSON{Table: tbl})

	ref := post(h, "/v1/annotate", annBody)
	if ref.Code != http.StatusOK {
		t.Fatalf("reference annotate status = %d", ref.Code)
	}
	wantAnn := string(maskTiming(ref.Body.Bytes()))

	stop := make(chan struct{})
	fail := make(chan string, 1)
	var wg sync.WaitGroup
	var served atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if (w+i)%3 == 0 {
					rec := post(h, "/v1/geocode", geoBody)
					if rec.Code != http.StatusOK {
						select {
						case fail <- rec.Body.String():
						default:
						}
						return
					}
				} else {
					rec := post(h, "/v1/annotate", annBody)
					if rec.Code != http.StatusOK {
						select {
						case fail <- rec.Body.String():
						default:
						}
						return
					}
					if got := string(maskTiming(rec.Body.Bytes())); got != wantAnn {
						select {
						case fail <- "annotate response changed across swap:\n" + got:
						default:
						}
						return
					}
				}
				served.Add(1)
			}
		}(w)
	}

	const swaps = 6
	for i := 0; i < swaps; i++ {
		next := built
		if i%2 == 0 {
			next = snap
		}
		if err := s.Reload(func() (*repro.Service, error) { return next, nil }); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond) // let requests land on the fresh service
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatalf("request failed during hot swaps: %s", msg)
	default:
	}
	if n := served.Load(); n < swaps {
		t.Errorf("only %d requests served across %d swaps", n, swaps)
	}
	if e := s.reloadEpoch.Load(); e != swaps {
		t.Errorf("reload_epoch = %d, want %d", e, swaps)
	}
	// The last swap (i=5, odd) installed the built service again.
	if s.Service() != built {
		t.Error("final service is not the built world")
	}
	// And a post-swap response still matches the reference.
	rec := post(h, "/v1/annotate", annBody)
	if got := string(maskTiming(rec.Body.Bytes())); got != wantAnn {
		t.Error("post-swap annotate response diverged from the reference")
	}
}

// TestReloadWindowAndFailure: /healthz flips to 503 "reloading" for the
// build window, an overlapping Reload is rejected, a failed build keeps the
// old service serving, and the epoch only counts completed swaps.
func TestReloadWindowAndFailure(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	old := s.Service()
	epoch := s.reloadEpoch.Load()

	healthz := func() (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var hj HealthJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &hj); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return rec.Code, hj.Status
	}
	if code, status := healthz(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthz at rest = %d %q", code, status)
	}

	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- s.Reload(func() (*repro.Service, error) {
			<-release
			return snapshotService(t), nil
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, status := healthz(); code == http.StatusServiceUnavailable && status == "reloading" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported reloading")
		}
		time.Sleep(time.Millisecond)
	}
	// v1 requests keep serving from the old service during the window.
	if rec := post(h, "/v1/geocode", mustMarshal(t, GeocodeRequestJSON{Table: tableJSON(t)})); rec.Code != http.StatusOK {
		t.Fatalf("geocode during reload window: %d", rec.Code)
	}
	if err := s.Reload(func() (*repro.Service, error) { return old, nil }); !errors.Is(err, ErrReloadInProgress) {
		t.Fatalf("overlapping reload error = %v, want ErrReloadInProgress", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if code, status := healthz(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthz after reload = %d %q", code, status)
	}
	if s.Service() == old {
		t.Error("reload did not swap the service")
	}
	if got := s.reloadEpoch.Load(); got != epoch+1 {
		t.Errorf("reload_epoch = %d, want %d", got, epoch+1)
	}

	// A failed build keeps the old service and does not bump the epoch.
	current := s.Service()
	buildErr := errors.New("synthetic build failure")
	if err := s.Reload(func() (*repro.Service, error) { return nil, buildErr }); !errors.Is(err, buildErr) {
		t.Fatalf("failed build error = %v, want %v", err, buildErr)
	}
	if s.Service() != current || s.reloadEpoch.Load() != epoch+1 {
		t.Error("failed reload disturbed the serving service or the epoch")
	}
}
