package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Router is the distributed serving tier's edge: it consistent-hashes each
// table (by the hash of its canonical bytes) onto a replica set of worker
// cmd/serve instances — all serving from the same snapshot, so every worker
// answers every table identically and placement is purely a cache/locality
// and load-spreading choice — and proxies the v1 surface:
//
//	POST /v1/annotate        routed by the table's key, hedged
//	POST /v1/annotate:batch  split per table, hedged fan-out, merged in order
//	POST /v1/geocode         routed by the table's key, hedged
//	POST /v1/geocode:batch   split per table, hedged fan-out, merged in order
//	GET  /healthz            ok while >= 1 worker is healthy
//	GET  /statz              merged per-worker stats + router-side counters
//
// Tail latency is defended by request hedging: when the primary owner has
// not answered within the p95-tracked delay, a second attempt fires at the
// next ring owner and the first response wins (the loser's context is
// cancelled). Because annotation is a pure function of the request and the
// shared snapshot, a hedged duplicate can never diverge — the winning
// response is byte-identical either way. Worker health is probed in the
// background with ejection and exponential-backoff readmission; admission at
// the edge reuses the same weighted semaphore the workers run.
type Router struct {
	cfg     RouterConfig
	ring    *ring
	prober  *prober
	client  *http.Client
	sem     semaphore
	tracker *latencyTracker
	start   time.Time

	served         atomic.Int64 // proxied requests answered with an upstream response
	rejected       atomic.Int64 // shed at the router's admission gate
	hedgesFired    atomic.Int64
	hedgesWon      atomic.Int64
	retries        atomic.Int64
	noWorkerErrors atomic.Int64
	upstreamErrors atomic.Int64
}

// RouterConfig configures NewRouter. Workers is required; the zero value of
// every other field selects a sensible default.
type RouterConfig struct {
	// Workers are the base URLs of the worker replicas (e.g.
	// "http://10.0.0.1:8080"), each a cmd/serve instance booted from the
	// shared snapshot. Required, at least one.
	Workers []string
	// Replication is the number of ring owners per key — the replica set a
	// hedge or retry can fall to. Default 2, clamped to len(Workers).
	Replication int
	// VirtualNodes is the number of ring points per worker. Default 64.
	VirtualNodes int
	// MaxInFlight bounds concurrently-proxied table requests at the edge
	// (weighted: a batch costs one slot per table). Default 256.
	MaxInFlight int
	// MaxBatch bounds the requests per batch call. Default 32, clamped to
	// MaxInFlight.
	MaxBatch int
	// MaxBodyBytes bounds a request body. Default 8 MiB.
	MaxBodyBytes int64
	// DisableHedging turns tail-latency hedging off; the ring still
	// provides the retry owner for dead workers.
	DisableHedging bool
	// HedgeInitial is the hedge delay served before the latency tracker
	// has enough samples for a p95. Default 100ms.
	HedgeInitial time.Duration
	// HedgeMin floors the p95-tracked hedge delay. Default 2ms.
	HedgeMin time.Duration
	// ProbeInterval, ProbeTimeout, ProbeFailThreshold and ProbeBackoffMax
	// drive the health prober: /healthz is polled every ProbeInterval
	// (default 1s), ProbeFailThreshold consecutive failures (default 3)
	// eject a worker, and an ejected worker is re-probed with exponential
	// backoff capped at ProbeBackoffMax (default 30s) until a success
	// readmits it.
	ProbeInterval      time.Duration
	ProbeTimeout       time.Duration
	ProbeFailThreshold int
	ProbeBackoffMax    time.Duration
	// Client overrides the HTTP client used for proxying and probing;
	// tests inject one. The default client keeps a generous connection
	// pool per worker and no global timeout (proxied requests inherit the
	// caller's context, probes carry their own).
	Client *http.Client
}

// errNoOwners is hedgedDo's "nothing to try" failure; the handler maps it to
// the typed 503 no_workers error.
var errNoOwners = errors.New("no healthy workers own this key")

// NewRouter builds the router and starts its health prober; Close stops it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("server: RouterConfig.Workers is empty")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > len(cfg.Workers) {
		cfg.Replication = len(cfg.Workers)
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxBatch > cfg.MaxInFlight {
		cfg.MaxBatch = cfg.MaxInFlight
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.HedgeInitial <= 0 {
		cfg.HedgeInitial = 100 * time.Millisecond
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 2 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		client = &http.Client{Transport: tr}
	}
	r := &Router{
		cfg:     cfg,
		ring:    newRing(cfg.Workers, cfg.VirtualNodes),
		client:  client,
		sem:     newSemaphore(cfg.MaxInFlight),
		tracker: newLatencyTracker(512, cfg.HedgeInitial, cfg.HedgeMin),
		start:   time.Now(),
	}
	r.prober = newProber(cfg.Workers, healthConfig{
		Interval:      cfg.ProbeInterval,
		Timeout:       cfg.ProbeTimeout,
		FailThreshold: cfg.ProbeFailThreshold,
		BackoffMax:    cfg.ProbeBackoffMax,
	}, client)
	r.prober.start()
	return r, nil
}

// Close stops the background health prober. In-flight proxied requests are
// unaffected.
func (r *Router) Close() { r.prober.stopProbing() }

// HedgeCounters reports how many hedge attempts have fired and how many won
// the race, for benchmarks and operational checks outside the /statz wire.
func (r *Router) HedgeCounters() (fired, won int64) {
	return r.hedgesFired.Load(), r.hedgesWon.Load()
}

// Handler returns the router's route table (see the Router doc).
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/annotate", func(w http.ResponseWriter, req *http.Request) {
		r.handleSingle(w, req, "/v1/annotate")
	})
	mux.HandleFunc("POST /v1/geocode", func(w http.ResponseWriter, req *http.Request) {
		r.handleSingle(w, req, "/v1/geocode")
	})
	mux.HandleFunc("POST /v1/annotate:batch", func(w http.ResponseWriter, req *http.Request) {
		r.handleBatch(w, req, "/v1/annotate")
	})
	mux.HandleFunc("POST /v1/geocode:batch", func(w http.ResponseWriter, req *http.Request) {
		r.handleBatch(w, req, "/v1/geocode")
	})
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /statz", r.handleStatz)
	return mux
}

// upstreamResponse is one fully-buffered worker response. Buffering (rather
// than streaming) is what makes hedging safe: the loser can be cancelled and
// its half-written body discarded without the client ever seeing a byte of
// it.
type upstreamResponse struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// readBody buffers the request body within the size limit, writing the typed
// error response itself on failure.
func (r *Router) readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
	body, err := io.ReadAll(req.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			r.writeError(w, http.StatusRequestEntityTooLarge, "table_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		} else {
			r.writeError(w, http.StatusBadRequest, "invalid_json", err.Error())
		}
		return nil, false
	}
	return body, true
}

// routeKey extracts the table from one single-request body and derives its
// ring key. The router validates only what routing needs — body parses,
// table parses canonically; everything else (unknown fields, bad types,
// size) is the owning worker's call, so validation semantics live in exactly
// one place.
func routeKey(body []byte) (uint64, int, string, string) {
	var wire struct {
		Table json.RawMessage `json:"table"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		return 0, http.StatusBadRequest, "invalid_json", err.Error()
	}
	if len(wire.Table) == 0 {
		return 0, http.StatusBadRequest, "invalid_request", "table: missing"
	}
	key, err := tableKey(wire.Table)
	if err != nil {
		return 0, http.StatusBadRequest, "invalid_request", "table: " + err.Error()
	}
	return key, 0, "", ""
}

// handleSingle proxies one single-table request: route by the table's key,
// hedge, relay the winning response verbatim.
func (r *Router) handleSingle(w http.ResponseWriter, req *http.Request, path string) {
	body, ok := r.readBody(w, req)
	if !ok {
		return
	}
	key, status, code, msg := routeKey(body)
	if code != "" {
		r.writeError(w, status, code, msg)
		return
	}
	if !r.admit(w, 1, key) {
		return
	}
	defer r.sem.release(1)
	res, err := r.route(req.Context(), key, path, body)
	if err != nil {
		r.writeRouteError(w, req.Context(), err)
		return
	}
	r.served.Add(1)
	r.relay(w, res)
}

// handleBatch splits a batch body into its per-table sub-requests, routes
// each to its own ring owners concurrently (each sub-request body is exactly
// a single-request body for path), and merges the responses in request
// order. The first failed sub-request — lowest index wins, for determinism —
// fails the whole batch with its index, mirroring the worker-side batch
// semantics; the remaining sub-requests are cancelled.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request, path string) {
	body, ok := r.readBody(w, req)
	if !ok {
		return
	}
	var wire struct {
		Requests []json.RawMessage `json:"requests"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		r.writeError(w, http.StatusBadRequest, "invalid_json", err.Error())
		return
	}
	if len(wire.Requests) == 0 {
		r.writeError(w, http.StatusBadRequest, "invalid_request", "requests is empty")
		return
	}
	if len(wire.Requests) > r.cfg.MaxBatch {
		r.writeError(w, http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("batch of %d requests exceeds the limit of %d", len(wire.Requests), r.cfg.MaxBatch))
		return
	}
	keys := make([]uint64, len(wire.Requests))
	for i, sub := range wire.Requests {
		key, status, code, msg := routeKey(sub)
		if code != "" {
			r.writeError(w, status, code, fmt.Sprintf("request %d: %s", i, msg))
			return
		}
		keys[i] = key
	}
	if !r.admit(w, len(wire.Requests), hashBytes(body)) {
		return
	}
	defer r.sem.release(len(wire.Requests))

	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	results := make([]*upstreamResponse, len(wire.Requests))
	errs := make([]error, len(wire.Requests))
	var wg sync.WaitGroup
	for i := range wire.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.route(ctx, keys[i], path, wire.Requests[i])
			if err == nil && res.status != http.StatusOK {
				err = &upstreamStatusError{res: res}
			}
			if err != nil {
				errs[i] = err
				cancel() // first failure aborts the rest of the fan-out
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !isCancellation(err) {
			r.writeBatchItemError(w, req.Context(), i, err)
			return
		}
	}
	for i, err := range errs {
		if err != nil {
			r.writeBatchItemError(w, req.Context(), i, err)
			return
		}
	}

	// Reassemble the batch wire shape from the sub-response bodies. The
	// encoder re-indents embedded RawMessage content, so the merged body is
	// byte-identical to a worker-side batch response over the same tables.
	merged := struct {
		Responses []json.RawMessage `json:"responses"`
	}{Responses: make([]json.RawMessage, len(results))}
	for i, res := range results {
		merged.Responses[i] = res.body
	}
	r.served.Add(int64(len(results)))
	writeJSON(w, http.StatusOK, merged)
}

// upstreamStatusError carries a worker's non-200 response through the batch
// fan-out so the batch can fail with the sub-request's own status and error
// body.
type upstreamStatusError struct{ res *upstreamResponse }

func (e *upstreamStatusError) Error() string {
	var wire ErrorJSON
	if json.Unmarshal(e.res.body, &wire) == nil && wire.Error.Message != "" {
		return wire.Error.Message
	}
	return fmt.Sprintf("worker returned status %d", e.res.status)
}

// isCancellation reports whether err is a context cancellation — either the
// caller's or the batch's own first-failure cancel.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// writeBatchItemError maps one failed sub-request onto the batch response,
// keeping the sub-request's status and code where it carried one.
func (r *Router) writeBatchItemError(w http.ResponseWriter, ctx context.Context, i int, err error) {
	var ue *upstreamStatusError
	if errors.As(err, &ue) {
		code := "upstream_error"
		var wire ErrorJSON
		if json.Unmarshal(ue.res.body, &wire) == nil && wire.Error.Code != "" {
			code = wire.Error.Code
		}
		if ue.res.retryAfter != "" {
			w.Header().Set("Retry-After", ue.res.retryAfter)
		}
		r.writeError(w, ue.res.status, code, fmt.Sprintf("request %d: %s", i, ue.Error()))
		return
	}
	r.writeRouteErrorPrefixed(w, ctx, err, fmt.Sprintf("request %d: ", i))
}

// route proxies one single-request body to the key's replica set with
// hedging and dead-worker retry, feeding health state and the latency
// tracker from the attempt outcomes.
func (r *Router) route(ctx context.Context, key uint64, path string, body []byte) (*upstreamResponse, error) {
	owners := r.healthyOwners(key)
	if len(owners) == 0 {
		r.noWorkerErrors.Add(1)
		return nil, errNoOwners
	}
	res, hedgeFired, hedgeWon, retries, err := hedgedDo(ctx, owners, r.tracker.delay(), !r.cfg.DisableHedging,
		func(ctx context.Context, owner int) (*upstreamResponse, error) {
			return r.attempt(ctx, r.prober.workers[owners[owner]], path, body)
		},
		func(owner int, d time.Duration, aerr error) {
			ws := r.prober.workers[owners[owner]]
			switch {
			case aerr == nil:
				r.tracker.observe(d)
			case !isCancellation(aerr):
				// A transport failure is health evidence; a cancellation
				// is just the race's loser being told to stand down.
				r.prober.observeFailure(ws, aerr.Error())
			}
		})
	if hedgeFired {
		r.hedgesFired.Add(1)
	}
	if hedgeWon {
		r.hedgesWon.Add(1)
	}
	r.retries.Add(int64(retries))
	if err != nil && !isCancellation(err) && !errors.Is(err, errNoOwners) {
		r.upstreamErrors.Add(1)
	}
	return res, err
}

// healthyOwners is the key's replica set with ejected workers filtered out,
// primary first.
func (r *Router) healthyOwners(key uint64) []int {
	owners := r.ring.owners(key, r.cfg.Replication)
	out := owners[:0]
	for _, o := range owners {
		if r.prober.workers[o].isHealthy() {
			out = append(out, o)
		}
	}
	return out
}

// attempt performs one proxied POST against one worker, buffering the full
// response. A transport error — including a worker dying mid-body, which
// surfaces as a read error before the buffer completes — is the caller's
// signal to retry on the next owner.
func (r *Router) attempt(ctx context.Context, ws *workerState, path string, body []byte) (*upstreamResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ws.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	ws.inflight.Add(1)
	defer ws.inflight.Add(-1)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &upstreamResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        buf,
	}, nil
}

// relay writes a buffered worker response to the client verbatim, preserving
// status, content type and the Retry-After hint of a worker-side 429 — the
// routed wire format IS the worker wire format.
func (r *Router) relay(w http.ResponseWriter, res *upstreamResponse) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// admit mirrors Server.admit at the edge: weighted, non-blocking, 429 with
// the jittered Retry-After on a full router.
func (r *Router) admit(w http.ResponseWriter, n int, key uint64) bool {
	if !r.sem.tryAcquire(n) {
		r.rejected.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(key))
		r.writeError(w, http.StatusTooManyRequests, "over_capacity",
			fmt.Sprintf("router is at its in-flight limit of %d table requests", r.cfg.MaxInFlight))
		return false
	}
	return true
}

// writeRouteError maps a routing failure onto the wire: all workers ejected
// -> typed 503 no_workers, caller cancelled -> 499, transport exhausted ->
// 502 upstream_error.
func (r *Router) writeRouteError(w http.ResponseWriter, ctx context.Context, err error) {
	r.writeRouteErrorPrefixed(w, ctx, err, "")
}

func (r *Router) writeRouteErrorPrefixed(w http.ResponseWriter, ctx context.Context, err error, prefix string) {
	switch {
	case errors.Is(err, errNoOwners):
		r.writeError(w, http.StatusServiceUnavailable, "no_workers",
			prefix+"no healthy workers: every replica owning this key is ejected")
	case isCancellation(err) && ctx.Err() != nil:
		r.writeError(w, statusClientClosedRequest, "cancelled", prefix+err.Error())
	default:
		r.writeError(w, http.StatusBadGateway, "upstream_error", prefix+err.Error())
	}
}

func (r *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorJSON{Error: ErrorBodyJSON{Code: code, Message: msg}})
}

// handleHealthz reports the tier's readiness: ok while at least one worker
// takes traffic, the typed no_workers state (503) when the whole fleet is
// ejected.
func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if r.prober.healthyCount() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, HealthJSON{Status: "no_workers"})
		return
	}
	writeJSON(w, http.StatusOK, HealthJSON{Status: "ok"})
}

// handleStatz merges the fleet's /statz into one view: per-worker snapshots
// fetched concurrently, counters summed, plus the router's own section
// (hedges fired/won, retries, per-worker inflight, ejections). A worker that
// cannot be reached contributes its router-side state only.
func (r *Router) handleStatz(w http.ResponseWriter, req *http.Request) {
	type fetched struct {
		statz StatzJSON
		ok    bool
	}
	snapshots := make([]fetched, len(r.prober.workers))
	var wg sync.WaitGroup
	for i, ws := range r.prober.workers {
		wg.Add(1)
		go func(i int, ws *workerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(req.Context(), 2*time.Second)
			defer cancel()
			sreq, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.url+"/statz", nil)
			if err != nil {
				return
			}
			resp, err := r.client.Do(sreq)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			if json.NewDecoder(resp.Body).Decode(&snapshots[i].statz) == nil {
				snapshots[i].ok = true
			}
		}(i, ws)
	}
	wg.Wait()

	out := StatzJSON{
		UptimeMs:    float64(time.Since(r.start)) / float64(time.Millisecond),
		InFlight:    r.sem.inFlight(),
		MaxInFlight: r.cfg.MaxInFlight,
	}
	rf := &RouterFull{
		WorkersTotal:   len(r.prober.workers),
		WorkersHealthy: r.prober.healthyCount(),
		Replication:    r.cfg.Replication,
		HedgeDelayMs:   float64(r.tracker.delay()) / float64(time.Millisecond),
		HedgesFired:    r.hedgesFired.Load(),
		HedgesWon:      r.hedgesWon.Load(),
		Retries:        r.retries.Load(),
		Routed:         r.served.Load(),
		RejectedAtEdge: r.rejected.Load(),
		NoWorkerErrors: r.noWorkerErrors.Load(),
		UpstreamErrors: r.upstreamErrors.Load(),
		Workers:        make([]RouterWorkerJSON, len(r.prober.workers)),
	}
	var cache CacheFull
	haveCache := false
	for i, ws := range r.prober.workers {
		healthy, ejections, lastErr := ws.snapshotStats()
		wj := RouterWorkerJSON{
			URL:       ws.url,
			Healthy:   healthy,
			InFlight:  ws.inflight.Load(),
			Ejections: ejections,
			LastError: lastErr,
		}
		if snapshots[i].ok {
			st := snapshots[i].statz
			wj.Reachable = true
			wj.Served = st.Served
			out.Served += st.Served
			out.Rejected += st.Rejected
			out.Failed += st.Failed
			if st.Search != nil {
				if out.Search == nil {
					out.Search = &SearchFull{IndexDocs: st.Search.IndexDocs, Shards: st.Search.Shards}
				}
				out.Search.Queries += st.Search.Queries
				out.Search.Batches += st.Search.Batches
				out.Search.BatchedQueries += st.Search.BatchedQueries
			}
			if st.Cache != nil {
				haveCache = true
				cache.Hits += st.Cache.Hits
				cache.Misses += st.Cache.Misses
				cache.Entries += st.Cache.Entries
				cache.Evictions += st.Cache.Evictions
				cache.Expirations += st.Cache.Expirations
			}
			if st.Geo != nil {
				if out.Geo == nil {
					out.Geo = &GeoFull{GazetteerLocations: st.Geo.GazetteerLocations}
				}
				out.Geo.Requests += st.Geo.Requests
				out.Geo.CellsResolved += st.Geo.CellsResolved
				out.Geo.Components += st.Geo.Components
				if st.Geo.LargestComponent > out.Geo.LargestComponent {
					out.Geo.LargestComponent = st.Geo.LargestComponent
				}
				if st.Geo.PeakScratchBytes > out.Geo.PeakScratchBytes {
					out.Geo.PeakScratchBytes = st.Geo.PeakScratchBytes
				}
			}
			if out.Snapshot == nil && st.Snapshot != nil {
				snap := *st.Snapshot
				out.Snapshot = &snap
			}
		}
		rf.Workers[i] = wj
	}
	if out.Search != nil && out.Search.Batches > 0 {
		out.Search.AvgBatchSize = float64(out.Search.BatchedQueries) / float64(out.Search.Batches)
	}
	if haveCache {
		if total := cache.Hits + cache.Misses; total > 0 {
			cache.HitRate = float64(cache.Hits) / float64(total)
		}
		out.Cache = &cache
	}
	out.Rejected += r.rejected.Load()
	out.Router = rf
	writeJSON(w, http.StatusOK, out)
}
