package server

// Handler-level tests of POST /v1/geocode and the annotate request's geocode
// flag, including the wire goldens that regression-lock both JSON shapes.
// Regenerate with:
//
//	go test ./internal/server -run TestGolden -update

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestGeocodeWire(t *testing.T) {
	h := testServer(t, Config{}).Handler()
	rec := post(h, "/v1/geocode", mustMarshal(t, GeocodeRequestJSON{Table: tableJSON(t)}))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", rec.Code, rec.Body.String())
	}
	var resp GeocodeResponseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Annotations) == 0 {
		t.Fatal("no geo annotations for the canonical table")
	}
	if resp.Stats.Resolved != len(resp.Annotations) {
		t.Errorf("stats.resolved = %d, want %d", resp.Stats.Resolved, len(resp.Annotations))
	}
	if resp.Stats.LocationCells < resp.Stats.Resolved {
		t.Errorf("stats inconsistent: %+v", resp.Stats)
	}
	for _, ga := range resp.Annotations {
		if ga.Location == "" || ga.Kind == "" || ga.Score <= 0 {
			t.Errorf("degenerate wire annotation %+v", ga)
		}
	}
}

func TestGeocodeValidationWire(t *testing.T) {
	s := testServer(t, Config{MaxCells: 4})
	h := s.Handler()
	cases := []struct {
		name     string
		body     []byte
		status   int
		wantCode string
	}{
		{"invalid json", []byte("{"), http.StatusBadRequest, "invalid_json"},
		{"unknown field", []byte(`{"tabel": {}}`), http.StatusBadRequest, "invalid_json"},
		{"missing table", mustMarshal(t, GeocodeRequestJSON{}), http.StatusBadRequest, "invalid_request"},
		{"bad table", []byte(`{"table": {"columns": []}}`), http.StatusBadRequest, "invalid_request"},
		{"too large", mustMarshal(t, GeocodeRequestJSON{Table: tableJSON(t)}), http.StatusRequestEntityTooLarge, "table_too_large"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(h, "/v1/geocode", c.body)
			if rec.Code != c.status {
				t.Fatalf("status = %d, want %d\n%s", rec.Code, c.status, rec.Body.String())
			}
			if e := decodeError(t, rec); e.Code != c.wantCode {
				t.Errorf("error code = %q, want %q", e.Code, c.wantCode)
			}
		})
	}
}

// TestAnnotateGeocodeWire: the geocode flag rides the annotate route and
// returns the same geo annotations as the standalone endpoint.
func TestAnnotateGeocodeWire(t *testing.T) {
	h := testServer(t, Config{}).Handler()
	tblJSON := tableJSON(t)

	plain := post(h, "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tblJSON}))
	if plain.Code != http.StatusOK {
		t.Fatalf("status = %d", plain.Code)
	}
	if bytes.Contains(plain.Body.Bytes(), []byte("geo_annotations")) {
		t.Error("geo_annotations present without the geocode flag")
	}

	rec := post(h, "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tblJSON, Geocode: true}))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", rec.Code, rec.Body.String())
	}
	var withGeo AnnotateResponseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &withGeo); err != nil {
		t.Fatal(err)
	}
	if len(withGeo.GeoAnnotations) == 0 {
		t.Fatal("geocode flag produced no geo_annotations")
	}
	gRec := post(h, "/v1/geocode", mustMarshal(t, GeocodeRequestJSON{Table: tblJSON}))
	var standalone GeocodeResponseJSON
	if err := json.Unmarshal(gRec.Body.Bytes(), &standalone); err != nil {
		t.Fatal(err)
	}
	if len(standalone.Annotations) != len(withGeo.GeoAnnotations) {
		t.Fatalf("route disagreement: %d vs %d geo annotations", len(standalone.Annotations), len(withGeo.GeoAnnotations))
	}
	for i := range standalone.Annotations {
		if standalone.Annotations[i] != withGeo.GeoAnnotations[i] {
			t.Errorf("annotation %d differs across routes: %+v vs %+v", i, standalone.Annotations[i], withGeo.GeoAnnotations[i])
		}
	}
}

// goldenCompare locks one response body byte-for-byte (timing masked).
func goldenCompare(t *testing.T, name string, body []byte) {
	t.Helper()
	got := timingRe.ReplaceAll(body, []byte(`"total_ms": <wall-clock>`))
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, regenerate with -update and review the diff.", got, want)
	}
}

// TestGoldenGeocodeWire locks the /v1/geocode JSON response byte-for-byte.
func TestGoldenGeocodeWire(t *testing.T) {
	h := testServer(t, Config{}).Handler()
	rec := post(h, "/v1/geocode", mustMarshal(t, GeocodeRequestJSON{Table: tableJSON(t)}))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", rec.Code, rec.Body.String())
	}
	goldenCompare(t, "service_geocode.golden", rec.Body.Bytes())
}

// TestGoldenAnnotateGeocodeWire locks the annotate response with the geocode
// flag set, so the geo_annotations block cannot drift unreviewed.
func TestGoldenAnnotateGeocodeWire(t *testing.T) {
	h := testServer(t, Config{}).Handler()
	rec := post(h, "/v1/annotate", mustMarshal(t, AnnotateRequestJSON{Table: tableJSON(t), Geocode: true}))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", rec.Code, rec.Body.String())
	}
	goldenCompare(t, "service_annotate_geocode.golden", rec.Body.Bytes())
}

// TestGeocodeBatchWire: each /v1/geocode:batch entry is identical to a
// standalone /v1/geocode response over the same table, in request order.
func TestGeocodeBatchWire(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	tbl := tableJSON(t)
	single := post(h, "/v1/geocode", mustMarshal(t, GeocodeRequestJSON{Table: tbl}))
	if single.Code != http.StatusOK {
		t.Fatalf("geocode status = %d", single.Code)
	}
	var want GeocodeResponseJSON
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	rec := post(h, "/v1/geocode:batch", mustMarshal(t, GeocodeBatchRequestJSON{
		Requests: []GeocodeRequestJSON{{Table: tbl}, {Table: tbl}},
	}))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d\n%s", rec.Code, rec.Body.String())
	}
	var batch GeocodeBatchResponseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Responses) != 2 {
		t.Fatalf("got %d responses, want 2", len(batch.Responses))
	}
	for i, resp := range batch.Responses {
		resp.Timing = want.Timing // wall-clock masked
		if !reflect.DeepEqual(resp, want) {
			t.Errorf("batch entry %d diverges from the standalone geocode:\n %+v\n %+v", i, resp, want)
		}
	}
	// The geo counters advance once per batched table.
	if got := s.geoRequests.Load(); got != 3 {
		t.Errorf("geoRequests = %d, want 3 (one single + two batched)", got)
	}
}

// TestGeocodeBatchValidationWire: batch-shape errors and indexed per-request
// errors, all before any work starts.
func TestGeocodeBatchValidationWire(t *testing.T) {
	h := testServer(t, Config{MaxBatch: 2}).Handler()
	for _, tc := range []struct {
		name string
		body []byte
		code string
		frag string
	}{
		{"empty batch", []byte(`{"requests": []}`), "invalid_request", "empty"},
		{"oversized batch", mustMarshal(t, GeocodeBatchRequestJSON{
			Requests: []GeocodeRequestJSON{{Table: tableJSON(t)}, {Table: tableJSON(t)}, {Table: tableJSON(t)}},
		}), "invalid_request", "exceeds"},
		{"unknown field", []byte(`{"requests": [{"tabel": {}}]}`), "invalid_json", "tabel"},
		{"missing table is indexed", []byte(`{"requests": [{"table": {"name": "t", "columns": [{"header": "A", "type": "text"}], "rows": []}}, {}]}`),
			"invalid_request", "request 1:"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(h, "/v1/geocode:batch", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400\n%s", rec.Code, rec.Body.String())
			}
			e := decodeError(t, rec)
			if e.Code != tc.code {
				t.Errorf("code = %q, want %q", e.Code, tc.code)
			}
			if !bytes.Contains([]byte(e.Message), []byte(tc.frag)) {
				t.Errorf("message %q missing %q", e.Message, tc.frag)
			}
		})
	}
}

// TestGeocodeBatchAdmission: a geocode batch costs one admission slot per
// table, like the annotate batch, and sheds with the jittered Retry-After.
func TestGeocodeBatchAdmission(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 2, MaxBatch: 8})
	h := s.Handler()
	s.sem <- struct{}{}
	body := mustMarshal(t, GeocodeBatchRequestJSON{
		Requests: []GeocodeRequestJSON{{Table: tableJSON(t)}, {Table: tableJSON(t)}},
	})
	rec := post(h, "/v1/geocode:batch", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != "over_capacity" {
		t.Errorf("code = %q, want over_capacity", e.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if ra != "1" && ra != "2" && ra != "3" {
		t.Errorf("Retry-After = %q, want a deterministic 1..3s hint", ra)
	}
	if rec2 := post(h, "/v1/geocode:batch", body); rec2.Header().Get("Retry-After") != ra {
		t.Error("Retry-After differs for an identical request")
	}
	<-s.sem
	if rec3 := post(h, "/v1/geocode:batch", body); rec3.Code != http.StatusOK {
		t.Fatalf("status with free slots = %d, want 200\n%s", rec3.Code, rec3.Body.String())
	}
	if got := len(s.sem); got != 0 {
		t.Errorf("in flight = %d after the batch finished, want 0", got)
	}
}

// TestStatzGeo: the /statz geo block reports the frozen gazetteer and the
// request counters.
func TestStatzGeo(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	if rec := post(h, "/v1/geocode", mustMarshal(t, GeocodeRequestJSON{Table: tableJSON(t)})); rec.Code != http.StatusOK {
		t.Fatalf("geocode status = %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statz", nil))
	var statz StatzJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if statz.Geo == nil {
		t.Fatal("statz missing geo block")
	}
	if statz.Geo.GazetteerLocations != s.Service().Geo().Len() {
		t.Errorf("gazetteer_locations = %d, want %d", statz.Geo.GazetteerLocations, s.Service().Geo().Len())
	}
	if statz.Geo.Requests < 1 || statz.Geo.CellsResolved < 1 {
		t.Errorf("geo counters not advancing: %+v", statz.Geo)
	}
	if statz.Geo.Components < 1 || statz.Geo.LargestComponent < 1 || statz.Geo.PeakScratchBytes < 1 {
		t.Errorf("decomposition counters not advancing: %+v", statz.Geo)
	}
}

// TestStatzGeoBatch: geo annotations served through /v1/annotate:batch
// advance the cells_resolved counter like the other two routes.
func TestStatzGeoBatch(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	body := mustMarshal(t, BatchRequestJSON{Requests: []AnnotateRequestJSON{
		{Table: tableJSON(t), Geocode: true},
		{Table: tableJSON(t)},
	}})
	rec := post(h, "/v1/annotate:batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d\n%s", rec.Code, rec.Body.String())
	}
	var batch BatchResponseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Responses) != 2 || len(batch.Responses[0].GeoAnnotations) == 0 {
		t.Fatalf("batch geocode flag produced no geo annotations: %+v", batch.Responses)
	}
	if len(batch.Responses[1].GeoAnnotations) != 0 {
		t.Errorf("geo annotations on a request without the flag: %+v", batch.Responses[1].GeoAnnotations)
	}
	if got, want := s.geoResolved.Load(), int64(len(batch.Responses[0].GeoAnnotations)); got != want {
		t.Errorf("geoResolved counter = %d, want %d", got, want)
	}
}
