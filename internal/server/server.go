// Package server is the HTTP/JSON serving layer over repro.Service — the
// "annotation as a service" surface cmd/serve exposes. It owns the v1 wire
// format (api.go), request validation with typed error responses, and
// admission control: a bounded in-flight semaphore sheds load with 429
// instead of queueing unboundedly, the standard protection for a service
// whose per-request cost is dominated by backend round-trips.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro"
)

// Config configures a Server. The zero value of every limit selects a
// sensible default.
type Config struct {
	// Service handles the annotation requests. Required.
	Service *repro.Service
	// MaxInFlight bounds concurrently-served table annotations; a batch
	// call is weighted by its request count, so the bound holds for real
	// annotation work, not HTTP calls. Work beyond the bound is rejected
	// with 429. Default 64.
	MaxInFlight int
	// MaxCells rejects tables larger than this many cells (rows ×
	// columns) with 413. Default 100000.
	MaxCells int
	// MaxBatch bounds the requests per /v1/annotate:batch call.
	// Default 32, clamped to MaxInFlight (a larger batch could never be
	// admitted).
	MaxBatch int
	// MaxBodyBytes bounds a request body. Default 8 MiB.
	MaxBodyBytes int64
}

// Server routes the v1 API over one repro.Service. The service reference is
// swappable at runtime (Reload): each request loads it exactly once, so a
// swap between requests is invisible and a request in flight finishes
// against the service it started with — zero dropped requests.
type Server struct {
	svc   atomic.Pointer[repro.Service]
	cfg   Config
	sem   semaphore
	start time.Time

	// reloading is true while a Reload is building/loading the replacement
	// service; /healthz reports not-ready for that window so a balancer
	// drains politely ahead of the swap. reloadEpoch counts completed
	// swaps, surfaced on /statz.
	reloading   atomic.Bool
	reloadEpoch atomic.Int64

	served   atomic.Int64
	rejected atomic.Int64
	failed   atomic.Int64

	geoRequests atomic.Int64 // POST /v1/geocode calls served
	geoResolved atomic.Int64 // cells resolved, geocode + annotate paths

	geoComponents  atomic.Int64 // disambiguation components resolved, cumulative
	geoLargestComp atomic.Int64 // largest component seen, in nodes
	geoPeakScratch atomic.Int64 // pooled per-component scratch high-water mark, bytes
}

// raiseMax lifts the atomic to v when v is larger, keeping the running
// maximum under concurrent writers.
func raiseMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// recordGeoStats folds one geocode response's decomposition statistics into
// the server's cumulative geo counters.
func (s *Server) recordGeoStats(st repro.GeoStats) {
	s.geoResolved.Add(int64(st.Resolved))
	s.geoComponents.Add(int64(st.Components))
	raiseMax(&s.geoLargestComp, int64(st.LargestComponent))
	raiseMax(&s.geoPeakScratch, st.PeakScratchBytes)
}

// New builds a Server; it panics when cfg.Service is nil (a wiring bug, not
// a runtime condition).
func New(cfg Config) *Server {
	if cfg.Service == nil {
		panic("server: Config.Service is nil")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 100000
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxBatch > cfg.MaxInFlight {
		cfg.MaxBatch = cfg.MaxInFlight
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		cfg:   cfg,
		sem:   newSemaphore(cfg.MaxInFlight),
		start: time.Now(),
	}
	s.svc.Store(cfg.Service)
	return s
}

// Service returns the service currently serving requests.
func (s *Server) Service() *repro.Service { return s.svc.Load() }

// ErrReloadInProgress rejects a Reload that overlaps another: the swap is
// serialised so two concurrent reloads cannot race the epoch.
var ErrReloadInProgress = errors.New("server: a reload is already in progress")

// Reload replaces the serving service with the one build returns, atomically
// and between requests: in-flight requests finish against the service they
// started with, requests admitted after the swap see only the new one, and
// no request is dropped either way. The old service's shared query cache (if
// any) is reset on swap, so verdicts computed against the retired world
// cannot leak into responses via a still-referenced cache. While build runs,
// /healthz reports not-ready and the v1 endpoints keep serving from the old
// service. Only one reload runs at a time; an overlapping call fails fast
// with ErrReloadInProgress. On build error the old service keeps serving.
func (s *Server) Reload(build func() (*repro.Service, error)) error {
	if !s.reloading.CompareAndSwap(false, true) {
		return ErrReloadInProgress
	}
	defer s.reloading.Store(false)
	next, err := build()
	if err != nil {
		return err
	}
	old := s.svc.Swap(next)
	s.reloadEpoch.Add(1)
	if old != nil && old != next {
		if c := old.Lab().Cache; c != nil {
			c.Reset()
		}
	}
	return nil
}

// Handler returns the route table:
//
//	POST /v1/annotate        annotate one table
//	POST /v1/annotate:batch  annotate several tables over the worker pool
//	POST /v1/geocode         geocode + disambiguate one table's Location columns
//	POST /v1/geocode:batch   geocode several tables over the worker pool
//	GET  /healthz            liveness (the service is built and serving)
//	GET  /statz              serving, cache and geo statistics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/annotate", s.handleAnnotate)
	mux.HandleFunc("POST /v1/annotate:batch", s.handleBatch)
	mux.HandleFunc("POST /v1/geocode", s.handleGeocode)
	mux.HandleFunc("POST /v1/geocode:batch", s.handleGeocodeBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request whose client cancelled mid-flight; the write usually goes nowhere,
// but the code keeps access logs honest.
const statusClientClosedRequest = 499

// admit tries to reserve n slots of the bounded in-flight semaphore —
// weighted admission, so a batch of 32 tables costs 32 slots, keeping
// MaxInFlight a bound on real annotation work. Acquisition never blocks: a
// full server sheds the request immediately with 429 and a Retry-After hint
// jittered by the request hash (see retryAfterSeconds), keeping latency flat
// instead of queueing into timeout territory. On success the caller must
// release(n).
func (s *Server) admit(w http.ResponseWriter, n int, key uint64) bool {
	if !s.sem.tryAcquire(n) {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(key))
		s.writeError(w, http.StatusTooManyRequests, "over_capacity",
			fmt.Sprintf("server is at its in-flight limit of %d table annotations", s.cfg.MaxInFlight))
		return false
	}
	return true
}

func (s *Server) release(n int) { s.sem.release(n) }

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var wire AnnotateRequestJSON
	if !s.decodeBody(w, r, &wire) {
		return
	}
	req, status, code, msg := s.prepare(&wire)
	if req == nil {
		s.writeError(w, status, code, msg)
		return
	}
	if !s.admit(w, 1, hashBytes(wire.Table)) {
		return
	}
	defer s.release(1)
	resp, err := s.Service().Annotate(r.Context(), req)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	s.served.Add(1)
	s.geoResolved.Add(int64(len(resp.GeoAnnotations)))
	writeJSON(w, http.StatusOK, toWire(resp))
}

// handleGeocode serves the standalone geocode+disambiguate endpoint. A
// geocode request costs no search-engine queries, but it still occupies one
// admission slot: gazetteer lookups and graph propagation over a large table
// are real work.
func (s *Server) handleGeocode(w http.ResponseWriter, r *http.Request) {
	var wire GeocodeRequestJSON
	if !s.decodeBody(w, r, &wire) {
		return
	}
	req, err := wire.toRequest()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	if status, code, msg, bad := s.tooLarge(req.Table); bad {
		s.writeError(w, status, code, msg)
		return
	}
	if !s.admit(w, 1, hashBytes(wire.Table)) {
		return
	}
	defer s.release(1)
	resp, err := s.Service().Geocode(r.Context(), req)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	s.geoRequests.Add(1)
	s.recordGeoStats(resp.Stats)
	writeJSON(w, http.StatusOK, geocodeToWire(resp))
}

// handleGeocodeBatch serves POST /v1/geocode:batch with annotate's batch
// semantics: every table validates before any work starts, responses come
// back in request order, and admission is weighted one slot per table — the
// uniform surface the router proxies.
func (s *Server) handleGeocodeBatch(w http.ResponseWriter, r *http.Request) {
	var wire GeocodeBatchRequestJSON
	if !s.decodeBody(w, r, &wire) {
		return
	}
	if len(wire.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, "invalid_request", "requests is empty")
		return
	}
	if len(wire.Requests) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("batch of %d requests exceeds the limit of %d", len(wire.Requests), s.cfg.MaxBatch))
		return
	}
	reqs := make([]*repro.GeocodeRequest, len(wire.Requests))
	tables := make([][]byte, len(wire.Requests))
	for i := range wire.Requests {
		req, err := wire.Requests[i].toRequest()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid_request", fmt.Sprintf("request %d: %s", i, err))
			return
		}
		if status, code, msg, bad := s.tooLarge(req.Table); bad {
			s.writeError(w, status, code, fmt.Sprintf("request %d: %s", i, msg))
			return
		}
		reqs[i] = req
		tables[i] = wire.Requests[i].Table
	}
	if !s.admit(w, len(reqs), hashBytes(tables...)) {
		return
	}
	defer s.release(len(reqs))
	resps, err := s.Service().GeocodeBatch(r.Context(), reqs)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	out := GeocodeBatchResponseJSON{Responses: make([]GeocodeResponseJSON, len(resps))}
	for i, resp := range resps {
		out.Responses[i] = geocodeToWire(resp)
		s.recordGeoStats(resp.Stats)
	}
	s.geoRequests.Add(int64(len(resps)))
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var wire BatchRequestJSON
	if !s.decodeBody(w, r, &wire) {
		return
	}
	if len(wire.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, "invalid_request", "requests is empty")
		return
	}
	if len(wire.Requests) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("batch of %d requests exceeds the limit of %d", len(wire.Requests), s.cfg.MaxBatch))
		return
	}
	reqs := make([]*repro.AnnotateRequest, len(wire.Requests))
	tables := make([][]byte, len(wire.Requests))
	for i := range wire.Requests {
		req, status, code, msg := s.prepare(&wire.Requests[i])
		if req == nil {
			s.writeError(w, status, code, fmt.Sprintf("request %d: %s", i, msg))
			return
		}
		reqs[i] = req
		tables[i] = wire.Requests[i].Table
	}
	if !s.admit(w, len(reqs), hashBytes(tables...)) {
		return
	}
	defer s.release(len(reqs))
	resps, err := s.Service().AnnotateBatch(r.Context(), reqs)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	out := BatchResponseJSON{Responses: make([]AnnotateResponseJSON, len(resps))}
	for i, resp := range resps {
		out.Responses[i] = toWire(resp)
		s.geoResolved.Add(int64(len(resp.GeoAnnotations)))
	}
	s.served.Add(int64(len(resps)))
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is the readiness signal: "ok" while serving steadily, 503
// "reloading" while a Reload is building its replacement service — a
// balancer can drain the replica ahead of the swap. The v1 endpoints keep
// serving (from the old service) for the whole window either way.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.reloading.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthJSON{Status: "reloading"})
		return
	}
	writeJSON(w, http.StatusOK, HealthJSON{Status: "ok"})
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	svc := s.Service()
	out := StatzJSON{
		UptimeMs:    float64(time.Since(s.start)) / float64(time.Millisecond),
		InFlight:    len(s.sem),
		MaxInFlight: s.cfg.MaxInFlight,
		Served:      s.served.Load(),
		Rejected:    s.rejected.Load(),
		Failed:      s.failed.Load(),
	}
	out.Snapshot = &SnapshotFull{
		Source:      "built",
		Seed:        svc.Seed(),
		Scale:       svc.Scale(),
		Classifier:  svc.ClassifierName(),
		ReloadEpoch: s.reloadEpoch.Load(),
	}
	if info := svc.Snapshot(); info != nil {
		out.Snapshot.Source = "snapshot"
		out.Snapshot.LoadMs = float64(info.LoadDuration) / float64(time.Millisecond)
	}
	es := svc.Engine().Stats()
	out.Search = &SearchFull{
		IndexDocs:      svc.Engine().IndexSize(),
		Queries:        es.Queries,
		Batches:        es.Batches,
		BatchedQueries: es.BatchedQueries,
		Shards:         es.Shards,
		ShardQueries:   es.ShardQueries,
	}
	if es.Batches > 0 {
		out.Search.AvgBatchSize = float64(es.BatchedQueries) / float64(es.Batches)
	}
	if c := svc.Lab().Cache; c != nil {
		st := c.Stats()
		out.Cache = &CacheFull{
			Hits:        st.Hits,
			Misses:      st.Misses,
			Entries:     st.Entries,
			HitRate:     st.HitRate(),
			Evictions:   st.Evictions,
			Expirations: st.Expirations,
		}
	}
	out.Geo = &GeoFull{
		GazetteerLocations: svc.Geo().Len(),
		Requests:           s.geoRequests.Load(),
		CellsResolved:      s.geoResolved.Load(),
		Components:         s.geoComponents.Load(),
		LargestComponent:   s.geoLargestComp.Load(),
		PeakScratchBytes:   s.geoPeakScratch.Load(),
	}
	writeJSON(w, http.StatusOK, out)
}

// decodeBody strictly decodes the JSON body into dst, writing the typed
// error response itself when decoding fails.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "table_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, "invalid_json", err.Error())
		return false
	}
	return true
}

// tooLarge enforces the server-side table size limit, shared by every route
// that accepts a table so their admission rules cannot drift. bad is true
// with the error triple filled when the table exceeds MaxCells.
func (s *Server) tooLarge(t *repro.Table) (status int, code, msg string, bad bool) {
	if cells := t.NumRows() * t.NumCols(); cells > s.cfg.MaxCells {
		return http.StatusRequestEntityTooLarge, "table_too_large",
			fmt.Sprintf("table has %d cells, limit is %d", cells, s.cfg.MaxCells), true
	}
	return 0, "", "", false
}

// prepare converts one wire request, enforcing the server-side table size
// limit. On failure it returns a nil request plus the error triple.
func (s *Server) prepare(wire *AnnotateRequestJSON) (req *repro.AnnotateRequest, status int, code, msg string) {
	req, err := wire.toRequest()
	if err != nil {
		return nil, http.StatusBadRequest, "invalid_request", err.Error()
	}
	if status, code, msg, bad := s.tooLarge(req.Table); bad {
		return nil, status, code, msg
	}
	return req, 0, "", ""
}

// writeServiceError maps a Service error to the wire: *RequestError -> 400,
// context cancellation -> 499, anything else -> 500.
func (s *Server) writeServiceError(w http.ResponseWriter, err error) {
	var reqErr *repro.RequestError
	switch {
	case errors.As(err, &reqErr):
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, statusClientClosedRequest, "cancelled", err.Error())
	default:
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	if status >= http.StatusInternalServerError || status == statusClientClosedRequest {
		s.failed.Add(1)
	}
	writeJSON(w, status, ErrorJSON{Error: ErrorBodyJSON{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode errors after WriteHeader can only come from a dead client;
	// nothing useful can be written at that point.
	_ = enc.Encode(v)
}
