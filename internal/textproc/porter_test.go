package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestStemKnownPairs checks the stemmer against vocabulary pairs from
// Porter's published sample vocabulary.
func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		"museum":         "museum",
		"museums":        "museum",
		"restaurant":     "restaur",
		"restaurants":    "restaur",
		"dining":         "dine",
		"university":     "univers",
		"universities":   "univers",
		"theatres":       "theatr",
		"singer":         "singer",
		"singers":        "singer",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "at", "is", "be"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// TestStemAlphabetic verifies that stemming a lowercase alphabetic word
// yields a lowercase alphabetic, non-empty stem. (The Porter stemmer is
// deliberately NOT idempotent — e.g. "happyful"-like words go y->i on a
// second pass — so idempotence is not asserted.)
func TestStemAlphabetic(t *testing.T) {
	f := func(seed uint32) bool {
		w := randomWord(seed)
		s := Stem(w)
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			if s[i] < 'a' || s[i] > 'z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestStemNeverGrows verifies that stemming never lengthens a word beyond the
// +1 allowed by the 1b "cvc -> add e" rule.
func TestStemNeverGrows(t *testing.T) {
	f := func(seed uint32) bool {
		w := randomWord(seed)
		return len(Stem(w)) <= len(w)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// randomWord deterministically derives a pseudo-random lowercase word of
// length 3..12 from a seed.
func randomWord(seed uint32) string {
	n := 3 + int(seed%10)
	var sb strings.Builder
	state := seed
	for i := 0; i < n; i++ {
		state = state*1664525 + 1013904223
		sb.WriteByte(byte('a' + state%26))
	}
	return sb.String()
}
