package textproc

import "sort"

// Features maps a (stemmed) token to its normalized frequency in a snippet:
// the number of occurrences divided by the snippet length in tokens, exactly
// the feature representation of §5.2.1.
type Features map[string]float64

// Extract computes the feature map for a snippet.
func Extract(snippet string) Features {
	toks := NormalizeTokens(snippet)
	if len(toks) == 0 {
		return Features{}
	}
	f := make(Features, len(toks))
	inv := 1.0 / float64(len(toks))
	for _, t := range toks {
		f[t] += inv
	}
	return f
}

// Extractor computes snippet feature maps while reusing its token and map
// storage across calls — the steady-state classification hot path of the
// annotation pipeline extracts features from ten snippets per cell query,
// and per-snippet allocations dominate its cost. The returned Features is
// valid only until the next Extract call, and callers that retain feature
// maps (training corpora, cluster decisions) must use the plain Extract.
// An Extractor is not safe for concurrent use; pool one per worker.
type Extractor struct {
	toks []string
	f    Features
}

// Extract returns the same features as the package-level Extract, built in
// the extractor's reused storage.
func (e *Extractor) Extract(snippet string) Features {
	if e.f == nil {
		e.f = make(Features, 16)
	} else {
		clear(e.f)
	}
	e.toks = appendNormalized(e.toks[:0], snippet)
	if len(e.toks) == 0 {
		return e.f
	}
	inv := 1.0 / float64(len(e.toks))
	for _, t := range e.toks {
		e.f[t] += inv
	}
	return e.f
}

// Terms returns the feature terms in sorted order, for deterministic
// iteration in training and tests.
func (f Features) Terms() []string {
	terms := make([]string, 0, len(f))
	for t := range f {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Dot computes the inner product of two sparse feature vectors.
func (f Features) Dot(g Features) float64 {
	a, b := f, g
	if len(b) < len(a) {
		a, b = b, a
	}
	var sum float64
	for t, v := range a {
		if w, ok := b[t]; ok {
			sum += v * w
		}
	}
	return sum
}

// Norm2 returns the squared Euclidean norm of the feature vector.
func (f Features) Norm2() float64 {
	var sum float64
	for _, v := range f {
		sum += v * v
	}
	return sum
}
