package textproc

import (
	"strings"
	"sync"
	"sync/atomic"
)

// stemCache memoizes Stem results. Stemming is pure, every layer of the
// system stems the same bounded vocabulary over and over (indexing, query
// normalization, snippet feature extraction), and a Porter pass costs an
// order of magnitude more than a cache hit, so the cache is shared globally.
// It is bounded: once stemCacheCap distinct words are stored, new words are
// still stemmed but no longer cached, so adversarial input (fuzzing, random
// corpora) cannot grow it without bound. Keys are cloned because tokens are
// substrings of snippet- or document-sized strings that must not be pinned.
var (
	stemCache    sync.Map // word -> stem, both string
	stemCacheLen atomic.Int64
)

const stemCacheCap = 1 << 16

// Stem applies the Porter stemming algorithm (Porter, 1980) to a lower-case
// word and returns the stem. Words of length <= 2 are returned unchanged, as
// in the reference implementation. The paper stems snippet tokens with this
// algorithm (§5.2.1, citing van Rijsbergen, Robertson & Porter).
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	if v, ok := stemCache.Load(word); ok {
		return v.(string)
	}
	s := &stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	out := string(s.b)
	if stemCacheLen.Load() < stemCacheCap {
		if _, loaded := stemCache.LoadOrStore(strings.Clone(word), out); !loaded {
			stemCacheLen.Add(1)
		}
	}
	return out
}

// stemmer holds the word being stemmed. All operations follow the original
// 1980 paper; b is the current buffer, j marks the end of the stem during a
// rule application.
type stemmer struct {
	b []byte
	j int
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// 'y' is a consonant when it follows a vowel position or starts the word.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m for the stem b[0..j]: the number of VC sequences in the
// form [C](VC)^m[V].
func (s *stemmer) measure() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.isConsonant(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.isConsonant(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.isConsonant(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleC reports whether b[i-1..i] is a double consonant.
func (s *stemmer) doubleC(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.isConsonant(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant where the final
// consonant is not w, x or y (the *o condition).
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the buffer ends with suf and, if so, sets j to
// the offset just before the suffix.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b) - len(suf)
	if n < 0 {
		return false
	}
	if string(s.b[n:]) != suf {
		return false
	}
	s.j = n - 1
	return true
}

// setTo replaces the current suffix (everything after j) with rep.
func (s *stemmer) setTo(rep string) {
	s.b = append(s.b[:s.j+1], rep...)
}

// replaceIfM replaces the suffix with rep when the measure of the stem is
// positive.
func (s *stemmer) replaceIfM(suf, rep string) bool {
	if s.hasSuffix(suf) {
		if s.measure() > 0 {
			s.setTo(rep)
		}
		return true
	}
	return false
}

func (s *stemmer) step1a() {
	if s.b[len(s.b)-1] != 's' {
		return
	}
	switch {
	case s.hasSuffix("sses"):
		s.setTo("ss")
	case s.hasSuffix("ies"):
		s.setTo("i")
	case s.hasSuffix("ss"):
		// keep as is
	case s.hasSuffix("s"):
		s.setTo("")
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure() > 0 {
			s.setTo("ee")
		}
		return
	}
	applied := false
	if s.hasSuffix("ed") {
		if s.vowelInStem() {
			s.setTo("")
			applied = true
		}
	} else if s.hasSuffix("ing") {
		if s.vowelInStem() {
			s.setTo("")
			applied = true
		}
	}
	if !applied {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.setTo("ate")
	case s.hasSuffix("bl"):
		s.setTo("ble")
	case s.hasSuffix("iz"):
		s.setTo("ize")
	case s.doubleC(len(s.b) - 1):
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	default:
		s.j = len(s.b) - 1
		if s.measure() == 1 && s.cvc(len(s.b)-1) {
			s.b = append(s.b, 'e')
		}
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.vowelInStem() {
		s.b[len(s.b)-1] = 'i'
	}
}

func (s *stemmer) step2() {
	if len(s.b) < 3 {
		return
	}
	switch s.b[len(s.b)-2] {
	case 'a':
		if s.replaceIfM("ational", "ate") {
			return
		}
		s.replaceIfM("tional", "tion")
	case 'c':
		if s.replaceIfM("enci", "ence") {
			return
		}
		s.replaceIfM("anci", "ance")
	case 'e':
		s.replaceIfM("izer", "ize")
	case 'l':
		if s.replaceIfM("abli", "able") {
			return
		}
		if s.replaceIfM("alli", "al") {
			return
		}
		if s.replaceIfM("entli", "ent") {
			return
		}
		if s.replaceIfM("eli", "e") {
			return
		}
		s.replaceIfM("ousli", "ous")
	case 'o':
		if s.replaceIfM("ization", "ize") {
			return
		}
		if s.replaceIfM("ation", "ate") {
			return
		}
		s.replaceIfM("ator", "ate")
	case 's':
		if s.replaceIfM("alism", "al") {
			return
		}
		if s.replaceIfM("iveness", "ive") {
			return
		}
		if s.replaceIfM("fulness", "ful") {
			return
		}
		s.replaceIfM("ousness", "ous")
	case 't':
		if s.replaceIfM("aliti", "al") {
			return
		}
		if s.replaceIfM("iviti", "ive") {
			return
		}
		s.replaceIfM("biliti", "ble")
	}
}

func (s *stemmer) step3() {
	switch s.b[len(s.b)-1] {
	case 'e':
		if s.replaceIfM("icate", "ic") {
			return
		}
		if s.replaceIfM("ative", "") {
			return
		}
		s.replaceIfM("alize", "al")
	case 'i':
		s.replaceIfM("iciti", "ic")
	case 'l':
		if s.replaceIfM("ical", "ic") {
			return
		}
		s.replaceIfM("ful", "")
	case 's':
		s.replaceIfM("ness", "")
	}
}

func (s *stemmer) step4() {
	if len(s.b) < 3 {
		return
	}
	var matched bool
	switch s.b[len(s.b)-2] {
	case 'a':
		matched = s.hasSuffix("al")
	case 'c':
		matched = s.hasSuffix("ance") || s.hasSuffix("ence")
	case 'e':
		matched = s.hasSuffix("er")
	case 'i':
		matched = s.hasSuffix("ic")
	case 'l':
		matched = s.hasSuffix("able") || s.hasSuffix("ible")
	case 'n':
		matched = s.hasSuffix("ant") || s.hasSuffix("ement") ||
			s.hasSuffix("ment") || s.hasSuffix("ent")
	case 'o':
		if s.hasSuffix("ion") && s.j >= 0 && (s.b[s.j] == 's' || s.b[s.j] == 't') {
			matched = true
		} else {
			matched = s.hasSuffix("ou")
		}
	case 's':
		matched = s.hasSuffix("ism")
	case 't':
		matched = s.hasSuffix("ate") || s.hasSuffix("iti")
	case 'u':
		matched = s.hasSuffix("ous")
	case 'v':
		matched = s.hasSuffix("ive")
	case 'z':
		matched = s.hasSuffix("ize")
	}
	if matched && s.measure() > 1 {
		s.setTo("")
	}
}

func (s *stemmer) step5a() {
	if s.b[len(s.b)-1] != 'e' {
		return
	}
	s.j = len(s.b) - 2
	m := s.measure()
	if m > 1 || (m == 1 && !s.cvc(len(s.b)-2)) {
		s.b = s.b[:len(s.b)-1]
	}
}

func (s *stemmer) step5b() {
	n := len(s.b)
	if n < 2 || s.b[n-1] != 'l' {
		return
	}
	s.j = n - 1
	if s.doubleC(n-1) && s.measure() > 1 {
		s.b = s.b[:n-1]
	}
}
