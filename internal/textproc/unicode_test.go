package textproc

import (
	"strings"
	"testing"
)

// NFD spellings are written with explicit \u escapes so the source encoding
// can't silently change which normal form a literal is in.
const (
	nfdMusee    = "Musée"        // "Musée" as e + combining acute
	nfdHello    = "héllo wörld" // the tokenizer fuzz-corpus seed, decomposed
	nfdCedilla  = "çedilla"
	nfdIstanbul = "İstanbul" // Turkish dotted capital I, decomposed
	nfdZurich   = "Zürich"
	nfcMusee    = "Musée"
)

// The NFC/NFD cases are promoted from the tokenizer fuzz corpus hints: the
// corpus seeds "héllo wörld çedilla İstanbul" through the tokenizer, and
// decomposed spellings of exactly those strings tokenize differently
// (combining marks are not letters), which is why ingestion composes first.
func TestComposeNFC(t *testing.T) {
	cases := []struct{ in, want string }{
		{nfdMusee, nfcMusee},
		{nfdHello, "héllo wörld"},
		{nfdCedilla, "çedilla"},
		{nfdIstanbul, "İstanbul"},
		{nfdZurich, "Zürich"},
		{"Å", "Å"},
		{"ñ", "ñ"},
		{"already composed: " + nfcMusee, "already composed: " + nfcMusee},
		{"plain ascii", "plain ascii"},
		{"", ""},
		// Unknown base+mark pairs pass through untouched.
		{"x́", "x́"},
		// A mark with no preceding base letter survives.
		{"́abc", "́abc"},
		// Consecutive marks: the first composes, the second has no
		// (precomposed, mark) entry and stays combining.
		{"é̈", "é̈"},
	}
	for _, c := range cases {
		if got := ComposeNFC(c.in); got != c.want {
			t.Errorf("ComposeNFC(%q) = %q, want %q", c.in, got, c.want)
		}
		// Idempotent.
		if got := ComposeNFC(ComposeNFC(c.in)); got != c.want {
			t.Errorf("ComposeNFC not idempotent on %q", c.in)
		}
	}
}

func TestDecomposeNFD(t *testing.T) {
	cases := []struct{ in, want string }{
		{nfcMusee, nfdMusee},
		{"İstanbul", nfdIstanbul},
		{"Zürich", nfdZurich},
		{"ñ", "ñ"},
		{"ascii", "ascii"},
		{"", ""},
		// Non-decomposable folds stay put (ø has no combining-mark form).
		{"øre", "øre"},
	}
	for _, c := range cases {
		if got := DecomposeNFD(c.in); got != c.want {
			t.Errorf("DecomposeNFD(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestComposeDecomposeInverse checks the two transforms are exact inverses
// over the whole supported repertoire.
func TestComposeDecomposeInverse(t *testing.T) {
	var all strings.Builder
	for pre := range latinDecomp {
		all.WriteRune(pre)
		all.WriteByte(' ')
	}
	s := all.String()
	if got := ComposeNFC(DecomposeNFD(s)); got != s {
		t.Errorf("ComposeNFC(DecomposeNFD(s)) != s over supported repertoire:\n%q\n%q", s, got)
	}
}

func TestFoldDiacritics(t *testing.T) {
	cases := []struct{ in, want string }{
		{nfcMusee, "Musee"},
		{nfdMusee, "Musee"}, // NFD folds identically
		{"Café Zürich", "Cafe Zurich"},
		{"İstanbul", "Istanbul"},
		{"Søren", "Soren"},
		{"Œuvre", "OEuvre"},
		{"straße", "strasse"},
		{"Łódź", "Lodz"},
		{"plain", "plain"},
		{"", ""},
	}
	for _, c := range cases {
		if got := FoldDiacritics(c.in); got != c.want {
			t.Errorf("FoldDiacritics(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestTokenizeNFCvsNFD documents the tokenizer behavior that motivates
// composing at ingestion: the NFC spelling tokenizes as one word, the NFD
// spelling splits at the combining mark. table.Normalize composes cell text
// so the pipeline only ever sees the left column.
func TestTokenizeNFCvsNFD(t *testing.T) {
	nfc := Tokenize(nfcMusee)
	if len(nfc) != 1 || nfc[0] != "musée" {
		t.Fatalf("Tokenize(NFC Musée) = %v", nfc)
	}
	nfd := Tokenize(nfdMusee)
	if len(nfd) == 1 {
		t.Fatalf("Tokenize(NFD Musée) unexpectedly stayed whole: %v (composing at ingestion may no longer be needed)", nfd)
	}
	composed := Tokenize(ComposeNFC(nfdMusee))
	if len(composed) != 1 || composed[0] != nfc[0] {
		t.Fatalf("Tokenize(ComposeNFC(NFD)) = %v, want %v", composed, nfc)
	}
}
