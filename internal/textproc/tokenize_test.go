package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"Musée du Louvre", []string{"musée", "du", "louvre"}},
		{"the museum's 3 galleries", []string{"the", "museum", "3", "galleries"}},
		{"foo-bar baz_qux", []string{"foo", "bar", "baz", "qux"}},
		{"  spaces   everywhere  ", []string{"spaces", "everywhere"}},
		{"A.B.C.", []string{"a", "b", "c"}},
		{"'quoted'", []string{"quoted"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsNumericToken(t *testing.T) {
	yes := []string{"3", "1234", "3.14", "1,000", "555-1234"}
	no := []string{"", "abc", "a1", "...", "--", "3a"}
	for _, s := range yes {
		if !IsNumericToken(s) {
			t.Errorf("IsNumericToken(%q) = false, want true", s)
		}
	}
	for _, s := range no {
		if IsNumericToken(s) {
			t.Errorf("IsNumericToken(%q) = true, want false", s)
		}
	}
}

func TestNormalizeTokensDropsStopwordsAndNumbers(t *testing.T) {
	got := NormalizeTokens("The 12 museums of the city are wonderful")
	for _, tok := range got {
		if IsStopword(tok) {
			t.Errorf("stopword %q survived normalization", tok)
		}
		if IsNumericToken(tok) {
			t.Errorf("numeric token %q survived normalization", tok)
		}
	}
	want := []string{"museum", "citi", "wonder"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NormalizeTokens = %v, want %v", got, want)
	}
}

func TestExtractNormalizedFrequency(t *testing.T) {
	f := Extract("museum museum gallery")
	if len(f) != 2 {
		t.Fatalf("want 2 features, got %v", f)
	}
	if f["museum"] != 2.0/3.0 {
		t.Errorf("museum freq = %v, want 2/3", f["museum"])
	}
	if f["galleri"] != 1.0/3.0 {
		t.Errorf("galleri freq = %v, want 1/3", f["galleri"])
	}
}

// TestExtractSumsToOne: the normalized frequencies of a snippet always sum to
// 1 when the snippet has at least one content token.
func TestExtractSumsToOne(t *testing.T) {
	f := func(seed uint32) bool {
		words := make([]string, 1+seed%8)
		for i := range words {
			words[i] = randomWord(seed + uint32(i)*7919)
		}
		feats := Extract(join(words))
		if len(feats) == 0 {
			return true // all tokens were stopwords; acceptable
		}
		var sum float64
		for _, v := range feats {
			sum += v
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFeatureDotSymmetric(t *testing.T) {
	a := Extract("museum gallery art exhibition")
	b := Extract("art museum paintings collection")
	if d1, d2 := a.Dot(b), b.Dot(a); d1 != d2 {
		t.Errorf("Dot not symmetric: %v vs %v", d1, d2)
	}
	if a.Dot(b) <= 0 {
		t.Errorf("overlapping snippets should have positive dot product")
	}
	empty := Features{}
	if a.Dot(empty) != 0 {
		t.Errorf("dot with empty vector should be 0")
	}
}

func TestTermsSorted(t *testing.T) {
	f := Extract("zebra museum apple gallery")
	terms := f.Terms()
	for i := 1; i < len(terms); i++ {
		if terms[i-1] >= terms[i] {
			t.Errorf("Terms not sorted: %v", terms)
		}
	}
}

func join(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
