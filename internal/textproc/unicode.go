package textproc

import "strings"

// Unicode normalization for ingested cell text. Real-world tables arrive in
// a mix of precomposed (NFC) and decomposed (NFD) encodings — macOS file
// paths, copy-pasted PDF text and some HTML generators emit combining marks
// — and the tokenizer treats a combining mark as a non-letter, so "Musée" in
// NFD tokenizes as ["muse", "e"] while the NFC form yields ["musée"]. The
// ingestion layer therefore composes text to NFC before it reaches the
// pipeline (table.Normalize), and the gazetteer folds diacritics entirely
// when building name keys so "Cédar Lane" geocodes like "Cedar Lane".
//
// The tables below are not the full Unicode composition data: they cover the
// Latin-script letters with a single combining mark that occur in place and
// entity names (Latin-1 Supplement and the common Latin Extended-A forms).
// Unknown base+mark pairs are passed through untouched, which keeps both
// transforms idempotent.

// latinDecomp maps each supported precomposed rune to its base letter and
// combining mark. composeNFC and DecomposeNFD are both derived from it, so
// the two transforms are exact inverses on the supported set.
var latinDecomp = map[rune][2]rune{
	'À': {'A', 0x300}, 'Á': {'A', 0x301}, 'Â': {'A', 0x302}, 'Ã': {'A', 0x303}, 'Ä': {'A', 0x308}, 'Å': {'A', 0x30A},
	'à': {'a', 0x300}, 'á': {'a', 0x301}, 'â': {'a', 0x302}, 'ã': {'a', 0x303}, 'ä': {'a', 0x308}, 'å': {'a', 0x30A},
	'Ç': {'C', 0x327}, 'ç': {'c', 0x327},
	'È': {'E', 0x300}, 'É': {'E', 0x301}, 'Ê': {'E', 0x302}, 'Ë': {'E', 0x308},
	'è': {'e', 0x300}, 'é': {'e', 0x301}, 'ê': {'e', 0x302}, 'ë': {'e', 0x308},
	'Ì': {'I', 0x300}, 'Í': {'I', 0x301}, 'Î': {'I', 0x302}, 'Ï': {'I', 0x308},
	'ì': {'i', 0x300}, 'í': {'i', 0x301}, 'î': {'i', 0x302}, 'ï': {'i', 0x308},
	'Ñ': {'N', 0x303}, 'ñ': {'n', 0x303},
	'Ò': {'O', 0x300}, 'Ó': {'O', 0x301}, 'Ô': {'O', 0x302}, 'Õ': {'O', 0x303}, 'Ö': {'O', 0x308},
	'ò': {'o', 0x300}, 'ó': {'o', 0x301}, 'ô': {'o', 0x302}, 'õ': {'o', 0x303}, 'ö': {'o', 0x308},
	'Ù': {'U', 0x300}, 'Ú': {'U', 0x301}, 'Û': {'U', 0x302}, 'Ü': {'U', 0x308},
	'ù': {'u', 0x300}, 'ú': {'u', 0x301}, 'û': {'u', 0x302}, 'ü': {'u', 0x308},
	'Ý': {'Y', 0x301}, 'ý': {'y', 0x301}, 'ÿ': {'y', 0x308},
	'Ā': {'A', 0x304}, 'ā': {'a', 0x304}, 'Ă': {'A', 0x306}, 'ă': {'a', 0x306}, 'Ą': {'A', 0x328}, 'ą': {'a', 0x328},
	'Ć': {'C', 0x301}, 'ć': {'c', 0x301}, 'Č': {'C', 0x30C}, 'č': {'c', 0x30C},
	'Ē': {'E', 0x304}, 'ē': {'e', 0x304}, 'Ė': {'E', 0x307}, 'ė': {'e', 0x307}, 'Ę': {'E', 0x328}, 'ę': {'e', 0x328}, 'Ě': {'E', 0x30C}, 'ě': {'e', 0x30C},
	'Ğ': {'G', 0x306}, 'ğ': {'g', 0x306},
	'Ī': {'I', 0x304}, 'ī': {'i', 0x304}, 'İ': {'I', 0x307},
	'Ń': {'N', 0x301}, 'ń': {'n', 0x301}, 'Ň': {'N', 0x30C}, 'ň': {'n', 0x30C},
	'Ō': {'O', 0x304}, 'ō': {'o', 0x304}, 'Ő': {'O', 0x30B}, 'ő': {'o', 0x30B},
	'Ŕ': {'R', 0x301}, 'ŕ': {'r', 0x301}, 'Ř': {'R', 0x30C}, 'ř': {'r', 0x30C},
	'Ś': {'S', 0x301}, 'ś': {'s', 0x301}, 'Š': {'S', 0x30C}, 'š': {'s', 0x30C},
	'Ť': {'T', 0x30C}, 'ť': {'t', 0x30C},
	'Ū': {'U', 0x304}, 'ū': {'u', 0x304}, 'Ů': {'U', 0x30A}, 'ů': {'u', 0x30A}, 'Ű': {'U', 0x30B}, 'ű': {'u', 0x30B},
	'Ź': {'Z', 0x301}, 'ź': {'z', 0x301}, 'Ż': {'Z', 0x307}, 'ż': {'z', 0x307}, 'Ž': {'Z', 0x30C}, 'ž': {'z', 0x30C},
}

// latinCompose is the inverse of latinDecomp: (base, mark) → precomposed.
var latinCompose = func() map[[2]rune]rune {
	m := make(map[[2]rune]rune, len(latinDecomp))
	for c, d := range latinDecomp {
		m[d] = c
	}
	return m
}()

// extraFolds are diacritic folds with no single-mark decomposition.
var extraFolds = map[rune]string{
	'Ø': "O", 'ø': "o",
	'Æ': "AE", 'æ': "ae",
	'Œ': "OE", 'œ': "oe",
	'Đ': "D", 'đ': "d",
	'Ł': "L", 'ł': "l",
	'ß': "ss",
}

// isCombiningMark reports whether r is in the combining-diacritics block.
func isCombiningMark(r rune) bool { return r >= 0x300 && r <= 0x36F }

// ComposeNFC composes base-letter + combining-mark pairs into their
// precomposed (NFC) form for the supported Latin repertoire; anything else
// passes through unchanged. The transform is idempotent, and for supported
// text ComposeNFC(DecomposeNFD(s)) == s.
func ComposeNFC(s string) string {
	// Fast path: no combining marks, nothing to do.
	if !strings.ContainsFunc(s, isCombiningMark) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	prev := rune(-1)
	for _, r := range s {
		if prev >= 0 {
			if c, ok := latinCompose[[2]rune{prev, r}]; ok {
				prev = c
				continue
			}
			b.WriteRune(prev)
		}
		prev = r
	}
	if prev >= 0 {
		b.WriteRune(prev)
	}
	return b.String()
}

// DecomposeNFD decomposes the supported precomposed Latin letters into base
// letter + combining mark (NFD); anything else passes through unchanged.
// The scenario matrix's messy encoders use it to manufacture the decomposed
// inputs that ComposeNFC must undo.
func DecomposeNFD(s string) string {
	var b strings.Builder
	b.Grow(len(s) + len(s)/4)
	for _, r := range s {
		if d, ok := latinDecomp[r]; ok {
			b.WriteRune(d[0])
			b.WriteRune(d[1])
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// FoldDiacritics strips diacritics: precomposed letters map to their base
// letter, bare combining marks are dropped (so NFC and NFD spellings fold
// identically), and a handful of non-decomposable letters (ø, æ, ß, …) map
// to their ASCII conventions. Used by the gazetteer's name keys so accented
// spellings of a place name all geocode to the same locations.
func FoldDiacritics(s string) string {
	changed := strings.ContainsFunc(s, func(r rune) bool {
		_, pre := latinDecomp[r]
		_, ex := extraFolds[r]
		return pre || ex || isCombiningMark(r)
	})
	if !changed {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case isCombiningMark(r):
		case extraFolds[r] != "":
			b.WriteString(extraFolds[r])
		default:
			if d, ok := latinDecomp[r]; ok {
				r = d[0]
			}
			b.WriteRune(r)
		}
	}
	return b.String()
}
