package textproc

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzNormalizeTokens checks the full normalization pipeline on arbitrary
// text: no panics, every output token is a non-empty run of letters/digits,
// and — the invariant the search indexer builds on — normalizing a text word
// by word yields exactly the tokens of normalizing it whole (whitespace
// always separates tokens, so the two factorizations must agree).
func FuzzNormalizeTokens(f *testing.F) {
	for _, seed := range []string{
		"The Louvre museum's famous paintings",
		"rock-n-roll jazz-club 2,000 3.5 12",
		"l'atelier 'quoted' ''",
		"state-of-the-art museums in paris",
		"ALL CAPS And MiXeD",
		"tabs\tand\nnewlines\r\nhere",
		"héllo wörld çedilla İstanbul",
		"…punctuation—galore!? (parens) [brackets]",
		"",
		"'''",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tokens := NormalizeTokens(s)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatalf("empty token from %q", s)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q from %q contains non-alphanumeric %q", tok, s, r)
				}
			}
		}

		words := strings.Fields(s)
		perWord, wordStem := NormalizeWords(words)
		if len(perWord) != len(tokens) {
			t.Fatalf("per-word normalization of %q yields %d tokens, whole-text %d\nper-word: %q\nwhole: %q",
				s, len(perWord), len(tokens), perWord, tokens)
		}
		for i := range tokens {
			if perWord[i] != tokens[i] {
				t.Fatalf("token %d of %q differs: per-word %q, whole %q", i, s, perWord[i], tokens[i])
			}
		}
		if len(wordStem) != len(words) {
			t.Fatalf("NormalizeWords(%q): %d stems for %d words", s, len(wordStem), len(words))
		}
		for i, w := range words {
			norm := NormalizeTokens(w)
			want := ""
			if len(norm) == 1 {
				want = norm[0]
			}
			if wordStem[i] != want {
				t.Fatalf("wordStem[%d] of %q = %q, want %q", i, s, wordStem[i], want)
			}
		}
	})
}

// FuzzTokenize checks the tokenizer alone: tokens are non-empty, lower-case
// (no rune changed by ToLower survives), and contain no apostrophes.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{"Museum's", "o'clock 'tis", "a-b'c-d", "12'34"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatalf("empty token from %q", s)
			}
			if strings.ContainsRune(tok, '\'') {
				t.Fatalf("token %q from %q contains apostrophe", tok, s)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q from %q not lower-cased", tok, s)
			}
		}
	})
}
