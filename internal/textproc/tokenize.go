// Package textproc provides the text-processing primitives used throughout the
// reproduction: tokenization, stopword removal, Porter stemming and the
// normalized-term-frequency feature extraction described in §5.2.1 of
// Quercini & Reynaud (EDBT 2013).
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases s and splits it into word tokens. A token is a maximal
// run of letters or digits; apostrophes inside a word are dropped together
// with the suffix they introduce ("museum's" -> "museum"), matching the
// behaviour of the snippet pipeline in the paper, which tokenizes against the
// English dictionary.
func Tokenize(s string) []string {
	return appendTokens(make([]string, 0, len(s)/5+1), s)
}

// appendTokens is Tokenize's allocation-free core: it appends the tokens of s
// to dst. Because whitespace always separates tokens, tokenizing a text word
// by word yields exactly the tokens of tokenizing it whole — the indexer's
// per-word pipeline relies on that equivalence (and a fuzz test enforces it).
func appendTokens(dst []string, s string) []string {
	s = strings.ToLower(s)
	tokens := dst
	start := -1
	flush := func(end int) {
		if start >= 0 {
			tok := s[start:end]
			tok = strings.TrimLeft(tok, "'")
			if i := strings.IndexByte(tok, '\''); i >= 0 {
				tok = tok[:i]
			}
			if tok != "" {
				tokens = append(tokens, tok)
			}
			start = -1
		}
	}
	for i, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'':
			if start < 0 {
				start = i
			}
		default:
			flush(i)
		}
	}
	flush(len(s))
	return tokens
}

// IsNumericToken reports whether tok consists solely of digits and common
// numeric punctuation; such tokens carry no lexical signal for the classifier
// and are discarded during feature extraction.
func IsNumericToken(tok string) bool {
	if tok == "" {
		return false
	}
	digits := 0
	for _, r := range tok {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' || r == ',' || r == '-':
		default:
			return false
		}
	}
	return digits > 0
}

// NormalizeTokens applies the full paper pipeline to raw text: tokenize,
// drop stopwords and purely numeric tokens, and stem the remainder with the
// Porter algorithm.
func NormalizeTokens(s string) []string {
	return appendNormalized(make([]string, 0, len(s)/5+1), s)
}

// appendNormalized is NormalizeTokens's allocation-free core: it appends the
// normalized tokens of s to dst, reusing dst's capacity for the raw token
// pass too (normalization only ever shrinks the token list, so the filtered
// tokens overwrite the raw ones in place).
func appendNormalized(dst []string, s string) []string {
	raw := appendTokens(dst, s)
	out := raw[:len(dst)]
	for _, tok := range raw[len(dst):] {
		if IsStopword(tok) || IsNumericToken(tok) {
			continue
		}
		out = append(out, Stem(tok))
	}
	return out
}

// NormalizeWords applies the NormalizeTokens pipeline to a pre-split word
// sequence in one pass. It returns the concatenated normalized tokens —
// identical to NormalizeTokens(strings.Join(words, " ")) — plus, per input
// word, its single normalized stem when the word yields exactly one content
// token and "" otherwise (the per-word view the indexer's snippet and phrase
// structures are built from). One scratch buffer is reused across words, so
// indexing a document costs two allocations instead of two per word.
func NormalizeWords(words []string) (tokens []string, wordStem []string) {
	tokens = make([]string, 0, len(words))
	wordStem = make([]string, len(words))
	var scratch [8]string
	for i, w := range words {
		raw := appendTokens(scratch[:0], w)
		n := 0
		for _, tok := range raw {
			if IsStopword(tok) || IsNumericToken(tok) {
				continue
			}
			tokens = append(tokens, Stem(tok))
			n++
		}
		if n == 1 {
			wordStem[i] = tokens[len(tokens)-1]
		}
	}
	return tokens, wordStem
}
