// Package textproc provides the text-processing primitives used throughout the
// reproduction: tokenization, stopword removal, Porter stemming and the
// normalized-term-frequency feature extraction described in §5.2.1 of
// Quercini & Reynaud (EDBT 2013).
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases s and splits it into word tokens. A token is a maximal
// run of letters or digits; apostrophes inside a word are dropped together
// with the suffix they introduce ("museum's" -> "museum"), matching the
// behaviour of the snippet pipeline in the paper, which tokenizes against the
// English dictionary.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	tokens := make([]string, 0, len(s)/5+1)
	start := -1
	flush := func(end int) {
		if start >= 0 {
			tok := s[start:end]
			tok = strings.TrimLeft(tok, "'")
			if i := strings.IndexByte(tok, '\''); i >= 0 {
				tok = tok[:i]
			}
			if tok != "" {
				tokens = append(tokens, tok)
			}
			start = -1
		}
	}
	for i, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'':
			if start < 0 {
				start = i
			}
		default:
			flush(i)
		}
	}
	flush(len(s))
	return tokens
}

// IsNumericToken reports whether tok consists solely of digits and common
// numeric punctuation; such tokens carry no lexical signal for the classifier
// and are discarded during feature extraction.
func IsNumericToken(tok string) bool {
	if tok == "" {
		return false
	}
	digits := 0
	for _, r := range tok {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' || r == ',' || r == '-':
		default:
			return false
		}
	}
	return digits > 0
}

// NormalizeTokens applies the full paper pipeline to raw text: tokenize,
// drop stopwords and purely numeric tokens, and stem the remainder with the
// Porter algorithm.
func NormalizeTokens(s string) []string {
	raw := Tokenize(s)
	out := raw[:0]
	for _, tok := range raw {
		if IsStopword(tok) || IsNumericToken(tok) {
			continue
		}
		out = append(out, Stem(tok))
	}
	return out
}
