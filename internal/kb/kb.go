// Package kb implements the knowledge-base substrate standing in for DBpedia
// in §5.2.1: entities organised in a category network (a containment graph
// like Figure 6), traversal queries playing the role of the iterated SPARQL
// subcategory queries, the paper's name-filter heuristic for pruning noisy
// categories, and the training/test-set builder that queries the search
// engine with "entity name + type name" and labels the returned snippets.
package kb

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/gazetteer"
	"repro/internal/textproc"
	"repro/internal/world"
)

// CatID identifies a category. The zero CatID is invalid.
type CatID int

// category is one node of the category network.
type category struct {
	name     string
	children []CatID
	entities []int // indexes into kb.entities
}

// entity is a knowledge-base individual.
type entity struct {
	name string
	typ  world.Type
}

// KB is the in-memory knowledge base.
type KB struct {
	cats     []category // index 0 unused
	byName   map[string]CatID
	entities []entity
	roots    map[world.Type]CatID
}

// RootCategory returns the DBpedia-style root category name of a type
// ("Museums", "Simpsons episodes", ...). It is the category the paper's user
// manually selects (the only manual step, §6.4).
func RootCategory(t world.Type) string {
	n := world.TypeName(t)
	// Pluralise with initial capital.
	var plural string
	switch {
	case strings.HasSuffix(n, "y"):
		plural = n[:len(n)-1] + "ies"
	case strings.HasSuffix(n, "s"), strings.HasSuffix(n, "e") && false:
		plural = n + "es"
	default:
		plural = n + "s"
	}
	return strings.ToUpper(plural[:1]) + plural[1:]
}

// FromWorld builds the knowledge base for a universe: every InKB entity is
// filed under "{Type}s in {Country}" (or a nationality bucket for people and
// cinema), reachable from the root through intermediate by-country /
// by-continent categories. Each root also grows a noisy branch in the spirit
// of Figure 6 — "Museum people" (whose name contains the type word and thus
// survives the heuristic) holding a few person entities, with "Curators"
// below it (pruned by the heuristic).
func FromWorld(w *world.World, seed int64) *KB {
	rng := rand.New(rand.NewSource(seed))
	kb := &KB{
		cats:   make([]category, 1),
		byName: map[string]CatID{},
		roots:  map[world.Type]CatID{},
	}
	countries := []string{"USA", "France", "United Kingdom", "Italy", "Japan", "Australia"}

	for _, t := range world.AllTypes {
		rootName := RootCategory(t)
		root := kb.addCat(rootName)
		kb.roots[t] = root
		byCountry := kb.addCat(rootName + " by country")
		byCont := kb.addCat(rootName + " by continent")
		kb.link(root, byCountry)
		kb.link(root, byCont)
		kb.link(byCont, kb.addCat(rootName+" in Europe"))

		countryCats := map[string]CatID{}
		for _, c := range countries {
			cc := kb.addCat(rootName + " in " + c)
			countryCats[c] = cc
			kb.link(byCountry, cc)
			// A deeper thematic subcategory below each country
			// node, mirroring "History museums in France".
			kb.link(cc, kb.addCat("Notable "+strings.ToLower(rootName)+" in "+c))
		}

		// Noisy branch: a category whose name contains the type word
		// (survives the heuristic) populated with person entities,
		// plus a child whose name does not (pruned).
		tn := world.TypeName(t)
		people := kb.addCat(strings.ToUpper(tn[:1]) + tn[1:] + " people")
		kb.link(root, people)
		curators := kb.addCat(noisyChildName(t))
		kb.link(people, curators)

		for _, e := range w.KBEntities(t) {
			eid := len(kb.entities)
			kb.entities = append(kb.entities, entity{name: e.Name, typ: t})
			country := "USA"
			if e.City != gazetteer.NoLocation {
				chain := w.Gaz.Containers(e.City)
				country = w.Gaz.Name(chain[len(chain)-1])
			} else {
				country = countries[rng.Intn(len(countries))]
			}
			cc, ok := countryCats[country]
			if !ok {
				cc = countryCats["USA"]
			}
			kb.cats[cc].entities = append(kb.cats[cc].entities, eid)
		}

		// Seed the noisy categories with a few person names that do
		// NOT have type t; if sampled into the training set they
		// become label noise, as in the real pipeline.
		for i := 0; i < 4; i++ {
			name := pickPerson(rng)
			eid := len(kb.entities)
			kb.entities = append(kb.entities, entity{name: name, typ: ""})
			kb.cats[people].entities = append(kb.cats[people].entities, eid)
			eid2 := len(kb.entities)
			kb.entities = append(kb.entities, entity{name: pickPerson(rng), typ: ""})
			kb.cats[curators].entities = append(kb.cats[curators].entities, eid2)
		}
	}
	return kb
}

// noisyChildName returns a noise category name free of the type word, so the
// heuristic prunes it (the "Curators" of Figure 6).
func noisyChildName(t world.Type) string {
	if t == world.Museum {
		return "Curators"
	}
	return "Founders and staff #" + string(t[0]) + string(t[len(t)-1])
}

func pickPerson(rng *rand.Rand) string {
	first := []string{"Walter", "Irene", "Oscar", "Nadia", "Felix", "Greta"}
	last := []string{"Kovacs", "Lindqvist", "Marchetti", "Okafor", "Petrov", "Svensson"}
	return first[rng.Intn(len(first))] + " " + last[rng.Intn(len(last))]
}

func (kb *KB) addCat(name string) CatID {
	if id, ok := kb.byName[name]; ok {
		return id
	}
	id := CatID(len(kb.cats))
	kb.cats = append(kb.cats, category{name: name})
	kb.byName[name] = id
	return id
}

func (kb *KB) link(parent, child CatID) {
	kb.cats[parent].children = append(kb.cats[parent].children, child)
}

// Root returns the root category of a type.
func (kb *KB) Root(t world.Type) (CatID, bool) {
	id, ok := kb.roots[t]
	return id, ok
}

// CategoryByName looks a category up by exact name.
func (kb *KB) CategoryByName(name string) (CatID, bool) {
	id, ok := kb.byName[name]
	return id, ok
}

// CategoryName returns the display name of a category.
func (kb *KB) CategoryName(c CatID) string { return kb.cats[c].name }

// Subcategories returns the direct children of a category, playing the role
// of one SPARQL containment query.
func (kb *KB) Subcategories(c CatID) []CatID {
	return append([]CatID(nil), kb.cats[c].children...)
}

// Descendants returns the category and every transitive subcategory in BFS
// order — the paper's "visit the category network ... by iterating a SPARQL
// query on each subcategory" (§5.2.1).
func (kb *KB) Descendants(root CatID) []CatID {
	seen := map[CatID]bool{root: true}
	queue := []CatID{root}
	var out []CatID
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		out = append(out, c)
		for _, ch := range kb.cats[c].children {
			if !seen[ch] {
				seen[ch] = true
				queue = append(queue, ch)
			}
		}
	}
	return out
}

// EntitiesIn returns the names of the entities directly filed in a category,
// sorted.
func (kb *KB) EntitiesIn(c CatID) []string {
	out := make([]string, 0, len(kb.cats[c].entities))
	for _, eid := range kb.cats[c].entities {
		out = append(out, kb.entities[eid].name)
	}
	sort.Strings(out)
	return out
}

// FilterByTypeName applies the paper's heuristic: keep only the categories
// whose names contain the type name. Matching is stem-based so that the
// plural category names DBpedia actually uses survive ("Universities in
// France" contains the type "university" after stemming, which plain
// substring matching would miss). "Museums in France" survives; "Curators"
// is pruned; "Museum people" survives despite holding person entities — the
// residual noise the heuristic accepts.
func (kb *KB) FilterByTypeName(cats []CatID, typeName string) []CatID {
	needles := textproc.NormalizeTokens(typeName)
	var out []CatID
	for _, c := range cats {
		haystack := textproc.NormalizeTokens(kb.cats[c].name)
		if containsAllTokens(haystack, needles) {
			out = append(out, c)
		}
	}
	return out
}

// containsAllTokens reports whether every needle occurs in haystack.
func containsAllTokens(haystack, needles []string) bool {
	if len(needles) == 0 {
		return false
	}
	for _, n := range needles {
		found := false
		for _, h := range haystack {
			if h == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// PositiveEntities implements the P-set construction of §5.2.1 for a type:
// walk the network from the root, apply the name heuristic, gather the
// entities of the surviving categories and sample up to max of them.
func (kb *KB) PositiveEntities(t world.Type, max int, rng *rand.Rand) []string {
	root, ok := kb.roots[t]
	if !ok {
		return nil
	}
	cats := kb.FilterByTypeName(kb.Descendants(root), world.TypeName(t))
	var names []string
	seen := map[string]bool{}
	for _, c := range cats {
		for _, n := range kb.EntitiesIn(c) {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	if max > 0 && len(names) > max {
		names = names[:max]
	}
	return names
}

// Catalogue flattens the knowledge base into a name -> type lookup table
// (lower-cased names), the pre-compiled catalogue a Limaye-style annotator
// consumes. Entities filed only in noisy categories have no type and are
// omitted.
func (kb *KB) Catalogue() map[string]string {
	out := make(map[string]string, len(kb.entities))
	for _, e := range kb.entities {
		if e.typ != "" {
			out[strings.ToLower(e.name)] = string(e.typ)
		}
	}
	return out
}

// EntityCount returns the number of entities in the knowledge base.
func (kb *KB) EntityCount() int { return len(kb.entities) }

// CategoryCount returns the number of categories.
func (kb *KB) CategoryCount() int { return len(kb.cats) - 1 }
