package kb

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/search"
	"repro/internal/webgen"
	"repro/internal/world"
)

func testKB(t *testing.T) (*world.World, *KB) {
	t.Helper()
	w := world.Generate(world.Config{Seed: 11, KBPerType: 30})
	return w, FromWorld(w, 11)
}

func TestRootCategoryNames(t *testing.T) {
	cases := map[world.Type]string{
		world.Restaurant:      "Restaurants",
		world.Museum:          "Museums",
		world.University:      "Universities",
		world.SimpsonsEpisode: "Simpsons episodes",
	}
	for typ, want := range cases {
		if got := RootCategory(typ); got != want {
			t.Errorf("RootCategory(%s) = %q, want %q", typ, got, want)
		}
	}
}

func TestNetworkStructure(t *testing.T) {
	_, kb := testKB(t)
	root, ok := kb.Root(world.Museum)
	if !ok {
		t.Fatal("no Museums root")
	}
	if kb.CategoryName(root) != "Museums" {
		t.Errorf("root name = %q", kb.CategoryName(root))
	}
	descendants := kb.Descendants(root)
	if len(descendants) < 10 {
		t.Errorf("Museums has %d descendants, want >= 10", len(descendants))
	}
	names := map[string]bool{}
	for _, c := range descendants {
		names[kb.CategoryName(c)] = true
	}
	for _, want := range []string{"Museums by country", "Museums in France", "Museum people", "Curators"} {
		if !names[want] {
			t.Errorf("category %q missing from Museums subtree", want)
		}
	}
}

func TestHeuristicFiltersNoisyCategories(t *testing.T) {
	_, kb := testKB(t)
	root, _ := kb.Root(world.Museum)
	kept := kb.FilterByTypeName(kb.Descendants(root), "museum")
	for _, c := range kept {
		if !strings.Contains(strings.ToLower(kb.CategoryName(c)), "museum") {
			t.Errorf("filter kept %q", kb.CategoryName(c))
		}
	}
	// "Curators" must be pruned; "Museum people" survives (Figure 6).
	keptNames := map[string]bool{}
	for _, c := range kept {
		keptNames[kb.CategoryName(c)] = true
	}
	if keptNames["Curators"] {
		t.Error("Curators survived the heuristic")
	}
	if !keptNames["Museum people"] {
		t.Error("Museum people should survive the heuristic (contains the type word)")
	}
}

func TestPositiveEntitiesMostlyCorrectType(t *testing.T) {
	w, kb := testKB(t)
	rng := rand.New(rand.NewSource(1))
	names := kb.PositiveEntities(world.Restaurant, 0, rng)
	if len(names) < 20 {
		t.Fatalf("only %d positive restaurants", len(names))
	}
	inWorld := 0
	for _, n := range names {
		for _, e := range w.ByName(n) {
			if e.Type == world.Restaurant && e.InKB {
				inWorld++
				break
			}
		}
	}
	frac := float64(inWorld) / float64(len(names))
	if frac < 0.85 {
		t.Errorf("only %.2f of positive entities are true restaurants (noise too high)", frac)
	}
	if frac == 1.0 {
		t.Logf("note: no noise sampled this time (heuristic noise is probabilistic)")
	}
}

func TestPositiveEntitiesCap(t *testing.T) {
	_, kb := testKB(t)
	rng := rand.New(rand.NewSource(2))
	names := kb.PositiveEntities(world.Hotel, 5, rng)
	if len(names) != 5 {
		t.Errorf("cap ignored: got %d", len(names))
	}
}

func TestCatalogue(t *testing.T) {
	w, kb := testKB(t)
	cat := kb.Catalogue()
	if len(cat) == 0 {
		t.Fatal("empty catalogue")
	}
	// Every KBPool entity appears with its type.
	miss := 0
	for _, e := range w.Entities {
		if !e.InKB {
			continue
		}
		if typ, ok := cat[strings.ToLower(e.Name)]; !ok || typ != string(e.Type) {
			miss++
		}
	}
	// A few entities may collide by name across types (later type wins);
	// near-complete coverage is required.
	if miss > len(cat)/20 {
		t.Errorf("%d KB entities missing or mistyped in catalogue of %d", miss, len(cat))
	}
	// Noisy-category people have no type and must be absent.
	if _, ok := cat["walter kovacs"]; ok {
		t.Error("noise entity leaked into catalogue")
	}
}

func TestDescendantsNoDuplicates(t *testing.T) {
	_, kb := testKB(t)
	for _, typ := range world.AllTypes {
		root, _ := kb.Root(typ)
		seen := map[CatID]bool{}
		for _, c := range kb.Descendants(root) {
			if seen[c] {
				t.Fatalf("duplicate category %q in Descendants(%s)", kb.CategoryName(c), typ)
			}
			seen[c] = true
		}
	}
}

func TestTrainingBuilderCollect(t *testing.T) {
	w, kb := testKB(t)
	docs := webgen.BuildCorpus(w, webgen.Config{Seed: 11, NoiseDocs: 50})
	ix := search.NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	engine := search.NewEngine(ix)
	b := &TrainingBuilder{KB: kb, Engine: engine, SnippetsPerEntity: 5, MaxEntities: 10, Seed: 11}
	train, test, stats := b.Collect([]world.Type{world.Museum, world.Restaurant})
	if train.Len() == 0 || test.Len() == 0 {
		t.Fatalf("empty corpus: train=%d test=%d", train.Len(), test.Len())
	}
	// 75/25 split per type.
	for _, s := range stats {
		total := s.Train + s.Test
		if total == 0 {
			t.Fatalf("no snippets for %s", s.Type)
		}
		frac := float64(s.Train) / float64(total)
		if frac < 0.70 || frac > 0.80 {
			t.Errorf("%s split %.2f, want ~0.75", s.Type, frac)
		}
	}
	labels := train.Labels()
	if len(labels) != 2 {
		t.Errorf("labels = %v, want museum+restaurant", labels)
	}
	if engine.QueryCount() == 0 {
		t.Error("builder did not query the engine")
	}
}

func TestTrainingBuilderPhraseQueries(t *testing.T) {
	w, kb := testKB(t)
	docs := webgen.BuildCorpus(w, webgen.Config{Seed: 11, NoiseDocs: 50})
	ix := search.NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	engine := search.NewEngine(ix)
	b := &TrainingBuilder{
		KB: kb, Engine: engine,
		SnippetsPerEntity: 5, MaxEntities: 10, Seed: 11,
		PhraseQueries: true,
	}
	train, test, _ := b.Collect([]world.Type{world.Museum})
	// Phrase queries are stricter; they must still find snippets for KB
	// entities (whose names appear verbatim in their pages).
	if train.Len()+test.Len() == 0 {
		t.Fatal("phrase-query collection found no snippets")
	}
}
