package kb

import (
	"math/rand"

	"repro/internal/classify"
	"repro/internal/search"
	"repro/internal/world"
)

// TrainingBuilder creates training and test sets by the procedure of §5.2.1:
// for every type, sample positive entities from the knowledge base, query the
// search engine with "entity name + type name" (the type word disambiguates
// the query), collect up to SnippetsPerEntity snippets, label them with the
// type, and split 75/25 into train and test.
type TrainingBuilder struct {
	KB     *KB
	Engine *search.Engine
	// SnippetsPerEntity caps the snippets gathered per entity; the paper
	// uses up to 10. 0 selects 10.
	SnippetsPerEntity int
	// MaxEntities caps the sampled P set per type; 0 means no cap.
	MaxEntities int
	// Seed drives sampling and the split shuffle.
	Seed int64
	// PhraseQueries submits the entity name as a quoted phrase
	// ("\"Chez Martin\" restaurant"), the strict reading of §5.2.1's
	// "query ... is a phrase". Off by default: the loose AND query is
	// what the evaluation was tuned on, and phrase verification costs an
	// extra candidate re-scan per query.
	PhraseQueries bool
}

// CorpusStats reports the per-type training/test sizes, the |TR| and |TE|
// columns of Table 2.
type CorpusStats struct {
	Type  world.Type
	Train int
	Test  int
}

// Collect builds the multiclass train/test sets over the given types.
func (b *TrainingBuilder) Collect(types []world.Type) (train, test classify.Dataset, stats []CorpusStats) {
	per := b.SnippetsPerEntity
	if per <= 0 {
		per = 10
	}
	rng := rand.New(rand.NewSource(b.Seed))
	for _, t := range types {
		var typed classify.Dataset
		for _, name := range b.KB.PositiveEntities(t, b.MaxEntities, rng) {
			var results []search.Result
			if b.PhraseQueries {
				results = b.Engine.SearchPhrase(`"`+name+`" `+world.TypeName(t), per)
			} else {
				results = b.Engine.Search(name+" "+world.TypeName(t), per)
			}
			for _, res := range results {
				typed.Add(res.Snippet, string(t))
			}
		}
		typed.Shuffle(rng)
		tr, te := typed.Split(0.75)
		train.Examples = append(train.Examples, tr.Examples...)
		test.Examples = append(test.Examples, te.Examples...)
		stats = append(stats, CorpusStats{Type: t, Train: tr.Len(), Test: te.Len()})
	}
	train.Shuffle(rng)
	return train, test, stats
}
