package annotate

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/classify"
	"repro/internal/gazetteer"
	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/table"
	"repro/internal/textproc"
)

// Searcher is the query interface the annotator needs from a search backend
// (steps 1-2 of the §5 algorithm): the top-k results for a query. The
// built-in *search.Engine implements it; any other backend (a remote API, a
// mock, a different ranking substrate) plugs in the same way.
// Implementations must be safe for concurrent use — the execute stage fans
// queries out over a worker pool when Parallelism > 1.
type Searcher interface {
	Search(query string, k int) []search.Result
}

// BatchSearcher is an optional upgrade of Searcher: a backend that can
// resolve several queries in one call. The execute stage detects it and
// submits a table's deduped cell queries in chunks instead of one round-trip
// per query, amortizing the backend's per-call setup; out[i] must equal
// Search(queries[i], k). *search.Engine implements it.
type BatchSearcher interface {
	Searcher
	SearchBatch(queries []string, k int) [][]search.Result
}

// ContextSearcher is an optional upgrade of Searcher: a backend whose
// queries observe cancellation, so the execute stage can abandon in-flight
// work (a simulated or real network round-trip) as soon as ctx is done
// instead of only checking between queries. A legacy Searcher keeps working
// unchanged — cancellation is then checked between queries only.
type ContextSearcher interface {
	SearchContext(ctx context.Context, query string, k int) ([]search.Result, error)
}

// ContextBatchSearcher combines both upgrades: batched queries that observe
// cancellation. *search.Engine implements it.
type ContextBatchSearcher interface {
	SearchBatchContext(ctx context.Context, queries []string, k int) ([][]search.Result, error)
}

// Annotation marks one cell as naming an entity of a type, with the Eq. 1
// confidence score S_ij = s_t / k.
type Annotation struct {
	Row   int // 1-based, the paper's i
	Col   int // 1-based, the paper's j
	Type  string
	Score float64
}

// CellKey addresses a cell with the paper's 1-based (row, column) indexes.
type CellKey struct {
	Row, Col int
}

// Result is the output of annotating one table.
type Result struct {
	Annotations []Annotation
	// ColumnScores maps type -> column -> the Eq. 2 global score S_j;
	// populated when post-processing ran.
	ColumnScores map[string]map[int]float64
	// Skipped counts pre-processing eliminations per reason.
	Skipped map[SkipReason]int
	// Queries is the number of search-engine queries issued for this
	// table (after the per-table deduplication and, when configured, the
	// shared cross-table cache).
	Queries int
	// CacheHits counts unique cell queries answered by the shared
	// cross-table cache (Config.Cache); zero when no cache is set.
	CacheHits int
	// CacheMisses counts unique cell queries the shared cache could not
	// answer — each one cost a search-engine round-trip; zero when no
	// cache is set.
	CacheMisses int
	// Batches is the number of backend batch calls the execute stage
	// issued for this table; zero when the backend does not implement
	// BatchSearcher. Without a shared cache the count is fixed by the
	// workload (query count and parallelism); with one, only chunks
	// containing at least one miss reach the backend, so — like
	// CacheMisses — the count depends on what earlier tables cached.
	Batches int
}

// Config is the immutable configuration of one annotation run — the §5
// pipeline's every knob, fixed before the run starts. A Config value is
// never mutated by the pipeline, so one Config may drive any number of
// concurrent runs, and a per-request variant (different Γ, k or toggles) is
// derived by copying the value and adjusting fields BEFORE the run — the
// expensive components (classifier, search backend, gazetteer) are shared by
// reference and never rebuilt.
//
// The pipeline is organised in three stages (see DESIGN.md): plan collects
// the unique cell queries after pre-processing and spatial augmentation,
// execute resolves them against the search backend (optionally over a worker
// pool and through the shared verdict cache), and merge applies the verdicts
// back to the cells in deterministic row/column order before post-processing.
// Results are identical at every Parallelism setting, with one carve-out:
// Result.Batches counts backend batch calls, and the chunking follows the
// worker count, so that statistic (and only that one) varies with
// Parallelism.
type Config struct {
	// Searcher is the search backend (steps 1-2 of the algorithm). Any
	// Searcher works; the built-in *search.Engine is the usual choice.
	Searcher Searcher
	// Classifier labels snippets with a type from Γ (step 3).
	Classifier classify.Classifier
	// Types is Γ, the target types.
	Types []string
	// K is the number of snippets fetched per query; 0 selects 10, the
	// paper's setting.
	K int
	// Pre is the §5.1 pre-processor.
	Pre Preprocessor
	// Postprocess enables the §5.3 spurious-annotation elimination.
	Postprocess bool
	// Disambiguate enables the §5.2.2 spatial query augmentation; it
	// requires Gazetteer.
	Disambiguate bool
	// Gazetteer geocodes Location-column cells for disambiguation and for
	// the opt-in GeoAnnotate stage. Any read-only gazetteer works; the
	// service wires the immutable gazetteer.Frozen, tests often use the
	// mutable builder directly.
	Gazetteer gazetteer.Geo
	// ClusterThreshold, when positive, replaces the flat majority rule
	// of Eq. 1 with the cluster-separated decision the paper leaves as
	// future work (§5.2): snippets are clustered by cosine similarity
	// (leader clustering at this threshold) and the dominant cluster is
	// classified on its own, so a minority sense cannot poison the vote.
	// 0 disables clustering. A reasonable value is 0.4.
	ClusterThreshold float64

	// Parallelism bounds the execute-stage worker pool that fans cell
	// queries out to the search backend; values <= 1 run sequentially.
	// The merge stage is order-preserving, so annotations, scores and
	// query counts are identical at every setting.
	Parallelism int
	// Cache, when non-nil, shares query verdicts across tables and
	// corpus runs: a unique cell query answered by the cache costs no
	// search-engine round-trip. Cache keys incorporate k, the type set,
	// the decision rule and CacheSalt, so configurations that differ in
	// any of those never exchange verdicts through a shared Cache — but
	// the classifier and the search backend cannot be fingerprinted, so
	// configurations that differ in either MUST set distinct CacheSalt
	// values.
	Cache *qcache.Cache
	// CacheSalt namespaces this configuration's entries inside a shared
	// Cache (e.g. "svm" vs "bayes", or per search backend). Ignored
	// when Cache is nil.
	CacheSalt string

	// GeoWorkers bounds the worker pool resolving disambiguation
	// components in parallel inside the geo stage (GeoAnnotate /
	// PrepareGeo). 0 means min(GOMAXPROCS, 8). The count has no effect
	// on results — components are independent and scored bit-identically
	// at any worker count — only on latency and peak scratch memory,
	// which grows O(largest component × workers).
	GeoWorkers int

	// geo optionally carries one table's precomputed geocode+disambiguate
	// resolution (set via PrepareGeo) so the Disambiguate stage and
	// GeoAnnotate share a single voting pass. Bound to its table: runs
	// over any other table ignore it.
	geo *geoResolution
}

func (c Config) k() int {
	if c.K > 0 {
		return c.K
	}
	return 10
}

// typeSet returns Γ as a set for membership checks.
func (c Config) typeSet() map[string]struct{} {
	s := make(map[string]struct{}, len(c.Types))
	for _, t := range c.Types {
		s[t] = struct{}{}
	}
	return s
}

// Annotate runs pre-processing, annotation and (optionally) post-processing
// over one table and returns every cell-level annotation. This is the
// context-first entry point of the pipeline: the execute stage checks ctx
// between queries (and between worker dispatches) and returns ctx.Err() once
// the context is done — never a silently-truncated Result. A query already
// handed to the search backend is not interrupted.
func (c Config) Annotate(ctx context.Context, t *table.Table) (*Result, error) {
	return c.annotateExcluding(ctx, t, nil)
}

// AnnotateBatch annotates a batch of tables, fanning whole tables out over
// a bounded worker pool of the given parallelism (values <= 1 run
// sequentially). Results are returned in input order; annotations and
// scores are identical to annotating each table sequentially. With a shared
// Cache, the cache's singleflight guarantees one backend query per unique
// key, so batch-wide query and hit/miss totals are fixed too — though which
// table's Result records a given miss can vary under concurrency. The first
// context error aborts the batch.
func (c Config) AnnotateBatch(ctx context.Context, tables []*table.Table, parallelism int) ([]*Result, error) {
	out := make([]*Result, len(tables))
	if parallelism <= 1 {
		for i, t := range tables {
			res, err := c.annotateExcluding(ctx, t, nil)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	errs := make([]error, len(tables))
	if err := runPool(ctx, parallelism, len(tables), func(i int) {
		out[i], errs[i] = c.annotateExcluding(ctx, tables[i], nil)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runPool runs work(0..n-1) over a bounded pool of workers, dispatching
// until ctx is done. In-flight work completes; the first context error is
// returned after the pool drains.
func runPool(ctx context.Context, workers, n int, work func(int)) error {
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				work(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return ctx.Err()
}

// annotateExcluding runs the three pipeline stages over one table, leaving
// the given cells untouched (the hybrid annotator uses the exclusion to send
// only catalogue-unknown cells to the search engine). The error is non-nil
// only when ctx is cancelled, in which case the partial result is discarded.
func (c Config) annotateExcluding(ctx context.Context, t *table.Table, exclude map[CellKey]bool) (*Result, error) {
	// Check up front so cancellation holds even when every query would
	// be answered by a warm cache and the execute stage never blocks.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := c.plan(t, exclude)
	res := &Result{Skipped: p.skipped}
	verdicts, err := c.execute(ctx, p.unique, res)
	if err != nil {
		return nil, err
	}
	c.merge(t, p, verdicts, res)
	return res, nil
}

// cellQuery is one annotatable cell paired with its (possibly spatially
// augmented) search query — the unit of work the plan stage emits.
type cellQuery struct {
	cell  CellKey
	query string
}

// tablePlan is the plan stage's output: the annotatable cells in column-major
// order, the deduplicated queries in first-encounter order (so the execute
// stage issues them exactly as the original sequential pipeline did), and the
// pre-processing skip counts.
type tablePlan struct {
	cells   []cellQuery
	unique  []string
	skipped map[SkipReason]int
}

// plan walks the table once, applying the §5.1 pre-processing and the §5.2.2
// spatial augmentation, and collects the unique queries to execute. Querying
// the engine is the dominant cost (§6.4), so identical cell contents share
// one query; the query string includes the spatial augmentation so different
// rows stay distinguishable.
func (c Config) plan(t *table.Table, exclude map[CellKey]bool) tablePlan {
	p := tablePlan{skipped: map[SkipReason]int{}}

	// Spatial context per row, resolved once per table (§5.2.2).
	var cityByRow map[int]string
	if c.Disambiguate && c.Gazetteer != nil {
		cityByRow = c.resolveRowCities(t)
	}

	seen := map[string]bool{}
	for j := 1; j <= t.NumCols(); j++ {
		if c.Pre.SkipColumn(t.Columns[j-1].Type) {
			p.skipped[SkipColumnType] += t.NumRows()
			continue
		}
		for i := 1; i <= t.NumRows(); i++ {
			if exclude[CellKey{Row: i, Col: j}] {
				continue
			}
			content := strings.TrimSpace(t.Cell(i, j))
			if reason := c.Pre.Check(content); reason != SkipNone {
				p.skipped[reason]++
				continue
			}
			query := content
			if city := cityByRow[i]; city != "" && !strings.Contains(strings.ToLower(content), strings.ToLower(city)) {
				query = content + " " + city
			}
			p.cells = append(p.cells, cellQuery{cell: CellKey{Row: i, Col: j}, query: query})
			if !seen[query] {
				seen[query] = true
				p.unique = append(p.unique, query)
			}
		}
	}
	return p
}

// maxSearchBatch caps one backend batch (and one batched cache lookup): big
// enough to amortize per-call setup, small enough that every worker stays
// busy and a cache singleflight publishes its verdicts promptly.
const maxSearchBatch = 32

// chunkSize returns the batch chunk length for n queries at the given
// parallelism: the queries divide evenly over the workers, capped at
// maxSearchBatch.
func chunkSize(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	size := (n + workers - 1) / workers
	if size > maxSearchBatch {
		size = maxSearchBatch
	}
	if size < 1 {
		size = 1
	}
	return size
}

// batchCapable reports whether the backend accepts batched queries.
func (c Config) batchCapable() bool {
	switch c.Searcher.(type) {
	case BatchSearcher, ContextBatchSearcher:
		return true
	}
	return false
}

// searchBatch issues one backend batch, through the context-aware interface
// when the backend has one (so in-flight round-trips abort on cancel), and
// behind an up-front ctx check otherwise.
func (c Config) searchBatch(ctx context.Context, queries []string, k int) ([][]search.Result, error) {
	switch b := c.Searcher.(type) {
	case ContextBatchSearcher:
		return b.SearchBatchContext(ctx, queries, k)
	case BatchSearcher:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return b.SearchBatch(queries, k), nil
	}
	panic("annotate: searchBatch on a non-batch Searcher")
}

// execute resolves every unique query to a verdict — sequentially, or over a
// bounded worker pool when Parallelism > 1 — and updates the Queries, batch
// and cache counters on res. Batch-capable backends receive the queries in
// chunks (one backend call per chunk) instead of one call per query. With a
// shared cache configured, each lookup goes through the cache's
// singleflight, so one backend query is issued per unique key across all
// concurrent tables; which table's Result records the miss can vary under
// concurrency, but totals are fixed by the workload.
func (c Config) execute(ctx context.Context, queries []string, res *Result) (map[string]qcache.Verdict, error) {
	verdicts := make(map[string]qcache.Verdict, len(queries))
	gamma := c.typeSet()

	if c.Cache == nil {
		var resolved []qcache.Verdict
		var err error
		if c.batchCapable() && len(queries) > 0 {
			resolved, err = c.executeBatched(ctx, queries, gamma, res)
		} else {
			resolved, err = c.searchAll(ctx, queries, gamma)
		}
		if err != nil {
			return nil, err
		}
		res.Queries = len(queries)
		for i, q := range queries {
			verdicts[q] = resolved[i]
		}
		return verdicts, nil
	}

	prefix := c.cacheKeyPrefix()
	out := make([]qcache.Verdict, len(queries))
	hit := make([]bool, len(queries))
	if c.batchCapable() && len(queries) > 0 {
		if err := c.executeCachedBatched(ctx, queries, gamma, prefix, out, hit, res); err != nil {
			return nil, err
		}
	} else {
		do := func(i int) {
			q := queries[i]
			out[i], hit[i] = c.Cache.GetOrCompute(prefix+q, func() qcache.Verdict {
				return c.searchDecide(q, gamma)
			})
		}
		if c.Parallelism <= 1 || len(queries) < 2 {
			for i := range queries {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				do(i)
			}
		} else if err := runPool(ctx, c.Parallelism, len(queries), do); err != nil {
			return nil, err
		}
	}
	for i, q := range queries {
		verdicts[q] = out[i]
		if hit[i] {
			res.CacheHits++
		} else {
			res.CacheMisses++
			res.Queries++
		}
	}
	return verdicts, nil
}

// forEachChunk cuts n queries into chunks sized for the worker count and
// runs work(lo, hi) for each — sequentially (with a ctx check between
// chunks) or over the bounded pool — returning the first error. Both batch
// paths share this dispatch skeleton so its ctx and error semantics cannot
// diverge between them.
func (c Config) forEachChunk(ctx context.Context, n int, work func(lo, hi int) error) error {
	size := chunkSize(n, c.Parallelism)
	nChunks := (n + size - 1) / size
	errs := make([]error, nChunks)
	do := func(ci int) {
		lo := ci * size
		errs[ci] = work(lo, min(lo+size, n))
	}
	if c.Parallelism <= 1 || nChunks < 2 {
		for ci := 0; ci < nChunks; ci++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			do(ci)
		}
	} else if err := runPool(ctx, c.Parallelism, nChunks, do); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// executeBatched is the cacheless batch path: the queries are cut into
// chunks, each chunk costs one backend batch call, and chunks fan out over
// the worker pool when Parallelism > 1. Verdicts are positional and
// identical to the per-query path at any chunking.
func (c Config) executeBatched(ctx context.Context, queries []string, gamma map[string]struct{}, res *Result) ([]qcache.Verdict, error) {
	out := make([]qcache.Verdict, len(queries))
	var batches atomic.Int64
	err := c.forEachChunk(ctx, len(queries), func(lo, hi int) error {
		batches.Add(1)
		return c.resolveChunk(ctx, queries[lo:hi], gamma, out[lo:hi])
	})
	if err != nil {
		return nil, err
	}
	res.Batches = int(batches.Load())
	return out, nil
}

// executeCachedBatched is the cached batch path: each chunk resolves through
// one batched cache lookup whose compute callback — invoked with only the
// chunk's genuine misses — costs one backend batch call.
func (c Config) executeCachedBatched(ctx context.Context, queries []string, gamma map[string]struct{}, prefix string, out []qcache.Verdict, hit []bool, res *Result) error {
	var batches atomic.Int64
	err := c.forEachChunk(ctx, len(queries), func(lo, hi int) error {
		keys := make([]string, hi-lo)
		for i := range keys {
			keys[i] = prefix + queries[lo+i]
		}
		vs, hits, err := c.Cache.GetOrComputeBatch(keys, func(missKeys []string) ([]qcache.Verdict, error) {
			miss := make([]string, len(missKeys))
			for i, k := range missKeys {
				miss[i] = k[len(prefix):]
			}
			batches.Add(1)
			mout := make([]qcache.Verdict, len(miss))
			if err := c.resolveChunk(ctx, miss, gamma, mout); err != nil {
				return nil, err
			}
			return mout, nil
		})
		if err != nil {
			return err
		}
		copy(out[lo:hi], vs)
		copy(hit[lo:hi], hits)
		return nil
	})
	if err != nil {
		return err
	}
	res.Batches = int(batches.Load())
	return nil
}

// resolveChunk resolves one chunk of queries with a single backend batch
// call and applies the Eq. 1 decision per query into out (positional). The
// per-decision scratch state (vote counts, snippet feature extraction
// buffers) is checked out of a pool once for the whole chunk.
func (c Config) resolveChunk(ctx context.Context, queries []string, gamma map[string]struct{}, out []qcache.Verdict) error {
	lists, err := c.searchBatch(ctx, queries, c.k())
	if err != nil {
		return err
	}
	sc := getScratch()
	defer putScratch(sc)
	for i, results := range lists {
		typ, score, ok := c.decideWith(sc, results, gamma)
		out[i] = qcache.Verdict{Type: typ, Score: score, OK: ok}
	}
	return nil
}

// searchAll decides every query, fanning out over Parallelism workers when
// configured. Verdicts are returned positionally. Cancellation is checked
// between queries, and — when the backend implements ContextSearcher —
// inside each round-trip too, so a cancelled context abandons in-flight
// work instead of letting it complete.
func (c Config) searchAll(ctx context.Context, queries []string, gamma map[string]struct{}) ([]qcache.Verdict, error) {
	out := make([]qcache.Verdict, len(queries))
	cs, hasCtx := c.Searcher.(ContextSearcher)
	decideOne := func(i int) error {
		if hasCtx {
			results, err := cs.SearchContext(ctx, queries[i], c.k())
			if err != nil {
				return err
			}
			typ, score, ok := c.decide(results, gamma)
			out[i] = qcache.Verdict{Type: typ, Score: score, OK: ok}
			return nil
		}
		out[i] = c.searchDecide(queries[i], gamma)
		return nil
	}
	workers := c.Parallelism
	if workers <= 1 || len(queries) < 2 {
		for i := range queries {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := decideOne(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, len(queries))
	if err := runPool(ctx, workers, len(queries), func(i int) {
		errs[i] = decideOne(i)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// searchDecide performs one search-backend round-trip and the Eq. 1 decision.
func (c Config) searchDecide(query string, gamma map[string]struct{}) qcache.Verdict {
	results := c.Searcher.Search(query, c.k())
	typ, score, ok := c.decide(results, gamma)
	return qcache.Verdict{Type: typ, Score: score, OK: ok}
}

// cacheKeyPrefix fingerprints every configuration setting a verdict depends
// on, except the classifier — that is what CacheSalt is for (see the Cache
// field doc). Identical prefixes mean verdicts are exchangeable.
func (c Config) cacheKeyPrefix() string {
	types := append([]string(nil), c.Types...)
	sort.Strings(types)
	return fmt.Sprintf("%s\x00k=%d\x00ct=%g\x00%s\x00", c.CacheSalt, c.k(), c.ClusterThreshold, strings.Join(types, ","))
}

// merge applies the verdicts back to the planned cells — column-major, the
// order the original sequential pipeline produced — and then runs the §5.3
// post-processing when enabled.
func (c Config) merge(t *table.Table, p tablePlan, verdicts map[string]qcache.Verdict, res *Result) {
	for _, cq := range p.cells {
		if v := verdicts[cq.query]; v.OK {
			res.Annotations = append(res.Annotations, Annotation{Row: cq.cell.Row, Col: cq.cell.Col, Type: v.Type, Score: v.Score})
		}
	}
	if c.Postprocess {
		c.postprocess(t, res)
	}
}

// scratch is the pooled per-worker decision state: the Eq. 1 vote counts and
// the snippet feature-extraction buffers, reused across the queries of a
// chunk so the steady-state decide path allocates only what it returns.
type scratch struct {
	counts map[string]int
	ex     textproc.Extractor
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{counts: make(map[string]int, 16)}
}}

func getScratch() *scratch   { return scratchPool.Get().(*scratch) }
func putScratch(sc *scratch) { scratchPool.Put(sc) }

// decide turns a result list into an annotation verdict: Eq. 1's majority
// rule by default, or the cluster-separated variant when ClusterThreshold is
// set (§5.2's future-work extension, implemented in cluster.go).
func (c Config) decide(results []search.Result, gamma map[string]struct{}) (string, float64, bool) {
	sc := getScratch()
	defer putScratch(sc)
	return c.decideWith(sc, results, gamma)
}

// decideWith is decide against caller-owned scratch state. The cluster
// variant needs every snippet's features alive at once, so it keeps the
// allocating path; the flat majority rule predicts snippet by snippet
// through the scratch extractor's reused buffers.
func (c Config) decideWith(sc *scratch, results []search.Result, gamma map[string]struct{}) (string, float64, bool) {
	if c.ClusterThreshold > 0 {
		return c.clusterDecide(results, gamma)
	}
	clear(sc.counts)
	for _, r := range results {
		pred := c.Classifier.Predict(sc.ex.Extract(r.Snippet))
		if _, inGamma := gamma[pred]; inGamma {
			sc.counts[pred]++
		}
	}
	return majorityType(sc.counts, len(results))
}

// majorityType applies the Eq. 1 decision rule: the unique type with the
// highest snippet count wins iff its count strictly exceeds k/2; the score is
// s_t / k. k is the number of snippets actually retrieved.
func majorityType(counts map[string]int, k int) (string, float64, bool) {
	if k == 0 {
		return "", 0, false
	}
	best, bestCount, ties := "", 0, 0
	for typ, c := range counts {
		switch {
		case c > bestCount:
			best, bestCount, ties = typ, c, 1
		case c == bestCount:
			ties++
		}
	}
	if bestCount*2 <= k || ties > 1 {
		return "", 0, false
	}
	return best, float64(bestCount) / float64(k), true
}

// resolveRowCities geocodes every Location-column cell, resolves ambiguous
// interpretations with the §5.2.2 voting graph across the whole table, and
// returns the chosen city name per row. Rows without resolvable spatial data
// are absent from the map. The resolution is reused when PrepareGeo ran for
// this table; the stage runs to completion (plan() carries no context),
// matching the pre-geo pipeline's semantics.
func (c Config) resolveRowCities(t *table.Table) map[int]string {
	res, _ := c.geoFor(nil, t) // nil ctx: resolveGeo only errors on cancellation
	if res == nil {
		return nil
	}
	out := make(map[int]string)
	for cell, loc := range res.choice {
		if city := c.Gazetteer.CityOf(loc); city != gazetteer.NoLocation {
			out[cell.Row] = c.Gazetteer.Name(city)
		}
	}
	return out
}
