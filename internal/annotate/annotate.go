package annotate

import (
	"strings"

	"repro/internal/classify"
	"repro/internal/disambig"
	"repro/internal/gazetteer"
	"repro/internal/search"
	"repro/internal/table"
	"repro/internal/textproc"
)

// Annotation marks one cell as naming an entity of a type, with the Eq. 1
// confidence score S_ij = s_t / k.
type Annotation struct {
	Row   int // 1-based, the paper's i
	Col   int // 1-based, the paper's j
	Type  string
	Score float64
}

// CellKey addresses a cell with the paper's 1-based (row, column) indexes.
type CellKey struct {
	Row, Col int
}

// Result is the output of annotating one table.
type Result struct {
	Annotations []Annotation
	// ColumnScores maps type -> column -> the Eq. 2 global score S_j;
	// populated when post-processing ran.
	ColumnScores map[string]map[int]float64
	// Skipped counts pre-processing eliminations per reason.
	Skipped map[SkipReason]int
	// Queries is the number of search-engine queries issued for this
	// table (after the per-table cache).
	Queries int
}

// Annotator runs the full pipeline of §5 over tables.
type Annotator struct {
	// Engine is the web search engine (step 1-2 of the algorithm).
	Engine *search.Engine
	// Classifier labels snippets with a type from Γ (step 3).
	Classifier classify.Classifier
	// Types is Γ, the target types.
	Types []string
	// K is the number of snippets fetched per query; 0 selects 10, the
	// paper's setting.
	K int
	// Pre is the §5.1 pre-processor.
	Pre Preprocessor
	// Postprocess enables the §5.3 spurious-annotation elimination.
	Postprocess bool
	// Disambiguate enables the §5.2.2 spatial query augmentation; it
	// requires Gazetteer.
	Disambiguate bool
	// Gazetteer geocodes Location-column cells for disambiguation.
	Gazetteer *gazetteer.Gazetteer
	// ClusterThreshold, when positive, replaces the flat majority rule
	// of Eq. 1 with the cluster-separated decision the paper leaves as
	// future work (§5.2): snippets are clustered by cosine similarity
	// (leader clustering at this threshold) and the dominant cluster is
	// classified on its own, so a minority sense cannot poison the vote.
	// 0 disables clustering. A reasonable value is 0.4.
	ClusterThreshold float64
}

func (a *Annotator) k() int {
	if a.K > 0 {
		return a.K
	}
	return 10
}

// typeSet returns Γ as a set for membership checks.
func (a *Annotator) typeSet() map[string]struct{} {
	s := make(map[string]struct{}, len(a.Types))
	for _, t := range a.Types {
		s[t] = struct{}{}
	}
	return s
}

// AnnotateTable runs pre-processing, annotation and (optionally)
// post-processing over one table and returns every cell-level annotation.
func (a *Annotator) AnnotateTable(t *table.Table) *Result {
	return a.annotateExcluding(t, nil)
}

// annotateExcluding is AnnotateTable with a set of cells to leave untouched;
// the hybrid annotator uses it to send only catalogue-unknown cells to the
// search engine.
func (a *Annotator) annotateExcluding(t *table.Table, exclude map[CellKey]bool) *Result {
	res := &Result{Skipped: map[SkipReason]int{}}
	gamma := a.typeSet()

	// Spatial context per row, resolved once per table (§5.2.2).
	var cityByRow map[int]string
	if a.Disambiguate && a.Gazetteer != nil {
		cityByRow = a.resolveRowCities(t)
	}

	// Querying the engine is the dominant cost (§6.4), so identical cell
	// contents share one query. The cache key includes the spatial
	// augmentation so different rows stay distinguishable.
	type verdict struct {
		typ   string
		score float64
		ok    bool
	}
	cache := map[string]verdict{}

	for j := 1; j <= t.NumCols(); j++ {
		if a.Pre.SkipColumn(t.Columns[j-1].Type) {
			res.Skipped[SkipColumnType] += t.NumRows()
			continue
		}
		for i := 1; i <= t.NumRows(); i++ {
			if exclude[CellKey{Row: i, Col: j}] {
				continue
			}
			content := strings.TrimSpace(t.Cell(i, j))
			if reason := a.Pre.Check(content); reason != SkipNone {
				res.Skipped[reason]++
				continue
			}
			query := content
			if city := cityByRow[i]; city != "" && !strings.Contains(strings.ToLower(content), strings.ToLower(city)) {
				query = content + " " + city
			}
			v, ok := cache[query]
			if !ok {
				results := a.Engine.Search(query, a.k())
				res.Queries++
				v.typ, v.score, v.ok = a.decide(results, gamma)
				cache[query] = v
			}
			if v.ok {
				res.Annotations = append(res.Annotations, Annotation{Row: i, Col: j, Type: v.typ, Score: v.score})
			}
		}
	}

	if a.Postprocess {
		a.postprocess(t, res)
	}
	return res
}

// decide turns a result list into an annotation verdict: Eq. 1's majority
// rule by default, or the cluster-separated variant when ClusterThreshold is
// set (§5.2's future-work extension, implemented in cluster.go).
func (a *Annotator) decide(results []search.Result, gamma map[string]struct{}) (string, float64, bool) {
	if a.ClusterThreshold > 0 {
		return a.clusterDecide(results, gamma)
	}
	counts := make(map[string]int, len(a.Types))
	for _, r := range results {
		pred := a.Classifier.Predict(textproc.Extract(r.Snippet))
		if _, inGamma := gamma[pred]; inGamma {
			counts[pred]++
		}
	}
	return majorityType(counts, len(results))
}

// majorityType applies the Eq. 1 decision rule: the unique type with the
// highest snippet count wins iff its count strictly exceeds k/2; the score is
// s_t / k. k is the number of snippets actually retrieved.
func majorityType(counts map[string]int, k int) (string, float64, bool) {
	if k == 0 {
		return "", 0, false
	}
	best, bestCount, ties := "", 0, 0
	for typ, c := range counts {
		switch {
		case c > bestCount:
			best, bestCount, ties = typ, c, 1
		case c == bestCount:
			ties++
		}
	}
	if bestCount*2 <= k || ties > 1 {
		return "", 0, false
	}
	return best, float64(bestCount) / float64(k), true
}

// resolveRowCities geocodes every Location-column cell, resolves ambiguous
// interpretations with the §5.2.2 voting graph across the whole table, and
// returns the chosen city name per row. Rows without resolvable spatial data
// are absent from the map.
func (a *Annotator) resolveRowCities(t *table.Table) map[int]string {
	var interps []disambig.Interpretation
	for _, j := range t.ColumnIndexesOfType(table.Location) {
		for i := 1; i <= t.NumRows(); i++ {
			cands := a.Gazetteer.Geocode(t.Cell(i, j))
			if len(cands) == 0 {
				continue
			}
			interps = append(interps, disambig.Interpretation{
				Cell:       disambig.CellRef{Row: i, Col: j},
				Candidates: cands,
			})
		}
	}
	if len(interps) == 0 {
		return nil
	}
	choice := disambig.Resolve(interps, a.Gazetteer)
	out := make(map[int]string)
	for cell, loc := range choice {
		if city := a.Gazetteer.CityOf(loc); city != gazetteer.NoLocation {
			out[cell.Row] = a.Gazetteer.Name(city)
		}
	}
	return out
}
