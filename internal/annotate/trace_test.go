package annotate

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func TestExplainTable(t *testing.T) {
	f := newFixture(t)
	tbl := poiTable(t)
	a := f.annotator()
	exps := a.ExplainTable(tbl)
	if len(exps) != tbl.NumRows()*tbl.NumCols() {
		t.Fatalf("explanations = %d, want one per cell (%d)", len(exps), tbl.NumRows()*tbl.NumCols())
	}
	byCell := map[[2]int]CellExplanation{}
	for _, e := range exps {
		byCell[[2]int{e.Row, e.Col}] = e
	}
	// Name cell: queried, votes recorded, verdict museum.
	name := byCell[[2]int{1, 1}]
	if name.Skipped != SkipNone || name.Query == "" || name.Retrieved == 0 {
		t.Errorf("name cell explanation incomplete: %+v", name)
	}
	if name.Verdict != "museum" {
		t.Errorf("name verdict = %q, want museum", name.Verdict)
	}
	if name.Votes["museum"] == 0 {
		t.Errorf("votes missing: %v", name.Votes)
	}
	// Phone cell: skipped with reason, never queried.
	phone := byCell[[2]int{1, 2}]
	if phone.Skipped != SkipPhone || phone.Query != "" {
		t.Errorf("phone cell explanation = %+v", phone)
	}
	// String rendering carries the essentials.
	s := name.String()
	if !strings.Contains(s, "museum") || !strings.Contains(s, "T(1,1)") {
		t.Errorf("String() = %q", s)
	}
	ps := phone.String()
	if !strings.Contains(ps, "skipped: phone number") {
		t.Errorf("skip String() = %q", ps)
	}
}

func TestExplainAbstention(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("amb", table.Column{Header: "Name", Type: table.Text})
	if err := tbl.AppendRow("Melisse"); err != nil {
		t.Fatal(err)
	}
	exps := f.annotator().ExplainTable(tbl)
	e := exps[0]
	if e.Verdict == "" && !strings.Contains(e.String(), "abstained") {
		t.Errorf("abstention not rendered: %q", e.String())
	}
	// Whatever the verdict, the votes must sum to at most the retrieved
	// snippet count.
	total := 0
	for _, v := range e.Votes {
		total += v
	}
	if total > e.Retrieved {
		t.Errorf("votes %d exceed retrieved %d", total, e.Retrieved)
	}
}

func TestExplainColumnTypeSkip(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("loc",
		table.Column{Header: "Address", Type: table.Location},
	)
	if err := tbl.AppendRow("Ocean Drive, Santa Monica"); err != nil {
		t.Fatal(err)
	}
	exps := f.annotator().ExplainTable(tbl)
	if exps[0].Skipped != SkipColumnType {
		t.Errorf("Location column not marked column-type skipped: %+v", exps[0])
	}
}
