package annotate

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/table"
)

// scriptedBatchSearcher upgrades scriptedSearcher with SearchBatch, counting
// batch calls and batched queries so tests can assert the execute stage
// actually used the batch path.
type scriptedBatchSearcher struct {
	scriptedSearcher
	batchCalls   atomic.Int64
	batchQueries atomic.Int64
}

func (s *scriptedBatchSearcher) SearchBatch(queries []string, k int) [][]search.Result {
	s.batchCalls.Add(1)
	s.batchQueries.Add(int64(len(queries)))
	out := make([][]search.Result, len(queries))
	for i, q := range queries {
		r := s.results[q]
		if len(r) > k {
			r = r[:k]
		}
		out[i] = r
	}
	return out
}

// blockingCtxSearcher implements ContextSearcher with round-trips that only
// finish when the context does — the shape of an in-flight remote call a
// cancellation must be able to abandon.
type blockingCtxSearcher struct{}

func (blockingCtxSearcher) Search(query string, k int) []search.Result { return nil }
func (blockingCtxSearcher) SearchContext(ctx context.Context, query string, k int) ([]search.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// wideTable builds a one-column table with n distinct cell values.
func wideTable(t *testing.T, n int) *table.Table {
	t.Helper()
	tbl := table.New("wide", table.Column{Header: "Name", Type: table.Text})
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(fmt.Sprintf("Louvre Annex %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// batchScript returns a batch-capable searcher answering every query of an
// n-row wideTable with museum snippets.
func batchScript(n int) *scriptedBatchSearcher {
	s := &scriptedBatchSearcher{}
	s.results = map[string][]search.Result{}
	for i := 0; i < n; i++ {
		s.results[fmt.Sprintf("Louvre Annex %d", i)] = snippets(10)
	}
	return s
}

// TestExecuteUsesBatchSearcher: with a BatchSearcher backend the execute
// stage submits chunks — zero single Search calls, every query carried by a
// batch, verdicts identical to the single-query backend, and the chunk
// count lands in Result.Batches.
func TestExecuteUsesBatchSearcher(t *testing.T) {
	const rows = 70
	s := batchScript(rows)
	cfg := Config{
		Searcher:   s,
		Classifier: constClassifier("museum"),
		Types:      []string{"museum", "restaurant"},
		K:          10,
	}
	res, err := cfg.Annotate(context.Background(), wideTable(t, rows))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.calls.Load(); got != 0 {
		t.Errorf("single Search calls = %d, want 0 (batch path)", got)
	}
	if got := s.batchQueries.Load(); got != rows {
		t.Errorf("batched queries = %d, want %d", got, rows)
	}
	wantChunks := (rows + maxSearchBatch - 1) / maxSearchBatch
	if got := s.batchCalls.Load(); got != int64(wantChunks) {
		t.Errorf("batch calls = %d, want %d (sequential chunking)", got, wantChunks)
	}
	if res.Batches != wantChunks {
		t.Errorf("Result.Batches = %d, want %d", res.Batches, wantChunks)
	}
	if len(res.Annotations) != rows || res.Queries != rows {
		t.Errorf("annotations=%d queries=%d, want %d each", len(res.Annotations), res.Queries, rows)
	}

	// The single-query backend must produce the identical annotation set.
	plain := cfg
	plain.Searcher = &s.scriptedSearcher
	res2, err := plain.Annotate(context.Background(), wideTable(t, rows))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", res.Annotations) != fmt.Sprintf("%+v", res2.Annotations) {
		t.Error("batched and single-query backends produced different annotations")
	}
}

// TestBatchedExecuteParallelRace runs the batched execute path at
// parallelism >= 4 — without and with a shared cache, plus concurrent
// whole-table fan-out — and asserts outputs match the sequential run.
// Under -race this is the data-race check for the chunked worker pool,
// the batched cache lookups and the singleflight publication.
func TestBatchedExecuteParallelRace(t *testing.T) {
	const rows = 90
	tbl := wideTable(t, rows)
	base := Config{
		Searcher:   batchScript(rows),
		Classifier: constClassifier("museum"),
		Types:      []string{"museum", "restaurant"},
		K:          10,
	}
	seqRes, err := base.Annotate(context.Background(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	seq := fmt.Sprintf("%+v", seqRes.Annotations)

	for _, withCache := range []bool{false, true} {
		cfg := base
		cfg.Parallelism = 8
		if withCache {
			cfg.Cache = qcache.New()
		}
		var wg sync.WaitGroup
		results := make([]*Result, 6)
		errs := make([]error, 6)
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g], errs[g] = cfg.Annotate(context.Background(), tbl)
			}(g)
		}
		wg.Wait()
		for g := range results {
			if errs[g] != nil {
				t.Fatalf("cache=%v goroutine %d: %v", withCache, g, errs[g])
			}
			if got := fmt.Sprintf("%+v", results[g].Annotations); got != seq {
				t.Errorf("cache=%v goroutine %d: annotations differ from sequential run", withCache, g)
			}
		}
		if withCache {
			// Singleflight across the six concurrent tables: one backend
			// query per unique cell value, total.
			st := cfg.Cache.Stats()
			if st.Misses != rows {
				t.Errorf("cache misses = %d, want %d (one per unique query)", st.Misses, rows)
			}
			totalQ := 0
			for _, r := range results {
				totalQ += r.Queries
			}
			if totalQ != rows {
				t.Errorf("total queries across tables = %d, want %d", totalQ, rows)
			}
		}
	}
}

// TestSearchAllAbandonsInFlight: with a ContextSearcher backend and no
// cache, a cancellation aborts a round-trip that is already in flight —
// the call returns promptly with ctx.Err() instead of waiting the backend
// out.
func TestSearchAllAbandonsInFlight(t *testing.T) {
	cfg := Config{
		Searcher:   blockingCtxSearcher{},
		Classifier: constClassifier("museum"),
		Types:      []string{"museum"},
		K:          10,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cfg.Annotate(ctx, wideTable(t, 3))
		done <- err
	}()
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled in-flight search did not surface an error")
	}
}
