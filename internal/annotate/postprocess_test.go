package annotate

import (
	"math"
	"testing"

	"repro/internal/table"
)

// eq2Table builds a 4x2 table where column 1 has distinct values and column
// 2 repeats one value.
func eq2Table(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("eq2",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Type", Type: table.Text},
	)
	rows := [][]string{
		{"Alpha House", "Museum"},
		{"Beta Hall", "Museum"},
		{"Gamma Center", "Museum"},
		{"Delta Pavilion", "Museum"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestEq2ScoreComputation checks the exact Eq. 2 arithmetic:
// S_j = Σ ln(S_ij / o_ij + 1).
func TestEq2ScoreComputation(t *testing.T) {
	tbl := eq2Table(t)
	res := &Result{Annotations: []Annotation{
		{Row: 1, Col: 1, Type: "museum", Score: 1.0},
		{Row: 2, Col: 1, Type: "museum", Score: 0.8},
		{Row: 1, Col: 2, Type: "museum", Score: 1.0},
		{Row: 2, Col: 2, Type: "museum", Score: 1.0},
		{Row: 3, Col: 2, Type: "museum", Score: 1.0},
		{Row: 4, Col: 2, Type: "museum", Score: 1.0},
	}}
	a := &Annotator{}
	a.Config().postprocess(tbl, res)

	// Column 1: distinct values, o=1: ln(1/1+1) + ln(0.8/1+1).
	want1 := math.Log(2) + math.Log(1.8)
	// Column 2: "Museum" appears 4 times, o=4: 4 * ln(1/4 + 1).
	want2 := 4 * math.Log(1.25)
	got1 := res.ColumnScores["museum"][1]
	got2 := res.ColumnScores["museum"][2]
	if math.Abs(got1-want1) > 1e-12 {
		t.Errorf("S_1 = %v, want %v", got1, want1)
	}
	if math.Abs(got2-want2) > 1e-12 {
		t.Errorf("S_2 = %v, want %v", got2, want2)
	}
	// Column 1 wins; only its annotations survive.
	for _, ann := range res.Annotations {
		if ann.Col != 1 {
			t.Errorf("annotation in losing column survived: %+v", ann)
		}
	}
	if len(res.Annotations) != 2 {
		t.Errorf("kept %d annotations, want 2", len(res.Annotations))
	}
}

// TestEq2RepetitionDamping: with equal per-cell scores, a column of n
// distinct values always beats a column of n copies of one value.
func TestEq2RepetitionDamping(t *testing.T) {
	for n := 2; n <= 30; n++ {
		distinct := float64(n) * math.Log(2)                // n cells, o=1
		repeated := float64(n) * math.Log(1+1.0/float64(n)) // n cells, o=n
		if repeated >= distinct {
			t.Fatalf("n=%d: repeated column score %v >= distinct %v", n, repeated, distinct)
		}
	}
}

// TestPostprocessPerTypeIndependence: post-processing picks a best column
// per type, so two types annotated in different columns both survive.
func TestPostprocessPerTypeIndependence(t *testing.T) {
	tbl := table.New("two",
		table.Column{Header: "A", Type: table.Text},
		table.Column{Header: "B", Type: table.Text},
	)
	for i := 0; i < 3; i++ {
		if err := tbl.AppendRow("m"+string(rune('0'+i)), "r"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	res := &Result{Annotations: []Annotation{
		{Row: 1, Col: 1, Type: "museum", Score: 0.9},
		{Row: 2, Col: 1, Type: "museum", Score: 0.9},
		{Row: 1, Col: 2, Type: "restaurant", Score: 0.9},
		{Row: 3, Col: 2, Type: "restaurant", Score: 0.9},
	}}
	a := &Annotator{}
	a.Config().postprocess(tbl, res)
	kept := map[string]int{}
	for _, ann := range res.Annotations {
		kept[ann.Type]++
	}
	if kept["museum"] != 2 || kept["restaurant"] != 2 {
		t.Errorf("kept = %v, want both types intact", kept)
	}
}

// TestPostprocessEmptyResult: no annotations, no panic, empty scores.
func TestPostprocessEmptyResult(t *testing.T) {
	tbl := eq2Table(t)
	res := &Result{}
	a := &Annotator{}
	a.Config().postprocess(tbl, res)
	if len(res.Annotations) != 0 || len(res.ColumnScores) != 0 {
		t.Errorf("empty result mutated: %+v", res)
	}
}

// TestColumnTypes: the Eq. 2 scores yield a per-column semantic type — the
// paper's table-annotation step (a) as a byproduct.
func TestColumnTypes(t *testing.T) {
	tbl := table.New("ct",
		table.Column{Header: "A", Type: table.Text},
		table.Column{Header: "B", Type: table.Text},
	)
	for i := 0; i < 3; i++ {
		if err := tbl.AppendRow("m"+string(rune('0'+i)), "r"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	res := &Result{Annotations: []Annotation{
		{Row: 1, Col: 1, Type: "museum", Score: 0.9},
		{Row: 2, Col: 1, Type: "museum", Score: 0.9},
		{Row: 1, Col: 2, Type: "restaurant", Score: 0.9},
	}}
	a := &Annotator{}
	a.Config().postprocess(tbl, res)
	types := res.ColumnTypes()
	if types[1] != "museum" || types[2] != "restaurant" {
		t.Errorf("ColumnTypes = %v", types)
	}
	// Without post-processing there are no column scores.
	if (&Result{}).ColumnTypes() != nil {
		t.Error("ColumnTypes without postprocess should be nil")
	}
}

// TestPostprocessTieKeepsLeftmost: equal column scores keep the leftmost
// column deterministically.
func TestPostprocessTieKeepsLeftmost(t *testing.T) {
	tbl := table.New("tie",
		table.Column{Header: "A", Type: table.Text},
		table.Column{Header: "B", Type: table.Text},
	)
	if err := tbl.AppendRow("x", "y"); err != nil {
		t.Fatal(err)
	}
	res := &Result{Annotations: []Annotation{
		{Row: 1, Col: 1, Type: "museum", Score: 0.7},
		{Row: 1, Col: 2, Type: "museum", Score: 0.7},
	}}
	a := &Annotator{}
	a.Config().postprocess(tbl, res)
	if len(res.Annotations) != 1 || res.Annotations[0].Col != 1 {
		t.Errorf("tie resolution = %+v, want leftmost column", res.Annotations)
	}
}
