package annotate

import (
	"context"

	"repro/internal/disambig"
	"repro/internal/gazetteer"
	"repro/internal/table"
)

// GeoAnnotation is one Location-column cell resolved against the gazetteer:
// the §5.2.2 geocode+disambiguate machinery surfaced as an output product
// rather than only as internal query augmentation.
type GeoAnnotation struct {
	Row, Col int // 1-based, the paper's T(i,j)
	// Location is the chosen interpretation rendered with its full
	// container chain, e.g. "Pennsylvania Avenue, Washington, D.C., USA".
	Location string
	// Kind is the hierarchy level of the chosen location ("street",
	// "city", "state", "country").
	Kind string
	// City is the containing city's bare name; empty when the location
	// sits above city level.
	City string
	// Candidates is the size of the cell's candidate set before
	// disambiguation; 1 means the cell was unambiguous.
	Candidates int
	// Score is the chosen interpretation's share of the cell's final
	// score distribution (1 for unambiguous cells; see disambig).
	Score float64
	// Loc is the chosen interpretation's gazetteer ID, for callers that
	// compare against a gold truth (the scenario matrix's geo accuracy).
	// Not part of the wire format — the serving layer maps fields
	// explicitly and omits it.
	Loc gazetteer.LocID
}

// GeoStageStats describes one geo-stage run: how many cells geocoded and
// how the disambiguation graph decomposed. Zero when the table had nothing
// to geocode.
type GeoStageStats struct {
	// Cells is the number of cells that geocoded to at least one
	// candidate (= the interpretations fed to disambiguation).
	Cells int
	// Components, LargestComponent and Edges describe the voting graph's
	// connected-component decomposition (see disambig.Stats).
	Components       int
	LargestComponent int
	// PeakScratchBytes is the high-water mark of pooled per-component
	// scratch held concurrently during resolution — the O(largest
	// component × workers) memory bound made observable.
	PeakScratchBytes int64
}

func stageStats(cells int, st disambig.Stats) GeoStageStats {
	return GeoStageStats{
		Cells:            cells,
		Components:       st.Components,
		LargestComponent: st.LargestComponent,
		PeakScratchBytes: st.PeakScratchBytes,
	}
}

// geoResolution is one table's geocode+disambiguate result — the geocoded
// interpretations and the voting outcome — computed once and shared between
// the §5.2.2 spatial query augmentation and the GeoAnnotate output so a
// request wanting both never resolves the same table twice.
type geoResolution struct {
	table   *table.Table
	interps []disambig.Interpretation
	choice  map[disambig.CellRef]gazetteer.LocID
	detail  map[disambig.CellRef]map[gazetteer.LocID]float64
	stats   GeoStageStats
}

// resolveGeo geocodes the table's Location columns and runs the voting
// graph; nil when the config has no gazetteer or nothing geocodes. With a
// non-nil ctx it checks cancellation every geoCancelStride geocoded cells
// and once more before graph propagation — geocoding against a large
// gazetteer is the stage's dominant cost, and an abandoned request should
// release its admission slot instead of finishing work nobody reads. (The
// Disambiguate stage inside plan() passes no ctx, preserving its historical
// run-to-completion semantics.)
func (c Config) resolveGeo(ctx context.Context, t *table.Table) (*geoResolution, error) {
	interps, err := c.geocodeCells(ctx, t)
	if err != nil || len(interps) == 0 {
		return nil, err
	}
	choice, detail, st := disambig.ResolveScoresOpt(interps, c.Gazetteer, c.geoOptions())
	return &geoResolution{
		table:   t,
		interps: interps,
		choice:  choice,
		detail:  detail,
		stats:   stageStats(len(interps), st),
	}, nil
}

// geocodeCells geocodes the table's Location columns into the
// interpretation list disambiguation consumes, in column-major cell order.
// Nil when the config has no gazetteer or nothing geocodes.
func (c Config) geocodeCells(ctx context.Context, t *table.Table) ([]disambig.Interpretation, error) {
	if c.Gazetteer == nil {
		return nil, nil
	}
	const geoCancelStride = 64
	var interps []disambig.Interpretation
	cells := 0
	for _, j := range t.ColumnIndexesOfType(table.Location) {
		for i := 1; i <= t.NumRows(); i++ {
			if ctx != nil && cells%geoCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			cells++
			cands := c.Gazetteer.Geocode(t.Cell(i, j))
			if len(cands) == 0 {
				continue
			}
			interps = append(interps, disambig.Interpretation{
				Cell:       disambig.CellRef{Row: i, Col: j},
				Candidates: cands,
			})
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return interps, nil
}

func (c Config) geoOptions() disambig.Options {
	return disambig.Options{Workers: c.GeoWorkers}
}

// geoFor returns the precomputed resolution when one was prepared for THIS
// table (see PrepareGeo), resolving freshly otherwise.
func (c Config) geoFor(ctx context.Context, t *table.Table) (*geoResolution, error) {
	if c.geo != nil && c.geo.table == t {
		return c.geo, nil
	}
	return c.resolveGeo(ctx, t)
}

// PrepareGeo returns a copy of the config carrying the table's resolved
// geography, so a subsequent Annotate (whose Disambiguate stage needs the
// per-row cities) and GeoAnnotate (whose output is the resolution itself)
// on the SAME table share one geocode+vote pass. The precomputation is
// bound to the given table; runs over any other table resolve freshly, so a
// prepared config is never wrong, only warmer. The error is ctx.Err() when
// the context cancels mid-resolution.
func (c Config) PrepareGeo(ctx context.Context, t *table.Table) (Config, error) {
	res, err := c.resolveGeo(ctx, t)
	if err != nil {
		return c, err
	}
	c.geo = res
	return c, nil
}

// GeoAnnotate runs the opt-in geocode+disambiguate stage over one table:
// every Location-column cell is geocoded to its candidate interpretations,
// the §5.2.2 voting graph resolves the ambiguity table-wide, and each
// geocodable cell yields one GeoAnnotation, in column-major cell order.
// Cells the gazetteer cannot geocode are omitted. Returns nil when the
// config has no gazetteer or the table has no geocodable cells.
//
// The stage executes from the immutable Config like every other pipeline
// stage: it mutates nothing, so one Config may run any number of concurrent
// GeoAnnotate calls, and it costs no search-engine queries — only gazetteer
// lookups and graph propagation (or neither, after PrepareGeo).
// Cancellation is observed between geocoded cells and before propagation;
// the error is then ctx.Err(), never a truncated result.
func (c Config) GeoAnnotate(ctx context.Context, t *table.Table) ([]GeoAnnotation, error) {
	gas, _, err := c.GeoAnnotateStats(ctx, t)
	return gas, err
}

// geoStreamThreshold is the interpretation count above which
// GeoAnnotateStats switches from the shared batch resolution to the
// streaming per-component pipeline. Variable so tests can force the
// streaming path on small tables.
var geoStreamThreshold = 4096

// GeoAnnotateStats is GeoAnnotate plus the stage's decomposition
// statistics (component counts and the peak pooled-scratch high-water
// mark), for serving layers that surface them.
//
// Huge tables — above geoStreamThreshold geocoded cells, with no
// resolution prepared by PrepareGeo — take a streaming path: components
// flow straight from the disambiguation worker pool into GeoAnnotations,
// so the full per-cell score maps are never materialized; only the
// annotations themselves (and per-component scratch, pooled and bounded)
// are held. The output is byte-identical to the batch path: annotations
// are merged back into deterministic column-major (col, row) cell order,
// and scores are bit-identical by the disambig component contract.
func (c Config) GeoAnnotateStats(ctx context.Context, t *table.Table) ([]GeoAnnotation, GeoStageStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, GeoStageStats{}, err
	}
	res := c.geo
	if res == nil || res.table != t {
		interps, err := c.geocodeCells(ctx, t)
		if err != nil || len(interps) == 0 {
			return nil, GeoStageStats{}, err
		}
		if len(interps) >= geoStreamThreshold {
			return c.geoAnnotateStream(interps)
		}
		choice, detail, st := disambig.ResolveScoresOpt(interps, c.Gazetteer, c.geoOptions())
		res = &geoResolution{
			table:   t,
			interps: interps,
			choice:  choice,
			detail:  detail,
			stats:   stageStats(len(interps), st),
		}
	}
	out := make([]GeoAnnotation, 0, len(res.interps))
	for _, it := range res.interps {
		loc := res.choice[it.Cell]
		if loc == gazetteer.NoLocation {
			continue // unreachable: every interpretation has candidates
		}
		ga := c.geoAnnotation(it, loc, res.detail[it.Cell][loc])
		out = append(out, ga)
	}
	return out, res.stats, nil
}

// geoAnnotateStream resolves huge tables component by component: each
// component's cells are annotated the moment its scores converge, from
// whichever worker finished it, into a slot per interpretation — writes
// are disjoint because the geocode pass emits one interpretation per cell
// — then compacted back into the deterministic column-major order the
// batch path produces.
func (c Config) geoAnnotateStream(interps []disambig.Interpretation) ([]GeoAnnotation, GeoStageStats, error) {
	slot := make(map[disambig.CellRef]int, len(interps))
	for i, it := range interps {
		slot[it.Cell] = i
	}
	out := make([]GeoAnnotation, len(interps))
	st := disambig.ResolveStream(interps, c.Gazetteer, c.geoOptions(),
		func(cell disambig.CellRef, loc gazetteer.LocID, scores map[gazetteer.LocID]float64) {
			if loc == gazetteer.NoLocation {
				return // unreachable: every interpretation has candidates
			}
			i := slot[cell]
			out[i] = c.geoAnnotation(interps[i], loc, scores[loc])
		})
	compact := out[:0]
	for _, ga := range out {
		if ga.Loc != gazetteer.NoLocation {
			compact = append(compact, ga)
		}
	}
	return compact, stageStats(len(interps), st), nil
}

// geoAnnotation renders one resolved cell.
func (c Config) geoAnnotation(it disambig.Interpretation, loc gazetteer.LocID, score float64) GeoAnnotation {
	ga := GeoAnnotation{
		Row:        it.Cell.Row,
		Col:        it.Cell.Col,
		Location:   c.Gazetteer.FullName(loc),
		Kind:       c.Gazetteer.Kind(loc).String(),
		Candidates: len(it.Candidates),
		Score:      score,
		Loc:        loc,
	}
	if city := c.Gazetteer.CityOf(loc); city != gazetteer.NoLocation {
		ga.City = c.Gazetteer.Name(city)
	}
	return ga
}
