package annotate

import (
	"context"

	"repro/internal/disambig"
	"repro/internal/gazetteer"
	"repro/internal/table"
)

// GeoAnnotation is one Location-column cell resolved against the gazetteer:
// the §5.2.2 geocode+disambiguate machinery surfaced as an output product
// rather than only as internal query augmentation.
type GeoAnnotation struct {
	Row, Col int // 1-based, the paper's T(i,j)
	// Location is the chosen interpretation rendered with its full
	// container chain, e.g. "Pennsylvania Avenue, Washington, D.C., USA".
	Location string
	// Kind is the hierarchy level of the chosen location ("street",
	// "city", "state", "country").
	Kind string
	// City is the containing city's bare name; empty when the location
	// sits above city level.
	City string
	// Candidates is the size of the cell's candidate set before
	// disambiguation; 1 means the cell was unambiguous.
	Candidates int
	// Score is the chosen interpretation's share of the cell's final
	// score distribution (1 for unambiguous cells; see disambig).
	Score float64
	// Loc is the chosen interpretation's gazetteer ID, for callers that
	// compare against a gold truth (the scenario matrix's geo accuracy).
	// Not part of the wire format — the serving layer maps fields
	// explicitly and omits it.
	Loc gazetteer.LocID
}

// geoResolution is one table's geocode+disambiguate result — the geocoded
// interpretations and the voting outcome — computed once and shared between
// the §5.2.2 spatial query augmentation and the GeoAnnotate output so a
// request wanting both never resolves the same table twice.
type geoResolution struct {
	table   *table.Table
	interps []disambig.Interpretation
	choice  map[disambig.CellRef]gazetteer.LocID
	detail  map[disambig.CellRef]map[gazetteer.LocID]float64
}

// resolveGeo geocodes the table's Location columns and runs the voting
// graph; nil when the config has no gazetteer or nothing geocodes. With a
// non-nil ctx it checks cancellation every geoCancelStride geocoded cells
// and once more before graph propagation — geocoding against a large
// gazetteer is the stage's dominant cost, and an abandoned request should
// release its admission slot instead of finishing work nobody reads. (The
// Disambiguate stage inside plan() passes no ctx, preserving its historical
// run-to-completion semantics.)
func (c Config) resolveGeo(ctx context.Context, t *table.Table) (*geoResolution, error) {
	if c.Gazetteer == nil {
		return nil, nil
	}
	const geoCancelStride = 64
	var interps []disambig.Interpretation
	cells := 0
	for _, j := range t.ColumnIndexesOfType(table.Location) {
		for i := 1; i <= t.NumRows(); i++ {
			if ctx != nil && cells%geoCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			cells++
			cands := c.Gazetteer.Geocode(t.Cell(i, j))
			if len(cands) == 0 {
				continue
			}
			interps = append(interps, disambig.Interpretation{
				Cell:       disambig.CellRef{Row: i, Col: j},
				Candidates: cands,
			})
		}
	}
	if len(interps) == 0 {
		return nil, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	choice, detail := disambig.ResolveScores(interps, c.Gazetteer)
	return &geoResolution{table: t, interps: interps, choice: choice, detail: detail}, nil
}

// geoFor returns the precomputed resolution when one was prepared for THIS
// table (see PrepareGeo), resolving freshly otherwise.
func (c Config) geoFor(ctx context.Context, t *table.Table) (*geoResolution, error) {
	if c.geo != nil && c.geo.table == t {
		return c.geo, nil
	}
	return c.resolveGeo(ctx, t)
}

// PrepareGeo returns a copy of the config carrying the table's resolved
// geography, so a subsequent Annotate (whose Disambiguate stage needs the
// per-row cities) and GeoAnnotate (whose output is the resolution itself)
// on the SAME table share one geocode+vote pass. The precomputation is
// bound to the given table; runs over any other table resolve freshly, so a
// prepared config is never wrong, only warmer. The error is ctx.Err() when
// the context cancels mid-resolution.
func (c Config) PrepareGeo(ctx context.Context, t *table.Table) (Config, error) {
	res, err := c.resolveGeo(ctx, t)
	if err != nil {
		return c, err
	}
	c.geo = res
	return c, nil
}

// GeoAnnotate runs the opt-in geocode+disambiguate stage over one table:
// every Location-column cell is geocoded to its candidate interpretations,
// the §5.2.2 voting graph resolves the ambiguity table-wide, and each
// geocodable cell yields one GeoAnnotation, in column-major cell order.
// Cells the gazetteer cannot geocode are omitted. Returns nil when the
// config has no gazetteer or the table has no geocodable cells.
//
// The stage executes from the immutable Config like every other pipeline
// stage: it mutates nothing, so one Config may run any number of concurrent
// GeoAnnotate calls, and it costs no search-engine queries — only gazetteer
// lookups and graph propagation (or neither, after PrepareGeo).
// Cancellation is observed between geocoded cells and before propagation;
// the error is then ctx.Err(), never a truncated result.
func (c Config) GeoAnnotate(ctx context.Context, t *table.Table) ([]GeoAnnotation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := c.geoFor(ctx, t)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, nil
	}
	out := make([]GeoAnnotation, 0, len(res.interps))
	for _, it := range res.interps {
		loc := res.choice[it.Cell]
		if loc == gazetteer.NoLocation {
			continue // unreachable: every interpretation has candidates
		}
		ga := GeoAnnotation{
			Row:        it.Cell.Row,
			Col:        it.Cell.Col,
			Location:   c.Gazetteer.FullName(loc),
			Kind:       c.Gazetteer.Kind(loc).String(),
			Candidates: len(it.Candidates),
			Score:      res.detail[it.Cell][loc],
			Loc:        loc,
		}
		if city := c.Gazetteer.CityOf(loc); city != gazetteer.NoLocation {
			ga.City = c.Gazetteer.Name(city)
		}
		out = append(out, ga)
	}
	return out, nil
}
