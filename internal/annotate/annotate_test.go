package annotate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/gazetteer"
	"repro/internal/search"
	"repro/internal/table"
)

// fixture wires a miniature end-to-end world: two types, a handful of
// entities with themed pages, one ambiguous name ("Melisse": restaurant in
// Santa Monica + jazz label), and a classifier trained on themed snippets.
type fixture struct {
	engine     *search.Engine
	classifier classify.Classifier
	gaz        *gazetteer.Gazetteer
	types      []string
}

var museumVocab = []string{"museum", "gallery", "exhibition", "collection", "paintings", "curator", "artifacts", "sculpture"}
var restVocab = []string{"restaurant", "menu", "cuisine", "chef", "dining", "dishes", "reservations", "tasting"}
var jazzVocab = []string{"jazz", "label", "records", "vinyl", "saxophone", "quartet", "improvisation", "releases"}

func themed(rng *rand.Rand, name string, vocab []string, extra ...string) string {
	words := []string{name}
	for len(words) < 40 {
		if len(extra) > 0 && rng.Intn(5) == 0 {
			words = append(words, extra[rng.Intn(len(extra))])
		} else {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
	}
	return strings.Join(words, " ")
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ix := search.NewIndex()
	add := func(title, body string) {
		ix.Add(search.Document{URL: fmt.Sprintf("u%d", ix.Len()), Title: title, Body: body})
	}
	museums := []string{"Musée Lavande", "National Museum of Glass", "Harbor Gallery of Art"}
	restaurants := []string{"Chez Martin", "The Golden Fig", "Melisse"}
	for _, m := range museums {
		for p := 0; p < 6; p++ {
			add(m, themed(rng, m, museumVocab))
		}
	}
	for _, r := range restaurants {
		for p := 0; p < 6; p++ {
			extra := []string{}
			if r == "Melisse" {
				extra = []string{"Santa", "Monica", "Santa", "Monica"}
			}
			add(r, themed(rng, r, restVocab, extra...))
		}
	}
	// The jazz label sharing the name Melisse: enough pages to crowd the
	// unaugmented top-k.
	for p := 0; p < 8; p++ {
		add("Melisse — jazz label", themed(rng, "Melisse", jazzVocab))
	}

	var train classify.Dataset
	for i := 0; i < 150; i++ {
		train.Add(themed(rng, "", museumVocab), "museum")
		train.Add(themed(rng, "", restVocab), "restaurant")
	}
	clf := classify.LinearSVMTrainer{Seed: 2}.Train(train)

	return &fixture{
		engine:     search.NewEngine(ix),
		classifier: clf,
		gaz:        gazetteer.Synthetic(3),
		types:      []string{"museum", "restaurant"},
	}
}

func (f *fixture) annotator() *Annotator {
	return &Annotator{
		Engine:     f.engine,
		Classifier: f.classifier,
		Types:      f.types,
		K:          10,
	}
}

func poiTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("pois",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Phone", Type: table.Text},
		table.Column{Header: "Notes", Type: table.Text},
	)
	rows := [][]string{
		{"Musée Lavande", "(410) 555-0101", "A well loved spot that visitors enjoy for many reasons all year round in town"},
		{"National Museum of Glass", "(410) 555-0102", "worth a visit"},
		{"Chez Martin", "(410) 555-0103", "book ahead"},
		{"The Golden Fig", "(410) 555-0104", "good value"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func find(res *Result, row, col int) (Annotation, bool) {
	for _, a := range res.Annotations {
		if a.Row == row && a.Col == col {
			return a, true
		}
	}
	return Annotation{}, false
}

func TestPreprocessorRules(t *testing.T) {
	var p Preprocessor
	cases := map[string]SkipReason{
		"":                     SkipEmpty,
		"  ":                   SkipEmpty,
		"(410) 555-0199":       SkipPhone,
		"+33 1 44 55 66 77":    SkipPhone,
		"http://example.com/x": SkipURL,
		"www.example.com":      SkipURL,
		"info@example.com":     SkipEmail,
		"12345":                SkipNumeric,
		"3.14":                 SkipNumeric,
		"1,000,000":            SkipNumeric,
		"48.8566, 2.3522":      SkipCoords,
		"this is a very long verbose description of the place spanning many words": SkipLong,
		"Musée du Louvre": SkipNone,
		"Chez Panisse":    SkipNone,
		"Melisse":         SkipNone,
	}
	for in, want := range cases {
		if got := p.Check(in); got != want {
			t.Errorf("Check(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPreprocessorColumnFilter(t *testing.T) {
	var p Preprocessor
	if !p.SkipColumn(table.Location) || !p.SkipColumn(table.Date) || !p.SkipColumn(table.Number) {
		t.Error("default preprocessor must skip Location/Date/Number columns")
	}
	if p.SkipColumn(table.Text) {
		t.Error("Text columns must not be skipped")
	}
	custom := Preprocessor{SkipColumnTypes: []table.ColumnType{table.Date}}
	if custom.SkipColumn(table.Number) {
		t.Error("custom skip list ignored")
	}
}

func TestAnnotateTableFindsEntities(t *testing.T) {
	f := newFixture(t)
	res := f.annotator().AnnotateTable(poiTable(t))

	wantTypes := map[int]string{1: "museum", 2: "museum", 3: "restaurant", 4: "restaurant"}
	for row, wantType := range wantTypes {
		ann, ok := find(res, row, 1)
		if !ok {
			t.Errorf("row %d not annotated", row)
			continue
		}
		if ann.Type != wantType {
			t.Errorf("row %d annotated %q, want %q", row, ann.Type, wantType)
		}
		if ann.Score <= 0.5 || ann.Score > 1.0 {
			t.Errorf("row %d score %v outside (0.5, 1]", row, ann.Score)
		}
	}
	// Phone cells never get annotated.
	if _, ok := find(res, 1, 2); ok {
		t.Error("phone cell annotated")
	}
	if res.Skipped[SkipPhone] != 4 {
		t.Errorf("phone skips = %d, want 4", res.Skipped[SkipPhone])
	}
	if res.Skipped[SkipLong] == 0 {
		t.Error("verbose description not skipped")
	}
}

func TestMajorityRule(t *testing.T) {
	cases := []struct {
		counts map[string]int
		k      int
		want   string
		ok     bool
	}{
		{map[string]int{"museum": 8, "restaurant": 2}, 10, "museum", true},
		{map[string]int{"museum": 5, "restaurant": 5}, 10, "", false}, // tie
		{map[string]int{"museum": 5}, 10, "", false},                  // exactly k/2
		{map[string]int{"museum": 6}, 10, "museum", true},
		{map[string]int{}, 10, "", false},
		{map[string]int{"museum": 2}, 3, "museum", true}, // short result list
		{nil, 0, "", false},
	}
	for _, c := range cases {
		got, score, ok := majorityType(c.counts, c.k)
		if ok != c.ok || got != c.want {
			t.Errorf("majorityType(%v, %d) = (%q, %v), want (%q, %v)", c.counts, c.k, got, ok, c.want, c.ok)
		}
		if ok && score != float64(c.counts[got])/float64(c.k) {
			t.Errorf("score = %v, want Eq.1 value", score)
		}
	}
}

func TestQueryCacheDeduplicates(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("dup", table.Column{Header: "Name", Type: table.Text})
	for i := 0; i < 5; i++ {
		if err := tbl.AppendRow("Musée Lavande"); err != nil {
			t.Fatal(err)
		}
	}
	res := f.annotator().AnnotateTable(tbl)
	if res.Queries != 1 {
		t.Errorf("queries = %d, want 1 (cache)", res.Queries)
	}
	if len(res.Annotations) != 5 {
		t.Errorf("annotations = %d, want 5 (cache replays verdicts)", len(res.Annotations))
	}
}

// TestPostprocessingKillsRepeatedTypeWords reproduces Figure 8: a second
// column holding the literal word "Museum" in many cells gets (mis)annotated
// by the classifier, and Eq. 2 eliminates it because column 1 has distinct
// high-scoring values while column 2's repeats are damped by 1/o_ij.
func TestPostprocessingKillsRepeatedTypeWords(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("fig8",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Type", Type: table.Text},
	)
	rows := [][]string{
		{"Musée Lavande", "Museum"},
		{"National Museum of Glass", "Museum"},
		{"Harbor Gallery of Art", "Museum"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}

	plain := f.annotator()
	res := plain.AnnotateTable(tbl)
	col2Before := 0
	for _, a := range res.Annotations {
		if a.Col == 2 {
			col2Before++
		}
	}

	post := f.annotator()
	post.Postprocess = true
	resPost := post.AnnotateTable(tbl)
	for _, a := range resPost.Annotations {
		if a.Col == 2 {
			t.Errorf("post-processing kept spurious annotation in column 2: %+v", a)
		}
	}
	// Column 1 annotations survive.
	if _, ok := find(resPost, 1, 1); !ok {
		t.Error("post-processing dropped the genuine name column")
	}
	if resPost.ColumnScores["museum"] == nil {
		t.Error("column scores not reported")
	}
	if col2Before > 0 {
		s1 := resPost.ColumnScores["museum"][1]
		s2 := resPost.ColumnScores["museum"][2]
		if s1 <= s2 {
			t.Errorf("Eq.2 scores: col1=%v col2=%v, want col1 > col2", s1, s2)
		}
	}
}

// TestDisambiguationResolvesAmbiguousName reproduces the Melisse example of
// §5.2.2: without spatial augmentation the jazz-label pages crowd the top-k
// and the majority fails; appending the city from the row's address column
// recovers the restaurant annotation.
func TestDisambiguationResolvesAmbiguousName(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("fig4",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Address", Type: table.Location},
	)
	if err := tbl.AppendRow("Melisse", "Ocean Drive, Santa Monica"); err != nil {
		t.Fatal(err)
	}

	plain := f.annotator()
	resPlain := plain.AnnotateTable(tbl)
	plainAnn, plainOK := find(resPlain, 1, 1)

	dis := f.annotator()
	dis.Disambiguate = true
	dis.Gazetteer = f.gaz
	resDis := dis.AnnotateTable(tbl)
	ann, ok := find(resDis, 1, 1)
	if !ok {
		t.Fatal("disambiguated run did not annotate Melisse")
	}
	if ann.Type != "restaurant" {
		t.Errorf("Melisse annotated %q, want restaurant", ann.Type)
	}
	// The augmented query must do at least as well as the plain one.
	if plainOK && plainAnn.Type == "restaurant" && ann.Score < plainAnn.Score {
		t.Errorf("disambiguation lowered the score: %v -> %v", plainAnn.Score, ann.Score)
	}
	// Address cells are never annotated (Location column filter).
	if _, bad := find(resDis, 1, 2); bad {
		t.Error("Location column cell annotated")
	}
}

func TestTINBaseline(t *testing.T) {
	tbl := table.New("tin",
		table.Column{Header: "Name", Type: table.Text},
	)
	for _, name := range []string{"Louvre Museum", "National Museums of Kenya", "Chez Martin", "The Museum Cafe"} {
		if err := tbl.AppendRow(name); err != nil {
			t.Fatal(err)
		}
	}
	res := TIN(tbl, []string{"museum", "restaurant"}, Preprocessor{})
	if ann, ok := find(res, 1, 1); !ok || ann.Type != "museum" || ann.Score != 1.0 {
		t.Errorf("TIN missed 'Louvre Museum': %+v ok=%v", ann, ok)
	}
	// Stemming lets plural "Museums" match.
	if _, ok := find(res, 2, 1); !ok {
		t.Error("TIN missed plural 'Museums'")
	}
	if _, ok := find(res, 3, 1); ok {
		t.Error("TIN annotated 'Chez Martin' which lacks the type word")
	}
}

func TestTISBaseline(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("tis", table.Column{Header: "Name", Type: table.Text})
	for _, name := range []string{"Musée Lavande", "Chez Martin"} {
		if err := tbl.AppendRow(name); err != nil {
			t.Fatal(err)
		}
	}
	res := f.annotator().TIS(tbl)
	// Museum pages use the word "museum" densely, so TIS should catch
	// the museum; either way scores obey Eq. 1 bounds.
	for _, a := range res.Annotations {
		if a.Score <= 0.5 || a.Score > 1 {
			t.Errorf("TIS score %v outside (0.5, 1]", a.Score)
		}
	}
	if ann, ok := find(res, 1, 1); ok && ann.Type != "museum" {
		t.Errorf("TIS mislabeled museum as %q", ann.Type)
	}
}

func TestCatalogueAnnotator(t *testing.T) {
	cat := &CatalogueAnnotator{Catalogue: map[string]string{
		"musée lavande": "museum",
		"chez martin":   "restaurant",
	}}
	tbl := poiTable(t)
	res := cat.AnnotateTable(tbl, []string{"museum", "restaurant"})
	if len(res.Annotations) != 2 {
		t.Fatalf("catalogue annotated %d cells, want 2 (only known entities)", len(res.Annotations))
	}
	// Unknown entities are invisible to the catalogue — the paper's core
	// argument.
	if _, ok := find(res, 2, 1); ok {
		t.Error("catalogue annotated an unknown entity")
	}
	// Type restriction honoured.
	resM := cat.AnnotateTable(tbl, []string{"museum"})
	for _, a := range resM.Annotations {
		if a.Type != "museum" {
			t.Errorf("type restriction violated: %+v", a)
		}
	}
}

// TestCataloguePropagationFailsOnMixedTables reproduces the introduction's
// argument: column-majority propagation mislabels rows of a mixed-type table
// (Figure 2).
func TestCataloguePropagationFailsOnMixedTables(t *testing.T) {
	cat := &CatalogueAnnotator{
		Catalogue: map[string]string{
			"musée lavande":            "museum",
			"national museum of glass": "museum",
		},
		PropagateColumnType: true,
	}
	tbl := table.New("mixed", table.Column{Header: "Name", Type: table.Text})
	for _, name := range []string{"Musée Lavande", "National Museum of Glass", "Chez Martin", "The Golden Fig"} {
		if err := tbl.AppendRow(name); err != nil {
			t.Fatal(err)
		}
	}
	res := cat.AnnotateTable(tbl, []string{"museum", "restaurant"})
	// The two restaurants get wrongly propagated as museums.
	wrong := 0
	for _, a := range res.Annotations {
		if a.Row >= 3 && a.Type == "museum" {
			wrong++
		}
	}
	if wrong != 2 {
		t.Errorf("propagation mislabels = %d, want 2 (the Figure 2 failure mode)", wrong)
	}
}

func TestAnnotatorDefaultK(t *testing.T) {
	a := &Annotator{}
	if a.k() != 10 {
		t.Errorf("default k = %d, want 10", a.k())
	}
	a.K = 5
	if a.k() != 5 {
		t.Errorf("k = %d, want 5", a.k())
	}
}
