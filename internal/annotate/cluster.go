package annotate

import (
	"math"

	"repro/internal/search"
	"repro/internal/textproc"
)

// clusterDecide implements the ambiguity extension sketched in §5.2 of the
// paper ("a more general solution would be clustering the results returned
// by the search engine and classify separately the snippets that belong to
// the different clusters"): the top-k snippets are grouped into sense
// clusters with greedy leader clustering under cosine similarity, the
// largest cluster is assumed to be the dominant sense of the query, and the
// Eq. 1 majority rule is applied within that cluster only. The score keeps
// Eq. 1's form, s_t over the number of snippets retrieved, so scores remain
// comparable with the flat rule for the Eq. 2 post-processing.
func (c Config) clusterDecide(results []search.Result, gamma map[string]struct{}) (string, float64, bool) {
	if len(results) == 0 {
		return "", 0, false
	}
	feats := make([]textproc.Features, len(results))
	for i, r := range results {
		feats[i] = textproc.Extract(r.Snippet)
	}
	clusters := leaderCluster(feats, c.ClusterThreshold)

	// The dominant sense is the biggest cluster; ties keep the earlier
	// cluster (whose leader ranked higher).
	best := 0
	for ci := 1; ci < len(clusters); ci++ {
		if len(clusters[ci]) > len(clusters[best]) {
			best = ci
		}
	}
	counts := make(map[string]int, len(c.Types))
	for _, idx := range clusters[best] {
		pred := c.Classifier.Predict(feats[idx])
		if _, in := gamma[pred]; in {
			counts[pred]++
		}
	}
	typ, _, ok := majorityType(counts, len(clusters[best]))
	if !ok {
		return "", 0, false
	}
	return typ, float64(counts[typ]) / float64(len(results)), true
}

// leaderCluster performs greedy leader clustering: each feature vector joins
// the first cluster whose leader is at least `threshold` cosine-similar,
// otherwise it founds a new cluster. Returns clusters as index lists in
// founding order.
func leaderCluster(feats []textproc.Features, threshold float64) [][]int {
	var clusters [][]int
	var leaders []textproc.Features
	for i, f := range feats {
		placed := false
		for ci, leader := range leaders {
			if cosine(f, leader) >= threshold {
				clusters[ci] = append(clusters[ci], i)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, []int{i})
			leaders = append(leaders, f)
		}
	}
	return clusters
}

// cosine returns the cosine similarity of two sparse vectors; 0 when either
// is empty.
func cosine(a, b textproc.Features) float64 {
	na, nb := a.Norm2(), b.Norm2()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / math.Sqrt(na*nb)
}
