package annotate

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/gazetteer"
	"repro/internal/table"
)

// geoTestTable builds a Figure 7-shaped table: an address column and a city
// column, both Location-typed, whose correct interpretations cohere along
// rows, plus a Text column the geo stage must ignore.
func geoTestTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("geo",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Address", Type: table.Location},
		table.Column{Header: "City", Type: table.Location},
	)
	for _, row := range [][]string{
		{"White House", "1600 Pennsylvania Avenue", "Washington"},
		{"Dorm", "8 Wofford Lane", "College Park"},
		{"Diner", "2 Clarksville Street", "Paris"},
	} {
		if err := tbl.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestGeoAnnotate(t *testing.T) {
	g := gazetteer.Synthetic(1)
	cfg := Config{Gazetteer: g.Freeze()}
	tbl := geoTestTable(t)

	gas, err := cfg.GeoAnnotate(context.Background(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(gas) != 6 {
		t.Fatalf("got %d geo annotations, want 6 (both Location columns, 3 rows): %+v", len(gas), gas)
	}
	// Column-major deterministic order.
	for k := 1; k < len(gas); k++ {
		prev, cur := gas[k-1], gas[k]
		if cur.Col < prev.Col || (cur.Col == prev.Col && cur.Row <= prev.Row) {
			t.Fatalf("annotations not in column-major order: %+v before %+v", prev, cur)
		}
	}
	byCell := map[[2]int]GeoAnnotation{}
	for _, ga := range gas {
		byCell[[2]int{ga.Row, ga.Col}] = ga
		if ga.Location == "" || ga.Kind == "" {
			t.Errorf("annotation %+v missing location or kind", ga)
		}
		if ga.Candidates < 1 {
			t.Errorf("annotation %+v has no candidates", ga)
		}
		if ga.Score <= 0 || ga.Score > 1 {
			t.Errorf("annotation %+v has out-of-range score", ga)
		}
	}
	for i := 1; i <= 3; i++ {
		street, city := byCell[[2]int{i, 2}], byCell[[2]int{i, 3}]
		if street.Kind != "street" {
			t.Errorf("row %d address resolved to kind %q, want street (%+v)", i, street.Kind, street)
		}
		if city.Kind != "city" {
			t.Errorf("row %d city cell resolved to kind %q, want city (%+v)", i, city.Kind, city)
		}
		if street.Candidates < 2 || city.Candidates < 2 {
			t.Errorf("row %d should be ambiguous on both columns: %+v / %+v", i, street, city)
		}
	}
	// The paper's headline case: the street+city row coherence picks
	// Washington, D.C. over the other Washingtons for the city cell.
	if wash := byCell[[2]int{1, 3}]; wash.City != "Washington" {
		t.Errorf("city cell of row 1 = %+v, want a Washington", wash)
	}
}

// TestGeoAnnotateCoherence pins the cross-column voting: the street cell's
// containing city and the city cell's resolution agree on every row.
func TestGeoAnnotateCoherence(t *testing.T) {
	cfg := Config{Gazetteer: gazetteer.Synthetic(1).Freeze()}
	gas, err := cfg.GeoAnnotate(context.Background(), geoTestTable(t))
	if err != nil {
		t.Fatal(err)
	}
	cityOfRow := map[int]string{}
	for _, ga := range gas {
		if ga.Col == 3 {
			cityOfRow[ga.Row] = ga.City
		}
	}
	for _, ga := range gas {
		if ga.Col != 2 {
			continue
		}
		if want := cityOfRow[ga.Row]; ga.City != want {
			t.Errorf("row %d: street resolved into city %q, city cell resolved to %q (%+v)", ga.Row, ga.City, want, ga)
		}
	}
}

func TestGeoAnnotateFrozenMatchesBuilder(t *testing.T) {
	g := gazetteer.Synthetic(1)
	tbl := geoTestTable(t)
	builderGas, err := Config{Gazetteer: g}.GeoAnnotate(context.Background(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	frozenGas, err := Config{Gazetteer: g.Freeze()}.GeoAnnotate(context.Background(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(builderGas, frozenGas) {
		t.Errorf("frozen gazetteer geo annotations diverge:\n builder %+v\n frozen  %+v", builderGas, frozenGas)
	}
}

func TestGeoAnnotateEdgeCases(t *testing.T) {
	g := gazetteer.Synthetic(1).Freeze()
	ctx := context.Background()

	// No gazetteer configured: the stage is a no-op.
	if gas, err := (Config{}).GeoAnnotate(ctx, geoTestTable(t)); err != nil || gas != nil {
		t.Errorf("no-gazetteer GeoAnnotate = (%v, %v), want (nil, nil)", gas, err)
	}

	// No Location columns.
	plain := table.New("plain", table.Column{Header: "Name", Type: table.Text})
	if err := plain.AppendRow("Paris"); err != nil {
		t.Fatal(err)
	}
	if gas, err := (Config{Gazetteer: g}).GeoAnnotate(ctx, plain); err != nil || gas != nil {
		t.Errorf("no-location-column GeoAnnotate = (%v, %v), want (nil, nil)", gas, err)
	}

	// Ungeocodable cells are omitted.
	partial := table.New("partial", table.Column{Header: "Where", Type: table.Location})
	for _, cell := range []string{"99 Nowhere Boulevard, Atlantis", "Washington, D.C.", ""} {
		if err := partial.AppendRow(cell); err != nil {
			t.Fatal(err)
		}
	}
	gas, err := (Config{Gazetteer: g}).GeoAnnotate(ctx, partial)
	if err != nil {
		t.Fatal(err)
	}
	if len(gas) != 1 || gas[0].Row != 2 || gas[0].Kind != "city" {
		t.Errorf("partial table geo annotations = %+v, want exactly the Washington cell", gas)
	}

	// Cancellation.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := (Config{Gazetteer: g}).GeoAnnotate(cancelled, geoTestTable(t)); err != context.Canceled {
		t.Errorf("cancelled GeoAnnotate error = %v, want context.Canceled", err)
	}
}

// TestPrepareGeo: a prepared config shares one resolution between
// resolveRowCities and GeoAnnotate without changing either's output, and a
// precomputation bound to one table never leaks into runs over another.
func TestPrepareGeo(t *testing.T) {
	cfg := Config{Gazetteer: gazetteer.Synthetic(1).Freeze()}
	tbl := geoTestTable(t)
	ctx := context.Background()

	prepared := mustPrepare(t, cfg, tbl)
	if prepared.geo == nil || prepared.geo.table != tbl {
		t.Fatal("PrepareGeo did not bind a resolution to the table")
	}
	want, err := cfg.GeoAnnotate(ctx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prepared.GeoAnnotate(ctx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("prepared GeoAnnotate diverges:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(prepared.resolveRowCities(tbl), cfg.resolveRowCities(tbl)) {
		t.Error("prepared resolveRowCities diverges from the fresh pass")
	}

	// A different table must resolve freshly, not reuse the binding.
	other := table.New("other", table.Column{Header: "Where", Type: table.Location})
	if err := other.AppendRow("Washington, D.C."); err != nil {
		t.Fatal(err)
	}
	fromPrepared, err := prepared.GeoAnnotate(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := cfg.GeoAnnotate(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromPrepared, fresh) {
		t.Errorf("prepared config leaked its binding into another table:\n got %+v\nwant %+v", fromPrepared, fresh)
	}
}

// TestAnnotatorTypedNilGazetteer: the legacy facade's interface-typed
// Gazetteer field must treat a typed-nil pointer — the pattern pre-split
// callers used against the concrete field — exactly like nil.
func TestAnnotatorTypedNilGazetteer(t *testing.T) {
	var b *gazetteer.Builder
	var f *gazetteer.Frozen
	for name, g := range map[string]gazetteer.Geo{"untyped nil": nil, "nil builder": b, "nil frozen": f} {
		a := &Annotator{Disambiguate: true, Gazetteer: g}
		if cfg := a.Config(); cfg.Gazetteer != nil {
			t.Errorf("%s: Config.Gazetteer = %#v, want nil interface", name, cfg.Gazetteer)
		}
	}
	real := gazetteer.Synthetic(1)
	if cfg := (&Annotator{Gazetteer: real}).Config(); cfg.Gazetteer != gazetteer.Geo(real) {
		t.Error("real gazetteer was dropped by the nil normalisation")
	}
}

// mustPrepare is PrepareGeo under a background context for tests.
func mustPrepare(t *testing.T, c Config, tbl *table.Table) Config {
	t.Helper()
	prepared, err := c.PrepareGeo(context.Background(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	return prepared
}

// TestGeoAnnotateCancelledMidResolution: cancellation between geocoded
// cells aborts the stage with ctx.Err(), not a truncated result.
func TestGeoAnnotateCancelledMidResolution(t *testing.T) {
	cfg := Config{Gazetteer: gazetteer.Synthetic(1).Freeze()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cfg.PrepareGeo(ctx, geoTestTable(t)); err != context.Canceled {
		t.Errorf("cancelled PrepareGeo error = %v, want context.Canceled", err)
	}
}
