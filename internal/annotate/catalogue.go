package annotate

import (
	"strings"

	"repro/internal/table"
)

// CatalogueAnnotator is the Limaye-style comparator of §6.3: it annotates
// cells by exact lookup in a pre-compiled catalogue of known entities. It
// can, by construction, never discover an entity absent from the catalogue —
// the coverage gap (≈22% of table entities, §1) the paper's algorithm closes.
type CatalogueAnnotator struct {
	// Catalogue maps lower-cased entity names to their type.
	Catalogue map[string]string
	// PropagateColumnType additionally infers a majority type per column
	// from the known entities and annotates the remaining (unknown)
	// cells of that column with it — the "column homogeneity" shortcut
	// of the introduction, which breaks on mixed-type tables (Figure 2).
	PropagateColumnType bool
	// Pre filters cells exactly like the main algorithm.
	Pre Preprocessor
}

// AnnotateTable annotates one table against the catalogue, restricted to the
// given types.
func (c *CatalogueAnnotator) AnnotateTable(t *table.Table, types []string) *Result {
	gamma := make(map[string]struct{}, len(types))
	for _, typ := range types {
		gamma[typ] = struct{}{}
	}
	res := &Result{Skipped: map[SkipReason]int{}}
	colVotes := make([]map[string]int, t.NumCols()+1)
	annotated := map[[2]int]bool{}

	for j := 1; j <= t.NumCols(); j++ {
		if c.Pre.SkipColumn(t.Columns[j-1].Type) {
			res.Skipped[SkipColumnType] += t.NumRows()
			continue
		}
		colVotes[j] = map[string]int{}
		for i := 1; i <= t.NumRows(); i++ {
			content := t.Cell(i, j)
			if reason := c.Pre.Check(content); reason != SkipNone {
				res.Skipped[reason]++
				continue
			}
			typ, ok := c.Catalogue[normCell(content)]
			if !ok {
				continue
			}
			if _, in := gamma[typ]; !in {
				continue
			}
			res.Annotations = append(res.Annotations, Annotation{Row: i, Col: j, Type: typ, Score: 1.0})
			annotated[[2]int{i, j}] = true
			colVotes[j][typ]++
		}
	}

	if !c.PropagateColumnType {
		return res
	}
	for j := 1; j <= t.NumCols(); j++ {
		if colVotes[j] == nil {
			continue
		}
		best, bestVotes := "", 0
		for typ, v := range colVotes[j] {
			if v > bestVotes || (v == bestVotes && typ < best) {
				best, bestVotes = typ, v
			}
		}
		if bestVotes == 0 {
			continue
		}
		for i := 1; i <= t.NumRows(); i++ {
			if annotated[[2]int{i, j}] {
				continue
			}
			content := t.Cell(i, j)
			if c.Pre.Check(content) != SkipNone || strings.TrimSpace(content) == "" {
				continue
			}
			res.Annotations = append(res.Annotations, Annotation{Row: i, Col: j, Type: best, Score: 0.5})
		}
	}
	return res
}
