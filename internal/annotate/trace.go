package annotate

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/table"
	"repro/internal/textproc"
)

// CellExplanation records why one cell was or was not annotated — the
// debugging view behind cmd/annotate's -explain flag.
type CellExplanation struct {
	Row, Col int
	Content  string
	// Skipped is the pre-processing reason, when the cell never reached
	// the engine.
	Skipped SkipReason
	// Query is the (possibly spatially augmented) query submitted.
	Query string
	// Votes counts snippet classifications per type.
	Votes map[string]int
	// Retrieved is the number of snippets fetched.
	Retrieved int
	// Verdict is the decided type, empty when the majority rule
	// abstained.
	Verdict string
	Score   float64
}

// String renders the explanation as one human-readable line.
func (e CellExplanation) String() string {
	head := fmt.Sprintf("T(%d,%d) %q", e.Row, e.Col, e.Content)
	if e.Skipped != SkipNone {
		return head + " skipped: " + string(e.Skipped)
	}
	var votes []string
	for _, typ := range sortedVoteTypes(e.Votes) {
		votes = append(votes, fmt.Sprintf("%s=%d", typ, e.Votes[typ]))
	}
	verdict := "abstained"
	if e.Verdict != "" {
		verdict = fmt.Sprintf("-> %s (%.2f)", e.Verdict, e.Score)
	}
	return fmt.Sprintf("%s query=%q k=%d votes[%s] %s",
		head, e.Query, e.Retrieved, strings.Join(votes, " "), verdict)
}

func sortedVoteTypes(votes map[string]int) []string {
	types := make([]string, 0, len(votes))
	for t := range votes {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool {
		if votes[types[i]] != votes[types[j]] {
			return votes[types[i]] > votes[types[j]]
		}
		return types[i] < types[j]
	})
	return types
}

// Explain runs the annotation pipeline in tracing mode and returns one
// explanation per cell (post-processing is not applied: explanations show
// the raw Eq. 1 decisions the column-coherence step would then filter).
// Like Annotate, ctx is checked between cell queries: a cancelled trace
// returns ctx.Err() instead of finishing its remaining round-trips.
func (c Config) Explain(ctx context.Context, t *table.Table) ([]CellExplanation, error) {
	gamma := c.typeSet()
	var cityByRow map[int]string
	if c.Disambiguate && c.Gazetteer != nil {
		cityByRow = c.resolveRowCities(t)
	}
	var out []CellExplanation
	for j := 1; j <= t.NumCols(); j++ {
		colSkipped := c.Pre.SkipColumn(t.Columns[j-1].Type)
		for i := 1; i <= t.NumRows(); i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			content := strings.TrimSpace(t.Cell(i, j))
			e := CellExplanation{Row: i, Col: j, Content: content}
			switch {
			case colSkipped:
				e.Skipped = SkipColumnType
			default:
				e.Skipped = c.Pre.Check(content)
			}
			if e.Skipped != SkipNone {
				out = append(out, e)
				continue
			}
			e.Query = content
			if city := cityByRow[i]; city != "" && !strings.Contains(strings.ToLower(content), strings.ToLower(city)) {
				e.Query = content + " " + city
			}
			results := c.Searcher.Search(e.Query, c.k())
			e.Retrieved = len(results)
			e.Votes = map[string]int{}
			for _, r := range results {
				pred := c.Classifier.Predict(textproc.Extract(r.Snippet))
				if _, in := gamma[pred]; in {
					e.Votes[pred]++
				}
			}
			if typ, score, ok := majorityType(e.Votes, e.Retrieved); ok {
				e.Verdict, e.Score = typ, score
			}
			out = append(out, e)
		}
	}
	return out, nil
}
