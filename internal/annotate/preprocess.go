// Package annotate implements the paper's primary contribution (§5): the
// three-step algorithm that discovers and annotates entities of given types
// in a table — pre-processing that rules out cells that cannot name entities,
// web-search-plus-classification annotation with the majority rule of Eq. 1,
// optional spatial query disambiguation backed by the toponym voting graph,
// and the column-coherence post-processing of Eq. 2 that eliminates spurious
// annotations. The TIN/TIS baselines of §6.2 and a Limaye-style catalogue
// annotator (§6.3) live here too.
package annotate

import (
	"regexp"
	"strings"

	"repro/internal/table"
)

// SkipReason explains why pre-processing ruled a cell out.
type SkipReason string

// The pre-processing rules of §5.1.
const (
	SkipNone       SkipReason = ""
	SkipEmpty      SkipReason = "empty"
	SkipPhone      SkipReason = "phone number"
	SkipURL        SkipReason = "url"
	SkipEmail      SkipReason = "email"
	SkipNumeric    SkipReason = "numeric value"
	SkipCoords     SkipReason = "geographic coordinates"
	SkipLong       SkipReason = "long value"
	SkipColumnType SkipReason = "column type"
)

var (
	phoneRe = regexp.MustCompile(`^\+?[\d() .-]{7,20}$`)
	urlRe   = regexp.MustCompile(`^(https?://|www\.)\S+$`)
	emailRe = regexp.MustCompile(`^[^@\s]+@[^@\s]+\.[^@\s]+$`)
	numRe   = regexp.MustCompile(`^-?[\d.,]+%?$`)
	coordRe = regexp.MustCompile(`^-?\d{1,3}(\.\d+)?[,; NSEW°]\s*-?\d{1,3}(\.\d+)?[NSEW°]?$`)
)

// DefaultMaxCellWords is the length threshold above which a cell is treated
// as a verbose description rather than an entity name (§5.1 rules out "cells
// containing long values, such as verbose descriptions").
const DefaultMaxCellWords = 8

// Preprocessor implements §5.1: syntactic filters over cell content plus the
// GFT column-type filter.
type Preprocessor struct {
	// MaxCellWords is the verbose-description threshold; 0 selects
	// DefaultMaxCellWords.
	MaxCellWords int
	// SkipColumnTypes lists the GFT column types whose cells cannot name
	// entities of interest; nil selects Location, Date and Number (§5.1).
	SkipColumnTypes []table.ColumnType
}

func (p Preprocessor) maxWords() int {
	if p.MaxCellWords > 0 {
		return p.MaxCellWords
	}
	return DefaultMaxCellWords
}

func (p Preprocessor) skippedTypes() []table.ColumnType {
	if p.SkipColumnTypes != nil {
		return p.SkipColumnTypes
	}
	return []table.ColumnType{table.Location, table.Date, table.Number}
}

// SkipColumn reports whether the whole column is ruled out by its GFT type.
func (p Preprocessor) SkipColumn(ct table.ColumnType) bool {
	for _, t := range p.skippedTypes() {
		if ct == t {
			return true
		}
	}
	return false
}

// Check classifies a cell's content, returning the reason it cannot contain
// an entity name, or SkipNone when the cell must be sent to the search
// engine.
func (p Preprocessor) Check(content string) SkipReason {
	c := strings.TrimSpace(content)
	switch {
	case c == "":
		return SkipEmpty
	case urlRe.MatchString(c):
		return SkipURL
	case emailRe.MatchString(c):
		return SkipEmail
	case coordRe.MatchString(c):
		return SkipCoords
	case numRe.MatchString(c):
		return SkipNumeric
	case phoneRe.MatchString(c) && strings.ContainsAny(c, "0123456789"):
		return SkipPhone
	case len(strings.Fields(c)) > p.maxWords():
		return SkipLong
	}
	return SkipNone
}
