package annotate

// Tests of the immutable-Config pipeline entry points: deriving per-request
// variants from a base config without rebuilding components, equivalence
// with the legacy Annotator facade, and cancellation on the config path.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/search"
	"repro/internal/table"
)

func scriptedConfig(s *scriptedSearcher) Config {
	return Config{
		Searcher:   s,
		Classifier: constClassifier("museum"),
		Types:      []string{"museum", "restaurant"},
		K:          10,
	}
}

// TestConfigAnnotate drives the pipeline through Config directly, without an
// Annotator in sight.
func TestConfigAnnotate(t *testing.T) {
	s := &scriptedSearcher{results: map[string][]search.Result{"Louvre": snippets(10)}}
	res, err := scriptedConfig(s).Annotate(context.Background(), scriptedTable(t, "Louvre", "Unknown"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) != 1 || res.Annotations[0].Type != "museum" {
		t.Fatalf("annotations = %+v, want one museum", res.Annotations)
	}
	if res.Queries != 2 {
		t.Errorf("queries = %d, want 2", res.Queries)
	}
}

// TestConfigDerivedVariant copies a base config and adjusts the per-request
// knobs (Γ, k); the base must be unaffected and the derived run must see the
// new settings — the pattern repro.Service uses per request.
func TestConfigDerivedVariant(t *testing.T) {
	s := &scriptedSearcher{results: map[string][]search.Result{"Louvre": snippets(10)}}
	base := scriptedConfig(s)

	derived := base
	derived.Types = []string{"restaurant"}
	derived.K = 5

	res, err := derived.Annotate(context.Background(), scriptedTable(t, "Louvre"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) != 0 {
		t.Errorf("Γ={restaurant} still annotated a museum: %+v", res.Annotations)
	}
	if base.K != 10 || len(base.Types) != 2 {
		t.Errorf("deriving a variant mutated the base config: %+v", base)
	}
	res, err = base.Annotate(context.Background(), scriptedTable(t, "Louvre"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) != 1 {
		t.Errorf("base config changed behaviour after deriving a variant: %+v", res.Annotations)
	}
}

// TestAnnotatorDelegatesToConfig: the legacy facade must be a pure snapshot
// — same annotations, queries and explanations as the Config it snapshots.
func TestAnnotatorDelegatesToConfig(t *testing.T) {
	s := &scriptedSearcher{results: map[string][]search.Result{"Louvre": snippets(10)}}
	a := scriptedAnnotator(s)
	tbl := scriptedTable(t, "Louvre", "Unknown")

	viaFacade := fmt.Sprintf("%+v", a.AnnotateTable(tbl))
	viaConfig, err := a.Config().Annotate(context.Background(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%+v", viaConfig); got != viaFacade {
		t.Errorf("facade and config runs diverge:\nfacade: %s\nconfig: %s", viaFacade, got)
	}

	fe := fmt.Sprintf("%+v", a.ExplainTable(tbl))
	cfgExpl, err := a.Config().Explain(context.Background(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if ce := fmt.Sprintf("%+v", cfgExpl); fe != ce {
		t.Errorf("facade and config explanations diverge:\nfacade: %s\nconfig: %s", fe, ce)
	}

	// A cancelled context aborts the trace before it reaches the backend.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Config().Explain(cancelled, tbl); err == nil {
		t.Error("cancelled context did not abort Explain")
	}
}

// TestConfigBatchCancelled: the batch entry point returns the context error
// rather than a truncated result slice.
func TestConfigBatchCancelled(t *testing.T) {
	s := &scriptedSearcher{results: map[string][]search.Result{"Louvre": snippets(10)}}
	cfg := scriptedConfig(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tables := []*table.Table{scriptedTable(t, "Louvre"), scriptedTable(t, "Louvre")}
	if _, err := cfg.AnnotateBatch(ctx, tables, 2); err == nil {
		t.Fatal("cancelled context did not abort AnnotateBatch")
	}
	if s.calls.Load() != 0 {
		t.Errorf("backend saw %d queries after cancellation, want 0", s.calls.Load())
	}
}

// TestMustResultPanics documents the legacy facade's error routing: a failed
// run can never be silently truncated — the impossible case panics.
func TestMustResultPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mustResult(nil, err) did not panic")
		}
	}()
	mustResult(nil, context.Canceled)
}
