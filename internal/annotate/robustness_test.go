package annotate

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/search"
	"repro/internal/table"
	"repro/internal/textproc"
)

// constClassifier always predicts the same label — a failure-injection stub.
type constClassifier string

func (c constClassifier) Predict(textproc.Features) string { return string(c) }

func TestAnnotateEmptyTable(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("empty", table.Column{Header: "Name", Type: table.Text})
	res := f.annotator().AnnotateTable(tbl)
	if len(res.Annotations) != 0 || res.Queries != 0 {
		t.Errorf("empty table produced %d annotations, %d queries", len(res.Annotations), res.Queries)
	}
}

func TestAnnotateAllColumnsSkipped(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("skips",
		table.Column{Header: "When", Type: table.Date},
		table.Column{Header: "Where", Type: table.Location},
		table.Column{Header: "HowMany", Type: table.Number},
	)
	if err := tbl.AppendRow("2013-03-18", "Genoa, Italy", "250"); err != nil {
		t.Fatal(err)
	}
	res := f.annotator().AnnotateTable(tbl)
	if len(res.Annotations) != 0 || res.Queries != 0 {
		t.Errorf("fully skipped table still annotated: %+v", res)
	}
	if res.Skipped[SkipColumnType] != 3 {
		t.Errorf("column-type skips = %d, want 3", res.Skipped[SkipColumnType])
	}
}

func TestAnnotateAgainstEmptyEngine(t *testing.T) {
	// A search engine with no corpus: every query returns nothing, so no
	// cell can clear the majority rule — the pipeline degrades to "no
	// annotations", never to a panic.
	engine := search.NewEngine(search.NewIndex())
	var train classify.Dataset
	train.Add("museum gallery", "museum")
	a := &Annotator{
		Engine:     engine,
		Classifier: classify.BayesTrainer{}.Train(train),
		Types:      []string{"museum"},
	}
	tbl := table.New("t", table.Column{Header: "Name", Type: table.Text})
	if err := tbl.AppendRow("Musée Lavande"); err != nil {
		t.Fatal(err)
	}
	res := a.AnnotateTable(tbl)
	if len(res.Annotations) != 0 {
		t.Errorf("annotations from an empty web: %+v", res.Annotations)
	}
	if res.Queries != 1 {
		t.Errorf("queries = %d, want 1", res.Queries)
	}
}

// TestAnnotateWithDegenerateClassifier: a classifier stuck on one label
// annotates everything with it; post-processing then keeps only the best
// column instead of spraying annotations across the table.
func TestAnnotateWithDegenerateClassifier(t *testing.T) {
	f := newFixture(t)
	a := f.annotator()
	a.Classifier = constClassifier("museum")
	a.Postprocess = true
	tbl := table.New("deg",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Alt", Type: table.Text},
	)
	rows := [][]string{
		{"Musée Lavande", "Chez Martin"},
		{"National Museum of Glass", "The Golden Fig"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	res := a.AnnotateTable(tbl)
	cols := map[int]bool{}
	for _, ann := range res.Annotations {
		if ann.Type != "museum" {
			t.Errorf("degenerate classifier produced type %q", ann.Type)
		}
		cols[ann.Col] = true
	}
	if len(cols) > 1 {
		t.Errorf("post-processing left annotations in %d columns, want 1", len(cols))
	}
}

func TestAnnotateGammaRestriction(t *testing.T) {
	// Predictions outside Γ are ignored even if the classifier emits
	// them: restrict Γ to museum only and annotate a restaurant.
	f := newFixture(t)
	a := f.annotator()
	a.Types = []string{"museum"}
	tbl := table.New("g", table.Column{Header: "Name", Type: table.Text})
	if err := tbl.AppendRow("Chez Martin"); err != nil {
		t.Fatal(err)
	}
	res := a.AnnotateTable(tbl)
	for _, ann := range res.Annotations {
		if ann.Type != "museum" {
			t.Errorf("annotation outside Γ: %+v", ann)
		}
	}
}

func TestDisambiguationWithoutGazetteerIsSafe(t *testing.T) {
	f := newFixture(t)
	a := f.annotator()
	a.Disambiguate = true
	a.Gazetteer = nil // misconfiguration: flag on, no gazetteer
	tbl := table.New("s",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Address", Type: table.Location},
	)
	if err := tbl.AppendRow("Musée Lavande", "Ocean Drive, Santa Monica"); err != nil {
		t.Fatal(err)
	}
	res := a.AnnotateTable(tbl) // must not panic
	if _, ok := find(res, 1, 1); !ok {
		t.Error("annotation lost when disambiguation is misconfigured")
	}
}
