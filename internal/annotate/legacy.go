package annotate

import (
	"context"

	"repro/internal/classify"
	"repro/internal/gazetteer"
	"repro/internal/qcache"
	"repro/internal/table"
)

// Annotator is the legacy mutable-field facade over the pipeline, kept for
// the pre-service API (repro.System.Annotator) and the existing tests and
// examples. Each call snapshots the fields into an immutable Config and runs
// the config-based pipeline, so results are identical to driving a Config
// directly; new code should construct a Config (or go through repro.Service)
// instead of mutating Annotator fields between calls.
//
// An Annotator must not be mutated while annotating; with that rule one
// instance may annotate many tables concurrently (see AnnotateTables).
type Annotator struct {
	// Engine is the search backend (steps 1-2 of the algorithm). Any
	// Searcher works; the built-in *search.Engine is the usual choice.
	Engine Searcher
	// Classifier labels snippets with a type from Γ (step 3).
	Classifier classify.Classifier
	// Types is Γ, the target types.
	Types []string
	// K is the number of snippets fetched per query; 0 selects 10, the
	// paper's setting.
	K int
	// Pre is the §5.1 pre-processor.
	Pre Preprocessor
	// Postprocess enables the §5.3 spurious-annotation elimination.
	Postprocess bool
	// Disambiguate enables the §5.2.2 spatial query augmentation; it
	// requires Gazetteer.
	Disambiguate bool
	// Gazetteer geocodes Location-column cells for disambiguation. Both
	// the mutable *gazetteer.Gazetteer and the frozen form satisfy it.
	Gazetteer gazetteer.Geo
	// ClusterThreshold, when positive, selects the cluster-separated
	// decision rule; see Config.ClusterThreshold.
	ClusterThreshold float64
	// Parallelism bounds the execute-stage worker pool; see
	// Config.Parallelism.
	Parallelism int
	// Cache shares query verdicts across tables; see Config.Cache.
	Cache *qcache.Cache
	// CacheSalt namespaces this annotator's entries inside a shared
	// Cache; see Config.CacheSalt.
	CacheSalt string
}

// Config snapshots the annotator's fields into the immutable per-run
// configuration the pipeline executes.
func (a *Annotator) Config() Config {
	cfg := Config{
		Searcher:         a.Engine,
		Classifier:       a.Classifier,
		Types:            a.Types,
		K:                a.K,
		Pre:              a.Pre,
		Postprocess:      a.Postprocess,
		Disambiguate:     a.Disambiguate,
		ClusterThreshold: a.ClusterThreshold,
		Parallelism:      a.Parallelism,
		Cache:            a.Cache,
		CacheSalt:        a.CacheSalt,
	}
	// A nil gazetteer — including a typed-nil *Gazetteer or *Frozen that
	// pre-split callers may still assign — must stay a nil
	// Config.Gazetteer interface so the pipeline's "no gazetteer" guards
	// keep working exactly as they did when the field was concrete.
	if !isNilGazetteer(a.Gazetteer) {
		cfg.Gazetteer = a.Gazetteer
	}
	return cfg
}

// isNilGazetteer reports whether g is nil outright or a typed-nil pointer of
// either gazetteer form.
func isNilGazetteer(g gazetteer.Geo) bool {
	switch v := g.(type) {
	case nil:
		return true
	case *gazetteer.Builder:
		return v == nil
	case *gazetteer.Frozen:
		return v == nil
	}
	return false
}

func (a *Annotator) k() int { return a.Config().k() }

// AnnotateTable runs pre-processing, annotation and (optionally)
// post-processing over one table and returns every cell-level annotation.
// It is the context-free convenience wrapper over Config.Annotate.
func (a *Annotator) AnnotateTable(t *table.Table) *Result {
	return mustResult(a.Config().Annotate(context.Background(), t))
}

// AnnotateTableContext is AnnotateTable with cancellation; it is
// Config.Annotate on a snapshot of the annotator's fields.
func (a *Annotator) AnnotateTableContext(ctx context.Context, t *table.Table) (*Result, error) {
	return a.Config().Annotate(ctx, t)
}

// AnnotateTables annotates a batch of tables over a bounded worker pool; it
// is Config.AnnotateBatch on a snapshot of the annotator's fields.
func (a *Annotator) AnnotateTables(ctx context.Context, tables []*table.Table, parallelism int) ([]*Result, error) {
	return a.Config().AnnotateBatch(ctx, tables, parallelism)
}

// ExplainTable runs the annotation pipeline in tracing mode; it is
// Config.Explain on a snapshot of the annotator's fields.
func (a *Annotator) ExplainTable(t *table.Table) []CellExplanation {
	out, err := a.Config().Explain(context.Background(), t)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic("annotate: background-context explain failed: " + err.Error())
	}
	return out
}

// TIS runs the TypeInSnippet baseline of §6.2; see Config.TIS.
func (a *Annotator) TIS(t *table.Table) *Result {
	return a.Config().TIS(t)
}

// mustResult unwraps a pipeline run that cannot have failed: the only error
// the pipeline returns is ctx.Err(), and every caller of mustResult runs
// under context.Background(), which never cancels. The panic guards the
// invariant instead of silently returning a truncated Result.
func mustResult(res *Result, err error) *Result {
	if err != nil {
		panic("annotate: background-context run failed: " + err.Error())
	}
	return res
}
