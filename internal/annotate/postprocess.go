package annotate

import (
	"math"
	"strings"

	"repro/internal/table"
)

// postprocess implements §5.3: for every type t, compute the global column
// score of Eq. 2,
//
//	S_j = Σ_i ln(S_ij / o_ij + 1)
//
// where o_ij is the number of occurrences of T(i,j)'s content across column
// j (repeated values like the "Museum" column of Figure 8 are damped by
// 1/o_ij), and keep only the annotations of t that sit in the
// highest-scoring column.
func (c Config) postprocess(t *table.Table, res *Result) {
	// Occurrence counts per column.
	occ := make([]map[string]int, t.NumCols()+1)
	for j := 1; j <= t.NumCols(); j++ {
		occ[j] = map[string]int{}
		for i := 1; i <= t.NumRows(); i++ {
			occ[j][normCell(t.Cell(i, j))]++
		}
	}

	colScores := map[string]map[int]float64{}
	for _, ann := range res.Annotations {
		cols := colScores[ann.Type]
		if cols == nil {
			cols = map[int]float64{}
			colScores[ann.Type] = cols
		}
		o := occ[ann.Col][normCell(t.Cell(ann.Row, ann.Col))]
		if o < 1 {
			o = 1
		}
		cols[ann.Col] += math.Log(ann.Score/float64(o) + 1)
	}
	res.ColumnScores = colScores

	// Best column per type; ties keep the leftmost column for
	// determinism.
	bestCol := map[string]int{}
	for typ, cols := range colScores {
		best, bestScore := 0, math.Inf(-1)
		for j, s := range cols {
			if s > bestScore || (s == bestScore && j < best) {
				best, bestScore = j, s
			}
		}
		bestCol[typ] = best
	}

	kept := res.Annotations[:0]
	for _, ann := range res.Annotations {
		if bestCol[ann.Type] == ann.Col {
			kept = append(kept, ann)
		}
	}
	res.Annotations = kept
}

// normCell normalises cell content for occurrence counting.
func normCell(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// ColumnTypes derives a semantic type per column from the Eq. 2 scores: the
// type whose global score is highest in that column, provided the column is
// that type's best column. This is step (a) of the table-annotation task the
// paper situates itself in (§1) — "determine the type(s) of each column" —
// obtained as a byproduct of entity annotation. Only available after a
// post-processed run; returns nil otherwise.
func (r *Result) ColumnTypes() map[int]string {
	if r.ColumnScores == nil {
		return nil
	}
	// Best column per type (recomputing the postprocess choice).
	bestCol := map[string]int{}
	for typ, cols := range r.ColumnScores {
		best, bestScore := 0, math.Inf(-1)
		for j, s := range cols {
			if s > bestScore || (s == bestScore && j < best) {
				best, bestScore = j, s
			}
		}
		bestCol[typ] = best
	}
	out := map[int]string{}
	outScore := map[int]float64{}
	for typ, j := range bestCol {
		score := r.ColumnScores[typ][j]
		if prev, ok := out[j]; !ok || score > outScore[j] || (score == outScore[j] && typ < prev) {
			out[j] = typ
			outScore[j] = score
		}
	}
	return out
}
