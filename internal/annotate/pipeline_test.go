package annotate

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/table"
)

// scriptedSearcher is a Searcher backed by a fixed query→results map — the
// pluggable-backend seam the Annotator is decoupled through. It counts calls
// atomically so tests can assert query volume under concurrency.
type scriptedSearcher struct {
	results map[string][]search.Result
	calls   atomic.Int64
}

func (s *scriptedSearcher) Search(query string, k int) []search.Result {
	s.calls.Add(1)
	r := s.results[query]
	if len(r) > k {
		r = r[:k]
	}
	return r
}

// snippets builds k results for a query.
func snippets(k int) []search.Result {
	out := make([]search.Result, k)
	for i := range out {
		out[i] = search.Result{Snippet: fmt.Sprintf("snippet %d about the museum", i)}
	}
	return out
}

func scriptedAnnotator(s *scriptedSearcher) *Annotator {
	return &Annotator{
		Engine:     s,
		Classifier: constClassifier("museum"),
		Types:      []string{"museum", "restaurant"},
		K:          10,
	}
}

func scriptedTable(t *testing.T, names ...string) *table.Table {
	t.Helper()
	tbl := table.New("scripted", table.Column{Header: "Name", Type: table.Text})
	for _, n := range names {
		if err := tbl.AppendRow(n); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestPluggableSearcher proves the annotator runs against any Searcher, not
// just *search.Engine.
func TestPluggableSearcher(t *testing.T) {
	s := &scriptedSearcher{results: map[string][]search.Result{
		"Louvre": snippets(10),
	}}
	a := scriptedAnnotator(s)
	res := a.AnnotateTable(scriptedTable(t, "Louvre", "Unknown Place"))
	if len(res.Annotations) != 1 {
		t.Fatalf("annotations = %d, want 1 (only the scripted query returns snippets)", len(res.Annotations))
	}
	ann := res.Annotations[0]
	if ann.Type != "museum" || ann.Score != 1.0 {
		t.Errorf("annotation = %+v, want museum score 1.0", ann)
	}
	if res.Queries != 2 {
		t.Errorf("queries = %d, want 2", res.Queries)
	}
}

// TestParallelTableIdentical annotates one table at several parallelism
// settings; the order-preserving merge stage must keep the output
// byte-identical to the sequential run. Result.Batches is normalized away:
// the batch chunking follows the worker count by design, so the batch-call
// count is an execution statistic outside the identity guarantee (which
// covers annotations, scores, query and cache counters).
func TestParallelTableIdentical(t *testing.T) {
	f := newFixture(t)
	tbl := poiTable(t)
	render := func(res *Result) string {
		res.Batches = 0
		return fmt.Sprintf("%+v", res)
	}
	base := render(f.annotator().AnnotateTable(tbl))
	for _, p := range []int{2, 4, 16} {
		a := f.annotator()
		a.Parallelism = p
		if got := render(a.AnnotateTable(tbl)); got != base {
			t.Errorf("parallelism %d produced a different result\nseq: %s\npar: %s", p, base, got)
		}
	}
}

// TestAnnotateTableContextCancelled: a cancelled context aborts before the
// execute stage touches the backend, on both the sequential and the
// parallel path.
func TestAnnotateTableContextCancelled(t *testing.T) {
	s := &scriptedSearcher{results: map[string][]search.Result{"Louvre": snippets(10)}}
	a := scriptedAnnotator(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AnnotateTableContext(ctx, scriptedTable(t, "Louvre")); err == nil {
		t.Fatal("cancelled context did not abort annotation")
	}
	if _, err := a.AnnotateTables(ctx, []*table.Table{scriptedTable(t, "Louvre")}, 4); err == nil {
		t.Fatal("cancelled context did not abort the batch API")
	}
	if s.calls.Load() != 0 {
		t.Errorf("backend saw %d queries after cancellation, want 0", s.calls.Load())
	}
	// Cancellation must hold even when a warm cache would answer every
	// query without the execute stage ever blocking.
	a.Cache = qcache.New()
	a.AnnotateTable(scriptedTable(t, "Louvre")) // warm
	if _, err := a.AnnotateTableContext(ctx, scriptedTable(t, "Louvre")); err == nil {
		t.Fatal("cancelled context ignored on the fully-cached path")
	}
}

// TestSharedCacheAcrossTables: two tables with the same cells through one
// cache — the second table costs zero backend queries.
func TestSharedCacheAcrossTables(t *testing.T) {
	s := &scriptedSearcher{results: map[string][]search.Result{"Louvre": snippets(10)}}
	a := scriptedAnnotator(s)
	a.Cache = qcache.New()

	res1 := a.AnnotateTable(scriptedTable(t, "Louvre", "Louvre"))
	if res1.Queries != 1 || res1.CacheMisses != 1 || res1.CacheHits != 0 {
		t.Errorf("cold table: queries=%d hits=%d misses=%d, want 1/0/1",
			res1.Queries, res1.CacheHits, res1.CacheMisses)
	}
	res2 := a.AnnotateTable(scriptedTable(t, "Louvre"))
	if res2.Queries != 0 || res2.CacheHits != 1 {
		t.Errorf("warm table: queries=%d hits=%d, want 0/1", res2.Queries, res2.CacheHits)
	}
	if len(res2.Annotations) != 1 {
		t.Errorf("warm table annotations = %d, want 1 (verdict replayed from cache)", len(res2.Annotations))
	}
	if got := s.calls.Load(); got != 1 {
		t.Errorf("backend calls = %d, want 1", got)
	}
	// A config change (k) must miss: verdicts are keyed by the full
	// decision fingerprint.
	a.K = 5
	res3 := a.AnnotateTable(scriptedTable(t, "Louvre"))
	if res3.CacheHits != 0 || res3.Queries != 1 {
		t.Errorf("changed k still hit the cache: %+v", res3)
	}
	// Distinct salts never exchange verdicts.
	b := scriptedAnnotator(s)
	b.Cache = a.Cache
	b.CacheSalt = "other"
	if res := b.AnnotateTable(scriptedTable(t, "Louvre")); res.CacheHits != 0 {
		t.Errorf("different salt got %d cache hits, want 0", res.CacheHits)
	}
}

// TestAnnotateTablesBatch: the batch API preserves input order and matches
// per-table annotation at every parallelism.
func TestAnnotateTablesBatch(t *testing.T) {
	f := newFixture(t)
	tables := []*table.Table{
		poiTable(t),
		scriptedTable(t, "Musée Lavande"),
		scriptedTable(t, "Chez Martin", "The Golden Fig"),
	}
	a := f.annotator()
	want := make([]string, len(tables))
	for i, tbl := range tables {
		want[i] = fmt.Sprintf("%+v", a.AnnotateTable(tbl))
	}
	for _, p := range []int{1, 3, 8} {
		results, err := a.AnnotateTables(context.Background(), tables, p)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if len(results) != len(tables) {
			t.Fatalf("parallelism %d: %d results, want %d", p, len(results), len(tables))
		}
		for i, res := range results {
			if got := fmt.Sprintf("%+v", res); got != want[i] {
				t.Errorf("parallelism %d, table %d: batch result differs from AnnotateTable", p, i)
			}
		}
	}
}
