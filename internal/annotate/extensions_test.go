package annotate

import (
	"testing"
	"testing/quick"

	"repro/internal/table"
	"repro/internal/textproc"
)

func TestLeaderClusterSeparatesSenses(t *testing.T) {
	feats := []textproc.Features{
		textproc.Extract("restaurant menu chef dining cuisine"),
		textproc.Extract("menu dining chef dishes restaurant"),
		textproc.Extract("jazz label vinyl records saxophone"),
		textproc.Extract("saxophone quartet jazz vinyl label"),
		textproc.Extract("restaurant cuisine dishes menu dining"),
	}
	clusters := leaderCluster(feats, 0.2)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 senses", len(clusters))
	}
	if len(clusters[0]) != 3 || len(clusters[1]) != 2 {
		t.Errorf("cluster sizes = %d/%d, want 3/2", len(clusters[0]), len(clusters[1]))
	}
}

func TestLeaderClusterThresholdExtremes(t *testing.T) {
	feats := []textproc.Features{
		textproc.Extract("alpha beta gamma"),
		textproc.Extract("delta epsilon zeta"),
		textproc.Extract("alpha beta gamma"),
	}
	// Threshold above 1: everything is its own cluster.
	if got := leaderCluster(feats, 1.1); len(got) != 3 {
		t.Errorf("threshold>1 clusters = %d, want 3", len(got))
	}
	// Threshold 0 accepts everything into the first cluster (cosine >= 0).
	if got := leaderCluster(feats, 0); len(got) != 1 {
		t.Errorf("threshold 0 clusters = %d, want 1", len(got))
	}
}

// TestLeaderClusterPartition: clustering is a partition — every index
// appears in exactly one cluster.
func TestLeaderClusterPartition(t *testing.T) {
	f := func(seeds []uint16, thresholdRaw uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 20 {
			seeds = seeds[:20]
		}
		words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
		feats := make([]textproc.Features, len(seeds))
		for i, s := range seeds {
			text := words[s%8] + " " + words[(s>>3)%8] + " " + words[(s>>6)%8]
			feats[i] = textproc.Extract(text)
		}
		threshold := float64(thresholdRaw) / 255
		clusters := leaderCluster(feats, threshold)
		seen := map[int]int{}
		for _, c := range clusters {
			for _, idx := range c {
				seen[idx]++
			}
		}
		if len(seen) != len(feats) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCosine(t *testing.T) {
	a := textproc.Extract("museum gallery museum")
	b := textproc.Extract("museum gallery museum")
	if c := cosine(a, b); c < 0.999 || c > 1.001 {
		t.Errorf("cosine(self) = %v, want 1", c)
	}
	d := textproc.Extract("jazz vinyl saxophone")
	if c := cosine(a, d); c != 0 {
		t.Errorf("cosine(disjoint) = %v, want 0", c)
	}
	if c := cosine(a, textproc.Features{}); c != 0 {
		t.Errorf("cosine(empty) = %v, want 0", c)
	}
}

// TestClusterDecideRecoversAmbiguousName: the Melisse case without spatial
// data — the jazz-label pages split the flat majority, but the dominant
// restaurant cluster is coherent, so the cluster rule annotates it.
func TestClusterDecideRecoversAmbiguousName(t *testing.T) {
	f := newFixture(t)
	tbl := table.New("amb", table.Column{Header: "Name", Type: table.Text})
	if err := tbl.AppendRow("Melisse"); err != nil {
		t.Fatal(err)
	}

	clustered := f.annotator()
	clustered.ClusterThreshold = 0.2
	clusRes := clustered.AnnotateTable(tbl)

	clusAnn, clusOK := find(clusRes, 1, 1)
	if !clusOK {
		t.Fatal("cluster rule did not annotate the ambiguous name")
	}
	if clusAnn.Type != "restaurant" {
		t.Errorf("cluster rule annotated %q, want restaurant", clusAnn.Type)
	}
	if clusAnn.Score <= 0 || clusAnn.Score > 1 {
		t.Errorf("cluster score %v outside (0, 1]", clusAnn.Score)
	}
}

func TestHybridUsesCatalogueFirst(t *testing.T) {
	f := newFixture(t)
	h := &Hybrid{
		Catalogue: &CatalogueAnnotator{Catalogue: map[string]string{
			"musée lavande": "museum",
			"chez martin":   "restaurant",
		}},
		Discovery: f.annotator(),
	}
	tbl := table.New("names", table.Column{Header: "Name", Type: table.Text})
	for _, name := range []string{"Musée Lavande", "National Museum of Glass", "Chez Martin", "The Golden Fig"} {
		if err := tbl.AppendRow(name); err != nil {
			t.Fatal(err)
		}
	}
	res := h.AnnotateTable(tbl)

	// All four name cells annotated: two from the catalogue, two
	// discovered.
	for row := 1; row <= 4; row++ {
		if _, ok := find(res, row, 1); !ok {
			t.Errorf("row %d not annotated by hybrid", row)
		}
	}
	// Only the two unknown names hit the engine.
	if res.Queries != 2 {
		t.Errorf("hybrid issued %d queries, want 2 (catalogue saved the rest)", res.Queries)
	}
	// Catalogue hits carry score 1.0.
	if ann, _ := find(res, 1, 1); ann.Score != 1.0 || ann.Type != "museum" {
		t.Errorf("catalogue annotation = %+v", ann)
	}
}

func TestHybridFewerQueriesThanDiscovery(t *testing.T) {
	f := newFixture(t)
	tbl := poiTable(t)
	full := f.annotator().AnnotateTable(tbl)
	h := &Hybrid{
		Catalogue: &CatalogueAnnotator{Catalogue: map[string]string{
			"musée lavande":            "museum",
			"national museum of glass": "museum",
			"chez martin":              "restaurant",
		}},
		Discovery: f.annotator(),
	}
	hres := h.AnnotateTable(tbl)
	if hres.Queries >= full.Queries {
		t.Errorf("hybrid queries = %d, want < %d", hres.Queries, full.Queries)
	}
}

func TestHybridPostprocessesMergedSet(t *testing.T) {
	f := newFixture(t)
	// Figure-8 style table; the catalogue knows one museum, discovery
	// finds the rest, and post-processing must still kill the repeated
	// type-word column across the merged annotation set.
	tbl := table.New("fig8h",
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Type", Type: table.Text},
	)
	for _, name := range []string{"Musée Lavande", "National Museum of Glass", "Harbor Gallery of Art"} {
		if err := tbl.AppendRow(name, "Museum"); err != nil {
			t.Fatal(err)
		}
	}
	disc := f.annotator()
	disc.Postprocess = true
	h := &Hybrid{
		Catalogue: &CatalogueAnnotator{Catalogue: map[string]string{"musée lavande": "museum"}},
		Discovery: disc,
	}
	res := h.AnnotateTable(tbl)
	for _, ann := range res.Annotations {
		if ann.Col == 2 {
			t.Errorf("hybrid post-processing kept spurious annotation %+v", ann)
		}
	}
	if _, ok := find(res, 1, 1); !ok {
		t.Error("catalogue annotation lost in merge")
	}
}
