package annotate

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gazetteer"
	"repro/internal/table"
)

// addressTable builds a table of "Street, City" addresses spread over many
// distinct cities, the shape whose voting graph decomposes into many
// components (one per city cluster, roughly).
func addressTable(t *testing.T, mg *gazetteer.Gazetteer, rows, cols int) *table.Table {
	t.Helper()
	g := gazetteer.Geo(mg)
	specs := make([]table.Column, cols)
	for j := range specs {
		specs[j] = table.Column{Header: "Addr", Type: table.Location}
	}
	tbl := table.New("addresses", specs...)
	cities := mg.Cities()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < rows; i++ {
		var home gazetteer.LocID
		var streets []gazetteer.LocID
		for len(streets) == 0 {
			home = cities[rng.Intn(len(cities))]
			streets = mg.StreetsIn(home)
		}
		vals := make([]string, cols)
		for j := range vals {
			st := streets[rng.Intn(len(streets))]
			vals[j] = g.Name(st) + ", " + g.Name(home)
		}
		if err := tbl.AppendRow(vals...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestGeoAnnotateStreamMatchesBatch forces the streaming per-component
// pipeline on a table small enough to also run through the batch path and
// requires byte-identical annotations — same cells, same order, same
// bitwise scores — plus identical decomposition stats, at several worker
// counts.
func TestGeoAnnotateStreamMatchesBatch(t *testing.T) {
	mg := gazetteer.SyntheticScale(42, 6)
	tbl := addressTable(t, mg, 50, 3)
	ctx := context.Background()
	for _, g := range []gazetteer.Geo{mg, mg.Freeze()} {
		cfg := Config{Gazetteer: g}
		want, wantStats, err := cfg.GeoAnnotateStats(ctx, tbl)
		if err != nil {
			t.Fatal(err)
		}
		if wantStats.Components < 2 {
			t.Fatalf("address table produced %d components; test needs a decomposing workload", wantStats.Components)
		}
		defer func(v int) { geoStreamThreshold = v }(geoStreamThreshold)
		geoStreamThreshold = 1
		for _, w := range []int{0, 1, 2, 8} {
			cfg.GeoWorkers = w
			got, gotStats, err := cfg.GeoAnnotateStats(ctx, tbl)
			if err != nil {
				t.Fatal(err)
			}
			if gotStats != wantStats {
				t.Fatalf("workers=%d: stream stats %+v, batch stats %+v", w, gotStats, wantStats)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d: streamed annotations diverge from batch path", w)
			}
		}
		geoStreamThreshold = 1 << 20
	}
}

// TestGeoAnnotateStatsSmallPath checks the stats surface on the ordinary
// batch path too, and that PrepareGeo carries them through.
func TestGeoAnnotateStatsSmallPath(t *testing.T) {
	cfg := Config{Gazetteer: gazetteer.Synthetic(1).Freeze()}
	ctx := context.Background()
	tbl := geoTestTable(t)
	gas, st, err := cfg.GeoAnnotateStats(ctx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(gas) == 0 || st.Cells == 0 || st.Components == 0 || st.LargestComponent == 0 {
		t.Fatalf("stats not populated: %+v (%d annotations)", st, len(gas))
	}
	if st.LargestComponent > st.Cells*10 {
		t.Fatalf("implausible largest component %d for %d cells", st.LargestComponent, st.Cells)
	}
	prepared, err := cfg.PrepareGeo(ctx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	gas2, st2, err := prepared.GeoAnnotateStats(ctx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Fatalf("prepared stats %+v, fresh stats %+v", st2, st)
	}
	if !reflect.DeepEqual(gas2, gas) {
		t.Fatal("prepared annotations diverge from fresh resolution")
	}
}
