package annotate

import (
	"strings"

	"repro/internal/table"
	"repro/internal/textproc"
)

// TIN is the TypeInName baseline of §6.2: a cell is annotated with type t
// (score 1.0) iff its content contains the name of t ("Louvre Museum"
// contains "museum"). Matching is stem-based so plural forms count. Cells
// matching several type names take the first in Γ order, mirroring the
// baseline's single-annotation output. Pre-processing is applied so the
// comparison with the full algorithm stays fair.
func TIN(t *table.Table, types []string, pre Preprocessor) *Result {
	res := &Result{Skipped: map[SkipReason]int{}}
	stemmed := make([][]string, len(types))
	for i, typ := range types {
		stemmed[i] = textproc.NormalizeTokens(typ)
	}
	for j := 1; j <= t.NumCols(); j++ {
		if pre.SkipColumn(t.Columns[j-1].Type) {
			res.Skipped[SkipColumnType] += t.NumRows()
			continue
		}
		for i := 1; i <= t.NumRows(); i++ {
			content := t.Cell(i, j)
			if reason := pre.Check(content); reason != SkipNone {
				res.Skipped[reason]++
				continue
			}
			cellToks := textproc.NormalizeTokens(content)
			for ti, typ := range types {
				if containsAll(cellToks, stemmed[ti]) {
					res.Annotations = append(res.Annotations, Annotation{Row: i, Col: j, Type: typ, Score: 1.0})
					break
				}
			}
		}
	}
	return res
}

// TIS is the TypeInSnippet baseline of §6.2: query the engine with the cell
// content and annotate with type t iff the majority of the retrieved
// snippets contain the name of t; the score follows Eq. 1.
func (c Config) TIS(t *table.Table) *Result {
	res := &Result{Skipped: map[SkipReason]int{}}
	stemmed := make(map[string][]string, len(c.Types))
	for _, typ := range c.Types {
		stemmed[typ] = textproc.NormalizeTokens(typ)
	}
	type verdict struct {
		counts map[string]int
		k      int
	}
	cache := map[string]verdict{}
	for j := 1; j <= t.NumCols(); j++ {
		if c.Pre.SkipColumn(t.Columns[j-1].Type) {
			res.Skipped[SkipColumnType] += t.NumRows()
			continue
		}
		for i := 1; i <= t.NumRows(); i++ {
			content := strings.TrimSpace(t.Cell(i, j))
			if reason := c.Pre.Check(content); reason != SkipNone {
				res.Skipped[reason]++
				continue
			}
			v, ok := cache[content]
			if !ok {
				results := c.Searcher.Search(content, c.k())
				res.Queries++
				counts := map[string]int{}
				for _, r := range results {
					snipToks := textproc.NormalizeTokens(r.Snippet)
					for typ, typToks := range stemmed {
						if containsAll(snipToks, typToks) {
							counts[typ]++
						}
					}
				}
				v = verdict{counts: counts, k: len(results)}
				cache[content] = v
			}
			if typ, score, ok := majorityType(v.counts, v.k); ok {
				res.Annotations = append(res.Annotations, Annotation{Row: i, Col: j, Type: typ, Score: score})
			}
		}
	}
	return res
}

// containsAll reports whether every needle token occurs in haystack.
func containsAll(haystack, needles []string) bool {
	if len(needles) == 0 {
		return false
	}
	for _, n := range needles {
		found := false
		for _, h := range haystack {
			if h == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
