package annotate

import (
	"context"

	"repro/internal/table"
)

// Hybrid combines a catalogue annotator with the discovery pipeline — the
// integration the paper proposes as future work in §6.4: "use Limaye to
// annotate entities that belong to a pre-compiled catalogue, and resort to
// the search engine only to annotate previously unseen entities", cutting
// the per-row latency that dominates the running time.
type Hybrid struct {
	// Catalogue handles the known entities at zero query cost.
	Catalogue *CatalogueAnnotator
	// Discovery handles the cells the catalogue does not know.
	Discovery *Annotator
}

// AnnotateTable annotates known cells from the catalogue, sends only the
// remaining cells through the search engine, merges the two annotation sets
// and (when the discovery annotator has post-processing enabled) applies the
// Eq. 2 column-coherence cleanup to the merged result.
func (h *Hybrid) AnnotateTable(t *table.Table) *Result {
	catRes := h.Catalogue.AnnotateTable(t, h.Discovery.Types)
	known := make(map[CellKey]bool, len(catRes.Annotations))
	for _, ann := range catRes.Annotations {
		known[CellKey{Row: ann.Row, Col: ann.Col}] = true
	}

	// Run discovery with post-processing deferred so Eq. 2 sees the
	// merged annotation set.
	cfg := h.Discovery.Config()
	post := cfg.Postprocess
	cfg.Postprocess = false
	discRes := mustResult(cfg.annotateExcluding(context.Background(), t, known))

	merged := &Result{
		Annotations: append(append([]Annotation(nil), catRes.Annotations...), discRes.Annotations...),
		Skipped:     discRes.Skipped,
		Queries:     discRes.Queries,
		CacheHits:   discRes.CacheHits,
		CacheMisses: discRes.CacheMisses,
	}
	if post {
		h.Discovery.Config().postprocess(t, merged)
	}
	return merged
}
