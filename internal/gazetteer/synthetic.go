package gazetteer

import (
	"fmt"
	"math/rand"
)

// Synthetic builds the gazetteer used by the synthetic universe. It contains
// a handful of countries, states and a few hundred cities, with deliberate
// name collisions at both the city level (Paris TX / Paris TN / Paris,
// France; Washington; College Park MD / GA; Springfield everywhere) and the
// street level (Pennsylvania Avenue, Main Street, Clarksville Street, …),
// reproducing the ambiguity structure of Figure 7 in the paper. The extra
// cities and street assignments are drawn deterministically from seed.
// Synthetic(seed) is SyntheticScale(seed, 1); the two agree exactly on the
// base id range.
func Synthetic(seed int64) *Gazetteer { return SyntheticScale(seed, 1) }

// SyntheticScale builds the synthetic gazetteer at a chosen size: scale <= 1
// is exactly Synthetic(seed) (same locations, same ids); every additional
// scale unit appends one more country with ten states, a hundred cities and
// ~1000 streets (≈1100 locations), drawn deterministically from the same
// seed. City and street names come from small shared pools, so name
// collisions — the ambiguity the disambiguator resolves — grow linearly with
// the gazetteer: at scale ≈ 90 the gazetteer exceeds 100k locations and a
// bare street name geocodes to over a thousand candidates.
func SyntheticScale(seed int64, scale int) *Gazetteer {
	rng := rand.New(rand.NewSource(seed))
	g := New()

	usa := g.Add("USA", Country, NoLocation)
	france := g.Add("France", Country, NoLocation)
	uk := g.Add("United Kingdom", Country, NoLocation)
	italy := g.Add("Italy", Country, NoLocation)
	japan := g.Add("Japan", Country, NoLocation)
	australia := g.Add("Australia", Country, NoLocation)

	// US states (a representative subset).
	states := map[string]LocID{}
	for _, s := range []string{
		"MD", "TX", "TN", "GA", "FL", "AR", "KY", "CA", "NY", "IL",
		"MA", "WA", "OH", "PA", "VA", "MO", "NJ", "MI", "OR", "CO",
	} {
		states[s] = g.Add(s, State, usa)
	}
	// D.C. is modelled as a state-level container so "Washington, D.C."
	// parses like the paper's example.
	dc := g.Add("D.C.", State, usa)

	// Non-US "states" (regions) so every city has a full chain.
	idf := g.Add("Île-de-France", State, france)
	provence := g.Add("Provence", State, france)
	england := g.Add("England", State, uk)
	scotland := g.Add("Scotland", State, uk)
	lazio := g.Add("Lazio", State, italy)
	tuscany := g.Add("Tuscany", State, italy)
	kanto := g.Add("Kanto", State, japan)
	kansai := g.Add("Kansai", State, japan)
	nsw := g.Add("New South Wales", State, australia)
	victoria := g.Add("Victoria", State, australia)

	// Cities with deliberate collisions (name -> multiple states).
	type cityDef struct {
		name  string
		state LocID
	}
	defs := []cityDef{
		{"Washington", dc}, {"Washington", states["GA"]}, {"Washington", states["PA"]},
		{"Paris", states["TX"]}, {"Paris", states["TN"]}, {"Paris", states["KY"]}, {"Paris", idf},
		{"College Park", states["MD"]}, {"College Park", states["GA"]},
		{"Springfield", states["IL"]}, {"Springfield", states["MA"]}, {"Springfield", states["MO"]}, {"Springfield", states["OH"]},
		{"Baltimore", states["MD"]},
		{"Bogata", states["TX"]}, {"Trenton", states["KY"]}, {"Trenton", states["NJ"]},
		{"Lockhart", states["FL"]}, {"Conway", states["AR"]},
		{"New York", states["NY"]}, {"Los Angeles", states["CA"]},
		{"San Francisco", states["CA"]}, {"Santa Monica", states["CA"]},
		{"Chicago", states["IL"]}, {"Boston", states["MA"]},
		{"Seattle", states["WA"]}, {"Portland", states["OR"]}, {"Portland", states["MA"]},
		{"Denver", states["CO"]}, {"Austin", states["TX"]}, {"Houston", states["TX"]},
		{"Nashville", states["TN"]}, {"Memphis", states["TN"]},
		{"Atlanta", states["GA"]}, {"Miami", states["FL"]},
		{"Detroit", states["MI"]}, {"Columbus", states["OH"]}, {"Columbus", states["GA"]},
		{"Richmond", states["VA"]}, {"Richmond", states["CA"]},
		{"Marseille", provence}, {"Lyon", provence}, {"Nice", provence},
		{"London", england}, {"Manchester", england}, {"Oxford", england},
		{"Cambridge", england}, {"Cambridge", states["MA"]},
		{"Edinburgh", scotland}, {"Glasgow", scotland},
		{"Rome", lazio}, {"Florence", tuscany}, {"Pisa", tuscany},
		{"Tokyo", kanto}, {"Yokohama", kanto}, {"Osaka", kansai}, {"Kyoto", kansai},
		{"Sydney", nsw}, {"Melbourne", victoria},
	}
	cities := make([]LocID, 0, len(defs))
	for _, d := range defs {
		cities = append(cities, g.Add(d.name, City, d.state))
	}

	// Shared street-name pool; each street name is instantiated in many
	// cities so that a bare street segment geocodes ambiguously.
	streetNames := []string{
		"Pennsylvania Avenue", "Main Street", "Clarksville Street",
		"Wofford Lane", "Oak Street", "Maple Avenue", "Park Road",
		"High Street", "Church Street", "Station Road", "Broadway",
		"Elm Street", "Washington Street", "Lake Drive", "River Road",
		"Hill Street", "Market Street", "King Street", "Queen Street",
		"Mill Lane", "Bridge Road", "Victoria Street", "Garden Avenue",
		"Sunset Boulevard", "Ocean Drive", "College Avenue",
		"Liberty Street", "Union Street", "Cedar Lane", "Chestnut Street",
	}
	for _, sn := range streetNames {
		// Instantiate in 4..10 random cities.
		n := 4 + rng.Intn(7)
		perm := rng.Perm(len(cities))
		for i := 0; i < n && i < len(perm); i++ {
			g.Add(sn, Street, cities[perm[i]])
		}
	}
	// Guarantee the paper's Figure 7 cases regardless of the draw.
	ensureStreet(g, "Pennsylvania Avenue", "Washington", dc)
	ensureStreet(g, "Pennsylvania Avenue", "Baltimore", states["MD"])
	ensureStreet(g, "Wofford Lane", "College Park", states["MD"])
	ensureStreet(g, "Wofford Lane", "Lockhart", states["FL"])
	ensureStreet(g, "Wofford Lane", "Conway", states["AR"])
	ensureStreet(g, "Clarksville Street", "Paris", states["TX"])
	ensureStreet(g, "Clarksville Street", "Bogata", states["TX"])
	ensureStreet(g, "Clarksville Street", "Trenton", states["KY"])
	grow(g, rng, scale)
	return g
}

// scaleCityNames and scaleStreetNames are the shared name pools the growth
// rounds draw from; reusing a small pool across many cities is what makes
// the scaled gazetteer ambiguous rather than merely large.
var (
	scaleCityNames   = crossNames([]string{"Aber", "Avon", "Bel", "Brook", "Clar", "Cres", "Dun", "East", "Fair", "Glen", "Green", "Hart", "Kings", "Lake", "Mill", "North", "Oak", "Spring", "West", "Wood"}, []string{"dale", "field", "ford", "haven", "mont", "port", "side", "ton", "ville", "wick"})
	scaleStreetNames = crossNames([]string{"Alder", "Aspen", "Bay", "Birch", "Cedar", "Cherry", "Dogwood", "Fern", "Hazel", "Holly", "Juniper", "Laurel", "Linden", "Magnolia", "Myrtle", "Poplar", "Rowan", "Spruce", "Walnut", "Willow"}, []string{" Avenue", " Court", " Road"})
)

// crossNames returns the cross product prefix+suffix in prefix-major order.
func crossNames(prefixes, suffixes []string) []string {
	out := make([]string, 0, len(prefixes)*len(suffixes))
	for _, p := range prefixes {
		for _, s := range suffixes {
			out = append(out, p+s)
		}
	}
	return out
}

// grow appends scale-1 growth rounds to the base gazetteer, continuing the
// base construction's deterministic random stream.
func grow(g *Gazetteer, rng *rand.Rand, scale int) {
	for r := 1; r < scale; r++ {
		country := g.Add(fmt.Sprintf("Terra %d", r), Country, NoLocation)
		for s := 1; s <= 10; s++ {
			state := g.Add(fmt.Sprintf("Region %d-%d", r, s), State, country)
			for c := 0; c < 10; c++ {
				city := g.Add(scaleCityNames[rng.Intn(len(scaleCityNames))], City, state)
				for k, n := 0, 8+rng.Intn(5); k < n; k++ {
					g.Add(scaleStreetNames[rng.Intn(len(scaleStreetNames))], Street, city)
				}
			}
		}
	}
}

// ensureStreet adds the street to the named city in the given state unless it
// already exists there.
func ensureStreet(g *Gazetteer, street, city string, state LocID) {
	var target LocID
	for _, c := range g.Lookup(city, City) {
		if g.Parent(c) == state {
			target = c
			break
		}
	}
	if target == NoLocation {
		target = g.Add(city, City, state)
	}
	for _, s := range g.Lookup(street, Street) {
		if g.Parent(s) == target {
			return
		}
	}
	g.Add(street, Street, target)
}

// Cities returns all city ids, sorted.
func (g *Gazetteer) Cities() []LocID {
	var out []LocID
	for i := 1; i < len(g.locs); i++ {
		if g.locs[i].kind == City {
			out = append(out, LocID(i))
		}
	}
	return out
}

// StreetsIn returns all street ids belonging to the given city, sorted.
func (g *Gazetteer) StreetsIn(city LocID) []LocID {
	var out []LocID
	for i := 1; i < len(g.locs); i++ {
		if g.locs[i].kind == Street && g.locs[i].parent == city {
			out = append(out, LocID(i))
		}
	}
	return out
}
