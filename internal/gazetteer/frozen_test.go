package gazetteer

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// equalIDs compares two candidate lists element-wise; nil and empty are
// interchangeable (callers only ever check length and elements).
func equalIDs(a, b []LocID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkFrozenEquivalence drives every Geo method over both forms and fails
// on any divergence.
func checkFrozenEquivalence(t *testing.T, g *Builder, f *Frozen) {
	t.Helper()
	if g.Len() != f.Len() {
		t.Fatalf("Len: builder %d, frozen %d", g.Len(), f.Len())
	}
	names := map[string]bool{}
	for i := 1; i <= g.Len(); i++ {
		id := LocID(i)
		names[g.Name(id)] = true
		if g.Name(id) != f.Name(id) {
			t.Fatalf("Name(%d): %q vs %q", id, g.Name(id), f.Name(id))
		}
		if g.Kind(id) != f.Kind(id) {
			t.Fatalf("Kind(%d): %v vs %v", id, g.Kind(id), f.Kind(id))
		}
		if g.Parent(id) != f.Parent(id) {
			t.Fatalf("Parent(%d): %v vs %v", id, g.Parent(id), f.Parent(id))
		}
		if g.CityOf(id) != f.CityOf(id) {
			t.Fatalf("CityOf(%d): %v vs %v", id, g.CityOf(id), f.CityOf(id))
		}
		if !equalIDs(g.Containers(id), f.Containers(id)) {
			t.Fatalf("Containers(%d): %v vs %v", id, g.Containers(id), f.Containers(id))
		}
		if g.FullName(id) != f.FullName(id) {
			t.Fatalf("FullName(%d): %q vs %q", id, g.FullName(id), f.FullName(id))
		}
	}
	for name := range names {
		for k := Street; k <= Country; k++ {
			if !equalIDs(g.Lookup(name, k), f.Lookup(name, k)) {
				t.Fatalf("Lookup(%q, %v) diverges", name, k)
			}
		}
		if !equalIDs(g.LookupAny(name), f.LookupAny(name)) {
			t.Fatalf("LookupAny(%q) diverges", name)
		}
		if !equalIDs(g.LookupAny(" "+name+"  "), f.LookupAny(" "+name+"  ")) {
			t.Fatalf("LookupAny with padding (%q) diverges", name)
		}
	}
	if !equalIDs(g.Cities(), f.Cities()) {
		t.Fatal("Cities diverges")
	}
	// StreetsIn must agree on EVERY id, not only cities: on a state or
	// country both forms answer nil (children exist but are not streets).
	for i := 1; i <= g.Len(); i++ {
		if !equalIDs(g.StreetsIn(LocID(i)), f.StreetsIn(LocID(i))) {
			t.Fatalf("StreetsIn(%d) (%v) diverges", i, g.Kind(LocID(i)))
		}
	}
}

func TestFrozenMatchesBuilder(t *testing.T) {
	for _, scale := range []int{1, 3} {
		g := SyntheticScale(7, scale)
		checkFrozenEquivalence(t, g, g.Freeze())
	}
}

// TestFrozenGeocodeMatchesBuilder throws every name in the gazetteer — and
// randomized partial addresses built from them — at both Geocode paths.
func TestFrozenGeocodeMatchesBuilder(t *testing.T) {
	g := SyntheticScale(11, 2)
	f := g.Freeze()
	rng := rand.New(rand.NewSource(13))

	var streetNames, cityNames, qualNames []string
	seen := map[string]bool{}
	for i := 1; i <= g.Len(); i++ {
		id := LocID(i)
		name := g.Name(id)
		if seen[name] {
			continue
		}
		seen[name] = true
		switch g.Kind(id) {
		case Street:
			streetNames = append(streetNames, name)
		case City:
			cityNames = append(cityNames, name)
		default:
			qualNames = append(qualNames, name)
		}
	}
	addrs := []string{"", " , ", "99 Nowhere Boulevard, Atlantis"}
	for _, s := range streetNames {
		addrs = append(addrs, s, fmt.Sprintf("%d %s", 1+rng.Intn(999), s))
	}
	for _, c := range cityNames {
		addrs = append(addrs, c)
	}
	for trial := 0; trial < 500; trial++ {
		street := streetNames[rng.Intn(len(streetNames))]
		city := cityNames[rng.Intn(len(cityNames))]
		qual := qualNames[rng.Intn(len(qualNames))]
		switch trial % 4 {
		case 0:
			addrs = append(addrs, street+", "+city)
		case 1:
			addrs = append(addrs, street+", "+city+", "+qual)
		case 2:
			addrs = append(addrs, city+", "+qual)
		case 3:
			addrs = append(addrs, street+", "+qual)
		}
	}
	for _, addr := range addrs {
		if !equalIDs(g.Geocode(addr), f.Geocode(addr)) {
			t.Fatalf("Geocode(%q): builder %v, frozen %v", addr, g.Geocode(addr), f.Geocode(addr))
		}
	}
}

// TestByNameListsAreSorted asserts the invariant Lookup/LookupAny rely on
// since dropping their per-call sort: byName lists are appended in
// increasing id order.
func TestByNameListsAreSorted(t *testing.T) {
	g := SyntheticScale(3, 2)
	for name, ids := range g.byName {
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("byName[%q] not strictly increasing: %v", name, ids)
			}
		}
	}
	// And the public views observe it.
	for _, name := range []string{"Main Street", "Paris", "Springfield", "USA"} {
		ids := g.LookupAny(name)
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("LookupAny(%q) not sorted: %v", name, ids)
			}
		}
	}
}

func TestFrozenChildren(t *testing.T) {
	f := Synthetic(5).Freeze()
	countries := f.Children(NoLocation)
	if len(countries) == 0 {
		t.Fatal("no countries")
	}
	for _, c := range countries {
		if f.Kind(c) != Country {
			t.Fatalf("child of NoLocation has kind %v", f.Kind(c))
		}
		for _, st := range f.Children(c) {
			if f.Parent(st) != c || f.Kind(st) != State {
				t.Fatalf("child %d of country %d: kind %v parent %v", st, c, f.Kind(st), f.Parent(st))
			}
		}
	}
	if f.Children(countries[0]) == nil {
		t.Fatal("first country has no states")
	}
}

func TestSyntheticScaleExtendsBase(t *testing.T) {
	base := Synthetic(42)
	big := SyntheticScale(42, 3)
	if big.Len() <= base.Len() {
		t.Fatalf("scale 3 (%d) not larger than base (%d)", big.Len(), base.Len())
	}
	// The base id range is bit-identical: scaling only appends.
	for i := 1; i <= base.Len(); i++ {
		id := LocID(i)
		if base.Name(id) != big.Name(id) || base.Kind(id) != big.Kind(id) || base.Parent(id) != big.Parent(id) {
			t.Fatalf("location %d differs between scale 1 and scale 3", i)
		}
	}
	perRound := big.Len() - base.Len()
	if perRound < 2000 {
		t.Fatalf("two growth rounds added only %d locations", perRound)
	}
	// Determinism at scale.
	again := SyntheticScale(42, 3)
	if again.Len() != big.Len() {
		t.Fatalf("same-seed scale builds differ: %d vs %d", again.Len(), big.Len())
	}
}

func TestSyntheticScale100k(t *testing.T) {
	if testing.Short() {
		t.Skip("large gazetteer build")
	}
	g := SyntheticScale(42, 91)
	if g.Len() < 100000 {
		t.Fatalf("scale 91 gazetteer has %d locations, want >= 100k", g.Len())
	}
	f := g.Freeze()
	if f.Len() != g.Len() {
		t.Fatalf("freeze lost locations: %d vs %d", f.Len(), g.Len())
	}
	// Ambiguity grows with scale: a pooled street name has many candidates.
	if n := len(f.Lookup(scaleStreetNames[0], Street)); n < 100 {
		t.Errorf("pooled street %q has %d instances, want >= 100", scaleStreetNames[0], n)
	}
}

func TestFrozenPersistRoundTrip(t *testing.T) {
	for _, scale := range []int{1, 2} {
		f := SyntheticScale(9, scale).Freeze()
		var buf bytes.Buffer
		n, err := f.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadFrozen(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != f.Len() {
			t.Fatalf("round trip lost locations: %d vs %d", got.Len(), f.Len())
		}
		for i := 1; i <= f.Len(); i++ {
			id := LocID(i)
			if got.Name(id) != f.Name(id) || got.Kind(id) != f.Kind(id) || got.Parent(id) != f.Parent(id) {
				t.Fatalf("location %d differs after round trip", i)
			}
		}
		for _, addr := range []string{"1600 Pennsylvania Avenue", "Wofford Lane", "Paris", "Clarksville Street, Paris, TX"} {
			if !equalIDs(got.Geocode(addr), f.Geocode(addr)) {
				t.Fatalf("Geocode(%q) differs after round trip", addr)
			}
		}
		// Snapshots are byte-reproducible.
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Error("re-serialised snapshot differs byte-wise")
		}
	}
}

func TestReadFrozenRejectsCorruption(t *testing.T) {
	f := Synthetic(1).Freeze()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"integrity mismatch", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		// Byte 12 is the low byte of nameCount; inflating it past
		// locCount trips the header sanity check.
		{"name count overflow", func(b []byte) []byte { b[13] = 0xff; return b }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mutated := c.mutate(append([]byte(nil), good...))
			if _, err := ReadFrozen(bytes.NewReader(mutated)); err == nil {
				t.Error("corrupt snapshot loaded without error")
			}
		})
	}
}

func BenchmarkFrozenGeocode(b *testing.B) {
	f := SyntheticScale(42, 8).Freeze()
	addrs := []string{
		"1600 Pennsylvania Avenue",
		"Clarksville Street, Paris, TX",
		scaleStreetNames[0],
		scaleStreetNames[1] + ", " + scaleCityNames[0],
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Geocode(addrs[i%len(addrs)])
	}
}

func BenchmarkFreeze(b *testing.B) {
	g := SyntheticScale(42, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Freeze()
	}
}

// limitedWriter accepts limit bytes then fails, simulating a full disk.
type limitedWriter struct{ limit, written int }

func (l *limitedWriter) Write(p []byte) (int, error) {
	if l.written+len(p) > l.limit {
		k := l.limit - l.written
		l.written += k
		return k, errors.New("disk full")
	}
	l.written += len(p)
	return len(p), nil
}

// TestWriteToReportsFlushedBytes: on a mid-stream write failure, WriteTo's
// byte count reflects what actually reached the writer, not what was
// buffered.
func TestWriteToReportsFlushedBytes(t *testing.T) {
	f := Synthetic(1).Freeze()
	var buf bytes.Buffer
	total, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lw := &limitedWriter{limit: int(total) / 2}
	n, err := f.WriteTo(lw)
	if err == nil {
		t.Fatal("truncated writer did not surface an error")
	}
	if n != int64(lw.written) {
		t.Errorf("WriteTo reported %d bytes, writer received %d", n, lw.written)
	}
	if n > total/2 {
		t.Errorf("reported %d bytes exceeds the writer's %d-byte limit", n, total/2)
	}
}
