package gazetteer

import (
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Gazetteer {
	t.Helper()
	g := New()
	usa := g.Add("USA", Country, NoLocation)
	md := g.Add("MD", State, usa)
	dc := g.Add("D.C.", State, usa)
	tx := g.Add("TX", State, usa)
	balt := g.Add("Baltimore", City, md)
	wash := g.Add("Washington", City, dc)
	paris := g.Add("Paris", City, tx)
	g.Add("Pennsylvania Avenue", Street, balt)
	g.Add("Pennsylvania Avenue", Street, wash)
	g.Add("Clarksville Street", Street, paris)
	return g
}

func TestHierarchy(t *testing.T) {
	g := buildSmall(t)
	streets := g.Lookup("Pennsylvania Avenue", Street)
	if len(streets) != 2 {
		t.Fatalf("want 2 Pennsylvania Avenues, got %d", len(streets))
	}
	for _, s := range streets {
		if g.Kind(s) != Street {
			t.Errorf("kind = %v, want Street", g.Kind(s))
		}
		city := g.Parent(s)
		if g.Kind(city) != City {
			t.Errorf("parent of street has kind %v, want City", g.Kind(city))
		}
		chain := g.Containers(s)
		if len(chain) != 3 {
			t.Errorf("container chain length = %d, want 3 (city, state, country)", len(chain))
		}
		if g.Kind(chain[len(chain)-1]) != Country {
			t.Errorf("chain should end at a country")
		}
	}
}

func TestCityOf(t *testing.T) {
	g := buildSmall(t)
	s := g.Lookup("Clarksville Street", Street)[0]
	city := g.CityOf(s)
	if g.Name(city) != "Paris" {
		t.Errorf("CityOf street = %q, want Paris", g.Name(city))
	}
	if g.CityOf(city) != city {
		t.Errorf("CityOf(city) should be the city itself")
	}
	usa := g.Lookup("USA", Country)[0]
	if g.CityOf(usa) != NoLocation {
		t.Errorf("CityOf(country) should be NoLocation")
	}
}

func TestAddPanicsOnBadHierarchy(t *testing.T) {
	g := buildSmall(t)
	usa := g.Lookup("USA", Country)[0]
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on street directly under country")
		}
	}()
	g.Add("Bad Street", Street, usa)
}

func TestFullName(t *testing.T) {
	g := buildSmall(t)
	var washAve LocID
	for _, s := range g.Lookup("Pennsylvania Avenue", Street) {
		if g.Name(g.CityOf(s)) == "Washington" {
			washAve = s
		}
	}
	want := "Pennsylvania Avenue, Washington, D.C., USA"
	if got := g.FullName(washAve); got != want {
		t.Errorf("FullName = %q, want %q", got, want)
	}
}

func TestParseAddress(t *testing.T) {
	cases := []struct {
		in   string
		want Address
	}{
		{"12 Main Street", Address{StreetNumber: 12, Street: "Main Street"}},
		{"1600 Pennsylvania Avenue, Washington, D.C., USA",
			Address{StreetNumber: 1600, Street: "Pennsylvania Avenue", City: "Washington", State: "D.C.", Country: "USA"}},
		{"Main Street, Springfield, 62704", Address{Street: "Main Street", City: "Springfield", Zip: "62704"}},
		{"Washington, D.C.", Address{Street: "Washington", City: "D.C."}},
		{"", Address{}},
		{" , , ", Address{}},
	}
	for _, c := range cases {
		if got := ParseAddress(c.in); got != c.want {
			t.Errorf("ParseAddress(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestAddressFormatParseRoundTrip(t *testing.T) {
	f := func(num uint8, hasCity, hasState bool) bool {
		a := Address{StreetNumber: int(num%90) + 1, Street: "Oak Street"}
		if hasCity {
			a.City = "Springfield"
			// States are positional after the city, so a state can
			// only round-trip when a city is present.
			if hasState {
				a.State = "IL"
			}
		}
		got := ParseAddress(a.Format())
		return got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeocodeAmbiguousStreet(t *testing.T) {
	g := buildSmall(t)
	cands := g.Geocode("1600 Pennsylvania Avenue")
	if len(cands) != 2 {
		t.Fatalf("ambiguous street should have 2 candidates, got %d", len(cands))
	}
	cities := map[string]bool{}
	for _, c := range cands {
		cities[g.Name(g.CityOf(c))] = true
	}
	if !cities["Baltimore"] || !cities["Washington"] {
		t.Errorf("candidates = %v, want Baltimore and Washington", cities)
	}
}

func TestGeocodeNarrowedByCity(t *testing.T) {
	g := buildSmall(t)
	cands := g.Geocode("1600 Pennsylvania Avenue, Washington")
	if len(cands) != 1 {
		t.Fatalf("city-qualified street should have 1 candidate, got %d", len(cands))
	}
	if g.Name(g.CityOf(cands[0])) != "Washington" {
		t.Errorf("wrong city %q", g.Name(g.CityOf(cands[0])))
	}
}

func TestGeocodeCityFallback(t *testing.T) {
	g := buildSmall(t)
	cands := g.Geocode("Washington, D.C.")
	if len(cands) != 1 {
		t.Fatalf("want 1 candidate for Washington, D.C., got %d", len(cands))
	}
	if g.Kind(cands[0]) != City {
		t.Errorf("kind = %v, want City", g.Kind(cands[0]))
	}
}

func TestGeocodeUnknown(t *testing.T) {
	g := buildSmall(t)
	if cands := g.Geocode("99 Nowhere Boulevard, Atlantis"); cands != nil {
		t.Errorf("unknown address should geocode to nil, got %v", cands)
	}
	if cands := g.Geocode(""); cands != nil {
		t.Errorf("empty address should geocode to nil, got %v", cands)
	}
}

func TestSyntheticGazetteer(t *testing.T) {
	g := Synthetic(42)
	if g.Len() < 100 {
		t.Fatalf("synthetic gazetteer too small: %d locations", g.Len())
	}
	// The Figure 7 ambiguities must exist.
	if n := len(g.Geocode("1600 Pennsylvania Avenue")); n < 2 {
		t.Errorf("Pennsylvania Avenue candidates = %d, want >= 2", n)
	}
	if n := len(g.Geocode("Wofford Lane")); n < 3 {
		t.Errorf("Wofford Lane candidates = %d, want >= 3", n)
	}
	if n := len(g.Geocode("Clarksville Street")); n < 3 {
		t.Errorf("Clarksville Street candidates = %d, want >= 3", n)
	}
	if n := len(g.Lookup("Paris", City)); n < 2 {
		t.Errorf("Paris cities = %d, want >= 2", n)
	}
	// Narrowing by state works on the synthetic data.
	cands := g.Geocode("Clarksville Street, Paris, TX")
	if len(cands) != 1 {
		t.Errorf("fully qualified address candidates = %d, want 1", len(cands))
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	g1 := Synthetic(7)
	g2 := Synthetic(7)
	if g1.Len() != g2.Len() {
		t.Fatalf("same seed produced different sizes: %d vs %d", g1.Len(), g2.Len())
	}
	for i := 1; i <= g1.Len(); i++ {
		id := LocID(i)
		if g1.Name(id) != g2.Name(id) || g1.Kind(id) != g2.Kind(id) || g1.Parent(id) != g2.Parent(id) {
			t.Fatalf("location %d differs between same-seed builds", i)
		}
	}
}

func TestCitiesAndStreetsIn(t *testing.T) {
	g := Synthetic(42)
	cities := g.Cities()
	if len(cities) == 0 {
		t.Fatal("no cities")
	}
	streetsTotal := 0
	for _, c := range cities {
		for _, s := range g.StreetsIn(c) {
			if g.Parent(s) != c {
				t.Errorf("StreetsIn returned street outside city")
			}
			streetsTotal++
		}
	}
	if streetsTotal == 0 {
		t.Error("no streets in any city")
	}
}
