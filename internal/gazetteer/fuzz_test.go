package gazetteer

import (
	"strings"
	"sync"
	"testing"
)

// FuzzParseAddress checks the address parser's structural invariants on
// arbitrary input: no panics, components never contain the separator, the
// zip is zip-shaped, a street number implies a street, and one
// parse∘format round reaches a fixed point (re-parsing the formatted form
// reproduces the parse exactly — the property that pinned the street-number
// extraction to all-digit tokens).
func FuzzParseAddress(f *testing.F) {
	f.Add("1600 Pennsylvania Avenue, Washington, D.C., USA")
	f.Add("Main Street, Springfield, 62704")
	f.Add("Washington, D.C.")
	f.Add(" , , ")
	f.Add("-12 Main Street, Bogata")
	f.Add("007 Main Street")
	f.Add("12 34 Oak Street, 99999, Paris")
	f.Fuzz(func(t *testing.T, s string) {
		a := ParseAddress(s)
		for _, part := range []string{a.Street, a.City, a.State, a.Country, a.Zip} {
			if strings.ContainsRune(part, ',') {
				t.Fatalf("component %q contains a separator (input %q)", part, s)
			}
		}
		if a.Zip != "" && !isZip(a.Zip) {
			t.Fatalf("zip %q is not zip-shaped (input %q)", a.Zip, s)
		}
		if a.StreetNumber != 0 && a.Street == "" {
			t.Fatalf("street number %d without a street (input %q)", a.StreetNumber, s)
		}
		if a.Street == "" && (a.City != "" || a.State != "" || a.Country != "") {
			t.Fatalf("positional components without a street: %+v (input %q)", a, s)
		}
		if b := ParseAddress(a.Format()); b != a {
			t.Fatalf("parse∘format not a fixed point:\n input %q\n first %+v\n again %+v", s, a, b)
		}
	})
}

// fuzzGaz builds the shared gazetteer triple (builder, frozen,
// persisted-and-reloaded frozen) once per process for the geocode fuzz
// target.
var fuzzGaz = sync.OnceValues(func() (*Builder, [2]*Frozen) {
	g := SyntheticScale(42, 2)
	f := g.Freeze()
	var buf strings.Builder
	if _, err := f.WriteTo(&buf); err != nil {
		panic(err)
	}
	reloaded, err := ReadFrozen(strings.NewReader(buf.String()))
	if err != nil {
		panic(err)
	}
	return g, [2]*Frozen{f, reloaded}
})

// FuzzGeocodeRoundTrip feeds arbitrary address strings through all three
// gazetteer forms — mutable builder, frozen, and frozen reloaded from its
// binary snapshot — and requires identical candidate lists, every candidate
// id valid and the list strictly increasing.
func FuzzGeocodeRoundTrip(f *testing.F) {
	f.Add("1600 Pennsylvania Avenue")
	f.Add("Wofford Lane")
	f.Add("Clarksville Street, Paris, TX")
	f.Add("Washington, D.C., USA")
	f.Add("Paris")
	f.Add("Oakton")
	f.Add("Cedar Court, Aberdale, Region 1-1, Terra 1")
	f.Add("99 Nowhere Boulevard, Atlantis")
	f.Fuzz(func(t *testing.T, addr string) {
		g, frozen := fuzzGaz()
		want := g.Geocode(addr)
		for i := 1; i < len(want); i++ {
			if want[i-1] >= want[i] {
				t.Fatalf("Geocode(%q) not strictly increasing: %v", addr, want)
			}
		}
		for _, id := range want {
			if id <= NoLocation || int(id) > g.Len() {
				t.Fatalf("Geocode(%q) returned invalid id %d", addr, id)
			}
		}
		for which, fz := range frozen {
			got := fz.Geocode(addr)
			if len(got) != len(want) {
				t.Fatalf("frozen[%d].Geocode(%q) = %v, builder = %v", which, addr, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("frozen[%d].Geocode(%q) = %v, builder = %v", which, addr, got, want)
				}
			}
		}
	})
}
