// Package gazetteer provides the geographic substrate that replaces the
// Google Geocoding API used in §5.2.2 of the paper. It models geographic
// locations in a strict containment hierarchy (streets ⊂ cities ⊂ states ⊂
// countries), formats and parses postal addresses — including the partial,
// ambiguous addresses the paper highlights — and geocodes an address string
// to the set of candidate interpretations.
package gazetteer

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a location in the containment hierarchy.
type Kind int

// The hierarchy levels, from most to least specific.
const (
	Street Kind = iota
	City
	State
	Country
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Street:
		return "street"
	case City:
		return "city"
	case State:
		return "state"
	case Country:
		return "country"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// LocID identifies a location inside a Gazetteer. The zero LocID is invalid.
type LocID int

// NoLocation is the invalid LocID.
const NoLocation LocID = 0

// location is the internal record for one geographic location.
type location struct {
	name   string
	kind   Kind
	parent LocID // direct container; NoLocation for countries
}

// Gazetteer is an in-memory geographic database.
type Gazetteer struct {
	locs   []location // index 0 unused so that LocID 0 stays invalid
	byName map[string][]LocID
}

// New returns an empty gazetteer.
func New() *Gazetteer {
	return &Gazetteer{
		locs:   make([]location, 1),
		byName: map[string][]LocID{},
	}
}

// Add inserts a location under the given parent and returns its id. Countries
// take parent = NoLocation. Add panics if the parent/kind combination
// violates the hierarchy, since that is a programming error in dataset
// construction, not a runtime condition.
func (g *Gazetteer) Add(name string, kind Kind, parent LocID) LocID {
	if kind == Country {
		if parent != NoLocation {
			panic("gazetteer: country cannot have a parent")
		}
	} else {
		if parent == NoLocation {
			panic("gazetteer: " + kind.String() + " requires a parent")
		}
		pk := g.locs[parent].kind
		if pk != kind+1 {
			panic(fmt.Sprintf("gazetteer: %s cannot be contained in %s", kind, pk))
		}
	}
	id := LocID(len(g.locs))
	g.locs = append(g.locs, location{name: name, kind: kind, parent: parent})
	key := normalizeName(name)
	g.byName[key] = append(g.byName[key], id)
	return id
}

// Len returns the number of locations stored.
func (g *Gazetteer) Len() int { return len(g.locs) - 1 }

// Name returns the bare name of a location.
func (g *Gazetteer) Name(id LocID) string { return g.locs[id].name }

// Kind returns the hierarchy level of a location.
func (g *Gazetteer) Kind(id LocID) Kind { return g.locs[id].kind }

// Parent returns the direct geographic container of a location (the "most
// specific container" of the paper), or NoLocation for countries.
func (g *Gazetteer) Parent(id LocID) LocID { return g.locs[id].parent }

// Containers returns the chain of containers from the direct one up to the
// country.
func (g *Gazetteer) Containers(id LocID) []LocID {
	var out []LocID
	for p := g.Parent(id); p != NoLocation; p = g.Parent(p) {
		out = append(out, p)
	}
	return out
}

// CityOf returns the city containing the location (or the location itself if
// it is a city), or NoLocation when the location sits above city level.
func (g *Gazetteer) CityOf(id LocID) LocID {
	for cur := id; cur != NoLocation; cur = g.Parent(cur) {
		if g.Kind(cur) == City {
			return cur
		}
	}
	return NoLocation
}

// Lookup returns all locations of the given kind with the given name,
// sorted by id. Name matching is case-insensitive.
func (g *Gazetteer) Lookup(name string, kind Kind) []LocID {
	var out []LocID
	for _, id := range g.byName[normalizeName(name)] {
		if g.locs[id].kind == kind {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LookupAny returns all locations with the given name regardless of kind.
func (g *Gazetteer) LookupAny(name string) []LocID {
	out := append([]LocID(nil), g.byName[normalizeName(name)]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FullName renders the location with its full container chain, e.g.
// "Pennsylvania Avenue, Washington, D.C., USA".
func (g *Gazetteer) FullName(id LocID) string {
	parts := []string{g.Name(id)}
	for _, c := range g.Containers(id) {
		parts = append(parts, g.Name(c))
	}
	return strings.Join(parts, ", ")
}

// normalizeName lower-cases and collapses whitespace for name keys.
func normalizeName(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}
