// Package gazetteer provides the geographic substrate that replaces the
// Google Geocoding API used in §5.2.2 of the paper. It models geographic
// locations in a strict containment hierarchy (streets ⊂ cities ⊂ states ⊂
// countries), formats and parses postal addresses — including the partial,
// ambiguous addresses the paper highlights — and geocodes an address string
// to the set of candidate interpretations.
//
// The package splits the lifecycle in two: a mutable Builder accumulates
// locations during dataset construction, and Freeze converts it into an
// immutable Frozen gazetteer with compact columnar storage (interned names,
// precomputed container chains, per-parent child ranges and a candidate
// lookup index) that serves concurrent geocoding traffic and persists to a
// versioned binary snapshot. Both sides satisfy the read-only Geo interface
// the disambiguation and annotation layers consume.
package gazetteer

import (
	"fmt"
	"strings"

	"repro/internal/textproc"
)

// Kind classifies a location in the containment hierarchy.
type Kind int

// The hierarchy levels, from most to least specific.
const (
	Street Kind = iota
	City
	State
	Country
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Street:
		return "street"
	case City:
		return "city"
	case State:
		return "state"
	case Country:
		return "country"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// LocID identifies a location inside a gazetteer. The zero LocID is invalid.
// Builder and the Frozen gazetteer it freezes into share the same id space.
type LocID int

// NoLocation is the invalid LocID.
const NoLocation LocID = 0

// Geo is the read-only gazetteer view the rest of the system works against:
// the mutable *Builder satisfies it during dataset construction, and the
// immutable *Frozen satisfies it in the serving path. Implementations agree
// exactly — Frozen is differentially tested to return identical results.
type Geo interface {
	// Len returns the number of locations stored.
	Len() int
	// Name returns the bare name of a location.
	Name(LocID) string
	// Kind returns the hierarchy level of a location.
	Kind(LocID) Kind
	// Parent returns the direct geographic container, or NoLocation for
	// countries (and for NoLocation itself).
	Parent(LocID) LocID
	// Containers returns the chain of containers from the direct one up
	// to the country.
	Containers(LocID) []LocID
	// CityOf returns the city containing the location (or the location
	// itself if it is a city), or NoLocation above city level.
	CityOf(LocID) LocID
	// Lookup returns all locations of the given kind with the given name,
	// in increasing id order. Matching is case-insensitive.
	Lookup(name string, kind Kind) []LocID
	// LookupAny returns all locations with the given name regardless of
	// kind, in increasing id order.
	LookupAny(name string) []LocID
	// FullName renders the location with its full container chain.
	FullName(LocID) string
	// Geocode resolves an address string to its candidate LocIDs, in
	// increasing id order; nil when the address is unresolvable.
	Geocode(address string) []LocID
}

// location is the internal record for one geographic location.
type location struct {
	name   string
	kind   Kind
	parent LocID // direct container; NoLocation for countries
}

// Builder is the mutable gazetteer under construction: an append-only store
// of locations. It is not safe for concurrent use; call Freeze once the
// dataset is complete to obtain the immutable, concurrency-safe form.
type Builder struct {
	locs   []location // index 0 unused so that LocID 0 stays invalid
	byName map[string][]LocID
}

// Gazetteer is the historical name of the mutable Builder; existing callers
// keep working unchanged. New code should say Builder (or work against Geo).
type Gazetteer = Builder

// New returns an empty mutable gazetteer.
func New() *Builder {
	return &Builder{
		locs:   make([]location, 1),
		byName: map[string][]LocID{},
	}
}

// NewBuilder is New under the post-split name.
func NewBuilder() *Builder { return New() }

// Add inserts a location under the given parent and returns its id. Countries
// take parent = NoLocation. Add panics if the parent/kind combination
// violates the hierarchy, since that is a programming error in dataset
// construction, not a runtime condition.
func (g *Gazetteer) Add(name string, kind Kind, parent LocID) LocID {
	if kind == Country {
		if parent != NoLocation {
			panic("gazetteer: country cannot have a parent")
		}
	} else {
		if parent == NoLocation {
			panic("gazetteer: " + kind.String() + " requires a parent")
		}
		pk := g.locs[parent].kind
		if pk != kind+1 {
			panic(fmt.Sprintf("gazetteer: %s cannot be contained in %s", kind, pk))
		}
	}
	id := LocID(len(g.locs))
	g.locs = append(g.locs, location{name: name, kind: kind, parent: parent})
	key := normalizeName(name)
	// Ids are assigned in increasing order, so every byName list is sorted
	// by construction — Lookup and LookupAny rely on this invariant.
	g.byName[key] = append(g.byName[key], id)
	return id
}

// Len returns the number of locations stored.
func (g *Gazetteer) Len() int { return len(g.locs) - 1 }

// Name returns the bare name of a location.
func (g *Gazetteer) Name(id LocID) string { return g.locs[id].name }

// Kind returns the hierarchy level of a location.
func (g *Gazetteer) Kind(id LocID) Kind { return g.locs[id].kind }

// Parent returns the direct geographic container of a location (the "most
// specific container" of the paper), or NoLocation for countries.
func (g *Gazetteer) Parent(id LocID) LocID { return g.locs[id].parent }

// Containers returns the chain of containers from the direct one up to the
// country.
func (g *Gazetteer) Containers(id LocID) []LocID {
	var out []LocID
	for p := g.Parent(id); p != NoLocation; p = g.Parent(p) {
		out = append(out, p)
	}
	return out
}

// CityOf returns the city containing the location (or the location itself if
// it is a city), or NoLocation when the location sits above city level.
func (g *Gazetteer) CityOf(id LocID) LocID {
	for cur := id; cur != NoLocation; cur = g.Parent(cur) {
		if g.Kind(cur) == City {
			return cur
		}
	}
	return NoLocation
}

// Lookup returns all locations of the given kind with the given name, in
// increasing id order (byName lists are append-ordered by id, so no sort is
// needed). Name matching is case-insensitive.
func (g *Gazetteer) Lookup(name string, kind Kind) []LocID {
	var out []LocID
	for _, id := range g.byName[normalizeName(name)] {
		if g.locs[id].kind == kind {
			out = append(out, id)
		}
	}
	return out
}

// LookupAny returns all locations with the given name regardless of kind, in
// increasing id order.
func (g *Gazetteer) LookupAny(name string) []LocID {
	return append([]LocID(nil), g.byName[normalizeName(name)]...)
}

// FullName renders the location with its full container chain, e.g.
// "Pennsylvania Avenue, Washington, D.C., USA".
func (g *Gazetteer) FullName(id LocID) string {
	parts := []string{g.Name(id)}
	for _, c := range g.Containers(id) {
		parts = append(parts, g.Name(c))
	}
	return strings.Join(parts, ", ")
}

// normalizeName lower-cases, folds diacritics and collapses whitespace for
// name keys, so "Cédar Lane" and "cedar lane" resolve to the same locations
// whichever spelling a table (or a messy NFD rendering of it) uses. All the
// built-in synthetic names are ASCII, so folding changes nothing for them.
func normalizeName(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(textproc.FoldDiacritics(s))), " ")
}
