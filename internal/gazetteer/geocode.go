package gazetteer

import (
	"strconv"
	"strings"
)

// Address is a structured postal address. Any component other than Street may
// be empty; the paper notes that real-table addresses are frequently partial
// ("just the street number and name and, possibly, the zip code").
type Address struct {
	StreetNumber int
	Street       string
	City         string
	State        string
	Country      string
	Zip          string
}

// Format renders the address in the comma-separated convention used by the
// synthetic tables: "12 Main Street, Springfield, IL, USA".
func (a Address) Format() string {
	var parts []string
	if a.Street != "" {
		s := a.Street
		if a.StreetNumber > 0 {
			s = strconv.Itoa(a.StreetNumber) + " " + s
		}
		parts = append(parts, s)
	}
	if a.City != "" {
		parts = append(parts, a.City)
	}
	if a.State != "" {
		parts = append(parts, a.State)
	}
	if a.Zip != "" {
		parts = append(parts, a.Zip)
	}
	if a.Country != "" {
		parts = append(parts, a.Country)
	}
	return strings.Join(parts, ", ")
}

// ParseAddress splits a comma-separated address string into its raw segments,
// extracting a leading street number from the first segment and recognising
// all-digit segments as zip codes.
func ParseAddress(s string) Address {
	var a Address
	segs := strings.Split(s, ",")
	rest := segs[:0]
	for _, seg := range segs {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if isZip(seg) {
			a.Zip = seg
			continue
		}
		rest = append(rest, seg)
	}
	if len(rest) == 0 {
		return a
	}
	first := rest[0]
	// Only an all-digit leading token with a positive value is a street
	// number; "−12 Main", "+12 Main" and "0 Main" keep their first token
	// as part of the street name. (Format renders only positive numbers,
	// so anything else would break the parse∘format fixed point the fuzz
	// target enforces.)
	if i := strings.IndexByte(first, ' '); i > 0 && allDigits(first[:i]) {
		if n, err := strconv.Atoi(first[:i]); err == nil && n > 0 {
			a.StreetNumber = n
			first = strings.TrimSpace(first[i+1:])
		}
	}
	a.Street = first
	if len(rest) > 1 {
		a.City = rest[1]
	}
	if len(rest) > 2 {
		a.State = rest[2]
	}
	if len(rest) > 3 {
		a.Country = rest[3]
	}
	return a
}

func isZip(s string) bool {
	return len(s) >= 4 && allDigits(s)
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// Geocode resolves an address string to its candidate interpretations, most
// specific first. Like the Google Geocoding API, a partial address yields
// every location it may refer to: a bare street name returns one candidate
// per city containing a street of that name; a bare city name returns every
// city so named. Later segments narrow the candidates: "Main Street,
// Springfield" keeps only Main Streets whose city is named Springfield.
// An unresolvable address returns nil.
func (g *Gazetteer) Geocode(address string) []LocID {
	a := ParseAddress(address)
	if a.Street == "" {
		return nil
	}

	// The first segment may be a street name or, for street-less
	// addresses ("Washington, D.C., USA"), a city name. Try street
	// first; fall back to city.
	cands := g.Lookup(a.Street, Street)
	qualifiers := []string{a.City, a.State, a.Country}
	if len(cands) == 0 {
		cands = g.Lookup(a.Street, City)
		qualifiers = []string{a.City, a.State} // segments shift up one level
		if len(cands) == 0 {
			return nil
		}
	}
	for _, q := range qualifiers {
		if q == "" {
			continue
		}
		cands = g.narrow(cands, q)
	}
	// Candidates come from one Lookup (increasing id order) and narrow
	// preserves order, so the result is already sorted.
	return cands
}

// narrow keeps the candidates that have a container (at any level) whose name
// matches the qualifier.
func (g *Gazetteer) narrow(cands []LocID, qualifier string) []LocID {
	q := normalizeName(qualifier)
	out := cands[:0]
	for _, id := range cands {
		for _, c := range g.Containers(id) {
			if normalizeName(g.Name(c)) == q {
				out = append(out, id)
				break
			}
		}
	}
	return out
}
