package gazetteer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frozen gazetteer persistence: a compact binary snapshot so a gazetteer
// built (or synthesized at scale) once can be reloaded without regeneration,
// mirroring the search index's versioned format. Format (little-endian):
//
//	magic "TGAZ" | version u32
//	locCount u32 | nameCount u32
//	names: nameCount len-prefixed strings (interned exact names)
//	locs: per location 1..locCount: nameID u32, kind u32, parent u32
//	integrity: chainLen u32 | childLen u32 | normCount u32
//
// Only the primary columns are stored; the derived structures (normalized
// names, container chains, child ranges, lookup buckets, cityOf) are rebuilt
// on load and checked against the stored integrity section, keeping the file
// small at the cost of a cheap re-derivation — the same trade the search
// index makes. The reader validates the hierarchy (kind/parent agreement,
// parents preceding children) so a corrupt file returns an error instead of
// panicking dataset-construction invariants.

const (
	gazMagic   = "TGAZ"
	gazVersion = 1

	// maxGazLocations bounds the location count a reader accepts; far
	// above any real dataset, it only rejects obviously corrupt headers.
	maxGazLocations = 1 << 26
)

// countWriter counts the bytes that actually reach the underlying writer,
// so WriteTo's reported n stays honest when a write (or the final flush)
// fails partway.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serialises the frozen gazetteer. It returns the byte count written
// to w (buffered internally; the count reflects flushed bytes, per the
// io.WriterTo contract).
func (f *Frozen) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	u32 := func(v uint32) error {
		return binary.Write(bw, binary.LittleEndian, v)
	}
	str := func(s string) error {
		if err := u32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	err := func() error {
		if _, err := bw.WriteString(gazMagic); err != nil {
			return err
		}
		if err := u32(gazVersion); err != nil {
			return err
		}
		if err := u32(uint32(f.Len())); err != nil {
			return err
		}
		if err := u32(uint32(len(f.names))); err != nil {
			return err
		}
		for _, name := range f.names {
			if err := str(name); err != nil {
				return err
			}
		}
		for i := 1; i <= f.Len(); i++ {
			if err := u32(uint32(f.nameID[i])); err != nil {
				return err
			}
			if err := u32(uint32(f.kinds[i])); err != nil {
				return err
			}
			if err := u32(uint32(f.parents[i])); err != nil {
				return err
			}
		}
		// Integrity section: derived-structure sizes the reader verifies
		// after rebuilding.
		if err := u32(uint32(len(f.chains))); err != nil {
			return err
		}
		if err := u32(uint32(len(f.children))); err != nil {
			return err
		}
		return u32(uint32(len(f.norms)))
	}()
	if err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadFrozen loads a gazetteer snapshot previously written with WriteTo,
// validating the header, the hierarchy and the derived-structure integrity
// section. The result behaves identically to the Frozen that was written.
func ReadFrozen(r io.Reader) (*Frozen, error) {
	br := bufio.NewReader(r)
	u32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	str := func() (string, error) {
		n, err := u32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("gazetteer: corrupt snapshot (name length %d)", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	magic := make([]byte, len(gazMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gazetteer: reading magic: %w", err)
	}
	if string(magic) != gazMagic {
		return nil, fmt.Errorf("gazetteer: bad magic %q", magic)
	}
	version, err := u32()
	if err != nil {
		return nil, err
	}
	if version != gazVersion {
		return nil, fmt.Errorf("gazetteer: unsupported snapshot version %d", version)
	}
	locCount, err := u32()
	if err != nil {
		return nil, err
	}
	nameCount, err := u32()
	if err != nil {
		return nil, err
	}
	if locCount > maxGazLocations || nameCount > locCount {
		return nil, fmt.Errorf("gazetteer: corrupt snapshot (%d locations, %d names)", locCount, nameCount)
	}
	names := make([]string, nameCount)
	for i := range names {
		if names[i], err = str(); err != nil {
			return nil, fmt.Errorf("gazetteer: name %d: %w", i, err)
		}
	}
	locs := make([]location, 1, locCount+1)
	for id := uint32(1); id <= locCount; id++ {
		nameID, err := u32()
		if err != nil {
			return nil, fmt.Errorf("gazetteer: location %d: %w", id, err)
		}
		kind, err := u32()
		if err != nil {
			return nil, fmt.Errorf("gazetteer: location %d: %w", id, err)
		}
		parent, err := u32()
		if err != nil {
			return nil, fmt.Errorf("gazetteer: location %d: %w", id, err)
		}
		if nameID >= uint32(len(names)) {
			return nil, fmt.Errorf("gazetteer: location %d: name id %d out of range", id, nameID)
		}
		if kind > uint32(Country) {
			return nil, fmt.Errorf("gazetteer: location %d: bad kind %d", id, kind)
		}
		k := Kind(kind)
		switch {
		case k == Country && parent != 0:
			return nil, fmt.Errorf("gazetteer: location %d: country with parent %d", id, parent)
		case k != Country && (parent == 0 || parent >= id):
			return nil, fmt.Errorf("gazetteer: location %d: bad parent %d", id, parent)
		case k != Country && locs[parent].kind != k+1:
			return nil, fmt.Errorf("gazetteer: location %d: %s contained in %s", id, k, locs[parent].kind)
		}
		locs = append(locs, location{name: names[nameID], kind: k, parent: LocID(parent)})
	}
	f := freeze(locs)
	for _, check := range []struct {
		name string
		want int
	}{
		{"chain length", len(f.chains)},
		{"child count", len(f.children)},
		{"normalized name count", len(f.norms)},
	} {
		got, err := u32()
		if err != nil {
			return nil, fmt.Errorf("gazetteer: integrity section: %w", err)
		}
		if int(got) != check.want {
			return nil, fmt.Errorf("gazetteer: %s mismatch: %d stored, %d rebuilt", check.name, got, check.want)
		}
	}
	return f, nil
}
