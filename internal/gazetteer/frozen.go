package gazetteer

import "strings"

// Both lifecycle stages serve the same read-only interface.
var (
	_ Geo = (*Builder)(nil)
	_ Geo = (*Frozen)(nil)
)

// Frozen is the immutable, concurrency-safe gazetteer a Builder freezes
// into. Storage is columnar and compact: names are interned once (exact and
// normalized forms), every location is four small integers (name, normalized
// name, kind, parent), container chains and the containing city are
// precomputed per location, children are grouped per parent as CSR ranges,
// and a candidate-lookup index maps each normalized name to its id bucket.
// All query methods return results identical to the Builder they were frozen
// from (differentially and fuzz tested), so the two are interchangeable
// behind the Geo interface; Frozen additionally persists to a versioned
// binary snapshot (see persist.go).
//
// Index 0 of every per-location column is a zero entry so LocID 0 stays
// invalid, mirroring the Builder's layout.
type Frozen struct {
	names []string // interned exact names, first-appearance order
	norms []string // interned normalized names, first-appearance order

	nameID  []int32 // per location: index into names
	normID  []int32 // per location: index into norms
	kinds   []uint8 // per location: Kind
	parents []int32 // per location: direct container id
	cityOf  []int32 // per location: containing city id (0 above city level)

	// chains holds every location's container chain (direct container
	// first, country last), concatenated; location id's chain is
	// chains[chainOff[id]:chainOff[id+1]].
	chainOff []int32
	chains   []LocID

	// children groups location ids by parent: parent p's children are
	// children[childOff[p]:childOff[p+1]], in increasing id order. Index 0
	// holds the countries (parent NoLocation).
	childOff []int32
	children []LocID

	// byNorm maps a normalized name to its index in norms; ids groups all
	// location ids by normalized name, in increasing id order per bucket:
	// norm n's bucket is ids[bucketOff[n]:bucketOff[n+1]]. This is the
	// candidate-lookup index behind Lookup/LookupAny/Geocode.
	byNorm    map[string]int32
	bucketOff []int32
	ids       []LocID

	cities []LocID // all city ids, increasing
}

// Freeze converts the builder's current contents into an immutable Frozen
// gazetteer. The builder remains usable (and may keep growing); the frozen
// copy is an independent snapshot.
func (g *Builder) Freeze() *Frozen { return freeze(g.locs) }

// freeze builds the columnar form from the row-oriented location records.
// It is shared by Builder.Freeze and ReadFrozen; locs[0] is the unused zero
// entry and every parent id is smaller than its child's id (the Builder
// guarantees this by construction, ReadFrozen validates it).
func freeze(locs []location) *Frozen {
	n := len(locs) // including the zero entry
	f := &Frozen{
		nameID:  make([]int32, n),
		normID:  make([]int32, n),
		kinds:   make([]uint8, n),
		parents: make([]int32, n),
		cityOf:  make([]int32, n),
		byNorm:  map[string]int32{},
	}

	// Intern names and fill the per-location columns.
	nameIdx := map[string]int32{}
	for i := 1; i < n; i++ {
		l := locs[i]
		ni, ok := nameIdx[l.name]
		if !ok {
			ni = int32(len(f.names))
			nameIdx[l.name] = ni
			f.names = append(f.names, l.name)
		}
		norm := normalizeName(l.name)
		mi, ok := f.byNorm[norm]
		if !ok {
			mi = int32(len(f.norms))
			f.byNorm[norm] = mi
			f.norms = append(f.norms, norm)
		}
		f.nameID[i] = ni
		f.normID[i] = mi
		f.kinds[i] = uint8(l.kind)
		f.parents[i] = int32(l.parent)
		if l.kind == City {
			f.cityOf[i] = int32(i)
			f.cities = append(f.cities, LocID(i))
		} else if l.kind < City {
			f.cityOf[i] = f.cityOf[l.parent] // parent precedes child
		}
	}

	// Container chains: chain(i) = parent(i) + chain(parent(i)); parents
	// precede children, so one ascending pass suffices for both sizing and
	// filling.
	f.chainOff = make([]int32, n+1)
	for i := 1; i < n; i++ {
		clen := int32(0)
		if p := f.parents[i]; p != 0 {
			clen = f.chainOff[p+1] - f.chainOff[p] + 1
		}
		f.chainOff[i+1] = f.chainOff[i] + clen
	}
	f.chains = make([]LocID, f.chainOff[n])
	for i := 1; i < n; i++ {
		if p := f.parents[i]; p != 0 {
			off := f.chainOff[i]
			f.chains[off] = LocID(p)
			copy(f.chains[off+1:f.chainOff[i+1]], f.chains[f.chainOff[p]:f.chainOff[p+1]])
		}
	}

	// Per-parent child ranges (CSR): count, prefix-sum, fill ascending so
	// each range is sorted by id.
	counts := make([]int32, n+1)
	for i := 1; i < n; i++ {
		counts[f.parents[i]]++
	}
	f.childOff = make([]int32, n+1)
	for p := 0; p < n; p++ {
		f.childOff[p+1] = f.childOff[p] + counts[p]
	}
	f.children = make([]LocID, n-1)
	next := make([]int32, n)
	copy(next, f.childOff[:n])
	for i := 1; i < n; i++ {
		p := f.parents[i]
		f.children[next[p]] = LocID(i)
		next[p]++
	}

	// Candidate-lookup index: bucket ids per normalized name, ascending.
	bcounts := make([]int32, len(f.norms)+1)
	for i := 1; i < n; i++ {
		bcounts[f.normID[i]]++
	}
	f.bucketOff = make([]int32, len(f.norms)+1)
	for b := 0; b < len(f.norms); b++ {
		f.bucketOff[b+1] = f.bucketOff[b] + bcounts[b]
	}
	f.ids = make([]LocID, n-1)
	bnext := make([]int32, len(f.norms))
	copy(bnext, f.bucketOff[:len(f.norms)])
	for i := 1; i < n; i++ {
		b := f.normID[i]
		f.ids[bnext[b]] = LocID(i)
		bnext[b]++
	}
	return f
}

// Len returns the number of locations stored.
func (f *Frozen) Len() int { return len(f.kinds) - 1 }

// Name returns the bare name of a location.
func (f *Frozen) Name(id LocID) string { return f.names[f.nameID[id]] }

// Kind returns the hierarchy level of a location.
func (f *Frozen) Kind(id LocID) Kind { return Kind(f.kinds[id]) }

// Parent returns the direct geographic container of a location, or
// NoLocation for countries.
func (f *Frozen) Parent(id LocID) LocID { return LocID(f.parents[id]) }

// Containers returns the chain of containers from the direct one up to the
// country. The chain is precomputed; the returned slice is a fresh copy the
// caller may keep.
func (f *Frozen) Containers(id LocID) []LocID {
	chain := f.chains[f.chainOff[id]:f.chainOff[id+1]]
	if len(chain) == 0 {
		return nil
	}
	return append([]LocID(nil), chain...)
}

// CityOf returns the city containing the location (or the location itself if
// it is a city), or NoLocation when the location sits above city level. The
// answer is precomputed, so this is a single array read.
func (f *Frozen) CityOf(id LocID) LocID { return LocID(f.cityOf[id]) }

// Lookup returns all locations of the given kind with the given name, in
// increasing id order. Name matching is case-insensitive.
func (f *Frozen) Lookup(name string, kind Kind) []LocID {
	var out []LocID
	for _, id := range f.bucket(name) {
		if Kind(f.kinds[id]) == kind {
			out = append(out, id)
		}
	}
	return out
}

// LookupAny returns all locations with the given name regardless of kind, in
// increasing id order.
func (f *Frozen) LookupAny(name string) []LocID {
	b := f.bucket(name)
	if len(b) == 0 {
		return nil
	}
	return append([]LocID(nil), b...)
}

// bucket returns the internal id bucket for a name; callers must not modify
// or retain it.
func (f *Frozen) bucket(name string) []LocID {
	ni, ok := f.byNorm[normalizeName(name)]
	if !ok {
		return nil
	}
	return f.ids[f.bucketOff[ni]:f.bucketOff[ni+1]]
}

// FullName renders the location with its full container chain, e.g.
// "Pennsylvania Avenue, Washington, D.C., USA".
func (f *Frozen) FullName(id LocID) string {
	parts := []string{f.Name(id)}
	for _, c := range f.chains[f.chainOff[id]:f.chainOff[id+1]] {
		parts = append(parts, f.Name(c))
	}
	return strings.Join(parts, ", ")
}

// Cities returns all city ids, in increasing order. The returned slice is a
// fresh copy.
func (f *Frozen) Cities() []LocID {
	return append([]LocID(nil), f.cities...)
}

// StreetsIn returns all street ids belonging to the given city, in
// increasing order — the city's child range of the frozen layout. Like the
// builder's version, a non-city location yields nil (its children are not
// streets).
func (f *Frozen) StreetsIn(city LocID) []LocID {
	var out []LocID
	for _, ch := range f.children[f.childOff[city]:f.childOff[city+1]] {
		if Kind(f.kinds[ch]) == Street {
			out = append(out, ch)
		}
	}
	return out
}

// Children returns the direct children of a location (a country's states, a
// state's cities, a city's streets) as a fresh copy in increasing id order;
// Children(NoLocation) returns the countries.
func (f *Frozen) Children(id LocID) []LocID {
	ch := f.children[f.childOff[id]:f.childOff[id+1]]
	if len(ch) == 0 {
		return nil
	}
	return append([]LocID(nil), ch...)
}

// Geocode resolves an address string to its candidate interpretations, with
// the same semantics (and results) as Builder.Geocode: a partial address
// yields every location it may refer to, later segments narrow the
// candidates. Narrowing compares interned normalized-name ids against the
// precomputed container chains, so no strings are normalized per candidate.
// An unresolvable address returns nil.
func (f *Frozen) Geocode(address string) []LocID {
	a := ParseAddress(address)
	if a.Street == "" {
		return nil
	}
	cands := f.Lookup(a.Street, Street)
	qualifiers := []string{a.City, a.State, a.Country}
	if len(cands) == 0 {
		cands = f.Lookup(a.Street, City)
		qualifiers = []string{a.City, a.State} // segments shift up one level
		if len(cands) == 0 {
			return nil
		}
	}
	for _, q := range qualifiers {
		if q == "" {
			continue
		}
		cands = f.narrow(cands, q)
	}
	return cands
}

// narrow keeps the candidates that have a container (at any level) whose
// normalized name matches the qualifier's.
func (f *Frozen) narrow(cands []LocID, qualifier string) []LocID {
	out := cands[:0]
	qn, ok := f.byNorm[normalizeName(qualifier)]
	if !ok {
		return out
	}
	for _, id := range cands {
		for _, c := range f.chains[f.chainOff[id]:f.chainOff[id+1]] {
			if f.normID[c] == qn {
				out = append(out, id)
				break
			}
		}
	}
	return out
}
