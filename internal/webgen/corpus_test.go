package webgen

import (
	"strings"
	"testing"

	"repro/internal/search"
	"repro/internal/world"
)

func testCorpus(t *testing.T) (*world.World, []search.Document) {
	t.Helper()
	w := world.Generate(world.Config{Seed: 7, KBPerType: 20})
	docs := BuildCorpus(w, Config{Seed: 7, NoiseDocs: 50})
	return w, docs
}

func TestCorpusCoversAllEntities(t *testing.T) {
	w, docs := testCorpus(t)
	mentioned := map[string]bool{}
	for _, d := range docs {
		mentioned[strings.ToLower(d.Title)] = true
	}
	missing := 0
	for _, e := range w.Entities {
		found := false
		for title := range mentioned {
			if strings.Contains(title, strings.ToLower(e.Name)) {
				found = true
				break
			}
		}
		if !found {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d entities have no page title mentioning them", missing)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	w := world.Generate(world.Config{Seed: 3, KBPerType: 10})
	d1 := BuildCorpus(w, Config{Seed: 3, NoiseDocs: 20})
	d2 := BuildCorpus(w, Config{Seed: 3, NoiseDocs: 20})
	if len(d1) != len(d2) {
		t.Fatalf("sizes differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].Body != d2[i].Body || d1[i].Title != d2[i].Title {
			t.Fatalf("doc %d differs between same-seed builds", i)
		}
	}
}

func TestEntityPagesUseTypeVocabulary(t *testing.T) {
	w, docs := testCorpus(t)
	rest := w.OfType(world.Restaurant)[0]
	vocab := map[string]bool{}
	for _, v := range Vocab(world.Restaurant) {
		vocab[v] = true
	}
	found := false
	for _, d := range docs {
		if !strings.Contains(d.Title, rest.Name) && !strings.HasPrefix(d.Body, rest.Name) {
			continue
		}
		hits := 0
		for _, wd := range strings.Fields(d.Body) {
			if vocab[wd] {
				hits++
			}
		}
		if hits >= 5 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no page for %q dense in restaurant vocabulary", rest.Name)
	}
}

func TestConfuserPagesExist(t *testing.T) {
	w, docs := testCorpus(t)
	if len(w.Confusers) == 0 {
		t.Skip("no confusers in this universe")
	}
	c := w.Confusers[0]
	found := false
	for _, d := range docs {
		if strings.Contains(d.Title, c.Name) && strings.Contains(d.Title, c.Kind) {
			found = true
			// Confuser pages must not be dominated by Γ vocab.
			if strings.Contains(d.Body, "museum gallery exhibition") {
				t.Errorf("confuser page body looks like a Γ-type page")
			}
		}
	}
	if !found {
		t.Errorf("no page for confuser %q (%s)", c.Name, c.Kind)
	}
}

func TestPOIPagesMentionCity(t *testing.T) {
	w, docs := testCorpus(t)
	misses := 0
	checked := 0
	for _, e := range w.OfType(world.Hotel) {
		if checked >= 20 {
			break
		}
		checked++
		city := strings.ToLower(w.Gaz.Name(e.City))
		found := false
		for _, d := range docs {
			if strings.HasPrefix(d.Body, e.Name) && strings.Contains(strings.ToLower(d.Body), city) {
				found = true
				break
			}
		}
		if !found {
			misses++
		}
	}
	// City words are drawn probabilistically; most POI entities must
	// have at least one page mentioning their city.
	if misses > checked/2 {
		t.Errorf("%d/%d hotels have no page mentioning their city", misses, checked)
	}
}

func TestEndToEndSearchFindsEntity(t *testing.T) {
	w, docs := testCorpus(t)
	ix := search.NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	e := w.OfType(world.Museum)[0]
	res := ix.Search(e.Name, 10)
	if len(res) == 0 {
		t.Fatalf("no results for %q", e.Name)
	}
	hit := false
	for _, r := range res {
		if strings.Contains(r.Title, e.Name) || strings.Contains(r.Snippet, e.Name) {
			hit = true
		}
	}
	if !hit {
		t.Errorf("top-10 for %q does not surface the entity; top: %q", e.Name, res[0].Title)
	}
}
