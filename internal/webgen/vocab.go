// Package webgen generates the synthetic web corpus the search engine
// indexes: descriptive pages for every entity (with type-specific
// vocabulary), review and listicle pages whose snippets resemble entity
// descriptions (the misannotation hazard of §5.3), pages about confuser
// senses of ambiguous names (the "Melisse" jazz-label problem of §5.2), and
// generic noise pages.
package webgen

import "repro/internal/world"

// typeVocab is the distinctive vocabulary of each entity type. Types in a
// subsumption relation (school/university, film/Simpsons episode) share part
// of their vocabulary, so the classifier must rely on the distinctive
// remainder — the difficulty the paper probes in §6.2.
var typeVocab = map[world.Type][]string{
	world.Restaurant: {
		"restaurant", "menu", "cuisine", "chef", "dining", "dishes",
		"reservations", "wine", "flavors", "tasting", "seafood",
		"dessert", "bistro", "kitchen", "lunch", "dinner", "plates",
	},
	world.Museum: {
		"museum", "gallery", "exhibition", "collection", "paintings",
		"artifacts", "curator", "exhibits", "sculpture", "heritage",
		"galleries", "masterpieces", "archive", "antiquities", "admission",
	},
	world.Theatre: {
		"theatre", "stage", "performance", "play", "drama", "audience",
		"productions", "actors", "curtain", "ballet", "opera", "premiere",
		"matinee", "playwright", "auditorium", "tickets",
	},
	world.Hotel: {
		"hotel", "rooms", "suites", "guests", "booking", "amenities",
		"lobby", "concierge", "breakfast", "spa", "accommodation",
		"check-in", "housekeeping", "nightly", "reception", "stay",
	},
	world.School: {
		"school", "students", "pupils", "teachers", "grade", "elementary",
		"classrooms", "curriculum", "enrollment", "principal",
		"kindergarten", "homework", "playground", "education",
	},
	world.University: {
		"university", "campus", "faculty", "undergraduate", "graduate",
		"degree", "research", "students", "professors", "lectures",
		"departments", "admissions", "tuition", "alumni", "education",
	},
	world.Mine: {
		"mine", "mining", "ore", "shaft", "extraction", "deposits",
		"miners", "tunnels", "seam", "quarry", "mineral", "excavation",
		"smelter", "geology", "pit", "drilling",
	},
	world.Actor: {
		"actor", "starred", "film", "role", "movie", "screen",
		"performance", "cast", "hollywood", "award", "drama", "starring",
		"filmography", "celebrity", "scenes", "director",
	},
	world.Singer: {
		"singer", "album", "song", "tour", "vocals", "chart", "band",
		"concert", "recording", "billboard", "lyrics", "studio", "single",
		"music", "stage", "grammy",
	},
	world.Scientist: {
		"scientist", "research", "physics", "chemistry", "discovery",
		"professor", "laboratory", "theory", "published", "experiments",
		"nobel", "science", "journal", "doctorate", "hypothesis",
	},
	world.Film: {
		"film", "directed", "cast", "screenplay", "premiere", "box",
		"office", "starring", "cinema", "scenes", "studio", "thriller",
		"drama", "soundtrack", "sequel", "critics",
	},
	world.SimpsonsEpisode: {
		"episode", "season", "springfield", "homer", "aired", "animated",
		"simpsons", "bart", "marge", "couch", "gag", "writers", "fox",
		"directed", "guest", "voiced",
	},
}

// sharedFiller is vocabulary that appears in pages of every type, diluting
// the signal the classifier can rely on.
var sharedFiller = []string{
	"visit", "located", "popular", "famous", "known", "opened", "history",
	"offers", "features", "quality", "best", "great", "world", "place",
	"people", "first", "years", "experience", "local", "area", "guide",
	"official", "website", "information", "top", "find", "near", "city",
	"center", "open", "daily", "hours", "tickets", "tour", "visitors",
	"events", "community", "building", "street", "district", "founded",
	"renowned", "landmark", "destination", "according", "established",
	"annual", "public", "national", "award", "winning", "celebrated",
}

// reviewVocab builds review/phrase pages ("Review of X", "Top 10 ..."), whose
// snippets blend type vocabulary with opinion words. Queries for non-entity
// phrases hit these pages.
var reviewVocab = []string{
	"review", "rating", "stars", "visited", "recommend", "amazing",
	"disappointing", "opinion", "verdict", "overall", "definitely",
	"worth", "loved", "terrible", "excellent", "service", "tips",
	"ranked", "list", "roundup", "comparison", "favorites",
}

// confuserVocab gives each confuser kind its own lexical field so that pages
// about the alternate sense of an ambiguous name do not look like Γ-type
// descriptions.
var confuserVocab = map[string][]string{
	"jazz label":       {"jazz", "label", "records", "vinyl", "saxophone", "quartet", "improvisation", "releases", "pressing", "catalogue"},
	"rock band":        {"band", "guitar", "drummer", "riff", "garage", "tour", "amplifier", "setlist", "bassist", "punk"},
	"novel":            {"novel", "author", "chapters", "protagonist", "publisher", "fiction", "narrative", "paperback", "bestseller", "plot"},
	"software company": {"software", "startup", "platform", "developers", "cloud", "api", "funding", "enterprise", "saas", "release"},
	"perfume":          {"perfume", "fragrance", "scent", "notes", "bottle", "floral", "musk", "eau", "parfum", "cologne"},
	"racehorse":        {"racehorse", "stakes", "jockey", "furlong", "thoroughbred", "derby", "trainer", "paddock", "odds", "gallop"},
	"yacht":            {"yacht", "hull", "knots", "marina", "sailing", "regatta", "deck", "mast", "harbor", "crew"},
	"board game":       {"board", "game", "players", "dice", "cards", "strategy", "tokens", "rulebook", "turns", "expansion"},
	"fashion brand":    {"fashion", "brand", "collection", "runway", "designer", "couture", "fabric", "boutique", "apparel", "season"},
	"cocktail":         {"cocktail", "shaker", "garnish", "bitters", "gin", "vermouth", "muddle", "glassware", "bartender", "recipe"},
}

// noiseTopics generate unrelated background pages.
var noiseTopics = [][]string{
	{"weather", "forecast", "temperature", "rainfall", "climate", "storm", "humidity", "wind"},
	{"election", "parliament", "policy", "minister", "campaign", "votes", "debate", "coalition"},
	{"football", "league", "goals", "match", "championship", "referee", "transfer", "stadium"},
	{"recipe", "baking", "flour", "oven", "ingredients", "dough", "whisk", "tablespoon"},
	{"gardening", "seeds", "soil", "pruning", "compost", "blossom", "perennial", "mulch"},
	{"finance", "stocks", "dividend", "portfolio", "earnings", "markets", "investor", "bonds"},
}

// contaminants maps each type to a related type whose vocabulary naturally
// bleeds into its pages: actor pages discuss films, Simpsons episode pages
// read like film pages, scientists are affiliated with universities,
// restaurant reviews mention the hotel they are in, and so on. This
// cross-type contamination is what makes real snippets hard for a classifier
// that assumes feature independence — the paper observes Naive Bayes losing
// precision on exactly these short, blended texts (§6.2).
var contaminants = map[world.Type]world.Type{
	world.Restaurant:      world.Hotel,
	world.Hotel:           world.Restaurant,
	world.Museum:          world.Theatre,
	world.Theatre:         world.Museum,
	world.School:          world.University,
	world.University:      world.School,
	world.Actor:           world.Singer,
	world.Singer:          world.Actor,
	world.Scientist:       world.University,
	world.Film:            world.Actor,
	world.SimpsonsEpisode: world.Film,
	world.Mine:            world.Museum, // heritage mines run visitor museums
}

// Vocab exposes the distinctive vocabulary of a type, for tests and
// diagnostics.
func Vocab(t world.Type) []string { return typeVocab[t] }
