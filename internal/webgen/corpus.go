package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/gazetteer"
	"repro/internal/search"
	"repro/internal/world"
)

// Config controls corpus generation. The zero value selects the defaults.
type Config struct {
	Seed int64
	// PagesPerEntity is the number of descriptive pages per entity
	// (default 5). More pages give the engine more top-k depth.
	PagesPerEntity int
	// ReviewFraction is the expected number of extra review pages per
	// entity (default 0.5).
	ReviewFraction float64
	// PagesPerConfuser is the number of pages per confuser sense
	// (default 5; enough for the alternate sense to crowd the top-k of
	// an ambiguous query until spatial disambiguation kicks in).
	PagesPerConfuser int
	// NoiseDocs is the number of unrelated background pages (default 400).
	NoiseDocs int
	// ConfuserBoost adds extra pages per confuser sense on top of
	// PagesPerConfuser. The scenario matrix's adversarial worlds use it to
	// let alternate senses drown entity pages in the top-k; 0 (the
	// default) leaves the corpus byte-identical to the unboosted one.
	ConfuserBoost int
}

func (c Config) withDefaults() Config {
	if c.PagesPerEntity == 0 {
		c.PagesPerEntity = 5
	}
	if c.ReviewFraction == 0 {
		c.ReviewFraction = 0.5
	}
	if c.PagesPerConfuser == 0 {
		c.PagesPerConfuser = 5
	}
	if c.NoiseDocs == 0 {
		c.NoiseDocs = 400
	}
	return c
}

// BuildCorpus generates the synthetic web for a universe and returns the
// documents, deterministic in cfg.Seed.
func BuildCorpus(w *world.World, cfg Config) []search.Document {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var docs []search.Document
	add := func(title, body string) {
		docs = append(docs, search.Document{
			URL:   fmt.Sprintf("http://web.example.com/p/%d", len(docs)),
			Title: title,
			Body:  body,
			Lang:  "en",
		})
	}

	// The first bearer of a name is its dominant sense: like on the real
	// web, one "James Brown" owns most of the result page and the other
	// bearers surface only a couple of hits. Annotation of the
	// non-dominant bearer is what fails, driving the lower people recall
	// of §6.2.
	seenName := map[string]bool{}
	for _, e := range w.Entities {
		city := ""
		if e.City != gazetteer.NoLocation {
			city = w.Gaz.Name(e.City)
		}
		pages := cfg.PagesPerEntity
		key := strings.ToLower(e.Name)
		if seenName[key] {
			pages = 1 + pages/3
		} else {
			seenName[key] = true
			pages += 2
		}
		for p := 0; p < pages; p++ {
			add(entityTitle(e, rng), entityBody(e, city, w.Gaz, rng))
		}
		if rng.Float64() < cfg.ReviewFraction {
			add("Review of "+e.Name, reviewBody(e, city, rng))
		}
	}

	for _, c := range w.Confusers {
		vocab := confuserVocab[c.Kind]
		if vocab == nil {
			vocab = reviewVocab
		}
		for p := 0; p < cfg.PagesPerConfuser+cfg.ConfuserBoost; p++ {
			add(c.Name+" — "+c.Kind,
				themedBody(c.Name, vocab, nil, rng, 60))
		}
	}

	for i := 0; i < cfg.NoiseDocs; i++ {
		topic := noiseTopics[rng.Intn(len(noiseTopics))]
		add("Daily notes "+fmt.Sprint(i), themedBody("", topic, nil, rng, 70))
	}
	return docs
}

// BuildIndex generates the corpus for a universe and returns it already
// indexed and frozen — the form every consumer (lab construction, commands,
// benchmarks) actually wants. Freezing here means the derived ranking state
// (idf table, average length) is computed once at corpus-build time instead
// of on the first query.
func BuildIndex(w *world.World, cfg Config) *search.Index {
	ix := search.NewIndex()
	for _, d := range BuildCorpus(w, cfg) {
		ix.Add(d)
	}
	ix.Freeze()
	return ix
}

// BuildShardedIndex is BuildIndex over a sharded layout: the same corpus in
// the same global order, partitioned round-robin across max(1, shards)
// shards and frozen with corpus-wide ranking state, so queries are
// byte-identical to the monolithic index while each one's scoring work can
// spread over the shards.
func BuildShardedIndex(w *world.World, cfg Config, shards int) *search.ShardedIndex {
	six := search.NewShardedIndex(shards)
	for _, d := range BuildCorpus(w, cfg) {
		six.Add(d)
	}
	six.Freeze()
	return six
}

// entityTitle renders a page title; a fraction of titles carry the type word
// ("Louvre Museum — official site"), which is what makes the TIN/TIS
// baselines partially effective on POI types.
func entityTitle(e *world.Entity, rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return e.Name + " — official site"
	case 1:
		return e.Name + " | " + world.TypeName(e.Type)
	default:
		return e.Name
	}
}

// entityBody writes a descriptive page for the entity: its name, bursts of
// type vocabulary blended with a related type's vocabulary (see
// contaminants), shared filler, and — crucially for spatial disambiguation —
// its city and street when it has them.
func entityBody(e *world.Entity, city string, gaz *gazetteer.Gazetteer, rng *rand.Rand) string {
	vocab := typeVocab[e.Type]
	if sibling, ok := contaminants[e.Type]; ok {
		sv := typeVocab[sibling]
		blend := make([]string, 0, len(vocab)+len(sv)/3)
		blend = append(blend, vocab...)
		blend = append(blend, sv[:len(sv)/4]...)
		vocab = blend
	}
	var extra []string
	if city != "" {
		extra = append(extra, city, city) // city mentioned repeatedly
		if e.Street != gazetteer.NoLocation {
			extra = append(extra, gaz.Name(e.Street))
		}
	}
	// POI pages mention the literal type word often; person and cinema
	// pages mention it more rarely, reproducing the baseline asymmetry
	// of Table 1 (TIS works on museums, fails on singers).
	mentions := 3
	if world.Category(e.Type) != "poi" {
		mentions = 1
	}
	for i := 0; i < mentions; i++ {
		extra = append(extra, world.TypeName(e.Type))
	}
	return e.Name + " " + themedBody(e.Name, vocab, extra, rng, 80)
}

// reviewBody writes an opinion page: review vocabulary mixed with the
// entity's type vocabulary. Its snippets look deceptively like entity
// descriptions — the spurious-annotation hazard of §5.3.
func reviewBody(e *world.Entity, city string, rng *rand.Rand) string {
	blend := append([]string{}, reviewVocab...)
	v := typeVocab[e.Type]
	blend = append(blend, v[:len(v)/2]...)
	var extra []string
	if city != "" {
		extra = append(extra, city)
	}
	return "review of " + e.Name + " " + themedBody(e.Name, blend, extra, rng, 70)
}

// themedBody produces n words drawn from the theme vocabulary, the shared
// filler and the extra tokens, with the subject name injected a few times.
func themedBody(subject string, vocab, extra []string, rng *rand.Rand, n int) string {
	words := make([]string, 0, n+8)
	for len(words) < n {
		r := rng.Float64()
		switch {
		case r < 0.20:
			words = append(words, vocab[rng.Intn(len(vocab))])
		case r < 0.85 || len(extra) == 0:
			words = append(words, sharedFiller[rng.Intn(len(sharedFiller))])
		default:
			words = append(words, extra[rng.Intn(len(extra))])
		}
	}
	if subject != "" {
		// Inject the subject a few times at deterministic offsets.
		for _, at := range []int{0, n / 2} {
			words[at] = subject
		}
	}
	return strings.Join(words, " ")
}
