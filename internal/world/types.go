// Package world generates the seeded synthetic universe that stands in for
// the paper's external data: the entities behind the DBpedia knowledge base,
// the web corpus, and the evaluation tables. The twelve entity types and the
// three category groups follow §6.2 exactly.
package world

// Type is a fine-grained entity type (a concept of the application ontology).
type Type string

// The twelve types evaluated in the paper.
const (
	Restaurant      Type = "restaurant"
	Museum          Type = "museum"
	Theatre         Type = "theatre"
	Hotel           Type = "hotel"
	School          Type = "school"
	University      Type = "university"
	Mine            Type = "mine"
	Actor           Type = "actor"
	Singer          Type = "singer"
	Scientist       Type = "scientist"
	Film            Type = "film"
	SimpsonsEpisode Type = "simpsons episode"
)

// POITypes are the "points of interest of cities" group (§6.2, category 1).
var POITypes = []Type{Restaurant, Museum, Theatre, Hotel, School, University, Mine}

// PeopleTypes are the "people" group (category 2), whose names the paper
// notes are highly ambiguous.
var PeopleTypes = []Type{Actor, Singer, Scientist}

// CinemaTypes are the "cinema" group (category 3). SimpsonsEpisode is a
// subtype of Film, mirroring the subsumption pairs the paper tests.
var CinemaTypes = []Type{Film, SimpsonsEpisode}

// AllTypes lists every type in evaluation order.
var AllTypes = []Type{
	Restaurant, Museum, Theatre, Hotel, School, University, Mine,
	Actor, Singer, Scientist,
	Film, SimpsonsEpisode,
}

// Category returns the evaluation group of a type: "poi", "people" or
// "cinema".
func Category(t Type) string {
	switch t {
	case Actor, Singer, Scientist:
		return "people"
	case Film, SimpsonsEpisode:
		return "cinema"
	default:
		return "poi"
	}
}

// HasSpatial reports whether tables of this type carry address columns. All
// POI types do except mines, matching §6.2 ("except Mines, they all have
// spatial information").
func HasSpatial(t Type) bool {
	switch t {
	case Restaurant, Museum, Theatre, Hotel, School, University:
		return true
	}
	return false
}

// TypeName returns the human name of a type as it would appear in text
// ("restaurant", "museum", ...). It is the word the TIN/TIS baselines look
// for and the disambiguating word appended to training queries.
func TypeName(t Type) string { return string(t) }

// Supertype returns the broader type a type is subsumed by, if any: the
// paper deliberately evaluates two subsumption pairs — Universities ⊂
// Schools and Simpsons episodes ⊂ Films (§6.2) — to probe whether the
// classifier can separate a subtype from its supertype.
func Supertype(t Type) (Type, bool) {
	switch t {
	case University:
		return School, true
	case SimpsonsEpisode:
		return Film, true
	}
	return "", false
}

// TableEntityCounts reproduces the per-type entity counts of the paper's
// 40-table GFT dataset (§6.2): 287 restaurants, 240 museums, 160 theatres,
// 67 hotels, 109 schools, 150 universities, 30 mines, 50 actors, 120
// singers, 100 scientists, 24 films, 34 Simpsons episodes.
var TableEntityCounts = map[Type]int{
	Restaurant:      287,
	Museum:          240,
	Theatre:         160,
	Hotel:           67,
	School:          109,
	University:      150,
	Mine:            30,
	Actor:           50,
	Singer:          120,
	Scientist:       100,
	Film:            24,
	SimpsonsEpisode: 34,
}
