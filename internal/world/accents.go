package world

import "strings"

// accentMap assigns each plain vowel a fixed accented form. The mapping is a
// function (not a random draw) so the same name always accents the same way:
// AccentName is deterministic and idempotent, and the corpus generator, the
// dataset builder and the gold truth all agree on the accented spelling.
var accentMap = map[rune]rune{
	'a': 'à', 'e': 'é', 'i': 'î', 'o': 'ö', 'u': 'ü',
	'A': 'À', 'E': 'É', 'I': 'Î', 'O': 'Ö', 'U': 'Ü',
}

// AccentName returns name with every plain vowel replaced by a fixed
// accented counterpart ("Melisse" → "Mélîssé"), the DiacriticRate knob's way
// of manufacturing diacritic-rich entity and place names. The output is NFC;
// the messy-ingestion encoders decompose it to NFD to stress the
// normalization path.
func AccentName(name string) string {
	return strings.Map(func(r rune) rune {
		if a, ok := accentMap[r]; ok {
			return a
		}
		return r
	}, name)
}
