package world

import (
	"strings"
	"testing"
)

func TestAccentName(t *testing.T) {
	cases := map[string]string{
		"Melisse":    "Mélîssé",
		"The Crown":  "Thé Cröwn",
		"":           "",
		"Mélîssé":    "Mélîssé", // idempotent
		"XYZ 42":     "XYZ 42",
		"University": "Ünîvérsîty",
	}
	for in, want := range cases {
		if got := AccentName(in); got != want {
			t.Errorf("AccentName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestKnobsOffIdentical locks the critical invariant behind every existing
// golden: a Config with the adversarial knobs zeroed generates a universe
// identical to the pre-knob generator — same entities, names, rng stream,
// gazetteer (GazScale 0 and 1 are both the standard gazetteer).
func TestKnobsOffIdentical(t *testing.T) {
	base := Generate(Config{Seed: 7, KBPerType: 12, WikiPerType: 3})
	same := Generate(Config{Seed: 7, KBPerType: 12, WikiPerType: 3, GazScale: 1})
	if len(base.Entities) != len(same.Entities) {
		t.Fatalf("entity counts differ: %d vs %d", len(base.Entities), len(same.Entities))
	}
	for i := range base.Entities {
		a, b := base.Entities[i], same.Entities[i]
		if a.Name != b.Name || a.Type != b.Type || a.City != b.City || a.Street != b.Street || a.Phone != b.Phone {
			t.Fatalf("entity %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(base.Confusers) != len(same.Confusers) {
		t.Fatalf("confuser counts differ")
	}
}

func TestPOIHomonymRate(t *testing.T) {
	w := Generate(Config{Seed: 7, KBPerType: 30, WikiPerType: 2, POIHomonymRate: 1.0})
	pool := map[string]bool{}
	for _, n := range homonymNames {
		pool[strings.ToLower(n)] = true
	}
	poi, pooled := 0, 0
	for _, e := range w.Entities {
		if Category(e.Type) != "poi" {
			continue
		}
		poi++
		// Retry exhaustion appends a city qualifier, so accept the pooled
		// name as an exact match or a prefix.
		name := strings.ToLower(e.Name)
		for p := range pool {
			if name == p || strings.HasPrefix(name, p+" ") {
				pooled++
				break
			}
		}
	}
	if poi == 0 {
		t.Fatal("no POI entities generated")
	}
	if pooled < poi*9/10 {
		t.Errorf("only %d/%d POI names drawn from the homonym pool at rate 1.0", pooled, poi)
	}
	// Cross-type homonyms must actually exist — that is the knob's point.
	collisions := 0
	for _, n := range homonymNames {
		types := map[Type]bool{}
		for _, e := range w.ByName(n) {
			types[e.Type] = true
		}
		if len(types) > 1 {
			collisions++
		}
	}
	if collisions == 0 {
		t.Error("homonym pool produced no cross-type name collisions")
	}
}

func TestDiacriticRate(t *testing.T) {
	w := Generate(Config{Seed: 7, KBPerType: 30, WikiPerType: 2, DiacriticRate: 1.0})
	poi, accented := 0, 0
	for _, e := range w.Entities {
		if Category(e.Type) != "poi" {
			continue
		}
		poi++
		if e.Name == AccentName(e.Name) && strings.ContainsAny(e.Name, "àéîöü") {
			accented++
		}
	}
	if poi == 0 {
		t.Fatal("no POI entities generated")
	}
	if accented < poi/2 {
		t.Errorf("only %d/%d POI names accented at rate 1.0", accented, poi)
	}
}

func TestGazScaleGrowsGazetteer(t *testing.T) {
	small := Generate(Config{Seed: 7, KBPerType: 5, WikiPerType: 1})
	big := Generate(Config{Seed: 7, KBPerType: 5, WikiPerType: 1, GazScale: 3})
	if len(big.Gaz.Cities()) <= len(small.Gaz.Cities()) {
		t.Errorf("GazScale 3 cities = %d, not larger than base %d",
			len(big.Gaz.Cities()), len(small.Gaz.Cities()))
	}
}
