package world

// Word pools backing the name grammars. The person-name pools are kept small
// on purpose: collisions across actors, singers and scientists reproduce the
// heavy name ambiguity of the paper's "people" category, whereas POI names
// are long compounds that are rarely ambiguous (§6.2 observes exactly this
// asymmetry).

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
	"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
	"Daniel", "Nancy", "Laura", "Paul", "Emma", "Mark", "Claire", "George",
	"Alice", "Henri", "Sofia", "Louis", "Marie", "Pierre", "Anna", "Carlo",
}

var surnames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Martinez", "Wilson", "Anderson", "Taylor", "Thomas", "Moore",
	"Martin", "Lee", "Thompson", "White", "Harris", "Clark", "Lewis",
	"Walker", "Hall", "Young", "King", "Wright", "Scott", "Green", "Baker",
	"Adams", "Nelson", "Carter", "Mitchell", "Turner", "Phillips",
	"Campbell", "Parker", "Evans", "Edwards", "Collins", "Stewart",
	"Morris", "Murphy", "Cook", "Rogers", "Bell", "Bailey", "Cooper",
	"Richardson", "Cox", "Ward", "Peterson", "Gray", "James", "Watson",
	"Brooks", "Kelly", "Sanders", "Price", "Bennett", "Wood", "Barnes",
	"Ross", "Henderson", "Coleman", "Jenkins", "Perry", "Powell", "Long",
	"Hughes", "Flores", "Washington", "Butler", "Simmons", "Foster",
	"Gonzales", "Bryant", "Alexander", "Russell", "Griffin", "Diaz",
	"Moreau", "Lefevre", "Rossi", "Bianchi", "Dubois", "Laurent",
}

var adjectives = []string{
	"Golden", "Silver", "Royal", "Grand", "Little", "Old", "New",
	"Hidden", "Blue", "Red", "Green", "White", "Black", "Crimson",
	"Emerald", "Velvet", "Rustic", "Modern", "Ancient", "Quiet",
	"Lucky", "Happy", "Wild", "Gentle", "Noble", "Bright", "Silent",
	"Copper", "Iron", "Crystal", "Amber", "Ivory", "Scarlet", "Azure",
}

var foodNouns = []string{
	"Olive", "Basil", "Saffron", "Truffle", "Fig", "Pepper", "Thyme",
	"Rosemary", "Cinnamon", "Ginger", "Lemon", "Pomegranate", "Walnut",
	"Almond", "Honey", "Clove", "Juniper", "Lavender", "Mint", "Sage",
	"Tamarind", "Vanilla", "Nutmeg", "Chestnut", "Apricot", "Plum",
	"Melisse", "Verbena", "Sorrel", "Fennel",
}

var eateryWords = []string{
	"Kitchen", "Bistro", "Grill", "Table", "Trattoria", "Brasserie",
	"Osteria", "Tavern", "Cantina", "Diner", "Eatery", "Chophouse",
}

var subjects = []string{
	"Art", "History", "Science", "Natural History", "Modern Art",
	"Archaeology", "Maritime History", "Fine Arts", "Photography",
	"Aviation", "Railway", "Folk Art", "Ceramics", "Design",
	"Anthropology", "Geology", "Astronomy", "Cinema", "Music",
	"Industry",
}

var genericNouns = []string{
	"Crown", "Anchor", "Harbor", "Garden", "Meadow", "Summit", "Canyon",
	"Harvest", "Beacon", "Compass", "Lantern", "Orchard", "Willow",
	"Falcon", "Heron", "Pioneer", "Voyager", "Horizon", "Cascade",
	"Prairie", "Ridge", "Grove", "Haven", "Crossing", "Junction",
	"Windmill", "Lighthouse", "Fountain", "Terrace", "Pavilion",
}

var filmNouns = []string{
	"Shadow", "Empire", "Storm", "Whisper", "Kingdom", "Phantom",
	"Journey", "Secret", "Legacy", "Labyrinth", "Mirage", "Eclipse",
	"Tempest", "Serpent", "Citadel", "Voyage", "Requiem", "Odyssey",
	"Masquerade", "Vendetta", "Paradox", "Chronicle", "Covenant",
	"Awakening", "Reckoning",
}

var simpsonsNouns = []string{
	"Genius", "Vigilante", "Heretic", "Astronaut", "Plumber", "Mayor",
	"Prophet", "Gardener", "Detective", "Champion", "Imposter",
	"Daredevil", "Critic", "Barber", "Inventor", "Substitute",
	"Chaperone", "Smuggler", "Curator", "Conductor",
}

var mineWords = []string{
	"Copper", "Coal", "Silver", "Gold", "Iron", "Granite", "Slate",
	"Quartz", "Nickel", "Zinc", "Cobalt", "Tin", "Salt", "Opal",
	"Diamond", "Emerald",
}

// homonymNames is the pooled list the POIHomonymRate knob draws from: a
// dozen short names shared across every POI type, so a homonym-dense world
// is full of tables where "Melisse" may be a restaurant, a hotel or a
// museum and only context can tell. Kept deliberately tiny — density is the
// point.
var homonymNames = []string{
	"Melisse", "The Crown", "Beacon", "Harbor House", "The Anchor",
	"Saffron", "Lantern", "Meridian", "The Old Mill", "Juniper",
	"Compass Rose", "Verbena",
}

// confuserKinds are the non-Γ senses an ambiguous name may also denote; the
// paper's running example is "Melisse", both a restaurant and a French jazz
// label. Web pages for these senses use their own vocabulary, so snippets
// about them dilute the per-type vote of an ambiguous query.
var confuserKinds = []string{
	"jazz label", "rock band", "novel", "software company", "perfume",
	"racehorse", "yacht", "board game", "fashion brand", "cocktail",
}
