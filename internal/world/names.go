package world

import (
	"fmt"
	"math/rand"
)

// nameGen produces entity names from type-specific grammars. POI grammars
// yield long, distinctive compounds; person names combine restricted
// first/last pools, making collisions across the three person types common.
type nameGen struct {
	rng    *rand.Rand
	cities []string
	// peopleFirst/peopleLast bound the person-name pools. They are sized
	// by the universe generator so the pool holds roughly three times as
	// many combinations as there are people — enough collisions that the
	// "people" category stays hard (as in §6.2) without poisoning the
	// training labels of the knowledge-base pool.
	peopleFirst, peopleLast int
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

// Name draws a fresh name for an entity of type t located in city (which may
// be empty for non-spatial types).
func (n *nameGen) Name(t Type, city string) string {
	r := n.rng
	if city == "" && len(n.cities) > 0 {
		city = pick(r, n.cities)
	}
	switch t {
	case Restaurant:
		switch r.Intn(6) {
		case 0:
			return "Chez " + pick(r, surnames)
		case 1:
			return "The " + pick(r, adjectives) + " " + pick(r, foodNouns)
		case 2:
			return pick(r, surnames) + "'s " + pick(r, eateryWords)
		case 3:
			return "La " + pick(r, foodNouns) + " " + pick(r, eateryWords)
		case 4:
			return pick(r, adjectives) + " " + pick(r, eateryWords)
		default:
			// Single-word names ("Melisse") — the ambiguous case.
			return pick(r, foodNouns)
		}
	case Museum:
		switch r.Intn(5) {
		case 0:
			return city + " Museum of " + pick(r, subjects)
		case 1:
			return "National Museum of " + pick(r, subjects)
		case 2:
			return pick(r, surnames) + " Gallery of " + pick(r, subjects)
		case 3:
			return "Musée " + pick(r, surnames)
		default:
			return "The " + pick(r, surnames) + " Collection"
		}
	case Theatre:
		switch r.Intn(4) {
		case 0:
			return pick(r, surnames) + " Theatre"
		case 1:
			return "Royal " + pick(r, genericNouns) + " Theatre"
		case 2:
			return city + " Playhouse"
		default:
			return "The " + pick(r, adjectives) + " Stage"
		}
	case Hotel:
		switch r.Intn(5) {
		case 0:
			return "Hotel " + pick(r, genericNouns)
		case 1:
			return "The " + pick(r, adjectives) + " " + pick(r, genericNouns) + " Inn"
		case 2:
			return "Grand " + pick(r, genericNouns) + " Hotel"
		case 3:
			return city + " Plaza Hotel"
		default:
			return pick(r, genericNouns) + " Lodge"
		}
	case School:
		switch r.Intn(4) {
		case 0:
			return pick(r, surnames) + " Elementary School"
		case 1:
			return pick(r, genericNouns) + " High School"
		case 2:
			return "St. " + pick(r, firstNames) + " School"
		default:
			return city + " Academy"
		}
	case University:
		switch r.Intn(4) {
		case 0:
			return "University of " + city
		case 1:
			return city + " State University"
		case 2:
			return pick(r, surnames) + " University"
		default:
			return city + " Institute of Technology"
		}
	case Mine:
		switch r.Intn(3) {
		case 0:
			return pick(r, mineWords) + " " + pick(r, genericNouns) + " Mine"
		case 1:
			return pick(r, genericNouns) + " Colliery"
		default:
			return pick(r, mineWords) + " Quarry No. " + fmt.Sprint(1+r.Intn(12))
		}
	case Actor, Singer, Scientist:
		// Person names draw from deliberately restricted pools so that
		// the same name has several bearers across the three person
		// types (and confuser senses), reproducing the heavy ambiguity
		// the paper reports for its "people" category (§6.2).
		nf, nl := n.peopleFirst, n.peopleLast
		if nf <= 0 || nf > len(firstNames) {
			nf = len(firstNames)
		}
		if nl <= 0 || nl > len(surnames) {
			nl = len(surnames)
		}
		return pick(r, firstNames[:nf]) + " " + pick(r, surnames[:nl])
	case Film:
		switch r.Intn(4) {
		case 0:
			return "The " + pick(r, filmNouns) + " of the " + pick(r, filmNouns)
		case 1:
			return pick(r, adjectives) + " " + pick(r, filmNouns)
		case 2:
			return "Return to " + city
		default:
			return "The Last " + pick(r, filmNouns)
		}
	case SimpsonsEpisode:
		switch r.Intn(4) {
		case 0:
			return "Homer the " + pick(r, simpsonsNouns)
		case 1:
			return "Bart's " + pick(r, filmNouns)
		case 2:
			return "Lisa vs. the " + pick(r, simpsonsNouns)
		default:
			return "Marge and the " + pick(r, simpsonsNouns)
		}
	}
	return pick(r, genericNouns) + " " + pick(r, genericNouns)
}
