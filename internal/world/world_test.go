package world

import (
	"strings"
	"testing"

	"repro/internal/gazetteer"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	return Generate(Config{Seed: 42, KBPerType: 60})
}

func TestGenerateCounts(t *testing.T) {
	w := testWorld(t)
	for _, typ := range AllTypes {
		got := len(w.TableEntities(typ))
		want := TableEntityCounts[typ]
		if got != want {
			t.Errorf("table entities of %s = %d, want %d", typ, got, want)
		}
	}
	if len(w.OfType(Restaurant)) != 60+287+20 {
		t.Errorf("restaurant total = %d, want %d", len(w.OfType(Restaurant)), 60+287+20)
	}
	// Reduced KB pools for sparse DBpedia types.
	if n := len(w.OfType(Mine)); n != 20+30+20 {
		t.Errorf("mine total = %d, want 70", n)
	}
	for _, typ := range AllTypes {
		if n := len(w.WikiEntities(typ)); n != 20 {
			t.Errorf("wiki entities of %s = %d, want 20", typ, n)
		}
	}
}

func TestWikiPoolHighCoverage(t *testing.T) {
	w := Generate(Config{Seed: 5, KBPerType: 10})
	inKB, total := 0, 0
	for _, typ := range AllTypes {
		for _, e := range w.WikiEntities(typ) {
			total++
			if e.InKB {
				inKB++
			}
		}
	}
	frac := float64(inKB) / float64(total)
	if frac < 0.75 {
		t.Errorf("wiki KB coverage = %.2f, want ~0.85", frac)
	}
}

func TestKBCoverageFraction(t *testing.T) {
	w := Generate(Config{Seed: 1, KBPerType: 10})
	inKB, total := 0, 0
	for _, typ := range AllTypes {
		for _, e := range w.TableEntities(typ) {
			total++
			if e.InKB {
				inKB++
			}
		}
	}
	frac := float64(inKB) / float64(total)
	if frac < 0.15 || frac > 0.30 {
		t.Errorf("KB coverage of table entities = %.2f, want ~0.22", frac)
	}
	// Every KBPool entity must be in the KB.
	for _, e := range w.Entities {
		if e.Pool == KBPool && !e.InKB {
			t.Fatalf("KBPool entity %q not marked InKB", e.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w1 := Generate(Config{Seed: 99, KBPerType: 30})
	w2 := Generate(Config{Seed: 99, KBPerType: 30})
	if len(w1.Entities) != len(w2.Entities) {
		t.Fatalf("entity counts differ: %d vs %d", len(w1.Entities), len(w2.Entities))
	}
	for i := range w1.Entities {
		a, b := w1.Entities[i], w2.Entities[i]
		if a.Name != b.Name || a.Type != b.Type || a.City != b.City || a.InKB != b.InKB {
			t.Fatalf("entity %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestPOIEntitiesHaveAddresses(t *testing.T) {
	w := testWorld(t)
	for _, typ := range POITypes {
		for _, e := range w.OfType(typ) {
			if e.City == gazetteer.NoLocation {
				t.Fatalf("%s %q has no city", typ, e.Name)
			}
			addr := e.Address(w.Gaz)
			if e.Street != gazetteer.NoLocation && addr.Street == "" {
				t.Fatalf("%s %q has street id but empty address", typ, e.Name)
			}
		}
	}
	for _, typ := range PeopleTypes {
		for _, e := range w.OfType(typ) {
			if e.City != gazetteer.NoLocation {
				t.Fatalf("person %q should not have a city", e.Name)
			}
		}
	}
}

func TestPersonNamesAmbiguous(t *testing.T) {
	w := testWorld(t)
	collisions := 0
	seen := map[string]Type{}
	for _, typ := range PeopleTypes {
		for _, e := range w.OfType(typ) {
			key := strings.ToLower(e.Name)
			if prev, ok := seen[key]; ok && prev != typ {
				collisions++
			}
			seen[key] = typ
		}
	}
	if collisions == 0 {
		t.Error("no cross-type person name collisions; people ambiguity not reproduced")
	}
}

func TestConfusersRegistered(t *testing.T) {
	w := testWorld(t)
	if len(w.Confusers) == 0 {
		t.Fatal("no confuser senses generated")
	}
	for _, c := range w.Confusers {
		if len(w.ByName(c.Name)) == 0 {
			t.Errorf("confuser %q does not match any entity", c.Name)
		}
		if c.Kind == "" {
			t.Errorf("confuser %q has empty kind", c.Name)
		}
	}
}

func TestDescriptionsAreVerbose(t *testing.T) {
	w := testWorld(t)
	for _, e := range w.Entities[:50] {
		if n := len(strings.Fields(e.Description)); n <= 10 {
			t.Errorf("description of %q has %d words, want > 10 (must trip the length filter)", e.Name, n)
		}
	}
}

func TestAttributesWellFormed(t *testing.T) {
	w := testWorld(t)
	for _, e := range w.Entities[:100] {
		if !strings.HasPrefix(e.URL, "http://") {
			t.Errorf("URL %q malformed", e.URL)
		}
		if !strings.Contains(e.Email, "@") {
			t.Errorf("email %q malformed", e.Email)
		}
		if !strings.Contains(e.Phone, "555-") {
			t.Errorf("phone %q malformed", e.Phone)
		}
	}
}

func TestCategoryAndSpatial(t *testing.T) {
	if Category(Restaurant) != "poi" || Category(Actor) != "people" || Category(Film) != "cinema" {
		t.Error("Category misassigns groups")
	}
	if !HasSpatial(Hotel) || HasSpatial(Mine) || HasSpatial(Singer) {
		t.Error("HasSpatial wrong: hotels yes, mines and singers no")
	}
}

func TestNamesUniquePerType(t *testing.T) {
	w := testWorld(t)
	for _, typ := range AllTypes {
		seen := map[string]bool{}
		for _, e := range w.OfType(typ) {
			key := strings.ToLower(e.Name)
			if seen[key] {
				t.Errorf("duplicate %s name %q", typ, e.Name)
			}
			seen[key] = true
		}
	}
}
