package world

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/gazetteer"
)

// Pool distinguishes the two entity populations the experiments need.
type Pool int

const (
	// KBPool entities populate the knowledge base and train the
	// classifiers; they never occur in evaluation tables (DBpedia knows
	// *some* restaurants, just not the ones in your table).
	KBPool Pool = iota
	// TablePool entities appear in the evaluation tables; only KBCoverage
	// of them are also in the knowledge base, reproducing the paper's
	// observation that just 22% of table entities exist in
	// Yago/DBpedia/Freebase.
	TablePool
	// WikiPool entities appear in the Wiki Manual comparison dataset
	// (§6.3). Wikipedia-table entities are overwhelmingly known to
	// catalogues (that dataset was built to evaluate a catalogue-based
	// annotator), so their KB coverage is high (WikiKBCoverage).
	WikiPool
)

// Entity is one individual in the synthetic universe.
type Entity struct {
	ID           int
	Name         string
	Type         Type
	Pool         Pool
	InKB         bool
	City         gazetteer.LocID // NoLocation for non-spatial types
	Street       gazetteer.LocID
	StreetNumber int
	Phone        string
	URL          string
	Email        string
	Description  string
	// AmbiguousWith names the non-Γ sense sharing this entity's name
	// ("jazz label" for the Melisse case); empty when unambiguous.
	AmbiguousWith string
}

// Address returns the entity's structured postal address; the zero Address
// for non-spatial entities.
func (e *Entity) Address(g *gazetteer.Gazetteer) gazetteer.Address {
	if e.Street == gazetteer.NoLocation {
		return gazetteer.Address{}
	}
	return gazetteer.Address{
		StreetNumber: e.StreetNumber,
		Street:       g.Name(e.Street),
		City:         g.Name(e.City),
		State:        g.Name(g.Parent(e.City)),
	}
}

// Confuser is a non-Γ sense that shares its name with an entity.
type Confuser struct {
	Name string
	Kind string
}

// Config controls universe generation. The zero value selects the defaults
// used by the experiments.
type Config struct {
	Seed int64
	// KBPerType is the number of knowledge-base entities per type; these
	// feed classifier training. Default 240. (The paper collects ~45k
	// train+test snippets per type; we scale the corpus down by ~15x and
	// report the actual sizes in Table 2.)
	KBPerType int
	// TableCounts overrides the per-type evaluation-entity counts;
	// defaults to TableEntityCounts (the paper's §6.2 dataset).
	TableCounts map[Type]int
	// KBCoverage is the fraction of table entities also present in the
	// knowledge base. Default 0.22 (§1).
	KBCoverage float64
	// AmbiguityRate is the probability that a person or single-word-POI
	// name gains a confuser sense. Default 0.35.
	AmbiguityRate float64
	// WikiPerType is the number of Wiki-Manual entities per type.
	// Default 20 (the paper's Wiki Manual has 36 tables of modest size).
	WikiPerType int
	// WikiKBCoverage is the KB coverage of Wiki entities. Default 0.85.
	WikiKBCoverage float64

	// Adversarial knobs for the scenario matrix. All default to off, and
	// when off they consume no rng draws, so the generated universe —
	// and every golden derived from it — is byte-identical to the
	// pre-knob generator.

	// GazScale scales the synthetic gazetteer (see
	// gazetteer.SyntheticScale): larger scales draw street and city names
	// from shared pools, so homonymous locations become common and the
	// disambiguation graph has to work harder. 0 or 1 = the standard
	// gazetteer.
	GazScale int
	// POIHomonymRate is the probability that a POI entity draws its name
	// from a small pooled list instead of its type grammar, manufacturing
	// cross-type homonyms ("Melisse" the restaurant and "Melisse" the
	// hotel). 0 = off.
	POIHomonymRate float64
	// DiacriticRate is the probability that a POI entity's name is
	// accented (AccentName), exercising the unicode normalization path
	// end to end. 0 = off.
	DiacriticRate float64
}

func (c Config) withDefaults() Config {
	if c.KBPerType == 0 {
		c.KBPerType = 240
	}
	if c.TableCounts == nil {
		c.TableCounts = TableEntityCounts
	}
	if c.KBCoverage == 0 {
		c.KBCoverage = 0.22
	}
	if c.AmbiguityRate == 0 {
		c.AmbiguityRate = 0.35
	}
	if c.WikiPerType == 0 {
		c.WikiPerType = 20
	}
	if c.WikiKBCoverage == 0 {
		c.WikiKBCoverage = 0.85
	}
	return c
}

// World is the generated universe.
type World struct {
	Config    Config
	Gaz       *gazetteer.Gazetteer
	Entities  []*Entity
	Confusers []Confuser

	byType map[Type][]*Entity
	byName map[string][]*Entity
	cities []gazetteer.LocID
}

// Generate builds a universe deterministically from cfg.Seed.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gazScale := cfg.GazScale
	if gazScale < 1 {
		gazScale = 1
	}
	gaz := gazetteer.SyntheticScale(cfg.Seed^0x6761_7a65, gazScale)
	w := &World{
		Config: cfg,
		Gaz:    gaz,
		byType: map[Type][]*Entity{},
		byName: map[string][]*Entity{},
		cities: gaz.Cities(),
	}
	cityNames := make([]string, len(w.cities))
	for i, c := range w.cities {
		cityNames[i] = gaz.Name(c)
	}
	ng := &nameGen{rng: rng, cities: cityNames}
	// Size the person-name pools to ~3x the people population (see
	// nameGen): collisions stay frequent enough to keep people hard, but
	// training labels for knowledge-base people remain mostly clean.
	people := 0
	for _, t := range PeopleTypes {
		people += cfg.KBPerType + cfg.TableCounts[t] + cfg.WikiPerType
	}
	first := int(math.Sqrt(1.5 * float64(people)))
	if first < 8 {
		first = 8
	}
	ng.peopleFirst, ng.peopleLast = first, 2*first

	used := map[string]bool{}
	nextID := 1
	spawn := func(t Type, pool Pool, inKB bool) *Entity {
		e := &Entity{ID: nextID, Type: t, Pool: pool, InKB: inKB}
		nextID++
		// Spatial placement first so city-based names are consistent.
		cityName := ""
		if Category(t) == "poi" {
			city := w.cities[rng.Intn(len(w.cities))]
			e.City = city
			cityName = gaz.Name(city)
			if streets := gaz.StreetsIn(city); len(streets) > 0 {
				e.Street = streets[rng.Intn(len(streets))]
				e.StreetNumber = 1 + rng.Intn(999)
			}
		}
		// Adversarial knobs decide once per entity (before the retry
		// loop, so retries don't consume extra knob draws).
		isPOI := Category(t) == "poi"
		homonym := cfg.POIHomonymRate > 0 && isPOI && rng.Float64() < cfg.POIHomonymRate
		accent := cfg.DiacriticRate > 0 && isPOI && rng.Float64() < cfg.DiacriticRate
		// Unique name within the universe (retry a few times, then
		// suffix with a locality qualifier).
		for attempt := 0; ; attempt++ {
			name := ng.Name(t, cityName)
			if homonym {
				// Pooled names collide across types on purpose; the
				// uniqueness key below still forbids same-type dupes.
				name = homonymNames[rng.Intn(len(homonymNames))]
			}
			if attempt > 8 {
				name = name + " " + cityName
			}
			if attempt > 16 {
				// Pooled homonym names can exhaust every qualified
				// variant; a numeric suffix guarantees termination
				// (unreachable when the knobs are off — grammar names
				// never run that dry).
				name = fmt.Sprintf("%s %d", name, attempt-16)
			}
			if accent {
				name = AccentName(name)
			}
			key := strings.ToLower(name) + "|" + string(t)
			if !used[key] {
				used[key] = true
				e.Name = name
				break
			}
		}
		w.fillAttributes(e, rng)
		// Ambiguity: person names collide naturally; additionally some
		// names gain a confuser sense.
		short := len(strings.Fields(e.Name)) <= 2
		if (Category(t) == "people" || short) && rng.Float64() < cfg.AmbiguityRate {
			kind := confuserKinds[rng.Intn(len(confuserKinds))]
			e.AmbiguousWith = kind
			w.Confusers = append(w.Confusers, Confuser{Name: e.Name, Kind: kind})
		}
		w.Entities = append(w.Entities, e)
		w.byType[t] = append(w.byType[t], e)
		lower := strings.ToLower(e.Name)
		w.byName[lower] = append(w.byName[lower], e)
		return e
	}

	for _, t := range AllTypes {
		kbCount := cfg.KBPerType
		if t == SimpsonsEpisode || t == Mine {
			// DBpedia provides few entities for these types
			// (§6.1 Table 2 shows the small corpora).
			kbCount = cfg.KBPerType / 3
		}
		for i := 0; i < kbCount; i++ {
			spawn(t, KBPool, true)
		}
		for i := 0; i < cfg.TableCounts[t]; i++ {
			inKB := rng.Float64() < cfg.KBCoverage
			spawn(t, TablePool, inKB)
		}
		for i := 0; i < cfg.WikiPerType; i++ {
			inKB := rng.Float64() < cfg.WikiKBCoverage
			spawn(t, WikiPool, inKB)
		}
	}
	return w
}

// fillAttributes populates contact details and the verbose description used
// by description columns (long enough for the §5.1 length filter to drop).
func (w *World) fillAttributes(e *Entity, rng *rand.Rand) {
	slug := strings.ToLower(strings.Join(strings.Fields(strings.Map(alnumOnly, e.Name)), "-"))
	if slug == "" {
		slug = fmt.Sprintf("entity-%d", e.ID)
	}
	e.Phone = fmt.Sprintf("(%03d) 555-%04d", 201+rng.Intn(700), rng.Intn(10000))
	e.URL = "http://www." + slug + ".example.com"
	e.Email = "info@" + slug + ".example.com"
	cityName := ""
	if e.City != gazetteer.NoLocation {
		cityName = " in " + w.Gaz.Name(e.City)
	}
	e.Description = fmt.Sprintf(
		"A well known %s%s that visitors praise for its friendly staff, convenient opening hours and remarkable atmosphere throughout the year.",
		TypeName(e.Type), cityName)
}

func alnumOnly(r rune) rune {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == ' ':
		return r
	}
	return ' '
}

// OfType returns every entity of type t, in generation order.
func (w *World) OfType(t Type) []*Entity { return w.byType[t] }

// KBEntities returns the entities of type t present in the knowledge base
// (the whole KBPool plus the covered fraction of the TablePool).
func (w *World) KBEntities(t Type) []*Entity {
	var out []*Entity
	for _, e := range w.byType[t] {
		if e.InKB {
			out = append(out, e)
		}
	}
	return out
}

// TableEntities returns the evaluation-table entities of type t.
func (w *World) TableEntities(t Type) []*Entity {
	var out []*Entity
	for _, e := range w.byType[t] {
		if e.Pool == TablePool {
			out = append(out, e)
		}
	}
	return out
}

// WikiEntities returns the Wiki-Manual comparison entities of type t.
func (w *World) WikiEntities(t Type) []*Entity {
	var out []*Entity
	for _, e := range w.byType[t] {
		if e.Pool == WikiPool {
			out = append(out, e)
		}
	}
	return out
}

// ByName returns the entities whose name equals name (case-insensitive);
// several entities may share a name across types.
func (w *World) ByName(name string) []*Entity {
	return w.byName[strings.ToLower(name)]
}
