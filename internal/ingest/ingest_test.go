package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/table"
)

// sampleTables covers the messy-encoder edge cases: repeated column values
// (rowspan merges), empty trailing cells (colspan merges and ragged drops),
// diacritics (NFD round-trip), HTML-special characters, and an all-empty
// row (dropped on every route).
func sampleTables(t *testing.T) []*table.Table {
	t.Helper()
	mk := func(name string, headers []string, rows [][]string) *table.Table {
		cols := make([]table.Column, len(headers))
		for j, h := range headers {
			cols[j] = table.Column{Header: h}
		}
		tbl := table.New(name, cols...)
		for _, r := range rows {
			if err := tbl.AppendRow(r...); err != nil {
				t.Fatal(err)
			}
		}
		return tbl
	}
	return []*table.Table{
		mk("pois", []string{"Name", "Address", "City"}, [][]string{
			{"Chez Panisse", "1517 Shattuck Avenue", "Berkeley"},
			{"Café Fanny", "1603 San Pablo Avenue", "Berkeley"},
			{"Musée d'Orsay", "", "Paris"},
			{"Tartine", "600 Guerrero Street", "Paris"},
		}),
		mk("merged", []string{"City", "Name", "Note"}, [][]string{
			{"Springfield", "The Crown", ""},
			{"Springfield", "Beacon & Anchor", ""},
			{"Springfield", "Mélîssé", "réservé"},
			{"Shelbyville", "<Quoted> \"Cell\"", ""},
			{"", "", ""},
			{"Shelbyville", "Last", "x"},
		}),
		mk("narrow", []string{"Name"}, [][]string{
			{"Solo"},
			{"Düo"},
		}),
		mk("sparse", []string{"A", "B", "C", "D"}, [][]string{
			{"v", "", "", ""},
			{"v", "", "", "tail"},
			{"v", "mid", "", ""},
		}),
	}
}

func equalTables(t *testing.T, label string, want, got *table.Table) {
	t.Helper()
	if len(want.Columns) != len(got.Columns) || len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: dims %dx%d, want %dx%d", label, got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for j := range want.Columns {
		if want.Columns[j] != got.Columns[j] {
			t.Errorf("%s: column %d = %+v, want %+v", label, j, got.Columns[j], want.Columns[j])
		}
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if want.Rows[i][j] != got.Rows[i][j] {
				t.Errorf("%s: cell (%d,%d) = %q, want %q", label, i+1, j+1, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// TestVariantsMatchCleanTwin is the package's core contract: every variant
// decodes to the same logical table as the clean-CSV route.
func TestVariantsMatchCleanTwin(t *testing.T) {
	for _, tbl := range sampleTables(t) {
		cleanBytes, err := Encode(tbl, CleanCSV)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := Decode(cleanBytes, CleanCSV, tbl.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range Variants()[1:] {
			data, err := Encode(tbl, v)
			if err != nil {
				t.Fatalf("%s/%s: %v", tbl.Name, v, err)
			}
			got, err := Decode(data, v, tbl.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v\n%s", tbl.Name, v, err, data)
			}
			equalTables(t, tbl.Name+"/"+string(v), clean, got)
		}
	}
}

// TestFixturePairs decodes the checked-in messy/clean fixture pairs under
// testdata/pairs: for every <name>.<ext> messy file there is a
// <name>.clean.csv twin, and both normalize to the same logical table.
func TestFixturePairs(t *testing.T) {
	cleans, err := filepath.Glob(filepath.Join("testdata", "pairs", "*.clean.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cleans) == 0 {
		t.Fatal("no fixture pairs found")
	}
	for _, cleanPath := range cleans {
		base := strings.TrimSuffix(filepath.Base(cleanPath), ".clean.csv")
		matches, err := filepath.Glob(filepath.Join("testdata", "pairs", base+".messy.*"))
		if err != nil || len(matches) != 1 {
			t.Fatalf("fixture %s: messy twin missing (%v)", base, err)
		}
		messyPath := matches[0]
		variant := CleanCSV
		if strings.HasSuffix(messyPath, ".html") {
			variant = MessyHTML
		}
		cleanData, err := os.ReadFile(cleanPath)
		if err != nil {
			t.Fatal(err)
		}
		messyData, err := os.ReadFile(messyPath)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := Decode(cleanData, CleanCSV, base)
		if err != nil {
			t.Fatalf("fixture %s clean: %v", base, err)
		}
		messy, err := Decode(messyData, variant, base)
		if err != nil {
			t.Fatalf("fixture %s messy: %v", base, err)
		}
		equalTables(t, base, clean, messy)
	}
}

func TestParseVariant(t *testing.T) {
	if _, err := ParseVariant("messy-html"); err != nil {
		t.Error(err)
	}
	if _, err := ParseVariant("carrier-pigeon"); err == nil {
		t.Error("unknown variant accepted")
	}
}
