// Package ingest defines the ingestion variants of the scenario matrix: ways
// of serializing a logical table into the messy formats tables arrive in —
// ragged CSV, decomposed-unicode CSV, tidy HTML, tag-soup HTML with merged
// cells — together with the decoder that reads each variant back through the
// tolerant readers and Normalize.
//
// The contract under test end to end: for every variant v,
// Decode(Encode(t, v), v) is the same logical table as Decode of the clean
// CSV, so annotations over any variant are byte-identical to the clean
// twin's. The encoders are deterministic (no randomness): the messiness is a
// function of the table content, which keeps every scenario-matrix cell
// reproducible.
package ingest

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/table"
	"repro/internal/textproc"
)

// Variant names one ingestion route.
type Variant string

const (
	// CleanCSV is the reference route: WriteCSV → ReadCSV → Normalize.
	CleanCSV Variant = "clean-csv"
	// RaggedCSV drops trailing empty fields from every record, the way
	// spreadsheet exports do.
	RaggedCSV Variant = "ragged-csv"
	// NFDCSV writes all cell text in decomposed unicode (combining
	// marks), the way macOS tools and some PDF extractors do.
	NFDCSV Variant = "nfd-csv"
	// HTML renders a tidy <table>.
	HTML Variant = "html"
	// MessyHTML renders a tag-soup <table>: merged cells (rowspan and
	// colspan), entity-encoded NFD text, mixed-case tags, omitted close
	// tags, a stray empty header column and blank separator rows.
	MessyHTML Variant = "messy-html"
)

// Variants returns every ingestion variant, clean twin first.
func Variants() []Variant {
	return []Variant{CleanCSV, RaggedCSV, NFDCSV, HTML, MessyHTML}
}

// ParseVariant resolves a variant name.
func ParseVariant(s string) (Variant, error) {
	for _, v := range Variants() {
		if string(v) == s {
			return v, nil
		}
	}
	return "", fmt.Errorf("unknown ingestion variant %q", s)
}

// Encode serializes t into the variant's byte format.
func Encode(t *table.Table, v Variant) ([]byte, error) {
	var buf bytes.Buffer
	switch v {
	case CleanCSV:
		if err := table.WriteCSV(&buf, t); err != nil {
			return nil, err
		}
	case RaggedCSV:
		if err := writeRaggedCSV(&buf, t); err != nil {
			return nil, err
		}
	case NFDCSV:
		if err := table.WriteCSV(&buf, decomposed(t)); err != nil {
			return nil, err
		}
	case HTML:
		writeHTML(&buf, t)
	case MessyHTML:
		writeMessyHTML(&buf, t)
	default:
		return nil, fmt.Errorf("unknown ingestion variant %q", v)
	}
	return buf.Bytes(), nil
}

// Decode reads a variant's bytes back into a normalized logical table.
func Decode(data []byte, v Variant, name string) (*table.Table, error) {
	var t *table.Table
	var err error
	switch v {
	case CleanCSV, RaggedCSV, NFDCSV:
		t, err = table.ReadCSV(bytes.NewReader(data), name)
	case HTML, MessyHTML:
		t, err = table.ReadHTML(bytes.NewReader(data), name)
	default:
		return nil, fmt.Errorf("unknown ingestion variant %q", v)
	}
	if err != nil {
		return nil, err
	}
	return table.Normalize(t)
}

// decomposed returns a copy of t with every header and cell in NFD.
func decomposed(t *table.Table) *table.Table {
	out := &table.Table{Name: t.Name}
	for _, c := range t.Columns {
		out.Columns = append(out.Columns, table.Column{
			Header: textproc.DecomposeNFD(c.Header), Type: c.Type,
		})
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = textproc.DecomposeNFD(v)
		}
		out.Rows = append(out.Rows, cells)
	}
	return out
}

// writeRaggedCSV emits CSV with trailing empty fields dropped from each
// record, so rows have varying widths. A record reduced to nothing keeps one
// field so the row itself survives (a blank line would be skipped on read).
func writeRaggedCSV(buf *bytes.Buffer, t *table.Table) error {
	writeRec := func(rec []string) {
		for len(rec) > 1 && rec[len(rec)-1] == "" {
			rec = rec[:len(rec)-1]
		}
		if len(rec) == 1 && rec[0] == "" {
			// A bare blank line would be skipped on re-read; force the
			// quoted empty field (same guard as table.WriteCSV).
			buf.WriteString("\"\"\n")
			return
		}
		for j, f := range rec {
			if j > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(csvField(f))
		}
		buf.WriteByte('\n')
	}
	header := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		header[j] = c.Header
	}
	writeRec(header)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return nil
}

// csvField quotes a CSV field when it needs it; an empty sole field is
// force-quoted by the caller keeping at least one field per record.
func csvField(f string) string {
	if strings.ContainsAny(f, ",\"\n\r") {
		return `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
	}
	return f
}

// writeHTML renders a tidy table: one <tr> per row, <th> headers, escaped
// text.
func writeHTML(buf *bytes.Buffer, t *table.Table) {
	buf.WriteString("<table>\n<tr>")
	for _, c := range t.Columns {
		buf.WriteString("<th>")
		buf.WriteString(escapeHTML(c.Header))
		buf.WriteString("</th>")
	}
	buf.WriteString("</tr>\n")
	for _, row := range t.Rows {
		buf.WriteString("<tr>")
		for _, v := range row {
			buf.WriteString("<td>")
			buf.WriteString(escapeHTML(v))
			buf.WriteString("</td>")
		}
		buf.WriteString("</tr>\n")
	}
	buf.WriteString("</table>\n")
}

func escapeHTML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// writeMessyHTML renders the adversarial HTML route. Deterministically from
// the table content it
//
//   - merges vertical runs of equal non-empty values into rowspans (what a
//     human editor does to a repeated city column),
//   - merges a non-empty cell with a following run of empty cells into a
//     colspan (covering trailing raggedness),
//   - writes text as NFD with per-rune entity encoding for a/e and the
//     HTML-special characters,
//   - uses mixed-case tags, thead/tbody wrappers, unquoted span attributes
//     and omitted </td> closers,
//   - appends a stray empty header column and inserts a blank separator row,
//
// all of which Normalize must undo exactly.
func writeMessyHTML(buf *bytes.Buffer, t *table.Table) {
	w := len(t.Columns)
	// rowsLeft[j] > 0 means column j of the current row is covered by an
	// earlier rowspan and must not emit a cell.
	rowsLeft := make([]int, w)

	// runLen returns the length (≥1) of the vertical run of cells equal to
	// Rows[i][j] starting at row i, capped at 4.
	runLen := func(i, j int) int {
		v := t.Rows[i][j]
		if v == "" {
			return 1
		}
		n := 1
		for i+n < len(t.Rows) && n < 4 && t.Rows[i+n][j] == v {
			n++
		}
		return n
	}

	buf.WriteString("<TABLE>\n<THEAD>\n <Tr>")
	for _, c := range t.Columns {
		buf.WriteString("<TH>")
		buf.WriteString(messyText(c.Header))
		buf.WriteString("</TH>")
	}
	// Stray empty header column: Normalize drops it (no header, no data).
	buf.WriteString("<TH></TH></Tr>\n</THEAD>\n<TBODY>\n")
	for i := range t.Rows {
		if i == len(t.Rows)/2 && !anyActive(rowsLeft) {
			// Blank separator row mid-table; Normalize drops it. Only
			// legal while no rowspan is open — an open span would
			// swallow the separator as one of its grid rows and shift
			// every later row up.
			buf.WriteString(" <tr><td></td></tr>\n")
		}
		buf.WriteString(" <tr>")
		for j := 0; j < w; j++ {
			if rowsLeft[j] > 0 {
				rowsLeft[j]--
				continue
			}
			v := t.Rows[i][j]
			rs := runLen(i, j)
			// Colspan-merge a non-empty cell with following empties,
			// but only when no rowspan is in play in the swallowed
			// columns.
			cs := 1
			if rs == 1 && v != "" {
				for cs < 3 && j+cs < w && t.Rows[i][j+cs] == "" && rowsLeft[j+cs] == 0 {
					cs++
				}
			}
			buf.WriteString("<Td")
			if rs > 1 {
				fmt.Fprintf(buf, " rowspan=%d", rs)
				rowsLeft[j] = rs - 1
			}
			if cs > 1 {
				fmt.Fprintf(buf, " colspan=%d", cs)
				j += cs - 1
			}
			buf.WriteString(">")
			buf.WriteString(messyText(v))
			// Omitted </td>: the next <td>/<tr> implies the close.
		}
		buf.WriteString("\n")
	}
	buf.WriteString("</TBODY>\n</TABLE>\n")
}

func anyActive(rowsLeft []int) bool {
	for _, n := range rowsLeft {
		if n > 0 {
			return true
		}
	}
	return false
}

// messyText renders cell text the hostile way: decomposed unicode, then
// rune-by-rune encoding — HTML specials as named entities, 'a' and 'e' as
// numeric character references. Encoding per rune (rather than string
// replacement on escaped text) cannot corrupt an earlier entity.
func messyText(s string) string {
	var b strings.Builder
	for _, r := range textproc.DecomposeNFD(s) {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case 'a', 'e':
			fmt.Fprintf(&b, "&#%d;", r)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
