package disambig

// Ambiguity edge cases: empty candidate sets, single-candidate
// short-circuits, tie-breaking determinism and input-order invariance.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gazetteer"
)

func TestResolveNoInterpretations(t *testing.T) {
	g := gazetteer.Synthetic(1)
	if choice := Resolve(nil, g); len(choice) != 0 {
		t.Errorf("Resolve(nil) = %v, want empty", choice)
	}
	if choice := Resolve([]Interpretation{}, g); len(choice) != 0 {
		t.Errorf("Resolve([]) = %v, want empty", choice)
	}
}

// TestEmptyCandidateSetResolvesToNoLocation: a geocoder can return zero
// candidates for a cell (unknown address). Such cells contribute no nodes
// and do not disturb their neighbours' resolution, but they are present in
// the result as explicit NoLocation entries — callers can distinguish "the
// geocoder could not resolve this cell" from "this cell was never submitted".
func TestEmptyCandidateSetResolvesToNoLocation(t *testing.T) {
	g := gazetteer.Synthetic(2)
	balt := g.Lookup("Baltimore", gazetteer.City)
	if len(balt) != 1 {
		t.Fatalf("Baltimore should be unambiguous, got %d", len(balt))
	}
	interps := []Interpretation{
		{Cell: CellRef{1, 1}, Candidates: nil},
		{Cell: CellRef{1, 2}, Candidates: balt},
		{Cell: CellRef{2, 1}, Candidates: []gazetteer.LocID{}},
	}
	choice, detail := ResolveScores(interps, g)
	if len(choice) != 3 {
		t.Fatalf("resolved %d cells, want all 3 submitted cells: %v", len(choice), choice)
	}
	if choice[CellRef{1, 2}] != balt[0] {
		t.Errorf("neighbour of empty cells resolved to %v, want %v", choice[CellRef{1, 2}], balt[0])
	}
	for _, empty := range []CellRef{{1, 1}, {2, 1}} {
		loc, ok := choice[empty]
		if !ok || loc != gazetteer.NoLocation {
			t.Errorf("cell %v = (%v, present=%v), want an explicit NoLocation entry", empty, loc, ok)
		}
		if len(detail[empty]) != 0 {
			t.Errorf("cell %v has scores %v, want none", empty, detail[empty])
		}
	}
	// A cell that is unresolvable in one interpretation but has candidates
	// in another is resolved normally.
	merged := append(interps, Interpretation{Cell: CellRef{1, 1}, Candidates: balt})
	if got := Resolve(merged, g)[CellRef{1, 1}]; got != balt[0] {
		t.Errorf("cell with a later non-empty interpretation resolved to %v, want %v", got, balt[0])
	}
}

// TestSingleCandidateShortCircuit: an unambiguous cell keeps its only
// candidate no matter how its neighbours vote — even when the neighbour's
// candidates share no container with it.
func TestSingleCandidateShortCircuit(t *testing.T) {
	g := gazetteer.Synthetic(3)
	balt := g.Lookup("Baltimore", gazetteer.City)
	parises := g.Lookup("Paris", gazetteer.City)
	if len(balt) != 1 || len(parises) < 2 {
		t.Fatalf("need unambiguous Baltimore (%d) and ambiguous Paris (%d)", len(balt), len(parises))
	}
	interps := []Interpretation{
		{Cell: CellRef{1, 1}, Candidates: balt},
		{Cell: CellRef{1, 2}, Candidates: parises},
	}
	choice, detail := ResolveScores(interps, g)
	if choice[CellRef{1, 1}] != balt[0] {
		t.Errorf("single candidate not selected: %v", choice[CellRef{1, 1}])
	}
	if s := detail[CellRef{1, 1}][balt[0]]; s != 1 {
		t.Errorf("single candidate score = %v, want 1 (full-weight vote)", s)
	}
}

// TestTieBreakPicksSmallestLocID: an isolated ambiguous cell keeps its
// uniform prior, so every candidate ties and the smallest LocID must win
// (the paper chooses randomly; we are deterministic).
func TestTieBreakPicksSmallestLocID(t *testing.T) {
	g := gazetteer.Synthetic(4)
	parises := g.Lookup("Paris", gazetteer.City)
	if len(parises) < 2 {
		t.Fatal("need ambiguous Paris")
	}
	min := parises[0]
	for _, c := range parises[1:] {
		if c < min {
			min = c
		}
	}
	interps := []Interpretation{{Cell: CellRef{3, 3}, Candidates: parises}}
	choice, detail := ResolveScores(interps, g)
	if choice[CellRef{3, 3}] != min {
		t.Errorf("tie resolved to %v, want smallest LocID %v (scores %v)", choice[CellRef{3, 3}], min, detail[CellRef{3, 3}])
	}
	// The tie really is a tie: all candidates kept the uniform prior.
	for loc, s := range detail[CellRef{3, 3}] {
		if want := 1.0 / float64(len(parises)); s != want {
			t.Errorf("candidate %v score %v, want uniform %v", loc, s, want)
		}
	}
}

// TestTieBreakInvariantUnderCandidateOrder: permuting a cell's candidate
// list (and the interpretation list itself) never changes the resolution.
func TestTieBreakInvariantUnderCandidateOrder(t *testing.T) {
	g, interps, _ := figure7(t)
	want := Resolve(interps, g)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		shuffled := make([]Interpretation, len(interps))
		for i, it := range interps {
			cands := append([]gazetteer.LocID(nil), it.Candidates...)
			rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
			shuffled[i] = Interpretation{Cell: it.Cell, Candidates: cands}
		}
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		if got := Resolve(shuffled, g); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: resolution depends on input order:\n got: %v\nwant: %v", trial, got, want)
		}
	}
}

// TestDuplicateCandidatesDeduplicated: a geocoder repeating a candidate must
// not change the graph — duplicates would split the cell's uniform prior and
// vote twice, so graph construction drops them. The resolution of a
// duplicated input is identical to the deduplicated one's.
func TestDuplicateCandidatesDeduplicated(t *testing.T) {
	g := gazetteer.Synthetic(5)
	parises := g.Lookup("Paris", gazetteer.City)
	balt := g.Lookup("Baltimore", gazetteer.City)
	if len(parises) < 2 || len(balt) != 1 {
		t.Fatalf("need ambiguous Paris (%d) and unambiguous Baltimore (%d)", len(parises), len(balt))
	}
	dup := append(append([]gazetteer.LocID(nil), parises...), parises...)
	clean := []Interpretation{
		{Cell: CellRef{1, 1}, Candidates: parises},
		{Cell: CellRef{1, 2}, Candidates: balt},
	}
	dirty := []Interpretation{
		{Cell: CellRef{1, 1}, Candidates: dup},
		{Cell: CellRef{1, 2}, Candidates: balt},
	}
	if got, want := BuildGraph(dirty, g).NodeCount(), BuildGraph(clean, g).NodeCount(); got != want {
		t.Fatalf("duplicated candidates created %d nodes, want %d", got, want)
	}
	wantChoice, wantDetail := ResolveScores(clean, g)
	gotChoice, gotDetail := ResolveScores(dirty, g)
	if !reflect.DeepEqual(gotChoice, wantChoice) {
		t.Errorf("duplicated input resolves differently:\n got %v\nwant %v", gotChoice, wantChoice)
	}
	if !reflect.DeepEqual(gotDetail, wantDetail) {
		t.Errorf("duplicated input scores differently:\n got %v\nwant %v", gotDetail, wantDetail)
	}
	// NoLocation candidates are invalid input and are ignored.
	noisy := []Interpretation{{Cell: CellRef{1, 1}, Candidates: append([]gazetteer.LocID{gazetteer.NoLocation}, parises...)}}
	if got, want := BuildGraph(noisy, g).NodeCount(), len(parises); got != want {
		t.Errorf("NoLocation candidate created a node: %d nodes, want %d", got, want)
	}
}
