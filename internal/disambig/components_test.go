package disambig

// Differential and property tests for the component-parallel resolver: the
// decomposition must be exactly the voting graph's connected-component
// partition (coarsened by per-cell coupling), and resolution must stay
// BIT-identical to the retained whole-table engine — same choices, same
// float64 scores — at every worker count, over both gazetteer forms.

import (
	"math/rand"
	"testing"

	"repro/internal/gazetteer"
)

// checkEngines resolves through the whole-table engine and the
// component-parallel engine at several worker counts and fails on any
// divergence, bitwise. Returns the component engine's stats for callers
// asserting decomposition shape.
func checkEngines(t *testing.T, interps []Interpretation, g gazetteer.Geo, workers []int) Stats {
	t.Helper()
	wantChoice, wantDetail := ResolveScoresSingle(interps, g)
	var st Stats
	for _, w := range workers {
		choice, detail, s := ResolveScoresOpt(interps, g, Options{Workers: w})
		st = s
		if len(choice) != len(wantChoice) {
			t.Fatalf("workers=%d: %d choices, whole-table engine has %d", w, len(choice), len(wantChoice))
		}
		for cell, loc := range wantChoice {
			if got := choice[cell]; got != loc {
				t.Fatalf("workers=%d cell %v: chose %v, whole-table engine chose %v", w, cell, got, loc)
			}
		}
		for cell, m := range wantDetail {
			got := detail[cell]
			if len(got) != len(m) {
				t.Fatalf("workers=%d cell %v: score map sizes differ (%d vs %d)", w, cell, len(got), len(m))
			}
			for loc, s := range m {
				if got[loc] != s {
					t.Fatalf("workers=%d cell %v loc %v: score %v, whole-table engine %v (bitwise)", w, cell, loc, got[loc], s)
				}
			}
		}
	}
	return st
}

var differentialWorkers = []int{1, 2, 8}

// TestComponentParallelMatchesSingleGraph drives both engines over
// randomized tables — larger than the O(n²) seed-reference suite can afford
// — across worker counts {1, 2, 8} and both gazetteer forms.
func TestComponentParallelMatchesSingleGraph(t *testing.T) {
	for _, scale := range []int{1, 4} {
		b := gazetteer.SyntheticScale(29, scale)
		names := gazNames(b)
		for _, g := range []gazetteer.Geo{b, b.Freeze()} {
			rng := rand.New(rand.NewSource(int64(scale) * 977))
			for trial := 0; trial < 15; trial++ {
				rows, cols := 1+rng.Intn(40), 1+rng.Intn(6)
				interps := randomInterps(g, rng, rows, cols, 8, names)
				checkEngines(t, interps, g, differentialWorkers)
			}
		}
	}
}

// addressInterps builds the decomposable huge-table workload: each row
// holds a home city and addresses of streets inside it, geocoded with the
// city name as context — so candidate sets only couple rows sharing a city
// name and the graph splits into many components (one per distinct city
// name, roughly). This is the cmd/benchgeo huge-table shape.
func addressInterps(mg *gazetteer.Gazetteer, g gazetteer.Geo, rng *rand.Rand, rows, cols int) []Interpretation {
	cities := mg.Cities()
	var interps []Interpretation
	for i := 1; i <= rows; i++ {
		var home gazetteer.LocID
		var streets []gazetteer.LocID
		for len(streets) == 0 {
			home = cities[rng.Intn(len(cities))]
			streets = mg.StreetsIn(home)
		}
		for j := 1; j <= cols; j++ {
			st := streets[rng.Intn(len(streets))]
			addr := g.Name(st) + ", " + g.Name(home)
			interps = append(interps, Interpretation{
				Cell:       CellRef{Row: i, Col: j},
				Candidates: g.Geocode(addr),
			})
		}
	}
	return interps
}

// TestComponentParallelMultiComponent exercises the engines on a workload
// that genuinely decomposes (the whole point of the rewrite), asserting a
// non-trivial component count alongside bit-identity.
func TestComponentParallelMultiComponent(t *testing.T) {
	mg := gazetteer.SyntheticScale(42, 8)
	rng := rand.New(rand.NewSource(7))
	for _, g := range []gazetteer.Geo{mg, mg.Freeze()} {
		interps := addressInterps(mg, g, rng, 60, 3)
		st := checkEngines(t, interps, g, differentialWorkers)
		if st.Components < 4 {
			t.Fatalf("address workload produced only %d components; want a real decomposition", st.Components)
		}
		if st.LargestComponent >= st.Nodes {
			t.Fatalf("largest component %d spans all %d nodes", st.LargestComponent, st.Nodes)
		}
		if st.PeakScratchBytes == 0 {
			t.Fatalf("peak scratch bytes not recorded")
		}
	}
}

// TestResolveStreamMatches checks the streaming delivery against the batch
// resolver: same cells, same choices, same bitwise scores, every cell
// yielded exactly once, at several worker counts.
func TestResolveStreamMatches(t *testing.T) {
	mg := gazetteer.SyntheticScale(42, 4)
	g := mg.Freeze()
	rng := rand.New(rand.NewSource(11))
	interps := addressInterps(mg, g, rng, 30, 3)
	// A geocoder-miss cell: must stream an explicit NoLocation.
	interps = append(interps, Interpretation{Cell: CellRef{Row: 500, Col: 1}})
	wantChoice, wantDetail, wantStats := ResolveScoresOpt(interps, g, Options{})
	for _, w := range differentialWorkers {
		var mu chanMutex
		gotChoice := map[CellRef]gazetteer.LocID{}
		gotDetail := map[CellRef]map[gazetteer.LocID]float64{}
		st := ResolveStream(interps, g, Options{Workers: w}, func(cell CellRef, loc gazetteer.LocID, scores map[gazetteer.LocID]float64) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := gotChoice[cell]; dup {
				t.Errorf("workers=%d: cell %v yielded twice", w, cell)
			}
			gotChoice[cell] = loc
			gotDetail[cell] = scores
		})
		if st.Components != wantStats.Components || st.Nodes != wantStats.Nodes || st.Edges != wantStats.Edges {
			t.Fatalf("workers=%d: stream stats %+v, batch stats %+v", w, st, wantStats)
		}
		if len(gotChoice) != len(wantChoice) {
			t.Fatalf("workers=%d: streamed %d cells, batch resolved %d", w, len(gotChoice), len(wantChoice))
		}
		for cell, loc := range wantChoice {
			if gotChoice[cell] != loc {
				t.Fatalf("workers=%d cell %v: streamed %v, batch chose %v", w, cell, gotChoice[cell], loc)
			}
			got, want := gotDetail[cell], wantDetail[cell]
			if len(got) != len(want) {
				t.Fatalf("workers=%d cell %v: score map sizes differ", w, cell)
			}
			for l, s := range want {
				if got[l] != s {
					t.Fatalf("workers=%d cell %v loc %v: streamed score %v, batch %v", w, cell, l, got[l], s)
				}
			}
		}
	}
}

// chanMutex is a tiny mutex built on a 1-buffered channel, avoiding a sync
// import for one test.
type chanMutex chan struct{}

func (m *chanMutex) Lock() {
	if *m == nil {
		*m = make(chanMutex, 1)
	}
	*m <- struct{}{}
}
func (m *chanMutex) Unlock() { <-*m }

// TestDegenerateFastPath pins the NoLocation-only short-circuit: empty
// inputs, empty candidate sets and all-NoLocation candidate sets resolve
// without graph construction, matching the full engines' output shape
// exactly.
func TestDegenerateFastPath(t *testing.T) {
	g := gazetteer.Synthetic(5)
	cases := [][]Interpretation{
		nil,
		{},
		{{Cell: CellRef{Row: 1, Col: 1}}},
		{{Cell: CellRef{Row: 1, Col: 1}}, {Cell: CellRef{Row: 2, Col: 1}}, {Cell: CellRef{Row: 1, Col: 1}}},
		{{Cell: CellRef{Row: 3, Col: 2}, Candidates: []gazetteer.LocID{gazetteer.NoLocation}}},
		{
			{Cell: CellRef{Row: 1, Col: 1}, Candidates: []gazetteer.LocID{gazetteer.NoLocation, gazetteer.NoLocation}},
			{Cell: CellRef{Row: 2, Col: 2}},
		},
	}
	for i, interps := range cases {
		if !degenerate(interps) {
			t.Fatalf("case %d: not detected as degenerate", i)
		}
		choice, detail, st := ResolveScoresOpt(interps, g, Options{})
		if st != (Stats{}) {
			t.Fatalf("case %d: degenerate stats %+v, want zero", i, st)
		}
		wantChoice, wantDetail := refCells(interps)
		if len(choice) != len(wantChoice) || len(detail) != len(wantDetail) {
			t.Fatalf("case %d: got %d/%d cells, want %d", i, len(choice), len(detail), len(wantChoice))
		}
		for cell := range wantChoice {
			loc, ok := choice[cell]
			if !ok || loc != gazetteer.NoLocation {
				t.Fatalf("case %d cell %v: got (%v, %v), want explicit NoLocation", i, cell, loc, ok)
			}
			if m := detail[cell]; m == nil || len(m) != 0 {
				t.Fatalf("case %d cell %v: detail %v, want empty non-nil map", i, cell, m)
			}
		}
		// The graph-building engines agree on the degenerate shape.
		grChoice, grDetail := ResolveScoresSingle(interps, g)
		if len(grChoice) != len(choice) || len(grDetail) != len(detail) {
			t.Fatalf("case %d: fast path and whole-table engine disagree on cell counts", i)
		}
	}
	// And one near-miss: a single valid candidate anywhere defeats the
	// short-circuit.
	if degenerate([]Interpretation{{Cell: CellRef{Row: 1, Col: 1}, Candidates: []gazetteer.LocID{gazetteer.NoLocation, 3}}}) {
		t.Fatal("a valid candidate was treated as degenerate")
	}
}

// refCells derives the expected deduplicated cell set of a degenerate input.
func refCells(interps []Interpretation) (map[CellRef]bool, map[CellRef]bool) {
	cells := map[CellRef]bool{}
	for _, it := range interps {
		cells[it.Cell] = true
	}
	return cells, cells
}

// FuzzComponentDecomposition checks the partition invariants of decompose
// against the materialised graph: every node lands in exactly one
// component, every directed edge stays inside its voter's component, a
// cell's nodes share one component, and the partition is exactly the one a
// union-find over the materialised edges (plus per-cell coupling) produces
// — no over- or under-merging. The derivation mirrors
// FuzzResolveEquivalence so the two corpora stress the same shapes.
func FuzzComponentDecomposition(f *testing.F) {
	f.Add([]byte{1, 1, 2, 10, 20, 30, 255, 2, 2, 1, 10, 11})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{5, 1, 3, 100, 101, 102, 255, 5, 2, 3, 100, 110, 120, 255, 6, 1, 1, 100})
	f.Add([]byte{9, 3, 4, 1, 2, 3, 4, 255, 2, 9, 4, 7, 7, 7, 7})
	g := gazetteer.Synthetic(23)
	frozen := g.Freeze()
	f.Fuzz(func(t *testing.T, data []byte) {
		var interps []Interpretation
		seen := map[CellRef]map[gazetteer.LocID]bool{}
		i := 0
		for i+3 <= len(data) && len(interps) < 40 {
			cell := CellRef{Row: 1 + int(data[i])%12, Col: 1 + int(data[i+1])%6}
			n := int(data[i+2]) % 8
			i += 3
			if seen[cell] == nil {
				seen[cell] = map[gazetteer.LocID]bool{}
			}
			var cands []gazetteer.LocID
			for k := 0; k < n && i < len(data); k++ {
				id := gazetteer.LocID(1 + (int(data[i])*7+k*31)%g.Len())
				i++
				if !seen[cell][id] {
					seen[cell][id] = true
					cands = append(cands, id)
				}
			}
			interps = append(interps, Interpretation{Cell: cell, Candidates: cands})
			if i < len(data) && data[i] == 255 {
				i++
			}
		}
		for _, geo := range []gazetteer.Geo{g, frozen} {
			checkDecomposition(t, interps, geo)
		}
	})
}

// checkDecomposition asserts decompose's partition invariants against the
// whole-table graph, and the engines' bit-identity on the same input.
func checkDecomposition(t *testing.T, interps []Interpretation, g gazetteer.Geo) {
	t.Helper()
	d := decompose(interps, g)
	gr := BuildGraph(interps, g)
	n := gr.NodeCount()

	// Every node in exactly one component; members ascending.
	compOf := make([]int, n)
	for i := range compOf {
		compOf[i] = -1
	}
	total := 0
	for ci, comp := range d.comps {
		if len(comp) == 0 {
			t.Fatalf("component %d is empty", ci)
		}
		for k, gi := range comp {
			if k > 0 && comp[k-1] >= gi {
				t.Fatalf("component %d members not ascending", ci)
			}
			if compOf[gi] != -1 {
				t.Fatalf("node %d in components %d and %d", gi, compOf[gi], ci)
			}
			compOf[gi] = ci
			total++
		}
	}
	if total != n {
		t.Fatalf("%d nodes assigned, graph has %d", total, n)
	}

	// Component-local edges only.
	for v := 0; v < n; v++ {
		for _, w := range gr.in[gr.inOff[v]:gr.inOff[v+1]] {
			if compOf[v] != compOf[w] {
				t.Fatalf("edge %d->%d crosses components %d and %d", w, v, compOf[w], compOf[v])
			}
		}
	}
	// A cell's nodes share one component (normalisation coupling).
	for ci, idxs := range gr.cellNodes {
		for _, gi := range idxs {
			if compOf[gi] != compOf[idxs[0]] {
				t.Fatalf("cell %v split across components", gr.cells[ci])
			}
		}
	}

	// Exactness: the partition must equal the one derived from the
	// materialised edges plus per-cell coupling — decompose must not merge
	// components no edge or cell connects.
	uf := newUnionFind(n)
	for v := 0; v < n; v++ {
		for _, w := range gr.in[gr.inOff[v]:gr.inOff[v+1]] {
			uf.union(int32(v), w)
		}
	}
	for _, idxs := range gr.cellNodes {
		for k := 1; k < len(idxs); k++ {
			uf.union(idxs[0], idxs[k])
		}
	}
	roots := map[int32]int{}
	for i := 0; i < n; i++ {
		r := uf.find(int32(i))
		if prev, ok := roots[r]; ok {
			if prev != compOf[i] {
				t.Fatalf("node %d: edge-derived set (root %d) spans components %d and %d", i, r, prev, compOf[i])
			}
		} else {
			roots[r] = compOf[i]
		}
	}
	if len(roots) != len(d.comps) {
		t.Fatalf("decompose found %d components, edge-derived partition has %d", len(d.comps), len(roots))
	}

	checkEngines(t, interps, g, []int{1, 3})
}
