package disambig

import (
	"testing"
	"testing/quick"

	"repro/internal/gazetteer"
)

// figure7 reconstructs the exact scenario of Figure 7 in the paper: column 1
// holds partial street addresses, column 2 holds city references; correct
// interpretations share containers along rows.
func figure7(t *testing.T) (*gazetteer.Gazetteer, []Interpretation, map[CellRef]string) {
	t.Helper()
	g := gazetteer.Synthetic(1)

	find := func(street, city string) gazetteer.LocID {
		for _, s := range g.Lookup(street, gazetteer.Street) {
			if g.Name(g.CityOf(s)) == city {
				return s
			}
		}
		t.Fatalf("street %q in %q not found", street, city)
		return gazetteer.NoLocation
	}
	findCity := func(city, state string) gazetteer.LocID {
		for _, c := range g.Lookup(city, gazetteer.City) {
			if g.Name(g.Parent(c)) == state {
				return c
			}
		}
		t.Fatalf("city %q, %q not found", city, state)
		return gazetteer.NoLocation
	}

	interps := []Interpretation{
		{Cell: CellRef{12, 1}, Candidates: []gazetteer.LocID{
			find("Pennsylvania Avenue", "Baltimore"),
			find("Pennsylvania Avenue", "Washington"),
		}},
		{Cell: CellRef{13, 1}, Candidates: []gazetteer.LocID{
			find("Wofford Lane", "College Park"),
			find("Wofford Lane", "Lockhart"),
			find("Wofford Lane", "Conway"),
		}},
		{Cell: CellRef{20, 1}, Candidates: []gazetteer.LocID{
			find("Clarksville Street", "Paris"),
			find("Clarksville Street", "Bogata"),
			find("Clarksville Street", "Trenton"),
		}},
		{Cell: CellRef{12, 2}, Candidates: []gazetteer.LocID{
			findCity("Washington", "D.C."),
			findCity("Washington", "GA"),
		}},
		{Cell: CellRef{13, 2}, Candidates: []gazetteer.LocID{
			findCity("College Park", "MD"),
			findCity("College Park", "GA"),
		}},
		{Cell: CellRef{20, 2}, Candidates: []gazetteer.LocID{
			findCity("Paris", "TX"),
			findCity("Paris", "Île-de-France"),
			findCity("Paris", "TN"),
		}},
	}
	want := map[CellRef]string{
		{12, 1}: "Washington",
		{13, 1}: "College Park",
		{20, 1}: "Paris",
		{12, 2}: "Washington",
		{13, 2}: "College Park",
		{20, 2}: "Paris",
	}
	return g, interps, want
}

func TestFigure7Resolution(t *testing.T) {
	g, interps, want := figure7(t)
	choice := Resolve(interps, g)
	if len(choice) != len(interps) {
		t.Fatalf("resolved %d cells, want %d", len(choice), len(interps))
	}
	for cell, wantCity := range want {
		loc := choice[cell]
		gotCity := g.Name(g.CityOf(loc))
		if gotCity != wantCity {
			t.Errorf("cell %v resolved to city %q, want %q", cell, gotCity, wantCity)
		}
	}
	// The street picks in column 1 must be the streets *in* the chosen
	// cities, not merely same-named streets elsewhere.
	if g.Kind(choice[CellRef{12, 1}]) != gazetteer.Street {
		t.Errorf("cell (12,1) should resolve to a street")
	}
	// Row 12's correct state: D.C., not GA.
	wash := choice[CellRef{12, 2}]
	if g.Name(g.Parent(wash)) != "D.C." {
		t.Errorf("Washington resolved under state %q, want D.C.", g.Name(g.Parent(wash)))
	}
	// Row 20: Paris, TX (voted by Clarksville Street), not France.
	paris := choice[CellRef{20, 2}]
	if g.Name(g.Parent(paris)) != "TX" {
		t.Errorf("Paris resolved under %q, want TX", g.Name(g.Parent(paris)))
	}
}

func TestGraphStructure(t *testing.T) {
	g, interps, _ := figure7(t)
	gr := BuildGraph(interps, g)
	if gr.NodeCount() != 15 {
		t.Errorf("node count = %d, want 15 (sum of candidate set sizes)", gr.NodeCount())
	}
	if gr.EdgeCount() == 0 {
		t.Error("graph has no edges; voting cannot happen")
	}
}

func TestUnambiguousCellKeepsItsOnlyCandidate(t *testing.T) {
	g := gazetteer.Synthetic(2)
	balt := g.Lookup("Baltimore", gazetteer.City)
	if len(balt) != 1 {
		t.Fatalf("Baltimore should be unambiguous, got %d", len(balt))
	}
	interps := []Interpretation{{Cell: CellRef{1, 1}, Candidates: balt}}
	choice := Resolve(interps, g)
	if choice[CellRef{1, 1}] != balt[0] {
		t.Errorf("single candidate was not selected")
	}
}

func TestIsolatedAmbiguousCellPicksDeterministically(t *testing.T) {
	g := gazetteer.Synthetic(3)
	parises := g.Lookup("Paris", gazetteer.City)
	if len(parises) < 2 {
		t.Fatalf("need ambiguous Paris")
	}
	interps := []Interpretation{{Cell: CellRef{5, 5}, Candidates: parises}}
	c1 := Resolve(interps, g)
	c2 := Resolve(interps, g)
	if c1[CellRef{5, 5}] != c2[CellRef{5, 5}] {
		t.Errorf("isolated ambiguous cell resolution is nondeterministic")
	}
}

func TestUnambiguousNeighbourDominatesVote(t *testing.T) {
	// A row contains an unambiguous city and an ambiguous street; the
	// street interpretation in that city must win.
	g := gazetteer.Synthetic(4)
	var balt gazetteer.LocID
	for _, c := range g.Lookup("Baltimore", gazetteer.City) {
		balt = c
	}
	streets := g.Lookup("Pennsylvania Avenue", gazetteer.Street)
	if len(streets) < 2 {
		t.Fatalf("need ambiguous Pennsylvania Avenue")
	}
	interps := []Interpretation{
		{Cell: CellRef{1, 1}, Candidates: streets},
		{Cell: CellRef{1, 2}, Candidates: []gazetteer.LocID{balt}},
	}
	choice := Resolve(interps, g)
	if g.CityOf(choice[CellRef{1, 1}]) != balt {
		t.Errorf("street resolved to %q, want the Baltimore street",
			g.FullName(choice[CellRef{1, 1}]))
	}
}

func TestNoCrossCellEdgesWithinSameCell(t *testing.T) {
	g := gazetteer.Synthetic(5)
	streets := g.Lookup("Main Street", gazetteer.Street)
	if len(streets) < 2 {
		t.Fatal("need ambiguous Main Street")
	}
	// Candidates of the same cell never vote for each other even though
	// some may share a container.
	interps := []Interpretation{{Cell: CellRef{1, 1}, Candidates: streets}}
	gr := BuildGraph(interps, g)
	if gr.EdgeCount() != 0 {
		t.Errorf("edges within a single cell: %d, want 0", gr.EdgeCount())
	}
}

func TestDiagonalCellsDoNotVote(t *testing.T) {
	g := gazetteer.Synthetic(6)
	a := g.Lookup("Pennsylvania Avenue", gazetteer.Street)
	b := g.Lookup("Washington", gazetteer.City)
	interps := []Interpretation{
		{Cell: CellRef{1, 1}, Candidates: a},
		{Cell: CellRef{2, 2}, Candidates: b}, // different row AND column
	}
	gr := BuildGraph(interps, g)
	if gr.EdgeCount() != 0 {
		t.Errorf("diagonal cells should not vote: %d edges", gr.EdgeCount())
	}
}

// TestScoresAreDistributions: after resolution every cell's candidate scores
// form a probability distribution.
func TestScoresAreDistributions(t *testing.T) {
	g, interps, _ := figure7(t)
	_, detail := ResolveScores(interps, g)
	for cell, m := range detail {
		var sum float64
		for _, s := range m {
			if s < 0 || s > 1+1e-9 {
				t.Errorf("cell %v has out-of-range score %v", cell, s)
			}
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("cell %v scores sum to %v, want 1", cell, sum)
		}
	}
}

// TestResolveTotal: every input cell gets exactly one interpretation, chosen
// from its own candidate set.
func TestResolveTotal(t *testing.T) {
	g := gazetteer.Synthetic(7)
	cities := g.Cities()
	f := func(seed uint32) bool {
		// Build a random 3x2 grid of interpretations from real
		// ambiguous names.
		state := seed
		next := func(n int) int {
			state = state*1664525 + 1013904223
			return int(state % uint32(n))
		}
		var interps []Interpretation
		for r := 1; r <= 3; r++ {
			for c := 1; c <= 2; c++ {
				city := cities[next(len(cities))]
				cands := g.Lookup(g.Name(city), gazetteer.City)
				interps = append(interps, Interpretation{
					Cell: CellRef{r, c}, Candidates: cands,
				})
			}
		}
		choice := Resolve(interps, g)
		for _, it := range interps {
			sel, ok := choice[it.Cell]
			if !ok {
				return false
			}
			found := false
			for _, c := range it.Candidates {
				if c == sel {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
