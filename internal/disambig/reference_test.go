package disambig

// The seed implementation of the voting graph, kept verbatim as an
// executable specification: all-pairs O(n²) edge construction and the
// map-based score propagation. The production implementation in disambig.go
// (bucketed sparse edges, CSR adjacency, parallel propagation) must stay
// BIT-identical to it — same choices AND the same float64 scores, enforced
// by the differential and fuzz tests below. The only sanctioned divergences
// are the documented input-hygiene extensions of the rewrite: duplicate
// candidates within a cell are deduplicated, and a cell whose candidate set
// is empty resolves to an explicit NoLocation entry (the reference drops
// duplicates and empty cells on the floor); the tests canonicalise inputs
// and outputs accordingly before comparing.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gazetteer"
)

// refNode is one (cell, candidate) pair in the reference voting graph.
type refNode struct {
	cell CellRef
	loc  gazetteer.LocID
	in   []int // indexes of nodes voting for this node
}

// refGraph is the reference voting graph.
type refGraph struct {
	nodes []refNode
	g     gazetteer.Geo
}

// refBuildGraph is the seed BuildGraph: every ordered node pair is examined.
func refBuildGraph(interps []Interpretation, g gazetteer.Geo) *refGraph {
	gr := &refGraph{g: g}
	for _, it := range interps {
		for _, loc := range it.Candidates {
			gr.nodes = append(gr.nodes, refNode{cell: it.Cell, loc: loc})
		}
	}
	for i := range gr.nodes {
		for j := range gr.nodes {
			if i == j {
				continue
			}
			a, b := &gr.nodes[i], &gr.nodes[j]
			if a.cell == b.cell {
				continue
			}
			if a.cell.Row != b.cell.Row && a.cell.Col != b.cell.Col {
				continue
			}
			if gr.shareContainer(a.loc, b.loc) {
				b.in = append(b.in, i)
			}
		}
	}
	return gr
}

func (gr *refGraph) shareContainer(l1, l2 gazetteer.LocID) bool {
	p1, p2 := gr.g.Parent(l1), gr.g.Parent(l2)
	return (p1 != gazetteer.NoLocation && p1 == p2) || p1 == l2 || p2 == l1
}

func (gr *refGraph) edgeCount() int {
	n := 0
	for i := range gr.nodes {
		n += len(gr.nodes[i].in)
	}
	return n
}

// refResolveScores is the seed ResolveScores: iterative vote propagation
// with per-cell normalisation, smallest-LocID tie-break.
func refResolveScores(interps []Interpretation, g gazetteer.Geo) (map[CellRef]gazetteer.LocID, map[CellRef]map[gazetteer.LocID]float64) {
	gr := refBuildGraph(interps, g)
	n := len(gr.nodes)
	scores := make([]float64, n)

	cellNodes := map[CellRef][]int{}
	for i, nd := range gr.nodes {
		cellNodes[nd.cell] = append(cellNodes[nd.cell], i)
	}
	for _, idxs := range cellNodes {
		init := 1.0 / float64(len(idxs))
		for _, i := range idxs {
			scores[i] = init
		}
	}

	const (
		maxIter = 100
		eps     = 1e-9
	)
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		for i := range gr.nodes {
			var sum float64
			for _, v := range gr.nodes[i].in {
				sum += scores[v]
			}
			next[i] = sum
		}
		for _, idxs := range cellNodes {
			var total float64
			for _, i := range idxs {
				total += next[i]
			}
			if total == 0 {
				u := 1.0 / float64(len(idxs))
				for _, i := range idxs {
					next[i] = u
				}
				continue
			}
			for _, i := range idxs {
				next[i] /= total
			}
		}
		var delta float64
		for i := range scores {
			delta = math.Max(delta, math.Abs(next[i]-scores[i]))
		}
		copy(scores, next)
		if delta < eps {
			break
		}
	}

	choice := make(map[CellRef]gazetteer.LocID, len(cellNodes))
	detail := make(map[CellRef]map[gazetteer.LocID]float64, len(cellNodes))
	for cell, idxs := range cellNodes {
		sort.Ints(idxs)
		best, bestScore := gazetteer.NoLocation, math.Inf(-1)
		m := make(map[gazetteer.LocID]float64, len(idxs))
		for _, i := range idxs {
			nd := gr.nodes[i]
			m[nd.loc] = scores[i]
			if scores[i] > bestScore || (scores[i] == bestScore && nd.loc < best) {
				best, bestScore = nd.loc, scores[i]
			}
		}
		choice[cell] = best
		detail[cell] = m
	}
	return choice, detail
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

// checkEquivalence resolves the interps through both implementations and
// fails on any divergence: edge/node counts, choices, and bitwise scores.
// Inputs must be canonical (no duplicate candidates within a cell); empty
// candidate sets are allowed — the production NoLocation entries are peeled
// off before comparing against the reference's omissions.
func checkEquivalence(t *testing.T, interps []Interpretation, g gazetteer.Geo) {
	t.Helper()
	ref := refBuildGraph(interps, g)
	gr := BuildGraph(interps, g)
	if ref.edgeCount() != gr.EdgeCount() {
		t.Fatalf("edge count: reference %d, sparse %d", ref.edgeCount(), gr.EdgeCount())
	}
	if len(ref.nodes) != gr.NodeCount() {
		t.Fatalf("node count: reference %d, sparse %d", len(ref.nodes), gr.NodeCount())
	}

	refChoice, refDetail := refResolveScores(interps, g)
	choice, detail := ResolveScores(interps, g)
	for cell, loc := range choice {
		if loc == gazetteer.NoLocation {
			if _, ok := refChoice[cell]; ok {
				t.Fatalf("cell %v: NoLocation for a cell the reference resolves", cell)
			}
			continue
		}
		if refChoice[cell] != loc {
			t.Fatalf("cell %v: reference chose %v, sparse chose %v", cell, refChoice[cell], loc)
		}
	}
	for cell := range refChoice {
		if _, ok := choice[cell]; !ok {
			t.Fatalf("cell %v resolved by the reference but missing from the sparse result", cell)
		}
	}
	for cell, m := range refDetail {
		got := detail[cell]
		if len(got) != len(m) {
			t.Fatalf("cell %v: score map sizes differ (%d vs %d)", cell, len(got), len(m))
		}
		for loc, s := range m {
			// Bitwise equality: the sparse propagation must perform the
			// same float64 additions in the same order.
			if got[loc] != s {
				t.Fatalf("cell %v loc %v: reference score %v, sparse score %v", cell, loc, got[loc], s)
			}
		}
	}
}

func TestSparseMatchesReferenceFigure7(t *testing.T) {
	g, interps, _ := figure7(t)
	checkEquivalence(t, interps, g)
}

// randomInterps derives a canonical random interpretation grid: cells in a
// rows×cols window, candidates drawn (without duplicates) from the
// gazetteer's id space, occasionally empty. Drawing from LookupAny of real
// names keeps the candidate sets realistically coherent; raw random ids keep
// the graph shapes adversarial. Both appear.
func randomInterps(g gazetteer.Geo, rng *rand.Rand, rows, cols, maxCands int, names []string) []Interpretation {
	var interps []Interpretation
	for r := 1; r <= rows; r++ {
		for c := 1; c <= cols; c++ {
			if rng.Intn(10) == 0 {
				continue // hole in the table
			}
			var cands []gazetteer.LocID
			switch rng.Intn(4) {
			case 0: // raw random ids
				seen := map[gazetteer.LocID]bool{}
				for k, n := 0, rng.Intn(maxCands+1); k < n; k++ {
					id := gazetteer.LocID(1 + rng.Intn(g.Len()))
					if !seen[id] {
						seen[id] = true
						cands = append(cands, id)
					}
				}
			case 1: // empty candidate set (geocoder miss)
			default: // a real ambiguous name's candidates
				cands = g.LookupAny(names[rng.Intn(len(names))])
				if len(cands) > maxCands {
					cands = cands[:maxCands]
				}
			}
			interps = append(interps, Interpretation{Cell: CellRef{Row: r, Col: c}, Candidates: cands})
		}
	}
	return interps
}

// gazNames collects the distinct names of a synthetic gazetteer.
func gazNames(g gazetteer.Geo) []string {
	seen := map[string]bool{}
	var names []string
	for i := 1; i <= g.Len(); i++ {
		name := g.Name(gazetteer.LocID(i))
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return names
}

// TestSparseMatchesReferenceRandom drives both implementations over
// randomized tables of varying shape, against both the mutable and the
// frozen gazetteer at two scales.
func TestSparseMatchesReferenceRandom(t *testing.T) {
	for _, scale := range []int{1, 3} {
		b := gazetteer.SyntheticScale(17, scale)
		names := gazNames(b)
		for _, g := range []gazetteer.Geo{b, b.Freeze()} {
			rng := rand.New(rand.NewSource(int64(scale) * 101))
			for trial := 0; trial < 25; trial++ {
				rows, cols := 1+rng.Intn(10), 1+rng.Intn(5)
				interps := randomInterps(g, rng, rows, cols, 6, names)
				checkEquivalence(t, interps, g)
			}
		}
	}
}

// FuzzResolveEquivalence feeds byte-stream-derived interpretation grids to
// both implementations. The byte stream picks cell positions and candidate
// ids inside the fixed gazetteer's id space; duplicates within a cell are
// dropped during derivation so the input is canonical for both sides.
func FuzzResolveEquivalence(f *testing.F) {
	f.Add([]byte{1, 1, 2, 10, 20, 30, 255, 2, 2, 1, 10, 11})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{5, 1, 3, 100, 101, 102, 255, 5, 2, 3, 100, 110, 120, 255, 6, 1, 1, 100})
	g := gazetteer.Synthetic(23)
	frozen := g.Freeze()
	f.Fuzz(func(t *testing.T, data []byte) {
		var interps []Interpretation
		seen := map[CellRef]map[gazetteer.LocID]bool{}
		i := 0
		for i+3 <= len(data) && len(interps) < 40 {
			cell := CellRef{Row: 1 + int(data[i])%12, Col: 1 + int(data[i+1])%6}
			n := int(data[i+2]) % 8
			i += 3
			if seen[cell] == nil {
				seen[cell] = map[gazetteer.LocID]bool{}
			}
			var cands []gazetteer.LocID
			for k := 0; k < n && i < len(data); k++ {
				id := gazetteer.LocID(1 + (int(data[i])*7+k*31)%g.Len())
				i++
				if !seen[cell][id] {
					seen[cell][id] = true
					cands = append(cands, id)
				}
			}
			interps = append(interps, Interpretation{Cell: cell, Candidates: cands})
			if i < len(data) && data[i] == 255 {
				i++
			}
		}
		checkEquivalence(t, interps, g)
		checkEquivalence(t, interps, frozen)
	})
}

// ---------------------------------------------------------------------------
// Benchmarks: the sparse rewrite vs the all-pairs reference
// ---------------------------------------------------------------------------

func benchWorkload() ([]Interpretation, gazetteer.Geo) {
	g := gazetteer.SyntheticScale(42, 4)
	f := g.Freeze()
	rng := rand.New(rand.NewSource(9))
	return randomInterps(f, rng, 30, 4, 8, gazNames(f)), f
}

func BenchmarkBuildGraphSparse(b *testing.B) {
	interps, g := benchWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraph(interps, g)
	}
}

func BenchmarkBuildGraphReference(b *testing.B) {
	interps, g := benchWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refBuildGraph(interps, g)
	}
}

func BenchmarkResolve(b *testing.B) {
	interps, g := benchWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Resolve(interps, g)
	}
}
