package disambig

// Component-parallel, memory-bounded resolution.
//
// The voting graph of a real table decomposes into connected components:
// rows and columns rarely couple the whole table, so the graph splits into
// independent islands (per-cell normalisation couples every node of a cell,
// so a cell's nodes always land in one island together). This file labels
// the components with a union-find pass over the SAME join-group records
// BuildGraph sorts — without materialising a single edge — then builds,
// propagates and decides each component independently: a bounded worker
// pool streams components through pooled per-component scratch, so peak
// memory is O(largest component × workers) instead of O(whole graph).
//
// Results are bit-identical to the whole-table loop (same choices, same
// float64 scores). Two properties make that work:
//
//  1. Within a component, local node ids follow ascending global order, so
//     every CSR in-list keeps the reference summation order and each
//     iteration's arithmetic is bitwise identical to the global loop's.
//
//  2. The global loop stops after the FIRST iteration whose global max
//     delta is sub-eps — a decision that couples otherwise-independent
//     components. The resolver therefore records, per component, which
//     iterations were sub-eps (phase 1 pauses a component at its first
//     sub-eps iteration, or freezes it at an exact bitwise fixed point,
//     where every later iteration provably reproduces the same bits), then
//     a coordinator derives the global stop iteration T from the records —
//     resuming components whose records end before a candidate T — and
//     finally advances every component's saved state to exactly T
//     iterations. max() over non-negative deltas is exact in float64, so
//     splitting the global max into per-component maxima changes nothing.
//
// Total iteration work matches the global loop's (components frozen at an
// exact fixed point stop early — strictly less); the only overhead is
// re-sorting a resumed component's records, roughly one extra build per
// resumed component in the common case.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gazetteer"
)

// Options tunes the component-parallel resolver.
type Options struct {
	// Workers bounds how many connected components are built and
	// propagated concurrently (and thereby how many per-component scratch
	// buffers exist at once); 0 selects min(GOMAXPROCS, 8). Results are
	// bit-identical at every setting — only wall-clock and peak scratch
	// memory change.
	Workers int
}

// Stats describes one resolution: the decomposition's shape and the pooled
// scratch high-water mark.
type Stats struct {
	// Nodes and Edges count the voting graph's (cell, candidate) nodes
	// and directed edges, summed over all components.
	Nodes, Edges int
	// Components is the number of connected components; LargestComponent
	// is the node count of the biggest one.
	Components       int
	LargestComponent int
	// PeakScratchBytes is the high-water mark of per-component scratch
	// (record buffers, edge staging, local CSR, score buffers) held
	// concurrently across the resolve's workers — the O(largest component
	// × workers) bound made observable.
	PeakScratchBytes int64
}

// unionFind is a union-by-minimum disjoint-set forest over node indexes:
// every root is the smallest node of its set, so components come out
// numbered in ascending first-node order for free.
type unionFind []int32

func newUnionFind(n int) unionFind {
	p := make(unionFind, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

func (p unionFind) find(x int32) int32 {
	for p[x] != x {
		p[x] = p[p[x]] // path halving
		x = p[x]
	}
	return x
}

func (p unionFind) union(a, b int32) {
	ra, rb := p.find(a), p.find(b)
	switch {
	case ra == rb:
	case ra < rb:
		p[rb] = ra
	default:
		p[ra] = rb
	}
}

// decomposition is the labeled node table: every node assigned to exactly
// one connected component, components ordered by their smallest node,
// member lists ascending.
type decomposition struct {
	ns    *nodeSet
	comps [][]int32
}

// decompose builds the node table and labels its connected components with
// a union-find pass over the join-group records — no edge is ever
// materialised. Per group the chain unions below reach exactly the nodes
// the quadratic edge sets would connect, GIVEN the per-cell unions: within
// a group, every cross-cell pair of container records is an edge (so
// chaining the container segment unions their cells), every cross-cell
// (location, container) pair is an edge in both directions (so bridging the
// two chained segments unions all their cells), and same-cell pairs — the
// only pairs the edge loops skip — are already unioned through their cell.
func decompose(interps []Interpretation, g gazetteer.Geo) *decomposition {
	ns := buildNodes(interps, g)
	n := len(ns.locs)
	uf := newUnionFind(n)
	// Per-cell normalisation couples every node of a cell, so a cell's
	// nodes must share a component even when no edge touches them.
	for _, idxs := range ns.cellNodes {
		for k := 1; k < len(idxs); k++ {
			uf.union(idxs[0], idxs[k])
		}
	}
	var b walkBufs
	for dim := 0; dim < 2; dim++ {
		ns.walkGroups(dim, nil, &b, func(locs, pars []int32, sharedPar bool) {
			if sharedPar {
				for k := 1; k < len(pars); k++ {
					uf.union(pars[0], pars[k])
				}
			}
			if len(locs) > 0 && len(pars) > 0 {
				for k := 1; k < len(locs); k++ {
					uf.union(locs[0], locs[k])
				}
				uf.union(locs[0], pars[0])
			}
		})
	}

	// Number components by smallest member and gather ascending member
	// lists into one flat allocation. A node's root is never larger than
	// the node itself (union-by-minimum), so roots are labeled before
	// their members.
	compOf := make([]int32, n)
	var counts []int32
	for i := 0; i < n; i++ {
		r := uf.find(int32(i))
		if int(r) == i {
			compOf[i] = int32(len(counts))
			counts = append(counts, 0)
		} else {
			compOf[i] = compOf[r]
		}
		counts[compOf[i]]++
	}
	comps := make([][]int32, len(counts))
	flat := make([]int32, n)
	off := int32(0)
	for c, cnt := range counts {
		comps[c] = flat[off : off : off+cnt]
		off += cnt
	}
	for i := 0; i < n; i++ {
		c := compOf[i]
		comps[c] = append(comps[c], int32(i))
	}
	return &decomposition{ns: ns, comps: comps}
}

// compScratch is one worker's reusable component workspace: join-group
// record buffers, edge staging, the local CSR and the score buffers. A
// worker holds exactly one, checked out of scratchPool for the phase and
// regrown to each component it processes, so a resolve's peak scratch is
// bounded by the largest component times the worker count — never by the
// table.
type compScratch struct {
	walk     walkBufs
	voters   []int32
	targets  []int32
	byV, byT []int32
	pos      []int32
	inOff    []int32
	in       []int32
	fill     []int32
	cells    []int32 // the component's cell indexes
	scores   []float64
	next     []float64
}

// bytes is the workspace's current footprint, by slice capacity.
func (sc *compScratch) bytes() int64 {
	i32 := cap(sc.walk.recNode) + cap(sc.walk.tmpNode) + cap(sc.voters) + cap(sc.targets) +
		cap(sc.byV) + cap(sc.byT) + cap(sc.pos) + cap(sc.inOff) + cap(sc.in) + cap(sc.fill) + cap(sc.cells)
	i64 := cap(sc.walk.recKey) + cap(sc.walk.tmpKey)
	f64 := cap(sc.scores) + cap(sc.next)
	return int64(i32)*4 + int64(i64)*8 + int64(f64)*8
}

var scratchPool = sync.Pool{New: func() any { return new(compScratch) }}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// compRun is one component's propagation bookkeeping, steered by the
// coordinator: how many iterations its saved state has absorbed, which of
// them were sub-eps, and whether it has reached an exact fixed point.
type compRun struct {
	conv      [(maxIter + 63) / 64]uint64 // bit t-1 set = iteration t's max delta < eps
	frontier  int                         // iterations applied to the saved state
	firstConv int                         // first sub-eps iteration; 0 = none yet
	fixedAt   int                         // first iteration whose delta was exactly 0; 0 = none
	edges     int                         // the component's directed edge count
}

// convAt reports whether iteration t's max delta is known to be sub-eps.
// Past an exact fixed point the scores are bitwise frozen, so every later
// iteration's delta is exactly 0.
func (r *compRun) convAt(t int) bool {
	if r.fixedAt > 0 && t >= r.fixedAt {
		return true
	}
	if t > r.frontier {
		return false
	}
	return r.conv[(t-1)>>6]&(1<<uint((t-1)&63)) != 0
}

// runComp (re)builds the component's local graph in sc and advances its
// propagation. With resume, the component's saved scores are loaded from
// global; otherwise the per-cell uniform prior restarts it from iteration
// zero. Iterations run from r.frontier+1 through until; with stopAtConv the
// run additionally pauses at the first sub-eps iteration (phase 1), and any
// run freezes at an exact fixed point. Delta bits are recorded into r and
// the final local scores are scattered back to global.
//
// Local node ids are assigned in ascending global-node order, so the local
// counting sorts produce in-lists in the reference summation order and each
// iteration is bitwise identical to the whole-table loop restricted to this
// component. localOf is the shared global-to-local index table; components
// are disjoint, so concurrent workers touch disjoint entries.
func (d *decomposition) runComp(comp []int32, r *compRun, sc *compScratch, localOf []int32, global []float64, resume, stopAtConv bool, until int) {
	ns := d.ns
	m := len(comp)
	for li, gi := range comp {
		localOf[gi] = int32(li)
	}
	// The component's cells, each discovered via its first node (a cell's
	// nodes all land in one component, so the first suffices and each cell
	// appears exactly once).
	sc.cells = sc.cells[:0]
	for _, gi := range comp {
		ci := ns.nodeCell[gi]
		if ns.cellNodes[ci][0] == gi {
			sc.cells = append(sc.cells, ci)
		}
	}

	// Local CSR: BuildGraph's edge discovery and canonicalisation,
	// restricted to the component's nodes.
	sc.voters = sc.voters[:0]
	sc.targets = sc.targets[:0]
	emit := func(v, t int32) {
		sc.voters = append(sc.voters, localOf[v])
		sc.targets = append(sc.targets, localOf[t])
	}
	for dim := 0; dim < 2; dim++ {
		ns.walkGroups(dim, comp, &sc.walk, func(locs, pars []int32, sharedPar bool) {
			if sharedPar {
				for _, i := range pars {
					for _, j := range pars {
						if ns.nodeCell[i] != ns.nodeCell[j] {
							emit(i, j)
						}
					}
				}
			}
			for _, a := range locs {
				for _, c := range pars {
					if ns.nodeCell[a] != ns.nodeCell[c] {
						emit(a, c)
						emit(c, a)
					}
				}
			}
		})
	}
	ne := len(sc.voters)
	r.edges = ne
	byV, byT := growI32(sc.byV, ne), growI32(sc.byT, ne)
	pos := growI32(sc.pos, m+1)
	clear(pos)
	for _, v := range sc.voters {
		pos[v+1]++
	}
	for i := 0; i < m; i++ {
		pos[i+1] += pos[i]
	}
	for k := 0; k < ne; k++ {
		v := sc.voters[k]
		byV[pos[v]] = v
		byT[pos[v]] = sc.targets[k]
		pos[v]++
	}
	inOff := growI32(sc.inOff, m+1)
	clear(inOff)
	for _, t := range byT {
		inOff[t+1]++
	}
	for i := 0; i < m; i++ {
		inOff[i+1] += inOff[i]
	}
	in := growI32(sc.in, ne)
	fill := growI32(sc.fill, m)
	copy(fill, inOff[:m])
	for k := 0; k < ne; k++ {
		t := byT[k]
		in[fill[t]] = byV[k]
		fill[t]++
	}
	sc.byV, sc.byT, sc.pos, sc.inOff, sc.in, sc.fill = byV, byT, pos, inOff, in, fill

	scores := growF64(sc.scores, m)
	next := growF64(sc.next, m)
	sc.scores, sc.next = scores, next
	if resume {
		for li, gi := range comp {
			scores[li] = global[gi]
		}
	} else {
		for _, ci := range sc.cells {
			idxs := ns.cellNodes[ci]
			init := 1.0 / float64(len(idxs))
			for _, gi := range idxs {
				scores[localOf[gi]] = init
			}
		}
	}

	// Large components keep the whole-table loop's intra-graph fan-out on
	// top of the component-level parallelism.
	workers := 1
	if m >= propagationParallelThreshold {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}
	for t := r.frontier + 1; t <= until; t++ {
		sumVotesCSR(inOff, in, scores, next, workers)
		for _, ci := range sc.cells {
			idxs := ns.cellNodes[ci]
			var total float64
			for _, gi := range idxs {
				total += next[localOf[gi]]
			}
			if total == 0 {
				u := 1.0 / float64(len(idxs))
				for _, gi := range idxs {
					next[localOf[gi]] = u
				}
				continue
			}
			for _, gi := range idxs {
				next[localOf[gi]] /= total
			}
		}
		var delta float64
		for i := 0; i < m; i++ {
			delta = math.Max(delta, math.Abs(next[i]-scores[i]))
		}
		copy(scores, next)
		r.frontier = t
		if delta < eps {
			r.conv[(t-1)>>6] |= 1 << uint((t-1)&63)
			if r.firstConv == 0 {
				r.firstConv = t
			}
			if delta == 0 && r.fixedAt == 0 {
				r.fixedAt = t
			}
			if stopAtConv || r.fixedAt > 0 {
				break
			}
		}
	}
	for li, gi := range comp {
		global[gi] = scores[li]
	}
}

// resolveComponents runs the full component-parallel resolution and returns
// the global score array. When done is non-nil it is invoked exactly once
// per component — possibly from concurrent workers — the moment that
// component's scores are final, enabling the streaming path to emit results
// before the whole table finishes its final phase.
func (d *decomposition) resolveComponents(opt Options, done func(ci int, global []float64)) ([]float64, Stats) {
	n := len(d.ns.locs)
	global := make([]float64, n)
	localOf := make([]int32, n)
	runs := make([]compRun, len(d.comps))
	workers := opt.Workers
	if workers <= 0 {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}
	workers = max(1, min(workers, len(d.comps)))
	var curBytes, peakBytes atomic.Int64
	raise := func(v int64) {
		for {
			p := peakBytes.Load()
			if v <= p || peakBytes.CompareAndSwap(p, v) {
				return
			}
		}
	}

	// runPhase streams the selected components through the bounded worker
	// pool. Each worker checks out one pooled scratch for the whole phase,
	// so at most `workers` components are materialised at any moment.
	runPhase := func(sel func(ci int) bool, resume, stopAtConv bool, until int, notify func(ci int)) {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := scratchPool.Get().(*compScratch)
				held := sc.bytes()
				raise(curBytes.Add(held))
				defer func() {
					curBytes.Add(-held)
					scratchPool.Put(sc)
				}()
				for ci := range jobs {
					d.runComp(d.comps[ci], &runs[ci], sc, localOf, global, resume, stopAtConv, until)
					if grew := sc.bytes() - held; grew > 0 {
						held += grew
						raise(curBytes.Add(grew))
					}
					if notify != nil {
						notify(ci)
					}
				}
			}()
		}
		for ci := range d.comps {
			if sel(ci) {
				jobs <- ci
			}
		}
		close(jobs)
		wg.Wait()
	}

	// Phase 1: every component propagates until its first sub-eps
	// iteration (or an exact fixed point, or maxIter), recording which
	// iterations were sub-eps.
	runPhase(func(int) bool { return true }, false, true, maxIter, nil)

	// Coordinator: the whole-table loop stops after the FIRST iteration
	// whose global max delta is sub-eps — equivalently, the first t at
	// which EVERY component's delta is sub-eps — or after maxIter.
	// Determine that T from the records, resuming components whose
	// records end before a candidate t. The initial candidate is the
	// slowest component's first sub-eps iteration: no earlier t can
	// qualify, because that component's deltas before it are all >= eps.
	target := 0
	for i := range runs {
		ft := runs[i].firstConv
		if ft == 0 {
			ft = maxIter
		}
		target = max(target, ft)
	}
	T := maxIter
	for {
		runPhase(func(ci int) bool { return runs[ci].fixedAt == 0 && runs[ci].frontier < target }, true, false, target, nil)
		found := -1
		for t := 1; t <= target && found < 0; t++ {
			ok := true
			for i := range runs {
				if !runs[i].convAt(t) {
					ok = false
					break
				}
			}
			if ok {
				found = t
			}
		}
		if found >= 0 {
			T = found
			break
		}
		if target >= maxIter {
			break // no sub-eps iteration exists; the loop exhausts maxIter
		}
		// Some component dipped back above eps at the candidate (deltas
		// need not shrink monotonically): extend the horizon and keep
		// looking.
		target = min(target+8, maxIter)
	}

	// Final phase: bring every component's saved state to exactly T
	// iterations. A component frozen at an exact fixed point by iteration
	// f is bitwise identical from f-1 onward, so it already holds the
	// T-state whenever T >= fixedAt-1. Lagging components resume; a
	// component whose record ran PAST T — possible only when the stop
	// search extended past a non-monotone delta dip — reruns from its
	// prior.
	finalDone := func(ci int) {
		if done != nil {
			done(ci, global)
		}
	}
	var rerun []int
	for ci := range runs {
		r := &runs[ci]
		if r.fixedAt > 0 {
			if T < r.fixedAt-1 {
				rerun = append(rerun, ci)
			}
		} else if r.frontier > T {
			rerun = append(rerun, ci)
		}
	}
	needsRerun := make(map[int]bool, len(rerun))
	for _, ci := range rerun {
		needsRerun[ci] = true
		runs[ci] = compRun{edges: runs[ci].edges}
	}
	if done != nil {
		// Components already holding their T-state are final now.
		for ci := range runs {
			r := &runs[ci]
			atT := r.frontier == T || (r.fixedAt > 0 && T >= r.fixedAt-1)
			if !needsRerun[ci] && atT {
				finalDone(ci)
			}
		}
	}
	runPhase(func(ci int) bool {
		return !needsRerun[ci] && runs[ci].fixedAt == 0 && runs[ci].frontier < T
	}, true, false, T, finalDone)
	if len(rerun) > 0 {
		runPhase(func(ci int) bool { return needsRerun[ci] }, false, false, T, finalDone)
	}

	st := Stats{Nodes: n, Components: len(d.comps), PeakScratchBytes: peakBytes.Load()}
	for i := range d.comps {
		st.LargestComponent = max(st.LargestComponent, len(d.comps[i]))
		st.Edges += runs[i].edges
	}
	return global, st
}

// degenerate reports whether no interpretation carries a usable candidate,
// in which case resolution needs no graph at all.
func degenerate(interps []Interpretation) bool {
	for _, it := range interps {
		for _, loc := range it.Candidates {
			if loc != gazetteer.NoLocation {
				return false
			}
		}
	}
	return true
}

// resolveDegenerate is the NoLocation-only fast path: every cell maps to an
// explicit NoLocation choice with an empty score map, with no graph build,
// scratch checkout or propagation — matching what the full machinery
// produces for candidate-free cells, at O(cells) cost.
func resolveDegenerate(interps []Interpretation) (map[CellRef]gazetteer.LocID, map[CellRef]map[gazetteer.LocID]float64, Stats) {
	choice := map[CellRef]gazetteer.LocID{}
	detail := map[CellRef]map[gazetteer.LocID]float64{}
	for _, it := range interps {
		if _, ok := choice[it.Cell]; ok {
			continue
		}
		choice[it.Cell] = gazetteer.NoLocation
		detail[it.Cell] = map[gazetteer.LocID]float64{}
	}
	return choice, detail, Stats{}
}

// ResolveScoresOpt is ResolveScores with explicit resolver options, also
// returning the decomposition statistics. Results are bit-identical to the
// whole-table engine (and to the seed reference) at every worker count.
func ResolveScoresOpt(interps []Interpretation, g gazetteer.Geo, opt Options) (map[CellRef]gazetteer.LocID, map[CellRef]map[gazetteer.LocID]float64, Stats) {
	if degenerate(interps) {
		return resolveDegenerate(interps)
	}
	d := decompose(interps, g)
	scores, st := d.resolveComponents(opt, nil)
	choice, detail := d.ns.choose(scores)
	return choice, detail, st
}

// ResolveStream resolves like ResolveScoresOpt but delivers per-cell
// results component by component, each the moment its component's scores
// reach the global stop iteration — so a huge table's early components
// surface while later ones are still propagating, and no whole-table choice
// or detail map is ever built. yield may be called from concurrent workers;
// calls for the cells of one component arrive consecutively from one
// worker. Cells the graph never saw a candidate for yield NoLocation with
// an empty score map, first. The per-cell scores map is freshly allocated
// and owned by the callee.
func ResolveStream(interps []Interpretation, g gazetteer.Geo, opt Options, yield func(cell CellRef, choice gazetteer.LocID, scores map[gazetteer.LocID]float64)) Stats {
	if degenerate(interps) {
		choice, detail, st := resolveDegenerate(interps)
		for cell := range choice {
			yield(cell, gazetteer.NoLocation, detail[cell])
		}
		return st
	}
	d := decompose(interps, g)
	for ci := range d.ns.cells {
		if len(d.ns.cellNodes[ci]) == 0 {
			yield(d.ns.cells[ci], gazetteer.NoLocation, map[gazetteer.LocID]float64{})
		}
	}
	_, st := d.resolveComponents(opt, func(ci int, global []float64) {
		for _, gi := range d.comps[ci] {
			cidx := d.ns.nodeCell[gi]
			if d.ns.cellNodes[cidx][0] != gi {
				continue // not the cell's first node; already yielded
			}
			best, m := d.ns.chooseCell(cidx, global)
			yield(d.ns.cells[cidx], best, m)
		}
	})
	return st
}
