// Package disambig implements the PageRank-style toponym disambiguation of
// §5.2.2: every ambiguous address cell contributes one node per candidate
// geocoder interpretation, candidates that share a geographic container and
// sit in the same row or column vote for each other, and iterative score
// propagation selects the interpretation with the largest score.
package disambig

import (
	"math"
	"sort"

	"repro/internal/gazetteer"
)

// CellRef identifies a table cell by 1-based row and column indexes, matching
// the paper's T(i,j) notation.
type CellRef struct {
	Row, Col int
}

// Interpretation is the geocoder output for one cell: the candidate locations
// the cell's address may denote.
type Interpretation struct {
	Cell       CellRef
	Candidates []gazetteer.LocID
}

// node is one (cell, candidate) pair in the voting graph.
type node struct {
	cell CellRef
	loc  gazetteer.LocID
	in   []int // indexes of nodes voting for this node
}

// Graph is the voting graph of Figure 7b.
type Graph struct {
	nodes []node
	g     *gazetteer.Gazetteer
}

// BuildGraph constructs the voting graph. A directed edge v -> w exists iff
// v and w belong to cells in the same row or the same column (but not the
// same cell) and their locations share a geographic container in the paper's
// sense: equal direct containers, or one location being the direct container
// of the other (the street "Pennsylvania Ave, Washington" votes for the city
// "Washington, D.C." in the same row, and vice versa).
func BuildGraph(interps []Interpretation, g *gazetteer.Gazetteer) *Graph {
	gr := &Graph{g: g}
	for _, it := range interps {
		for _, loc := range it.Candidates {
			gr.nodes = append(gr.nodes, node{cell: it.Cell, loc: loc})
		}
	}
	for i := range gr.nodes {
		for j := range gr.nodes {
			if i == j {
				continue
			}
			a, b := &gr.nodes[i], &gr.nodes[j]
			if a.cell == b.cell {
				continue
			}
			if a.cell.Row != b.cell.Row && a.cell.Col != b.cell.Col {
				continue
			}
			if gr.shareContainer(a.loc, b.loc) {
				b.in = append(b.in, i)
			}
		}
	}
	return gr
}

// shareContainer implements the paper's "same direct geographic container"
// relation, extended to the container relation itself so that a street and
// the city containing it are recognised as geographically coherent.
func (gr *Graph) shareContainer(l1, l2 gazetteer.LocID) bool {
	p1, p2 := gr.g.Parent(l1), gr.g.Parent(l2)
	return (p1 != gazetteer.NoLocation && p1 == p2) || p1 == l2 || p2 == l1
}

// EdgeCount returns the number of directed edges; exposed for tests.
func (gr *Graph) EdgeCount() int {
	n := 0
	for i := range gr.nodes {
		n += len(gr.nodes[i].in)
	}
	return n
}

// NodeCount returns the number of nodes.
func (gr *Graph) NodeCount() int { return len(gr.nodes) }

// Resolve runs the iterative vote propagation and picks, for every cell, the
// candidate whose node accumulated the largest score. Scores start at
// 1/|L_ij| (an unambiguous cell casts a full-weight vote). Each iteration
// recomputes S(n) = Σ_{v∈IN(n)} S(v); scores are then re-normalised within
// every cell's candidate set so the iteration reaches a fixed point — the raw
// update of the paper grows without bound on cyclic graphs, and per-cell
// normalisation preserves the ranking while guaranteeing convergence (see
// DESIGN.md). Cells whose candidates receive no votes keep their uniform
// prior. Ties select the smallest LocID for determinism (the paper chooses
// randomly).
func Resolve(interps []Interpretation, g *gazetteer.Gazetteer) map[CellRef]gazetteer.LocID {
	choice, _ := ResolveScores(interps, g)
	return choice
}

// ResolveScores is Resolve but also returns the final per-node scores keyed
// by cell and location, for diagnostics and tests.
func ResolveScores(interps []Interpretation, g *gazetteer.Gazetteer) (map[CellRef]gazetteer.LocID, map[CellRef]map[gazetteer.LocID]float64) {
	gr := BuildGraph(interps, g)
	n := len(gr.nodes)
	scores := make([]float64, n)

	// Group node indexes per cell for the normalisation step.
	cellNodes := map[CellRef][]int{}
	for i, nd := range gr.nodes {
		cellNodes[nd.cell] = append(cellNodes[nd.cell], i)
	}
	for _, idxs := range cellNodes {
		init := 1.0 / float64(len(idxs))
		for _, i := range idxs {
			scores[i] = init
		}
	}

	const (
		maxIter = 100
		eps     = 1e-9
	)
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		for i := range gr.nodes {
			var sum float64
			for _, v := range gr.nodes[i].in {
				sum += scores[v]
			}
			next[i] = sum
		}
		// Per-cell normalisation; a cell whose candidates all scored 0
		// reverts to its uniform prior.
		for _, idxs := range cellNodes {
			var total float64
			for _, i := range idxs {
				total += next[i]
			}
			if total == 0 {
				u := 1.0 / float64(len(idxs))
				for _, i := range idxs {
					next[i] = u
				}
				continue
			}
			for _, i := range idxs {
				next[i] /= total
			}
		}
		var delta float64
		for i := range scores {
			delta = math.Max(delta, math.Abs(next[i]-scores[i]))
		}
		copy(scores, next)
		if delta < eps {
			break
		}
	}

	choice := make(map[CellRef]gazetteer.LocID, len(cellNodes))
	detail := make(map[CellRef]map[gazetteer.LocID]float64, len(cellNodes))
	for cell, idxs := range cellNodes {
		sort.Ints(idxs)
		best, bestScore := gazetteer.NoLocation, math.Inf(-1)
		m := make(map[gazetteer.LocID]float64, len(idxs))
		for _, i := range idxs {
			nd := gr.nodes[i]
			m[nd.loc] = scores[i]
			if scores[i] > bestScore || (scores[i] == bestScore && nd.loc < best) {
				best, bestScore = nd.loc, scores[i]
			}
		}
		choice[cell] = best
		detail[cell] = m
	}
	return choice, detail
}
