// Package disambig implements the PageRank-style toponym disambiguation of
// §5.2.2: every ambiguous address cell contributes one node per candidate
// geocoder interpretation, candidates that share a geographic container and
// sit in the same row or column vote for each other, and iterative score
// propagation selects the interpretation with the largest score.
//
// The voting graph is built sparsely: instead of testing every ordered node
// pair (the O(n²) construction the paper implies, kept as an executable
// specification in reference_test.go), nodes are bucketed by row and by
// column and, within each bucket, indexed by their location and by their
// direct container. The three ways two locations can cohere — equal direct
// containers, or one being the direct container of the other — are then
// answered by hash lookups, so construction costs O(nodes + edges) instead
// of O(nodes²). Adjacency is stored as CSR arrays and score propagation
// parallelises over nodes for large tables. Results are bit-identical to the
// reference: the same choices and the same float64 scores (differential and
// fuzz enforced).
package disambig

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/gazetteer"
)

// CellRef identifies a table cell by 1-based row and column indexes, matching
// the paper's T(i,j) notation.
type CellRef struct {
	Row, Col int
}

// Interpretation is the geocoder output for one cell: the candidate locations
// the cell's address may denote. A repeated candidate adds no information, so
// duplicates are dropped during graph construction (they would otherwise
// split the cell's uniform prior and vote twice); the invalid NoLocation id
// is ignored. An empty candidate set marks the cell as geocoder-unresolvable
// and resolves to an explicit NoLocation entry.
type Interpretation struct {
	Cell       CellRef
	Candidates []gazetteer.LocID
}

// Graph is the voting graph of Figure 7b in columnar form: one entry per
// (cell, candidate) node, cells deduplicated in first-appearance order, and
// the in-edge lists concatenated CSR-style with every list sorted by voter
// index — the exact summation order of the reference implementation, which
// keeps the propagated float64 scores bit-identical.
type Graph struct {
	g  gazetteer.Geo
	ns *nodeSet // the node table the fields below alias

	cells     []CellRef // deduplicated cells, first-appearance order
	cellNodes [][]int32 // node indexes per cell, ascending
	nodeCell  []int32   // node -> index into cells
	locs      []gazetteer.LocID
	parents   []gazetteer.LocID // locs' direct containers, precomputed

	inOff []int32 // CSR: node i's voters are in[inOff[i]:inOff[i+1]]
	in    []int32
}

// radixSortByKey stable-sorts the parallel (keys, nodes) record arrays by
// key, least-significant byte first, using as many 8-bit passes as max
// needs. All buffers are caller-allocated, so sorting allocates nothing.
func radixSortByKey(keys []int64, nodes []int32, tmpK []int64, tmpN []int32, max int64) {
	var cnt [256]int32
	for shift := uint(0); max>>shift > 0; shift += 8 {
		for i := range cnt {
			cnt[i] = 0
		}
		for _, k := range keys {
			cnt[(k>>shift)&0xff]++
		}
		s := int32(0)
		for b := 0; b < 256; b++ {
			c := cnt[b]
			cnt[b] = s
			s += c
		}
		for i, k := range keys {
			b := (k >> shift) & 0xff
			tmpK[cnt[b]] = k
			tmpN[cnt[b]] = nodes[i]
			cnt[b]++
		}
		copy(keys, tmpK)
		copy(nodes, tmpN)
	}
}

// nodeSet is the deduplicated node table of one resolution — every array
// BuildGraph and the component decomposition share before any edge exists:
// the (cell, candidate) nodes in input order, their precomputed direct
// containers, and the dense row/column bucket ids the join-group walks key
// on.
type nodeSet struct {
	g gazetteer.Geo

	cells     []CellRef // deduplicated cells, first-appearance order
	cellNodes [][]int32 // node indexes per cell, ascending
	nodeCell  []int32   // node -> index into cells
	locs      []gazetteer.LocID
	parents   []gazetteer.LocID // locs' direct containers, precomputed

	cellRowB, cellColB []int32 // cell -> dense row / column bucket id
	numRowB, numColB   int
	maxKey             int64 // gazetteer size + 1; location ids key below it
}

// buildNodes constructs the node table: one node per distinct (cell,
// candidate) pair in input order, duplicates and NoLocation candidates
// dropped, plus the per-cell bucket ids. A node pair shares at most one
// bucket (same row and same column would mean the same cell).
func buildNodes(interps []Interpretation, g gazetteer.Geo) *nodeSet {
	ns := &nodeSet{g: g, maxKey: int64(g.Len()) + 1}
	capHint := 0
	for _, it := range interps {
		capHint += len(it.Candidates)
	}
	ns.locs = make([]gazetteer.LocID, 0, capHint)
	ns.parents = make([]gazetteer.LocID, 0, capHint)
	ns.nodeCell = make([]int32, 0, capHint)
	cellIdx := map[CellRef]int32{}
	dup := map[gazetteer.LocID]bool{}
	for _, it := range interps {
		ci, ok := cellIdx[it.Cell]
		if !ok {
			ci = int32(len(ns.cells))
			cellIdx[it.Cell] = ci
			ns.cells = append(ns.cells, it.Cell)
			ns.cellNodes = append(ns.cellNodes, nil)
		}
		if len(it.Candidates) == 0 {
			continue
		}
		clear(dup)
		for _, ni := range ns.cellNodes[ci] {
			dup[ns.locs[ni]] = true
		}
		for _, loc := range it.Candidates {
			if loc == gazetteer.NoLocation || dup[loc] {
				continue
			}
			dup[loc] = true
			ni := int32(len(ns.locs))
			ns.locs = append(ns.locs, loc)
			ns.parents = append(ns.parents, g.Parent(loc))
			ns.nodeCell = append(ns.nodeCell, ci)
			ns.cellNodes[ci] = append(ns.cellNodes[ci], ni)
		}
	}

	rowIdx := map[int]int32{}
	colIdx := map[int]int32{}
	ns.cellRowB = make([]int32, len(ns.cells))
	ns.cellColB = make([]int32, len(ns.cells))
	for ci, cell := range ns.cells {
		ri, ok := rowIdx[cell.Row]
		if !ok {
			ri = int32(len(rowIdx))
			rowIdx[cell.Row] = ri
		}
		ns.cellRowB[ci] = ri
		cj, ok := colIdx[cell.Col]
		if !ok {
			cj = int32(len(colIdx))
			colIdx[cell.Col] = cj
		}
		ns.cellColB[ci] = cj
	}
	ns.numRowB, ns.numColB = len(rowIdx), len(colIdx)
	return ns
}

// walkBufs holds the reusable record arrays of one walkGroups call; sized to
// twice the visited node count.
type walkBufs struct {
	recKey, tmpKey   []int64
	recNode, tmpNode []int32
}

func (b *walkBufs) ensure(n int) {
	if cap(b.recKey) < n {
		b.recKey = make([]int64, n)
		b.tmpKey = make([]int64, n)
		b.recNode = make([]int32, n)
		b.tmpNode = make([]int32, n)
	}
}

// walkGroups visits the join groups of one dimension (0 = rows, 1 = columns)
// over the given global node indexes (nil visits every node): every node
// contributes two records keyed by (bucket, location id) — one for its own
// location, one for its direct container, the role in the key's low bit.
// Radix-sorting the flat record arrays groups the bucket's nodes around each
// location id with zero hash lookups; the sort puts each group's role-0
// (location) records before its role-1 (container) records, and visit
// receives the two segments. sharedPar reports whether the group's location
// id is a real location — NoLocation as a shared "container" does not count,
// so equal-container voting applies only when it is set.
func (ns *nodeSet) walkGroups(dim int, nodes []int32, b *walkBufs, visit func(locs, pars []int32, sharedPar bool)) {
	n := len(ns.locs)
	if nodes != nil {
		n = len(nodes)
	}
	if n == 0 {
		return
	}
	b.ensure(2 * n)
	recKey, recNode := b.recKey[:2*n], b.recNode[:2*n]
	bucketOf, numBuckets := ns.cellRowB, ns.numRowB
	if dim == 1 {
		bucketOf, numBuckets = ns.cellColB, ns.numColB
	}
	for k := 0; k < n; k++ {
		gi := int32(k)
		if nodes != nil {
			gi = nodes[k]
		}
		base := int64(bucketOf[ns.nodeCell[gi]]) * ns.maxKey
		recKey[2*k] = (base + int64(ns.locs[gi])) << 1 // role 0: own location
		recNode[2*k] = gi
		recKey[2*k+1] = (base+int64(ns.parents[gi]))<<1 | 1 // role 1: container
		recNode[2*k+1] = gi
	}
	radixSortByKey(recKey, recNode, b.tmpKey[:2*n], b.tmpNode[:2*n], (int64(numBuckets)*ns.maxKey)<<1)
	for lo := 0; lo < len(recKey); {
		gid := recKey[lo] >> 1
		hi := lo + 1
		for hi < len(recKey) && recKey[hi]>>1 == gid {
			hi++
		}
		split := lo
		for split < hi && recKey[split]&1 == 0 {
			split++
		}
		visit(recNode[lo:split], recNode[split:hi], gid%ns.maxKey != 0)
		lo = hi
	}
}

// BuildGraph constructs the voting graph. A directed edge v -> w exists iff
// v and w belong to cells in the same row or the same column (but not the
// same cell) and their locations share a geographic container in the paper's
// sense: equal direct containers, or one location being the direct container
// of the other (the street "Pennsylvania Ave, Washington" votes for the city
// "Washington, D.C." in the same row, and vice versa).
//
// The relation is symmetric and its three clauses are mutually exclusive
// (a location is never its own container and containment is acyclic), so
// every edge is discovered exactly once via the join-group walk. This is the
// whole-table construction; the component-parallel resolver (components.go)
// builds the same graph one connected component at a time instead.
func BuildGraph(interps []Interpretation, g gazetteer.Geo) *Graph {
	ns := buildNodes(interps, g)
	gr := &Graph{
		g:         g,
		ns:        ns,
		cells:     ns.cells,
		cellNodes: ns.cellNodes,
		nodeCell:  ns.nodeCell,
		locs:      ns.locs,
		parents:   ns.parents,
	}

	// Discover edges per dimension (rows, then columns) by join groups:
	// within one group, par×par pairs share their direct container and
	// loc×par pairs are container-of pairs, both voting in each direction.
	// The clauses are mutually exclusive and a pair shares at most one
	// bucket, so each directed edge is emitted exactly once.
	n := len(gr.locs)
	var voters, targets []int32
	emit := func(v, t int32) {
		voters = append(voters, v)
		targets = append(targets, t)
	}
	var b walkBufs
	for dim := 0; dim < 2; dim++ {
		ns.walkGroups(dim, nil, &b, func(locs, pars []int32, sharedPar bool) {
			if sharedPar {
				// Equal direct containers (the paper's base clause).
				for _, i := range pars {
					for _, j := range pars {
						if gr.nodeCell[i] != gr.nodeCell[j] {
							emit(i, j)
						}
					}
				}
			}
			// One location is the other's direct container: the street
			// votes for its containing city and vice versa.
			for _, a := range locs {
				for _, c := range pars {
					if gr.nodeCell[a] != gr.nodeCell[c] {
						emit(a, c)
						emit(c, a)
					}
				}
			}
		})
	}

	// Canonicalise into CSR with every in-list sorted by voter index — the
	// reference implementation's float summation order — via a two-pass
	// stable counting sort: by voter, then by target.
	ne := len(voters)
	byVoterV := make([]int32, ne)
	byVoterT := make([]int32, ne)
	pos := make([]int32, n+1)
	for _, v := range voters {
		pos[v+1]++
	}
	for i := 0; i < n; i++ {
		pos[i+1] += pos[i]
	}
	for m := 0; m < ne; m++ {
		v := voters[m]
		byVoterV[pos[v]] = v
		byVoterT[pos[v]] = targets[m]
		pos[v]++
	}
	gr.inOff = make([]int32, n+1)
	for _, t := range byVoterT {
		gr.inOff[t+1]++
	}
	for i := 0; i < n; i++ {
		gr.inOff[i+1] += gr.inOff[i]
	}
	gr.in = make([]int32, ne)
	fill := make([]int32, n)
	copy(fill, gr.inOff[:n])
	for m := 0; m < ne; m++ {
		t := byVoterT[m]
		gr.in[fill[t]] = byVoterV[m]
		fill[t]++
	}
	return gr
}

// EdgeCount returns the number of directed edges; exposed for tests and
// benchmarks.
func (gr *Graph) EdgeCount() int { return len(gr.in) }

// NodeCount returns the number of nodes.
func (gr *Graph) NodeCount() int { return len(gr.locs) }

// Resolve runs the iterative vote propagation and picks, for every cell, the
// candidate whose node accumulated the largest score. Scores start at
// 1/|L_ij| (an unambiguous cell casts a full-weight vote). Each iteration
// recomputes S(n) = Σ_{v∈IN(n)} S(v); scores are then re-normalised within
// every cell's candidate set so the iteration reaches a fixed point — the raw
// update of the paper grows without bound on cyclic graphs, and per-cell
// normalisation preserves the ranking while guaranteeing convergence (see
// DESIGN.md). Cells whose candidates receive no votes keep their uniform
// prior. Ties select the smallest LocID for determinism (the paper chooses
// randomly). A cell whose every interpretation had an empty (or all-invalid)
// candidate set maps to NoLocation — present in the result, explicitly
// unresolved, rather than silently missing.
func Resolve(interps []Interpretation, g gazetteer.Geo) map[CellRef]gazetteer.LocID {
	choice, _ := ResolveScores(interps, g)
	return choice
}

// ResolveScores is Resolve but also returns the final per-node scores keyed
// by cell and location, for diagnostics and tests. A NoLocation cell's score
// map is empty.
func ResolveScores(interps []Interpretation, g gazetteer.Geo) (map[CellRef]gazetteer.LocID, map[CellRef]map[gazetteer.LocID]float64) {
	choice, detail, _ := ResolveScoresOpt(interps, g, Options{})
	return choice, detail
}

// ResolveScoresSingle resolves over one whole-table graph — the retained
// pre-decomposition engine, bit-identical to ResolveScores by construction.
// It stays callable (not just a test artifact) so the differential suite and
// cmd/benchgeo can compare the component-parallel path against it at full
// speed on tables far beyond what the O(n²) seed reference can check.
func ResolveScoresSingle(interps []Interpretation, g gazetteer.Geo) (map[CellRef]gazetteer.LocID, map[CellRef]map[gazetteer.LocID]float64) {
	if degenerate(interps) {
		choice, detail, _ := resolveDegenerate(interps)
		return choice, detail
	}
	gr := BuildGraph(interps, g)
	return gr.ns.choose(gr.propagate())
}

// choose picks every cell's winner from the final per-node scores: the
// largest score, ties broken by the smallest LocID for determinism (the
// paper chooses randomly). A cell whose every interpretation had an empty
// (or all-invalid) candidate set maps to NoLocation with an empty score map
// — present in the result, explicitly unresolved, rather than silently
// missing.
func (ns *nodeSet) choose(scores []float64) (map[CellRef]gazetteer.LocID, map[CellRef]map[gazetteer.LocID]float64) {
	choice := make(map[CellRef]gazetteer.LocID, len(ns.cells))
	detail := make(map[CellRef]map[gazetteer.LocID]float64, len(ns.cells))
	for ci, cell := range ns.cells {
		best, m := ns.chooseCell(int32(ci), scores)
		choice[cell] = best // NoLocation when the cell has no candidates
		detail[cell] = m
	}
	return choice, detail
}

// chooseCell is choose for a single cell, shared with the streaming path.
func (ns *nodeSet) chooseCell(ci int32, scores []float64) (gazetteer.LocID, map[gazetteer.LocID]float64) {
	idxs := ns.cellNodes[ci]
	best, bestScore := gazetteer.NoLocation, math.Inf(-1)
	m := make(map[gazetteer.LocID]float64, len(idxs))
	for _, i := range idxs {
		loc := ns.locs[i]
		m[loc] = scores[i]
		if scores[i] > bestScore || (scores[i] == bestScore && loc < best) {
			best, bestScore = loc, scores[i]
		}
	}
	return best, m
}

// propagationParallelThreshold is the node count above which the per-
// iteration vote summation fans out over a worker pool. Each node's sum is
// independent, so the cut-over changes wall-clock only, never results.
const propagationParallelThreshold = 2048

// maxIter and eps are the fixed-point iteration's stopping rule: the loop
// ends after the first iteration whose largest per-node score change drops
// below eps, or after maxIter iterations. Shared by the whole-table loop
// below and the component-parallel resolver, which reproduces the SAME
// global stopping decision across independently-propagated components (see
// components.go).
const (
	maxIter = 100
	eps     = 1e-9
)

// propagate runs the fixed-point iteration and returns the final scores.
func (gr *Graph) propagate() []float64 {
	n := len(gr.locs)
	scores := make([]float64, n)
	for _, idxs := range gr.cellNodes {
		if len(idxs) == 0 {
			continue
		}
		init := 1.0 / float64(len(idxs))
		for _, i := range idxs {
			scores[i] = init
		}
	}

	workers := 1
	if n >= propagationParallelThreshold {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}

	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		gr.sumVotes(scores, next, workers)
		// Per-cell normalisation; a cell whose candidates all scored 0
		// reverts to its uniform prior.
		for _, idxs := range gr.cellNodes {
			if len(idxs) == 0 {
				continue
			}
			var total float64
			for _, i := range idxs {
				total += next[i]
			}
			if total == 0 {
				u := 1.0 / float64(len(idxs))
				for _, i := range idxs {
					next[i] = u
				}
				continue
			}
			for _, i := range idxs {
				next[i] /= total
			}
		}
		var delta float64
		for i := range scores {
			delta = math.Max(delta, math.Abs(next[i]-scores[i]))
		}
		copy(scores, next)
		if delta < eps {
			break
		}
	}
	return scores
}

// sumVotes computes next[i] = Σ scores[voters of i] for every node, fanning
// the node range out over workers when the graph is large. Every in-list is
// summed in ascending voter order regardless of the worker count, so the
// result is bitwise deterministic.
func (gr *Graph) sumVotes(scores, next []float64, workers int) {
	sumVotesCSR(gr.inOff, gr.in, scores, next, workers)
}

// sumVotesCSR is sumVotes over bare CSR arrays, shared with the
// component-parallel resolver's per-component propagation.
func sumVotesCSR(inOff, in []int32, scores, next []float64, workers int) {
	n := len(inOff) - 1
	sumRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for _, v := range in[inOff[i]:inOff[i+1]] {
				sum += scores[v]
			}
			next[i] = sum
		}
	}
	if workers <= 1 {
		sumRange(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sumRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
