// Package eval wires the complete reproduction together (universe → corpus →
// knowledge base → classifiers → datasets) and provides one runner per table
// and analysis of the paper's evaluation section: Table 1 (methods × types),
// Table 2 (classifier training), Table 3 (post-processing and disambiguation
// ablation), the Wiki Manual comparison of §6.3 and the efficiency analysis
// of §6.4.
package eval

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/annotate"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/gazetteer"
	"repro/internal/kb"
	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/webgen"
	"repro/internal/world"
)

// LabConfig scales the experiment. The zero value selects the full-size
// configuration used by cmd/experiments; tests use smaller settings.
type LabConfig struct {
	Seed int64
	// KBPerType is the number of knowledge-base entities per type
	// (default 240; the training corpus scales with it).
	KBPerType int
	// SnippetsPerEntity caps snippets per training entity (default 8,
	// paper uses up to 10).
	SnippetsPerEntity int
	// MaxTrainEntities caps the sampled P set per type (default 0 = all).
	MaxTrainEntities int
	// K is the top-k snippet count at annotation time (default 10).
	K int
	// SVMEpochs tunes the linear SVM (default 10).
	SVMEpochs int
	// AmbiguityRate overrides the universe's confuser-sense rate
	// (0 keeps the world default of 0.35). Used by the ambiguity sweep.
	AmbiguityRate float64
	// Parallelism bounds the annotation worker pools of every dataset
	// run (tables are annotated concurrently; <= 1 runs sequentially).
	// Every reported number is identical at any setting.
	Parallelism int
	// GeoWorkers bounds the worker pool resolving disambiguation
	// components in parallel inside the geo stage (0 = min(GOMAXPROCS,
	// 8)). Results are bit-identical at any setting.
	GeoWorkers int
	// ShareCache enables the cross-table query-verdict cache: repeated
	// cell values across tables and across analyses stop costing
	// search-engine round-trips. Off by default because it changes the
	// reported query counts (quality numbers are unaffected).
	ShareCache bool
	// CacheMaxEntries caps the shared cache's entry count (0 = unbounded)
	// and CacheTTL expires its entries (0 = never); both only matter with
	// ShareCache set. See qcache.Options for the eviction semantics.
	CacheMaxEntries int
	CacheTTL        time.Duration
	// SearchShards is the shard count of the search index: each query's
	// scoring fans out across the shards in parallel, with results
	// byte-identical to a monolithic index (every reported number is
	// unaffected). 0 selects one shard per available CPU, capped at 8;
	// 1 effectively disables sharding.
	SearchShards int

	// Adversarial world knobs, passed straight through to world.Config
	// and webgen.Config for the scenario matrix. All default to off and,
	// when off, leave the generated apparatus byte-identical.
	GazScale       int
	POIHomonymRate float64
	DiacriticRate  float64
	ConfuserBoost  int
}

func (c LabConfig) withDefaults() LabConfig {
	if c.KBPerType == 0 {
		c.KBPerType = 240
	}
	if c.SnippetsPerEntity == 0 {
		c.SnippetsPerEntity = 8
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.SVMEpochs == 0 {
		c.SVMEpochs = 10
	}
	if c.SearchShards == 0 {
		c.SearchShards = min(runtime.GOMAXPROCS(0), 8)
	}
	return c
}

// Lab holds every component of the reproduction, built once and shared by
// the experiment runners.
type Lab struct {
	Cfg    LabConfig
	World  *world.World
	KB     *kb.KB
	Engine *search.Engine

	// Geo is the immutable gazetteer frozen from the universe's mutable
	// one; the annotation pipeline and the serving layer work against it
	// (results are identical to the builder — differentially enforced in
	// internal/gazetteer).
	Geo *gazetteer.Frozen

	SVM   classify.Classifier
	Bayes classify.Classifier

	// TrainStats are the per-type |TR|/|TE| sizes (Table 2).
	TrainStats []kb.CorpusStats
	// TestPerType holds the per-type one-vs-rest F of both classifiers
	// on the held-out snippet test set (Table 2).
	TestPerType map[string]struct{ SVM, Bayes float64 }

	GFT  *dataset.Dataset
	Wiki *dataset.Dataset

	// Cache is the cross-table query-verdict cache shared by every
	// dataset run; non-nil iff Cfg.ShareCache is set.
	Cache *qcache.Cache

	// runMemo memoizes full-dataset annotation runs per annotator
	// configuration, so analyses that re-run the canonical pipeline
	// (Table 1, Table 3, hybrid, subsumption, …) share one result set.
	// Memoized results are deterministic and treated as read-only.
	// runMu guards only the map; each entry's once serialises its own
	// computation, so distinct configurations annotate concurrently.
	runMu   sync.Mutex
	runMemo map[string]*memoEntry
}

// memoEntry is one memoized dataset run with singleflight semantics.
type memoEntry struct {
	once sync.Once
	res  map[string]*annotate.Result
}

// NewServedLab assembles a Lab from prebuilt serving components — the form a
// snapshot bundle restores. The universe, knowledge base and evaluation
// datasets are absent (nil): a served lab annotates and geocodes, it does not
// re-run the paper's analyses or retrain anything.
func NewServedLab(cfg LabConfig, engine *search.Engine, geo *gazetteer.Frozen, svm, bayes classify.Classifier) *Lab {
	cfg = cfg.withDefaults()
	l := &Lab{
		Cfg:     cfg,
		Engine:  engine,
		Geo:     geo,
		SVM:     svm,
		Bayes:   bayes,
		runMemo: map[string]*memoEntry{},
	}
	if cfg.ShareCache {
		l.Cache = qcache.NewWithOptions(qcache.Options{
			MaxEntries: cfg.CacheMaxEntries,
			TTL:        cfg.CacheTTL,
		})
	}
	return l
}

// TypeStrings returns Γ as strings in evaluation order.
func TypeStrings() []string {
	out := make([]string, len(world.AllTypes))
	for i, t := range world.AllTypes {
		out[i] = string(t)
	}
	return out
}

// NewLab builds the full experimental apparatus deterministically from the
// configuration.
func NewLab(cfg LabConfig) *Lab {
	cfg = cfg.withDefaults()
	l := &Lab{Cfg: cfg, runMemo: map[string]*memoEntry{}}
	if cfg.ShareCache {
		l.Cache = qcache.NewWithOptions(qcache.Options{
			MaxEntries: cfg.CacheMaxEntries,
			TTL:        cfg.CacheTTL,
		})
	}

	l.World = world.Generate(world.Config{
		Seed:           cfg.Seed,
		KBPerType:      cfg.KBPerType,
		AmbiguityRate:  cfg.AmbiguityRate,
		GazScale:       cfg.GazScale,
		POIHomonymRate: cfg.POIHomonymRate,
		DiacriticRate:  cfg.DiacriticRate,
	})
	l.Geo = l.World.Gaz.Freeze()
	six := webgen.BuildShardedIndex(l.World, webgen.Config{
		Seed:          cfg.Seed + 1,
		ConfuserBoost: cfg.ConfuserBoost,
	}, cfg.SearchShards)
	l.Engine = search.NewShardedEngine(six)
	l.KB = kb.FromWorld(l.World, cfg.Seed+2)

	builder := &kb.TrainingBuilder{
		KB:                l.KB,
		Engine:            l.Engine,
		SnippetsPerEntity: cfg.SnippetsPerEntity,
		MaxEntities:       cfg.MaxTrainEntities,
		Seed:              cfg.Seed + 3,
	}
	train, test, stats := builder.Collect(world.AllTypes)
	l.TrainStats = stats

	l.SVM = classify.LinearSVMTrainer{Epochs: cfg.SVMEpochs, Seed: cfg.Seed + 4}.Train(train)
	l.Bayes = classify.BayesTrainer{}.Train(train)

	l.TestPerType = map[string]struct{ SVM, Bayes float64 }{}
	_, svmPer := classify.Evaluate(l.SVM, test)
	_, bayesPer := classify.Evaluate(l.Bayes, test)
	for _, t := range world.AllTypes {
		l.TestPerType[string(t)] = struct{ SVM, Bayes float64 }{
			SVM:   svmPer[string(t)].F1(),
			Bayes: bayesPer[string(t)].F1(),
		}
	}

	l.GFT = dataset.BuildGFT(l.World, cfg.Seed+5)
	l.Wiki = dataset.BuildWikiManual(l.World, cfg.Seed+6)

	// Reset accounting so experiment-time query counts are clean.
	l.Engine.ResetCounters()
	return l
}
