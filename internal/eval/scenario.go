package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/annotate"
	"repro/internal/dataset"
	"repro/internal/gazetteer"
	"repro/internal/ingest"
)

// WorldScenario is one adversarial-world axis point of the scenario matrix:
// a named bundle of generator knobs layered over a base LabConfig.
type WorldScenario struct {
	Name           string
	GazScale       int
	POIHomonymRate float64
	DiacriticRate  float64
	ConfuserBoost  int
	// MixedKinds makes the scenario dataset mix POI kinds within shared
	// tables (the Figure 2 trap, densified).
	MixedKinds bool
}

// DefaultWorldScenarios returns the matrix's world axis: the clean baseline
// plus one world per adversarial dimension.
func DefaultWorldScenarios() []WorldScenario {
	return []WorldScenario{
		{Name: "baseline"},
		{Name: "mixed-kinds", MixedKinds: true},
		{Name: "homonym-dense", GazScale: 3, POIHomonymRate: 0.5, ConfuserBoost: 4},
		{Name: "diacritic", DiacriticRate: 0.7},
	}
}

// ScenarioCell is one (world × ingestion) cell of the matrix.
type ScenarioCell struct {
	World  string
	Ingest ingest.Variant

	// Annotation micro-averaged quality over Γ (§6.2 definitions).
	MicroP, MicroR, MicroF float64
	Annotated, Gold        int

	// Geo disambiguation accuracy: chosen LocID vs the universe's gold
	// truth over every address cell with a known location. A cell the
	// pipeline failed to geocode counts as wrong.
	GeoAccuracy          float64
	GeoCorrect, GeoCells int

	// MatchesClean reports whether this cell's annotations are
	// byte-identical to the clean-csv cell of the same world — the
	// messy-ingestion invariant as a reported, golden-locked fact.
	MatchesClean bool
}

// ScenarioMatrix builds one lab per world scenario (base overridden by the
// scenario's knobs), feeds the scenario dataset through every requested
// ingestion variant, and scores each cell: annotation micro-F1 against the
// gold standard and geo disambiguation accuracy against the universe's
// LocID truth. The clean-csv variant is always computed (even when filtered
// out of the report) so every cell can be byte-compared against its clean
// twin.
func ScenarioMatrix(base LabConfig, worlds []WorldScenario, ingests []ingest.Variant) ([]ScenarioCell, error) {
	var out []ScenarioCell
	for _, ws := range worlds {
		cfg := base
		cfg.GazScale = ws.GazScale
		cfg.POIHomonymRate = ws.POIHomonymRate
		cfg.DiacriticRate = ws.DiacriticRate
		cfg.ConfuserBoost = ws.ConfuserBoost
		lab := NewLab(cfg)
		ds := dataset.BuildScenario(lab.World, cfg.Seed+7, dataset.ScenarioOptions{
			MixedKinds: ws.MixedKinds,
		})
		acfg := lab.config(lab.SVM, true, true)

		run := func(v ingest.Variant) (*dataset.Dataset, map[string]*annotate.Result, string, error) {
			ids, err := reingest(ds, v)
			if err != nil {
				return nil, nil, "", fmt.Errorf("world %s, variant %s: %w", ws.Name, v, err)
			}
			res := lab.runConfig(ids, acfg)
			return ids, res, renderResults(ids, res, acfg), nil
		}

		_, _, cleanRendered, err := run(ingest.CleanCSV)
		if err != nil {
			return nil, err
		}
		for _, v := range ingests {
			ids, res, rendered, err := run(v)
			if err != nil {
				return nil, err
			}
			cell := scoreCell(ids, res, acfg)
			cell.World = ws.Name
			cell.Ingest = v
			cell.MatchesClean = rendered == cleanRendered
			out = append(out, cell)
		}
	}
	return out, nil
}

// reingest pushes every table of the dataset through an ingestion variant
// (encode to the variant's bytes, decode through the tolerant reader and
// Normalize), carrying the gold standards over unchanged — normalization
// preserves cell coordinates for the clean tables the generator emits.
func reingest(ds *dataset.Dataset, v ingest.Variant) (*dataset.Dataset, error) {
	out := &dataset.Dataset{Gold: ds.Gold, GeoGold: ds.GeoGold}
	for _, t := range ds.Tables {
		data, err := ingest.Encode(t, v)
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", t.Name, err)
		}
		rt, err := ingest.Decode(data, v, t.Name)
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", t.Name, err)
		}
		out.Tables = append(out.Tables, rt)
	}
	return out, nil
}

// scoreCell computes a cell's annotation micro metrics and geo accuracy.
func scoreCell(ds *dataset.Dataset, results map[string]*annotate.Result, acfg annotate.Config) ScenarioCell {
	per := ScoreDataset(ds, results)
	micro := MicroAverage(per, TypeStrings())
	cell := ScenarioCell{
		MicroP:    micro.Precision(),
		MicroR:    micro.Recall(),
		MicroF:    micro.F1(),
		Annotated: micro.Annotated,
		Gold:      micro.Truth,
	}
	for _, t := range ds.Tables {
		gold := ds.GeoGold[t.Name]
		if len(gold) == 0 {
			continue
		}
		cell.GeoCells += len(gold)
		gas, err := acfg.GeoAnnotate(context.Background(), t)
		if err != nil {
			panic(err) // unreachable: background context never cancels
		}
		chosen := map[dataset.CellKey]gazetteer.LocID{}
		for _, ga := range gas {
			chosen[dataset.CellKey{Row: ga.Row, Col: ga.Col}] = ga.Loc
		}
		for key, want := range gold {
			if chosen[key] == want {
				cell.GeoCorrect++
			}
		}
	}
	if cell.GeoCells > 0 {
		cell.GeoAccuracy = float64(cell.GeoCorrect) / float64(cell.GeoCells)
	}
	return cell
}

// renderResults serializes a run's full annotation output (type annotations
// and geo annotations, in deterministic order) for the byte-comparison
// against the clean twin.
func renderResults(ds *dataset.Dataset, results map[string]*annotate.Result, acfg annotate.Config) string {
	var b strings.Builder
	names := make([]string, 0, len(ds.Tables))
	for _, t := range ds.Tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	tables := map[string]int{}
	for i, t := range ds.Tables {
		tables[t.Name] = i
	}
	for _, name := range names {
		t := ds.Tables[tables[name]]
		res := results[name]
		fmt.Fprintf(&b, "table %s\n", name)
		for _, a := range res.Annotations {
			fmt.Fprintf(&b, "  ann %d %d %s %.6f\n", a.Row, a.Col, a.Type, a.Score)
		}
		gas, err := acfg.GeoAnnotate(context.Background(), t)
		if err != nil {
			panic(err) // unreachable: background context never cancels
		}
		for _, ga := range gas {
			fmt.Fprintf(&b, "  geo %d %d %d %s %.6f\n", ga.Row, ga.Col, ga.Loc, ga.Kind, ga.Score)
		}
	}
	return b.String()
}
