package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/annotate"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/table"
	"repro/internal/world"
)

// config builds the paper's pipeline configuration over the lab's
// components, wired to the lab's parallelism and (when enabled) its
// cross-table verdict cache. Analyses that need a variant (different k,
// cluster threshold, no cache) adjust the returned value before running it —
// the immutable-config pattern of internal/annotate.
func (l *Lab) config(clf classify.Classifier, postprocess, disambiguate bool) annotate.Config {
	return annotate.Config{
		Searcher:     l.Engine,
		Classifier:   clf,
		Types:        TypeStrings(),
		K:            l.Cfg.K,
		Postprocess:  postprocess,
		Disambiguate: disambiguate,
		Gazetteer:    l.Geo,
		Parallelism:  l.Cfg.Parallelism,
		Cache:        l.Cache,
		CacheSalt:    l.clfName(clf),
		GeoWorkers:   l.Cfg.GeoWorkers,
	}
}

// annotator is the legacy-facade variant of config, kept for the comparators
// that take an *annotate.Annotator (the hybrid annotator's Discovery field).
func (l *Lab) annotator(clf classify.Classifier, postprocess, disambiguate bool) *annotate.Annotator {
	return &annotate.Annotator{
		Engine:       l.Engine,
		Classifier:   clf,
		Types:        TypeStrings(),
		K:            l.Cfg.K,
		Postprocess:  postprocess,
		Disambiguate: disambiguate,
		Gazetteer:    l.Geo,
		Parallelism:  l.Cfg.Parallelism,
		Cache:        l.Cache,
		CacheSalt:    l.clfName(clf),
	}
}

// clfName identifies a lab classifier for cache namespacing and memo keys.
func (l *Lab) clfName(clf classify.Classifier) string {
	if clf == l.Bayes {
		return "bayes"
	}
	return "svm"
}

// runDataset annotates every table of a dataset with fn and returns the
// results keyed by table name. Used for the function-shaped comparators
// (TIN, TIS, catalogue, hybrid); annotator runs go through runAnnotator so
// they pick up the configured parallelism.
func runDataset(ds *dataset.Dataset, fn func(t *table.Table) *annotate.Result) map[string]*annotate.Result {
	out := make(map[string]*annotate.Result, len(ds.Tables))
	for _, t := range ds.Tables {
		out[t.Name] = fn(t)
	}
	return out
}

// runConfig annotates every table of a dataset through the batch API at the
// lab's configured parallelism; results are keyed by table name and
// identical to a sequential run.
func (l *Lab) runConfig(ds *dataset.Dataset, cfg annotate.Config) map[string]*annotate.Result {
	results, err := cfg.AnnotateBatch(context.Background(), ds.Tables, l.Cfg.Parallelism)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	out := make(map[string]*annotate.Result, len(ds.Tables))
	for i, t := range ds.Tables {
		out[t.Name] = results[i]
	}
	return out
}

// memoRun is runAnnotator memoized per annotator configuration over the GFT
// dataset. The canonical pipeline (SVM + post-processing) is re-run by five
// different analyses; the first caller pays, the rest share the result set.
// Callers must treat the returned results as read-only.
func (l *Lab) memoRun(clf classify.Classifier, postprocess, disambiguate bool, k int, clusterThreshold float64) map[string]*annotate.Result {
	key := fmt.Sprintf("gft|%s|post=%v|dis=%v|k=%d|ct=%g",
		l.clfName(clf), postprocess, disambiguate, k, clusterThreshold)
	l.runMu.Lock()
	e, ok := l.runMemo[key]
	if !ok {
		e = &memoEntry{}
		l.runMemo[key] = e
	}
	l.runMu.Unlock()
	e.once.Do(func() {
		cfg := l.config(clf, postprocess, disambiguate)
		cfg.K = k
		cfg.ClusterThreshold = clusterThreshold
		e.res = l.runConfig(l.GFT, cfg)
	})
	return e.res
}

// sumQueries totals the search-engine queries a dataset run issued.
func sumQueries(results map[string]*annotate.Result) int {
	n := 0
	for _, r := range results {
		n += r.Queries
	}
	return n
}

// Table2Row is one row of Table 2: corpus sizes and held-out classifier F.
type Table2Row struct {
	Type   string
	Train  int
	Test   int
	BayesF float64
	SVMF   float64
}

// Table2 reports the training/test corpora and per-type classifier quality.
func (l *Lab) Table2() []Table2Row {
	rows := make([]Table2Row, 0, len(l.TrainStats))
	for _, s := range l.TrainStats {
		tf := l.TestPerType[string(s.Type)]
		rows = append(rows, Table2Row{
			Type:   string(s.Type),
			Train:  s.Train,
			Test:   s.Test,
			BayesF: tf.Bayes,
			SVMF:   tf.SVM,
		})
	}
	return rows
}

// Table1Row is one row of Table 1: P/R/F for the four methods on one type.
// Group average rows use Type "AVERAGE (<group>)".
type Table1Row struct {
	Type  string
	SVM   [3]float64 // P, R, F
	Bayes [3]float64
	TIN   [3]float64
	TIS   [3]float64
}

// Table1 runs the four methods of §6.2 (SVM and Bayes with post-processing,
// TIN, TIS) over the GFT dataset and reports per-type P/R/F plus the three
// group averages.
func (l *Lab) Table1() []Table1Row {
	types := TypeStrings()
	svmRes := l.memoRun(l.SVM, true, false, l.Cfg.K, 0)
	bayesRes := l.memoRun(l.Bayes, true, false, l.Cfg.K, 0)
	tinRes := runDataset(l.GFT, func(t *table.Table) *annotate.Result {
		return annotate.TIN(t, types, annotate.Preprocessor{})
	})
	tisRes := runDataset(l.GFT, l.config(l.SVM, false, false).TIS)

	svm := ScoreDataset(l.GFT, svmRes)
	bayes := ScoreDataset(l.GFT, bayesRes)
	tin := ScoreDataset(l.GFT, tinRes)
	tis := ScoreDataset(l.GFT, tisRes)

	prf := func(m classify.Metrics) [3]float64 {
		return [3]float64{m.Precision(), m.Recall(), m.F1()}
	}
	var rows []Table1Row
	appendGroup := func(group string, groupTypes []world.Type) {
		names := make([]string, len(groupTypes))
		for i, t := range groupTypes {
			names[i] = string(t)
			rows = append(rows, Table1Row{
				Type:  string(t),
				SVM:   prf(svm[string(t)]),
				Bayes: prf(bayes[string(t)]),
				TIN:   prf(tin[string(t)]),
				TIS:   prf(tis[string(t)]),
			})
		}
		var avg Table1Row
		avg.Type = "AVERAGE (" + group + ")"
		avg.SVM[0], avg.SVM[1], avg.SVM[2] = MacroAverage(svm, names)
		avg.Bayes[0], avg.Bayes[1], avg.Bayes[2] = MacroAverage(bayes, names)
		avg.TIN[0], avg.TIN[1], avg.TIN[2] = MacroAverage(tin, names)
		avg.TIS[0], avg.TIS[1], avg.TIS[2] = MacroAverage(tis, names)
		rows = append(rows, avg)
	}
	appendGroup("poi", world.POITypes)
	appendGroup("people", world.PeopleTypes)
	appendGroup("cinema", world.CinemaTypes)
	return rows
}

// Table3Row is one row of Table 3: the F-measure of the SVM pipeline without
// post-processing, with it, and with post-processing plus disambiguation.
// Disambig is negative (reported as "–") for types without spatial data.
type Table3Row struct {
	Type     string
	SVM      float64
	Post     float64
	Disambig float64 // -1 when not applicable
}

// Table3 runs the ablation of §6.2's final experiment.
func (l *Lab) Table3() []Table3Row {
	plain := ScoreDataset(l.GFT, l.memoRun(l.SVM, false, false, l.Cfg.K, 0))
	post := ScoreDataset(l.GFT, l.memoRun(l.SVM, true, false, l.Cfg.K, 0))
	dis := ScoreDataset(l.GFT, l.memoRun(l.SVM, true, true, l.Cfg.K, 0))

	var rows []Table3Row
	for _, t := range world.AllTypes {
		row := Table3Row{
			Type: string(t),
			SVM:  plain[string(t)].F1(),
			Post: post[string(t)].F1(),
		}
		if world.HasSpatial(t) {
			row.Disambig = dis[string(t)].F1()
		} else {
			row.Disambig = -1
		}
		rows = append(rows, row)
	}
	return rows
}

// ComparisonResult is the §6.3 comparison on the Wiki Manual dataset.
type ComparisonResult struct {
	// OurF is the micro F of the paper's algorithm (SVM + postproc).
	OurF float64
	// CatalogueF is the micro F of the Limaye-style catalogue annotator.
	CatalogueF float64
	// CatalogueKnownOnlyRecall is the catalogue's recall, bounded by KB
	// coverage — the discovery gap the paper argues about.
	CatalogueRecall float64
	// OurRecall is the algorithm's recall on the same tables.
	OurRecall float64
}

// WikiComparison reproduces §6.3: both systems annotate the Wiki Manual
// dataset; the paper reports F 0.84 for its algorithm vs 0.8382 for Limaye.
func (l *Lab) WikiComparison() ComparisonResult {
	types := TypeStrings()
	ours := ScoreDataset(l.Wiki, l.runConfig(l.Wiki, l.config(l.SVM, true, false)))
	cat := &annotate.CatalogueAnnotator{Catalogue: l.KB.Catalogue()}
	catRes := ScoreDataset(l.Wiki, runDataset(l.Wiki, func(t *table.Table) *annotate.Result {
		return cat.AnnotateTable(t, types)
	}))
	our := MicroAverage(ours, types)
	catalogue := MicroAverage(catRes, types)
	return ComparisonResult{
		OurF:            our.F1(),
		CatalogueF:      catalogue.F1(),
		OurRecall:       our.Recall(),
		CatalogueRecall: catalogue.Recall(),
	}
}

// EfficiencyRow reports the §6.4 analysis for one table size.
type EfficiencyRow struct {
	Rows          int
	Queries       int
	QueriesPerRow float64
	// EstSecondsPerRow is the wall-clock estimate per row at the given
	// engine latency (the paper's ~0.5 s/row regime).
	EstSecondsPerRow float64
	// ComputeSeconds is the actual local processing time (no latency).
	ComputeSeconds float64
}

// Efficiency annotates synthetic restaurant tables of the given sizes and
// reports query volume and the estimated per-row cost at the given simulated
// search latency.
func (l *Lab) Efficiency(sizes []int, latency time.Duration) []EfficiencyRow {
	ents := l.World.TableEntities(world.Restaurant)
	cfg := l.config(l.SVM, true, false)
	// The analysis exists to show the paper's full per-row cost regime,
	// so the cross-table cache must not collapse the workload (no-op in
	// the default cache-off configuration).
	cfg.Cache = nil
	var rows []EfficiencyRow
	for _, n := range sizes {
		tbl := table.New("eff",
			table.Column{Header: "Name", Type: table.Text},
			table.Column{Header: "Phone", Type: table.Text},
		)
		for i := 0; i < n; i++ {
			e := ents[i%len(ents)]
			// Suffix duplicated names so the query cache cannot
			// collapse the workload.
			name := e.Name
			if i >= len(ents) {
				name += " " + time.Duration(i).String()
			}
			if err := tbl.AppendRow(name, e.Phone); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		res, err := cfg.Annotate(context.Background(), tbl)
		if err != nil {
			// Unreachable: a background context never cancels.
			panic(err)
		}
		compute := time.Since(start)
		est := float64(res.Queries)*latency.Seconds() + compute.Seconds()
		rows = append(rows, EfficiencyRow{
			Rows:             n,
			Queries:          res.Queries,
			QueriesPerRow:    float64(res.Queries) / float64(n),
			EstSecondsPerRow: est / float64(n),
			ComputeSeconds:   compute.Seconds(),
		})
	}
	return rows
}
