package eval

import (
	"repro/internal/annotate"
	"repro/internal/classify"
	"repro/internal/dataset"
)

// ScoreDataset compares per-table annotation results against the gold
// standard and returns the P/R/F counters per type, using the definitions of
// §6.2: C_t are the correct annotations of type t, A_t all annotations of
// type t, T_t the gold entities of type t.
func ScoreDataset(ds *dataset.Dataset, results map[string]*annotate.Result) map[string]classify.Metrics {
	per := map[string]classify.Metrics{}
	for _, cells := range ds.Gold {
		for _, typ := range cells {
			m := per[typ]
			m.Truth++
			per[typ] = m
		}
	}
	for tableName, res := range results {
		gold := ds.Gold[tableName]
		for _, ann := range res.Annotations {
			m := per[ann.Type]
			m.Annotated++
			if gold != nil && gold[dataset.CellKey{Row: ann.Row, Col: ann.Col}] == ann.Type {
				m.Correct++
			}
			per[ann.Type] = m
		}
	}
	return per
}

// MicroAverage sums the counters over the given types — the dataset-level
// F-measure used for the Wiki Manual comparison.
func MicroAverage(per map[string]classify.Metrics, types []string) classify.Metrics {
	var total classify.Metrics
	for _, t := range types {
		total.Add(per[t])
	}
	return total
}

// MacroAverage arithmetically averages P, R and F over the given types — the
// AVERAGE rows of Table 1.
func MacroAverage(per map[string]classify.Metrics, types []string) (p, r, f float64) {
	if len(types) == 0 {
		return 0, 0, 0
	}
	for _, t := range types {
		m := per[t]
		p += m.Precision()
		r += m.Recall()
		f += m.F1()
	}
	n := float64(len(types))
	return p / n, r / n, f / n
}
