package eval

import (
	"sync"
	"testing"
	"time"

	"repro/internal/annotate"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/table"
	"repro/internal/world"
)

// labOnce builds one scaled-down lab shared by the integration tests; the
// build is the expensive part (corpus + training), the per-test runs are
// cheap.
var (
	labMu   sync.Mutex
	testLab *Lab
)

func getLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("lab integration tests skipped in -short mode")
	}
	labMu.Lock()
	defer labMu.Unlock()
	if testLab == nil {
		testLab = NewLab(LabConfig{
			Seed:              42,
			KBPerType:         45,
			SnippetsPerEntity: 5,
			MaxTrainEntities:  45,
		})
	}
	return testLab
}

func TestLabConstruction(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	if l.Engine.IndexSize() == 0 {
		t.Fatal("empty index")
	}
	if len(l.TrainStats) != len(world.AllTypes) {
		t.Errorf("train stats for %d types, want %d", len(l.TrainStats), len(world.AllTypes))
	}
	for _, s := range l.TrainStats {
		if s.Train == 0 || s.Test == 0 {
			t.Errorf("type %s has empty corpus (%d/%d)", s.Type, s.Train, s.Test)
		}
	}
	if len(l.GFT.Tables) < 30 {
		t.Errorf("GFT dataset too small: %d tables", len(l.GFT.Tables))
	}
	if len(l.Wiki.Tables) != 36 {
		t.Errorf("wiki dataset = %d tables, want 36", len(l.Wiki.Tables))
	}
}

// TestTable2Shape: both classifiers reach high F on held-out snippets, in the
// paper's 0.9+ band for most types.
func TestTable2Shape(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	for _, r := range l.Table2() {
		if r.SVMF < 0.7 {
			t.Errorf("SVM F for %s = %.2f, want >= 0.7", r.Type, r.SVMF)
		}
		if r.BayesF < 0.7 {
			t.Errorf("Bayes F for %s = %.2f, want >= 0.7", r.Type, r.BayesF)
		}
		// 75/25 split.
		frac := float64(r.Train) / float64(r.Train+r.Test)
		if frac < 0.70 || frac > 0.80 {
			t.Errorf("%s split = %.2f, want ~0.75", r.Type, frac)
		}
	}
}

// TestTable1Shape asserts the qualitative findings of §6.2: the full
// algorithm beats the baselines, POI types are easier than people, and the
// people baselines collapse.
func TestTable1Shape(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	rows := l.Table1()
	byType := map[string]Table1Row{}
	for _, r := range rows {
		byType[r.Type] = r
	}

	poi := byType["AVERAGE (poi)"]
	people := byType["AVERAGE (people)"]
	if poi.SVM[2] < 0.75 {
		t.Errorf("POI average SVM F = %.2f, want >= 0.75", poi.SVM[2])
	}
	if people.SVM[2] >= poi.SVM[2] {
		t.Errorf("people (%.2f) should be harder than POI (%.2f)", people.SVM[2], poi.SVM[2])
	}
	// The full algorithm beats both baselines on the POI average.
	if poi.SVM[2] <= poi.TIN[2] || poi.SVM[2] <= poi.TIS[2] {
		t.Errorf("SVM F %.2f must beat TIN %.2f and TIS %.2f", poi.SVM[2], poi.TIN[2], poi.TIS[2])
	}
	// TIN finds nothing for people (names don't contain type words).
	if people.TIN[2] > 0.05 {
		t.Errorf("people TIN F = %.2f, want ~0", people.TIN[2])
	}
	// Per-type rows exist for all 12 types plus 3 averages.
	if len(rows) != len(world.AllTypes)+3 {
		t.Errorf("Table1 rows = %d, want %d", len(rows), len(world.AllTypes)+3)
	}
}

// TestTable3Shape: post-processing must raise the average F substantially
// (the paper's headline ablation), and disambiguation must be reported only
// for spatial types.
func TestTable3Shape(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	rows := l.Table3()
	var plainSum, postSum float64
	for _, r := range rows {
		plainSum += r.SVM
		postSum += r.Post
		spatial := world.HasSpatial(world.Type(r.Type))
		if spatial && r.Disambig < 0 {
			t.Errorf("%s should report a disambiguation F", r.Type)
		}
		if !spatial && r.Disambig >= 0 {
			t.Errorf("%s should not report a disambiguation F", r.Type)
		}
	}
	n := float64(len(rows))
	if postSum/n < plainSum/n+0.05 {
		t.Errorf("post-processing gain too small: %.3f -> %.3f", plainSum/n, postSum/n)
	}
}

// TestWikiComparisonShape: the algorithm is comparable to the catalogue
// comparator on catalogue-friendly data (§6.3's claim).
func TestWikiComparisonShape(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	c := l.WikiComparison()
	if c.OurF < 0.6 {
		t.Errorf("our F on wiki = %.2f, want >= 0.6", c.OurF)
	}
	if c.CatalogueF < 0.6 {
		t.Errorf("catalogue F on wiki = %.2f, want >= 0.6", c.CatalogueF)
	}
	diff := c.OurF - c.CatalogueF
	if diff < -0.15 {
		t.Errorf("our algorithm (F=%.2f) should be comparable to the catalogue (F=%.2f)", c.OurF, c.CatalogueF)
	}
	// The catalogue's recall is bounded by its coverage.
	if c.CatalogueRecall > 0.95 {
		t.Errorf("catalogue recall %.2f should be bounded by KB coverage", c.CatalogueRecall)
	}
}

// TestCatalogueCoverageGapOnGFT: on the GFT dataset (22% coverage) the
// catalogue comparator's recall collapses while the discovery algorithm's
// does not — the paper's central argument (§1).
func TestCatalogueCoverageGapOnGFT(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	types := TypeStrings()
	cat := &annotate.CatalogueAnnotator{Catalogue: l.KB.Catalogue()}
	catPer := ScoreDataset(l.GFT, runDataset(l.GFT, func(tb *table.Table) *annotate.Result {
		return cat.AnnotateTable(tb, types)
	}))
	catMicro := MicroAverage(catPer, types)
	if catMicro.Recall() > 0.4 {
		t.Errorf("catalogue recall on GFT = %.2f, want < 0.4 (coverage gap)", catMicro.Recall())
	}
	ourPer := ScoreDataset(l.GFT, l.memoRun(l.SVM, true, false, l.Cfg.K, 0))
	ourMicro := MicroAverage(ourPer, types)
	if ourMicro.Recall() <= catMicro.Recall()+0.2 {
		t.Errorf("discovery recall %.2f should far exceed catalogue recall %.2f",
			ourMicro.Recall(), catMicro.Recall())
	}
}

func TestEfficiencyShape(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	rows := l.Efficiency([]int{10, 50}, 250*time.Millisecond)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Errorf("no queries issued for %d rows", r.Rows)
		}
		// Latency dominates compute (§6.4's observation).
		latencyPart := r.EstSecondsPerRow - r.ComputeSeconds/float64(r.Rows)
		if latencyPart < r.ComputeSeconds/float64(r.Rows) {
			t.Errorf("latency should dominate compute at %d rows", r.Rows)
		}
	}
}

func TestScoreDatasetCounters(t *testing.T) {
	ds := &dataset.Dataset{Gold: dataset.Gold{}}
	ds.Gold.Add("t1", 1, 1, world.Museum)
	ds.Gold.Add("t1", 2, 1, world.Museum)
	results := map[string]*annotate.Result{
		"t1": {Annotations: []annotate.Annotation{
			{Row: 1, Col: 1, Type: "museum", Score: 1},     // correct
			{Row: 2, Col: 1, Type: "restaurant", Score: 1}, // wrong type
			{Row: 3, Col: 1, Type: "museum", Score: 1},     // not in gold
		}},
	}
	per := ScoreDataset(ds, results)
	m := per["museum"]
	if m.Correct != 1 || m.Annotated != 2 || m.Truth != 2 {
		t.Errorf("museum counters = %+v", m)
	}
	r := per["restaurant"]
	if r.Correct != 0 || r.Annotated != 1 || r.Truth != 0 {
		t.Errorf("restaurant counters = %+v", r)
	}
}

func TestAverages(t *testing.T) {
	per := map[string]classify.Metrics{
		"a": {Correct: 8, Annotated: 10, Truth: 10},
		"b": {Correct: 2, Annotated: 10, Truth: 10},
	}
	micro := MicroAverage(per, []string{"a", "b"})
	if micro.Correct != 10 || micro.Annotated != 20 || micro.Truth != 20 {
		t.Errorf("micro = %+v", micro)
	}
	p, r, f := MacroAverage(per, []string{"a", "b"})
	if p != 0.5 || r != 0.5 {
		t.Errorf("macro P/R = %v/%v, want 0.5/0.5", p, r)
	}
	if f <= 0 || f > 1 {
		t.Errorf("macro F = %v", f)
	}
	if p, r, f = MacroAverage(per, nil); p != 0 || r != 0 || f != 0 {
		t.Error("empty macro average should be zero")
	}
}
