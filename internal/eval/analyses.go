package eval

import (
	"repro/internal/annotate"
	"repro/internal/table"
	"repro/internal/world"
)

// KSweepRow reports the quality/cost trade-off for one top-k setting.
type KSweepRow struct {
	K       int
	MicroF  float64
	Queries int
}

// KSweep varies k, the number of snippets fetched per query (the paper fixes
// k = 10), and reports the micro-averaged F over the GFT dataset. The sweep
// shows the majority rule degrading for tiny k (too few votes) and
// saturating once the dominant sense fills the window.
func (l *Lab) KSweep(ks []int) []KSweepRow {
	types := TypeStrings()
	var rows []KSweepRow
	for _, k := range ks {
		// The Queries column is the sweep's cost axis, so the shared
		// cache must not deflate it (another analysis may already have
		// warmed the canonical k). With the cache off — the default —
		// the memoized run is shared with the other analyses.
		var results map[string]*annotate.Result
		if l.Cache == nil {
			results = l.memoRun(l.SVM, true, false, k, 0)
		} else {
			cfg := l.config(l.SVM, true, false)
			cfg.K = k
			cfg.Cache = nil
			results = l.runConfig(l.GFT, cfg)
		}
		per := ScoreDataset(l.GFT, results)
		rows = append(rows, KSweepRow{
			K:       k,
			MicroF:  MicroAverage(per, types).F1(),
			Queries: sumQueries(results),
		})
	}
	return rows
}

// CoverageReport quantifies the §1 claim that only ~22% of the entities in
// the evaluation tables exist in the knowledge base, and what that coverage
// means for a catalogue-only annotator.
type CoverageReport struct {
	TableEntities int
	InKB          int
	Coverage      float64
	// CatalogueRecall is the catalogue annotator's micro recall on the
	// GFT dataset — structurally bounded by Coverage.
	CatalogueRecall float64
}

// Coverage computes the report over the GFT dataset's entity pools.
func (l *Lab) Coverage() CoverageReport {
	var rep CoverageReport
	for _, t := range world.AllTypes {
		for _, e := range l.World.TableEntities(t) {
			rep.TableEntities++
			if e.InKB {
				rep.InKB++
			}
		}
	}
	if rep.TableEntities > 0 {
		rep.Coverage = float64(rep.InKB) / float64(rep.TableEntities)
	}
	types := TypeStrings()
	cat := &annotate.CatalogueAnnotator{Catalogue: l.KB.Catalogue()}
	per := ScoreDataset(l.GFT, runDataset(l.GFT, func(t *table.Table) *annotate.Result {
		return cat.AnnotateTable(t, types)
	}))
	rep.CatalogueRecall = MicroAverage(per, types).Recall()
	return rep
}

// ClusterAblationRow compares the flat Eq. 1 majority rule with the
// cluster-separated decision (§5.2 future work) on one type group.
type ClusterAblationRow struct {
	Group    string
	FlatF    float64
	ClusterF float64
}

// ClusterAblation runs both decision rules over the GFT dataset and reports
// the macro F per type group. The clustered rule matters most for the
// ambiguous people names.
func (l *Lab) ClusterAblation(threshold float64) []ClusterAblationRow {
	flat := ScoreDataset(l.GFT, l.memoRun(l.SVM, true, false, l.Cfg.K, 0))
	clustered := ScoreDataset(l.GFT, l.memoRun(l.SVM, true, false, l.Cfg.K, threshold))

	groups := []struct {
		name  string
		types []world.Type
	}{
		{"poi", world.POITypes},
		{"people", world.PeopleTypes},
		{"cinema", world.CinemaTypes},
	}
	var rows []ClusterAblationRow
	for _, g := range groups {
		names := make([]string, len(g.types))
		for i, t := range g.types {
			names[i] = string(t)
		}
		_, _, fFlat := MacroAverage(flat, names)
		_, _, fClus := MacroAverage(clustered, names)
		rows = append(rows, ClusterAblationRow{Group: g.name, FlatF: fFlat, ClusterF: fClus})
	}
	return rows
}

// SubsumptionRow reports how a subtype's gold entities were annotated: with
// the correct fine-grained type, with its supertype (the confusion the paper
// probes in §6.2), with something else, or not at all.
type SubsumptionRow struct {
	Subtype      string
	Supertype    string
	Correct      int
	AsSupertype  int
	AsOther      int
	NotAnnotated int
}

// SubsumptionReport measures the two subsumption pairs over the GFT dataset
// with the full pipeline. The paper reports "no particular problems" with
// these pairs; the report quantifies that claim.
func (l *Lab) SubsumptionReport() []SubsumptionRow {
	results := l.memoRun(l.SVM, true, false, l.Cfg.K, 0)
	var rows []SubsumptionRow
	for _, sub := range world.AllTypes {
		super, ok := world.Supertype(sub)
		if !ok {
			continue
		}
		row := SubsumptionRow{Subtype: string(sub), Supertype: string(super)}
		for tableName, cells := range l.GFT.Gold {
			res := results[tableName]
			annotated := map[annotate.CellKey]annotate.Annotation{}
			if res != nil {
				for _, ann := range res.Annotations {
					annotated[annotate.CellKey{Row: ann.Row, Col: ann.Col}] = ann
				}
			}
			for key, goldType := range cells {
				if goldType != string(sub) {
					continue
				}
				ann, ok := annotated[annotate.CellKey{Row: key.Row, Col: key.Col}]
				switch {
				case !ok:
					row.NotAnnotated++
				case ann.Type == string(sub):
					row.Correct++
				case ann.Type == string(super):
					row.AsSupertype++
				default:
					row.AsOther++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// AmbiguitySweepRow reports annotation quality at one confuser-sense rate.
type AmbiguitySweepRow struct {
	Rate    float64
	PeopleF float64
	POIF    float64
}

// AmbiguitySweep rebuilds the universe at increasing ambiguity rates and
// measures the people and POI macro F of the full pipeline. It quantifies
// the paper's §6.2 observation that ambiguous names (people) degrade the
// algorithm while long POI names stay safe. Each point constructs a full
// lab, so the sweep is an explicit analysis, not part of the default run.
func AmbiguitySweep(rates []float64, base LabConfig) []AmbiguitySweepRow {
	peopleNames := make([]string, len(world.PeopleTypes))
	for i, t := range world.PeopleTypes {
		peopleNames[i] = string(t)
	}
	poiNames := make([]string, len(world.POITypes))
	for i, t := range world.POITypes {
		poiNames[i] = string(t)
	}
	var rows []AmbiguitySweepRow
	for _, rate := range rates {
		cfg := base
		cfg.AmbiguityRate = rate
		l := NewLab(cfg)
		per := ScoreDataset(l.GFT, l.runConfig(l.GFT, l.config(l.SVM, true, false)))
		_, _, peopleF := MacroAverage(per, peopleNames)
		_, _, poiF := MacroAverage(per, poiNames)
		rows = append(rows, AmbiguitySweepRow{Rate: rate, PeopleF: peopleF, POIF: poiF})
	}
	return rows
}

// HybridReport compares discovery-only annotation against the hybrid
// catalogue+discovery annotator the paper proposes in §6.4.
type HybridReport struct {
	DiscoveryF       float64
	DiscoveryQueries int
	HybridF          float64
	HybridQueries    int
	// QuerySavings is the fraction of search queries the catalogue
	// eliminated.
	QuerySavings float64
}

// HybridAnalysis runs both pipelines over the GFT dataset.
func (l *Lab) HybridAnalysis() HybridReport {
	types := TypeStrings()
	var rep HybridReport

	// The report's point is the queries the *catalogue* saves, so both
	// runs must pay full query cost: with the shared verdict cache the
	// discovery run would warm it and the hybrid run would answer every
	// query from the cache, crediting the catalogue with ~100% savings
	// regardless of its contribution. Bypass the cache for both sides
	// (a no-op in the default cache-off configuration, which keeps the
	// memoized result set shared with the other analyses).
	var discRes map[string]*annotate.Result
	if l.Cache == nil {
		discRes = l.memoRun(l.SVM, true, false, l.Cfg.K, 0)
	} else {
		cfg := l.config(l.SVM, true, false)
		cfg.Cache = nil
		discRes = l.runConfig(l.GFT, cfg)
	}
	discPer := ScoreDataset(l.GFT, discRes)
	rep.DiscoveryQueries = sumQueries(discRes)
	rep.DiscoveryF = MicroAverage(discPer, types).F1()

	hybDisc := l.annotator(l.SVM, true, false)
	hybDisc.Cache = nil
	h := &annotate.Hybrid{
		Catalogue: &annotate.CatalogueAnnotator{Catalogue: l.KB.Catalogue()},
		Discovery: hybDisc,
	}
	hybRes := runDataset(l.GFT, h.AnnotateTable)
	hybPer := ScoreDataset(l.GFT, hybRes)
	rep.HybridQueries = sumQueries(hybRes)
	rep.HybridF = MicroAverage(hybPer, types).F1()

	if rep.DiscoveryQueries > 0 {
		rep.QuerySavings = 1 - float64(rep.HybridQueries)/float64(rep.DiscoveryQueries)
	}
	return rep
}
