package eval

import (
	"testing"
	"time"
)

func TestKSweep(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	rows := l.KSweep([]int{1, 10})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// k=10 (the paper's setting) should beat k=1: a single snippet gives
	// the majority rule no redundancy against noisy results.
	if rows[1].MicroF < rows[0].MicroF-0.02 {
		t.Errorf("F(k=10)=%.3f should be >= F(k=1)=%.3f", rows[1].MicroF, rows[0].MicroF)
	}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Errorf("k=%d issued no queries", r.K)
		}
		if r.MicroF <= 0 || r.MicroF > 1 {
			t.Errorf("k=%d F=%v out of range", r.K, r.MicroF)
		}
	}
}

func TestCoverageMatchesPaperClaim(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	rep := l.Coverage()
	if rep.TableEntities == 0 {
		t.Fatal("no table entities counted")
	}
	// The universe is generated with 22% KB coverage (§1's observation).
	if rep.Coverage < 0.15 || rep.Coverage > 0.30 {
		t.Errorf("coverage = %.2f, want ~0.22", rep.Coverage)
	}
	// Catalogue recall cannot exceed coverage by much (it can fall below:
	// pre-processing and type restriction lose a few known entities).
	if rep.CatalogueRecall > rep.Coverage+0.05 {
		t.Errorf("catalogue recall %.2f exceeds KB coverage %.2f", rep.CatalogueRecall, rep.Coverage)
	}
}

func TestClusterAblation(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	rows := l.ClusterAblation(0.4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FlatF < 0 || r.FlatF > 1 || r.ClusterF < 0 || r.ClusterF > 1 {
			t.Errorf("group %s has out-of-range F: %+v", r.Group, r)
		}
	}
}

func TestHybridAnalysis(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	rep := l.HybridAnalysis()
	if rep.HybridQueries >= rep.DiscoveryQueries {
		t.Errorf("hybrid queries = %d, want < %d (catalogue must save queries)",
			rep.HybridQueries, rep.DiscoveryQueries)
	}
	if rep.QuerySavings <= 0 {
		t.Errorf("query savings = %.2f, want > 0", rep.QuerySavings)
	}
	// Quality must not collapse when the catalogue takes over known
	// cells.
	if rep.HybridF < rep.DiscoveryF-0.10 {
		t.Errorf("hybrid F %.2f fell too far below discovery F %.2f", rep.HybridF, rep.DiscoveryF)
	}
}

func TestSubsumptionReport(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	rows := l.SubsumptionReport()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (university/school, simpsons/film)", len(rows))
	}
	for _, r := range rows {
		total := r.Correct + r.AsSupertype + r.AsOther + r.NotAnnotated
		if total == 0 {
			t.Errorf("%s: no gold entities counted", r.Subtype)
		}
		// The paper reports no particular subsumption problems: the
		// correct fine-grained type must dominate the supertype
		// confusion.
		if r.Correct <= r.AsSupertype {
			t.Errorf("%s: correct %d <= as-supertype %d", r.Subtype, r.Correct, r.AsSupertype)
		}
	}
}

func TestAmbiguitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep builds one lab per point")
	}
	t.Parallel()
	rows := AmbiguitySweep([]float64{0.1, 0.8}, LabConfig{
		Seed: 7, KBPerType: 30, SnippetsPerEntity: 4, MaxTrainEntities: 30,
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PeopleF <= 0 || r.PeopleF > 1 || r.POIF <= 0 || r.POIF > 1 {
			t.Errorf("out-of-range F: %+v", r)
		}
		// POI names are long compounds; ambiguity hits people harder.
		if r.POIF < r.PeopleF {
			t.Errorf("rate %.2f: POI F %.2f below people F %.2f", r.Rate, r.POIF, r.PeopleF)
		}
	}
}

func TestEfficiencyLatencyScaling(t *testing.T) {
	l := getLab(t)
	t.Parallel()
	fast := l.Efficiency([]int{50}, 100*time.Millisecond)[0]
	slow := l.Efficiency([]int{50}, 500*time.Millisecond)[0]
	if slow.EstSecondsPerRow <= fast.EstSecondsPerRow {
		t.Errorf("estimate should grow with latency: %.3f vs %.3f",
			fast.EstSecondsPerRow, slow.EstSecondsPerRow)
	}
}
