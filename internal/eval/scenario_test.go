package eval

import (
	"context"
	"testing"

	"repro/internal/annotate"
	"repro/internal/dataset"
	"repro/internal/ingest"
)

// TestMessyIngestionDifferential is the end-to-end form of the ingestion
// invariant: every messy variant of the scenario dataset — ragged CSV, NFD
// CSV, tidy HTML, messy HTML with merged cells — must annotate and geocode
// byte-identically to its clean-CSV twin, at parallelism 1 and 4. Under
// -race this also drives the batch worker pool over normalized tables.
func TestMessyIngestionDifferential(t *testing.T) {
	l := getLab(t)
	t.Parallel()

	ds := dataset.BuildScenario(l.World, l.Cfg.Seed+7, dataset.ScenarioOptions{MixedKinds: true})
	acfg := l.config(l.SVM, true, true)

	render := func(v ingest.Variant, parallelism int) string {
		ids, err := reingest(ds, v)
		if err != nil {
			t.Fatalf("variant %s: %v", v, err)
		}
		batch, err := acfg.AnnotateBatch(context.Background(), ids.Tables, parallelism)
		if err != nil {
			t.Fatalf("variant %s, parallelism %d: %v", v, parallelism, err)
		}
		res := make(map[string]*annotate.Result, len(ids.Tables))
		for i, tbl := range ids.Tables {
			res[tbl.Name] = batch[i]
		}
		return renderResults(ids, res, acfg)
	}

	for _, parallelism := range []int{1, 4} {
		clean := render(ingest.CleanCSV, parallelism)
		if clean == "" {
			t.Fatalf("parallelism %d: empty clean render", parallelism)
		}
		for _, v := range ingest.Variants() {
			if v == ingest.CleanCSV {
				continue
			}
			if got := render(v, parallelism); got != clean {
				t.Errorf("parallelism %d: variant %s diverged from clean-csv twin", parallelism, v)
			}
		}
	}
}

// TestScenarioMatrixSingleCell runs one adversarial cell of the matrix
// end-to-end against the shared lab's scale and sanity-checks the scoring
// plumbing without the cost of a per-world lab build.
func TestScenarioMatrixSingleCell(t *testing.T) {
	l := getLab(t)
	t.Parallel()

	ds := dataset.BuildScenario(l.World, l.Cfg.Seed+7, dataset.ScenarioOptions{})
	if len(ds.Tables) == 0 {
		t.Fatal("scenario dataset has no tables")
	}
	if len(ds.GeoGold) == 0 {
		t.Fatal("scenario dataset has no geo gold truth")
	}
	acfg := l.config(l.SVM, true, true)
	res := l.runConfig(ds, acfg)
	cell := scoreCell(ds, res, acfg)
	if cell.Gold == 0 || cell.Annotated == 0 {
		t.Fatalf("degenerate annotation counters: %+v", cell)
	}
	if cell.MicroF <= 0 || cell.MicroF > 1 {
		t.Errorf("micro-F out of range: %v", cell.MicroF)
	}
	if cell.GeoCells == 0 {
		t.Fatal("no geo cells scored")
	}
	if cell.GeoAccuracy <= 0 || cell.GeoAccuracy > 1 {
		t.Errorf("geo accuracy out of range: %v (correct %d / cells %d)", cell.GeoAccuracy, cell.GeoCorrect, cell.GeoCells)
	}
}
