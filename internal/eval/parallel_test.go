package eval

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/qcache"
)

// TestParallelCorpusMatchesSequential annotates the whole GFT corpus
// sequentially and at parallelism 8 and asserts the two result sets are
// byte-identical — annotations, scores, query counts and skip counters.
// Run under -race this also exercises the execute-stage worker pool, the
// concurrent engine readers and the batch API for data races.
func TestParallelCorpusMatchesSequential(t *testing.T) {
	l := getLab(t)
	t.Parallel()

	render := func(parallelism int) string {
		a := l.annotator(l.SVM, true, false)
		a.Parallelism = parallelism
		results, err := a.AnnotateTables(context.Background(), l.GFT.Tables, parallelism)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		out := ""
		for i, tbl := range l.GFT.Tables {
			res := results[i]
			out += fmt.Sprintf("%s queries=%d skipped=%v\n", tbl.Name, res.Queries, len(res.Skipped))
			for _, ann := range res.Annotations {
				out += fmt.Sprintf("  %d,%d %s %.6f\n", ann.Row, ann.Col, ann.Type, ann.Score)
			}
		}
		return out
	}

	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatal("parallel corpus annotation differs from the sequential run")
	}
	if seq == "" {
		t.Fatal("empty corpus snapshot")
	}
}

// TestCrossTableCacheWarmsAcrossRuns annotates the GFT corpus twice through
// one shared verdict cache: the warm pass must answer every unique query
// from the cache and issue zero search-engine queries.
func TestCrossTableCacheWarmsAcrossRuns(t *testing.T) {
	l := getLab(t)
	t.Parallel()

	cache := qcache.New()
	run := func() (queries, hits, misses int) {
		a := l.annotator(l.SVM, true, false)
		a.Cache = cache
		a.CacheSalt = "cache-test"
		results, err := a.AnnotateTables(context.Background(), l.GFT.Tables, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			queries += res.Queries
			hits += res.CacheHits
			misses += res.CacheMisses
		}
		return
	}

	coldQ, coldHits, coldMisses := run()
	if coldQ == 0 {
		t.Fatal("cold run issued no queries")
	}
	if coldMisses != coldQ {
		t.Errorf("cold run: misses %d != queries %d", coldMisses, coldQ)
	}
	// Tables repeat cell values across the corpus, so even the cold run
	// should see some cross-table hits.
	if coldHits == 0 {
		t.Error("cold run saw no cross-table hits; GFT tables share no cell values?")
	}

	warmQ, warmHits, warmMisses := run()
	if warmQ != 0 || warmMisses != 0 {
		t.Errorf("warm run issued %d queries (%d misses), want 0: cache did not warm", warmQ, warmMisses)
	}
	if warmHits == 0 {
		t.Error("warm run reported no cache hits")
	}

	stats := cache.Stats()
	if stats.Entries == 0 || stats.Hits == 0 {
		t.Errorf("cache stats = %+v, want populated", stats)
	}
	// Warm hit rate over both runs must exceed 50%: the second pass is
	// all hits, the first pass adds some.
	if r := stats.HitRate(); r <= 0.5 {
		t.Errorf("overall hit rate = %.2f, want > 0.5 after a warm pass", r)
	}
	// The cache must not leak verdicts across salts.
	salted := l.annotator(l.SVM, true, false)
	salted.Cache = cache
	salted.CacheSalt = "other-salt"
	res, err := salted.AnnotateTableContext(context.Background(), l.GFT.Tables[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Errorf("different salt got %d cache hits, want 0", res.CacheHits)
	}
}
