package dataset

import (
	"math/rand"

	"repro/internal/world"
)

// ScenarioOptions shapes the scenario-matrix dataset. The zero value selects
// the defaults.
type ScenarioOptions struct {
	// Types are the entity types the tables draw from. Default: a spread
	// of spatial POIs plus two non-spatial types (Restaurant, Museum,
	// Hotel, Actor, Film).
	Types []world.Type
	// RowsPerTable caps the rows per emitted table (default 18): the
	// matrix runs many cells, so tables stay small.
	RowsPerTable int
	// MixedKinds mixes all spatial POI types into shared Figure 2 style
	// tables instead of per-type tables, the column-mixing axis of the
	// adversarial worlds.
	MixedKinds bool
}

func (o ScenarioOptions) withDefaults() ScenarioOptions {
	if len(o.Types) == 0 {
		o.Types = []world.Type{world.Restaurant, world.Museum, world.Hotel, world.Actor, world.Film}
	}
	if o.RowsPerTable == 0 {
		o.RowsPerTable = 18
	}
	return o
}

// BuildScenario assembles the compact evaluation dataset the scenario matrix
// feeds through each ingestion variant: one small table per type (or mixed
// POI tables when MixedKinds is set) from the TablePool, with both
// annotation gold and geographic gold recorded. Deterministic in seed, and
// built on the same emitters as BuildGFT so the tables look like the §6.2
// dataset, just smaller.
func BuildScenario(w *world.World, seed int64, opts ScenarioOptions) *Dataset {
	opts = opts.withDefaults()
	b := &builder{
		w:   w,
		rng: rand.New(rand.NewSource(seed)),
		ds:  &Dataset{Gold: Gold{}, GeoGold: GeoGold{}},
		pfx: "scn",
	}
	if opts.MixedKinds {
		var spatial, rest []*world.Entity
		for _, t := range opts.Types {
			es := w.TableEntities(t)
			if world.HasSpatial(t) {
				spatial = append(spatial, es...)
			} else {
				rest = append(rest, es...)
			}
		}
		b.shuffle(spatial)
		for len(spatial) > 0 {
			n := min(opts.RowsPerTable, len(spatial))
			b.mixedPOITable(spatial[:n])
			spatial = spatial[n:]
		}
		for _, t := range opts.Types {
			if !world.HasSpatial(t) {
				b.scenarioTyped(rest, t, opts.RowsPerTable)
			}
		}
		return b.ds
	}
	for _, t := range opts.Types {
		b.scenarioTyped(w.TableEntities(t), t, opts.RowsPerTable)
	}
	return b.ds
}

// scenarioTyped emits one typed table of at most rows entities of type t
// drawn from es.
func (b *builder) scenarioTyped(es []*world.Entity, t world.Type, rows int) {
	var pool []*world.Entity
	for _, e := range es {
		if e.Type == t {
			pool = append(pool, e)
		}
	}
	if len(pool) == 0 {
		return
	}
	b.typedTable(pool[:min(rows, len(pool))], t)
}
