package dataset

import (
	"strings"
	"testing"

	"repro/internal/table"
	"repro/internal/world"
)

func TestBuildGFTShape(t *testing.T) {
	w := world.Generate(world.Config{Seed: 21, KBPerType: 10})
	ds := BuildGFT(w, 21)
	if n := len(ds.Tables); n < 35 || n > 45 {
		t.Errorf("GFT dataset has %d tables, want ~40", n)
	}
	// Gold counts match the paper's per-type entity counts.
	counts := ds.Gold.CountByType()
	for typ, want := range world.TableEntityCounts {
		if got := counts[string(typ)]; got != want {
			t.Errorf("gold %s = %d, want %d", typ, got, want)
		}
	}
	// Mixed and type-word tables exist.
	var mixed, typeword int
	for _, tbl := range ds.Tables {
		if strings.HasPrefix(tbl.Name, "gft_mixed") {
			mixed++
		}
		if strings.HasPrefix(tbl.Name, "gft_typeword") {
			typeword++
		}
	}
	if mixed != 2 {
		t.Errorf("mixed tables = %d, want 2", mixed)
	}
	if typeword != 1 {
		t.Errorf("type-word tables = %d, want 1", typeword)
	}
}

func TestGFTGoldPointsAtRealNames(t *testing.T) {
	w := world.Generate(world.Config{Seed: 22, KBPerType: 10})
	ds := BuildGFT(w, 22)
	for _, tbl := range ds.Tables {
		for key, typ := range ds.Gold[tbl.Name] {
			cell := tbl.Cell(key.Row, key.Col)
			es := w.ByName(cell)
			if len(es) == 0 {
				t.Fatalf("gold cell %q in %s matches no entity", cell, tbl.Name)
			}
			found := false
			for _, e := range es {
				if string(e.Type) == typ {
					found = true
				}
			}
			if !found {
				t.Errorf("gold cell %q typed %q but no entity of that type has the name", cell, typ)
			}
		}
	}
}

func TestGFTTablesAreRectangularWithGFTTypes(t *testing.T) {
	w := world.Generate(world.Config{Seed: 23, KBPerType: 10})
	ds := BuildGFT(w, 23)
	spatialTables := 0
	for _, tbl := range ds.Tables {
		for _, row := range tbl.Rows {
			if len(row) != tbl.NumCols() {
				t.Fatalf("table %s has a ragged row", tbl.Name)
			}
		}
		if len(tbl.ColumnIndexesOfType(table.Location)) > 0 {
			spatialTables++
		}
	}
	if spatialTables == 0 {
		t.Error("no tables with Location columns; disambiguation cannot be exercised")
	}
}

func TestGFTAddressesPartiallyTruncated(t *testing.T) {
	w := world.Generate(world.Config{Seed: 24, KBPerType: 10})
	ds := BuildGFT(w, 24)
	full, partial := 0, 0
	for _, tbl := range ds.Tables {
		for _, j := range tbl.ColumnIndexesOfType(table.Location) {
			for _, v := range tbl.ColumnValues(j) {
				if v == "" {
					continue
				}
				if strings.Contains(v, ",") {
					full++
				} else {
					partial++
				}
			}
		}
	}
	if partial == 0 || full == 0 {
		t.Errorf("want a mix of full (%d) and partial (%d) addresses", full, partial)
	}
}

func TestBuildWikiManualShape(t *testing.T) {
	w := world.Generate(world.Config{Seed: 25, KBPerType: 10})
	ds := BuildWikiManual(w, 25)
	if len(ds.Tables) != 36 {
		t.Errorf("wiki dataset has %d tables, want 36", len(ds.Tables))
	}
	totalGold := 0
	for _, cells := range ds.Gold {
		totalGold += len(cells)
	}
	wantEntities := len(world.AllTypes) * 20
	if totalGold != wantEntities {
		t.Errorf("wiki gold has %d entities, want %d", totalGold, wantEntities)
	}
	// Wiki tables carry no useful context: all columns Text.
	for _, tbl := range ds.Tables {
		for _, c := range tbl.Columns {
			if c.Type != table.Text {
				t.Errorf("wiki table %s has typed column %v", tbl.Name, c.Type)
			}
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	w := world.Generate(world.Config{Seed: 26, KBPerType: 10})
	a := BuildGFT(w, 26)
	b := BuildGFT(w, 26)
	if len(a.Tables) != len(b.Tables) {
		t.Fatal("table counts differ")
	}
	for i := range a.Tables {
		if a.Tables[i].Name != b.Tables[i].Name || a.Tables[i].NumRows() != b.Tables[i].NumRows() {
			t.Fatalf("table %d differs", i)
		}
		if a.Tables[i].NumRows() > 0 && a.Tables[i].Cell(1, 1) != b.Tables[i].Cell(1, 1) {
			t.Fatalf("table %d content differs", i)
		}
	}
}

func TestGoldAddAndCount(t *testing.T) {
	g := Gold{}
	g.Add("t1", 1, 1, world.Museum)
	g.Add("t1", 2, 1, world.Museum)
	g.Add("t2", 1, 1, world.Restaurant)
	counts := g.CountByType()
	if counts["museum"] != 2 || counts["restaurant"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}
