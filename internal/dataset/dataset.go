// Package dataset assembles the evaluation datasets of §6 from the synthetic
// universe: the 40-table GFT dataset with its manual gold standard (§6.2) —
// including mixed-type tables (Figure 2), limited-context tables (Figure 4)
// and repeated-type-word columns (Figure 8) — and the 36-table Wiki Manual
// dataset used for the comparison with Limaye (§6.3).
package dataset

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/gazetteer"
	"repro/internal/table"
	"repro/internal/world"
)

// CellKey addresses one cell with the paper's 1-based (row, column) indexes.
type CellKey struct {
	Row, Col int
}

// Gold is the manual annotation: for every table, the cells that contain
// entity names together with the entity's type.
type Gold map[string]map[CellKey]string

// Add records one gold annotation.
func (g Gold) Add(tableName string, row, col int, typ world.Type) {
	m := g[tableName]
	if m == nil {
		m = map[CellKey]string{}
		g[tableName] = m
	}
	m[CellKey{row, col}] = string(typ)
}

// CountByType tallies gold entities per type across all tables.
func (g Gold) CountByType() map[string]int {
	out := map[string]int{}
	for _, cells := range g {
		for _, typ := range cells {
			out[typ]++
		}
	}
	return out
}

// GeoGold is the geographic gold standard: for every table, the address
// cells whose true location (the street the universe placed the entity on)
// is known. Geo disambiguation accuracy compares the pipeline's chosen
// LocID against it.
type GeoGold map[string]map[CellKey]gazetteer.LocID

// Add records one geographic gold annotation.
func (g GeoGold) Add(tableName string, row, col int, loc gazetteer.LocID) {
	m := g[tableName]
	if m == nil {
		m = map[CellKey]gazetteer.LocID{}
		g[tableName] = m
	}
	m[CellKey{row, col}] = loc
}

// Dataset is a set of tables plus their gold standard.
type Dataset struct {
	Tables  []*table.Table
	Gold    Gold
	GeoGold GeoGold
}

// builder carries the generation state.
type builder struct {
	w    *world.World
	rng  *rand.Rand
	ds   *Dataset
	next int    // table counter for unique names
	pfx  string // table-name prefix family ("gft", or "scn" for scenarios)
}

// BuildGFT assembles the §6.2 dataset from the TablePool entities: per-type
// tables with the GFT column layouts, two mixed POI tables in the shape of
// Figure 2, and one museums table with a repeated "Museum" type column in
// the shape of Figure 8.
func BuildGFT(w *world.World, seed int64) *Dataset {
	b := &builder{
		w:   w,
		rng: rand.New(rand.NewSource(seed)),
		ds:  &Dataset{Gold: Gold{}, GeoGold: GeoGold{}},
		pfx: "gft",
	}

	pools := map[world.Type][]*world.Entity{}
	for _, t := range world.AllTypes {
		pools[t] = append([]*world.Entity(nil), w.TableEntities(t)...)
	}

	// Two mixed tables (Figure 2) draw from restaurants, hotels and
	// museums before the per-type tables consume the pools.
	for i := 0; i < 2; i++ {
		var mixed []*world.Entity
		for _, t := range []world.Type{world.Museum, world.Hotel, world.Restaurant} {
			n := 4 + b.rng.Intn(3)
			take := min(n, len(pools[t]))
			mixed = append(mixed, pools[t][:take]...)
			pools[t] = pools[t][take:]
		}
		b.shuffle(mixed)
		b.mixedPOITable(mixed)
	}

	// One Figure 8 table: museums with a repeated type-word column.
	{
		take := min(8, len(pools[world.Museum]))
		b.typeWordTable(pools[world.Museum][:take], world.Museum)
		pools[world.Museum] = pools[world.Museum][take:]
	}

	// Per-type tables over the remaining pools, ~45 rows each.
	for _, t := range world.AllTypes {
		pool := pools[t]
		for len(pool) > 0 {
			n := min(45, len(pool))
			b.typedTable(pool[:n], t)
			pool = pool[n:]
		}
	}
	return b.ds
}

// BuildWikiManual assembles the §6.3 comparison dataset from the WikiPool:
// 36 smaller tables without GFT type metadata (every column is Text, as
// inferred from Wikipedia-style CSV), mostly containing catalogue-known
// entities.
func BuildWikiManual(w *world.World, seed int64) *Dataset {
	b := &builder{
		w:   w,
		rng: rand.New(rand.NewSource(seed)),
		ds:  &Dataset{Gold: Gold{}, GeoGold: GeoGold{}},
		pfx: "gft",
	}
	var all []*world.Entity
	for _, t := range world.AllTypes {
		all = append(all, w.WikiEntities(t)...)
	}
	b.shuffle(all)
	const tables = 36
	for i := 0; i < tables; i++ {
		lo, hi := i*len(all)/tables, (i+1)*len(all)/tables
		if lo == hi {
			continue
		}
		b.wikiTable(all[lo:hi])
	}
	return b.ds
}

func (b *builder) shuffle(es []*world.Entity) {
	b.rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
}

func (b *builder) name(prefix string) string {
	b.next++
	return fmt.Sprintf("%s_%02d", prefix, b.next)
}

// address renders the entity's address; 35% of the time only the street part
// is kept (the partial addresses of §5.2.2). The second result is the
// geographic gold truth for the rendered cell — the street the universe
// placed the entity on — or NoLocation when there is no address to render.
func (b *builder) address(e *world.Entity) (string, gazetteer.LocID) {
	a := e.Address(b.w.Gaz)
	if a.Street == "" {
		return "", gazetteer.NoLocation
	}
	if b.rng.Float64() < 0.35 {
		return gazetteer.Address{StreetNumber: a.StreetNumber, Street: a.Street}.Format(), e.Street
	}
	return a.Format(), e.Street
}

// addrCell renders the address and records its geo gold truth at (row, col).
func (b *builder) addrCell(tableName string, row, col int, e *world.Entity) string {
	addr, loc := b.address(e)
	if loc != gazetteer.NoLocation {
		b.ds.GeoGold.Add(tableName, row, col, loc)
	}
	return addr
}

// categoryPhrases are the short domain phrases filling the "category" column
// of single-type tables. They are short enough to survive pre-processing and
// lexically close to entity descriptions, so the annotator initially marks
// them — the spurious annotations that §5.3's column coherence eliminates.
// Values repeat across rows (a table lists ten French bistros, not ten
// distinct cuisines), which is exactly what the o_ij factor of Eq. 2 damps.
var categoryPhrases = map[world.Type][]string{
	world.Restaurant: {"French bistro", "Italian trattoria", "seafood grill", "sushi bar", "steakhouse", "vegan cafe", "tapas bar", "pizzeria"},
	world.Museum:     {"art museum", "history museum", "science museum", "maritime museum", "folk museum"},
	world.Theatre:    {"opera house", "playhouse", "drama theatre", "ballet theatre"},
	world.Hotel:      {"luxury hotel", "boutique hotel", "budget inn", "resort", "hostel"},
	world.School:     {"elementary school", "high school", "charter school", "primary school"},
	world.University: {"public university", "private university", "technical institute"},
	world.Actor:      {"actor", "film actor", "stage actor", "television actor"},
	world.Singer:     {"singer", "pop singer", "opera singer", "folk singer"},
	world.Scientist:  {"scientist", "physicist", "chemist", "biologist"},
	world.Film:       {"thriller", "drama film", "comedy film", "documentary"},
}

func (b *builder) phrase(t world.Type) string {
	pool := categoryPhrases[t]
	if len(pool) == 0 {
		return ""
	}
	return pool[b.rng.Intn(len(pool))]
}

// typedTable emits one single-type table with the GFT layout of that type.
func (b *builder) typedTable(es []*world.Entity, t world.Type) {
	name := b.name(b.pfx + "_" + sanitize(string(t)))
	var tbl *table.Table
	switch {
	case world.HasSpatial(t):
		tbl = table.New(name,
			table.Column{Header: "Name", Type: table.Text},
			table.Column{Header: "Address", Type: table.Location},
			table.Column{Header: "Category", Type: table.Text},
			table.Column{Header: "Phone", Type: table.Text},
			table.Column{Header: "Description", Type: table.Text},
		)
		for i, e := range es {
			mustAppend(tbl, e.Name, b.addrCell(name, i+1, 2, e), b.phrase(t), e.Phone, e.Description)
			b.ds.Gold.Add(name, i+1, 1, t)
		}
	case t == world.Mine:
		tbl = table.New(name,
			table.Column{Header: "Name", Type: table.Text},
			table.Column{Header: "Country", Type: table.Text},
			table.Column{Header: "Output (kt)", Type: table.Number},
		)
		countries := []string{"USA", "Australia", "Chile", "Canada", "Peru"}
		for i, e := range es {
			mustAppend(tbl, e.Name, countries[b.rng.Intn(len(countries))], strconv.Itoa(10+b.rng.Intn(900)))
			b.ds.Gold.Add(name, i+1, 1, t)
		}
	case world.Category(t) == "people":
		tbl = table.New(name,
			table.Column{Header: "Name", Type: table.Text},
			table.Column{Header: "Born", Type: table.Number},
			table.Column{Header: "Occupation", Type: table.Text},
		)
		for i, e := range es {
			mustAppend(tbl, e.Name, strconv.Itoa(1930+b.rng.Intn(70)), b.phrase(t))
			b.ds.Gold.Add(name, i+1, 1, t)
		}
	case t == world.SimpsonsEpisode:
		tbl = table.New(name,
			table.Column{Header: "Episode", Type: table.Text},
			table.Column{Header: "Season", Type: table.Number},
			table.Column{Header: "Airdate", Type: table.Date},
		)
		for i, e := range es {
			date := fmt.Sprintf("%d-%02d-%02d", 1990+b.rng.Intn(20), 1+b.rng.Intn(12), 1+b.rng.Intn(28))
			mustAppend(tbl, e.Name, strconv.Itoa(1+b.rng.Intn(20)), date)
			b.ds.Gold.Add(name, i+1, 1, t)
		}
	default: // films
		tbl = table.New(name,
			table.Column{Header: "Title", Type: table.Text},
			table.Column{Header: "Year", Type: table.Number},
			table.Column{Header: "Genre", Type: table.Text},
		)
		for i, e := range es {
			mustAppend(tbl, e.Name, strconv.Itoa(1960+b.rng.Intn(60)), b.phrase(t))
			b.ds.Gold.Add(name, i+1, 1, t)
		}
	}
	b.ds.Tables = append(b.ds.Tables, tbl)
}

// mixedPOITable emits a Figure 2 style table whose first column mixes
// museums, hotels and restaurants; the second column holds verbose
// descriptions and the third addresses.
func (b *builder) mixedPOITable(es []*world.Entity) {
	name := b.name(b.pfx + "_mixed")
	tbl := table.New(name,
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Description", Type: table.Text},
		table.Column{Header: "Address", Type: table.Location},
	)
	for i, e := range es {
		mustAppend(tbl, e.Name, e.Description, b.addrCell(name, i+1, 3, e))
		b.ds.Gold.Add(name, i+1, 1, e.Type)
	}
	b.ds.Tables = append(b.ds.Tables, tbl)
}

// typeWordTable emits a Figure 8 style table: entity names plus a column
// repeating the bare type word, the spurious-annotation trap for §5.3.
func (b *builder) typeWordTable(es []*world.Entity, t world.Type) {
	name := b.name(b.pfx + "_typeword")
	tbl := table.New(name,
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Type", Type: table.Text},
		table.Column{Header: "Address", Type: table.Location},
	)
	word := world.TypeName(t)
	word = string(word[0]-'a'+'A') + word[1:]
	for i, e := range es {
		mustAppend(tbl, e.Name, word, b.addrCell(name, i+1, 3, e))
		b.ds.Gold.Add(name, i+1, 1, t)
	}
	b.ds.Tables = append(b.ds.Tables, tbl)
}

// wikiTable emits a Wikipedia-style table: untyped columns (all Text), a
// name column and a note column with limited context (Figure 4).
func (b *builder) wikiTable(es []*world.Entity) {
	name := b.name("wiki")
	tbl := table.New(name,
		table.Column{Header: "Name", Type: table.Text},
		table.Column{Header: "Ref", Type: table.Text},
	)
	for i, e := range es {
		mustAppend(tbl, e.Name, fmt.Sprintf("[%d]", b.rng.Intn(90)+1))
		b.ds.Gold.Add(name, i+1, 1, e.Type)
	}
	b.ds.Tables = append(b.ds.Tables, tbl)
}

// mustAppend panics on ragged rows — a bug in the generator, not a runtime
// condition.
func mustAppend(t *table.Table, cells ...string) {
	if err := t.AppendRow(cells...); err != nil {
		panic(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
