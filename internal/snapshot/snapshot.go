// Package snapshot implements the TSNP v1 bundle: one file carrying every
// heavy serving artifact — the sharded search index (TIDX v3), the frozen
// gazetteer (TGAZ v1) and both trained snippet classifiers (TCLF v1) — so a
// fleet of replicas loads one prebuilt artifact instead of performing N full
// world rebuilds at boot. Layout (little-endian):
//
//	magic "TSNP" | version u32
//	headerLen u32 | header bytes | headerCRC u32 (IEEE CRC-32 of the header)
//	section payloads, sequentially, in section-table order
//
// The header holds the manifest (seed, scale, classifier kind, shard count,
// component sizes, build metadata) followed by the section table: one entry
// per section with its name, payload length and payload CRC-32. Payloads are
// the unmodified streams of the component formats, so each section's own
// versioning and integrity checks still apply after the CRC gate.
//
// Reads are strictly sequential — manifest, table, then each payload in file
// order — so loading is IO-bound streaming, never seek-bound. Every length
// and count is bounds-checked and every byte of the file is covered by a
// checksum (header by headerCRC, payloads by their table entries), so a
// truncated or bit-flipped file fails with a typed error — *FormatError or
// *ChecksumError — before any component parser sees corrupt bytes.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/classify"
	"repro/internal/gazetteer"
	"repro/internal/search"
)

const (
	// Magic identifies a TSNP stream.
	Magic = "TSNP"
	// Version is the bundle format version this package writes.
	Version = 1

	// maxHeaderLen bounds the manifest + section table; real headers are a
	// few hundred bytes.
	maxHeaderLen = 1 << 20
	// maxSectionLen bounds one section payload; far above any real bundle.
	maxSectionLen = 1 << 40
	// maxSections bounds the section table.
	maxSections = 64
)

// Canonical section names, in file order.
const (
	SectionSearch    = "search"    // TIDX v3 sharded index stream
	SectionGazetteer = "gazetteer" // TGAZ v1 frozen gazetteer stream
	SectionSVM       = "svm"       // TCLF v1 linear SVM stream
	SectionBayes     = "bayes"     // TCLF v1 Naive Bayes stream
)

// FormatError reports a structurally invalid TSNP stream: bad magic,
// unsupported version, truncation, or an out-of-bounds length or count.
type FormatError struct {
	// Reason says what is wrong.
	Reason string
	// Err is the underlying cause (often an io error), when there is one.
	Err error
}

func (e *FormatError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("snapshot: %s: %v", e.Reason, e.Err)
	}
	return "snapshot: " + e.Reason
}

func (e *FormatError) Unwrap() error { return e.Err }

// ChecksumError reports a region whose stored CRC-32 does not match its
// bytes — the typed signal for bit rot or a torn write.
type ChecksumError struct {
	// Region is "header" or the section name.
	Region string
	// Want is the stored checksum, Got the one computed from the bytes.
	Want, Got uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("snapshot: %s checksum mismatch: stored %08x, computed %08x", e.Region, e.Want, e.Got)
}

// Manifest describes what a bundle was built from, so a loader can refuse a
// file that does not match its configuration instead of serving silently
// different results.
type Manifest struct {
	// Seed, Scale and Classifier are the build configuration of the
	// service the bundle was written from (repro.New's WithSeed /
	// WithScale / WithClassifier values).
	Seed       int64
	Scale      string
	Classifier string
	// SearchShards is the shard count baked into the index stream; results
	// are identical at any count, but the manifest records it so a loader
	// pinned to a specific count can refuse.
	SearchShards int
	// Docs and Locations are the component sizes, for inspection and
	// cheap post-load sanity checks.
	Docs      int
	Locations int
	// CreatedAtUnix and BuildMillis are build metadata: when the bundle
	// was written and how long the from-scratch build that produced it
	// took.
	CreatedAtUnix int64
	BuildMillis   int64
	// Tool identifies the writer (e.g. "cmd/snapshot").
	Tool string
}

// SectionInfo is one entry of the section table.
type SectionInfo struct {
	// Name is the section's canonical name.
	Name string
	// Length is the payload byte count.
	Length int64
	// CRC is the payload's IEEE CRC-32.
	CRC uint32
}

// Bundle is the in-memory form of a TSNP snapshot: the manifest plus every
// serving component, decoded and ready to assemble into a service.
type Bundle struct {
	Manifest  Manifest
	Index     *search.ShardedIndex
	Gazetteer *gazetteer.Frozen
	SVM       classify.Classifier
	Bayes     classify.Classifier
}

// headerWriter accumulates the header bytes (manifest + section table).
type headerWriter struct {
	buf bytes.Buffer
}

func (hw *headerWriter) u32(v uint32) { _ = binary.Write(&hw.buf, binary.LittleEndian, v) }
func (hw *headerWriter) i64(v int64)  { _ = binary.Write(&hw.buf, binary.LittleEndian, v) }
func (hw *headerWriter) str(s string) {
	hw.u32(uint32(len(s)))
	hw.buf.WriteString(s)
}

// WriteTo serialises the bundle as a TSNP v1 stream: each component is
// encoded, the header (manifest + checksummed section table) is emitted, then
// the payloads follow sequentially. It returns the byte count written.
func (b *Bundle) WriteTo(w io.Writer) (int64, error) {
	type section struct {
		name   string
		encode func(io.Writer) (int64, error)
	}
	sections := []section{
		{SectionSearch, func(w io.Writer) (int64, error) { return b.Index.WriteTo(w) }},
		{SectionGazetteer, func(w io.Writer) (int64, error) { return b.Gazetteer.WriteTo(w) }},
		{SectionSVM, func(w io.Writer) (int64, error) { return classify.WriteClassifier(w, b.SVM) }},
		{SectionBayes, func(w io.Writer) (int64, error) { return classify.WriteClassifier(w, b.Bayes) }},
	}

	// Encode every payload first: the section table needs each length and
	// checksum before the first payload byte can be written.
	payloads := make([]*bytes.Buffer, len(sections))
	infos := make([]SectionInfo, len(sections))
	for i, s := range sections {
		payloads[i] = &bytes.Buffer{}
		if _, err := s.encode(payloads[i]); err != nil {
			return 0, fmt.Errorf("snapshot: encoding %s section: %w", s.name, err)
		}
		infos[i] = SectionInfo{
			Name:   s.name,
			Length: int64(payloads[i].Len()),
			CRC:    crc32.ChecksumIEEE(payloads[i].Bytes()),
		}
	}

	var hw headerWriter
	m := b.Manifest
	hw.i64(m.Seed)
	hw.str(m.Scale)
	hw.str(m.Classifier)
	hw.u32(uint32(m.SearchShards))
	hw.u32(uint32(m.Docs))
	hw.u32(uint32(m.Locations))
	hw.i64(m.CreatedAtUnix)
	hw.i64(m.BuildMillis)
	hw.str(m.Tool)
	hw.u32(uint32(len(infos)))
	for _, info := range infos {
		hw.str(info.Name)
		hw.i64(info.Length)
		hw.u32(info.CRC)
	}
	header := hw.buf.Bytes()

	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		wn, err := bw.Write(p)
		n += int64(wn)
		return err
	}
	u32 := func(v uint32) error {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		return write(tmp[:])
	}
	err := func() error {
		if err := write([]byte(Magic)); err != nil {
			return err
		}
		if err := u32(Version); err != nil {
			return err
		}
		if err := u32(uint32(len(header))); err != nil {
			return err
		}
		if err := write(header); err != nil {
			return err
		}
		if err := u32(crc32.ChecksumIEEE(header)); err != nil {
			return err
		}
		for _, p := range payloads {
			if err := write(p.Bytes()); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// WriteFile writes the bundle to path atomically: a same-directory temp file
// renamed into place, so a crashed build never leaves a half-written bundle
// under the serving path.
func (b *Bundle) WriteFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tsnp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := b.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// headerReader decodes the checksummed header bytes with bounds checks.
type headerReader struct {
	b   []byte
	off int
}

func (hr *headerReader) u32() (uint32, error) {
	if hr.off+4 > len(hr.b) {
		return 0, &FormatError{Reason: "header truncated"}
	}
	v := binary.LittleEndian.Uint32(hr.b[hr.off:])
	hr.off += 4
	return v, nil
}

func (hr *headerReader) i64() (int64, error) {
	if hr.off+8 > len(hr.b) {
		return 0, &FormatError{Reason: "header truncated"}
	}
	v := int64(binary.LittleEndian.Uint64(hr.b[hr.off:]))
	hr.off += 8
	return v, nil
}

func (hr *headerReader) str() (string, error) {
	n, err := hr.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(hr.b)-hr.off {
		return "", &FormatError{Reason: fmt.Sprintf("header string of %d bytes overruns the header", n)}
	}
	s := string(hr.b[hr.off : hr.off+int(n)])
	hr.off += int(n)
	return s, nil
}

// readHeader reads and verifies magic, version and the checksummed header,
// returning the parsed manifest and section table.
func readHeader(br *bufio.Reader) (Manifest, []SectionInfo, error) {
	var m Manifest
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return m, nil, &FormatError{Reason: "reading magic", Err: err}
	}
	if string(magic) != Magic {
		return m, nil, &FormatError{Reason: fmt.Sprintf("bad magic %q", magic)}
	}
	var fixed [8]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return m, nil, &FormatError{Reason: "reading header frame", Err: err}
	}
	version := binary.LittleEndian.Uint32(fixed[:4])
	if version != Version {
		return m, nil, &FormatError{Reason: fmt.Sprintf("unsupported bundle version %d", version)}
	}
	headerLen := binary.LittleEndian.Uint32(fixed[4:])
	if headerLen > maxHeaderLen {
		return m, nil, &FormatError{Reason: fmt.Sprintf("header of %d bytes exceeds the %d limit", headerLen, maxHeaderLen)}
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return m, nil, &FormatError{Reason: "reading header", Err: err}
	}
	var storedCRC [4]byte
	if _, err := io.ReadFull(br, storedCRC[:]); err != nil {
		return m, nil, &FormatError{Reason: "reading header checksum", Err: err}
	}
	want := binary.LittleEndian.Uint32(storedCRC[:])
	if got := crc32.ChecksumIEEE(header); got != want {
		return m, nil, &ChecksumError{Region: "header", Want: want, Got: got}
	}

	hr := &headerReader{b: header}
	var err error
	var count uint32
	if m.Seed, err = hr.i64(); err != nil {
		return m, nil, err
	}
	if m.Scale, err = hr.str(); err != nil {
		return m, nil, err
	}
	if m.Classifier, err = hr.str(); err != nil {
		return m, nil, err
	}
	for _, dst := range []*int{&m.SearchShards, &m.Docs, &m.Locations} {
		u, uerr := hr.u32()
		if uerr != nil {
			return m, nil, uerr
		}
		*dst = int(u)
	}
	if m.CreatedAtUnix, err = hr.i64(); err != nil {
		return m, nil, err
	}
	if m.BuildMillis, err = hr.i64(); err != nil {
		return m, nil, err
	}
	if m.Tool, err = hr.str(); err != nil {
		return m, nil, err
	}
	if count, err = hr.u32(); err != nil {
		return m, nil, err
	}
	if count > maxSections {
		return m, nil, &FormatError{Reason: fmt.Sprintf("section table of %d entries exceeds the %d limit", count, maxSections)}
	}
	infos := make([]SectionInfo, count)
	for i := range infos {
		if infos[i].Name, err = hr.str(); err != nil {
			return m, nil, err
		}
		if infos[i].Length, err = hr.i64(); err != nil {
			return m, nil, err
		}
		if infos[i].Length < 0 || infos[i].Length > maxSectionLen {
			return m, nil, &FormatError{Reason: fmt.Sprintf("section %q length %d out of bounds", infos[i].Name, infos[i].Length)}
		}
		var crc uint32
		if crc, err = hr.u32(); err != nil {
			return m, nil, err
		}
		infos[i].CRC = crc
	}
	if hr.off != len(header) {
		return m, nil, &FormatError{Reason: fmt.Sprintf("%d trailing bytes in header", len(header)-hr.off)}
	}
	return m, infos, nil
}

// Inspect reads only the manifest and section table — the cheap metadata
// view behind `snapshot inspect`. Payload checksums are NOT verified; use
// Read (or `snapshot verify`) for that.
func Inspect(r io.Reader) (Manifest, []SectionInfo, error) {
	return readHeader(bufio.NewReader(r))
}

// readSection streams one payload into memory, growing with the bytes that
// actually arrive (a corrupt length cannot force a huge allocation), and
// verifies its checksum before handing the bytes to a component parser.
func readSection(br *bufio.Reader, info SectionInfo) ([]byte, error) {
	var buf bytes.Buffer
	// Pre-size to skip growth copies on big sections, clamped so a crafted
	// header claiming an absurd length cannot allocate ahead of the data
	// actually present (the copy below fails at real EOF either way).
	buf.Grow(int(min(info.Length, 64<<20)))
	if n, err := io.CopyN(&buf, br, info.Length); err != nil {
		return nil, &FormatError{Reason: fmt.Sprintf("section %q truncated at %d of %d bytes", info.Name, n, info.Length), Err: err}
	}
	if got := crc32.ChecksumIEEE(buf.Bytes()); got != info.CRC {
		return nil, &ChecksumError{Region: info.Name, Want: info.CRC, Got: got}
	}
	return buf.Bytes(), nil
}

// Read loads a complete bundle: header, then every section sequentially,
// each checksum-verified before its component parser runs. Unknown section
// names are rejected (v1 defines exactly the four canonical sections), as is
// a bundle missing any of them.
func Read(r io.Reader) (*Bundle, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	m, infos, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Manifest: m}
	seen := map[string]bool{}
	for _, info := range infos {
		if seen[info.Name] {
			return nil, &FormatError{Reason: fmt.Sprintf("duplicate section %q", info.Name)}
		}
		seen[info.Name] = true
		payload, err := readSection(br, info)
		if err != nil {
			return nil, err
		}
		switch info.Name {
		case SectionSearch:
			if b.Index, err = search.ReadShardedIndexBytes(payload); err != nil {
				return nil, &FormatError{Reason: "search section", Err: err}
			}
		case SectionGazetteer:
			if b.Gazetteer, err = gazetteer.ReadFrozen(bytes.NewReader(payload)); err != nil {
				return nil, &FormatError{Reason: "gazetteer section", Err: err}
			}
		case SectionSVM:
			if b.SVM, err = classify.ReadClassifier(bytes.NewReader(payload)); err != nil {
				return nil, &FormatError{Reason: "svm section", Err: err}
			}
		case SectionBayes:
			if b.Bayes, err = classify.ReadClassifier(bytes.NewReader(payload)); err != nil {
				return nil, &FormatError{Reason: "bayes section", Err: err}
			}
		default:
			return nil, &FormatError{Reason: fmt.Sprintf("unknown section %q", info.Name)}
		}
	}
	for _, name := range []string{SectionSearch, SectionGazetteer, SectionSVM, SectionBayes} {
		if !seen[name] {
			return nil, &FormatError{Reason: fmt.Sprintf("bundle is missing the %q section", name)}
		}
	}
	if got := b.Index.Len(); got != m.Docs {
		return nil, &FormatError{Reason: fmt.Sprintf("manifest says %d docs, index has %d", m.Docs, got)}
	}
	if got := b.Gazetteer.Len(); got != m.Locations {
		return nil, &FormatError{Reason: fmt.Sprintf("manifest says %d locations, gazetteer has %d", m.Locations, got)}
	}
	return b, nil
}

// ReadFile loads the bundle at path.
func ReadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
