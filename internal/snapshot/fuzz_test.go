package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadSnapshot: arbitrary bytes must never panic Read — every rejection
// is a typed *FormatError or *ChecksumError, and anything accepted must be a
// usable bundle that re-serialises cleanly. Seeds cover the valid stream,
// truncations at the header/table/payload boundaries and single-byte flips;
// the checked-in corpus under testdata/fuzz/FuzzReadSnapshot replays past
// crashers by name in CI.
func FuzzReadSnapshot(f *testing.F) {
	valid := tinyBundleBytes()
	f.Add(valid)
	for _, cut := range []int{0, 3, 4, 8, 12, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	for _, off := range []int{0, 5, 9, 13, 40, len(valid) / 3, len(valid) - 2} {
		mutated := append([]byte(nil), valid...)
		mutated[off] ^= 0xFF
		f.Add(mutated)
	}
	f.Add([]byte("TSNP"))
	f.Add(append(append([]byte(nil), valid...), 0xAA)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Read(bytes.NewReader(data))
		if err != nil {
			var fe *FormatError
			var ce *ChecksumError
			if !errors.As(err, &fe) && !errors.As(err, &ce) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		// Accepted bundles must hold working components and re-serialise.
		_ = b.Index.Search("museum", 3)
		_ = b.Gazetteer.Geocode("Paris")
		if _, err := b.WriteTo(&bytes.Buffer{}); err != nil {
			t.Fatalf("accepted bundle failed to re-serialise: %v", err)
		}
	})
}
