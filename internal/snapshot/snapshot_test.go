package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/gazetteer"
	"repro/internal/search"
)

// tinyBundle builds a small deterministic bundle — a few indexed docs, the
// scale-1 synthetic gazetteer and two classifiers trained on a toy corpus —
// shared by every test and the fuzz seed corpus.
var tinyBundle = sync.OnceValue(func() *Bundle {
	six := search.NewShardedIndex(2)
	for i, d := range []search.Document{
		{URL: "http://example.test/a", Title: "Museum of Modern Art", Body: "The museum exhibits modern art in the city centre.", Lang: "en"},
		{URL: "http://example.test/b", Title: "Chez Testeur", Body: "A restaurant serving dinner; the chef changes the menu daily.", Lang: "en"},
		{URL: "http://example.test/c", Title: "Oakton High School", Body: "A school campus with students and a library.", Lang: "en"},
		{URL: "http://example.test/d", Title: "Hotel du Lac", Body: "Hotel rooms with a lobby and a view of the lake.", Lang: "en"},
		{URL: "http://example.test/e", Title: "Stadtmuseum", Body: "Ein Museum in der Stadt.", Lang: "de"},
	} {
		_ = i
		six.Add(d)
	}
	six.Freeze()

	var d classify.Dataset
	for i := 0; i < 8; i++ {
		d.Add("museum art exhibit gallery", "museum")
		d.Add("restaurant menu chef dinner", "restaurant")
	}

	return &Bundle{
		Manifest: Manifest{
			Seed:          42,
			Scale:         "small",
			Classifier:    "svm",
			SearchShards:  2,
			Docs:          six.Len(),
			Locations:     gazetteer.Synthetic(42).Freeze().Len(),
			CreatedAtUnix: 1754006400,
			BuildMillis:   1234,
			Tool:          "snapshot_test",
		},
		Index:     six,
		Gazetteer: gazetteer.Synthetic(42).Freeze(),
		SVM:       classify.LinearSVMTrainer{Epochs: 2, Seed: 9}.Train(d),
		Bayes:     classify.BayesTrainer{}.Train(d),
	}
})

// tinyBundleBytes serialises the shared bundle once.
var tinyBundleBytes = sync.OnceValue(func() []byte {
	var buf bytes.Buffer
	if _, err := tinyBundle().WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

func TestBundleRoundTrip(t *testing.T) {
	want := tinyBundle()
	data := tinyBundleBytes()

	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest != want.Manifest {
		t.Errorf("manifest round-trip:\n got %+v\nwant %+v", got.Manifest, want.Manifest)
	}
	if got.Index.Len() != want.Index.Len() || got.Index.NumShards() != want.Index.NumShards() {
		t.Errorf("index round-trip: %d docs / %d shards, want %d / %d",
			got.Index.Len(), got.Index.NumShards(), want.Index.Len(), want.Index.NumShards())
	}
	for _, q := range []string{"museum", "restaurant dinner", "school campus", "hotel"} {
		g, w := got.Index.Search(q, 5), want.Index.Search(q, 5)
		if !reflect.DeepEqual(g, w) {
			t.Errorf("Search(%q) diverged after round-trip:\n got %+v\nwant %+v", q, g, w)
		}
	}
	if got.Gazetteer.Len() != want.Gazetteer.Len() {
		t.Errorf("gazetteer round-trip: %d locations, want %d", got.Gazetteer.Len(), want.Gazetteer.Len())
	}
	for _, addr := range []string{"Paris", "Oakton", "Main Street, Springfield"} {
		if g, w := got.Gazetteer.Geocode(addr), want.Gazetteer.Geocode(addr); !reflect.DeepEqual(g, w) {
			t.Errorf("Geocode(%q) diverged after round-trip: %v vs %v", addr, g, w)
		}
	}

	// Re-serialising the reloaded bundle reproduces the stream exactly:
	// every component encoder is deterministic.
	var again bytes.Buffer
	if _, err := got.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again.Bytes()) {
		t.Error("re-serialised bundle is not byte-identical to the original stream")
	}
}

func TestInspect(t *testing.T) {
	m, infos, err := Inspect(bytes.NewReader(tinyBundleBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m != tinyBundle().Manifest {
		t.Errorf("Inspect manifest = %+v, want %+v", m, tinyBundle().Manifest)
	}
	wantOrder := []string{SectionSearch, SectionGazetteer, SectionSVM, SectionBayes}
	if len(infos) != len(wantOrder) {
		t.Fatalf("Inspect returned %d sections, want %d", len(infos), len(wantOrder))
	}
	var total int64
	for i, info := range infos {
		if info.Name != wantOrder[i] {
			t.Errorf("section %d = %q, want %q", i, info.Name, wantOrder[i])
		}
		if info.Length <= 0 {
			t.Errorf("section %q has length %d", info.Name, info.Length)
		}
		total += info.Length
	}
	if total >= int64(len(tinyBundleBytes())) {
		t.Errorf("section payloads (%d bytes) exceed the file (%d bytes)", total, len(tinyBundleBytes()))
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "world.tsnp")
	if err := tinyBundle().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest != tinyBundle().Manifest {
		t.Error("WriteFile/ReadFile manifest mismatch")
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after WriteFile, want only the bundle", len(entries))
	}

	// A destination whose directory does not exist fails before any write.
	if err := tinyBundle().WriteFile(filepath.Join(dir, "absent", "world.tsnp")); err == nil {
		t.Error("WriteFile into a missing directory succeeded")
	}
}

// failAfter is an io.Writer that accepts n bytes then fails, driving the
// write-error returns in the bundle writer.
type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		k := w.n
		w.n = 0
		return k, errors.New("failAfter: write refused")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriteToPropagatesErrors sweeps the write-failure point across the
// bundle: every short write must surface an error, never a silent success.
func TestWriteToPropagatesErrors(t *testing.T) {
	size := len(tinyBundleBytes())
	step := size/97 + 1
	for cut := 0; cut < size; cut += step {
		if _, err := tinyBundle().WriteTo(&failAfter{n: cut}); err == nil {
			t.Fatalf("write failure at byte %d reported success", cut)
		}
	}
}

// TestErrorStrings pins the two typed errors' rendering and unwrapping —
// operators grep logs for these.
func TestErrorStrings(t *testing.T) {
	cause := errors.New("boom")
	fe := &FormatError{Reason: "bad magic", Err: cause}
	if got := fe.Error(); got != "snapshot: bad magic: boom" {
		t.Errorf("FormatError with cause = %q", got)
	}
	if !errors.Is(fe, cause) {
		t.Error("FormatError does not unwrap to its cause")
	}
	if got := (&FormatError{Reason: "truncated"}).Error(); got != "snapshot: truncated" {
		t.Errorf("FormatError without cause = %q", got)
	}
	ce := &ChecksumError{Region: "search", Want: 0xdeadbeef, Got: 0x01020304}
	if got := ce.Error(); got != "snapshot: search checksum mismatch: stored deadbeef, computed 01020304" {
		t.Errorf("ChecksumError = %q", got)
	}
}

// TestReadTruncated: every prefix of the bundle must fail with a typed
// error, never panic and never succeed. The header region is swept byte by
// byte; the payload region at a stride.
func TestReadTruncated(t *testing.T) {
	data := tinyBundleBytes()
	cuts := []int{}
	for i := 0; i < 512 && i < len(data); i++ {
		cuts = append(cuts, i)
	}
	for i := 512; i < len(data); i += 997 {
		cuts = append(cuts, i)
	}
	cuts = append(cuts, len(data)-1)
	for _, cut := range cuts {
		_, err := Read(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes read successfully", cut, len(data))
		}
		var fe *FormatError
		var ce *ChecksumError
		if !errors.As(err, &fe) && !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: error %v is neither *FormatError nor *ChecksumError", cut, err)
		}
	}
}

// TestReadBitFlips: flipping any single byte of the bundle is detected —
// header flips by the header CRC (or the magic/version checks), payload
// flips by the section CRCs. The header region is swept densely, the
// payloads at a stride.
func TestReadBitFlips(t *testing.T) {
	data := tinyBundleBytes()
	offsets := []int{}
	for i := 0; i < 384 && i < len(data); i++ {
		offsets = append(offsets, i)
	}
	for i := 384; i < len(data); i += 499 {
		offsets = append(offsets, i)
	}
	offsets = append(offsets, len(data)-1)
	mutated := make([]byte, len(data))
	for _, off := range offsets {
		copy(mutated, data)
		mutated[off] ^= 0x5A
		_, err := Read(bytes.NewReader(mutated))
		if err == nil {
			t.Fatalf("bit flip at offset %d/%d read successfully", off, len(data))
		}
		var fe *FormatError
		var ce *ChecksumError
		if !errors.As(err, &fe) && !errors.As(err, &ce) {
			t.Fatalf("bit flip at %d: error %v is neither *FormatError nor *ChecksumError", off, err)
		}
	}
}

// TestReadShortSection: a section table that claims more bytes than the file
// holds fails as a truncation, and one that claims fewer fails the checksum
// of a later region — never a panic, never a silent success.
func TestReadShortSection(t *testing.T) {
	data := tinyBundleBytes()
	// Reconstruct the header layout: magic(4) + version(4) + headerLen(4).
	headerLen := int(uint32(data[8]) | uint32(data[9])<<8 | uint32(data[10])<<16 | uint32(data[11])<<24)
	header := append([]byte(nil), data[12:12+headerLen]...)

	// The first section entry's length field sits at a fixed position we
	// can find by re-parsing with Inspect; mutate it through the public
	// surface instead of hard-coding offsets: grow the claimed length of
	// the first section by 1 and fix the header CRC so only the length lies.
	m, infos, err := Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	// Find the 8-byte little-endian encoding of the first section length
	// inside the header and bump it.
	target := infos[0].Length
	var enc [8]byte
	for i := 0; i < 8; i++ {
		enc[i] = byte(uint64(target) >> (8 * i))
	}
	idx := bytes.LastIndex(header, enc[:])
	if idx < 0 {
		t.Fatalf("could not locate section length %d in header", target)
	}
	for _, delta := range []int64{1, -1} {
		h := append([]byte(nil), header...)
		lied := uint64(target + delta)
		for i := 0; i < 8; i++ {
			h[idx+i] = byte(lied >> (8 * i))
		}
		// Rebuild the file with a correct CRC over the lying header.
		out := append([]byte(nil), data[:12]...)
		out = append(out, h...)
		crc := crcIEEE(h)
		out = append(out, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
		out = append(out, data[12+headerLen+4:]...)

		if _, err := Read(bytes.NewReader(out)); err == nil {
			t.Errorf("section length off by %+d read successfully", delta)
		}
	}
}

func crcIEEE(b []byte) uint32 {
	// Tiny local mirror of crc32.ChecksumIEEE to keep the test honest about
	// what it fixes up.
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, x := range b {
		crc ^= uint32(x)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// TestReadRejectsStructuralLies: unknown, duplicate and missing sections are
// typed format errors.
func TestReadRejectsStructuralLies(t *testing.T) {
	b := tinyBundle()
	// A bundle whose manifest lies about the component sizes.
	lying := *b
	lying.Manifest.Docs++
	var buf bytes.Buffer
	if _, err := lying.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Read(bytes.NewReader(buf.Bytes()))
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Errorf("manifest doc-count lie: got %v, want *FormatError", err)
	}

	lying = *b
	lying.Manifest.Locations--
	buf.Reset()
	if _, err := lying.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.As(err, &fe) {
		t.Errorf("manifest location-count lie: got %v, want *FormatError", err)
	}
}
