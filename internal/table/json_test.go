package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tbl := sample(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tbl.Name || got.NumRows() != tbl.NumRows() || got.NumCols() != tbl.NumCols() {
		t.Fatalf("shape differs after round trip")
	}
	// Column types survive exactly (unlike CSV re-inference).
	for j, c := range tbl.Columns {
		if got.Columns[j] != c {
			t.Errorf("column %d = %+v, want %+v", j, got.Columns[j], c)
		}
	}
	for i := 1; i <= tbl.NumRows(); i++ {
		for j := 1; j <= tbl.NumCols(); j++ {
			if got.Cell(i, j) != tbl.Cell(i, j) {
				t.Errorf("cell (%d,%d) differs", i, j)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`{"name":"x","columns":[],"rows":[]}`,
		`{"name":"x","columns":[{"header":"a","type":"Blob"}],"rows":[]}`,
		`{"name":"x","columns":[{"header":"a","type":"Text"}],"rows":[["1","2"]]}`,
		`{"name":"x","columns":[{"header":"a","type":"Text"}],"unknown":1}`,
	}
	for _, in := range bad {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q) accepted", in)
		}
	}
}

func TestParseColumnType(t *testing.T) {
	cases := map[string]ColumnType{
		"Text": Text, "text": Text, " TEXT ": Text, "": Text,
		"Number": Number, "Location": Location, "date": Date,
	}
	for in, want := range cases {
		got, err := ParseColumnType(in)
		if err != nil || got != want {
			t.Errorf("ParseColumnType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseColumnType("geo"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestColumnStats(t *testing.T) {
	tbl := New("s", Column{Header: "c", Type: Text})
	for _, v := range []string{"alpha", "alpha", "beta gamma delta", "", "  "} {
		if err := tbl.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	st := tbl.Stats(1)
	if st.NonEmpty != 3 || st.Empty != 2 {
		t.Errorf("counts = %+v", st)
	}
	if st.Distinct != 2 {
		t.Errorf("distinct = %d, want 2", st.Distinct)
	}
	if st.MaxWords != 3 {
		t.Errorf("max words = %d, want 3", st.MaxWords)
	}
	want := (1.0 + 1.0 + 3.0) / 3.0
	if st.MeanWords != want {
		t.Errorf("mean words = %v, want %v", st.MeanWords, want)
	}
}

func TestColumnStatsEmptyTable(t *testing.T) {
	tbl := New("s", Column{Header: "c", Type: Text})
	st := tbl.Stats(1)
	if st.NonEmpty != 0 || st.MeanWords != 0 {
		t.Errorf("empty table stats = %+v", st)
	}
}
