package table

import (
	"fmt"
	"html"
	"io"
	"strconv"
	"strings"
)

// ReadHTML parses the first <table> element of an HTML document into a
// Table. It is an ingestion-front reader in the spirit of ReadCSV: tolerant
// of the tag soup real web tables are written in rather than a validating
// parser. Specifically it
//
//   - takes the first top-level <table>; a <table> nested inside a cell is
//     flattened into that cell's text (its structure is presentational),
//   - honours implied closes (a new <td>/<tr> closes the open one) and
//     stray close tags,
//   - expands colspan (value in the first spanned column, empty cells in
//     the rest — the merged value belongs to its leading column) and
//     rowspan (value replicated into every spanned row — a vertically
//     merged cell states that value for each row),
//   - decodes character entities and collapses insignificant whitespace,
//   - skips <script>, <style> and comments,
//   - pads ragged rows to the widest row.
//
// The first row is the header row, whether or not it uses <th>, matching
// the CSV convention. Column types are inferred from the data, like
// ReadCSV. Callers that need the full messy-input cleanup (unicode
// normalization, duplicate/empty header repair, empty row and column drops)
// run the result through Normalize.
func ReadHTML(r io.Reader, name string) (*Table, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	p := &htmlTableParser{src: string(src)}
	p.run()
	if !p.sawTable {
		return nil, fmt.Errorf("table %q: no <table> element found", name)
	}
	if len(p.rows) == 0 {
		return nil, fmt.Errorf("table %q: table has no rows", name)
	}
	width := 0
	for _, row := range p.rows {
		if len(row) > width {
			width = len(row)
		}
	}
	if width == 0 {
		return nil, fmt.Errorf("table %q: table has no columns", name)
	}
	t := &Table{Name: name}
	for j := 0; j < width; j++ {
		h := ""
		if j < len(p.rows[0]) {
			h = p.rows[0][j]
		}
		t.Columns = append(t.Columns, Column{Header: h})
	}
	for _, row := range p.rows[1:] {
		cells := make([]string, width)
		copy(cells, row)
		t.Rows = append(t.Rows, cells)
	}
	for j := range t.Columns {
		t.Columns[j].Type = InferColumnType(t.ColumnValues(j + 1))
	}
	return t, nil
}

// spanCap bounds colspan/rowspan attribute values so a hostile span cannot
// inflate the grid quadratically past the input size.
const spanCap = 64

// maxHTMLCells bounds the total logical grid so fuzzed input cannot balloon
// memory; real tables are nowhere near it.
const maxHTMLCells = 1 << 22

// rowspanSlot is a column occupied by an earlier cell's rowspan: val is
// replicated into the next `left` rows.
type rowspanSlot struct {
	val  string
	left int
}

type htmlTableParser struct {
	src string
	pos int

	sawTable   bool
	tableDepth int // 1 = inside the target table, >1 = nested table
	done       bool

	rows  [][]string
	cur   []string
	inRow bool
	col   int
	slots []rowspanSlot

	inCell  bool
	cellBuf strings.Builder
	// pending spans of the cell currently being collected.
	cellColspan, cellRowspan int

	cells int // running logical cell count, checked against maxHTMLCells
}

func (p *htmlTableParser) run() {
	for p.pos < len(p.src) && !p.done {
		i := strings.IndexByte(p.src[p.pos:], '<')
		if i < 0 {
			p.text(p.src[p.pos:])
			break
		}
		p.text(p.src[p.pos : p.pos+i])
		p.pos += i
		p.tag()
	}
	// Unterminated table: flush whatever was open.
	if p.tableDepth > 0 {
		p.closeCell()
		p.closeRow()
	}
}

// text appends a text node to the open cell; text outside cells is
// insignificant and dropped.
func (p *htmlTableParser) text(s string) {
	if p.inCell && s != "" {
		p.cellBuf.WriteString(s)
	}
}

// tag consumes one markup construct starting at '<'.
func (p *htmlTableParser) tag() {
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		if end := strings.Index(rest, "-->"); end >= 0 {
			p.pos += end + 3
		} else {
			p.pos = len(p.src)
		}
		return
	case strings.HasPrefix(rest, "<!") || strings.HasPrefix(rest, "<?"):
		p.skipToGt()
		return
	}
	j := p.pos + 1
	closing := false
	if j < len(p.src) && p.src[j] == '/' {
		closing = true
		j++
	}
	nameStart := j
	for j < len(p.src) && isTagNameByte(p.src[j]) {
		j++
	}
	tagName := strings.ToLower(p.src[nameStart:j])
	if tagName == "" {
		// A bare '<' is cell text, not markup.
		p.text("<")
		p.pos++
		return
	}
	attrs := p.consumeAttrs(j)
	p.dispatch(tagName, closing, attrs)
}

func isTagNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// consumeAttrs advances pos past the tag's closing '>' (respecting quoted
// attribute values that contain '>') and returns the raw attribute text.
func (p *htmlTableParser) consumeAttrs(from int) string {
	i := from
	var quote byte
	for i < len(p.src) {
		c := p.src[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '>':
			attrs := p.src[from:i]
			p.pos = i + 1
			return attrs
		}
		i++
	}
	attrs := p.src[from:]
	p.pos = len(p.src)
	return attrs
}

func (p *htmlTableParser) skipToGt() {
	if end := strings.IndexByte(p.src[p.pos:], '>'); end >= 0 {
		p.pos += end + 1
	} else {
		p.pos = len(p.src)
	}
}

// skipRawText skips to the closing tag of a raw-text element (script/style),
// whose content is not markup.
func (p *htmlTableParser) skipRawText(tagName string) {
	low := strings.ToLower(p.src[p.pos:])
	if end := strings.Index(low, "</"+tagName); end >= 0 {
		p.pos += end
		p.skipToGt()
	} else {
		p.pos = len(p.src)
	}
}

func (p *htmlTableParser) dispatch(tagName string, closing bool, attrs string) {
	switch tagName {
	case "script", "style":
		if !closing {
			p.skipRawText(tagName)
		}
		return
	case "table":
		if closing {
			if p.tableDepth > 1 {
				p.tableDepth--
			} else if p.tableDepth == 1 {
				p.closeCell()
				p.closeRow()
				p.tableDepth = 0
				p.done = true // first table wins
			}
			return
		}
		if p.tableDepth > 0 {
			// Nested table: presentational, flattened into the cell.
			p.tableDepth++
			return
		}
		p.sawTable = true
		p.tableDepth = 1
		return
	}
	if p.tableDepth != 1 {
		// Outside any table, or inside a nested one: structure tags are
		// inert; keep a space so adjacent nested cells don't concatenate.
		if p.inCell && isSpacingTag(tagName) {
			p.text(" ")
		}
		return
	}
	switch tagName {
	case "tr":
		p.closeCell()
		p.closeRow()
		if !closing {
			p.startRow()
		}
	case "td", "th":
		p.closeCell()
		if !closing {
			if !p.inRow {
				p.startRow() // implied <tr>
			}
			p.inCell = true
			p.cellColspan = spanAttr(attrs, "colspan")
			p.cellRowspan = spanAttr(attrs, "rowspan")
		}
	default:
		if p.inCell && isSpacingTag(tagName) {
			p.text(" ")
		}
	}
}

// isSpacingTag lists the tags that visually separate text inside a cell; a
// space stands in for the break so "a<br>b" stays two words.
func isSpacingTag(tagName string) bool {
	switch tagName {
	case "br", "p", "div", "li", "tr", "td", "th":
		return true
	}
	return false
}

// spanAttr extracts a colspan/rowspan attribute value, clamped to
// [1, spanCap]; missing or malformed values mean 1.
func spanAttr(attrs, name string) int {
	low := strings.ToLower(attrs)
	i := 0
	for {
		k := strings.Index(low[i:], name)
		if k < 0 {
			return 1
		}
		i += k
		// Must be a standalone attribute name (reject data-colspan etc.).
		if i > 0 && (isTagNameByte(low[i-1]) || low[i-1] == '-') {
			i += len(name)
			continue
		}
		i += len(name)
		break
	}
	for i < len(attrs) && (attrs[i] == ' ' || attrs[i] == '\t' || attrs[i] == '\n' || attrs[i] == '\r') {
		i++
	}
	if i >= len(attrs) || attrs[i] != '=' {
		return 1
	}
	i++
	for i < len(attrs) && (attrs[i] == ' ' || attrs[i] == '\t' || attrs[i] == '\n' || attrs[i] == '\r') {
		i++
	}
	val := attrs[i:]
	if val != "" && (val[0] == '"' || val[0] == '\'') {
		q := val[0]
		val = val[1:]
		if end := strings.IndexByte(val, q); end >= 0 {
			val = val[:end]
		}
	} else {
		if end := strings.IndexAny(val, " \t\n\r"); end >= 0 {
			val = val[:end]
		}
	}
	n, err := strconv.Atoi(strings.TrimSpace(val))
	if err != nil || n < 1 {
		return 1
	}
	if n > spanCap {
		return spanCap
	}
	return n
}

func (p *htmlTableParser) startRow() {
	p.inRow = true
	p.cur = nil
	p.col = 0
	p.fillOccupied()
}

// fillOccupied materializes the columns at the cursor that are covered by an
// earlier row's rowspan, replicating the spanning value.
func (p *htmlTableParser) fillOccupied() {
	for p.col < len(p.slots) && p.slots[p.col].left > 0 {
		p.cur = append(p.cur, p.slots[p.col].val)
		p.slots[p.col].left--
		p.col++
		p.cells++
	}
}

// closeCell finalizes the open cell, expanding its column span and
// registering its row span.
func (p *htmlTableParser) closeCell() {
	if !p.inCell {
		return
	}
	p.inCell = false
	text := collapseSpace(html.UnescapeString(p.cellBuf.String()))
	p.cellBuf.Reset()
	cs, rs := p.cellColspan, p.cellRowspan
	if p.cells > maxHTMLCells {
		// Grid bound exceeded: drop the cell but keep parsing so the
		// error surfaces as a (bounded) malformed table, not an OOM.
		return
	}
	for k := 0; k < cs; k++ {
		v := ""
		if k == 0 {
			v = text
		}
		p.cur = append(p.cur, v)
		p.cells++
		if rs > 1 {
			for len(p.slots) <= p.col {
				p.slots = append(p.slots, rowspanSlot{})
			}
			p.slots[p.col] = rowspanSlot{val: v, left: rs - 1}
		}
		p.col++
		p.fillOccupied()
	}
}

func (p *htmlTableParser) closeRow() {
	if !p.inRow {
		return
	}
	p.fillOccupied()
	// Columns to the right of the last cell may still be rowspan-occupied.
	for c := p.col; c < len(p.slots); c++ {
		if p.slots[c].left > 0 {
			for p.col <= c {
				v := ""
				if p.col == c {
					v = p.slots[c].val
					p.slots[c].left--
				}
				p.cur = append(p.cur, v)
				p.col++
				p.cells++
			}
		}
	}
	p.inRow = false
	if len(p.cur) > 0 {
		p.rows = append(p.rows, p.cur)
	}
	p.cur = nil
	p.col = 0
}

// collapseSpace trims and collapses all unicode whitespace (including NBSP)
// to single spaces — HTML whitespace is presentational.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
