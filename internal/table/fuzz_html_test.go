package table

import (
	"strings"
	"testing"
)

// FuzzReadHTML checks HTML table extraction on arbitrary markup: a parse
// either fails cleanly or yields a rectangular table that Normalize accepts
// (or rejects cleanly), with parsing idempotent over its own normal form —
// a parsed table re-rendered as tidy HTML parses back to the same grid.
func FuzzReadHTML(f *testing.F) {
	for _, seed := range []string{
		"<table><tr><th>Name</th><th>City</th></tr><tr><td>Louvre</td><td>Paris</td></tr></table>",
		"<TABLE><TR><TD>a<TD>b<TR><TD>1<TD>2</TABLE>",
		"<table><tr><td colspan=2>wide</td></tr><tr><td>a</td><td>b</td></tr></table>",
		"<table><tr><td rowspan=\"3\">tall</td><td>x</td></tr><tr><td>y</td></tr></table>",
		"<table><tr><td><table><tr><td>nested</td></tr></table></td><td>p</td></tr></table>",
		"<table><tr><td>Caf&eacute;&nbsp;&amp; Bar</td><td>&#233;&#x00E9;</td></tr></table>",
		"<table><!-- <tr><td>ghost --><tr><td>h</td></tr></table>",
		"<table><tr><td><script>\"<td>\"</script>x</td></tr></table>",
		"<table><tr><td>unterminated",
		"<table><tr><td colspan=999999 rowspan=999999>bomb</td></tr></table>",
		"<table></table>",
		"no markup at all",
		"<table><tr><td colspan='2 onclick=x>a<td>b</table>",
		"< table><tr><td>not a tag</td></tr>",
		"<table><tbody><tr class=\"a b\" data-colspan=4><td>x</td></tr></tbody></table>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		t1, err := ReadHTML(strings.NewReader(data), "fuzz")
		if err != nil {
			return // rejected cleanly
		}
		if len(t1.Columns) == 0 {
			t.Fatalf("accepted HTML table with zero columns: %q", data)
		}
		for i, row := range t1.Rows {
			if len(row) != len(t1.Columns) {
				t.Fatalf("row %d has %d cells, want %d (input %q)", i, len(row), len(t1.Columns), data)
			}
		}
		// Normalize must accept or reject cleanly, never panic; its
		// output must be a fixed point.
		n1, err := Normalize(t1)
		if err != nil {
			return
		}
		n2, err := Normalize(n1)
		if err != nil {
			t.Fatalf("Normalize rejected its own output: %v (input %q)", err, data)
		}
		if len(n1.Columns) != len(n2.Columns) || len(n1.Rows) != len(n2.Rows) {
			t.Fatalf("Normalize not idempotent on dims (input %q)", data)
		}
		for j := range n1.Columns {
			if n1.Columns[j] != n2.Columns[j] {
				t.Fatalf("Normalize not idempotent on column %d: %+v vs %+v (input %q)", j, n1.Columns[j], n2.Columns[j], data)
			}
		}
		for i := range n1.Rows {
			for j := range n1.Rows[i] {
				if n1.Rows[i][j] != n2.Rows[i][j] {
					t.Fatalf("Normalize not idempotent on cell (%d,%d) (input %q)", i, j, data)
				}
			}
		}
		// Round trip: tidy re-render of the parsed grid parses back to
		// the same grid (cell text is already entity-decoded and
		// whitespace-collapsed, so tidy HTML is a normal form).
		var b strings.Builder
		b.WriteString("<table><tr>")
		for _, c := range t1.Columns {
			b.WriteString("<th>" + escapeCell(c.Header) + "</th>")
		}
		b.WriteString("</tr>")
		for _, row := range t1.Rows {
			b.WriteString("<tr>")
			for _, v := range row {
				b.WriteString("<td>" + escapeCell(v) + "</td>")
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table>")
		t2, err := ReadHTML(strings.NewReader(b.String()), "fuzz")
		if err != nil {
			t.Fatalf("re-read of rendered table failed: %v\nrendered: %q\ninput: %q", err, b.String(), data)
		}
		if len(t2.Columns) != len(t1.Columns) || len(t2.Rows) != len(t1.Rows) {
			t.Fatalf("HTML round trip changed dims: %dx%d -> %dx%d (input %q)",
				len(t1.Rows), len(t1.Columns), len(t2.Rows), len(t2.Columns), data)
		}
		for j := range t1.Columns {
			if t1.Columns[j].Header != t2.Columns[j].Header {
				t.Fatalf("HTML round trip changed header %d: %q -> %q (input %q)",
					j, t1.Columns[j].Header, t2.Columns[j].Header, data)
			}
		}
		for i := range t1.Rows {
			for j := range t1.Rows[i] {
				if t1.Rows[i][j] != t2.Rows[i][j] {
					t.Fatalf("HTML round trip changed cell (%d,%d): %q -> %q (input %q)",
						i, j, t1.Rows[i][j], t2.Rows[i][j], data)
				}
			}
		}
	})
}

// escapeCell escapes text for the round-trip rendering.
func escapeCell(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
