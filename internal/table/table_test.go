package table

import (
	"bytes"
	"strings"
	"testing"
)

func sample(t *testing.T) *Table {
	t.Helper()
	tbl := New("pois",
		Column{Header: "Name", Type: Text},
		Column{Header: "Address", Type: Location},
		Column{Header: "Visitors", Type: Number},
	)
	rows := [][]string{
		{"Musée du Louvre", "Rue de Rivoli, Paris", "9600000"},
		{"Metropolitan Museum of Art", "1000 Fifth Avenue, New York", "6200000"},
		{"Chez Panisse", "1517 Shattuck Avenue, Berkeley", "120000"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestCellOneBased(t *testing.T) {
	tbl := sample(t)
	if got := tbl.Cell(1, 1); got != "Musée du Louvre" {
		t.Errorf("Cell(1,1) = %q", got)
	}
	if got := tbl.Cell(3, 2); got != "1517 Shattuck Avenue, Berkeley" {
		t.Errorf("Cell(3,2) = %q", got)
	}
	if tbl.NumRows() != 3 || tbl.NumCols() != 3 {
		t.Errorf("dims = %dx%d, want 3x3", tbl.NumRows(), tbl.NumCols())
	}
}

func TestAppendRowRejectsRagged(t *testing.T) {
	tbl := sample(t)
	if err := tbl.AppendRow("only", "two"); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestColumnValuesAndTypeIndexes(t *testing.T) {
	tbl := sample(t)
	vals := tbl.ColumnValues(1)
	if len(vals) != 3 || vals[2] != "Chez Panisse" {
		t.Errorf("ColumnValues(1) = %v", vals)
	}
	locs := tbl.ColumnIndexesOfType(Location)
	if len(locs) != 1 || locs[0] != 2 {
		t.Errorf("Location columns = %v, want [2]", locs)
	}
}

func TestInferColumnType(t *testing.T) {
	cases := []struct {
		vals []string
		want ColumnType
	}{
		{[]string{"12", "34.5", "1,000"}, Number},
		{[]string{"2021-03-18", "12/31/2020", "March 18, 2013"}, Date},
		{[]string{"12 Main Street", "Oak Avenue, Springfield", "5 Park Road"}, Location},
		{[]string{"48.8566, 2.3522", "40.7128, -74.0060"}, Location},
		{[]string{"Louvre", "Uffizi", "Prado"}, Text},
		{[]string{"", "", ""}, Text},
		{[]string{"12", "hello", "world", "foo"}, Text}, // below threshold
	}
	for _, c := range cases {
		if got := InferColumnType(c.vals); got != c.want {
			t.Errorf("InferColumnType(%v) = %v, want %v", c.vals, got, c.want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sample(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "pois")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() || got.NumCols() != tbl.NumCols() {
		t.Fatalf("round trip dims differ")
	}
	for i := 1; i <= tbl.NumRows(); i++ {
		for j := 1; j <= tbl.NumCols(); j++ {
			if got.Cell(i, j) != tbl.Cell(i, j) {
				t.Errorf("cell (%d,%d) = %q, want %q", i, j, got.Cell(i, j), tbl.Cell(i, j))
			}
		}
	}
	// Types re-inferred from data.
	if got.Columns[1].Type != Location {
		t.Errorf("address column inferred as %v, want Location", got.Columns[1].Type)
	}
	if got.Columns[2].Type != Number {
		t.Errorf("visitors column inferred as %v, want Number", got.Columns[2].Type)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestReadCSVRagged(t *testing.T) {
	// Short rows are padded to the widest record; columns beyond the
	// header's width get empty headers for Normalize to repair.
	tbl, err := ReadCSV(strings.NewReader("a,b\n1\n2,3,4\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumCols() != 3 || tbl.NumRows() != 2 {
		t.Fatalf("dims = %dx%d, want 2x3", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Columns[2].Header != "" {
		t.Errorf("extra column header = %q, want empty", tbl.Columns[2].Header)
	}
	if got := tbl.Cell(1, 2); got != "" {
		t.Errorf("padded cell = %q, want empty", got)
	}
	if got := tbl.Cell(2, 3); got != "4" {
		t.Errorf("Cell(2,3) = %q, want 4", got)
	}
}

func TestStoreAddGetDuplicate(t *testing.T) {
	s := NewStore()
	tbl := sample(t)
	if err := s.Add(tbl); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(tbl); err == nil {
		t.Error("duplicate table name accepted")
	}
	got, ok := s.Get("pois")
	if !ok || got != tbl {
		t.Error("Get failed")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreSearch(t *testing.T) {
	s := NewStore()
	if err := s.Add(sample(t)); err != nil {
		t.Fatal(err)
	}
	other := New("films", Column{Header: "Title", Type: Text})
	if err := other.AppendRow("The Last Empire"); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(other); err != nil {
		t.Fatal(err)
	}

	hits := s.Search("museum")
	if len(hits) != 1 || hits[0].Name != "pois" {
		t.Errorf("Search(museum) = %v tables", len(hits))
	}
	// Stemming: "museums" matches "Museum".
	if hits := s.Search("museums"); len(hits) != 1 {
		t.Errorf("stemmed search failed: %d hits", len(hits))
	}
	// AND semantics.
	if hits := s.Search("museum empire"); len(hits) != 0 {
		t.Errorf("AND search should be empty, got %d", len(hits))
	}
	if hits := s.Search(""); hits != nil {
		t.Errorf("empty query should return nil")
	}
	if hits := s.Search("zzzznope"); hits != nil {
		t.Errorf("unknown term should return nil")
	}
}

func TestStoreSelect(t *testing.T) {
	s := NewStore()
	if err := s.Add(sample(t)); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Select("pois", func(row []string) bool {
		return strings.Contains(row[1], "Paris")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "Musée du Louvre" {
		t.Errorf("Select returned %v", rows)
	}
	all, err := s.Select("pois", nil)
	if err != nil || len(all) != 3 {
		t.Errorf("Select(nil) = %d rows, err %v", len(all), err)
	}
	if _, err := s.Select("missing", nil); err == nil {
		t.Error("Select on missing table should error")
	}
	// Mutating returned rows must not corrupt the table.
	all[0][0] = "CORRUPTED"
	tbl, _ := s.Get("pois")
	if tbl.Cell(1, 1) == "CORRUPTED" {
		t.Error("Select rows alias the table storage")
	}
}
