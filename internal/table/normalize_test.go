package table

import (
	"strings"
	"testing"
)

func TestNormalizeNFCAndWhitespace(t *testing.T) {
	in := New("t", Column{Header: "Name"}, Column{Header: "City"})
	// NFD: "Musée" spelled with a combining acute accent.
	if err := in.AppendRow("Musée  du\tLouvre", " Paris "); err != nil {
		t.Fatal(err)
	}
	out, err := Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Cell(1, 1); got != "Musée du Louvre" {
		t.Errorf("cell = %q, want %q", got, "Musée du Louvre")
	}
	if got := out.Cell(1, 2); got != "Paris" {
		t.Errorf("cell = %q, want %q", got, "Paris")
	}
	// Input not mutated.
	if in.Cell(1, 1) != "Musée  du\tLouvre" {
		t.Error("Normalize mutated its input")
	}
}

func TestNormalizeDropsEmptyRowsAndColumns(t *testing.T) {
	in := New("t", Column{Header: "a"}, Column{Header: ""}, Column{Header: "b"})
	for _, row := range [][]string{
		{"1", "", "2"},
		{"", "", ""}, // blank separator row
		{"3", "", "4"},
	} {
		if err := in.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.NumCols() != 2 {
		t.Fatalf("dims = %dx%d, want 2x2", out.NumRows(), out.NumCols())
	}
	if out.Cell(2, 2) != "4" {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestNormalizeKeepsEmptyHeaderWithData(t *testing.T) {
	in := New("t", Column{Header: "a"}, Column{Header: ""})
	if err := in.AppendRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	out, err := Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 2 {
		t.Fatalf("cols = %d, want 2", out.NumCols())
	}
	if got := out.Columns[1].Header; got != "column_2" {
		t.Errorf("filled header = %q, want column_2", got)
	}
}

func TestNormalizeDedupesHeaders(t *testing.T) {
	in := New("t", Column{Header: "Name"}, Column{Header: "name"}, Column{Header: "NAME"})
	if err := in.AppendRow("a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	out, err := Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{out.Columns[0].Header, out.Columns[1].Header, out.Columns[2].Header}
	want := []string{"Name", "name (2)", "NAME (3)"}
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("header[%d] = %q, want %q", j, got[j], want[j])
		}
	}
}

func TestNormalizeReinfersTypes(t *testing.T) {
	in := New("t", Column{Header: "n", Type: Text})
	for _, v := range []string{"1", "2", "3"} {
		if err := in.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Columns[0].Type != Number {
		t.Errorf("type = %v, want Number", out.Columns[0].Type)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	in := New("t", Column{Header: "Name"}, Column{Header: "name"}, Column{Header: ""})
	for _, row := range [][]string{
		{"Café", "x", "1"},
		{"", "", ""},
	} {
		if err := in.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	once, err := Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Normalize(once)
	if err != nil {
		t.Fatal(err)
	}
	if len(once.Columns) != len(twice.Columns) || len(once.Rows) != len(twice.Rows) {
		t.Fatalf("dims changed on second pass")
	}
	for j := range once.Columns {
		if once.Columns[j] != twice.Columns[j] {
			t.Errorf("column %d changed: %v vs %v", j, once.Columns[j], twice.Columns[j])
		}
	}
	for i := range once.Rows {
		for j := range once.Rows[i] {
			if once.Rows[i][j] != twice.Rows[i][j] {
				t.Errorf("cell (%d,%d) changed", i, j)
			}
		}
	}
}

func TestNormalizeAllEmptyErrors(t *testing.T) {
	in := New("t", Column{Header: ""}, Column{Header: ""})
	if err := in.AppendRow("", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(in); err == nil {
		t.Error("fully empty table normalized without error")
	}
}

func TestNormalizeMessyHTMLEqualsCleanCSV(t *testing.T) {
	// The tentpole invariant in miniature: a messy HTML rendering of a
	// table normalizes to the same logical table as its clean CSV twin.
	clean := "Name,Address\nCafé Central,12 Oak Street\nMusée d'Orsay,5 Rue de Lille\n"
	messy := `<table>
		<TR><TH>Name</TH><TH>Address</TH><TH></TH></TR>
		<tr><td>Cafe&#769; Central</td><td>12  Oak&nbsp;Street</td><td></td></tr>
		<tr><td></td><td></td><td></td></tr>
		<tr><td>Muse&eacute;e d&#39;Orsay</td><td>5 Rue de Lille</td></tr>
	</table>`
	// The NFD combining accent above is deliberate; "Muse&eacute;e" is not
	// — build the messy cell from the entity for é directly.
	messy = strings.Replace(messy, "Muse&eacute;e", "Mus&eacute;e", 1)

	ct, err := ReadCSV(strings.NewReader(clean), "twins")
	if err != nil {
		t.Fatal(err)
	}
	cn, err := Normalize(ct)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := ReadHTML(strings.NewReader(messy), "twins")
	if err != nil {
		t.Fatal(err)
	}
	mn, err := Normalize(mt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cn.Columns) != len(mn.Columns) || len(cn.Rows) != len(mn.Rows) {
		t.Fatalf("dims differ: csv %dx%d html %dx%d", cn.NumRows(), cn.NumCols(), mn.NumRows(), mn.NumCols())
	}
	for j := range cn.Columns {
		if cn.Columns[j] != mn.Columns[j] {
			t.Errorf("column %d: csv %v html %v", j, cn.Columns[j], mn.Columns[j])
		}
	}
	for i := range cn.Rows {
		for j := range cn.Rows[i] {
			if cn.Rows[i][j] != mn.Rows[i][j] {
				t.Errorf("cell (%d,%d): csv %q html %q", i, j, cn.Rows[i][j], mn.Rows[i][j])
			}
		}
	}
}
