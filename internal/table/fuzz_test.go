package table

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadCSV checks CSV table parsing on arbitrary input: a parse either
// fails cleanly or yields a rectangular table whose serialized form is
// stable (write → read → write reproduces the same bytes — the first parse
// may normalize line endings and quoting, but the normal form must be a
// fixed point).
func FuzzReadCSV(f *testing.F) {
	for _, seed := range []string{
		"Name,City\nLouvre,Paris\nMelisse,Santa Monica\n",
		"Name\n\"quoted, cell\"\n",
		"a,b\n1,2\n3,4\n",
		"only a header\n",
		"",
		"h1,h2\nshort row\n",
		"\"unterminated\nName,City\n",
		"h\n\"embedded \"\"quotes\"\"\"\n",
		"h1,h2\ncr\rcell,x\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		t1, err := ReadCSV(strings.NewReader(data), "fuzz")
		if err != nil {
			return // rejected cleanly
		}
		if len(t1.Columns) == 0 {
			t.Fatalf("accepted CSV with zero columns: %q", data)
		}
		for i, row := range t1.Rows {
			if len(row) != len(t1.Columns) {
				t.Fatalf("row %d has %d cells, want %d (input %q)", i, len(row), len(t1.Columns), data)
			}
		}
		var buf1 bytes.Buffer
		if err := WriteCSV(&buf1, t1); err != nil {
			t.Fatalf("write of parsed table failed: %v (input %q)", err, data)
		}
		t2, err := ReadCSV(bytes.NewReader(buf1.Bytes()), "fuzz")
		if err != nil {
			t.Fatalf("re-read of written table failed: %v\nwritten: %q\ninput: %q", err, buf1.String(), data)
		}
		var buf2 bytes.Buffer
		if err := WriteCSV(&buf2, t2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("CSV serialization not a fixed point:\nfirst:  %q\nsecond: %q\ninput: %q", buf1.String(), buf2.String(), data)
		}
	})
}

// FuzzReadJSON checks the JSON interchange format: a parse either fails
// cleanly or round-trips losslessly (the format carries explicit types, so
// unlike CSV no inference or normalization is involved).
func FuzzReadJSON(f *testing.F) {
	for _, seed := range []string{
		`{"name":"pois","columns":[{"header":"Name","type":"Text"}],"rows":[["Louvre"]]}`,
		`{"name":"t","columns":[{"header":"a","type":"Number"},{"header":"b","type":"Date"}],"rows":[["1","2020-01-01"]]}`,
		`{"name":"empty","columns":[{"header":"h","type":"Location"}],"rows":[]}`,
		`{"columns":[{"header":"","type":""}]}`,
		`{"name":"bad","columns":[],"rows":[]}`,
		`{"name":"widths","columns":[{"header":"a","type":"Text"}],"rows":[["x","y"]]}`,
		`not json at all`,
		`{}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		t1, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		if len(t1.Columns) == 0 {
			t.Fatalf("accepted table with zero columns: %q", data)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, t1); err != nil {
			t.Fatalf("write of parsed table failed: %v (input %q)", err, data)
		}
		t2, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written table failed: %v\nwritten: %q\ninput: %q", err, buf.String(), data)
		}
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("JSON round trip not lossless:\nfirst:  %+v\nsecond: %+v\ninput: %q", t1, t2, data)
		}
	})
}
