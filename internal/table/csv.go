package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// ReadCSV parses a table from CSV. The first record is the header row.
// Column types are inferred from the data (see InferColumnType), since plain
// CSV — unlike GFT — carries no type metadata.
//
// Ragged input is tolerated: the table is as wide as its widest record,
// short records are padded with empty cells, and columns past the header's
// width get empty headers (Normalize repairs those). Real exported CSVs
// routinely drop trailing empty fields, and rejecting them would push every
// caller into writing its own pre-pass.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table %q: empty CSV", name)
	}
	width := 0
	for _, rec := range records {
		if len(rec) > width {
			width = len(rec)
		}
	}
	header := records[0]
	t := &Table{Name: name}
	for j := 0; j < width; j++ {
		h := ""
		if j < len(header) {
			h = strings.TrimSpace(header[j])
		}
		t.Columns = append(t.Columns, Column{Header: h})
	}
	for _, rec := range records[1:] {
		row := make([]string, width)
		for j, c := range rec {
			row[j] = strings.TrimSpace(c)
		}
		t.Rows = append(t.Rows, row)
	}
	for j := range t.Columns {
		t.Columns[j].Type = InferColumnType(t.ColumnValues(j + 1))
	}
	return t, nil
}

// WriteCSV emits the table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		header[j] = c.Header
	}
	if err := writeRecord(cw, w, header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRecord(cw, w, row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeRecord writes one CSV record. A record holding a single empty field
// would serialize as a blank line, which encoding/csv silently skips on
// re-read — losing the row (or the whole header). Force the quoted empty
// field instead (found by FuzzReadCSV).
func writeRecord(cw *csv.Writer, w io.Writer, rec []string) error {
	if len(rec) == 1 && rec[0] == "" {
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		_, err := io.WriteString(w, "\"\"\n")
		return err
	}
	return cw.Write(rec)
}

var (
	dateRe = regexp.MustCompile(`^(\d{4}-\d{2}-\d{2}|\d{1,2}/\d{1,2}/\d{2,4}|(January|February|March|April|May|June|July|August|September|October|November|December)\s+\d{1,2},?\s+\d{4})$`)
	// streetSuffixRe recognises address-like cells by their street
	// designator.
	streetSuffixRe = regexp.MustCompile(`(?i)\b(street|avenue|ave|road|lane|boulevard|blvd|drive|way|court|place|plaza|st|rd)\b`)
	coordRe        = regexp.MustCompile(`^-?\d{1,3}\.\d+[, ]\s*-?\d{1,3}\.\d+$`)
)

// InferColumnType guesses a GFT type for a column from its values: a column
// is typed Number/Date/Location when at least 60% of its non-empty cells look
// like that type, Text otherwise.
func InferColumnType(values []string) ColumnType {
	var n, numbers, dates, locations int
	for _, v := range values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		n++
		if _, err := strconv.ParseFloat(strings.ReplaceAll(v, ",", ""), 64); err == nil {
			numbers++
			continue
		}
		if dateRe.MatchString(v) {
			dates++
			continue
		}
		if coordRe.MatchString(v) || streetSuffixRe.MatchString(v) {
			locations++
		}
	}
	if n == 0 {
		return Text
	}
	threshold := (n*6 + 9) / 10 // ceil(0.6*n)
	switch {
	case numbers >= threshold:
		return Number
	case dates >= threshold:
		return Date
	case locations >= threshold:
		return Location
	}
	return Text
}
