package table

import (
	"fmt"
	"strings"

	"repro/internal/textproc"
)

// Normalize repairs the messy-input artifacts that survive the tolerant
// readers (ReadCSV, ReadHTML) and returns a clean logical table:
//
//   - cell and header text is composed to NFC and has its whitespace
//     collapsed, so NFD ("e" + combining acute) and NFC ("é") spellings of
//     the same value annotate identically,
//   - rows whose every cell is empty are dropped (blank separator rows),
//   - columns with an empty header and no data are dropped (artifacts of
//     trailing delimiters and colspan padding),
//   - remaining empty headers are filled with "column_N" (1-based position
//     in the normalized table),
//   - duplicate headers are deduplicated case-insensitively with a " (k)"
//     suffix,
//   - column types are re-inferred from the cleaned data.
//
// The input is not mutated, and the transform is idempotent: normalizing a
// normalized table returns an equal table. A table that loses every column
// is an error — there is nothing left to annotate.
func Normalize(t *Table) (*Table, error) {
	width := len(t.Columns)
	headers := make([]string, width)
	for j, c := range t.Columns {
		headers[j] = cleanCell(c.Header)
	}
	var rows [][]string
	for _, row := range t.Rows {
		cells := make([]string, width)
		empty := true
		for j := 0; j < width && j < len(row); j++ {
			cells[j] = cleanCell(row[j])
			if cells[j] != "" {
				empty = false
			}
		}
		if !empty {
			rows = append(rows, cells)
		}
	}

	// A column is kept if it has a header or any data.
	keep := make([]int, 0, width)
	for j := 0; j < width; j++ {
		if headers[j] != "" {
			keep = append(keep, j)
			continue
		}
		for _, row := range rows {
			if row[j] != "" {
				keep = append(keep, j)
				break
			}
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("table %q: no columns survive normalization", t.Name)
	}

	out := &Table{Name: t.Name}
	seen := make(map[string]bool, len(keep))
	for nj, j := range keep {
		h := headers[j]
		if h == "" {
			h = fmt.Sprintf("column_%d", nj+1)
		}
		if key := strings.ToLower(h); seen[key] {
			base := h
			for k := 2; ; k++ {
				h = fmt.Sprintf("%s (%d)", base, k)
				if !seen[strings.ToLower(h)] {
					break
				}
			}
		}
		seen[strings.ToLower(h)] = true
		out.Columns = append(out.Columns, Column{Header: h})
	}
	for _, row := range rows {
		cells := make([]string, len(keep))
		for nj, j := range keep {
			cells[nj] = row[j]
		}
		out.Rows = append(out.Rows, cells)
	}
	for j := range out.Columns {
		out.Columns[j].Type = InferColumnType(out.ColumnValues(j + 1))
	}
	return out, nil
}

// cleanCell is the per-cell text normalization: NFC composition plus
// whitespace collapse (strings.Fields also absorbs NBSP and tabs).
func cleanCell(s string) string {
	return strings.Join(strings.Fields(textproc.ComposeNFC(s)), " ")
}
