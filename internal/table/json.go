package table

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// JSON interchange format. Unlike CSV, it carries the GFT column types
// explicitly, mirroring what the GFT API returns for a table's schema; a
// table round-trips losslessly.
//
//	{
//	  "name": "pois",
//	  "columns": [{"header": "Name", "type": "Text"}, ...],
//	  "rows": [["Musée du Louvre", ...], ...]
//	}

type tableJSON struct {
	Name    string       `json:"name"`
	Columns []columnJSON `json:"columns"`
	Rows    [][]string   `json:"rows"`
}

type columnJSON struct {
	Header string `json:"header"`
	Type   string `json:"type"`
}

// WriteJSON serialises the table.
func WriteJSON(w io.Writer, t *Table) error {
	out := tableJSON{Name: t.Name, Rows: t.Rows}
	for _, c := range t.Columns {
		out.Columns = append(out.Columns, columnJSON{Header: c.Header, Type: c.Type.String()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a table, validating column types and row widths.
func ReadJSON(r io.Reader) (*Table, error) {
	var in tableJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("table json: %w", err)
	}
	if len(in.Columns) == 0 {
		return nil, fmt.Errorf("table json: table %q has no columns", in.Name)
	}
	t := &Table{Name: in.Name}
	for i, c := range in.Columns {
		ct, err := ParseColumnType(c.Type)
		if err != nil {
			return nil, fmt.Errorf("table json: column %d: %w", i, err)
		}
		t.Columns = append(t.Columns, Column{Header: c.Header, Type: ct})
	}
	for i, row := range in.Rows {
		if err := t.AppendRow(row...); err != nil {
			return nil, fmt.Errorf("table json: row %d: %w", i, err)
		}
	}
	return t, nil
}

// ParseColumnType parses a GFT type name ("Text", "Number", "Location",
// "Date"), case-insensitively.
func ParseColumnType(s string) (ColumnType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "":
		return Text, nil
	case "number":
		return Number, nil
	case "location":
		return Location, nil
	case "date":
		return Date, nil
	}
	return Text, fmt.Errorf("unknown column type %q", s)
}

// ColumnStats summarises one column's content; the annotator's diagnostics
// use it to explain pre-processing decisions.
type ColumnStats struct {
	NonEmpty  int
	Empty     int
	Distinct  int
	MaxWords  int
	MeanWords float64
}

// Stats computes the statistics of 1-based column j.
func (t *Table) Stats(j int) ColumnStats {
	var st ColumnStats
	distinct := map[string]struct{}{}
	totalWords := 0
	for i := 1; i <= t.NumRows(); i++ {
		cell := strings.TrimSpace(t.Cell(i, j))
		if cell == "" {
			st.Empty++
			continue
		}
		st.NonEmpty++
		distinct[strings.ToLower(cell)] = struct{}{}
		words := len(strings.Fields(cell))
		totalWords += words
		if words > st.MaxWords {
			st.MaxWords = words
		}
	}
	st.Distinct = len(distinct)
	if st.NonEmpty > 0 {
		st.MeanWords = float64(totalWords) / float64(st.NonEmpty)
	}
	return st
}
