package table

import (
	"strings"
	"testing"
)

func readHTML(t *testing.T, src string) *Table {
	t.Helper()
	tbl, err := ReadHTML(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestReadHTMLBasic(t *testing.T) {
	tbl := readHTML(t, `
		<html><body>
		<table>
		  <tr><th>Name</th><th>Address</th></tr>
		  <tr><td>Chez Panisse</td><td>1517 Shattuck Avenue</td></tr>
		  <tr><td>Louvre</td><td>99 Rivoli Street</td></tr>
		</table>
		</body></html>`)
	if tbl.NumRows() != 2 || tbl.NumCols() != 2 {
		t.Fatalf("dims = %dx%d, want 2x2", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Columns[0].Header != "Name" || tbl.Columns[1].Header != "Address" {
		t.Errorf("headers = %q, %q", tbl.Columns[0].Header, tbl.Columns[1].Header)
	}
	if got := tbl.Cell(1, 1); got != "Chez Panisse" {
		t.Errorf("Cell(1,1) = %q", got)
	}
	if tbl.Columns[1].Type != Location {
		t.Errorf("address column type = %v, want Location", tbl.Columns[1].Type)
	}
}

func TestReadHTMLImpliedClosesAndCase(t *testing.T) {
	// No </td>, no </tr>, mixed-case tags, thead/tbody wrappers.
	tbl := readHTML(t, `<TABLE><thead><TR><TD>a<TD>b</thead><tbody><tr><td>1<td>2<tr><td>3<td>4</tbody></TABLE>`)
	if tbl.NumRows() != 2 || tbl.NumCols() != 2 {
		t.Fatalf("dims = %dx%d, want 2x2", tbl.NumRows(), tbl.NumCols())
	}
	if got := tbl.Cell(2, 2); got != "4" {
		t.Errorf("Cell(2,2) = %q", got)
	}
}

func TestReadHTMLEntitiesAndWhitespace(t *testing.T) {
	tbl := readHTML(t, "<table><tr><td>h</td></tr><tr><td>Caf&eacute;&nbsp;&amp;\n\t Bar</td></tr></table>")
	if got := tbl.Cell(1, 1); got != "Café & Bar" {
		t.Errorf("cell = %q, want %q", got, "Café & Bar")
	}
}

func TestReadHTMLColspan(t *testing.T) {
	// Colspan puts the value in the leading column and empties in the rest.
	tbl := readHTML(t, `<table>
		<tr><td>a</td><td>b</td><td>c</td></tr>
		<tr><td colspan="2">wide</td><td>x</td></tr>
	</table>`)
	if tbl.NumCols() != 3 {
		t.Fatalf("cols = %d, want 3", tbl.NumCols())
	}
	if tbl.Cell(1, 1) != "wide" || tbl.Cell(1, 2) != "" || tbl.Cell(1, 3) != "x" {
		t.Errorf("row = %v", tbl.Rows[0])
	}
}

func TestReadHTMLRowspan(t *testing.T) {
	// Rowspan replicates the value into each spanned row.
	tbl := readHTML(t, `<table>
		<tr><td>city</td><td>name</td></tr>
		<tr><td rowspan=3>Springfield</td><td>a</td></tr>
		<tr><td>b</td></tr>
		<tr><td>c</td></tr>
		<tr><td>Shelbyville</td><td>d</td></tr>
	</table>`)
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", tbl.NumRows())
	}
	for i := 1; i <= 3; i++ {
		if got := tbl.Cell(i, 1); got != "Springfield" {
			t.Errorf("Cell(%d,1) = %q, want Springfield", i, got)
		}
	}
	if tbl.Cell(4, 1) != "Shelbyville" || tbl.Cell(3, 2) != "c" {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestReadHTMLNestedTableFlattens(t *testing.T) {
	tbl := readHTML(t, `<table>
		<tr><td>h1</td><td>h2</td></tr>
		<tr><td><table><tr><td>inner1</td><td>inner2</td></tr></table></td><td>plain</td></tr>
	</table>`)
	if tbl.NumRows() != 1 || tbl.NumCols() != 2 {
		t.Fatalf("dims = %dx%d, want 1x2", tbl.NumRows(), tbl.NumCols())
	}
	if got := tbl.Cell(1, 1); got != "inner1 inner2" {
		t.Errorf("nested cell = %q, want %q", got, "inner1 inner2")
	}
}

func TestReadHTMLFirstTableWins(t *testing.T) {
	tbl := readHTML(t, `<table><tr><td>h</td></tr><tr><td>first</td></tr></table>
		<table><tr><td>h</td></tr><tr><td>second</td></tr></table>`)
	if got := tbl.Cell(1, 1); got != "first" {
		t.Errorf("cell = %q, want first", got)
	}
}

func TestReadHTMLSkipsScriptStyleComments(t *testing.T) {
	tbl := readHTML(t, `<table>
		<!-- <tr><td>ghost</td></tr> -->
		<tr><td>h</td></tr>
		<tr><td><script>var x = "<td>no</td>";</script>real<style>td { color: red }</style></td></tr>
	</table>`)
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", tbl.NumRows())
	}
	if got := tbl.Cell(1, 1); got != "real" {
		t.Errorf("cell = %q, want real", got)
	}
}

func TestReadHTMLRaggedPadded(t *testing.T) {
	tbl := readHTML(t, `<table>
		<tr><td>a</td></tr>
		<tr><td>1</td><td>2</td><td>3</td></tr>
	</table>`)
	if tbl.NumCols() != 3 {
		t.Fatalf("cols = %d, want 3", tbl.NumCols())
	}
	if tbl.Cell(1, 3) != "3" {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestReadHTMLBreakTagsSpace(t *testing.T) {
	tbl := readHTML(t, `<table><tr><td>h</td></tr><tr><td>1517<br>Shattuck</td></tr></table>`)
	if got := tbl.Cell(1, 1); got != "1517 Shattuck" {
		t.Errorf("cell = %q, want %q", got, "1517 Shattuck")
	}
}

func TestReadHTMLUnterminated(t *testing.T) {
	// Truncated document: the open row and cell still flush.
	tbl := readHTML(t, `<table><tr><td>h</td></tr><tr><td>tail`)
	if tbl.NumRows() != 1 || tbl.Cell(1, 1) != "tail" {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestReadHTMLErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<p>no table here</p>",
		"<table></table>",
		"<table><tr></tr></table>",
	} {
		if _, err := ReadHTML(strings.NewReader(src), "x"); err == nil {
			t.Errorf("ReadHTML(%q) accepted", src)
		}
	}
}

func TestSpanAttr(t *testing.T) {
	cases := []struct {
		attrs string
		name  string
		want  int
	}{
		{` colspan="2"`, "colspan", 2},
		{` colspan=3`, "colspan", 3},
		{` COLSPAN='4'`, "colspan", 4},
		{` rowspan = 5 class=x`, "rowspan", 5},
		{` class=x`, "colspan", 1},
		{` colspan="abc"`, "colspan", 1},
		{` colspan="0"`, "colspan", 1},
		{` colspan="-3"`, "colspan", 1},
		{` colspan="999999"`, "colspan", spanCap},
		{` data-colspan="7"`, "colspan", 1}, // not a standalone attribute
		{` colspan`, "colspan", 1},
	}
	for _, c := range cases {
		if got := spanAttr(c.attrs, c.name); got != c.want {
			t.Errorf("spanAttr(%q, %q) = %d, want %d", c.attrs, c.name, got, c.want)
		}
	}
}
