package table

import (
	"fmt"
	"sort"

	"repro/internal/textproc"
)

// Store is an indexed table repository standing in for the GFT service: it
// keeps tables, maintains a keyword index over their names, headers and cell
// content ("GFT maintains an index which favours the retrieval of tables
// that contain information on specific types of POIs", §1), and answers
// simple SQL-ish row selections like the GFT query API.
type Store struct {
	tables []*Table
	byName map[string]int
	index  map[string]map[int]struct{} // stemmed term -> set of table ids
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byName: map[string]int{}, index: map[string]map[int]struct{}{}}
}

// Add registers a table; it returns an error when a table with the same name
// already exists.
func (s *Store) Add(t *Table) error {
	if _, dup := s.byName[t.Name]; dup {
		return fmt.Errorf("store: duplicate table %q", t.Name)
	}
	id := len(s.tables)
	s.tables = append(s.tables, t)
	s.byName[t.Name] = id
	post := func(text string) {
		for _, term := range textproc.NormalizeTokens(text) {
			set := s.index[term]
			if set == nil {
				set = map[int]struct{}{}
				s.index[term] = set
			}
			set[id] = struct{}{}
		}
	}
	post(t.Name)
	for _, c := range t.Columns {
		post(c.Header)
	}
	for _, row := range t.Rows {
		for _, cell := range row {
			post(cell)
		}
	}
	return nil
}

// Len returns the number of stored tables.
func (s *Store) Len() int { return len(s.tables) }

// Get retrieves a table by name.
func (s *Store) Get(name string) (*Table, bool) {
	id, ok := s.byName[name]
	if !ok {
		return nil, false
	}
	return s.tables[id], true
}

// All returns every stored table in insertion order.
func (s *Store) All() []*Table {
	return append([]*Table(nil), s.tables...)
}

// Search returns the tables matching every keyword (AND semantics, stemmed),
// in insertion order — the index-backed retrieval the paper uses to find
// candidate tables per POI type.
func (s *Store) Search(keywords string) []*Table {
	terms := textproc.NormalizeTokens(keywords)
	if len(terms) == 0 {
		return nil
	}
	var ids map[int]struct{}
	for _, term := range terms {
		set := s.index[term]
		if len(set) == 0 {
			return nil
		}
		if ids == nil {
			ids = make(map[int]struct{}, len(set))
			for id := range set {
				ids[id] = struct{}{}
			}
			continue
		}
		for id := range ids {
			if _, ok := set[id]; !ok {
				delete(ids, id)
			}
		}
	}
	sorted := make([]int, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Ints(sorted)
	out := make([]*Table, len(sorted))
	for i, id := range sorted {
		out[i] = s.tables[id]
	}
	return out
}

// Select returns the rows of the named table for which where returns true —
// the moral equivalent of GFT's "SELECT * FROM t WHERE ...". A nil predicate
// selects every row.
func (s *Store) Select(name string, where func(row []string) bool) ([][]string, error) {
	t, ok := s.Get(name)
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	var out [][]string
	for _, row := range t.Rows {
		if where == nil || where(row) {
			out = append(out, append([]string(nil), row...))
		}
	}
	return out, nil
}
