// Package table models Google-Fusion-Tables-style tables (§3): a flat n×m
// grid — no column ever branches into subcolumns — where every column carries
// one of the four GFT types (Text, Number, Location, Date). The package also
// provides CSV input/output, column-type inference for tables arriving
// without type information, and an indexed Store playing the role of the GFT
// service: keyword retrieval plus an SQL-ish row filter, like the GFT API.
package table

import "fmt"

// ColumnType is a GFT column type.
type ColumnType int

// The four GFT column types.
const (
	Text ColumnType = iota
	Number
	Location
	Date
)

// String returns the GFT display name of the type.
func (ct ColumnType) String() string {
	switch ct {
	case Text:
		return "Text"
	case Number:
		return "Number"
	case Location:
		return "Location"
	case Date:
		return "Date"
	}
	return fmt.Sprintf("ColumnType(%d)", int(ct))
}

// Column is one table column: a header plus a GFT type.
type Column struct {
	Header string
	Type   ColumnType
}

// Table is a GFT-style table. Rows hold the cell values; every row has
// exactly len(Columns) cells.
type Table struct {
	Name    string
	Columns []Column
	Rows    [][]string
}

// New creates an empty table with the given columns.
func New(name string, cols ...Column) *Table {
	return &Table{Name: name, Columns: cols}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// AppendRow adds a row; it returns an error when the cell count does not
// match the column count, since GFT tables are strictly rectangular.
func (t *Table) AppendRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("table %q: row has %d cells, want %d", t.Name, len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Cell returns T(i, j) with the paper's 1-based indexing; it panics on
// out-of-range indexes, which are programming errors.
func (t *Table) Cell(i, j int) string {
	return t.Rows[i-1][j-1]
}

// ColumnValues returns every cell of 1-based column j in row order.
func (t *Table) ColumnValues(j int) []string {
	out := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		out[i] = row[j-1]
	}
	return out
}

// ColumnIndexesOfType returns the 1-based indexes of columns with the given
// GFT type.
func (t *Table) ColumnIndexesOfType(ct ColumnType) []int {
	var out []int
	for j, c := range t.Columns {
		if c.Type == ct {
			out = append(out, j+1)
		}
	}
	return out
}
