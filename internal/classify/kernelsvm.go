package classify

import (
	"math"
	"math/rand"

	"repro/internal/textproc"
)

// Kernel computes a positive-definite similarity between two sparse feature
// vectors.
type Kernel func(a, b textproc.Features) float64

// LinearKernel is the plain inner product.
func LinearKernel(a, b textproc.Features) float64 { return a.Dot(b) }

// RBFKernel returns the Gaussian kernel exp(-gamma*||a-b||^2); the paper's
// C-SVC uses this kernel with gamma selected by grid search (γ = 8 in §6.1).
func RBFKernel(gamma float64) Kernel {
	return func(a, b textproc.Features) float64 {
		d2 := a.Norm2() + b.Norm2() - 2*a.Dot(b)
		if d2 < 0 {
			d2 = 0
		}
		return math.Exp(-gamma * d2)
	}
}

// KernelSVMTrainer trains a one-vs-rest C-SVC with the SMO algorithm
// (simplified Platt variant). It reproduces the LibSVM configuration of the
// paper: C = 8, RBF kernel with γ = 8. SMO is O(n²) in the number of
// examples, so this trainer is used on the per-type training subsets and in
// the grid-search ablation, while LinearSVMTrainer covers the full corpora.
type KernelSVMTrainer struct {
	// C is the soft-margin penalty; 0 selects 8 (the paper's grid-search
	// optimum).
	C float64
	// Kernel defaults to RBF with γ = 8.
	Kernel Kernel
	// Tol is the KKT violation tolerance; 0 selects 1e-3.
	Tol float64
	// MaxPasses bounds the number of full passes without any α update
	// before convergence is declared; 0 selects 5.
	MaxPasses int
	// Seed drives the SMO partner selection.
	Seed int64
}

// Train fits one binary C-SVC per label.
func (t KernelSVMTrainer) Train(d Dataset) Classifier {
	c := t.C
	if c <= 0 {
		c = 8
	}
	kern := t.Kernel
	if kern == nil {
		kern = RBFKernel(8)
	}
	tol := t.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	maxPasses := t.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 5
	}
	labels := d.Labels()
	model := &KernelSVM{kernel: kern, labels: labels}
	for _, label := range labels {
		bm := trainSMO(d, label, c, kern, tol, maxPasses, t.Seed)
		model.machines = append(model.machines, bm)
	}
	return model
}

// binaryMachine is a trained binary C-SVC: the support vectors with their
// signed coefficients and the bias.
type binaryMachine struct {
	label string
	sv    []textproc.Features
	coef  []float64 // alpha_i * y_i
	bias  float64
}

func (bm *binaryMachine) decision(f textproc.Features, kern Kernel) float64 {
	s := bm.bias
	for i, v := range bm.sv {
		s += bm.coef[i] * kern(v, f)
	}
	return s
}

// trainSMO runs simplified SMO on the binary problem (label vs rest).
func trainSMO(d Dataset, positive string, c float64, kern Kernel, tol float64, maxPasses int, seed int64) *binaryMachine {
	n := len(d.Examples)
	y := make([]float64, n)
	for i, ex := range d.Examples {
		if ex.Label == positive {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	alpha := make([]float64, n)
	var b float64
	rng := rand.New(rand.NewSource(seed ^ int64(hashString(positive)) ^ 0x5f3759df))

	// Cache the kernel matrix; the training subsets handed to SMO are
	// small enough (n ≤ a few hundred) for the O(n²) cache to pay off.
	kcache := make([][]float64, n)
	for i := range kcache {
		kcache[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := kern(d.Examples[i].Features, d.Examples[j].Features)
			kcache[i][j] = v
			kcache[j][i] = v
		}
	}
	fOut := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * kcache[j][i]
			}
		}
		return s
	}

	passes := 0
	for passes < maxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := fOut(i) - y[i]
			if (y[i]*ei < -tol && alpha[i] < c) || (y[i]*ei > tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := fOut(j) - y[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(c, c+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-c)
					hi = math.Min(c, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*kcache[i][j] - kcache[i][i] - kcache[j][j]
				if eta >= 0 {
					continue
				}
				alpha[j] = aj - y[j]*(ei-ej)/eta
				if alpha[j] > hi {
					alpha[j] = hi
				} else if alpha[j] < lo {
					alpha[j] = lo
				}
				if math.Abs(alpha[j]-aj) < 1e-7 {
					continue
				}
				alpha[i] = ai + y[i]*y[j]*(aj-alpha[j])
				b1 := b - ei - y[i]*(alpha[i]-ai)*kcache[i][i] - y[j]*(alpha[j]-aj)*kcache[i][j]
				b2 := b - ej - y[i]*(alpha[i]-ai)*kcache[i][j] - y[j]*(alpha[j]-aj)*kcache[j][j]
				switch {
				case alpha[i] > 0 && alpha[i] < c:
					b = b1
				case alpha[j] > 0 && alpha[j] < c:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	bm := &binaryMachine{label: positive, bias: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			bm.sv = append(bm.sv, d.Examples[i].Features)
			bm.coef = append(bm.coef, alpha[i]*y[i])
		}
	}
	return bm
}

// KernelSVM is a trained one-vs-rest kernel C-SVC.
type KernelSVM struct {
	machines []*binaryMachine
	kernel   Kernel
	labels   []string
}

// Scores returns the per-label decision values.
func (m *KernelSVM) Scores(f textproc.Features) map[string]float64 {
	scores := make(map[string]float64, len(m.machines))
	for _, bm := range m.machines {
		scores[bm.label] = bm.decision(f, m.kernel)
	}
	return scores
}

// Predict returns the label with the largest decision value.
func (m *KernelSVM) Predict(f textproc.Features) string {
	best, bestScore := "", math.Inf(-1)
	for _, bm := range m.machines {
		if s := bm.decision(f, m.kernel); s > bestScore {
			best, bestScore = bm.label, s
		}
	}
	return best
}

// SupportVectorCount returns the number of support vectors retained for a
// label's binary machine; used by tests to check the solution is sparse.
func (m *KernelSVM) SupportVectorCount(label string) int {
	for _, bm := range m.machines {
		if bm.label == label {
			return len(bm.sv)
		}
	}
	return 0
}
