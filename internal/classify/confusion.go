package classify

import (
	"fmt"
	"sort"
	"strings"
)

// ConfusionMatrix counts predictions per (gold, predicted) label pair. It is
// the diagnostic behind the subsumption analysis of §6.2 (does the
// classifier confuse universities with schools, Simpsons episodes with
// films?).
type ConfusionMatrix struct {
	counts map[[2]string]int
	labels map[string]struct{}
}

// NewConfusionMatrix returns an empty matrix.
func NewConfusionMatrix() *ConfusionMatrix {
	return &ConfusionMatrix{
		counts: map[[2]string]int{},
		labels: map[string]struct{}{},
	}
}

// Observe records one (gold, predicted) pair.
func (cm *ConfusionMatrix) Observe(gold, predicted string) {
	cm.counts[[2]string{gold, predicted}]++
	cm.labels[gold] = struct{}{}
	cm.labels[predicted] = struct{}{}
}

// Count returns the number of examples with the given gold label predicted
// as the given label.
func (cm *ConfusionMatrix) Count(gold, predicted string) int {
	return cm.counts[[2]string{gold, predicted}]
}

// Labels returns the sorted label set seen so far.
func (cm *ConfusionMatrix) Labels() []string {
	out := make([]string, 0, len(cm.labels))
	for l := range cm.labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Accuracy returns the fraction of observations on the diagonal.
func (cm *ConfusionMatrix) Accuracy() float64 {
	total, correct := 0, 0
	for key, n := range cm.counts {
		total += n
		if key[0] == key[1] {
			correct += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MostConfused returns the off-diagonal (gold, predicted) pairs sorted by
// descending count — the subsumption confusions surface at the top.
func (cm *ConfusionMatrix) MostConfused(n int) [][2]string {
	type pair struct {
		key   [2]string
		count int
	}
	var pairs []pair
	for key, c := range cm.counts {
		if key[0] != key[1] && c > 0 {
			pairs = append(pairs, pair{key, c})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		return pairs[i].key[0]+pairs[i].key[1] < pairs[j].key[0]+pairs[j].key[1]
	})
	if n > 0 && len(pairs) > n {
		pairs = pairs[:n]
	}
	out := make([][2]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.key
	}
	return out
}

// String renders the matrix as an aligned table, gold labels on rows.
func (cm *ConfusionMatrix) String() string {
	labels := cm.Labels()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s", "gold\\pred")
	for _, p := range labels {
		fmt.Fprintf(&sb, "%8s", clipLabel(p))
	}
	sb.WriteByte('\n')
	for _, g := range labels {
		fmt.Fprintf(&sb, "%-18s", clipLabel(g))
		for _, p := range labels {
			fmt.Fprintf(&sb, "%8d", cm.Count(g, p))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func clipLabel(s string) string {
	if len(s) > 7 {
		return s[:7]
	}
	return s
}

// Confusion runs the classifier over the test set and returns the matrix.
func Confusion(c Classifier, test Dataset) *ConfusionMatrix {
	cm := NewConfusionMatrix()
	for _, ex := range test.Examples {
		cm.Observe(ex.Label, c.Predict(ex.Features))
	}
	return cm
}
