package classify

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Classifier persistence: a compact versioned binary snapshot of a trained
// model, so a service booted from a prebuilt artifact skips the training
// corpus entirely (the two heavy artifacts — search index, gazetteer —
// already persist; this closes the last rebuild-at-boot gap). Format
// (little-endian):
//
//	magic "TCLF" | version u32 | kind (len-prefixed string: "svm" | "bayes")
//	svm payload:   labelCount u32, then per label (sorted): label str,
//	    bias f64, termCount u32, then per term (sorted): term str, weight f64
//	bayes payload: alpha f64, total f64, classCount u32, then per class
//	    (sorted): class str, count f64, classTotal f64, termCount u32,
//	    then per term (sorted): term str, count f64
//
// Every map is written in sorted key order, so snapshots of the same model
// are byte-reproducible. Floats round-trip exactly via their IEEE 754 bits.
// The reader validates counts and string lengths so a truncated or corrupt
// stream returns an error instead of panicking or allocating unboundedly,
// mirroring internal/gazetteer/persist.go.

const (
	clfMagic   = "TCLF"
	clfVersion = 1

	// clfKindSVM / clfKindBayes tag the payload that follows the header.
	clfKindSVM   = "svm"
	clfKindBayes = "bayes"

	// Reader bounds: far above any real model, they only reject obviously
	// corrupt headers before the reader allocates for them.
	maxClfLabels   = 1 << 12
	maxClfTerms    = 1 << 24
	maxClfStrBytes = 1 << 16
)

// clfWriter wraps the little-endian encoding helpers.
type clfWriter struct {
	bw *bufio.Writer
	n  int64
}

func (cw *clfWriter) Write(p []byte) (int, error) {
	n, err := cw.bw.Write(p)
	cw.n += int64(n)
	return n, err
}

func (cw *clfWriter) u32(v uint32) error { return binary.Write(cw, binary.LittleEndian, v) }

func (cw *clfWriter) f64(v float64) error {
	return binary.Write(cw, binary.LittleEndian, math.Float64bits(v))
}

func (cw *clfWriter) str(s string) error {
	if err := cw.u32(uint32(len(s))); err != nil {
		return err
	}
	_, err := cw.Write([]byte(s))
	return err
}

// header writes magic, version and the model kind.
func (cw *clfWriter) header(kind string) error {
	if _, err := cw.Write([]byte(clfMagic)); err != nil {
		return err
	}
	if err := cw.u32(clfVersion); err != nil {
		return err
	}
	return cw.str(kind)
}

// floatMap writes m as termCount followed by sorted (term, value) pairs.
func (cw *clfWriter) floatMap(m map[string]float64) error {
	terms := make([]string, 0, len(m))
	for t := range m {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	if err := cw.u32(uint32(len(terms))); err != nil {
		return err
	}
	for _, t := range terms {
		if err := cw.str(t); err != nil {
			return err
		}
		if err := cw.f64(m[t]); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo serialises the trained SVM as a version-1 TCLF stream. It returns
// the byte count written (flushed bytes, per the io.WriterTo contract).
func (m *LinearSVM) WriteTo(w io.Writer) (int64, error) {
	cw := &clfWriter{bw: bufio.NewWriter(w)}
	err := func() error {
		if err := cw.header(clfKindSVM); err != nil {
			return err
		}
		if err := cw.u32(uint32(len(m.labels))); err != nil {
			return err
		}
		// m.labels is already sorted (Dataset.Labels); keep its order so
		// the written stream matches prediction tie-break order exactly.
		for _, label := range m.labels {
			if err := cw.str(label); err != nil {
				return err
			}
			if err := cw.f64(m.bias[label]); err != nil {
				return err
			}
			if err := cw.floatMap(m.weights[label]); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil {
		return cw.n, err
	}
	return cw.n, cw.bw.Flush()
}

// WriteTo serialises the trained Naive Bayes model as a version-1 TCLF
// stream. It returns the byte count written.
func (nb *NaiveBayes) WriteTo(w io.Writer) (int64, error) {
	classes := make([]string, 0, len(nb.classCount))
	for c := range nb.classCount {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	cw := &clfWriter{bw: bufio.NewWriter(w)}
	err := func() error {
		if err := cw.header(clfKindBayes); err != nil {
			return err
		}
		if err := cw.f64(nb.Alpha); err != nil {
			return err
		}
		if err := cw.f64(nb.total); err != nil {
			return err
		}
		if err := cw.u32(uint32(len(classes))); err != nil {
			return err
		}
		for _, class := range classes {
			if err := cw.str(class); err != nil {
				return err
			}
			if err := cw.f64(nb.classCount[class]); err != nil {
				return err
			}
			if err := cw.f64(nb.classTotal[class]); err != nil {
				return err
			}
			if err := cw.floatMap(nb.termCount[class]); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil {
		return cw.n, err
	}
	return cw.n, cw.bw.Flush()
}

// WriteClassifier dispatches on the concrete model behind the Classifier
// interface; it fails for models without a persistence format (the kernel
// SVM and logistic baselines are experiment-only).
func WriteClassifier(w io.Writer, c Classifier) (int64, error) {
	switch m := c.(type) {
	case *LinearSVM:
		return m.WriteTo(w)
	case *NaiveBayes:
		return m.WriteTo(w)
	}
	return 0, fmt.Errorf("classify: %T has no persistence format", c)
}

// clfReader wraps the bounded decoding helpers.
type clfReader struct {
	br *bufio.Reader
}

func (cr *clfReader) u32() (uint32, error) {
	var v uint32
	err := binary.Read(cr.br, binary.LittleEndian, &v)
	return v, err
}

func (cr *clfReader) f64() (float64, error) {
	var bits uint64
	if err := binary.Read(cr.br, binary.LittleEndian, &bits); err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

func (cr *clfReader) str() (string, error) {
	n, err := cr.u32()
	if err != nil {
		return "", err
	}
	if n > maxClfStrBytes {
		return "", fmt.Errorf("classify: corrupt model (string length %d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(cr.br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// floatMap reads a termCount-prefixed (term, value) map.
func (cr *clfReader) floatMap() (map[string]float64, error) {
	n, err := cr.u32()
	if err != nil {
		return nil, err
	}
	if n > maxClfTerms {
		return nil, fmt.Errorf("classify: corrupt model (%d terms)", n)
	}
	m := make(map[string]float64, n)
	for i := uint32(0); i < n; i++ {
		term, err := cr.str()
		if err != nil {
			return nil, err
		}
		v, err := cr.f64()
		if err != nil {
			return nil, err
		}
		m[term] = v
	}
	return m, nil
}

// ReadClassifier loads a model previously written with WriteClassifier (or
// the WriteTo of either model). The result predicts identically to the model
// that was written. A truncated or corrupt stream returns an error, never a
// panic.
func ReadClassifier(r io.Reader) (Classifier, error) {
	cr := &clfReader{br: bufio.NewReader(r)}
	magic := make([]byte, len(clfMagic))
	if _, err := io.ReadFull(cr.br, magic); err != nil {
		return nil, fmt.Errorf("classify: reading magic: %w", err)
	}
	if string(magic) != clfMagic {
		return nil, fmt.Errorf("classify: bad magic %q", magic)
	}
	version, err := cr.u32()
	if err != nil {
		return nil, err
	}
	if version != clfVersion {
		return nil, fmt.Errorf("classify: unsupported model version %d", version)
	}
	kind, err := cr.str()
	if err != nil {
		return nil, err
	}
	switch kind {
	case clfKindSVM:
		return readSVM(cr)
	case clfKindBayes:
		return readBayes(cr)
	}
	return nil, fmt.Errorf("classify: unknown model kind %q", kind)
}

func readSVM(cr *clfReader) (*LinearSVM, error) {
	n, err := cr.u32()
	if err != nil {
		return nil, err
	}
	if n > maxClfLabels {
		return nil, fmt.Errorf("classify: corrupt model (%d labels)", n)
	}
	m := &LinearSVM{
		weights: make(map[string]map[string]float64, n),
		bias:    make(map[string]float64, n),
		labels:  make([]string, 0, n),
	}
	for i := uint32(0); i < n; i++ {
		label, err := cr.str()
		if err != nil {
			return nil, fmt.Errorf("classify: label %d: %w", i, err)
		}
		if _, dup := m.bias[label]; dup {
			return nil, fmt.Errorf("classify: corrupt model (duplicate label %q)", label)
		}
		bias, err := cr.f64()
		if err != nil {
			return nil, fmt.Errorf("classify: label %q: %w", label, err)
		}
		w, err := cr.floatMap()
		if err != nil {
			return nil, fmt.Errorf("classify: label %q: %w", label, err)
		}
		m.labels = append(m.labels, label)
		m.bias[label] = bias
		m.weights[label] = w
	}
	// Prediction tie-breaks assume sorted label order; a stream that lost
	// it is corrupt.
	if !sort.StringsAreSorted(m.labels) {
		return nil, fmt.Errorf("classify: corrupt model (labels out of order)")
	}
	return m, nil
}

func readBayes(cr *clfReader) (*NaiveBayes, error) {
	alpha, err := cr.f64()
	if err != nil {
		return nil, err
	}
	total, err := cr.f64()
	if err != nil {
		return nil, err
	}
	n, err := cr.u32()
	if err != nil {
		return nil, err
	}
	if n > maxClfLabels {
		return nil, fmt.Errorf("classify: corrupt model (%d classes)", n)
	}
	nb := &NaiveBayes{
		Alpha:      alpha,
		total:      total,
		classCount: make(map[string]float64, n),
		termCount:  make(map[string]map[string]float64, n),
		classTotal: make(map[string]float64, n),
		vocab:      map[string]struct{}{},
	}
	for i := uint32(0); i < n; i++ {
		class, err := cr.str()
		if err != nil {
			return nil, fmt.Errorf("classify: class %d: %w", i, err)
		}
		if _, dup := nb.classCount[class]; dup {
			return nil, fmt.Errorf("classify: corrupt model (duplicate class %q)", class)
		}
		count, err := cr.f64()
		if err != nil {
			return nil, fmt.Errorf("classify: class %q: %w", class, err)
		}
		classTotal, err := cr.f64()
		if err != nil {
			return nil, fmt.Errorf("classify: class %q: %w", class, err)
		}
		tc, err := cr.floatMap()
		if err != nil {
			return nil, fmt.Errorf("classify: class %q: %w", class, err)
		}
		nb.classCount[class] = count
		nb.classTotal[class] = classTotal
		nb.termCount[class] = tc
		// The training loop only ever adds a term to the vocabulary when
		// it lands in some class's term counts, so the union reconstructs
		// the vocabulary exactly.
		for term := range tc {
			nb.vocab[term] = struct{}{}
		}
	}
	return nb, nil
}
