package classify

// Metrics aggregates the precision/recall/F-measure counters used throughout
// the evaluation (§6.2): P = C/A, R = C/T, F = 2PR/(P+R), where C is the
// number of correct positive predictions, A the number of positive
// predictions and T the number of true positives in the gold standard.
type Metrics struct {
	Correct   int // C: correctly annotated entities
	Annotated int // A: entities the system annotated with the type
	Truth     int // T: entities of the type in the gold standard
}

// Add accumulates another metrics counter into m.
func (m *Metrics) Add(o Metrics) {
	m.Correct += o.Correct
	m.Annotated += o.Annotated
	m.Truth += o.Truth
}

// Precision returns C/A, or 0 when nothing was annotated.
func (m Metrics) Precision() float64 {
	if m.Annotated == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Annotated)
}

// Recall returns C/T, or 0 when the gold standard is empty.
func (m Metrics) Recall() float64 {
	if m.Truth == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Truth)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate runs the classifier over the test set and returns both the overall
// accuracy and the per-label binary metrics (one-vs-rest), which is how the
// per-type F-measures of Table 2 are computed.
func Evaluate(c Classifier, test Dataset) (accuracy float64, perLabel map[string]Metrics) {
	perLabel = map[string]Metrics{}
	correct := 0
	for _, ex := range test.Examples {
		pred := c.Predict(ex.Features)
		if pred == ex.Label {
			correct++
		}
		mt := perLabel[ex.Label]
		mt.Truth++
		if pred == ex.Label {
			mt.Correct++
		}
		perLabel[ex.Label] = mt

		mp := perLabel[pred]
		mp.Annotated++
		perLabel[pred] = mp
	}
	if len(test.Examples) > 0 {
		accuracy = float64(correct) / float64(len(test.Examples))
	}
	return accuracy, perLabel
}

// MacroF1 averages the per-label F-measures with equal label weight.
func MacroF1(perLabel map[string]Metrics) float64 {
	if len(perLabel) == 0 {
		return 0
	}
	var sum float64
	for _, m := range perLabel {
		sum += m.F1()
	}
	return sum / float64(len(perLabel))
}
