package classify

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

// synthDataset builds a small two-class snippet dataset with type-specific
// vocabulary plus shared filler, deterministic in seed.
func synthDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	museum := []string{"museum", "gallery", "exhibition", "art", "collection", "paintings", "curator"}
	restaurant := []string{"restaurant", "menu", "cuisine", "chef", "dining", "reservations", "dishes"}
	filler := []string{"city", "visit", "open", "street", "great", "located", "famous", "place"}
	mk := func(vocab []string) string {
		s := ""
		for i := 0; i < 12; i++ {
			var w string
			if rng.Intn(3) == 0 {
				w = filler[rng.Intn(len(filler))]
			} else {
				w = vocab[rng.Intn(len(vocab))]
			}
			if i > 0 {
				s += " "
			}
			s += w
		}
		return s
	}
	var d Dataset
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			d.Add(mk(museum), "museum")
		} else {
			d.Add(mk(restaurant), "restaurant")
		}
	}
	return d
}

func TestBayesLearnsSeparableClasses(t *testing.T) {
	d := synthDataset(200, 1)
	d.Shuffle(rand.New(rand.NewSource(2)))
	train, test := d.Split(0.75)
	model := BayesTrainer{}.Train(train)
	acc, _ := Evaluate(model, test)
	if acc < 0.9 {
		t.Errorf("Bayes accuracy = %.3f, want >= 0.9 on separable data", acc)
	}
}

func TestLinearSVMLearnsSeparableClasses(t *testing.T) {
	d := synthDataset(200, 3)
	d.Shuffle(rand.New(rand.NewSource(4)))
	train, test := d.Split(0.75)
	model := LinearSVMTrainer{Seed: 5}.Train(train)
	acc, _ := Evaluate(model, test)
	if acc < 0.9 {
		t.Errorf("LinearSVM accuracy = %.3f, want >= 0.9 on separable data", acc)
	}
}

func TestKernelSVMLearnsSeparableClasses(t *testing.T) {
	d := synthDataset(120, 6)
	d.Shuffle(rand.New(rand.NewSource(7)))
	train, test := d.Split(0.75)
	model := KernelSVMTrainer{Seed: 8}.Train(train)
	acc, _ := Evaluate(model, test)
	if acc < 0.9 {
		t.Errorf("KernelSVM(RBF) accuracy = %.3f, want >= 0.9 on separable data", acc)
	}
}

func TestKernelSVMLinearKernel(t *testing.T) {
	d := synthDataset(80, 9)
	model := KernelSVMTrainer{Kernel: LinearKernel, Seed: 10}.Train(d)
	acc, _ := Evaluate(model, d)
	if acc < 0.9 {
		t.Errorf("KernelSVM(linear) training accuracy = %.3f, want >= 0.9", acc)
	}
	ks := model.(*KernelSVM)
	if n := ks.SupportVectorCount("museum"); n == 0 || n == d.Len() {
		t.Errorf("support vector count = %d, want sparse nonzero subset of %d", n, d.Len())
	}
}

func TestTrainingDeterministic(t *testing.T) {
	d := synthDataset(100, 11)
	probe := textproc.Extract("art gallery exhibition museum")
	m1 := LinearSVMTrainer{Seed: 42}.Train(d).(*LinearSVM)
	m2 := LinearSVMTrainer{Seed: 42}.Train(d).(*LinearSVM)
	s1, s2 := m1.Scores(probe), m2.Scores(probe)
	for label, v := range s1 {
		// Scores sum sparse features in map order, so identical models
		// may differ by float re-association noise; the weights
		// themselves are seed-deterministic.
		if diff := math.Abs(s2[label] - v); diff > 1e-9 {
			t.Errorf("training not deterministic for label %q: %v vs %v", label, v, s2[label])
		}
	}
	if m1.Predict(probe) != m2.Predict(probe) {
		t.Error("predictions differ between same-seed models")
	}
}

func TestPredictOnUnseenVocabulary(t *testing.T) {
	d := synthDataset(100, 12)
	for _, model := range []Classifier{
		BayesTrainer{}.Train(d),
		LinearSVMTrainer{Seed: 1}.Train(d),
	} {
		pred := model.Predict(textproc.Extract("zzz qqq unknown words entirely"))
		if pred != "museum" && pred != "restaurant" {
			t.Errorf("prediction on unseen vocab = %q, want a known label", pred)
		}
	}
}

func TestDatasetSplit(t *testing.T) {
	d := synthDataset(100, 13)
	train, test := d.Split(0.75)
	if train.Len() != 75 || test.Len() != 25 {
		t.Errorf("split = %d/%d, want 75/25", train.Len(), test.Len())
	}
	train, test = d.Split(0)
	if train.Len() != 0 || test.Len() != 100 {
		t.Errorf("split(0) = %d/%d", train.Len(), test.Len())
	}
	train, test = d.Split(2)
	if train.Len() != 100 || test.Len() != 0 {
		t.Errorf("split(2) = %d/%d", train.Len(), test.Len())
	}
}

func TestFoldsPartition(t *testing.T) {
	d := synthDataset(103, 14)
	folds := d.Folds(10)
	total := 0
	for _, f := range folds {
		total += f.Len()
	}
	if total != d.Len() {
		t.Errorf("folds cover %d examples, want %d", total, d.Len())
	}
	rest := Without(folds, 3)
	if rest.Len() != d.Len()-folds[3].Len() {
		t.Errorf("Without(3) = %d, want %d", rest.Len(), d.Len()-folds[3].Len())
	}
}

func TestLabelsSortedUnique(t *testing.T) {
	var d Dataset
	d.Add("a", "zebra")
	d.Add("b", "apple")
	d.Add("c", "zebra")
	labels := d.Labels()
	if len(labels) != 2 || labels[0] != "apple" || labels[1] != "zebra" {
		t.Errorf("Labels() = %v", labels)
	}
}

func TestMetricsFormulas(t *testing.T) {
	m := Metrics{Correct: 8, Annotated: 10, Truth: 16}
	if p := m.Precision(); p != 0.8 {
		t.Errorf("P = %v, want 0.8", p)
	}
	if r := m.Recall(); r != 0.5 {
		t.Errorf("R = %v, want 0.5", r)
	}
	wantF := 2 * 0.8 * 0.5 / 1.3
	if f := m.F1(); f < wantF-1e-9 || f > wantF+1e-9 {
		t.Errorf("F = %v, want %v", f, wantF)
	}
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Errorf("zero metrics should all be 0")
	}
}

// TestMetricsBounds: P, R and F always lie in [0, 1] for any consistent
// counter values.
func TestMetricsBounds(t *testing.T) {
	f := func(c, extraA, extraT uint8) bool {
		m := Metrics{
			Correct:   int(c),
			Annotated: int(c) + int(extraA),
			Truth:     int(c) + int(extraT),
		}
		p, r, f1 := m.Precision(), m.Recall(), m.F1()
		return p >= 0 && p <= 1 && r >= 0 && r <= 1 && f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestF1BetweenMinAndMax: the F-measure lies between min(P,R) and max(P,R).
func TestF1BetweenMinAndMax(t *testing.T) {
	f := func(c, extraA, extraT uint8) bool {
		m := Metrics{Correct: int(c), Annotated: int(c) + int(extraA), Truth: int(c) + int(extraT)}
		p, r, f1 := m.Precision(), m.Recall(), m.F1()
		lo, hi := p, r
		if lo > hi {
			lo, hi = hi, lo
		}
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluatePerLabel(t *testing.T) {
	d := synthDataset(200, 15)
	d.Shuffle(rand.New(rand.NewSource(16)))
	train, test := d.Split(0.75)
	model := BayesTrainer{}.Train(train)
	acc, perLabel := Evaluate(model, test)
	if len(perLabel) == 0 {
		t.Fatal("no per-label metrics")
	}
	totalTruth := 0
	for _, m := range perLabel {
		totalTruth += m.Truth
	}
	if totalTruth != test.Len() {
		t.Errorf("truth counts sum to %d, want %d", totalTruth, test.Len())
	}
	if mf := MacroF1(perLabel); mf <= 0 || mf > 1 {
		t.Errorf("MacroF1 = %v, want (0,1]", mf)
	}
	_ = acc
}

func TestCrossValidate(t *testing.T) {
	d := synthDataset(150, 17)
	acc := CrossValidate(BayesTrainer{}, d, 5, rand.New(rand.NewSource(18)))
	if acc < 0.85 {
		t.Errorf("cross-validated accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestGridSearchRBF(t *testing.T) {
	d := synthDataset(60, 19)
	best, all := GridSearchRBF(d, []float64{1, 8}, []float64{1, 8}, 3, 20)
	if len(all) != 4 {
		t.Fatalf("grid evaluated %d points, want 4", len(all))
	}
	if best.Accuracy <= 0 {
		t.Errorf("best grid accuracy = %v, want > 0", best.Accuracy)
	}
	for _, pt := range all {
		if pt.Accuracy > best.Accuracy {
			t.Errorf("grid point %+v beats reported best %+v", pt, best)
		}
	}
}

func TestSVMOutperformsOrMatchesBayesOnOverlappingVocab(t *testing.T) {
	// With heavier vocabulary overlap the SVM should keep an edge in
	// precision, reproducing the qualitative finding of §6.1-6.2.
	rng := rand.New(rand.NewSource(21)) //nolint:staticcheck // seeded for determinism
	shared := []string{"visit", "place", "open", "city", "popular", "top", "guide", "best", "local"}
	mk := func(vocab []string, bias int) string {
		s := ""
		for i := 0; i < 10; i++ {
			var w string
			if rng.Intn(10) < bias {
				w = shared[rng.Intn(len(shared))]
			} else {
				w = vocab[rng.Intn(len(vocab))]
			}
			if i > 0 {
				s += " "
			}
			s += w
		}
		return s
	}
	museum := []string{"museum", "gallery", "exhibit", "art"}
	hotel := []string{"hotel", "rooms", "suite", "booking"}
	var d Dataset
	for i := 0; i < 300; i++ {
		if i%2 == 0 {
			d.Add(mk(museum, 6), "museum")
		} else {
			d.Add(mk(hotel, 6), "hotel")
		}
	}
	d.Shuffle(rand.New(rand.NewSource(22)))
	train, test := d.Split(0.75)
	svm := LinearSVMTrainer{Seed: 23}.Train(train)
	nb := BayesTrainer{}.Train(train)
	accSVM, _ := Evaluate(svm, test)
	accNB, _ := Evaluate(nb, test)
	if accSVM+0.1 < accNB {
		t.Errorf("SVM accuracy %.3f substantially below Bayes %.3f", accSVM, accNB)
	}
}

func ExampleMetrics() {
	m := Metrics{Correct: 9, Annotated: 10, Truth: 12}
	fmt.Printf("P=%.2f R=%.2f F=%.2f\n", m.Precision(), m.Recall(), m.F1())
	// Output: P=0.90 R=0.75 F=0.82
}
