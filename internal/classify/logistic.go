package classify

import (
	"math"
	"math/rand"

	"repro/internal/textproc"
)

// LogisticTrainer trains multinomial logistic regression (maximum entropy)
// with stochastic gradient descent and L2 regularization. The paper
// evaluates SVM and Naive Bayes; logistic regression is the natural third
// point on that spectrum (discriminative like the SVM, probabilistic like
// Bayes) and is used by the classifier-ablation bench.
type LogisticTrainer struct {
	// LearningRate is the SGD step size; 0 selects 0.5.
	LearningRate float64
	// L2 is the regularization strength; 0 selects 1e-6.
	L2 float64
	// Epochs is the number of passes; 0 selects 15.
	Epochs int
	// Seed drives the sampling order.
	Seed int64
}

// Train fits the model.
func (t LogisticTrainer) Train(d Dataset) Classifier {
	lr := t.LearningRate
	if lr <= 0 {
		lr = 0.5
	}
	l2 := t.L2
	if l2 <= 0 {
		l2 = 1e-6
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 15
	}
	labels := d.Labels()
	labelIdx := make(map[string]int, len(labels))
	for i, l := range labels {
		labelIdx[l] = i
	}
	m := &Logistic{
		labels:  labels,
		weights: make([]map[string]float64, len(labels)),
		bias:    make([]float64, len(labels)),
	}
	for i := range m.weights {
		m.weights[i] = map[string]float64{}
	}
	n := len(d.Examples)
	if n == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(t.Seed))
	probs := make([]float64, len(labels))
	for epoch := 0; epoch < epochs; epoch++ {
		step := lr / (1 + float64(epoch)/4)
		for it := 0; it < n; it++ {
			ex := d.Examples[rng.Intn(n)]
			m.softmax(ex.Features, probs)
			gold := labelIdx[ex.Label]
			for c := range labels {
				grad := probs[c]
				if c == gold {
					grad -= 1
				}
				if grad == 0 {
					continue
				}
				w := m.weights[c]
				for term, v := range ex.Features {
					w[term] -= step * (grad*v + l2*w[term])
				}
				m.bias[c] -= step * grad
			}
		}
	}
	return m
}

// Logistic is a trained multinomial logistic regression model.
type Logistic struct {
	labels  []string
	weights []map[string]float64
	bias    []float64
}

// softmax fills probs with the class posteriors for f.
func (m *Logistic) softmax(f textproc.Features, probs []float64) {
	maxScore := math.Inf(-1)
	for c := range m.labels {
		s := m.bias[c]
		w := m.weights[c]
		for term, v := range f {
			s += w[term] * v
		}
		probs[c] = s
		if s > maxScore {
			maxScore = s
		}
	}
	var sum float64
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxScore)
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
}

// Scores returns the class posterior probabilities.
func (m *Logistic) Scores(f textproc.Features) map[string]float64 {
	probs := make([]float64, len(m.labels))
	if len(m.labels) == 0 {
		return nil
	}
	m.softmax(f, probs)
	out := make(map[string]float64, len(m.labels))
	for c, l := range m.labels {
		out[l] = probs[c]
	}
	return out
}

// Predict returns the most probable label.
func (m *Logistic) Predict(f textproc.Features) string {
	if len(m.labels) == 0 {
		return ""
	}
	probs := make([]float64, len(m.labels))
	m.softmax(f, probs)
	best := 0
	for c := range probs {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return m.labels[best]
}
