// Package classify implements the text classifiers evaluated in §6.1 of the
// paper: a multinomial Naive Bayes classifier (mirroring the LingPipe
// configuration: prior counts 1.0, no length normalization) and support
// vector machines — a linear SVM trained with Pegasos for the large snippet
// corpora and a kernel C-SVC trained with SMO and an RBF kernel, matching the
// LibSVM setup the paper used, selected by grid search with k-fold cross
// validation.
package classify

import (
	"math/rand"
	"sort"

	"repro/internal/textproc"
)

// Example is a single labelled snippet in feature form.
type Example struct {
	Features textproc.Features
	Label    string
}

// Dataset is an ordered collection of labelled examples.
type Dataset struct {
	Examples []Example
}

// Add appends an example built from raw snippet text.
func (d *Dataset) Add(snippet, label string) {
	d.Examples = append(d.Examples, Example{Features: textproc.Extract(snippet), Label: label})
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Labels returns the sorted set of distinct labels present in the dataset.
func (d *Dataset) Labels() []string {
	seen := map[string]struct{}{}
	for _, ex := range d.Examples {
		seen[ex.Label] = struct{}{}
	}
	labels := make([]string, 0, len(seen))
	for l := range seen {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// Shuffle permutes the examples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Examples), func(i, j int) {
		d.Examples[i], d.Examples[j] = d.Examples[j], d.Examples[i]
	})
}

// Split partitions the dataset into a training set holding frac of the
// examples and a test set holding the rest. The paper uses frac = 0.75
// (§5.2.1). The split is positional; call Shuffle first for a random split.
func (d *Dataset) Split(frac float64) (train, test Dataset) {
	n := int(frac * float64(len(d.Examples)))
	if n < 0 {
		n = 0
	}
	if n > len(d.Examples) {
		n = len(d.Examples)
	}
	train.Examples = d.Examples[:n]
	test.Examples = d.Examples[n:]
	return train, test
}

// Folds splits the dataset into k folds for cross validation. Fold i is the
// i-th of k nearly equal contiguous chunks.
func (d *Dataset) Folds(k int) []Dataset {
	if k < 1 {
		k = 1
	}
	folds := make([]Dataset, k)
	n := len(d.Examples)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		folds[i].Examples = d.Examples[lo:hi]
	}
	return folds
}

// Without returns a dataset containing every fold except fold i; used as the
// training portion during cross validation.
func Without(folds []Dataset, i int) Dataset {
	var out Dataset
	for j, f := range folds {
		if j != i {
			out.Examples = append(out.Examples, f.Examples...)
		}
	}
	return out
}

// Classifier assigns a label to a feature vector.
type Classifier interface {
	Predict(f textproc.Features) string
}

// ScoringClassifier additionally exposes per-label decision scores; higher
// means more confident. Used by diagnostics and ablation benches.
type ScoringClassifier interface {
	Classifier
	Scores(f textproc.Features) map[string]float64
}

// Trainer builds a classifier from a dataset.
type Trainer interface {
	Train(d Dataset) Classifier
}
