package classify

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/textproc"
)

// persistDataset builds a small deterministic labelled corpus exercising
// shared and label-specific vocabulary.
func persistDataset() Dataset {
	var d Dataset
	rng := rand.New(rand.NewSource(7))
	words := []string{"museum", "art", "exhibit", "menu", "chef", "dinner",
		"school", "campus", "students", "hotel", "rooms", "lobby", "the", "in", "city"}
	labels := []string{"museum", "restaurant", "school", "hotel"}
	for i := 0; i < 120; i++ {
		label := labels[i%len(labels)]
		var sb strings.Builder
		sb.WriteString(label)
		for j := 0; j < 6; j++ {
			sb.WriteByte(' ')
			sb.WriteString(words[rng.Intn(len(words))])
		}
		d.Add(sb.String(), label)
	}
	return d
}

// testFeatures extracts feature vectors the round-trip tests predict on,
// including vocabulary the models never saw.
func persistFeatures() []textproc.Features {
	texts := []string{
		"the museum exhibit in the city",
		"dinner menu by the chef",
		"campus with students and a lobby",
		"unseen vocabulary entirely zebra quark",
		"",
		"hotel rooms art school",
	}
	out := make([]textproc.Features, len(texts))
	for i, s := range texts {
		out[i] = textproc.Extract(s)
	}
	return out
}

// TestClassifierRoundTrip writes each model kind, reads it back and requires
// (a) the exact internal state (floats round-trip via their bits) and (b)
// identical predictions and scores on held-out feature vectors.
func TestClassifierRoundTrip(t *testing.T) {
	d := persistDataset()
	models := map[string]Classifier{
		"svm":   LinearSVMTrainer{Epochs: 4, Seed: 11}.Train(d),
		"bayes": BayesTrainer{}.Train(d),
	}
	for name, model := range models {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			n, err := WriteClassifier(&buf, model)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("WriteClassifier reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := ReadClassifier(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			switch want := model.(type) {
			case *LinearSVM:
				g, ok := got.(*LinearSVM)
				if !ok {
					t.Fatalf("reloaded kind = %T, want *LinearSVM", got)
				}
				if !reflect.DeepEqual(g.labels, want.labels) ||
					!reflect.DeepEqual(g.bias, want.bias) ||
					!reflect.DeepEqual(g.weights, want.weights) {
					t.Error("reloaded SVM state differs from the written model")
				}
			case *NaiveBayes:
				g, ok := got.(*NaiveBayes)
				if !ok {
					t.Fatalf("reloaded kind = %T, want *NaiveBayes", got)
				}
				if !reflect.DeepEqual(g, want) {
					t.Error("reloaded Bayes state differs from the written model")
				}
			}
			for i, f := range persistFeatures() {
				if g, w := got.Predict(f), model.Predict(f); g != w {
					t.Errorf("feature %d: reloaded predicts %q, original %q", i, g, w)
				}
			}
			// A second write of the reloaded model must reproduce the
			// stream byte-for-byte (deterministic sorted encoding).
			var again bytes.Buffer
			if _, err := WriteClassifier(&again, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Error("re-serialised model is not byte-identical")
			}
		})
	}
}

// TestWriteClassifierUnsupported: models without a persistence format fail
// loudly instead of writing a stream no reader understands.
// failAfter is an io.Writer that accepts n bytes then fails, driving every
// write-error return in the TCLF writers.
type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		k := w.n
		w.n = 0
		return k, errors.New("failAfter: write refused")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriteClassifierPropagatesErrors sweeps the write-failure point across
// both model streams: every short write must surface an error.
func TestWriteClassifierPropagatesErrors(t *testing.T) {
	d := persistDataset()
	for name, model := range map[string]Classifier{
		"svm":   LinearSVMTrainer{Epochs: 2, Seed: 11}.Train(d),
		"bayes": BayesTrainer{}.Train(d),
	} {
		var buf bytes.Buffer
		if _, err := WriteClassifier(&buf, model); err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < buf.Len(); cut += 5 {
			if _, err := WriteClassifier(&failAfter{n: cut}, model); err == nil {
				t.Fatalf("%s: write failure at byte %d reported success", name, cut)
			}
		}
	}
}

// TestReadClassifierTruncationSweep: every proper prefix of a TCLF stream
// must be rejected — no prefix may load and none may panic.
func TestReadClassifierTruncationSweep(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteClassifier(&buf, BayesTrainer{}.Train(persistDataset())); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadClassifier(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", cut, len(data))
		}
	}
}

func TestWriteClassifierUnsupported(t *testing.T) {
	d := persistDataset()
	lr := LogisticTrainer{Epochs: 1}.Train(d)
	if _, err := WriteClassifier(&bytes.Buffer{}, lr); err == nil {
		t.Error("WriteClassifier accepted a model without a format")
	}
}

// TestReadClassifierCorrupt: truncations and header corruptions of both model
// kinds return errors, never panic.
func TestReadClassifierCorrupt(t *testing.T) {
	d := persistDataset()
	for name, model := range map[string]Classifier{
		"svm":   LinearSVMTrainer{Epochs: 2, Seed: 3}.Train(d),
		"bayes": BayesTrainer{}.Train(d),
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := WriteClassifier(&buf, model); err != nil {
				t.Fatal(err)
			}
			valid := buf.Bytes()

			// Every prefix of the header region plus a spread of payload
			// truncations must error.
			for cut := 0; cut < len(valid); cut += 1 + cut/16 {
				if _, err := ReadClassifier(bytes.NewReader(valid[:cut])); err == nil {
					t.Errorf("truncation at %d/%d bytes read successfully", cut, len(valid))
				}
			}

			mutations := []struct {
				name   string
				mutate func(b []byte)
			}{
				{"bad magic", func(b []byte) { b[0] = 'X' }},
				{"bad version", func(b []byte) { b[4] = 0xEE }},
				{"bad kind length", func(b []byte) { b[8] = 0xFF; b[9] = 0xFF; b[10] = 0xFF }},
				{"huge count", func(b []byte) {
					// The label/class count claims 2^31 entries; the
					// reader must bound it. It sits right after the kind
					// string for the SVM, and after the two f64s
					// (alpha, total) for Bayes.
					off := 12 + int(b[8])
					if name == "bayes" {
						off += 16
					}
					b[off], b[off+1], b[off+2], b[off+3] = 0xFF, 0xFF, 0xFF, 0x7F
				}},
			}
			for _, m := range mutations {
				t.Run(m.name, func(t *testing.T) {
					mutated := append([]byte(nil), valid...)
					m.mutate(mutated)
					if _, err := ReadClassifier(bytes.NewReader(mutated)); err == nil {
						t.Error("corrupt stream read successfully")
					}
				})
			}
		})
	}
}

// FuzzReadClassifier: arbitrary bytes must never panic the reader, and any
// stream it accepts must predict without panicking.
func FuzzReadClassifier(f *testing.F) {
	d := persistDataset()
	for _, model := range []Classifier{
		LinearSVMTrainer{Epochs: 1, Seed: 5}.Train(d),
		BayesTrainer{}.Train(d),
	} {
		var buf bytes.Buffer
		if _, err := WriteClassifier(&buf, model); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte("TCLF"))
	f.Add([]byte{})
	features := textproc.Extract("museum dinner campus")
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadClassifier(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted models must be usable.
		_ = c.Predict(features)
	})
}
