package classify

import "math/rand"

// CrossValidate performs k-fold cross validation and returns the mean
// accuracy across folds. The paper selects the C-SVC hyper-parameters with
// 10-fold cross validation following the LibSVM practical guide (§6.1).
func CrossValidate(t Trainer, d Dataset, k int, rng *rand.Rand) float64 {
	shuffled := Dataset{Examples: append([]Example(nil), d.Examples...)}
	shuffled.Shuffle(rng)
	folds := shuffled.Folds(k)
	var sum float64
	counted := 0
	for i := range folds {
		if folds[i].Len() == 0 {
			continue
		}
		model := t.Train(Without(folds, i))
		acc, _ := Evaluate(model, folds[i])
		sum += acc
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// GridPoint is one (C, gamma) combination evaluated by the grid search.
type GridPoint struct {
	C, Gamma float64
	Accuracy float64
}

// GridSearchRBF evaluates a C-SVC over the cross product of the given C and
// gamma grids using k-fold cross validation and returns every grid point with
// its accuracy plus the best one. Mirrors the grid-search procedure of Hsu,
// Chang & Lin that the paper followed, which selected C = 8, γ = 8.
func GridSearchRBF(d Dataset, cs, gammas []float64, k int, seed int64) (best GridPoint, all []GridPoint) {
	for _, c := range cs {
		for _, g := range gammas {
			trainer := KernelSVMTrainer{C: c, Kernel: RBFKernel(g), Seed: seed}
			rng := rand.New(rand.NewSource(seed))
			acc := CrossValidate(trainer, d, k, rng)
			pt := GridPoint{C: c, Gamma: g, Accuracy: acc}
			all = append(all, pt)
			if acc > best.Accuracy {
				best = pt
			}
		}
	}
	return best, all
}
