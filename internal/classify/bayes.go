package classify

import (
	"math"

	"repro/internal/textproc"
)

// BayesTrainer trains a multinomial Naive Bayes classifier. PriorCount is the
// additive smoothing mass per (term, class) pair; the paper sets it to 1.0
// and disables length normalization (§6.1), which this implementation matches
// by scoring raw normalized frequencies without rescaling by snippet length.
type BayesTrainer struct {
	PriorCount float64
}

// Train builds the classifier. A zero PriorCount is replaced by 1.0.
func (t BayesTrainer) Train(d Dataset) Classifier {
	alpha := t.PriorCount
	if alpha <= 0 {
		alpha = 1.0
	}
	nb := &NaiveBayes{
		Alpha:      alpha,
		classCount: map[string]float64{},
		termCount:  map[string]map[string]float64{},
		classTotal: map[string]float64{},
		vocab:      map[string]struct{}{},
	}
	for _, ex := range d.Examples {
		nb.classCount[ex.Label]++
		tc := nb.termCount[ex.Label]
		if tc == nil {
			tc = map[string]float64{}
			nb.termCount[ex.Label] = tc
		}
		for term, v := range ex.Features {
			tc[term] += v
			nb.classTotal[ex.Label] += v
			nb.vocab[term] = struct{}{}
		}
	}
	nb.total = float64(len(d.Examples))
	return nb
}

// NaiveBayes is a trained multinomial Naive Bayes model over sparse
// normalized-frequency features.
type NaiveBayes struct {
	Alpha      float64
	classCount map[string]float64
	termCount  map[string]map[string]float64
	classTotal map[string]float64
	vocab      map[string]struct{}
	total      float64
}

// Scores returns the per-class log-probability scores for f.
func (nb *NaiveBayes) Scores(f textproc.Features) map[string]float64 {
	v := float64(len(nb.vocab))
	scores := make(map[string]float64, len(nb.classCount))
	for class, count := range nb.classCount {
		score := math.Log(count / nb.total)
		tc := nb.termCount[class]
		denom := nb.classTotal[class] + nb.Alpha*v
		for term, freq := range f {
			score += freq * math.Log((tc[term]+nb.Alpha)/denom)
		}
		scores[class] = score
	}
	return scores
}

// Predict returns the class with the highest posterior score; ties break
// toward the lexicographically smaller label for determinism.
func (nb *NaiveBayes) Predict(f textproc.Features) string {
	scores := nb.Scores(f)
	best, bestScore := "", math.Inf(-1)
	for class, s := range scores {
		if s > bestScore || (s == bestScore && (best == "" || class < best)) {
			best, bestScore = class, s
		}
	}
	return best
}
