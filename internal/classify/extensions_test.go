package classify

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/textproc"
)

func TestLogisticLearnsSeparableClasses(t *testing.T) {
	d := synthDataset(200, 31)
	d.Shuffle(rand.New(rand.NewSource(32)))
	train, test := d.Split(0.75)
	model := LogisticTrainer{Seed: 33}.Train(train)
	acc, _ := Evaluate(model, test)
	if acc < 0.9 {
		t.Errorf("logistic accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestLogisticScoresAreProbabilities(t *testing.T) {
	d := synthDataset(100, 34)
	model := LogisticTrainer{Seed: 35}.Train(d).(*Logistic)
	f := textproc.Extract("museum gallery exhibition")
	scores := model.Scores(f)
	var sum float64
	for _, p := range scores {
		if p < 0 || p > 1 {
			t.Errorf("probability %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
}

func TestLogisticEmptyDataset(t *testing.T) {
	model := LogisticTrainer{}.Train(Dataset{})
	if got := model.Predict(textproc.Extract("anything")); got != "" {
		t.Errorf("empty model predicted %q", got)
	}
}

func TestLogisticDeterministic(t *testing.T) {
	d := synthDataset(80, 36)
	f := textproc.Extract("menu chef dining")
	m1 := LogisticTrainer{Seed: 9}.Train(d)
	m2 := LogisticTrainer{Seed: 9}.Train(d)
	if m1.Predict(f) != m2.Predict(f) {
		t.Error("logistic training not deterministic")
	}
}

func TestConfusionMatrixBasics(t *testing.T) {
	cm := NewConfusionMatrix()
	cm.Observe("a", "a")
	cm.Observe("a", "a")
	cm.Observe("a", "b")
	cm.Observe("b", "b")
	if cm.Count("a", "a") != 2 || cm.Count("a", "b") != 1 || cm.Count("b", "a") != 0 {
		t.Error("counts wrong")
	}
	if acc := cm.Accuracy(); acc != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", acc)
	}
	labels := cm.Labels()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Errorf("labels = %v", labels)
	}
	top := cm.MostConfused(5)
	if len(top) != 1 || top[0] != [2]string{"a", "b"} {
		t.Errorf("MostConfused = %v", top)
	}
	if !strings.Contains(cm.String(), "gold\\pred") {
		t.Error("String() missing header")
	}
}

func TestConfusionMatrixEmpty(t *testing.T) {
	cm := NewConfusionMatrix()
	if cm.Accuracy() != 0 {
		t.Error("empty matrix accuracy should be 0")
	}
	if got := cm.MostConfused(3); len(got) != 0 {
		t.Errorf("MostConfused on empty = %v", got)
	}
}

func TestConfusionFromClassifier(t *testing.T) {
	d := synthDataset(200, 37)
	d.Shuffle(rand.New(rand.NewSource(38)))
	train, test := d.Split(0.75)
	model := BayesTrainer{}.Train(train)
	cm := Confusion(model, test)
	if cm.Accuracy() < 0.85 {
		t.Errorf("confusion accuracy = %.3f", cm.Accuracy())
	}
	total := 0
	for _, g := range cm.Labels() {
		for _, p := range cm.Labels() {
			total += cm.Count(g, p)
		}
	}
	if total != test.Len() {
		t.Errorf("matrix holds %d observations, want %d", total, test.Len())
	}
}

func TestAllClassifiersAgreeOnEasyData(t *testing.T) {
	d := synthDataset(150, 39)
	probe := textproc.Extract("museum gallery art collection exhibition paintings")
	classifiers := []Classifier{
		BayesTrainer{}.Train(d),
		LinearSVMTrainer{Seed: 1}.Train(d),
		LogisticTrainer{Seed: 1}.Train(d),
	}
	for i, c := range classifiers {
		if got := c.Predict(probe); got != "museum" {
			t.Errorf("classifier %d predicted %q for museum snippet", i, got)
		}
	}
}
