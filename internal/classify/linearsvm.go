package classify

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/textproc"
)

// LinearSVMTrainer trains a one-vs-rest linear SVM with the Pegasos
// stochastic sub-gradient solver (Shalev-Shwartz et al.). It is the workhorse
// classifier for the large snippet corpora of Table 2: text classification
// with tens of thousands of snippets is where linear SVMs match kernel SVMs
// while training orders of magnitude faster.
type LinearSVMTrainer struct {
	// Lambda is the regularization strength; 0 selects 1e-4.
	Lambda float64
	// Epochs is the number of passes over the data; 0 selects 10.
	Epochs int
	// Seed drives the example sampling order; training is deterministic
	// for a fixed seed.
	Seed int64
}

// Train fits one binary SVM per label and returns the multiclass model.
func (t LinearSVMTrainer) Train(d Dataset) Classifier {
	lambda := t.Lambda
	if lambda <= 0 {
		lambda = 2e-5
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 18
	}
	labels := d.Labels()
	model := &LinearSVM{weights: make(map[string]map[string]float64, len(labels)), bias: make(map[string]float64, len(labels)), labels: labels}
	for _, label := range labels {
		w, b := trainPegasos(d, label, lambda, epochs, t.Seed)
		model.weights[label] = w
		model.bias[label] = b
	}
	return model
}

// trainPegasos fits a binary hinge-loss SVM separating examples labelled
// `positive` (y=+1) from all others (y=-1). Sampling is class-balanced: a
// third of the draws come from the positive class regardless of its share of
// the dataset, which keeps the one-vs-rest machines usable when one label is
// a small fraction of a many-class corpus.
func trainPegasos(d Dataset, positive string, lambda float64, epochs int, seed int64) (map[string]float64, float64) {
	rng := rand.New(rand.NewSource(seed ^ int64(hashString(positive))))
	n := len(d.Examples)
	if n == 0 {
		return map[string]float64{}, 0
	}
	var posIdx []int
	for i, ex := range d.Examples {
		if ex.Label == positive {
			posIdx = append(posIdx, i)
		}
	}
	w := map[string]float64{}
	var bias float64
	scale := 1.0
	step := 0
	for epoch := 0; epoch < epochs; epoch++ {
		for i := 0; i < n; i++ {
			step++
			var ex Example
			if len(posIdx) > 0 && rng.Float64() < 1.0/3 {
				ex = d.Examples[posIdx[rng.Intn(len(posIdx))]]
			} else {
				ex = d.Examples[rng.Intn(n)]
			}
			y := -1.0
			if ex.Label == positive {
				y = 1.0
			}
			eta := 1.0 / (lambda * float64(step))
			// Decay the regularization multiplicatively via the
			// scale factor so the sparse update stays O(nnz).
			scale *= 1 - eta*lambda
			if scale < 1e-9 {
				// Fold the scale into the weights to avoid
				// underflow on long runs.
				for k := range w {
					w[k] *= scale
				}
				scale = 1.0
			}
			margin := bias
			for term, v := range ex.Features {
				margin += w[term] * v * scale
			}
			if y*margin < 1 {
				inv := eta * y / scale
				for term, v := range ex.Features {
					w[term] += inv * v
				}
				bias += eta * y * 0.01
			}
		}
	}
	for k := range w {
		w[k] *= scale
	}
	return w, bias
}

// LinearSVM is a trained one-vs-rest linear SVM.
type LinearSVM struct {
	weights map[string]map[string]float64
	bias    map[string]float64
	labels  []string

	// Prediction-time inverted view, built lazily on first Predict: the
	// label-major weight maps transposed to term-major rows, so scoring a
	// snippet costs one map lookup per feature term instead of one per
	// (term, label) pair. Read-only once built; safe for concurrent
	// Predict calls.
	pidxOnce sync.Once
	pidx     *predictIndex
}

// predictIndex is the term-major transpose of the weight vectors.
type predictIndex struct {
	inv  map[string][]float64 // term -> weight per label, in labels order
	bias []float64            // per label, in labels order
}

func (m *LinearSVM) predictIndex() *predictIndex {
	m.pidxOnce.Do(func() {
		nl := len(m.labels)
		inv := map[string][]float64{}
		bias := make([]float64, nl)
		for li, label := range m.labels {
			bias[li] = m.bias[label]
			for term, w := range m.weights[label] {
				row := inv[term]
				if row == nil {
					row = make([]float64, nl)
					inv[term] = row
				}
				row[li] = w
			}
		}
		m.pidx = &predictIndex{inv: inv, bias: bias}
	})
	return m.pidx
}

// Scores returns the signed decision values per label.
func (m *LinearSVM) Scores(f textproc.Features) map[string]float64 {
	scores := make(map[string]float64, len(m.labels))
	for _, label := range m.labels {
		w := m.weights[label]
		s := m.bias[label]
		for term, v := range f {
			s += w[term] * v
		}
		scores[label] = s
	}
	return scores
}

// Predict returns the label with the largest decision value; ties break
// toward the label listed first (the lexicographically smaller one — labels
// are sorted). It scores through the term-major inverted view: equivalent to
// argmax over Scores, at one map lookup per feature term, with the label
// accumulators on the stack.
func (m *LinearSVM) Predict(f textproc.Features) string {
	pi := m.predictIndex()
	var accBuf [16]float64
	acc := accBuf[:0]
	if len(m.labels) > len(accBuf) {
		acc = make([]float64, len(m.labels))
	} else {
		acc = accBuf[:len(m.labels)]
		clear(acc)
	}
	for term, v := range f {
		if row, ok := pi.inv[term]; ok {
			for i, w := range row {
				acc[i] += w * v
			}
		}
	}
	best, bestScore := "", math.Inf(-1)
	for i, label := range m.labels {
		if s := acc[i] + pi.bias[i]; s > bestScore {
			best, bestScore = label, s
		}
	}
	return best
}

// Weights exposes the weight vector of one binary model; terms are returned
// in sorted order together with their weights. Used by diagnostics to inspect
// what vocabulary a type classifier latched onto.
func (m *LinearSVM) Weights(label string) ([]string, []float64) {
	w := m.weights[label]
	terms := make([]string, 0, len(w))
	for t := range w {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	vals := make([]float64, len(terms))
	for i, t := range terms {
		vals[i] = w[t]
	}
	return terms, vals
}

// hashString is the FNV-1a hash, used to derive per-label RNG streams.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
