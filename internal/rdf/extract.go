package rdf

import (
	"fmt"
	"strings"

	"repro/internal/annotate"
	"repro/internal/gazetteer"
	"repro/internal/table"
)

// Standard predicates of the POI repository.
const (
	PredType    = "rdf:type"
	PredLabel   = "rdfs:label"
	PredAddress = "poi:address"
	PredPhone   = "poi:phone"
	PredCity    = "poi:city"
	PredSource  = "poi:sourceTable"
	PredScore   = "poi:confidence"
)

// Extractor converts annotated tables into POI triples — the extraction step
// of the DataBridges application the paper describes in §1.
type Extractor struct {
	// Gazetteer, when set, geocodes address cells to attach a poi:city
	// triple. Ambiguous addresses take the first candidate's city; run
	// the annotator with disambiguation for better choices upstream.
	Gazetteer *gazetteer.Gazetteer
	// MinScore drops annotations below this Eq. 1 confidence.
	MinScore float64

	pre annotate.Preprocessor
}

// Extract appends triples for every annotation of the table to the store and
// returns the number of POIs extracted.
func (x *Extractor) Extract(tbl *table.Table, res *annotate.Result, store *Store) int {
	count := 0
	for _, ann := range res.Annotations {
		if ann.Score < x.MinScore {
			continue
		}
		name := strings.TrimSpace(tbl.Cell(ann.Row, ann.Col))
		if name == "" {
			continue
		}
		subj := subjectURI(tbl.Name, ann.Row, ann.Col)
		store.Add(Triple{subj, PredType, ann.Type})
		store.Add(Triple{subj, PredLabel, name})
		store.Add(Triple{subj, PredSource, tbl.Name})
		store.Add(Triple{subj, PredScore, fmt.Sprintf("%.2f", ann.Score)})
		x.rowContext(tbl, ann.Row, subj, store)
		count++
	}
	return count
}

// rowContext attaches the row's address and phone cells to the POI.
func (x *Extractor) rowContext(tbl *table.Table, row int, subj string, store *Store) {
	for j := 1; j <= tbl.NumCols(); j++ {
		cell := strings.TrimSpace(tbl.Cell(row, j))
		if cell == "" {
			continue
		}
		switch {
		case tbl.Columns[j-1].Type == table.Location:
			store.Add(Triple{subj, PredAddress, cell})
			if x.Gazetteer != nil {
				if cands := x.Gazetteer.Geocode(cell); len(cands) > 0 {
					if city := x.Gazetteer.CityOf(cands[0]); city != gazetteer.NoLocation {
						store.Add(Triple{subj, PredCity, x.Gazetteer.Name(city)})
					}
				}
			}
		case x.pre.Check(cell) == annotate.SkipPhone:
			store.Add(Triple{subj, PredPhone, cell})
		}
	}
}

// subjectURI mints a stable subject for a table cell.
func subjectURI(tableName string, row, col int) string {
	return fmt.Sprintf("poi:%s/r%dc%d", tableName, row, col)
}
