package rdf

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// This file implements the SPARQL subset the repository understands:
//
//	SELECT [DISTINCT] ?v1 ?v2 | * WHERE { pattern . pattern ... } [LIMIT n]
//
// where every pattern is three terms — a ?variable, a "quoted literal" or a
// bare IRI token like rdf:type. It is the query language behind poibrowse
// and the moral equivalent of the iterated SPARQL containment queries the
// paper runs against DBpedia (§5.2.1).

// Term is one position of a triple pattern.
type Term struct {
	// Value is the variable name (without '?') or the constant value.
	Value string
	// IsVar marks a variable term.
	IsVar bool
}

// Pattern is a triple pattern.
type Pattern struct {
	S, P, O Term
}

// SelectQuery is a parsed SELECT query.
type SelectQuery struct {
	Vars     []string // projected variables, nil for SELECT *
	Distinct bool
	Patterns []Pattern
	Limit    int // 0 = no limit
}

// Binding maps variable names to values for one solution row.
type Binding map[string]string

// ParseSPARQL parses the supported subset. Errors carry the offending token.
func ParseSPARQL(query string) (*SelectQuery, error) {
	toks, err := lexSPARQL(query)
	if err != nil {
		return nil, err
	}
	p := &sparqlParser{toks: toks}
	return p.parse()
}

// lexSPARQL splits the query into tokens: punctuation ({ } .), quoted
// literals, and bare words (keywords, IRIs, ?variables, numbers).
func lexSPARQL(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '{' || c == '}':
			toks = append(toks, string(c))
			i++
		case c == '.':
			toks = append(toks, ".")
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("sparql: unterminated string literal at offset %d", i)
			}
			toks = append(toks, s[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(s) && !unicode.IsSpace(rune(s[j])) && s[j] != '{' && s[j] != '}' && s[j] != '"' {
				j++
			}
			word := s[i:j]
			// A trailing '.' ends a pattern rather than belonging
			// to the token ("rdf:type ." vs "example.com").
			if strings.HasSuffix(word, ".") && len(word) > 1 {
				toks = append(toks, word[:len(word)-1], ".")
			} else {
				toks = append(toks, word)
			}
			i = j
		}
	}
	return toks, nil
}

type sparqlParser struct {
	toks []string
	pos  int
}

func (p *sparqlParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *sparqlParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *sparqlParser) expect(keyword string) error {
	if !strings.EqualFold(p.peek(), keyword) {
		return fmt.Errorf("sparql: expected %q, got %q", keyword, p.peek())
	}
	p.pos++
	return nil
}

func (p *sparqlParser) parse() (*SelectQuery, error) {
	q := &SelectQuery{}
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	if strings.EqualFold(p.peek(), "DISTINCT") {
		q.Distinct = true
		p.pos++
	}
	switch {
	case p.peek() == "*":
		p.pos++
	default:
		for strings.HasPrefix(p.peek(), "?") {
			q.Vars = append(q.Vars, strings.TrimPrefix(p.next(), "?"))
		}
		if len(q.Vars) == 0 {
			return nil, fmt.Errorf("sparql: SELECT needs variables or *, got %q", p.peek())
		}
	}
	if err := p.expect("WHERE"); err != nil {
		return nil, err
	}
	if p.next() != "{" {
		return nil, fmt.Errorf("sparql: expected '{' after WHERE")
	}
	for p.peek() != "}" {
		if p.peek() == "" {
			return nil, fmt.Errorf("sparql: unterminated pattern block")
		}
		var terms [3]Term
		for i := 0; i < 3; i++ {
			tok := p.next()
			if tok == "" || tok == "." || tok == "}" {
				return nil, fmt.Errorf("sparql: incomplete triple pattern")
			}
			terms[i] = parseTerm(tok)
		}
		q.Patterns = append(q.Patterns, Pattern{S: terms[0], P: terms[1], O: terms[2]})
		if p.peek() == "." {
			p.pos++
		}
	}
	p.pos++ // consume '}'
	if strings.EqualFold(p.peek(), "LIMIT") {
		p.pos++
		if _, err := fmt.Sscanf(p.next(), "%d", &q.Limit); err != nil {
			return nil, fmt.Errorf("sparql: bad LIMIT: %w", err)
		}
	}
	if p.peek() != "" {
		return nil, fmt.Errorf("sparql: trailing token %q", p.peek())
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: empty pattern block")
	}
	return q, nil
}

func parseTerm(tok string) Term {
	if strings.HasPrefix(tok, "?") {
		return Term{Value: strings.TrimPrefix(tok, "?"), IsVar: true}
	}
	if strings.HasPrefix(tok, "\"") && strings.HasSuffix(tok, "\"") && len(tok) >= 2 {
		return Term{Value: tok[1 : len(tok)-1]}
	}
	return Term{Value: tok}
}

// Select runs a parsed query against the store and returns the solution
// bindings restricted to the projected variables, in a deterministic order.
func (s *Store) Select(q *SelectQuery) []Binding {
	// Order patterns most-selective first: constants beat variables and
	// bound-by-earlier-pattern variables beat fresh ones. A simple
	// greedy ordering is enough at this scale.
	patterns := append([]Pattern(nil), q.Patterns...)
	sort.SliceStable(patterns, func(i, j int) bool {
		return patternConstants(patterns[i]) > patternConstants(patterns[j])
	})

	var solutions []Binding
	var walk func(i int, bound Binding)
	walk = func(i int, bound Binding) {
		if q.Limit > 0 && len(solutions) >= q.Limit && !q.Distinct {
			return
		}
		if i == len(patterns) {
			solutions = append(solutions, cloneBinding(bound))
			return
		}
		pat := patterns[i]
		subj := resolveTerm(pat.S, bound)
		pred := resolveTerm(pat.P, bound)
		obj := resolveTerm(pat.O, bound)
		for _, tr := range s.Query(subj, pred, obj) {
			next := bound
			added := []string{}
			bindVar := func(term Term, val string) bool {
				if !term.IsVar || resolveTerm(term, next) != "" {
					// Constant or already bound: Query matched it.
					if term.IsVar && next[term.Value] != val {
						return false
					}
					return true
				}
				next[term.Value] = val
				added = append(added, term.Value)
				return true
			}
			ok := bindVar(pat.S, tr.S) && bindVar(pat.P, tr.P) && bindVar(pat.O, tr.O)
			if ok {
				walk(i+1, next)
			}
			for _, v := range added {
				delete(next, v)
			}
		}
	}
	walk(0, Binding{})

	out := project(solutions, q)
	sortBindings(out, q)
	if q.Distinct {
		out = dedupeBindings(out)
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// SelectSPARQL parses and runs a query in one call.
func (s *Store) SelectSPARQL(query string) ([]Binding, error) {
	q, err := ParseSPARQL(query)
	if err != nil {
		return nil, err
	}
	return s.Select(q), nil
}

func patternConstants(p Pattern) int {
	n := 0
	for _, t := range []Term{p.S, p.P, p.O} {
		if !t.IsVar {
			n++
		}
	}
	return n
}

// resolveTerm returns the concrete value a term imposes on the store query:
// its constant, its bound value, or "" (wildcard) for a fresh variable.
func resolveTerm(t Term, bound Binding) string {
	if !t.IsVar {
		return t.Value
	}
	return bound[t.Value]
}

func cloneBinding(b Binding) Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// project restricts solutions to the selected variables (all for SELECT *).
func project(solutions []Binding, q *SelectQuery) []Binding {
	if q.Vars == nil {
		return solutions
	}
	out := make([]Binding, len(solutions))
	for i, sol := range solutions {
		row := make(Binding, len(q.Vars))
		for _, v := range q.Vars {
			if val, ok := sol[v]; ok {
				row[v] = val
			}
		}
		out[i] = row
	}
	return out
}

// sortBindings orders rows lexicographically over the projected variables so
// results are deterministic.
func sortBindings(rows []Binding, q *SelectQuery) {
	vars := q.Vars
	if vars == nil {
		seen := map[string]struct{}{}
		for _, row := range rows {
			for v := range row {
				seen[v] = struct{}{}
			}
		}
		for v := range seen {
			vars = append(vars, v)
		}
		sort.Strings(vars)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, v := range vars {
			if rows[i][v] != rows[j][v] {
				return rows[i][v] < rows[j][v]
			}
		}
		return false
	})
}

func dedupeBindings(rows []Binding) []Binding {
	var out []Binding
	var prev string
	for _, row := range rows {
		key := fmt.Sprint(row)
		if key != prev {
			out = append(out, row)
			prev = key
		}
	}
	return out
}
