package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadNTriples parses the serialisation produced by WriteNTriples — one
// `subject predicate "object" .` statement per line — and loads it into a
// new store. Blank lines and `#` comment lines are ignored, so hand-edited
// repository dumps load cleanly. Together with WriteNTriples this gives the
// POI repository durable save/load, used by poibrowse's -save/-load flags.
func ReadNTriples(r io.Reader) (*Store, error) {
	store := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		store.Add(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ntriples: %w", err)
	}
	return store, nil
}

// parseNTripleLine parses `subj pred "obj with spaces" .`.
func parseNTripleLine(line string) (Triple, error) {
	if !strings.HasSuffix(line, ".") {
		return Triple{}, fmt.Errorf("statement does not end with '.'")
	}
	line = strings.TrimSpace(strings.TrimSuffix(line, "."))

	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return Triple{}, fmt.Errorf("missing predicate")
	}
	subj := line[:sp]
	rest := strings.TrimSpace(line[sp+1:])

	sp = strings.IndexByte(rest, ' ')
	if sp < 0 {
		return Triple{}, fmt.Errorf("missing object")
	}
	pred := rest[:sp]
	objRaw := strings.TrimSpace(rest[sp+1:])
	if objRaw == "" {
		return Triple{}, fmt.Errorf("empty object")
	}

	var obj string
	if strings.HasPrefix(objRaw, "\"") {
		// %q-quoted literal; strconv handles the escapes WriteNTriples
		// produced.
		unq, err := strconv.Unquote(objRaw)
		if err != nil {
			return Triple{}, fmt.Errorf("bad literal %s: %w", objRaw, err)
		}
		obj = unq
	} else {
		if strings.ContainsRune(objRaw, ' ') {
			return Triple{}, fmt.Errorf("unquoted object %q contains spaces", objRaw)
		}
		obj = objRaw
	}
	return Triple{S: subj, P: pred, O: obj}, nil
}
